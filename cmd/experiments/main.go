// Command experiments regenerates every table and figure of the paper on
// the synthetic targets and writes EXPERIMENTS.md (paper numbers vs
// measured numbers, with a shape verdict per experiment).
//
//	go run ./cmd/experiments -budget 50000 -out EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pbse/internal/experiments"
	"pbse/internal/symex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		budget = flag.Int64("budget", 50_000, "virtual-time budget B (the paper's '1h'); '10h' uses 10x")
		out    = flag.String("out", "EXPERIMENTS.md", "output file ('-' for stdout)")
		seed   = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.BudgetB = *budget
	cfg.Seed = *seed
	startT := time.Now()
	cfg.Progress = func(line string) {
		fmt.Fprintf(os.Stderr, "[%7.1fs]   %s\n", time.Since(startT).Seconds(), line)
	}

	var b strings.Builder
	start := time.Now()
	fmt.Fprintf(&b, `# EXPERIMENTS — paper vs measured

Reproduction of every table and figure of *pbSE: Phase-based Symbolic
Execution* (DSN 2017) on the synthetic targets (see DESIGN.md for the
substitutions). Wall-clock budgets map to virtual time: the paper's "1h"
column is B = %d executed instructions, "10h" is 10B = %d. Absolute
numbers differ from the paper by construction (our substrate is a small
deterministic engine, the targets are scaled-down parsers); the claims
checked here are the *shapes*: who wins, roughly by how much, and where
the curves flatten.

Regenerate with:

    go run ./cmd/experiments -budget %d

`, cfg.BudgetB, 10*cfg.BudgetB, cfg.BudgetB)

	progress := func(name string) { fmt.Fprintf(os.Stderr, "[%7.1fs] %s...\n", time.Since(start).Seconds(), name) }

	// ---- Table I ----
	progress("Table I (readelf searcher comparison)")
	t1, err := experiments.TableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Table I — basic blocks covered on readelf, per searcher\n\n")
	fmt.Fprintf(&b, "Paper: KLEE's best searcher (random-path) reaches 1239 BBs in 10h; "+
		"random-state/covnew/md2u plateau in the 600s; dfs starts worst and recovers; "+
		"pbSE reaches 2597 (+109%% over the best KLEE result). c-time and p-time are "+
		"negligible next to the search budget.\n\n")
	fmt.Fprintf(&b, "Measured (target has %d basic blocks):\n\n", t1.Blocks)
	fmt.Fprintf(&b, "| searcher | sym-10 B/10B | sym-100 B/10B | sym-1000 B/10B | sym-10000 B/10B |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, kind := range symex.AllSearcherKinds {
		fmt.Fprintf(&b, "| %s |", kind)
		for _, size := range cfg.SymSizes {
			for _, c := range t1.Baselines {
				if c.Searcher == kind && c.SymSize == size {
					fmt.Fprintf(&b, " %d / %d |", c.CovB, c.Cov10B)
				}
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "\n| pbSE | c-time | p-time | B | 10B | phases (trap) | bugs |\n|---|---|---|---|---|---|---|\n")
	for _, c := range t1.PBSE {
		fmt.Fprintf(&b, "| seed(%d) | %d | %.1fms | %d | %d | %d (%d) | %d |\n",
			c.SeedSize, c.CTime, c.PTimeMS, c.CovB, c.Cov10B, c.Phases, c.Traps, c.Bugs)
	}
	bestKLEE := 0
	for _, c := range t1.Baselines {
		if c.Cov10B > bestKLEE {
			bestKLEE = c.Cov10B
		}
	}
	bestPBSE := 0
	for _, c := range t1.PBSE {
		if c.Cov10B > bestPBSE {
			bestPBSE = c.Cov10B
		}
	}
	fmt.Fprintf(&b, "\nShape: pbSE %d vs best KLEE %d (**%+.0f%%**; paper: +109%%). c-time/p-time ≪ budget: %s.\n\n",
		bestPBSE, bestKLEE, 100*float64(bestPBSE-bestKLEE)/float64(max(bestKLEE, 1)), verdict(bestPBSE > bestKLEE))

	// ---- Table II ----
	progress("Table II (gif2tiff / pngtest / dwarfdump)")
	t2, err := experiments.TableII(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Table II — coverage on libtiff/libpng/libdwarf analogues\n\n")
	fmt.Fprintf(&b, "Paper: pbSE beats the best of random-path/covnew by +134%% (gif2tiff), "+
		"+121%% (pngtest), +112%% (dwarfdump); KLEE's 1h and 10h numbers are close "+
		"(the plateau), pbSE keeps growing.\n\n")
	for _, row := range t2 {
		fmt.Fprintf(&b, "**%s** (%d blocks)\n\n", row.Driver, row.Blocks)
		fmt.Fprintf(&b, "| searcher | sym-10 B/10B | sym-100 B/10B | sym-1000 B/10B | sym-10000 B/10B |\n|---|---|---|---|---|\n")
		line := func(name string, cells []experiments.BaselineCell) {
			fmt.Fprintf(&b, "| %s |", name)
			for _, c := range cells {
				fmt.Fprintf(&b, " %d / %d |", c.CovB, c.Cov10B)
			}
			fmt.Fprintf(&b, "\n")
		}
		line("random-path", row.RandomPath)
		line("covnew", row.CovNew)
		fmt.Fprintf(&b, "| **pbSE** (seed 576) | %d / %d | | | |\n\n", row.PBSE.CovB, row.PBSE.Cov10B)
		fmt.Fprintf(&b, "pbSE over best baseline: **%+.0f%%** — %s\n\n", row.IncreasePct, verdict(row.IncreasePct > 0))
	}

	// ---- Table III ----
	progress("Table III (bug hunting)")
	t3, err := experiments.TableIII(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Table III — bugs found by pbSE\n\n")
	fmt.Fprintf(&b, "Paper: 21 bugs across the four packages (OOB reads/writes, an integer "+
		"overflow, a null dereference), each attributed to the trap phase it was found "+
		"in. Here the targets carry seeded bugs of the same classes; every witness "+
		"input is replayed in the concrete interpreter.\n\n")
	fmt.Fprintf(&b, "| driver | s-size | t-p | bugs (class @ phase) | witnesses reproduce |\n|---|---|---|---|---|\n")
	totalBugs, totalRepro := 0, 0
	for _, row := range t3 {
		var descs []string
		for _, bug := range row.Bugs {
			descs = append(descs, fmt.Sprintf("%s @ p%d", bug.Kind, bug.Phase))
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %d/%d |\n",
			row.Driver, row.SeedSize, row.Traps, strings.Join(descs, "; "), row.Reproduce, len(row.Bugs))
		totalBugs += len(row.Bugs)
		totalRepro += row.Reproduce
	}
	fmt.Fprintf(&b, "\n%d bugs total, %d with concretely-reproducing witnesses — %s\n\n",
		totalBugs, totalRepro, verdict(totalBugs >= 5 && totalRepro == totalBugs))

	// ---- Fig 1 ----
	progress("Fig 1 (BB distribution, concrete vs symbolic)")
	f1, err := experiments.Fig1(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Fig 1 — concrete vs symbolic block distribution\n\n")
	fmt.Fprintf(&b, "Paper: for each program there is a band of blocks the concrete seed run "+
		"covers that symbolic execution misses even after an hour (the boxed regions).\n\n")
	fmt.Fprintf(&b, "| program | concrete blocks | symbolic blocks (B) | concrete-only (the boxes) |\n|---|---|---|---|\n")
	anyMissed := true
	for _, r := range f1 {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", r.Driver, r.ConcreteBlocks, r.SymbolicBlocks, r.Missed)
		if r.Missed == 0 {
			anyMissed = false
		}
	}
	fmt.Fprintf(&b, "\nEvery program has concrete-covered blocks the symbolic run misses — %s\n", verdict(anyMissed))
	fmt.Fprintf(&b, "(Scatter data: `go run ./cmd/phaseviz -driver <name> -out /tmp/fig1`.)\n\n")

	// ---- Fig 4 ----
	progress("Fig 4 (phase division with/without coverage)")
	f4, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Fig 4 — trap phases, BBV-only vs BBV+coverage\n\n")
	fmt.Fprintf(&b, "Paper: BBV-only clustering finds 2 trap phases on gif2tiff; adding the "+
		"coverage element finds 4.\n\nMeasured: BBV-only %d trap phases (k=%d); "+
		"BBV+coverage %d trap phases (k=%d) — %s\n\n",
		f4.TrapsBBVOnly, f4.K1, f4.TrapsBBVCoverage, f4.K2, verdict(f4.TrapsBBVCoverage >= f4.TrapsBBVOnly))

	// ---- Fig 5 / Fig 6 ----
	progress("Fig 5 (tiff2rgba case study)")
	f5, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Fig 5/6 — the tiff2rgba CIELab out-of-bounds read\n\n")
	fmt.Fprintf(&b, "Paper: the putcontig8bitCIELab OOB read (w·h·3 past a 257-byte buffer) "+
		"sits in trap phase 3; pbSE finds it within an hour, KLEE misses it in 10.\n\n")
	fmt.Fprintf(&b, "Measured: pbSE found the CIELab OOB read: %v (phase %d of %d traps); "+
		"KLEE default at 10B found it: %v — %s\n\n",
		f5.PBSEFoundOOB, f5.BugPhase, f5.Traps, f5.KLEEFoundOOB,
		verdict(f5.PBSEFoundOOB))
	fmt.Fprintf(&b, "Figs 7/8 (the libpng CVE analogues) are seeded in minipng and exercised "+
		"by the Table III rows and targets' unit tests.\n\n")

	// ---- ablations ----
	progress("Ablations (pbSE design choices)")
	abl, err := experiments.Ablations(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Ablations — pbSE design choices (readelf, budget 4B)\n\n")
	fmt.Fprintf(&b, "| design choice | coverage on | coverage off | bugs on | bugs off | notes |\n|---|---|---|---|---|---|\n")
	for _, a := range abl {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %s |\n",
			a.Name, a.CoverageOn, a.CoverageOff, a.BugsOn, a.BugsOff, a.Detail)
	}
	fmt.Fprintf(&b, "\n")

	progress("Solver ablations")
	sabl, err := experiments.SolverAblations(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Ablations — solver fast paths (KLEE default on readelf, budget B)\n\n")
	fmt.Fprintf(&b, "| variant | covered | queries | cache hits | candidate hits | interval hits | SAT runs |\n|---|---|---|---|---|---|---|\n")
	for _, a := range sabl {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d |\n",
			a.Name, a.Covered, a.Stats.Queries, a.Stats.CacheHits, a.Stats.CandidateSat, a.Stats.IntervalFast, a.Stats.SATRuns)
	}
	fmt.Fprintf(&b, "\nGenerated in %.1fs with budget B=%d on %s.\n",
		time.Since(start).Seconds(), cfg.BudgetB, time.Now().UTC().Format("2006-01-02"))

	if *out == "-" {
		fmt.Print(b.String())
		return nil
	}
	return os.WriteFile(*out, []byte(b.String()), 0o644)
}

func verdict(ok bool) string {
	if ok {
		return "**shape holds**"
	}
	return "**shape does NOT hold**"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
