// Command irdump prints the IR listing of a bundled target (or verifies
// that a textual IR file parses), using the same format the parser reads.
//
//	irdump -driver readelf
//	irdump -parse program.ir
package main

import (
	"flag"
	"fmt"
	"os"

	"pbse/internal/ir"
	"pbse/internal/targets"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "irdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		driver = flag.String("driver", "readelf", "bundled target to disassemble")
		parse  = flag.String("parse", "", "parse a textual IR file instead and report stats")
	)
	flag.Parse()

	if *parse != "" {
		src, err := os.ReadFile(*parse)
		if err != nil {
			return err
		}
		p, err := ir.Parse(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("parsed %s: %d functions, %d blocks, %d instructions\n",
			p.Name, len(p.Funcs), len(p.AllBlocks), p.NumInstrs)
		return nil
	}

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return err
	}
	p, err := tgt.Build()
	if err != nil {
		return err
	}
	fmt.Print(p.Print())
	return nil
}
