// Command irlint parses textual IR programs and reports static-analysis
// findings: dead registers, constant-foldable branches, stores never
// loaded, calls that cannot return, unreachable functions.
//
//	irlint [-json] [-loops] [-absint] file.ir...
//
// The exit status is 0 when every file is clean, 1 when any finding is
// reported, and 2 on parse or I/O errors. With -loops the natural-loop
// report (nesting and input-dependence classification) is printed for
// each file as well. With -absint the abstract-interpretation pass also
// runs, reporting unreachable blocks, statically dead branch edges, and
// constant-foldable guards proven by interval/SCCP invariants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pbse/internal/analysis"
	"pbse/internal/analysis/absint"
	"pbse/internal/ir"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("irlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	loops := fs.Bool("loops", false, "also print the natural-loop report")
	abs := fs.Bool("absint", false, "also run the abstract-interpretation pass (unreachable blocks, dead edges, constant guards)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: irlint [-json] [-loops] [-absint] file.ir...")
		return 2
	}

	var all []analysis.Diag
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", err)
			return 2
		}
		prog, err := ir.Parse(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "irlint: %s: %v\n", path, err)
			return 2
		}
		inf := analysis.Analyze(prog)
		all = append(all, inf.Lint()...)
		if *abs {
			all = append(all, absint.Lint(inf)...)
		}
		if *loops && !*jsonOut {
			printLoops(stdout, inf)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.Diag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

func printLoops(w *os.File, inf *analysis.Info) {
	for fx, fi := range inf.Funcs {
		fn := inf.Prog.Funcs[fx]
		for _, l := range fi.Loops {
			kind := "constant/unknown-bound"
			if l.InputDependent {
				kind = "input-dependent"
			}
			fmt.Fprintf(w, "%s:%s:%s: loop depth %d, %d blocks, %s\n",
				inf.Prog.Name, fn.Name, fn.Blocks[l.Header].Name,
				l.Depth, len(l.Blocks), kind)
		}
		if fi.Irreducible {
			fmt.Fprintf(w, "%s:%s: irreducible control flow\n", inf.Prog.Name, fn.Name)
		}
	}
}
