package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbse/internal/analysis"
)

// capture runs the CLI with stdout redirected to a pipe-backed temp file.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "irlint-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, os.Stderr)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestBadFixtureFlagsThreeKinds(t *testing.T) {
	code, out := capture(t, "-json", filepath.Join("testdata", "bad.ir"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var diags []analysis.Diag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	kinds := make(map[analysis.DiagKind]bool)
	for _, d := range diags {
		kinds[d.Kind] = true
		if d.Prog == "" || d.Func == "" {
			t.Errorf("diag without position: %+v", d)
		}
	}
	if len(kinds) < 3 {
		t.Errorf("acceptance: want >=3 distinct diagnostic kinds, got %d: %v", len(kinds), kinds)
	}
}

func TestTextOutputHasPositions(t *testing.T) {
	code, out := capture(t, filepath.Join("testdata", "bad.ir"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out, "bad:main:entry") {
		t.Errorf("text output missing prog:func:block position:\n%s", out)
	}
}

func TestExamplesAreClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "ir")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ir") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatal("no example IR files")
	}
	code, out := capture(t, append([]string{"-loops"}, files...)...)
	if code != 0 {
		t.Errorf("examples should be lint-clean, exit=%d:\n%s", code, out)
	}
	if !strings.Contains(out, "input-dependent") {
		t.Errorf("-loops report should classify at least one input-dependent loop:\n%s", out)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "broken.ir")
	if err := os.WriteFile(bad, []byte("program x\nfunc main(params=0 regs=1) {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, bad); code != 2 {
		t.Errorf("exit code = %d, want 2 for parse error", code)
	}
}
