package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pbse/internal/service"
)

// validOpts is a baseline that passes validation; tests mutate one
// field at a time.
func validOpts(t *testing.T) daemonOptions {
	t.Helper()
	return daemonOptions{
		addr:      "127.0.0.1:0",
		root:      filepath.Join(t.TempDir(), "root"),
		roundsPer: 1,
		leaseTTL:  10 * time.Second,
		slots:     1,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*daemonOptions)
		want string // substring of the error, "" = valid
	}{
		{"baseline", func(o *daemonOptions) {}, ""},
		{"missing root", func(o *daemonOptions) { o.root = "" }, "-root is required"},
		{"orphan root", func(o *daemonOptions) { o.root = "/no/such/parent/root" }, "parent directory"},
		{"negative pool", func(o *daemonOptions) { o.pool = -2 }, "-pool"},
		{"zero rounds", func(o *daemonOptions) { o.roundsPer = 0 }, "-rounds-per-slice"},
		{"negative quota", func(o *daemonOptions) { o.quota = service.Quota{MaxBudget: -1} }, "quota"},
		{"negative retain", func(o *daemonOptions) { o.retain = -1 }, "-retain"},
		{"negative retain age", func(o *daemonOptions) { o.retainAge = -time.Second }, "-retain-age"},
		{"join without scheme", func(o *daemonOptions) { o.join = "localhost:8080" }, "-join"},
		{"join zero slots", func(o *daemonOptions) { o.join = "http://localhost:8080"; o.slots = 0 }, "-slots"},
		{"join plus cluster", func(o *daemonOptions) { o.join = "http://localhost:8080"; o.cluster = true }, "mutually exclusive"},
		{"tiny lease ttl", func(o *daemonOptions) { o.leaseTTL = time.Millisecond }, "-lease-ttl"},
		{"bad cache size", func(o *daemonOptions) { o.cacheMaxSpec = "64Q" }, "-cache-max-bytes"},
		{"negative cache size", func(o *daemonOptions) { o.cacheMaxSpec = "-1M" }, "-cache-max-bytes"},
		{"good cache size", func(o *daemonOptions) { o.cacheMaxSpec = "64M" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOpts(t)
			tc.mut(&o)
			err := o.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"1024", 1024, true},
		{"64K", 64 << 10, true},
		{"64k", 64 << 10, true},
		{"8M", 8 << 20, true},
		{"2G", 2 << 30, true},
		{"-5", 0, false},
		{"64Q", 0, false},
		{"M", 0, false},
	}
	for _, tc := range cases {
		got, err := parseSize(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
