// Command pbsed is the pbSE campaign daemon: an HTTP/JSON service that
// runs many symbolic-execution campaigns for many tenants over one
// shared worker pool (DESIGN.md §13). Campaigns are multiplexed at
// scheduler-round granularity through the checkpoint/resume machinery,
// so every campaign is durable between slices: a SIGTERM drains to
// checkpoints and exits cleanly, a SIGKILL loses at most the slices in
// flight, and the next pbsed over the same -root resumes every
// in-flight campaign bit-identically.
//
// Quick start:
//
//	pbsed -root /var/lib/pbse -addr :8080 &
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"tenant":"alice","driver":"readelf","budget":200000}'
//	curl -N localhost:8080/v1/campaigns/c000001/events
//
// Cluster mode (DESIGN.md §14): several pbsed daemons share one -root
// on a common filesystem. With -cluster each daemon owns its campaigns
// through fenced lease files, mirrors its peers' campaigns, and adopts
// the campaigns of any daemon that dies or drains. A pbsed started
// with -join instead runs as a remote slice worker: it executes slices
// the coordinator dispatches over HTTP against the same shared root.
//
//	pbsed -root /mnt/pbse -addr :8080 -cluster -node-id a &
//	pbsed -root /mnt/pbse -addr :8081 -cluster -node-id b &   # failover peer
//	pbsed -root /mnt/pbse -addr :8091 -join http://localhost:8080 -slots 4 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pbse/internal/cluster"
	"pbse/internal/service"
	"pbse/internal/store"
	"pbse/internal/supervise"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		root          = flag.String("root", "", "store root directory (required): campaigns/<id>/ stores + shared/ verdict cache")
		pool          = flag.Int("pool", 0, "shared slice-worker count (0 = GOMAXPROCS; must be >= 1 when set)")
		roundsPer     = flag.Int64("rounds-per-slice", 1, "scheduler rounds one granted slice runs before checkpointing and requeueing")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight slices to checkpoint on SIGTERM/SIGINT")
		noSupervise   = flag.Bool("no-supervise", false, "run campaign slices without the fault-isolation supervisor")
		maxRunning    = flag.Int("quota-running", 0, "per-tenant cap on simultaneously running campaigns (0 = unlimited)")
		maxLive       = flag.Int("quota-live", 0, "per-tenant cap on live (non-terminal) campaigns (0 = unlimited)")
		maxBudget     = flag.Int64("quota-budget", 0, "per-tenant cap on aggregate in-flight virtual-time budget (0 = unlimited)")
		maxWall       = flag.Float64("quota-wall-seconds", 0, "per-tenant cap on aggregate worker wall-clock seconds (0 = unlimited)")
		islandDeadman = flag.Duration("island-deadline", 30*time.Second, "supervised: wall-clock watchdog per island turn")

		clusterOn = flag.Bool("cluster", false, "fleet mode: own campaigns via fenced leases in -root, adopt dead peers' campaigns, accept -join workers")
		nodeID    = flag.String("node-id", "", "unique node identity for leases and campaign-ID suffixes (default <hostname>-<pid>)")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "cluster: campaign lease TTL (a silent daemon loses its campaigns after this)")
		joinAddr  = flag.String("join", "", "worker mode: coordinator base URL to join (e.g. http://host:8080); executes dispatched slices instead of serving the API")
		slots     = flag.Int("slots", 1, "worker mode: concurrent slices this worker accepts")
		advertise = flag.String("advertise", "", "worker mode: base URL the coordinator should dial back (default derived from -addr)")

		retain    = flag.Int("retain", 0, "keep at most this many terminal campaign trees in -root (0 = keep all)")
		retainAge = flag.Duration("retain-age", 0, "sweep terminal campaign trees older than this (0 = no age bound)")
		cacheMax  = flag.String("cache-max-bytes", "", "shared verdict-cache log byte budget, e.g. 64M (empty = unbounded)")
	)
	flag.Parse()

	opts := daemonOptions{
		addr: *addr, root: *root, pool: *pool, roundsPer: *roundsPer,
		drainTimeout: *drainTimeout, supervised: !*noSupervise,
		quota:          service.Quota{MaxRunning: *maxRunning, MaxLive: *maxLive, MaxBudget: *maxBudget, MaxWallSeconds: *maxWall},
		islandDeadline: *islandDeadman,
		cluster:        *clusterOn, nodeID: *nodeID, leaseTTL: *leaseTTL,
		join: *joinAddr, slots: *slots, advertise: *advertise,
		retain: *retain, retainAge: *retainAge, cacheMaxSpec: *cacheMax,
	}
	if err := opts.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pbsed:", err)
		os.Exit(2)
	}
	var err error
	if opts.join != "" {
		err = runWorker(opts)
	} else {
		err = run(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbsed:", err)
		os.Exit(1)
	}
}

type daemonOptions struct {
	addr           string
	root           string
	pool           int
	roundsPer      int64
	drainTimeout   time.Duration
	supervised     bool
	quota          service.Quota
	islandDeadline time.Duration

	cluster   bool
	nodeID    string
	leaseTTL  time.Duration
	join      string
	slots     int
	advertise string

	retain       int
	retainAge    time.Duration
	cacheMaxSpec string
	cacheMax     int64
}

// validate rejects malformed flag combinations with one-line errors
// before anything touches the store.
func (o *daemonOptions) validate() error {
	if o.root == "" {
		return fmt.Errorf("-root is required")
	}
	if parent := filepath.Dir(filepath.Clean(o.root)); parent != "." {
		if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
			return fmt.Errorf("-root %s: parent directory %s does not exist", o.root, parent)
		}
	}
	if o.pool < 0 {
		return fmt.Errorf("-pool must be at least 1 (or 0 for GOMAXPROCS), got %d", o.pool)
	}
	if o.roundsPer < 1 {
		return fmt.Errorf("-rounds-per-slice must be at least 1, got %d", o.roundsPer)
	}
	if o.quota.MaxRunning < 0 || o.quota.MaxLive < 0 || o.quota.MaxBudget < 0 || o.quota.MaxWallSeconds < 0 {
		return fmt.Errorf("quota flags must be non-negative (0 = unlimited)")
	}
	if o.retain < 0 {
		return fmt.Errorf("-retain must be non-negative, got %d", o.retain)
	}
	if o.retainAge < 0 {
		return fmt.Errorf("-retain-age must be non-negative, got %v", o.retainAge)
	}
	if o.join != "" && !strings.HasPrefix(o.join, "http://") && !strings.HasPrefix(o.join, "https://") {
		return fmt.Errorf("-join must be a base URL like http://host:8080, got %q", o.join)
	}
	if o.join != "" && o.slots < 1 {
		return fmt.Errorf("-slots must be at least 1, got %d", o.slots)
	}
	if o.join != "" && o.cluster {
		return fmt.Errorf("-join (worker mode) and -cluster (coordinator mode) are mutually exclusive")
	}
	if o.leaseTTL < 50*time.Millisecond {
		return fmt.Errorf("-lease-ttl must be at least 50ms, got %v", o.leaseTTL)
	}
	n, err := parseSize(o.cacheMaxSpec)
	if err != nil {
		return fmt.Errorf("-cache-max-bytes: %v", err)
	}
	o.cacheMax = n
	return nil
}

// parseSize parses a byte size like "1048576", "64K", "64M", "2G"
// (decimal multipliers of 1024). Empty means 0 (unbounded).
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative byte count like 64M, got %q", s)
	}
	return n * mult, nil
}

func (o *daemonOptions) nodeName() string {
	if o.nodeID != "" {
		return o.nodeID
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (o *daemonOptions) serviceConfig() service.Config {
	cfg := service.Config{
		Pool:                o.pool,
		RoundsPerSlice:      o.roundsPer,
		DefaultQuota:        o.quota,
		Retain:              o.retain,
		RetainAge:           o.retainAge,
		SharedCacheMaxBytes: o.cacheMax,
	}
	if o.supervised {
		// Inert without faults (DESIGN.md §11), so supervision is on by
		// default: one campaign's injected or real faults never take the
		// daemon down.
		cfg.Supervise = &supervise.Options{Enabled: true, IslandDeadline: o.islandDeadline}
	}
	if o.cluster {
		cfg.Cluster = &service.ClusterConfig{NodeID: o.nodeName(), LeaseTTL: o.leaseTTL}
	}
	return cfg
}

func run(o daemonOptions) error {
	cfg := o.serviceConfig()
	svc, err := service.Open(o.root, cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(svc)}
	mode := "single-node"
	if o.cluster {
		mode = "cluster node " + svc.NodeID()
	}
	log.Printf("pbsed: serving on http://%s (root %s, pool %d, %d round(s)/slice, %s)",
		ln.Addr(), o.root, cfg.Pool, o.roundsPer, mode)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("pbsed: %v: draining (checkpointing in-flight slices)", sig)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		srv.Close()
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	log.Printf("pbsed: drained; all campaigns checkpointed")
	return nil
}

// runWorker is `pbsed -join`: a remote slice worker. It opens the same
// shared root, serves /cluster/exec, and keeps its membership with the
// coordinator alive until SIGTERM.
func runWorker(o daemonOptions) error {
	root, err := store.OpenRoot(o.root)
	if err != nil {
		return err
	}
	if o.cacheMax > 0 {
		if err := root.SetSharedCacheMaxBytes(o.cacheMax); err != nil {
			return err
		}
	}
	exec := service.NewSliceExec(root, o.serviceConfig())
	node := o.nodeName()
	w := &cluster.Worker{ID: node, Exec: exec.Exec, Concurrency: o.slots}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	adv := o.advertise
	if adv == "" {
		adv = "http://" + ln.Addr().String()
	}
	srv := &http.Server{Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("pbsed: worker %s serving slices on %s (advertised %s, %d slot(s), coordinator %s)",
		node, ln.Addr(), adv, o.slots, o.join)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- cluster.JoinLoop(ctx, cluster.JoinConfig{
			Coordinator: o.join, ID: node, Addr: adv, Slots: o.slots, Logf: log.Printf,
		})
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("pbsed: worker %s: %v: finishing in-flight slices", node, sig)
	case err := <-errc:
		return err
	}
	cancel()
	sctx, scancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
	}
	<-joinErr
	log.Printf("pbsed: worker %s stopped", node)
	return nil
}
