// Command pbsed is the pbSE campaign daemon: an HTTP/JSON service that
// runs many symbolic-execution campaigns for many tenants over one
// shared worker pool (DESIGN.md §13). Campaigns are multiplexed at
// scheduler-round granularity through the checkpoint/resume machinery,
// so every campaign is durable between slices: a SIGTERM drains to
// checkpoints and exits cleanly, a SIGKILL loses at most the slices in
// flight, and the next pbsed over the same -root resumes every
// in-flight campaign bit-identically.
//
// Quick start:
//
//	pbsed -root /var/lib/pbse -addr :8080 &
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"tenant":"alice","driver":"readelf","budget":200000}'
//	curl -N localhost:8080/v1/campaigns/c000001/events
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbse/internal/service"
	"pbse/internal/supervise"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		root          = flag.String("root", "", "store root directory (required): campaigns/<id>/ stores + shared/ verdict cache")
		pool          = flag.Int("pool", 0, "shared slice-worker count (0 = GOMAXPROCS)")
		roundsPer     = flag.Int64("rounds-per-slice", 1, "scheduler rounds one granted slice runs before checkpointing and requeueing")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight slices to checkpoint on SIGTERM/SIGINT")
		noSupervise   = flag.Bool("no-supervise", false, "run campaign slices without the fault-isolation supervisor")
		maxRunning    = flag.Int("quota-running", 0, "per-tenant cap on simultaneously running campaigns (0 = unlimited)")
		maxLive       = flag.Int("quota-live", 0, "per-tenant cap on live (non-terminal) campaigns (0 = unlimited)")
		maxBudget     = flag.Int64("quota-budget", 0, "per-tenant cap on aggregate in-flight virtual-time budget (0 = unlimited)")
		maxWall       = flag.Float64("quota-wall-seconds", 0, "per-tenant cap on aggregate worker wall-clock seconds (0 = unlimited)")
		islandDeadman = flag.Duration("island-deadline", 30*time.Second, "supervised: wall-clock watchdog per island turn")
	)
	flag.Parse()
	if err := run(*addr, *root, *pool, *roundsPer, *drainTimeout, !*noSupervise,
		service.Quota{MaxRunning: *maxRunning, MaxLive: *maxLive, MaxBudget: *maxBudget, MaxWallSeconds: *maxWall},
		*islandDeadman); err != nil {
		fmt.Fprintln(os.Stderr, "pbsed:", err)
		os.Exit(1)
	}
}

func run(addr, root string, pool int, roundsPer int64, drainTimeout time.Duration,
	supervised bool, quota service.Quota, islandDeadline time.Duration) error {
	if root == "" {
		return fmt.Errorf("-root is required")
	}
	cfg := service.Config{
		Pool:           pool,
		RoundsPerSlice: roundsPer,
		DefaultQuota:   quota,
	}
	if supervised {
		// Inert without faults (DESIGN.md §11), so supervision is on by
		// default: one campaign's injected or real faults never take the
		// daemon down.
		cfg.Supervise = &supervise.Options{Enabled: true, IslandDeadline: islandDeadline}
	}
	svc, err := service.Open(root, cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(svc)}
	log.Printf("pbsed: serving on http://%s (root %s, pool %d, %d round(s)/slice)",
		ln.Addr(), root, cfg.Pool, roundsPer)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("pbsed: %v: draining (checkpointing in-flight slices)", sig)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		srv.Close()
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	log.Printf("pbsed: drained; all campaigns checkpointed")
	return nil
}
