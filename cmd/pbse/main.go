// Command pbse runs phase-based symbolic execution end-to-end on one of
// the bundled targets and prints a report: phases found, coverage, bugs
// with witness inputs, and the paper-style c-time/p-time accounting.
//
// Usage:
//
//	pbse -driver readelf -seedsize 576 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbse/internal/pbse"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbse:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		driver   = flag.String("driver", "readelf", "target test driver (readelf, pngtest, gif2tiff, tiff2rgba, dwarfdump)")
		seedSize = flag.Int("seedsize", 576, "generated seed size in bytes")
		budget   = flag.Int64("budget", 2_000_000, "virtual-time budget (instructions)")
		rngSeed  = flag.Int64("rng", 42, "random seed (determinism)")
		buggy    = flag.Bool("buggy-seed", false, "use the bug-triggering seed generator")
	)
	flag.Parse()

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return err
	}
	prog, err := tgt.Build()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*rngSeed))
	var seed []byte
	if *buggy {
		if tgt.GenBuggySeed == nil {
			return fmt.Errorf("target %s has no buggy seed generator", *driver)
		}
		seed = tgt.GenBuggySeed(rng)
	} else {
		seed = tgt.GenSeed(rng, *seedSize)
	}

	fmt.Printf("pbSE on %s (%s), seed %d bytes, budget %d\n", tgt.Name, tgt.Paper, len(seed), *budget)
	res, err := pbse.Run(prog, seed, pbse.Options{Budget: *budget, Seed: *rngSeed},
		symex.Options{InputSize: len(seed)})
	if err != nil {
		return err
	}

	fmt.Printf("\nconcolic execution: %d instructions (c-time), %d BBVs, %d seedStates\n",
		res.CTime, len(res.Concolic.BBVs), len(res.Concolic.SeedStates))
	fmt.Printf("phase analysis:     %v (p-time), k=%d, %d phases (%d trap)\n",
		res.PTime, res.Division.K, len(res.Division.Phases), res.Division.NumTrap)
	for _, ps := range res.PhaseStats {
		mark := " "
		if ps.Trap {
			mark = "T"
		}
		fmt.Printf("  phase %2d %s  seedStates=%-4d steps=%-8d newBlocks=%-5d bugs=%d\n",
			ps.ID, mark, ps.SeedStates, ps.Steps, ps.NewBlocks, ps.Bugs)
	}
	fmt.Printf("\ncoverage: %d / %d basic blocks\n", res.Covered, len(prog.AllBlocks))
	fmt.Printf("bugs: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [phase %d] %s\n", b.Phase, b)
		if b.Input != nil {
			fmt.Printf("    witness (first 32 bytes): % x\n", head(b.Input, 32))
		}
	}
	st := res.Executor.Solver.Stats()
	fmt.Printf("\nsolver: %d queries, %d cache hits, %d candidate hits, %d interval hits, %d SAT runs\n",
		st.Queries, st.CacheHits, st.CandidateSat, st.IntervalFast, st.SATRuns)
	return nil
}

func head(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
