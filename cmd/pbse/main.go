// Command pbse runs phase-based symbolic execution end-to-end on one of
// the bundled targets and prints a report: phases found, coverage, bugs
// with witness inputs and stable IDs, and the paper-style c-time/p-time
// accounting.
//
// Usage:
//
//	pbse -driver readelf -seedsize 576 -budget 2000000
//
// With -store DIR the campaign is persisted: a checkpoint at every
// scheduler round barrier, a cross-run solver verdict cache, and a
// bug-reproducer corpus. -resume continues a killed or interrupted
// campaign from its checkpoint; -max-rounds N stops (checkpointed) after
// N rounds; -replay BUG_ID re-executes a stored reproducer concretely
// and checks it still faults at the recorded site.
//
// -supervise runs the campaign under the fault-isolation supervisor
// (DESIGN.md §11): island turns are contained by recover boundaries and
// the -island-deadline watchdog, faulting islands retry with degraded
// budgets up to -max-island-restarts, and — when -store is also set —
// the process itself runs under a re-exec loop that restarts it from
// the last checkpoint after a hard crash (SIGKILL, OOM kill, panic of
// the runtime itself).
//
// Exit status: 0 when the run completes without finding bugs (or a
// replay reproduces its bug), 2 when bugs are found (or a replay fails
// to reproduce), 1 on errors.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/pbse"
	"pbse/internal/solver"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// Environment markers of the -supervise re-exec loop: the parent sets
// both for its child, so a supervised child never becomes a parent
// itself and can report how many times the campaign was restarted.
const (
	envSupervisedChild = "PBSE_SUPERVISED_CHILD"
	envRestarts        = "PBSE_RESTARTS"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbse:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		driver   = flag.String("driver", "readelf", "target test driver (readelf, pngtest, gif2tiff, tiff2rgba, dwarfdump)")
		seedSize = flag.Int("seedsize", 576, "generated seed size in bytes")
		budget   = flag.Int64("budget", 2_000_000, "virtual-time budget (instructions)")
		rngSeed  = flag.Int64("rng", 42, "random seed (determinism)")
		buggy    = flag.Bool("buggy-seed", false, "use the bug-triggering seed generator")
		workers  = flag.Int("workers", 0, "worker count for the work-stealing scheduler (0 = GOMAXPROCS, 1 = round-robin scheduler)")
		determ   = flag.Bool("deterministic", false, "use the round-barrier island scheduler: bit-identical results for any worker count, at the cost of fast-mode throughput")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit (sampling rate 5)")

		maxConflicts  = flag.Int64("max-conflicts", 0, "solver conflict budget per query (0 = default)")
		queryDeadline = flag.Duration("query-deadline", 0, "solver wall-clock deadline per query (0 = none)")
		maxStates     = flag.Int("max-states", 0, "cap on live states; further forks suppressed (0 = unlimited)")
		maxStateBytes = flag.Int64("max-state-bytes", 0, "soft cap on estimated live-state memory; evicts costliest states (0 = unlimited)")
		injectSpec    = flag.String("inject", "", "fault-injection spec, e.g. solver-unknown=0.1,solver-slow=0.05:1ms,step-panic=0.01,alloc-pressure=0.2:1048576")
		noAbsint      = flag.Bool("no-absint", false, "disable the abstract-interpretation pass (static branch pruning and phase annotation)")

		storeDir  = flag.String("store", "", "persistent run store directory (checkpoints, solver cache, reproducer corpus)")
		resume    = flag.Bool("resume", false, "resume the campaign from the store's checkpoint (requires -store)")
		maxRounds = flag.Int64("max-rounds", 0, "stop after N scheduler rounds with a checkpoint saved (requires -store; 0 = run to budget)")
		replayID  = flag.String("replay", "", "replay a stored bug reproducer by ID and exit (requires -store)")

		supervised        = flag.Bool("supervise", false, "run under the fault-isolation supervisor (with -store: also the crash-recovery re-exec loop)")
		islandDeadline    = flag.Duration("island-deadline", 30*time.Second, "supervised: wall-clock watchdog per island turn (negative = no watchdog)")
		maxIslandRestarts = flag.Int("max-island-restarts", 3, "supervised: consecutive faults before an island is quarantined")
		maxRestarts       = flag.Int("max-restarts", 64, "supervised: process restarts before the re-exec loop gives up")
	)
	flag.Parse()

	if *storeDir == "" && (*resume || *maxRounds > 0 || *replayID != "") {
		return 1, fmt.Errorf("-resume, -max-rounds and -replay require -store")
	}

	// The crash-recovery loop: re-exec this binary as a supervised child
	// and restart it from the store's checkpoint whenever it dies on a
	// signal. Only the parent of a persisted supervised campaign loops;
	// everything below this block is the child (or an unsupervised run).
	if *supervised && *storeDir != "" && *replayID == "" && os.Getenv(envSupervisedChild) == "" {
		return superviseLoop(*storeDir, *maxRestarts)
	}

	// Profiling starts only here — below the re-exec dispatch — so a
	// supervised parent and its child never race on the same profile
	// file; the campaign-running process is the one profiled.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *mutexProfile)
	if err != nil {
		return 1, err
	}
	defer stopProfiles()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			return 1, err
		}
	}

	if *replayID != "" {
		return replay(st, *driver, *replayID)
	}

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return 1, err
	}
	prog, err := tgt.Build()
	if err != nil {
		return 1, err
	}
	rng := rand.New(rand.NewSource(*rngSeed))
	var seed []byte
	if *buggy {
		if tgt.GenBuggySeed == nil {
			return 1, fmt.Errorf("target %s has no buggy seed generator", *driver)
		}
		seed = tgt.GenBuggySeed(rng)
	} else {
		seed = tgt.GenSeed(rng, *seedSize)
	}

	exOpts := symex.Options{
		InputSize: len(seed),
		SolverOpts: solver.Options{
			MaxConflicts:  *maxConflicts,
			QueryDeadline: *queryDeadline,
		},
		MaxStates:     *maxStates,
		MaxStateBytes: *maxStateBytes,
	}
	if *injectSpec != "" {
		inj, err := faultinject.ParseSpec(*injectSpec, *rngSeed)
		if err != nil {
			return 1, err
		}
		exOpts.FaultInjector = inj
	}

	popts := pbse.Options{
		Budget: *budget, Seed: *rngSeed, Workers: *workers,
		Deterministic: *determ,
		DisableAbsint: *noAbsint,
		Store:         st, Resume: *resume, MaxRounds: *maxRounds, StoreLabel: *driver,
	}
	if *supervised {
		popts.Supervise = &supervise.Options{
			Enabled:           true,
			IslandDeadline:    *islandDeadline,
			MaxIslandRestarts: *maxIslandRestarts,
			Seed:              *rngSeed,
		}
	}

	fmt.Printf("pbSE on %s (%s), seed %d bytes, budget %d\n", tgt.Name, tgt.Paper, len(seed), *budget)
	res, err := pbse.Run(prog, seed, popts, exOpts)
	if err != nil {
		return 1, err
	}

	if res.Resumed {
		fmt.Printf("resumed from checkpoint: clock %d, %d phases restored\n",
			res.CTime, len(res.PhaseStats))
	}
	fmt.Printf("\nconcolic execution: %d instructions (c-time), %d BBVs, %d seedStates\n",
		res.CTime, len(res.Concolic.BBVs), len(res.Concolic.SeedStates))
	fmt.Printf("phase analysis:     %v (p-time), k=%d, %d phases (%d trap)\n",
		res.PTime, res.Division.K, len(res.Division.Phases), res.Division.NumTrap)
	for _, ps := range res.PhaseStats {
		mark := " "
		if ps.Trap {
			mark = "T"
		}
		fmt.Printf("  phase %2d %s  seedStates=%-4d steps=%-8d newBlocks=%-5d bugs=%d\n",
			ps.ID, mark, ps.SeedStates, ps.Steps, ps.NewBlocks, ps.Bugs)
	}
	fmt.Printf("\ncoverage: %d / %d basic blocks\n", res.Covered, len(prog.AllBlocks))
	fmt.Printf("bugs: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  %s [phase %d] %s\n", b.ID(), b.Phase, b)
		if b.Input != nil {
			fmt.Printf("    witness (first 32 bytes): % x\n", head(b.Input, 32))
		}
	}
	sst := res.SolverStats
	fmt.Printf("\nsolver: %d queries, %d static prunes, %d cache hits, %d candidate hits, %d interval hits, %d SAT runs\n",
		sst.Queries, sst.StaticPrunes, sst.CacheHits, sst.CandidateSat, sst.IntervalFast, sst.SATRuns)
	fmt.Printf("solver unknowns: %d (budget %d, deadline %d, injected %d, internal %d)\n",
		sst.Unknowns, sst.BudgetExhausted, sst.DeadlineExceeded, sst.InjectedUnknowns, sst.InternalRecovered)
	if res.Workers > 1 {
		sc := res.SharedCache
		fmt.Printf("workers: %d (shared cache: %d hits, %d misses, %d stores, %d entries)\n",
			res.Workers, sc.Hits, sc.Misses, sc.Stores, sc.Entries)
		for _, w := range res.WorkerStats {
			fmt.Printf("  worker %d: %d turns, %d steps\n", w.Worker, w.Turns, w.Steps)
		}
	}
	g := res.Gov
	fmt.Printf("governance: %d unknowns, %d retries, %d concretizations, %d quarantines, %d evictions\n",
		g.SolverUnknowns, g.SolverRetries, g.Concretizations, g.Quarantines, g.Evictions)
	if res.Supervised {
		// The re-exec parent is the authority on process restarts; the
		// checkpoint never carries them.
		if n, err := strconv.Atoi(os.Getenv(envRestarts)); err == nil {
			res.Sup.ProcessRestarts = int64(n)
		}
		sup := res.Sup
		fmt.Printf("supervision: %d crashes, %d hangs, %d watchdog trips, %d restarts, %d backoff skips, %d degraded rounds\n",
			sup.Crashes, sup.Hangs, sup.WatchdogTrips, sup.Restarts, sup.BackoffSkips, sup.DegradedRounds)
		fmt.Printf("supervision: %d requeued states, %d quarantined islands (%d states), %d fault checkpoints, %d store faults, %d process restarts\n",
			sup.RequeuedStates, sup.QuarantinedIslands, sup.QuarantinedStates, sup.FaultCheckpoints, sup.StoreFaults, sup.ProcessRestarts)
	}
	for _, q := range res.Executor.QuarantineRecords() {
		fmt.Printf("  quarantined state %d at %s/%s: %s\n", q.StateID, q.Func, q.Block, q.Panic)
	}
	if st != nil {
		ss := res.Store
		fmt.Printf("store: %d checkpoints (%d bytes last), %d verdicts loaded, %d flushed, %d reproducers added\n",
			ss.Checkpoints, ss.CheckpointBytes, ss.VerdictsLoaded, ss.VerdictsFlushed, ss.CorpusAdded)
	}
	if res.Interrupted {
		fmt.Printf("interrupted after %d round(s); resume with -store %s -resume\n", *maxRounds, *storeDir)
	}
	if len(res.Bugs) > 0 {
		return 2, nil
	}
	return 0, nil
}

// startProfiles arms the requested pprof outputs and returns the stop
// function that flushes them. CPU profiling runs for the whole campaign;
// the heap and mutex profiles are snapshots taken at exit (the mutex
// profile is what quantifies steal-channel and shard-lock contention in
// the work-stealing scheduler).
func startProfiles(cpu, mem, mutex string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(5)
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			if f, err := os.Create(mem); err == nil {
				runtime.GC() // settle the heap so the snapshot reflects live data
				_ = pprof.Lookup("heap").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintln(os.Stderr, "pbse: memprofile:", err)
			}
		}
		if mutex != "" {
			if f, err := os.Create(mutex); err == nil {
				_ = pprof.Lookup("mutex").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintln(os.Stderr, "pbse: mutexprofile:", err)
			}
		}
	}, nil
}

// superviseLoop is the self-healing re-exec supervisor: it runs this
// binary again as a supervised child and, whenever the child dies on a
// signal (kill -9, OOM kill — anything that never returns an exit code),
// restarts it from the store's latest checkpoint by appending -resume.
// A child that exits normally — success, bugs found, or a regular error
// — ends the loop with that exit code. Restarting from the checkpoint
// loses at most one round of work per crash, so a crashing-but-resumable
// campaign still drains its whole budget.
func superviseLoop(storeDir string, maxRestarts int) (int, error) {
	exe, err := os.Executable()
	if err != nil {
		return 1, err
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return 1, err
	}
	// The child decides fresh-vs-resume per attempt from the store, so
	// any -resume the user passed is stripped and re-added only when a
	// checkpoint actually exists (a first attempt has none).
	base := stripResume(os.Args[1:])
	for restarts := 0; ; restarts++ {
		args := base
		if st.HasCheckpoint() {
			args = append(append([]string(nil), base...), "-resume")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
		cmd.Env = append(os.Environ(),
			envSupervisedChild+"=1",
			fmt.Sprintf("%s=%d", envRestarts, restarts))
		err := cmd.Run()
		code := cmd.ProcessState.ExitCode()
		if code >= 0 {
			// A real exit, even a failing one, is the campaign's verdict;
			// only signal deaths are the supervisor's to heal.
			return code, nil
		}
		if restarts >= maxRestarts {
			return 1, fmt.Errorf("supervisor: child died on a signal %d times (last: %v); giving up", restarts+1, err)
		}
		fmt.Fprintf(os.Stderr, "pbse supervisor: child died on a signal (%v); restarting from checkpoint (%d/%d)\n",
			err, restarts+1, maxRestarts)
	}
}

// stripResume removes -resume (in both -resume and -resume=... spellings)
// from an argument list.
func stripResume(args []string) []string {
	out := make([]string, 0, len(args))
	for _, a := range args {
		switch {
		case a == "-resume" || a == "--resume":
		case len(a) > 8 && (a[:8] == "-resume=" || (len(a) > 9 && a[:9] == "--resume=")):
		default:
			out = append(out, a)
		}
	}
	return out
}

// replay re-executes a stored reproducer concretely and verifies it still
// faults at the recorded site. The target is rebuilt from the manifest's
// label (falling back to -driver when the label is empty).
func replay(st *store.Store, driver, id string) (int, error) {
	if m, err := st.ReadManifest(); err != nil {
		return 1, err
	} else if m != nil && m.Label != "" {
		driver = m.Label
	}
	tgt, err := targets.ByDriver(driver)
	if err != nil {
		return 1, err
	}
	prog, err := tgt.Build()
	if err != nil {
		return 1, err
	}
	entry, input, err := st.ReadReproducer(id)
	if err != nil {
		// An unknown bug ID is the common operator mistake; answer it
		// with the store's actual inventory instead of a raw ENOENT.
		if entries, cerr := st.Corpus(); cerr == nil {
			ids := make([]string, 0, len(entries))
			for _, e := range entries {
				ids = append(ids, e.ID)
			}
			if len(ids) == 0 {
				return 1, fmt.Errorf("replay: no reproducer %q: store %s has an empty corpus", id, st.Dir())
			}
			return 1, fmt.Errorf("replay: no reproducer %q in store %s; stored bug IDs: %s",
				id, st.Dir(), strings.Join(ids, ", "))
		}
		return 1, err
	}
	ok, msg, err := store.Replay(prog, entry, input, 0)
	if err != nil {
		return 1, err
	}
	fmt.Printf("replay %s on %s (%s in %s.%s[%d], input %d bytes): %s\n",
		id, driver, entry.Kind, entry.Func, entry.Block, entry.Index, len(input), msg)
	if !ok {
		return 2, nil
	}
	return 0, nil
}

func head(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
