// Command pbse runs phase-based symbolic execution end-to-end on one of
// the bundled targets and prints a report: phases found, coverage, bugs
// with witness inputs, and the paper-style c-time/p-time accounting.
//
// Usage:
//
//	pbse -driver readelf -seedsize 576 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbse/internal/faultinject"
	"pbse/internal/pbse"
	"pbse/internal/solver"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbse:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		driver   = flag.String("driver", "readelf", "target test driver (readelf, pngtest, gif2tiff, tiff2rgba, dwarfdump)")
		seedSize = flag.Int("seedsize", 576, "generated seed size in bytes")
		budget   = flag.Int64("budget", 2_000_000, "virtual-time budget (instructions)")
		rngSeed  = flag.Int64("rng", 42, "random seed (determinism)")
		buggy    = flag.Bool("buggy-seed", false, "use the bug-triggering seed generator")
		workers  = flag.Int("workers", 0, "phases executed simultaneously (0 = GOMAXPROCS, 1 = sequential scheduler)")

		maxConflicts  = flag.Int64("max-conflicts", 0, "solver conflict budget per query (0 = default)")
		queryDeadline = flag.Duration("query-deadline", 0, "solver wall-clock deadline per query (0 = none)")
		maxStates     = flag.Int("max-states", 0, "cap on live states; further forks suppressed (0 = unlimited)")
		maxStateBytes = flag.Int64("max-state-bytes", 0, "soft cap on estimated live-state memory; evicts costliest states (0 = unlimited)")
		injectSpec    = flag.String("inject", "", "fault-injection spec, e.g. solver-unknown=0.1,solver-slow=0.05:1ms,step-panic=0.01,alloc-pressure=0.2:1048576")
	)
	flag.Parse()

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return err
	}
	prog, err := tgt.Build()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*rngSeed))
	var seed []byte
	if *buggy {
		if tgt.GenBuggySeed == nil {
			return fmt.Errorf("target %s has no buggy seed generator", *driver)
		}
		seed = tgt.GenBuggySeed(rng)
	} else {
		seed = tgt.GenSeed(rng, *seedSize)
	}

	exOpts := symex.Options{
		InputSize: len(seed),
		SolverOpts: solver.Options{
			MaxConflicts:  *maxConflicts,
			QueryDeadline: *queryDeadline,
		},
		MaxStates:     *maxStates,
		MaxStateBytes: *maxStateBytes,
	}
	if *injectSpec != "" {
		inj, err := faultinject.ParseSpec(*injectSpec, *rngSeed)
		if err != nil {
			return err
		}
		exOpts.FaultInjector = inj
	}

	fmt.Printf("pbSE on %s (%s), seed %d bytes, budget %d\n", tgt.Name, tgt.Paper, len(seed), *budget)
	res, err := pbse.Run(prog, seed, pbse.Options{Budget: *budget, Seed: *rngSeed, Workers: *workers}, exOpts)
	if err != nil {
		return err
	}

	fmt.Printf("\nconcolic execution: %d instructions (c-time), %d BBVs, %d seedStates\n",
		res.CTime, len(res.Concolic.BBVs), len(res.Concolic.SeedStates))
	fmt.Printf("phase analysis:     %v (p-time), k=%d, %d phases (%d trap)\n",
		res.PTime, res.Division.K, len(res.Division.Phases), res.Division.NumTrap)
	for _, ps := range res.PhaseStats {
		mark := " "
		if ps.Trap {
			mark = "T"
		}
		fmt.Printf("  phase %2d %s  seedStates=%-4d steps=%-8d newBlocks=%-5d bugs=%d\n",
			ps.ID, mark, ps.SeedStates, ps.Steps, ps.NewBlocks, ps.Bugs)
	}
	fmt.Printf("\ncoverage: %d / %d basic blocks\n", res.Covered, len(prog.AllBlocks))
	fmt.Printf("bugs: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [phase %d] %s\n", b.Phase, b)
		if b.Input != nil {
			fmt.Printf("    witness (first 32 bytes): % x\n", head(b.Input, 32))
		}
	}
	st := res.SolverStats
	fmt.Printf("\nsolver: %d queries, %d cache hits, %d candidate hits, %d interval hits, %d SAT runs\n",
		st.Queries, st.CacheHits, st.CandidateSat, st.IntervalFast, st.SATRuns)
	fmt.Printf("solver unknowns: %d (budget %d, deadline %d, injected %d, internal %d)\n",
		st.Unknowns, st.BudgetExhausted, st.DeadlineExceeded, st.InjectedUnknowns, st.InternalRecovered)
	if res.Workers > 1 {
		sc := res.SharedCache
		fmt.Printf("workers: %d (shared cache: %d hits, %d misses, %d stores, %d entries)\n",
			res.Workers, sc.Hits, sc.Misses, sc.Stores, sc.Entries)
		for _, w := range res.WorkerStats {
			fmt.Printf("  worker %d: %d turns, %d steps\n", w.Worker, w.Turns, w.Steps)
		}
	}
	g := res.Gov
	fmt.Printf("governance: %d unknowns, %d retries, %d concretizations, %d quarantines, %d evictions\n",
		g.SolverUnknowns, g.SolverRetries, g.Concretizations, g.Quarantines, g.Evictions)
	for _, q := range res.Executor.QuarantineRecords() {
		fmt.Printf("  quarantined state %d at %s/%s: %s\n", q.StateID, q.Func, q.Block, q.Panic)
	}
	return nil
}

func head(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
