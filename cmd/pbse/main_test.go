package main

import (
	"math/rand"
	"strings"
	"testing"

	"pbse/internal/pbse"
	"pbse/internal/store"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// TestReplayUnknownBugID is the regression gate for the -replay error
// path: an ID that is not in the store's corpus must exit non-zero with
// an error that names the missing ID and the stored inventory — not a
// raw file-not-found from the corpus layer.
func TestReplayUnknownBugID(t *testing.T) {
	// Empty store: clear error, non-zero exit, mentions the empty corpus.
	empty, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	code, rerr := replay(empty, "readelf", "bdeadbeefdeadbeef")
	if code == 0 || rerr == nil {
		t.Fatalf("replay of unknown ID in empty store: code %d, err %v", code, rerr)
	}
	for _, want := range []string{"bdeadbeefdeadbeef", "empty corpus"} {
		if !strings.Contains(rerr.Error(), want) {
			t.Errorf("error %q does not mention %q", rerr, want)
		}
	}

	// Populated store: the error lists the real bug IDs so the operator
	// can correct the typo, and those IDs still replay cleanly.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 256)
	res, err := pbse.Run(prog, seed, pbse.Options{
		Budget: 20_000, Seed: 42, Workers: 1, Store: st, StoreLabel: "readelf",
	}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) == 0 {
		t.Fatal("readelf@20k produced no reproducers to test against")
	}
	knownID := res.Bugs[0].ID()

	code, rerr = replay(st, "readelf", "bdeadbeefdeadbeef")
	if code == 0 || rerr == nil {
		t.Fatalf("replay of unknown ID: code %d, err %v", code, rerr)
	}
	if !strings.Contains(rerr.Error(), knownID) {
		t.Errorf("error %q does not list stored ID %s", rerr, knownID)
	}

	code, rerr = replay(st, "readelf", knownID)
	if code != 0 || rerr != nil {
		t.Fatalf("replay of stored ID %s: code %d, err %v", knownID, code, rerr)
	}
}
