// Command phaseviz reproduces the paper's figure data: basic-block
// distribution scatter data for concrete and symbolic execution (Fig 1,
// Fig 5) and phase divisions with and without the coverage element
// (Fig 4). It prints ASCII previews and optionally writes CSV files.
//
// Usage:
//
//	phaseviz -driver gif2tiff -seedsize 407 -out /tmp/fig
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbse/internal/concolic"
	"pbse/internal/ir"
	"pbse/internal/phase"
	"pbse/internal/symex"
	"pbse/internal/targets"
	"pbse/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phaseviz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		driver   = flag.String("driver", "readelf", "target test driver")
		seedSize = flag.Int("seedsize", 576, "generated seed size in bytes")
		budget   = flag.Int64("symbudget", 500_000, "symbolic execution budget for the Fig 1(b)-style run")
		rngSeed  = flag.Int64("rng", 42, "random seed")
		out      = flag.String("out", "", "prefix for CSV output files (empty: ASCII only)")
		buggy    = flag.Bool("buggy-seed", false, "also trace the bug-triggering seed (Fig 5(b))")
	)
	flag.Parse()

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*rngSeed))
	seed := tgt.GenSeed(rng, *seedSize)

	// concrete/concolic run with trace (Fig 1(a))
	progA, err := tgt.Build()
	if err != nil {
		return err
	}
	exA := symex.NewExecutor(progA, symex.Options{InputSize: len(seed)})
	con, err := concolic.Run(exA, seed, concolic.Options{RecordTrace: true})
	if err != nil {
		return err
	}
	ix := trace.NewIndexer()
	concretePts := ix.Series(con.Trace)
	fmt.Printf("— concrete execution of %s on a %d-byte seed (%d block entries) —\n",
		tgt.Driver, len(seed), len(con.Trace))
	fmt.Print(trace.ScatterASCII(concretePts, 16, 72))

	// symbolic run with the default searcher, shared indexer (Fig 1(b))
	progB, err := tgt.Build()
	if err != nil {
		return err
	}
	exB := symex.NewExecutor(progB, symex.Options{InputSize: len(seed)})
	var symEvents []concolic.TracePoint
	exB.BlockHook = func(_ *symex.State, b *ir.Block, clock int64) {
		symEvents = append(symEvents, concolic.TracePoint{Time: clock, BlockID: b.ID})
	}
	s, _ := symex.NewSearcher(symex.SearchDefault, exB, rand.New(rand.NewSource(*rngSeed)))
	s.Add(exB.NewEntryState())
	(&symex.Runner{Ex: exB, Search: s}).Run(*budget)
	symbolicPts := ix.Series(symEvents)
	fmt.Printf("\n— symbolic execution (default searcher, %d instructions) —\n", *budget)
	fmt.Print(trace.ScatterASCII(symbolicPts, 16, 72))

	missed := trace.MissedBlocks(concreteCovered(con), exB.CoveredBlocks())
	fmt.Printf("\nblocks covered concretely but missed by symbolic execution: %d\n", len(missed))

	// phase divisions with and without the coverage element (Fig 4)
	withCov := phase.Divide(con.BBVs, phase.DefaultOptions())
	woOpts := phase.DefaultOptions()
	woOpts.IncludeCoverage = false
	withoutCov := phase.Divide(con.BBVs, woOpts)
	fmt.Printf("\n— phase division (Fig 4) —\n")
	fmt.Printf("BBV-only:      k=%-2d trap phases=%d\n", withoutCov.K, withoutCov.NumTrap)
	fmt.Print("  ", trace.PhaseBandsASCII(withoutCov.Assign, func(p int) bool { return withoutCov.Phases[p].Trap }))
	fmt.Printf("BBV+coverage:  k=%-2d trap phases=%d\n", withCov.K, withCov.NumTrap)
	fmt.Print("  ", trace.PhaseBandsASCII(withCov.Assign, func(p int) bool { return withCov.Phases[p].Trap }))

	if *buggy && tgt.GenBuggySeed != nil {
		bseed := tgt.GenBuggySeed(rand.New(rand.NewSource(*rngSeed)))
		progC, err := tgt.Build()
		if err != nil {
			return err
		}
		exC := symex.NewExecutor(progC, symex.Options{InputSize: len(bseed)})
		bcon, err := concolic.Run(exC, bseed, concolic.Options{RecordTrace: true})
		if err != nil {
			return err
		}
		fmt.Printf("\n— concrete execution of the buggy seed (Fig 5(b)) —\n")
		fmt.Print(trace.ScatterASCII(ix.Series(bcon.Trace), 16, 72))
		if *out != "" {
			if err := writeCSV(*out+"_buggy_concrete.csv", ix.Series(bcon.Trace)); err != nil {
				return err
			}
		}
	}

	if *out != "" {
		if err := writeCSV(*out+"_concrete.csv", concretePts); err != nil {
			return err
		}
		if err := writeCSV(*out+"_symbolic.csv", symbolicPts); err != nil {
			return err
		}
		f, err := os.Create(*out + "_phases.csv")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WritePhaseCSV(f, con.BBVs, withCov.Assign,
			func(p int) bool { return withCov.Phases[p].Trap }); err != nil {
			return err
		}
		fmt.Printf("\nCSV written with prefix %s\n", *out)
	}
	return nil
}

func concreteCovered(con *concolic.Result) []int {
	seen := make(map[int]bool)
	var out []int
	for _, p := range con.Trace {
		if !seen[p.BlockID] {
			seen[p.BlockID] = true
			out = append(out, p.BlockID)
		}
	}
	return out
}

func writeCSV(path string, pts []trace.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCSV(f, pts)
}
