// Command kleerun runs a KLEE-style baseline: pure symbolic execution of
// a target with one of the paper's search strategies over a fully
// symbolic input — the comparison columns of Tables I and II.
//
// Usage:
//
//	kleerun -driver readelf -searcher random-path -symsize 100 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbse/internal/symex"
	"pbse/internal/targets"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kleerun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		driver   = flag.String("driver", "readelf", "target test driver")
		searcher = flag.String("searcher", "default", "search strategy: dfs, bfs, random-state, random-path, covnew, md2u, default")
		symSize  = flag.Int("symsize", 100, "symbolic input size in bytes")
		budget   = flag.Int64("budget", 2_000_000, "virtual-time budget (instructions)")
		rngSeed  = flag.Int64("rng", 1, "random seed (determinism)")
		every    = flag.Int64("report-every", 0, "print coverage every N instructions (0: only at the end)")
	)
	flag.Parse()

	tgt, err := targets.ByDriver(*driver)
	if err != nil {
		return err
	}
	prog, err := tgt.Build()
	if err != nil {
		return err
	}

	ex := symex.NewExecutor(prog, symex.Options{InputSize: *symSize})
	s, err := symex.NewSearcher(symex.SearcherKind(*searcher), ex, rand.New(rand.NewSource(*rngSeed)))
	if err != nil {
		return err
	}
	s.Add(ex.NewEntryState())
	runner := &symex.Runner{Ex: ex, Search: s}

	fmt.Printf("KLEE baseline on %s: searcher=%s sym-file=%d bytes budget=%d\n",
		tgt.Name, s.Name(), *symSize, *budget)
	if *every > 0 {
		for next := *every; next <= *budget; next += *every {
			runner.Run(next)
			fmt.Printf("  t=%-10d covered=%d states=%d bugs=%d\n",
				ex.Clock(), ex.NumCovered(), ex.LiveStates(), ex.Bugs.Len())
			if s.Empty() {
				break
			}
		}
	} else {
		runner.Run(*budget)
	}

	fmt.Printf("\ncovered %d / %d basic blocks, %d bugs, clock %d\n",
		ex.NumCovered(), len(prog.AllBlocks), ex.Bugs.Len(), ex.Clock())
	for _, b := range ex.Bugs.Reports() {
		fmt.Printf("  %s\n", b)
	}
	return nil
}
