package pbse

import (
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/supervise"
)

// supervisePoint is one campaign measurement of the supervision layer.
type supervisePoint struct {
	Covered       int     `json:"covered"`
	Bugs          int     `json:"bugs"`
	WallMS        float64 `json:"wall_ms"`
	Crashes       int64   `json:"crashes"`
	Hangs         int64   `json:"hangs"`
	WatchdogTrips int64   `json:"watchdog_trips"`
	Requeued      int64   `json:"requeued_states"`
	Degraded      int64   `json:"degraded_rounds"`
}

// chaosPoint is a supervised campaign under injected island faults.
type chaosPoint struct {
	Rate        float64        `json:"rate"` // per-turn crash AND hang probability
	Point       supervisePoint `json:"point"`
	CoveragePct float64        `json:"coverage_pct"` // vs the no-fault supervised run
	Completed   bool           `json:"completed"`
}

// superviseSweep records one driver's supervision overhead and fault
// tolerance: the no-fault overhead target is < 3% wall-clock, and the
// supervised no-fault run must be bit-identical to the unsupervised one.
type superviseSweep struct {
	Driver      string         `json:"driver"`
	Budget      int64          `json:"budget"`
	Workers     int            `json:"workers"`
	Off         supervisePoint `json:"off"` // unsupervised
	On          supervisePoint `json:"on"`  // supervised, no faults
	OverheadPct float64        `json:"overhead_pct"`
	Identical   bool           `json:"identical"` // coverage+bugs, on vs off
	Chaos       []chaosPoint   `json:"chaos"`
}

func superviseRun(b *testing.B, driver string, workers int, budget int64,
	so *supervise.Options, inj *faultinject.Injector) (*Result, supervisePoint) {
	b.Helper()
	tgt, err := TargetByDriver(driver)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		b.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	start := time.Now()
	res, err := Run(prog, seed,
		Options{Budget: budget, Seed: 42, Workers: workers, Supervise: so},
		ExecutorOptions{InputSize: len(seed), FaultInjector: inj})
	if err != nil {
		b.Fatal(err)
	}
	return res, supervisePoint{
		Covered:       res.Covered,
		Bugs:          len(res.Bugs),
		WallMS:        float64(time.Since(start).Microseconds()) / 1000,
		Crashes:       res.Sup.Crashes,
		Hangs:         res.Sup.Hangs,
		WatchdogTrips: res.Sup.WatchdogTrips,
		Requeued:      res.Sup.RequeuedStates,
		Degraded:      res.Sup.DegradedRounds,
	}
}

// emitSuperviseSweep measures supervision overhead at fault rate 0 and
// fault tolerance at escalating chaos rates, merging the sweep into
// BENCH_supervise.json. Overhead is the median of per-pair relative
// wall-clock differences with the arm order alternating each pair:
// shared boxes drift (load, thermal), so an arm that always ran first
// would systematically get the cooler slot, and a min-of-N estimator
// inherits that bias — paired signed diffs cancel it.
func emitSuperviseSweep(b *testing.B, benchName, driver string) {
	b.Helper()
	const budget = 400_000
	const workers = 4
	const pairs = 4
	noFault := &supervise.Options{Enabled: true}

	sweep := superviseSweep{Driver: driver, Budget: budget, Workers: workers}
	diffs := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		var off, on supervisePoint
		if i%2 == 0 {
			_, off = superviseRun(b, driver, workers, budget, nil, nil)
			_, on = superviseRun(b, driver, workers, budget, noFault, nil)
		} else {
			_, on = superviseRun(b, driver, workers, budget, noFault, nil)
			_, off = superviseRun(b, driver, workers, budget, nil, nil)
		}
		if off.WallMS > 0 {
			diffs = append(diffs, 100*(on.WallMS-off.WallMS)/off.WallMS)
		}
		if i == 0 {
			sweep.Off, sweep.On = off, on
		}
	}
	sort.Float64s(diffs)
	if n := len(diffs); n > 0 {
		sweep.OverheadPct = diffs[n/2]
		if n%2 == 0 {
			sweep.OverheadPct = (diffs[n/2-1] + diffs[n/2]) / 2
		}
	}
	sweep.Identical = sweep.On.Covered == sweep.Off.Covered && sweep.On.Bugs == sweep.Off.Bugs

	for _, rate := range []float64{0.02, 0.05, 0.10} {
		// The injected hang (3s) clearly exceeds deadline+grace (1.8s)
		// so every fired hang walks the watchdog/limbo path, while the
		// 1.5s deadline stays far above real turn durations at this
		// budget — a spurious trip sends a healthy island up the retry
		// ladder and costs real coverage.
		inj := faultinject.New(42, faultinject.Options{
			IslandCrashRate: rate,
			IslandHangRate:  rate,
			IslandHangDelay: 3 * time.Second,
		})
		res, pt := superviseRun(b, driver, workers, budget, &supervise.Options{
			Enabled:           true,
			IslandDeadline:    1500 * time.Millisecond,
			HangGrace:         300 * time.Millisecond,
			MaxIslandRestarts: 20,
		}, inj)
		cp := chaosPoint{Rate: rate, Point: pt, Completed: !res.Interrupted}
		if sweep.On.Covered > 0 {
			cp.CoveragePct = 100 * float64(pt.Covered) / float64(sweep.On.Covered)
		}
		sweep.Chaos = append(sweep.Chaos, cp)
	}

	b.ReportMetric(sweep.OverheadPct, "overhead-pct")
	if n := len(sweep.Chaos); n > 0 {
		b.ReportMetric(sweep.Chaos[n-1].CoveragePct, "chaos-coverage-pct")
	}

	const path = "BENCH_supervise.json"
	doc := make(map[string]superviseSweep)
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc) // corrupt file: start over
	}
	doc[benchName] = sweep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSuperviseReadelf and BenchmarkSuperviseGif2tiff record the
// supervision layer's no-fault overhead and chaos tolerance on the two
// acceptance targets.
func BenchmarkSuperviseReadelf(b *testing.B) {
	emitSuperviseSweep(b, "BenchmarkSuperviseReadelf", "readelf")
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkSuperviseGif2tiff(b *testing.B) {
	emitSuperviseSweep(b, "BenchmarkSuperviseGif2tiff", "gif2tiff")
	for i := 0; i < b.N; i++ {
	}
}
