// Package pbse is the public entry point of the phase-based symbolic
// execution library, a from-scratch Go reproduction of "pbSE: Phase-based
// Symbolic Execution" (DSN 2017).
//
// The package re-exports the pieces a user needs to run the system
// end-to-end: the bundled file-parser targets, the pbSE algorithm, and
// the KLEE-style baseline searchers it is evaluated against. The
// underlying substrates (expression language, solver, IR, interpreters,
// phase analysis) live in internal packages; see DESIGN.md for the map.
//
// Quick start:
//
//	tgt, _ := pbse.TargetByDriver("readelf")
//	prog, _ := tgt.Build()
//	seed := tgt.GenSeed(rand.New(rand.NewSource(1)), 576)
//	res, _ := pbse.Run(prog, seed, pbse.Options{Budget: 2_000_000},
//	    pbse.ExecutorOptions{InputSize: len(seed)})
//	fmt.Println(res.Covered, "blocks covered,", len(res.Bugs), "bugs")
package pbse

import (
	"math/rand"

	"pbse/internal/ir"
	ipbse "pbse/internal/pbse"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// Core pbSE types (Algorithms 1–3 of the paper).
type (
	// Options configure a pbSE run (budget, time period, phase analysis
	// knobs, ablation switches).
	Options = ipbse.Options
	// Result is the outcome: coverage, bugs with witnesses, phase
	// statistics, and the coverage-over-time series.
	Result = ipbse.Result
	// ExecutorOptions configure the symbolic execution engine.
	ExecutorOptions = symex.Options
	// Target couples a synthetic parser program with its seed generators.
	Target = targets.Target
	// Program is a finalised IR module.
	Program = ir.Program
	// SearcherKind names a KLEE-style search strategy.
	SearcherKind = symex.SearcherKind
)

// The KLEE search strategies of the paper's Table I.
const (
	SearchDFS         = symex.SearchDFS
	SearchBFS         = symex.SearchBFS
	SearchRandomState = symex.SearchRandomState
	SearchRandomPath  = symex.SearchRandomPath
	SearchCovNew      = symex.SearchCovNew
	SearchMD2U        = symex.SearchMD2U
	SearchDefault     = symex.SearchDefault
)

// Run executes pbSE: concolic execution of the seed, phase division, and
// phase-scheduled symbolic execution, within opts.Budget virtual time.
func Run(prog *Program, seed []byte, opts Options, exOpts ExecutorOptions) (*Result, error) {
	return ipbse.Run(prog, seed, opts, exOpts)
}

// Targets returns the bundled synthetic parser targets (the analogues of
// the paper's readelf, pngtest, gif2tiff, tiff2rgba and dwarfdump).
func Targets() []*Target { return targets.All() }

// TargetByDriver looks a target up by its test-driver name.
func TargetByDriver(driver string) (*Target, error) { return targets.ByDriver(driver) }

// SelectSeed applies the paper's §III-B4 heuristic: among the 10 smallest
// candidate seeds, pick the one with the highest concrete coverage.
func SelectSeed(prog *Program, candidates [][]byte) []byte {
	return targets.SelectSeed(prog, candidates)
}

// BaselineResult summarises a KLEE-style baseline run.
type BaselineResult struct {
	Covered int
	Bugs    int
	Clock   int64
}

// RunBaseline runs one of the KLEE search strategies from scratch on a
// fully symbolic input of inputSize bytes for the given virtual-time
// budget — the comparison columns of Tables I and II.
func RunBaseline(prog *Program, kind SearcherKind, inputSize int, budget, rngSeed int64) (BaselineResult, error) {
	ex := symex.NewExecutor(prog, symex.Options{InputSize: inputSize})
	s, err := symex.NewSearcher(kind, ex, rand.New(rand.NewSource(rngSeed)))
	if err != nil {
		return BaselineResult{}, err
	}
	s.Add(ex.NewEntryState())
	(&symex.Runner{Ex: ex, Search: s}).Run(budget)
	return BaselineResult{Covered: ex.NumCovered(), Bugs: ex.Bugs.Len(), Clock: ex.Clock()}, nil
}
