module pbse

go 1.22
