// Top-level benchmarks: one per table and figure of the paper, wrapping
// the same experiment code cmd/experiments uses for the full run. Each
// benchmark executes the experiment at a small budget per iteration and
// reports covered blocks / bugs / trap phases as custom metrics, so
// `go test -bench=. -benchmem` regenerates every result at smoke scale.
// For paper-scale numbers use `go run ./cmd/experiments`.
package pbse

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"pbse/internal/experiments"
)

// benchConfig keeps each benchmark iteration around a second.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.BudgetB = 4_000
	cfg.SymSizes = []int{10, 100}
	return cfg
}

// parallelPoint is one worker-count measurement of the parallel sweep.
type parallelPoint struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Blocks       int     `json:"blocks"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// SpeedupVsW1 is this point's blocks/sec over the W=1 point's — the
	// throughput ratio the CI scaling gate reads. On a single-core box
	// it measures the algorithmic win (batched blasting, shared-verdict
	// reuse, affinity selection), not parallel hardware.
	SpeedupVsW1 float64 `json:"speedup_vs_w1"`
	// Efficiency is SpeedupVsW1/Workers: 1.0 means perfectly linear.
	Efficiency float64 `json:"efficiency"`
}

// parallelSweep is one driver's W=1,2,4,8 sweep.
type parallelSweep struct {
	Driver     string          `json:"driver"`
	Budget     int64           `json:"budget"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Points     []parallelPoint `json:"points"`
	// SpeedupW8vW1 duplicates the W=8 point's SpeedupVsW1 (blocks/sec
	// ratio) at the top level for quick scanning.
	SpeedupW8vW1 float64 `json:"speedup_w8_vs_w1"`
}

// emitParallelSweep runs the given driver at the same budget under
// W=1,2,4,8, then merges the measurements into BENCH_parallel.json keyed
// by benchmark name — the artifact CI uploads so the parallel scheduler's
// scaling has a recorded trajectory. On a single-core runner the sweep
// still runs (the scheduler interleaves islands); the gomaxprocs field
// records how much hardware the speedup had to work with.
func emitParallelSweep(b *testing.B, benchName, driver string) {
	b.Helper()
	tgt, err := TargetByDriver(driver)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		b.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	sweep := parallelSweep{Driver: driver, Budget: 400_000, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var bpsW1 float64
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := Run(prog, seed,
			Options{Budget: sweep.Budget, Seed: 42, Workers: w},
			ExecutorOptions{InputSize: len(seed)})
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		p := parallelPoint{
			Workers:      w,
			WallMS:       float64(wall.Microseconds()) / 1e3,
			Blocks:       res.Covered,
			BlocksPerSec: float64(res.Covered) / wall.Seconds(),
		}
		if w == 1 {
			bpsW1 = p.BlocksPerSec
		}
		if bpsW1 > 0 {
			p.SpeedupVsW1 = p.BlocksPerSec / bpsW1
			p.Efficiency = p.SpeedupVsW1 / float64(w)
		}
		sweep.Points = append(sweep.Points, p)
		b.ReportMetric(p.BlocksPerSec, "blocks/sec-w"+itoa(w))
	}
	if last := sweep.Points[len(sweep.Points)-1]; last.BlocksPerSec > 0 {
		sweep.SpeedupW8vW1 = last.SpeedupVsW1
	}

	const path = "BENCH_parallel.json"
	doc := make(map[string]parallelSweep)
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc) // corrupt file: start over
	}
	doc[benchName] = sweep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n >= 10 {
		return itoa(n/10) + itoa(n%10)
	}
	return string(rune('0' + n))
}

// BenchmarkTableI regenerates the readelf searcher comparison and emits
// the readelf parallel-scaling sweep to BENCH_parallel.json.
func BenchmarkTableI(b *testing.B) {
	cfg := benchConfig()
	emitParallelSweep(b, "BenchmarkTableI", "readelf")
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best, pbse := 0, 0
		for _, c := range res.Baselines {
			if c.Cov10B > best {
				best = c.Cov10B
			}
		}
		for _, c := range res.PBSE {
			if c.Cov10B > pbse {
				pbse = c.Cov10B
			}
		}
		b.ReportMetric(float64(best), "klee-best-blocks")
		b.ReportMetric(float64(pbse), "pbse-blocks")
	}
}

// BenchmarkTableII regenerates the gif2tiff/pngtest/dwarfdump comparison.
func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		inc := 0.0
		for _, r := range rows {
			inc += r.IncreasePct
		}
		b.ReportMetric(inc/float64(len(rows)), "mean-increase-pct")
	}
}

// BenchmarkTableIII regenerates the bug table.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bugsFound, repro := 0, 0
		for _, r := range rows {
			bugsFound += len(r.Bugs)
			repro += r.Reproduce
		}
		b.ReportMetric(float64(bugsFound), "bugs")
		b.ReportMetric(float64(repro), "witnesses-reproduce")
	}
}

// BenchmarkFig1 regenerates the concrete-vs-symbolic distribution data.
func BenchmarkFig1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		missed := 0
		for _, r := range rows {
			missed += r.Missed
		}
		b.ReportMetric(float64(missed), "concrete-only-blocks")
	}
}

// BenchmarkFig4 regenerates the phase-division comparison and emits the
// gif2tiff parallel-scaling sweep to BENCH_parallel.json.
func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	emitParallelSweep(b, "BenchmarkFig4", "gif2tiff")
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TrapsBBVOnly), "traps-bbv-only")
		b.ReportMetric(float64(r.TrapsBBVCoverage), "traps-bbv-coverage")
	}
}

// BenchmarkFig5 regenerates the tiff2rgba CIELab case study.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	cfg.BudgetB = 20_000 // the deep-phase bug needs a little room
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		found := 0.0
		if r.PBSEFoundOOB {
			found = 1
		}
		b.ReportMetric(found, "pbse-found-cielab-oob")
	}
}

// BenchmarkAblationCoverageBBV through BenchmarkAblationKSelection run the
// pbSE design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.CoverageOn-r.CoverageOff), "delta-"+metricName(r.Name))
		}
	}
}

// BenchmarkAblationSolver runs the solver fast-path ablations.
func BenchmarkAblationSolver(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SolverAblations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Stats.SATRuns), "satruns-"+metricName(r.Name))
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}
