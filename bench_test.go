// Top-level benchmarks: one per table and figure of the paper, wrapping
// the same experiment code cmd/experiments uses for the full run. Each
// benchmark executes the experiment at a small budget per iteration and
// reports covered blocks / bugs / trap phases as custom metrics, so
// `go test -bench=. -benchmem` regenerates every result at smoke scale.
// For paper-scale numbers use `go run ./cmd/experiments`.
package pbse

import (
	"testing"

	"pbse/internal/experiments"
)

// benchConfig keeps each benchmark iteration around a second.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.BudgetB = 4_000
	cfg.SymSizes = []int{10, 100}
	return cfg
}

// BenchmarkTableI regenerates the readelf searcher comparison.
func BenchmarkTableI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best, pbse := 0, 0
		for _, c := range res.Baselines {
			if c.Cov10B > best {
				best = c.Cov10B
			}
		}
		for _, c := range res.PBSE {
			if c.Cov10B > pbse {
				pbse = c.Cov10B
			}
		}
		b.ReportMetric(float64(best), "klee-best-blocks")
		b.ReportMetric(float64(pbse), "pbse-blocks")
	}
}

// BenchmarkTableII regenerates the gif2tiff/pngtest/dwarfdump comparison.
func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		inc := 0.0
		for _, r := range rows {
			inc += r.IncreasePct
		}
		b.ReportMetric(inc/float64(len(rows)), "mean-increase-pct")
	}
}

// BenchmarkTableIII regenerates the bug table.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bugsFound, repro := 0, 0
		for _, r := range rows {
			bugsFound += len(r.Bugs)
			repro += r.Reproduce
		}
		b.ReportMetric(float64(bugsFound), "bugs")
		b.ReportMetric(float64(repro), "witnesses-reproduce")
	}
}

// BenchmarkFig1 regenerates the concrete-vs-symbolic distribution data.
func BenchmarkFig1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		missed := 0
		for _, r := range rows {
			missed += r.Missed
		}
		b.ReportMetric(float64(missed), "concrete-only-blocks")
	}
}

// BenchmarkFig4 regenerates the phase-division comparison.
func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TrapsBBVOnly), "traps-bbv-only")
		b.ReportMetric(float64(r.TrapsBBVCoverage), "traps-bbv-coverage")
	}
}

// BenchmarkFig5 regenerates the tiff2rgba CIELab case study.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	cfg.BudgetB = 20_000 // the deep-phase bug needs a little room
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		found := 0.0
		if r.PBSEFoundOOB {
			found = 1
		}
		b.ReportMetric(found, "pbse-found-cielab-oob")
	}
}

// BenchmarkAblationCoverageBBV through BenchmarkAblationKSelection run the
// pbSE design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.CoverageOn-r.CoverageOff), "delta-"+metricName(r.Name))
		}
	}
}

// BenchmarkAblationSolver runs the solver fast-path ablations.
func BenchmarkAblationSolver(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SolverAblations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Stats.SATRuns), "satruns-"+metricName(r.Name))
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}
