// Package analysis provides static analyses over the ir package: a
// reusable forward/backward dataflow framework, dominator trees and
// natural-loop detection, interprocedural input-taint analysis, def-use
// and liveness, and an IR linter built on top of them. The results feed
// phase scheduling (static trap-phase hints), the symbolic-execution
// distance heuristic, and the cmd/irlint tool.
package analysis

import "math/bits"

// BitSet is a fixed-capacity bit vector; the lattice value of every
// bitset-based dataflow pass in this package.
type BitSet []uint64

// NewBitSet returns an empty set able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds bit i.
func (s BitSet) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes bit i.
func (s BitSet) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is present.
func (s BitSet) Get(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Union adds every bit of o, reporting whether s changed.
func (s BitSet) Union(o BitSet) bool {
	changed := false
	for i, w := range o {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect keeps only bits present in o, reporting whether s changed.
func (s BitSet) Intersect(o BitSet) bool {
	changed := false
	for i, w := range o {
		if nw := s[i] & w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with o.
func (s BitSet) Copy(o BitSet) { copy(s, o) }

// Fill sets every bit (the top element of intersection lattices).
func (s BitSet) Fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports element-wise equality (lengths must match).
func (s BitSet) Equal(o BitSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Direction orients a dataflow pass.
type Direction int

// Pass directions.
const (
	Forward Direction = iota
	Backward
)

// Problem defines one intra-procedural dataflow pass. Blocks are named by
// their position within the function (ir.Block.Index).
type Problem interface {
	// Direction orients propagation: Forward meets over predecessors,
	// Backward over successors.
	Direction() Direction
	// Bits is the lattice width (e.g. number of registers).
	Bits() int
	// Boundary initialises the entry in-set (Forward) or every exit
	// out-set (Backward). The set arrives zeroed.
	Boundary(v BitSet)
	// Init initialises every interior set before iteration (zeroed on
	// arrival; Fill it for intersection problems).
	Init(v BitSet)
	// Meet folds src into dst (union or intersection), reporting change.
	Meet(dst, src BitSet) bool
	// Transfer computes out from in for one block. Forward passes map
	// in->out; Backward passes are handed (out, in) in that order, i.e.
	// the first argument is always the input of the transfer function.
	Transfer(block int, in, out BitSet)
}

// Solve iterates p to a fixpoint over fi's reachable blocks and returns
// the per-block in and out sets (indexed by block position). For backward
// passes, "in" still means the set at block entry and "out" the set at
// block exit.
func Solve(fi *FuncInfo, p Problem) (in, out []BitSet) {
	n := len(fi.Fn.Blocks)
	bitsN := p.Bits()
	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(bitsN)
		out[i] = NewBitSet(bitsN)
		p.Init(in[i])
		p.Init(out[i])
	}

	order := fi.RPO
	if p.Direction() == Backward {
		order = make([]int, len(fi.RPO))
		for i, b := range fi.RPO {
			order[len(fi.RPO)-1-i] = b
		}
	}

	if p.Direction() == Forward {
		for i := range in[0] {
			in[0][i] = 0
		}
		p.Boundary(in[0])
	} else {
		for _, b := range fi.RPO {
			if len(fi.Succs[b]) == 0 {
				for i := range out[b] {
					out[b][i] = 0
				}
				p.Boundary(out[b])
			}
		}
	}

	tmp := NewBitSet(bitsN)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if p.Direction() == Forward {
				// The entry block meets its predecessors too (it may be a
				// loop header); its in-set starts from Boundary rather than
				// Init, which keeps intersection problems correct.
				for _, pr := range fi.Preds[b] {
					if fi.Reachable[pr] {
						p.Meet(in[b], out[pr])
					}
				}
				tmp.Copy(out[b])
				p.Transfer(b, in[b], out[b])
				if !tmp.Equal(out[b]) {
					changed = true
				}
			} else {
				if len(fi.Succs[b]) > 0 {
					for _, su := range fi.Succs[b] {
						p.Meet(out[b], in[su])
					}
				}
				tmp.Copy(in[b])
				p.Transfer(b, out[b], in[b])
				if !tmp.Equal(in[b]) {
					changed = true
				}
			}
		}
	}
	return in, out
}
