package analysis

import (
	"math/bits"

	"pbse/internal/ir"
)

// inputSite is the points-to site of the symbolic input object; OpAlloca
// instructions get sites 1..numSites-1 in program order.
const inputSite = 0

// TaintInfo is the result of the interprocedural input-taint analysis:
// which registers, memory objects and branch conditions (transitively)
// depend on OpInput / OpInputLen. Registers are tracked flow-sensitively
// per function via the dataflow framework; memory is summarised per
// allocation site; calls propagate taint through argument/return
// summaries iterated to a global fixpoint.
type TaintInfo struct {
	prog     *ir.Program
	funcIdx  map[*ir.Func]int
	numSites int
	siteOf   map[*ir.Instr]int

	pts      [][]BitSet // [func][reg] -> may-point-to site set
	ptsMem   []BitSet   // [site] -> sites whose pointers are stored in it
	retPts   []BitSet   // [func] -> sites the return value may point to
	memTaint BitSet     // [site] -> object may hold input-derived bytes
	parTaint []BitSet   // [func] -> params that may receive tainted args
	retTaint []bool     // [func] -> return value may be tainted

	// RegIn holds, per function and block position, the set of registers
	// that may be input-tainted at block entry (final fixpoint).
	RegIn [][]BitSet
	// InputDepTerm marks, per global block ID, conditional terminators
	// (br/switch) whose operand may be input-tainted.
	InputDepTerm []bool
}

func newTaintInfo(p *ir.Program) *TaintInfo {
	t := &TaintInfo{
		prog:    p,
		funcIdx: make(map[*ir.Func]int, len(p.Funcs)),
		siteOf:  make(map[*ir.Instr]int),
	}
	t.numSites = 1 // the input object
	for fi, f := range p.Funcs {
		t.funcIdx[f] = fi
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpAlloca {
					t.siteOf[&b.Instrs[i]] = t.numSites
					t.numSites++
				}
			}
		}
	}
	t.pts = make([][]BitSet, len(p.Funcs))
	t.parTaint = make([]BitSet, len(p.Funcs))
	t.retPts = make([]BitSet, len(p.Funcs))
	for fi, f := range p.Funcs {
		t.pts[fi] = make([]BitSet, f.NumRegs)
		for r := range t.pts[fi] {
			t.pts[fi][r] = NewBitSet(t.numSites)
		}
		t.parTaint[fi] = NewBitSet(f.NumRegs)
		t.retPts[fi] = NewBitSet(t.numSites)
	}
	t.ptsMem = make([]BitSet, t.numSites)
	for s := range t.ptsMem {
		t.ptsMem[s] = NewBitSet(t.numSites)
	}
	t.memTaint = NewBitSet(t.numSites)
	t.memTaint.Set(inputSite) // the input object is tainted by definition
	t.retTaint = make([]bool, len(p.Funcs))
	return t
}

// forEachSite invokes fn for every site in s.
func forEachSite(s BitSet, fn func(site int)) {
	for wi, w := range s {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// buildPointsTo computes the flow-insensitive may-point-to sets: which
// allocation sites (or the input object) each register, memory slot and
// return value can refer to. Blocks are visited through each function's
// CFG reverse postorder (the one walk cfg.go already owns), which both
// skips unreachable blocks and speeds fixpoint convergence.
func (t *TaintInfo) buildPointsTo(funcs []*FuncInfo) {
	for changed := true; changed; {
		changed = false
		mark := func(c bool) {
			if c {
				changed = true
			}
		}
		for fi, f := range t.prog.Funcs {
			pts := t.pts[fi]
			for _, bi := range funcs[fi].RPO {
				b := f.Blocks[bi]
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.OpAlloca:
						if !pts[in.Dst].Get(t.siteOf[in]) {
							pts[in.Dst].Set(t.siteOf[in])
							changed = true
						}
					case ir.OpInput:
						if !pts[in.Dst].Get(inputSite) {
							pts[in.Dst].Set(inputSite)
							changed = true
						}
					case ir.OpMov, ir.OpZext, ir.OpSext, ir.OpTrunc, ir.OpNot:
						mark(pts[in.Dst].Union(pts[in.A]))
					case ir.OpSelect:
						mark(pts[in.Dst].Union(pts[in.B]))
						mark(pts[in.Dst].Union(pts[in.C]))
					case ir.OpBin:
						// pointer arithmetic: either operand may carry the base
						mark(pts[in.Dst].Union(pts[in.A]))
						mark(pts[in.Dst].Union(pts[in.B]))
					case ir.OpLoad:
						forEachSite(pts[in.A], func(s int) {
							mark(pts[in.Dst].Union(t.ptsMem[s]))
						})
					case ir.OpStore:
						forEachSite(pts[in.A], func(s int) {
							mark(t.ptsMem[s].Union(pts[in.B]))
						})
					case ir.OpCall:
						callee := t.prog.Func(in.Callee)
						if callee == nil {
							continue
						}
						ci := t.funcIdx[callee]
						for ai, a := range in.Args {
							mark(t.pts[ci][ai].Union(pts[a]))
						}
						if in.Dst != ir.NoReg {
							mark(pts[in.Dst].Union(t.retPts[ci]))
						}
					case ir.OpRet:
						if in.A != ir.NoReg {
							mark(t.retPts[fi].Union(pts[in.A]))
						}
					}
				}
			}
		}
	}
}

// taintProblem is the per-function forward register-taint pass; the
// lattice is one bit per register. Memory and call effects go through the
// shared TaintInfo summaries, so the enclosing interprocedural loop
// re-solves functions until those stabilise too.
type taintProblem struct {
	t       *TaintInfo
	fidx    int
	changed *bool
}

func (p *taintProblem) Direction() Direction      { return Forward }
func (p *taintProblem) Bits() int                 { return p.t.prog.Funcs[p.fidx].NumRegs }
func (p *taintProblem) Boundary(v BitSet)         { v.Union(p.t.parTaint[p.fidx]) }
func (p *taintProblem) Init(v BitSet)             {}
func (p *taintProblem) Meet(dst, src BitSet) bool { return dst.Union(src) }
func (p *taintProblem) Transfer(block int, in, out BitSet) {
	out.Copy(in)
	b := p.t.prog.Funcs[p.fidx].Blocks[block]
	for i := range b.Instrs {
		p.t.applyInstr(p.fidx, &b.Instrs[i], out, p.changed)
	}
}

// applyInstr updates the register-taint set across one instruction,
// recording summary growth (memory, params, returns) in *global.
func (t *TaintInfo) applyInstr(fidx int, in *ir.Instr, regs BitSet, global *bool) {
	tainted := func(r ir.Reg) bool { return regs.Get(int(r)) }
	setDst := func(v bool) {
		if in.Dst == ir.NoReg {
			return
		}
		if v {
			regs.Set(int(in.Dst))
		} else {
			regs.Clear(int(in.Dst))
		}
	}
	switch in.Op {
	case ir.OpConst, ir.OpAlloca, ir.OpInput:
		setDst(false) // pointers themselves are not input-derived
	case ir.OpInputLen:
		setDst(true)
	case ir.OpBin, ir.OpCmp:
		setDst(tainted(in.A) || tainted(in.B))
	case ir.OpNot, ir.OpMov, ir.OpZext, ir.OpSext, ir.OpTrunc:
		setDst(tainted(in.A))
	case ir.OpSelect:
		setDst(tainted(in.A) || tainted(in.B) || tainted(in.C))
	case ir.OpLoad:
		v := tainted(in.A) // input-chosen address -> input-chosen value
		forEachSite(t.pts[fidx][in.A], func(s int) {
			if t.memTaint.Get(s) {
				v = true
			}
		})
		setDst(v)
	case ir.OpStore:
		if tainted(in.A) || tainted(in.B) {
			forEachSite(t.pts[fidx][in.A], func(s int) {
				if !t.memTaint.Get(s) {
					t.memTaint.Set(s)
					*global = true
				}
			})
		}
	case ir.OpCall:
		callee := t.prog.Func(in.Callee)
		if callee == nil {
			setDst(false)
			return
		}
		ci := t.funcIdx[callee]
		for ai, a := range in.Args {
			if tainted(a) && !t.parTaint[ci].Get(ai) {
				t.parTaint[ci].Set(ai)
				*global = true
			}
		}
		setDst(t.retTaint[ci])
	case ir.OpRet:
		if in.A != ir.NoReg && tainted(in.A) && !t.retTaint[fidx] {
			t.retTaint[fidx] = true
			*global = true
		}
	}
}

// run executes the whole analysis: points-to, then the interprocedural
// taint fixpoint, then terminator classification.
func (t *TaintInfo) run(funcs []*FuncInfo) {
	t.buildPointsTo(funcs)
	t.RegIn = make([][]BitSet, len(t.prog.Funcs))
	for changed := true; changed; {
		changed = false
		for fi := range t.prog.Funcs {
			p := &taintProblem{t: t, fidx: fi, changed: &changed}
			in, _ := Solve(funcs[fi], p)
			if t.RegIn[fi] == nil {
				t.RegIn[fi] = in
				changed = true
			} else {
				for b := range in {
					if !t.RegIn[fi][b].Equal(in[b]) {
						t.RegIn[fi] = in
						changed = true
						break
					}
				}
			}
		}
	}

	t.InputDepTerm = make([]bool, len(t.prog.AllBlocks))
	if len(t.prog.AllBlocks) == 0 {
		return // unfinalised program: no global block IDs to classify by
	}
	scratch := BitSet(nil)
	var sink bool
	for fi, f := range t.prog.Funcs {
		if cap(scratch)*64 < f.NumRegs {
			scratch = NewBitSet(f.NumRegs)
		}
		// the CFG's RPO lists exactly the reachable blocks — no separate
		// reachability filter needed
		for _, bi := range funcs[fi].RPO {
			b := f.Blocks[bi]
			s := scratch[:(f.NumRegs+63)/64]
			for i := range s {
				s[i] = 0
			}
			s.Union(t.RegIn[fi][bi])
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpBr || in.Op == ir.OpSwitch {
					t.InputDepTerm[b.ID] = s.Get(int(in.A))
					break
				}
				t.applyInstr(fi, in, s, &sink)
			}
		}
	}
}

// MemTainted reports whether the given allocation site may hold
// input-derived bytes (site 0 is the input object itself).
func (t *TaintInfo) MemTainted(site int) bool { return t.memTaint.Get(site) }
