package absint

import (
	"fmt"

	"pbse/internal/analysis"
	"pbse/internal/ir"
)

// Diagnostic kinds contributed by the abstract-interpretation pass.
const (
	// DiagInfeasibleEdge: a switch arm (or default) no execution can take.
	DiagInfeasibleEdge analysis.DiagKind = "absint-infeasible-edge"
	// DiagConstGuard: a br whose interval-proven condition always goes one
	// way — the guard is constant-foldable.
	DiagConstGuard analysis.DiagKind = "absint-const-guard"
	// DiagUnreachable: a CFG-reachable block the interval/SCCP fixpoint
	// proves no execution enters.
	DiagUnreachable analysis.DiagKind = "absint-unreachable"
)

// Analyze runs the interval/SCCP fixpoint over every function of p and
// flattens the results into global-block-ID form. p must be finalised.
func Analyze(inf *analysis.Info) *analysis.AbsFacts {
	p := inf.Prog
	n := len(p.AllBlocks)
	facts := &analysis.AbsFacts{
		Entry:     make([][]analysis.RegFact, n),
		Term:      make([][]analysis.RegFact, n),
		EdgeDead:  make([][]bool, n),
		Unreached: make([]bool, n),
	}
	for fx, fn := range p.Funcs {
		fa := analyzeFunc(fn, inf.Funcs[fx])
		for bi, b := range fn.Blocks {
			id := b.ID
			if fa.in[bi] == nil {
				facts.Unreached[id] = true
				facts.NumUnreached++
				row := make([]bool, len(fa.edgeOK[bi]))
				for ti := range row {
					row[ti] = true
				}
				facts.EdgeDead[id] = row
				continue
			}
			facts.Entry[id] = compactFacts(fa.in[bi])
			if fa.term[bi] != nil {
				facts.Term[id] = compactFacts(fa.term[bi])
			}
			row := make([]bool, len(fa.edgeOK[bi]))
			for ti, ok := range fa.edgeOK[bi] {
				if !ok {
					row[ti] = true
					facts.NumDeadEdges++
				}
			}
			facts.EdgeDead[id] = row
		}
	}
	return facts
}

// BuildReport analyses p and returns the unified static-analysis report
// with the abstract-interpretation facts filled in.
func BuildReport(p *ir.Program) *analysis.Report {
	rep := analysis.NewReport(p)
	rep.Abs = Analyze(rep.Info)
	return rep
}

// compactFacts keeps only informative register facts: a known width and
// a range strictly narrower than the full width (otherwise the fact says
// nothing a reader of the register does not already know).
func compactFacts(st []aval) []analysis.RegFact {
	var out []analysis.RegFact
	for r, v := range st {
		if v.w == 0 || (v.lo == 0 && v.hi == mask(uint(v.w))) {
			continue
		}
		out = append(out, analysis.RegFact{Reg: ir.Reg(r), Lo: v.lo, Hi: v.hi, Width: v.w})
	}
	return out
}

// Lint reports unreachable blocks, statically dead branch edges, and
// constant-foldable guards found by the pass, in deterministic order.
func Lint(inf *analysis.Info) []analysis.Diag {
	var out []analysis.Diag
	p := inf.Prog
	for fx, fn := range p.Funcs {
		fi := inf.Funcs[fx]
		fa := analyzeFunc(fn, fi)
		for bi, b := range fn.Blocks {
			if fa.in[bi] == nil {
				if fi.Reachable == nil || fi.Reachable[bi] {
					out = append(out, analysis.Diag{
						Kind: DiagUnreachable, Prog: fn.Prog.Name, Func: fn.Name,
						Block: b.Name, Instr: -1,
						Msg: "no execution reaches this block (interval/SCCP fixpoint)",
					})
				}
				continue
			}
			t := b.Terminator()
			if t == nil || fa.term[bi] == nil {
				continue
			}
			ti := len(b.Instrs) - 1
			switch t.Op {
			case ir.OpBr:
				dead := -1
				for e, ok := range fa.edgeOK[bi] {
					if !ok {
						dead = e
					}
				}
				if dead >= 0 {
					out = append(out, analysis.Diag{
						Kind: DiagConstGuard, Prog: fn.Prog.Name, Func: fn.Name,
						Block: b.Name, Instr: ti,
						Msg: fmt.Sprintf("branch condition is always %v; edge to %s is dead",
							dead == 1, t.Targets[dead].Name),
					})
				}
			case ir.OpSwitch:
				for e, ok := range fa.edgeOK[bi] {
					if ok {
						continue
					}
					arm := "default"
					if e < len(t.Vals) {
						arm = fmt.Sprintf("case %d", t.Vals[e])
					}
					out = append(out, analysis.Diag{
						Kind: DiagInfeasibleEdge, Prog: fn.Prog.Name, Func: fn.Name,
						Block: b.Name, Instr: ti,
						Msg: fmt.Sprintf("switch %s (-> %s) is statically infeasible",
							arm, t.Targets[e].Name),
					})
				}
			}
		}
	}
	return out
}
