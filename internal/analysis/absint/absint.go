// Package absint is a fixpoint abstract interpreter over the IR: an
// unsigned interval domain per register combined with sparse conditional
// constant propagation (SCCP). Blocks start at bottom (unreached) and
// only become live through edges the current abstract state cannot rule
// out; interval growth is widened at natural-loop headers and narrowed
// with two decreasing sweeps after the fixpoint. The pass produces, per
// basic block, interval invariants at entry and at the terminator, and a
// statically proven branch-feasibility map — flattened into
// analysis.AbsFacts for the solver's PreCheck fast path, the symbolic
// executor's edge pruning, and phase scoring.
//
// Soundness contract: every transfer function mirrors the concrete
// interpreter's masking semantics (internal/interp) exactly — registers
// store values masked to the defining instruction's width, reads re-mask
// to the reading width, division by zero and failed assertions stop the
// path. A fact is emitted only when it holds on *every* concrete
// execution reaching the program point, so pruning a statically dead
// edge can never cut a feasible path. The pass is deterministic: it
// iterates blocks in reverse postorder with fixed widening thresholds
// and never consults maps in iteration order.
package absint

import (
	"pbse/internal/analysis"
	"pbse/internal/ir"
)

// Widening thresholds: after this many state-changing joins into a
// block, changing registers are widened to top. Loop headers widen
// early; the backstop on every block bounds irreducible regions.
const (
	widenHeader = 8
	widenAny    = 32
	// maxSweeps bounds the chaotic iteration defensively; widening
	// guarantees convergence long before this.
	maxSweeps = 512
	// maxDefaultTrim bounds the endpoint trimming of a switch-default
	// edge against the case values.
	maxDefaultTrim = 8
	// maxCoverScan bounds the exhaustive range-covered check that proves
	// a switch default dead.
	maxCoverScan = 256
)

// aval is the abstract value of one register: the stored (raw) value is
// always in [lo, hi], and w is the defining width in bits (0 unknown).
type aval struct {
	lo, hi uint64
	w      uint8
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<w - 1
}

func topAny() aval     { return aval{lo: 0, hi: ^uint64(0), w: 0} }
func topW(w uint) aval { return aval{lo: 0, hi: mask(w), w: uint8(w)} }
func constW(v uint64, w uint) aval {
	v &= mask(w)
	return aval{lo: v, hi: v, w: uint8(w)}
}

func (a aval) isConst() bool { return a.lo == a.hi }

// read models the interpreter's get(): the raw stored value masked to
// width w. When the raw range fits the mask the range is unchanged; when
// the range spans one aligned window the mask distributes; otherwise all
// information is lost.
func (a aval) read(w uint) aval {
	m := mask(w)
	if a.hi <= m {
		return aval{lo: a.lo, hi: a.hi, w: uint8(w)}
	}
	if w < 64 && a.lo>>w == a.hi>>w {
		return aval{lo: a.lo & m, hi: a.hi & m, w: uint8(w)}
	}
	return topW(w)
}

// join is the lattice join (interval hull; widths must agree to be kept).
func join(a, b aval) aval {
	j := a
	if b.lo < j.lo {
		j.lo = b.lo
	}
	if b.hi > j.hi {
		j.hi = b.hi
	}
	if a.w != b.w {
		j.w = 0
	}
	return j
}

// widened blows a value up to top at its known width.
func widened(a aval) aval {
	if a.w != 0 {
		return topW(uint(a.w))
	}
	return topAny()
}

func sextW(v uint64, w uint) uint64 {
	if w == 0 || w >= 64 || v>>(w-1)&1 == 0 {
		return v
	}
	return v | ^mask(w)
}

// cmpProv records that a register currently holds the result of an
// OpCmp, so a branch on it can refine the compared operands on each
// edge. genA/genB snapshot the operands' definition generations: the
// provenance is stale once either operand is redefined.
type cmpProv struct {
	pred       ir.Pred
	a, b       ir.Reg
	w          uint8
	genA, genB uint32
}

// funcAbs is the per-function analysis state.
type funcAbs struct {
	fn *ir.Func
	fi *analysis.FuncInfo

	in     [][]aval // block-entry states; nil = unreached (bottom)
	term   [][]aval // terminator states (after the final sweep)
	edgeOK [][]bool // per target index, from the final sweep
	joins  []int    // state-changing joins seen per block
	header []bool   // natural-loop headers (widening points)

	// per-walk scratch, reset by resetWalk:
	gen    []uint32
	prov   []cmpProv
	provOK []bool
}

func newFuncAbs(fn *ir.Func, fi *analysis.FuncInfo) *funcAbs {
	n := len(fn.Blocks)
	fa := &funcAbs{
		fn: fn, fi: fi,
		in:     make([][]aval, n),
		term:   make([][]aval, n),
		edgeOK: make([][]bool, n),
		joins:  make([]int, n),
		header: make([]bool, n),
		gen:    make([]uint32, fn.NumRegs),
		prov:   make([]cmpProv, fn.NumRegs),
		provOK: make([]bool, fn.NumRegs),
	}
	for _, l := range fi.Loops {
		fa.header[l.Header] = true
	}
	fa.in[0] = fa.entryState()
	return fa
}

// entryState models a fresh frame: parameters arrive with caller-chosen
// values and widths (top), every other register reads as zero until
// defined (the interpreter zero-fills frames; sign-extending a zero is
// zero at any width, so the unknown width is harmless).
func (fa *funcAbs) entryState() []aval {
	st := make([]aval, fa.fn.NumRegs)
	for r := range st {
		if r < fa.fn.NumParams {
			st[r] = topAny()
		} else {
			st[r] = aval{lo: 0, hi: 0, w: 0}
		}
	}
	return st
}

func (fa *funcAbs) resetWalk() {
	for i := range fa.gen {
		fa.gen[i] = 0
		fa.provOK[i] = false
	}
}

// step applies one non-terminator instruction to st in place. It returns
// false when the instruction provably stops every execution (division by
// zero, an assertion that always fails): the rest of the block and all
// its out-edges are then dead.
func (fa *funcAbs) step(in *ir.Instr, st []aval) bool {
	w := uint(in.Width)
	def := func(v aval) {
		st[in.Dst] = v
		fa.gen[in.Dst]++
		fa.provOK[in.Dst] = false
	}
	switch in.Op {
	case ir.OpConst:
		def(constW(in.Imm, w))
	case ir.OpBin:
		a := st[in.A].read(w)
		b := st[in.B].read(w)
		if isDiv(in.Bin) {
			if b.hi == 0 {
				return false // divisor is always zero: the path faults
			}
			if b.lo == 0 {
				// executions that continue past the fault check have a
				// non-zero divisor
				b.lo = 1
			}
		}
		def(binT(in.Bin, a, b, w))
	case ir.OpCmp:
		a := st[in.A].read(w)
		b := st[in.B].read(w)
		def(cmpT(in.Pred, a, b, w))
		if in.A != in.Dst && in.B != in.Dst {
			fa.prov[in.Dst] = cmpProv{
				pred: in.Pred, a: in.A, b: in.B, w: in.Width,
				genA: fa.gen[in.A], genB: fa.gen[in.B],
			}
			fa.provOK[in.Dst] = true
		}
	case ir.OpNot:
		a := st[in.A].read(w)
		def(aval{lo: ^a.hi & mask(w), hi: ^a.lo & mask(w), w: uint8(w)})
	case ir.OpMov, ir.OpZext, ir.OpTrunc:
		// all three are get(A, w): raw value masked to the new width
		def(st[in.A].read(w))
	case ir.OpSext:
		a := st[in.A]
		switch {
		case a.isConst() && a.w != 0:
			def(constW(sextW(a.lo, uint(a.w)), w))
		case a.isConst() && a.lo == 0:
			def(constW(0, w)) // zero sign-extends to zero at any width
		case a.w != 0 && a.hi <= mask(uint(a.w))>>1:
			def(a.read(w)) // provably non-negative: sext == zext
		default:
			def(topW(w))
		}
	case ir.OpSelect:
		cond := st[in.A]
		b := st[in.B].read(w)
		c := st[in.C].read(w)
		if cond.isConst() {
			if cond.lo&1 == 1 {
				def(b)
			} else {
				def(c)
			}
		} else {
			def(join(b, c))
		}
	case ir.OpAlloca, ir.OpInput:
		def(topW(64)) // packed object references are runtime values
	case ir.OpInputLen:
		def(topW(w))
	case ir.OpLoad:
		def(topW(w)) // memory is not modelled
	case ir.OpStore, ir.OpPrint:
		// no register effect
	case ir.OpCall:
		if in.Dst != ir.NoReg {
			def(topAny()) // return width is the callee's choice
		}
	case ir.OpAssert:
		cond := st[in.A].read(1)
		if cond.hi == 0 {
			return false // always fails: execution never continues
		}
		// executions that continue have the condition true
		fa.refineBool(st, in.A, true)
	default:
		if in.Dst != ir.NoReg {
			def(topAny())
		}
	}
	return true
}

// refineBool narrows the state under "bit 0 of register r is taken":
// the register itself (when its range is boolean) and, through cmp
// provenance, the compared operands. It returns false when the
// refinement proves the assumption impossible.
func (fa *funcAbs) refineBool(st []aval, r ir.Reg, taken bool) bool {
	v := st[r]
	if v.hi <= 1 { // boolean-shaped: pin it
		if taken {
			if v.hi == 0 {
				return false
			}
			st[r] = aval{lo: 1, hi: 1, w: v.w}
		} else {
			if v.lo == 1 {
				return false
			}
			st[r] = aval{lo: 0, hi: 0, w: v.w}
		}
	}
	if !fa.provOK[r] {
		return true
	}
	p := fa.prov[r]
	if fa.gen[p.a] != p.genA || fa.gen[p.b] != p.genB {
		return true // an operand was redefined after the compare
	}
	return refineCmp(st, p, taken)
}

// analyzeFunc runs the chaotic iteration to a (widened) fixpoint, two
// narrowing sweeps, and a final sweep that records terminator states and
// the edge-feasibility map.
func analyzeFunc(fn *ir.Func, fi *analysis.FuncInfo) *funcAbs {
	fa := newFuncAbs(fn, fi)
	for sweep := 0; fa.sweepJoin(); sweep++ {
		if sweep >= maxSweeps {
			// defensive: saturate everything reached and let the joins
			// drain (top states cannot change again)
			for _, st := range fa.in {
				for r := range st {
					st[r] = widened(st[r])
				}
			}
		}
	}
	fa.narrowSweep()
	fa.narrowSweep()
	fa.finalSweep()
	return fa
}

// sweepJoin is one Gauss-Seidel pass in reverse postorder: recompute
// each reached block's out-edge states and join them into the targets.
func (fa *funcAbs) sweepJoin() bool {
	changed := false
	for _, bi := range fa.fi.RPO {
		if fa.in[bi] == nil {
			continue
		}
		st := append([]aval(nil), fa.in[bi]...)
		fa.forEachLiveEdge(bi, st, func(target int, out []aval) {
			if fa.joinInto(target, out) {
				changed = true
			}
		})
	}
	return changed
}

// narrowSweep applies the transfer once more from the current states,
// replacing (not joining) every reached block's entry state — a
// decreasing iteration that claws back precision lost to widening.
// Computed Jacobi-style from a snapshot so the result is deterministic.
func (fa *funcAbs) narrowSweep() {
	n := len(fa.fn.Blocks)
	next := make([][]aval, n)
	next[0] = fa.entryState()
	for _, bi := range fa.fi.RPO {
		if fa.in[bi] == nil {
			continue
		}
		st := append([]aval(nil), fa.in[bi]...)
		fa.forEachLiveEdge(bi, st, func(target int, out []aval) {
			if next[target] == nil {
				next[target] = append([]aval(nil), out...)
			} else {
				cur := next[target]
				for r := range cur {
					cur[r] = join(cur[r], out[r])
				}
			}
		})
	}
	fa.in = next
}

// finalSweep records, from the settled entry states, each block's
// terminator state and edge-feasibility row.
func (fa *funcAbs) finalSweep() {
	for bi, b := range fa.fn.Blocks {
		t := b.Terminator()
		nt := 0
		if t != nil {
			nt = len(t.Targets)
		}
		fa.edgeOK[bi] = make([]bool, nt)
		if fa.in[bi] == nil {
			continue
		}
		st := append([]aval(nil), fa.in[bi]...)
		stopped := !fa.walkBody(bi, st)
		if stopped {
			continue // terminator never executes; edges stay dead
		}
		fa.term[bi] = append([]aval(nil), st...)
		fa.forEachEdge(bi, st, func(target, ti int, out []aval, feasible bool) {
			fa.edgeOK[bi][ti] = feasible
		})
	}
}

// walkBody runs the block's non-terminator instructions over st,
// returning false when execution provably stops mid-block.
func (fa *funcAbs) walkBody(bi int, st []aval) bool {
	fa.resetWalk()
	b := fa.fn.Blocks[bi]
	n := len(b.Instrs)
	if b.Terminator() != nil {
		n--
	}
	for i := 0; i < n; i++ {
		if !fa.step(&b.Instrs[i], st) {
			return false
		}
	}
	return true
}

// forEachLiveEdge walks the block body and visits every feasible
// out-edge with its (possibly refined) state. st is consumed.
func (fa *funcAbs) forEachLiveEdge(bi int, st []aval, visit func(target int, out []aval)) {
	if !fa.walkBody(bi, st) {
		return
	}
	fa.forEachEdge(bi, st, func(target, ti int, out []aval, feasible bool) {
		if feasible {
			visit(target, out)
		}
	})
}

// forEachEdge evaluates the terminator over st and visits every target
// with its refined edge state and feasibility verdict. The walk scratch
// (gen/prov) must be valid for st (set by walkBody).
func (fa *funcAbs) forEachEdge(bi int, st []aval, visit func(target, ti int, out []aval, feasible bool)) {
	b := fa.fn.Blocks[bi]
	t := b.Terminator()
	if t == nil {
		return
	}
	switch t.Op {
	case ir.OpJmp:
		visit(t.Targets[0].Index, 0, st, true)
	case ir.OpBr:
		cond := st[t.A].read(1)
		// Targets[0] is the true edge, Targets[1] the false edge.
		for ti := 0; ti < 2; ti++ {
			taken := ti == 0
			feasible := (taken && cond.hi == 1) || (!taken && cond.lo == 0)
			if !feasible {
				visit(t.Targets[ti].Index, ti, st, false)
				continue
			}
			out := append([]aval(nil), st...)
			if !fa.refineBool(out, t.A, taken) {
				feasible = false
			}
			visit(t.Targets[ti].Index, ti, out, feasible)
		}
	case ir.OpSwitch:
		v := st[t.A]
		for i, val := range t.Vals {
			feasible := val >= v.lo && val <= v.hi
			if !feasible {
				visit(t.Targets[i].Index, i, st, false)
				continue
			}
			out := append([]aval(nil), st...)
			out[t.A] = aval{lo: val, hi: val, w: v.w}
			visit(t.Targets[i].Index, i, out, true)
		}
		di := len(t.Vals)
		out, feasible := switchDefault(v, t.Vals)
		if feasible {
			st[t.A] = out
			visit(t.Targets[di].Index, di, st, true)
		} else {
			visit(t.Targets[di].Index, di, st, false)
		}
	}
}

// switchDefault decides feasibility of the default edge given the
// operand range, and trims range endpoints that collide with case
// values. The default is infeasible when the whole (small) range is
// covered by case values.
func switchDefault(v aval, vals []uint64) (aval, bool) {
	isCase := func(x uint64) bool {
		for _, c := range vals {
			if c == x {
				return true
			}
		}
		return false
	}
	for i := 0; i < maxDefaultTrim && v.lo <= v.hi && isCase(v.lo); i++ {
		if v.lo == v.hi {
			return v, false
		}
		v.lo++
	}
	for i := 0; i < maxDefaultTrim && v.lo <= v.hi && isCase(v.hi); i++ {
		if v.lo == v.hi {
			return v, false
		}
		v.hi--
	}
	if v.hi-v.lo < maxCoverScan {
		covered := true
		for x := v.lo; ; x++ {
			if !isCase(x) {
				covered = false
				break
			}
			if x == v.hi {
				break
			}
		}
		if covered {
			return v, false
		}
	}
	return v, true
}

// joinInto merges an edge state into a block's entry state, applying
// widening once the block has absorbed enough state-changing joins.
func (fa *funcAbs) joinInto(bi int, out []aval) bool {
	cur := fa.in[bi]
	if cur == nil {
		fa.in[bi] = append([]aval(nil), out...)
		return true
	}
	limit := widenAny
	if fa.header[bi] {
		limit = widenHeader
	}
	changed := false
	for r := range cur {
		j := join(cur[r], out[r])
		if j == cur[r] {
			continue
		}
		if fa.joins[bi] >= limit {
			j = widened(j)
			if j == cur[r] {
				continue
			}
		}
		cur[r] = j
		changed = true
	}
	if changed {
		fa.joins[bi]++
	}
	return changed
}
