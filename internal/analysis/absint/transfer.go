package absint

import (
	"math/bits"

	"pbse/internal/ir"
)

func isDiv(b ir.BinOp) bool {
	switch b {
	case ir.UDiv, ir.SDiv, ir.URem, ir.SRem:
		return true
	}
	return false
}

// binConst folds one binary op on concrete w-bit values, mirroring the
// interpreter exactly. ok is false for the cases the interpreter treats
// as faults or that we decline to fold (signed division overflow).
func binConst(op ir.BinOp, a, b, m uint64, w uint) (uint64, bool) {
	switch op {
	case ir.Add:
		return (a + b) & m, true
	case ir.Sub:
		return (a - b) & m, true
	case ir.Mul:
		return (a * b) & m, true
	case ir.UDiv:
		if b == 0 {
			return 0, false
		}
		return (a / b) & m, true
	case ir.URem:
		if b == 0 {
			return 0, false
		}
		return (a % b) & m, true
	case ir.SDiv, ir.SRem:
		if b == 0 {
			return 0, false
		}
		sa, sb := int64(sextW(a, w)), int64(sextW(b, w))
		if sb == -1 && sa == int64(sextW(1<<(w-1)&m, w)) {
			return 0, false // MinInt / -1: leave to the engine
		}
		if op == ir.SDiv {
			return uint64(sa/sb) & m, true
		}
		return uint64(sa%sb) & m, true
	case ir.And:
		return a & b & m, true
	case ir.Or:
		return (a | b) & m, true
	case ir.Xor:
		return (a ^ b) & m, true
	case ir.Shl:
		if b >= uint64(w) {
			return 0, true
		}
		return (a << b) & m, true
	case ir.LShr:
		if b >= uint64(w) {
			return 0, true
		}
		return (a >> b) & m, true
	case ir.AShr:
		sh := b
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return uint64(int64(sextW(a, w))>>sh) & m, true
	}
	return 0, false
}

// binT is the interval transfer for one binary op; a and b are already
// masked to w (read(w)). The result always over-approximates every
// concrete outcome of in-range operands.
func binT(op ir.BinOp, a, b aval, w uint) aval {
	m := mask(w)
	if a.isConst() && b.isConst() {
		if v, ok := binConst(op, a.lo, b.lo, m, w); ok {
			return aval{lo: v, hi: v, w: uint8(w)}
		}
		return topW(w)
	}
	half := m >> 1
	nonneg := a.hi <= half && b.hi <= half
	switch op {
	case ir.Add:
		// exact when the high ends cannot wrap past the mask
		if a.hi <= m-b.hi {
			return aval{lo: a.lo + b.lo, hi: a.hi + b.hi, w: uint8(w)}
		}
	case ir.Sub:
		if a.lo >= b.hi {
			return aval{lo: a.lo - b.hi, hi: a.hi - b.lo, w: uint8(w)}
		}
	case ir.Mul:
		if a.hi == 0 || b.hi == 0 {
			return constW(0, w)
		}
		if b.hi <= m/a.hi {
			return aval{lo: a.lo * b.lo, hi: a.hi * b.hi, w: uint8(w)}
		}
	case ir.UDiv:
		if b.lo >= 1 && b.lo <= b.hi {
			return aval{lo: a.lo / b.hi, hi: a.hi / b.lo, w: uint8(w)}
		}
	case ir.URem:
		if b.lo >= 1 && b.lo <= b.hi {
			if a.hi < b.lo {
				return aval{lo: a.lo, hi: a.hi, w: uint8(w)} // a mod b == a
			}
			return aval{lo: 0, hi: minU(a.hi, b.hi-1), w: uint8(w)}
		}
	case ir.SDiv:
		// both operands provably non-negative: identical to UDiv
		if nonneg && b.lo >= 1 {
			return aval{lo: a.lo / b.hi, hi: a.hi / b.lo, w: uint8(w)}
		}
	case ir.SRem:
		if nonneg && b.lo >= 1 {
			return aval{lo: 0, hi: minU(a.hi, b.hi-1), w: uint8(w)}
		}
	case ir.And:
		return aval{lo: 0, hi: minU(a.hi, b.hi), w: uint8(w)}
	case ir.Or:
		hb := uint(bits.Len64(a.hi | b.hi))
		return aval{lo: maxU(a.lo, b.lo), hi: mask(hb) & m, w: uint8(w)}
	case ir.Xor:
		hb := uint(bits.Len64(a.hi | b.hi))
		return aval{lo: 0, hi: mask(hb) & m, w: uint8(w)}
	case ir.Shl:
		if b.isConst() {
			s := b.lo
			if s >= uint64(w) {
				return constW(0, w)
			}
			if a.hi <= m>>s {
				return aval{lo: a.lo << s, hi: a.hi << s, w: uint8(w)}
			}
		}
	case ir.LShr:
		if b.isConst() {
			s := b.lo
			if s >= uint64(w) {
				return constW(0, w)
			}
			return aval{lo: a.lo >> s, hi: a.hi >> s, w: uint8(w)}
		}
		return aval{lo: 0, hi: a.hi, w: uint8(w)} // shifting right never grows
	case ir.AShr:
		if a.hi <= half {
			// non-negative: arithmetic == logical shift, never grows
			return aval{lo: 0, hi: a.hi, w: uint8(w)}
		}
	}
	return topW(w)
}

// cmpT is the interval transfer for a comparison: a width-1 result that
// is constant exactly when the ranges decide the predicate.
func cmpT(pred ir.Pred, a, b aval, w uint) aval {
	f := aval{lo: 0, hi: 0, w: 1}
	t := aval{lo: 1, hi: 1, w: 1}
	u := aval{lo: 0, hi: 1, w: 1}
	decide := func(yes, no bool) aval {
		switch {
		case yes:
			return t
		case no:
			return f
		default:
			return u
		}
	}
	switch pred {
	case ir.Eq:
		return decide(a.isConst() && b.isConst() && a.lo == b.lo,
			a.hi < b.lo || b.hi < a.lo)
	case ir.Ne:
		return decide(a.hi < b.lo || b.hi < a.lo,
			a.isConst() && b.isConst() && a.lo == b.lo)
	case ir.Ult:
		return decide(a.hi < b.lo, a.lo >= b.hi)
	case ir.Ule:
		return decide(a.hi <= b.lo, a.lo > b.hi)
	case ir.Ugt:
		return decide(a.lo > b.hi, a.hi <= b.lo)
	case ir.Uge:
		return decide(a.lo >= b.hi, a.hi < b.lo)
	case ir.Slt, ir.Sle, ir.Sgt, ir.Sge:
		half := mask(w) >> 1
		aNeg, aPos := a.lo > half, a.hi <= half
		bNeg, bPos := b.lo > half, b.hi <= half
		switch {
		case aPos && bPos || aNeg && bNeg:
			// same sign half: two's complement preserves unsigned order
			return cmpT(unsignedPred(pred), a, b, w)
		case aNeg && bPos: // a < 0 <= b
			return decide(pred == ir.Slt || pred == ir.Sle, pred == ir.Sgt || pred == ir.Sge)
		case aPos && bNeg: // b < 0 <= a
			return decide(pred == ir.Sgt || pred == ir.Sge, pred == ir.Slt || pred == ir.Sle)
		}
	}
	return u
}

func unsignedPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.Slt:
		return ir.Ult
	case ir.Sle:
		return ir.Ule
	case ir.Sgt:
		return ir.Ugt
	case ir.Sge:
		return ir.Uge
	}
	return p
}

func negPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Ult:
		return ir.Uge
	case ir.Ule:
		return ir.Ugt
	case ir.Ugt:
		return ir.Ule
	case ir.Uge:
		return ir.Ult
	case ir.Slt:
		return ir.Sge
	case ir.Sle:
		return ir.Sgt
	case ir.Sgt:
		return ir.Sle
	case ir.Sge:
		return ir.Slt
	}
	return p
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// refineCmp narrows st under "cmp(pred, a, b) at width w evaluated to
// taken". It refines the masked views and writes the narrowed range back
// only to registers whose stored value fits the compare width (so the
// view and the raw value coincide). It returns false when the refined
// view of either operand is empty — the assumed outcome is impossible.
func refineCmp(st []aval, p cmpProv, taken bool) bool {
	w := uint(p.w)
	m := mask(w)
	pred := p.pred
	if !taken {
		pred = negPred(pred)
	}
	ra, rb := st[p.a].read(w), st[p.b].read(w)

	// Signed predicates refine only when both views are provably in the
	// non-negative half, where they coincide with the unsigned order.
	switch pred {
	case ir.Slt, ir.Sle, ir.Sgt, ir.Sge:
		half := m >> 1
		if ra.hi > half || rb.hi > half {
			return true
		}
		pred = unsignedPred(pred)
	}

	na, nb := ra, rb
	ok := true
	switch pred {
	case ir.Eq:
		lo, hi := maxU(ra.lo, rb.lo), minU(ra.hi, rb.hi)
		if lo > hi {
			ok = false
		} else {
			na = aval{lo: lo, hi: hi, w: na.w}
			nb = aval{lo: lo, hi: hi, w: nb.w}
		}
	case ir.Ne:
		if ra.isConst() && rb.isConst() && ra.lo == rb.lo {
			ok = false
		}
		if ok && rb.isConst() {
			if na.lo == rb.lo && na.lo < na.hi {
				na.lo++
			} else if na.hi == rb.lo && na.lo < na.hi {
				na.hi--
			}
		}
		if ok && ra.isConst() {
			if nb.lo == ra.lo && nb.lo < nb.hi {
				nb.lo++
			} else if nb.hi == ra.lo && nb.lo < nb.hi {
				nb.hi--
			}
		}
	case ir.Ult:
		if rb.hi == 0 || ra.lo >= rb.hi {
			ok = false
			break
		}
		if na.hi > rb.hi-1 {
			na.hi = rb.hi - 1
		}
		if nb.lo < ra.lo+1 { // ra.lo < rb.hi <= m, so no overflow
			nb.lo = ra.lo + 1
		}
	case ir.Ule:
		if ra.lo > rb.hi {
			ok = false
			break
		}
		if na.hi > rb.hi {
			na.hi = rb.hi
		}
		if nb.lo < ra.lo {
			nb.lo = ra.lo
		}
	case ir.Ugt: // b < a
		if ra.hi == 0 || rb.lo >= ra.hi {
			ok = false
			break
		}
		if nb.hi > ra.hi-1 {
			nb.hi = ra.hi - 1
		}
		if na.lo < rb.lo+1 {
			na.lo = rb.lo + 1
		}
	case ir.Uge: // b <= a
		if rb.lo > ra.hi {
			ok = false
			break
		}
		if nb.hi > ra.hi {
			nb.hi = ra.hi
		}
		if na.lo < rb.lo {
			na.lo = rb.lo
		}
	}
	if !ok || na.lo > na.hi || nb.lo > nb.hi {
		return false
	}
	if va := st[p.a]; va.hi <= m {
		st[p.a] = aval{lo: na.lo, hi: na.hi, w: va.w}
	}
	if vb := st[p.b]; vb.hi <= m {
		st[p.b] = aval{lo: nb.lo, hi: nb.hi, w: vb.w}
	}
	return true
}
