package absint

import (
	"math/rand"
	"testing"

	"pbse/internal/analysis"
	"pbse/internal/expr"
	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/targets"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func build(t *testing.T, src string) (*ir.Program, *analysis.Report) {
	t.Helper()
	p := parse(t, src)
	return p, BuildReport(p)
}

func blockID(t *testing.T, p *ir.Program, fn, name string) int {
	t.Helper()
	for _, b := range p.Func(fn).Blocks {
		if b.Name == name {
			return b.ID
		}
	}
	t.Fatalf("no block %s in %s", name, fn)
	return -1
}

func TestConstGuardDeadEdge(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=2) {
entry:
	r0 = const 1 w32
	br r0 yes no
yes:
	exit
no:
	exit
}
`)
	id := blockID(t, p, "main", "entry")
	if rep.Abs.EdgeInfeasible(id, 0) {
		t.Fatalf("true edge of a const-1 branch marked dead")
	}
	if !rep.Abs.EdgeInfeasible(id, 1) {
		t.Fatalf("false edge of a const-1 branch not marked dead")
	}
	if !rep.Abs.Unreached[blockID(t, p, "main", "no")] {
		t.Fatalf("block behind a dead edge not marked unreached")
	}
	if rep.Abs.NumDeadEdges == 0 || rep.Abs.NumUnreached == 0 {
		t.Fatalf("summary counters not filled: %+v", rep.Abs)
	}
}

// A urem bounds the value into [0,4], so ult 10 is provably true even
// though the dividend (inputlen) is unknown.
func TestRangeProvesBranch(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=4) {
entry:
	r0 = inputlen w32
	r1 = const 5 w32
	r2 = urem r0, r1 w32
	r3 = cmp.ult r2, r1 w32
	br r3 ok bad
ok:
	exit
bad:
	exit
}
`)
	id := blockID(t, p, "main", "entry")
	if !rep.Abs.EdgeInfeasible(id, 1) {
		t.Fatalf("urem-bounded compare not proven: %+v", rep.Abs.TermFacts(id))
	}
	// the terminator facts must pin r2 into [0,4]
	var got *analysis.RegFact
	for i, f := range rep.Abs.TermFacts(id) {
		if f.Reg == 2 {
			got = &rep.Abs.TermFacts(id)[i]
		}
	}
	if got == nil || got.Lo != 0 || got.Hi != 4 {
		t.Fatalf("urem fact = %+v, want r2 in [0,4]", got)
	}
}

// The classic widening/narrowing case: i counts 0..8; after the loop the
// exit block must know i == 8 exactly, and the body must know i <= 7.
func TestLoopNarrowing(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=3) {
entry:
	r0 = const 0 w32
	jmp head
head:
	r1 = const 8 w32
	r2 = cmp.ult r0, r1 w32
	br r2 body done
body:
	r1 = const 1 w32
	r0 = add r0, r1 w32
	jmp head
done:
	exit
}
`)
	find := func(block string, reg ir.Reg) *analysis.RegFact {
		for _, f := range rep.Abs.EntryFacts(blockID(t, p, "main", block)) {
			if f.Reg == reg {
				return &f
			}
		}
		return nil
	}
	if f := find("done", 0); f == nil || f.Lo != 8 || f.Hi != 8 {
		t.Errorf("exit fact for i = %+v, want exactly 8", f)
	}
	if f := find("body", 0); f == nil || f.Lo != 0 || f.Hi != 7 {
		t.Errorf("body fact for i = %+v, want [0,7]", f)
	}
	if f := find("head", 0); f == nil || f.Lo != 0 || f.Hi != 8 {
		t.Errorf("header fact for i = %+v, want [0,8]", f)
	}
}

func TestSwitchDeadArm(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=2) {
entry:
	r0 = inputlen w32
	r1 = const 3 w32
	r0 = urem r0, r1 w32
	switch r0 [0:a 5:b] default c
a:
	exit
b:
	exit
c:
	exit
}
`)
	id := blockID(t, p, "main", "entry")
	if rep.Abs.EdgeInfeasible(id, 0) {
		t.Fatalf("case 0 is reachable (r0 in [0,2]) but marked dead")
	}
	if !rep.Abs.EdgeInfeasible(id, 1) {
		t.Fatalf("case 5 is outside [0,2] but not marked dead")
	}
	if rep.Abs.EdgeInfeasible(id, 2) {
		t.Fatalf("default is reachable (r0 in 1..2) but marked dead")
	}
	if !rep.Abs.Unreached[blockID(t, p, "main", "b")] {
		t.Fatalf("case-5 target not marked unreached")
	}
}

// A small fully-covered switch range: v in [0,1] with cases 0 and 1
// proves the default dead.
func TestSwitchDefaultCovered(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=2) {
entry:
	r0 = inputlen w32
	r1 = const 2 w32
	r0 = urem r0, r1 w32
	switch r0 [0:a 1:b] default c
a:
	exit
b:
	exit
c:
	exit
}
`)
	id := blockID(t, p, "main", "entry")
	if !rep.Abs.EdgeInfeasible(id, 2) {
		t.Fatalf("fully covered switch default not marked dead")
	}
}

// Division by a provably-zero divisor stops the path, killing the
// block's out-edges without marking the branch target reachable.
func TestDivByZeroStopsPath(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=3) {
entry:
	r0 = inputlen w32
	r1 = const 0 w32
	r2 = udiv r0, r1 w32
	jmp next
next:
	exit
}
`)
	if !rep.Abs.Unreached[blockID(t, p, "main", "next")] {
		t.Fatalf("block after a certain div-by-zero not marked unreached")
	}
}

// Invariants materialises entry facts as expr conjuncts with the right
// bounds and skips width mismatches.
func TestInvariantsExport(t *testing.T) {
	p, rep := build(t, `
program t
func main(params=0 regs=4) {
entry:
	r0 = inputlen w32
	r1 = const 5 w32
	r2 = urem r0, r1 w32
	jmp next
next:
	exit
}
`)
	c := expr.NewContext()
	sym := c.ByteAt(expr.NewArray("in", 8), 0)
	val := c.ZExtE(sym, 32)
	id := blockID(t, p, "main", "next")
	conj := rep.Abs.Invariants(c, id, func(r ir.Reg) *expr.Expr {
		if r == 2 {
			return val
		}
		return nil
	})
	if len(conj) != 1 {
		t.Fatalf("Invariants = %v, want exactly one ule bound for r2", conj)
	}
	// width mismatch must be skipped
	conj = rep.Abs.Invariants(c, id, func(r ir.Reg) *expr.Expr {
		if r == 2 {
			return c.ZExtE(sym, 64)
		}
		return nil
	})
	if len(conj) != 0 {
		t.Fatalf("width-mismatched invariant not skipped: %v", conj)
	}
}

// Soundness oracle: on every bundled target, any block a concrete
// execution enters must not be claimed unreachable by the pass.
func TestSoundOnTargets(t *testing.T) {
	for _, tgt := range targets.All() {
		tgt := tgt
		t.Run(tgt.Driver, func(t *testing.T) {
			prog, err := tgt.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep := BuildReport(prog)
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 4; trial++ {
				seed := tgt.GenSeed(rng, 256+trial*96)
				var visited []int
				m := interp.New(prog, seed, interp.Options{
					MaxSteps: 2_000_000,
					Tracer:   func(b *ir.Block, step int64) { visited = append(visited, b.ID) },
				})
				m.Run()
				for _, id := range visited {
					if rep.Abs.Unreached[id] {
						t.Fatalf("block %s concretely visited but marked unreachable",
							prog.AllBlocks[id])
					}
				}
			}
		})
	}
}

// Determinism: two independent runs over the same program produce
// identical flattened facts.
func TestDeterministic(t *testing.T) {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := BuildReport(prog).Abs, BuildReport(prog).Abs
	if a.NumDeadEdges != b.NumDeadEdges || a.NumUnreached != b.NumUnreached {
		t.Fatalf("summary differs: %d/%d vs %d/%d",
			a.NumDeadEdges, a.NumUnreached, b.NumDeadEdges, b.NumUnreached)
	}
	for id := range a.EdgeDead {
		if len(a.EdgeDead[id]) != len(b.EdgeDead[id]) {
			t.Fatalf("edge row %d length differs", id)
		}
		for ti := range a.EdgeDead[id] {
			if a.EdgeDead[id][ti] != b.EdgeDead[id][ti] {
				t.Fatalf("edge %d/%d differs", id, ti)
			}
		}
		if len(a.Entry[id]) != len(b.Entry[id]) || len(a.Term[id]) != len(b.Term[id]) {
			t.Fatalf("facts of block %d differ", id)
		}
		for i := range a.Entry[id] {
			if a.Entry[id][i] != b.Entry[id][i] {
				t.Fatalf("entry fact %d/%d differs", id, i)
			}
		}
	}
}

func TestLintFindings(t *testing.T) {
	p := parse(t, `
program t
func main(params=0 regs=3) {
entry:
	r0 = const 1 w32
	br r0 yes no
yes:
	r1 = inputlen w32
	r2 = const 3 w32
	r1 = urem r1, r2 w32
	switch r1 [0:a 7:b] default c
no:
	exit
a:
	exit
b:
	exit
c:
	exit
}
`)
	inf := analysis.Analyze(p)
	got := make(map[analysis.DiagKind]int)
	for _, d := range Lint(inf) {
		got[d.Kind]++
		if d.Prog != "t" || d.Func != "main" || d.Block == "" {
			t.Errorf("diag missing position: %+v", d)
		}
	}
	if got[DiagConstGuard] != 1 {
		t.Errorf("const-guard findings = %d, want 1", got[DiagConstGuard])
	}
	if got[DiagInfeasibleEdge] != 1 {
		t.Errorf("infeasible-edge findings = %d, want 1 (case 7)", got[DiagInfeasibleEdge])
	}
	// no, b and the blocks behind them are unreachable
	if got[DiagUnreachable] < 2 {
		t.Errorf("unreachable findings = %d, want >= 2", got[DiagUnreachable])
	}
}
