package analysis

import (
	"pbse/internal/expr"
	"pbse/internal/ir"
)

// RegFact is one per-register interval invariant: at the associated
// program point the register's stored (raw) value always lies in
// [Lo, Hi]. Width is the register's defining width in bits at that
// point, or 0 when the width is unknown (joins of different widths).
type RegFact struct {
	Reg    ir.Reg
	Lo, Hi uint64
	Width  uint8
}

// AbsFacts is the flattened program-wide result of the abstract
// interpretation pass (package absint): per-block interval invariants, a
// statically proven branch-feasibility map, and per-block summary facts
// for subsumption. All slices are indexed by global block ID; fact
// slices are nil for blocks the pass proved unreachable.
type AbsFacts struct {
	// Entry[b] holds invariants valid on every entry to block b — the
	// per-block summary Inv(b) usable to seed subsumption checks.
	Entry [][]RegFact
	// Term[b] holds invariants valid whenever block b's terminator
	// executes (entry facts refined through the block's straight-line
	// instructions, assertions, and division guards).
	Term [][]RegFact
	// EdgeDead[b][ti] marks terminator target ti of block b statically
	// infeasible: no execution reaching b can take that edge. For OpBr,
	// index 0 is the true edge and 1 the false edge; for OpSwitch,
	// index i is case arm i and index len(Vals) the default.
	EdgeDead [][]bool
	// Unreached marks blocks no abstract execution reaches (their
	// EdgeDead rows are all true).
	Unreached []bool

	// NumDeadEdges and NumUnreached summarise the maps for reporting.
	NumDeadEdges, NumUnreached int
}

// EdgeInfeasible reports whether target index ti of the block's
// terminator is statically proven infeasible. Out-of-range queries are
// false (no information).
func (a *AbsFacts) EdgeInfeasible(blockID, ti int) bool {
	if a == nil || blockID < 0 || blockID >= len(a.EdgeDead) {
		return false
	}
	row := a.EdgeDead[blockID]
	return ti >= 0 && ti < len(row) && row[ti]
}

// HasDeadEdge reports whether any out-edge of the block is statically
// infeasible (the per-block signal behind phase.InfeasibleEdgeFrac).
func (a *AbsFacts) HasDeadEdge(blockID int) bool {
	if a == nil || blockID < 0 || blockID >= len(a.EdgeDead) {
		return false
	}
	for _, dead := range a.EdgeDead[blockID] {
		if dead {
			return true
		}
	}
	return false
}

// TermFacts returns the invariants valid at the block's terminator (nil
// when none are known or the block is out of range).
func (a *AbsFacts) TermFacts(blockID int) []RegFact {
	if a == nil || blockID < 0 || blockID >= len(a.Term) {
		return nil
	}
	return a.Term[blockID]
}

// EntryFacts returns the invariants valid at block entry.
func (a *AbsFacts) EntryFacts(blockID int) []RegFact {
	if a == nil || blockID < 0 || blockID >= len(a.Entry) {
		return nil
	}
	return a.Entry[blockID]
}

// Invariants materialises the block-entry invariant Inv(b) as a
// conjunction of expr constraints. regExpr maps a register to its
// current symbolic expression (nil to skip a register); facts whose
// width does not match the expression are skipped, so the result is
// always sound to assert. The returned conjuncts are width-1 booleans.
func (a *AbsFacts) Invariants(c *expr.Context, blockID int, regExpr func(r ir.Reg) *expr.Expr) []*expr.Expr {
	var out []*expr.Expr
	for _, f := range a.EntryFacts(blockID) {
		e := regExpr(f.Reg)
		if e == nil || e.IsConst() || f.Width == 0 || uint(f.Width) != e.Width() {
			continue
		}
		w := e.Width()
		full := ^uint64(0)
		if w < 64 {
			full = 1<<w - 1
		}
		if f.Hi > full {
			continue // malformed fact for this width; never assert it
		}
		if f.Lo > 0 {
			out = append(out, c.UleE(c.Const(f.Lo, w), e))
		}
		if f.Hi < full {
			out = append(out, c.UleE(e, c.Const(f.Hi, w)))
		}
	}
	return out
}

// Report unifies every static-analysis product the scheduler and engine
// consume — the CFG/dominator/loop structure and taint results (Info),
// the flattened loop/taint hints (Hints), and the abstract-interpretation
// interval facts (Abs) — so downstream packages take one dependency
// instead of three ad-hoc analysis calls.
type Report struct {
	Info  *Info
	Hints *StaticHints
	// Abs is nil when the absint pass did not run (see absint.BuildReport,
	// which fills it in).
	Abs *AbsFacts
}

// NewReport analyses p and bundles the CFG/loop/taint results. The
// abstract-interpretation facts are added by absint.BuildReport, which
// wraps this constructor; a Report built here has Abs == nil.
func NewReport(p *ir.Program) *Report {
	inf := Analyze(p)
	return &Report{Info: inf, Hints: inf.Hints()}
}
