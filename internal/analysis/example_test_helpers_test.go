package analysis

import (
	"os"
	"path/filepath"
	"strings"

	"pbse/internal/ir"
)

// exampleIRFiles lists the textual IR example programs shipped in the
// repository (relative to this package's source directory).
func exampleIRFiles() ([]string, error) {
	dir := filepath.Join("..", "..", "examples", "ir")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ir") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files, nil
}

func parseFile(path string) (*ir.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ir.Parse(string(src))
}
