package analysis

import (
	"testing"

	"pbse/internal/ir"
)

const taintMixSrc = `
program taintmix
func main(params=0 regs=12) {
entry:
	r0 = input
	r1 = const 0 w32
	jmp cloop
cloop:
	r2 = const 4 w32
	r3 = cmp.ult r1, r2 w32
	br r3 cbody iloop_pre
cbody:
	r4 = const 1 w32
	r1 = add r1, r4 w32
	jmp cloop
iloop_pre:
	r5 = load [r0+0] w8
	r6 = zext r5 w32
	r7 = const 0 w32
	jmp iloop
iloop:
	r8 = cmp.ult r7, r6 w32
	br r8 ibody done
ibody:
	r9 = const 1 w32
	r7 = add r7, r9 w32
	jmp iloop
done:
	exit
}
`

func TestTaintClassifiesLoops(t *testing.T) {
	p := parse(t, taintMixSrc)
	inf := Analyze(p)
	fi := inf.Funcs[0]
	ix := blockIdx(t, p, "main")

	if len(fi.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(fi.Loops))
	}
	for _, l := range fi.Loops {
		switch l.Header {
		case ix["cloop"]:
			if l.InputDependent {
				t.Error("constant-bound loop marked input-dependent")
			}
		case ix["iloop"]:
			if !l.InputDependent {
				t.Error("input-guarded loop not marked input-dependent")
			}
		default:
			t.Errorf("unexpected loop header %d", l.Header)
		}
	}

	blocks := p.Entry().Blocks
	if !inf.Taint.InputDepTerm[blocks[ix["iloop"]].ID] {
		t.Error("iloop branch should be input-dependent")
	}
	if inf.Taint.InputDepTerm[blocks[ix["cloop"]].ID] {
		t.Error("cloop branch must stay input-independent")
	}
}

// Taint must flow through a call's return value, into memory via a store,
// and back out of a load in another block.
const callMemSrc = `
program callmem
func getb(params=1 regs=5) {
entry:
	r1 = input
	r2 = zext r0 w64
	r3 = add r1, r2 w64
	r4 = load [r3+0] w8
	ret r4
}
func main(params=0 regs=10) {
entry:
	r0 = const 0 w32
	r1 = call getb(r0)
	r2 = alloca 4
	store [r2+0], r1 w8
	jmp head
head:
	r3 = load [r2+0] w8
	r4 = const 0 w8
	r5 = cmp.ugt r3, r4 w8
	br r5 body done
body:
	jmp head
done:
	exit
}
`

func TestTaintThroughCallAndMemory(t *testing.T) {
	p := parse(t, callMemSrc)
	inf := Analyze(p)
	ix := blockIdx(t, p, "main")
	head := p.Entry().Blocks[ix["head"]]
	if !inf.Taint.InputDepTerm[head.ID] {
		t.Error("taint should flow call-return -> store -> load -> branch")
	}
	var mainFi *FuncInfo
	for i, f := range p.Funcs {
		if f.Name == "main" {
			mainFi = inf.Funcs[i]
		}
	}
	if len(mainFi.Loops) != 1 || !mainFi.Loops[0].InputDependent {
		t.Errorf("head loop should be input-dependent: %+v", mainFi.Loops)
	}
}

// inputlen is tainted even though no input byte is ever loaded.
func TestTaintInputLen(t *testing.T) {
	p := parse(t, `
program lenloop
func main(params=0 regs=6) {
entry:
	r0 = inputlen w32
	r1 = const 0 w32
	jmp head
head:
	r2 = cmp.ult r1, r0 w32
	br r2 body done
body:
	r3 = const 1 w32
	r1 = add r1, r3 w32
	jmp head
done:
	exit
}
`)
	inf := Analyze(p)
	fi := inf.Funcs[0]
	if len(fi.Loops) != 1 || !fi.Loops[0].InputDependent {
		t.Errorf("inputlen-bounded loop should be input-dependent: %+v", fi.Loops)
	}
}

// An input *pointer* is not itself tainted: a loop bounded by a constant
// comparison against a pointer-derived counter stays input-independent
// even though the loop body reads input bytes.
func TestTaintPointerNotTainted(t *testing.T) {
	p := parse(t, `
program ptrloop
func main(params=0 regs=8) {
entry:
	r0 = input
	r1 = const 0 w32
	jmp head
head:
	r2 = const 3 w32
	r3 = cmp.ult r1, r2 w32
	br r3 body done
body:
	r4 = zext r1 w64
	r5 = add r0, r4 w64
	r6 = load [r5+0] w8
	r7 = const 1 w32
	r1 = add r1, r7 w32
	store [r5+0], r6 w8
	jmp head
done:
	exit
}
`)
	inf := Analyze(p)
	fi := inf.Funcs[0]
	if len(fi.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(fi.Loops))
	}
	if fi.Loops[0].InputDependent {
		t.Error("constant-bound loop over input bytes must not be input-dependent")
	}
}

func TestHintsFlattening(t *testing.T) {
	p := parse(t, taintMixSrc)
	h := Analyze(p).Hints()
	ix := blockIdx(t, p, "main")
	blocks := p.Entry().Blocks

	if h.NumLoops != 2 || h.NumInputLoops != 1 {
		t.Errorf("NumLoops=%d NumInputLoops=%d, want 2/1", h.NumLoops, h.NumInputLoops)
	}
	check := func(name string, inLoop, inInput bool) {
		id := blocks[ix[name]].ID
		if h.InLoop[id] != inLoop || h.InInputLoop[id] != inInput {
			t.Errorf("%s: InLoop=%v InInputLoop=%v, want %v/%v",
				name, h.InLoop[id], h.InInputLoop[id], inLoop, inInput)
		}
	}
	check("entry", false, false)
	check("cloop", true, false)
	check("cbody", true, false)
	check("iloop", true, true)
	check("ibody", true, true)
	check("done", false, false)
	if h.LoopDepth[blocks[ix["ibody"]].ID] != 1 {
		t.Errorf("ibody depth = %d, want 1", h.LoopDepth[blocks[ix["ibody"]].ID])
	}
}

// The examples/ acceptance check: every input-guarded loop in the textual
// example programs (headers named iloop_*) must be classified
// input-dependent, and every constant-bound loop (cloop_*) must not.
func TestTaintOnExamplePrograms(t *testing.T) {
	for _, prog := range loadExamplePrograms(t) {
		inf := Analyze(prog)
		for fx, fi := range inf.Funcs {
			fn := prog.Funcs[fx]
			for _, l := range fi.Loops {
				name := fn.Blocks[l.Header].Name
				switch {
				case hasPrefix(name, "iloop"):
					if !l.InputDependent {
						t.Errorf("%s: %s.%s: input-guarded loop not detected", prog.Name, fn.Name, name)
					}
				case hasPrefix(name, "cloop"):
					if l.InputDependent {
						t.Errorf("%s: %s.%s: constant loop misclassified", prog.Name, fn.Name, name)
					}
				default:
					t.Errorf("%s: %s.%s: example loop headers must be named iloop_*/cloop_*", prog.Name, fn.Name, name)
				}
			}
		}
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func loadExamplePrograms(t *testing.T) []*ir.Program {
	t.Helper()
	files, err := exampleIRFiles()
	if err != nil {
		t.Fatalf("examples/ir: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("no .ir files under examples/ir")
	}
	var progs []*ir.Program
	for _, f := range files {
		p, err := parseFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		progs = append(progs, p)
	}
	return progs
}
