package analysis

import "pbse/internal/ir"

// FuncInfo carries the per-function CFG structure every pass in this
// package works from. Blocks are identified by their position within the
// function (ir.Block.Index).
type FuncInfo struct {
	Fn    *ir.Func
	Succs [][]int // control-flow successors (deduplicated)
	Preds [][]int
	// RPO lists the blocks reachable from the entry in reverse postorder;
	// RPO[0] is the entry.
	RPO []int
	// RPONum is the position of each block in RPO, -1 when unreachable.
	RPONum []int
	// Reachable marks blocks reachable from the entry.
	Reachable []bool

	// Filled by dominators/loops (see dom.go):
	DomSet []BitSet // DomSet[b].Get(a) == a dominates b; nil for unreachable b
	Idom   []int    // immediate dominator, -1 for the entry and unreachable blocks
	Loops  []*Loop  // natural loops, outermost first within a nest
	// LoopOf is the index into Loops of the innermost loop containing each
	// block, -1 when the block is in no loop.
	LoopOf []int
	// Irreducible is set when a retreating edge to a non-dominating target
	// was found (the loop set then underapproximates the cyclic region).
	Irreducible bool
}

// NewFuncInfo builds the CFG skeleton (successors, predecessors,
// reachability, reverse postorder) for one function.
func NewFuncInfo(fn *ir.Func) *FuncInfo {
	n := len(fn.Blocks)
	fi := &FuncInfo{
		Fn:        fn,
		Succs:     make([][]int, n),
		Preds:     make([][]int, n),
		RPONum:    make([]int, n),
		Reachable: make([]bool, n),
	}
	for i, b := range fn.Blocks {
		seen := make(map[int]bool)
		for _, s := range b.Successors() {
			if !seen[s.Index] {
				seen[s.Index] = true
				fi.Succs[i] = append(fi.Succs[i], s.Index)
			}
		}
	}
	for i, succs := range fi.Succs {
		for _, s := range succs {
			fi.Preds[s] = append(fi.Preds[s], i)
		}
	}
	// iterative postorder DFS from the entry
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ b, next int }
	stack := []frame{{0, 0}}
	state[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(fi.Succs[f.b]) {
			s := fi.Succs[f.b][f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	fi.RPO = make([]int, len(post))
	for i := range fi.RPONum {
		fi.RPONum[i] = -1
	}
	for i, b := range post {
		r := len(post) - 1 - i
		fi.RPO[r] = b
		fi.RPONum[b] = r
		fi.Reachable[b] = true
	}
	return fi
}

// Dominates reports whether block a dominates block b (both by position).
// Every block dominates itself. False when either block is unreachable.
func (fi *FuncInfo) Dominates(a, b int) bool {
	if fi.DomSet == nil || !fi.Reachable[a] || !fi.Reachable[b] {
		return false
	}
	return fi.DomSet[b].Get(a)
}

// LoopDepth returns the loop nesting depth of a block (0 = not in a loop).
func (fi *FuncInfo) LoopDepth(b int) int {
	if fi.LoopOf == nil || fi.LoopOf[b] < 0 {
		return 0
	}
	return fi.Loops[fi.LoopOf[b]].Depth
}
