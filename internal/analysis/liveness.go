package analysis

import "pbse/internal/ir"

// livenessProblem computes live registers as a backward union pass with
// per-block gen (upward-exposed uses) and kill (defs) sets.
type livenessProblem struct {
	fn        *ir.Func
	gen, kill []BitSet
}

func newLivenessProblem(fi *FuncInfo) *livenessProblem {
	fn := fi.Fn
	p := &livenessProblem{
		fn:   fn,
		gen:  make([]BitSet, len(fn.Blocks)),
		kill: make([]BitSet, len(fn.Blocks)),
	}
	var uses []ir.Reg
	for bi, b := range fn.Blocks {
		g := NewBitSet(fn.NumRegs)
		k := NewBitSet(fn.NumRegs)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = instrUses(in, uses[:0])
			for _, u := range uses {
				if !k.Get(int(u)) {
					g.Set(int(u))
				}
			}
			if d := instrDef(in); d != ir.NoReg {
				k.Set(int(d))
			}
		}
		p.gen[bi] = g
		p.kill[bi] = k
	}
	return p
}

func (p *livenessProblem) Direction() Direction      { return Backward }
func (p *livenessProblem) Bits() int                 { return p.fn.NumRegs }
func (p *livenessProblem) Boundary(v BitSet)         {}
func (p *livenessProblem) Init(v BitSet)             {}
func (p *livenessProblem) Meet(dst, src BitSet) bool { return dst.Union(src) }
func (p *livenessProblem) Transfer(block int, out, in BitSet) {
	// in = gen ∪ (out − kill)
	in.Copy(out)
	for i, w := range p.kill[block] {
		in[i] &^= w
	}
	in.Union(p.gen[block])
}

// Liveness returns per-block live-in and live-out register sets for one
// function (indexed by block position).
func Liveness(fi *FuncInfo) (liveIn, liveOut []BitSet) {
	liveIn, liveOut = Solve(fi, newLivenessProblem(fi))
	return liveIn, liveOut
}

// DefUse summarises register definitions and uses across one function.
type DefUse struct {
	// Defined marks registers written by at least one instruction (call
	// results included); parameters are not counted as definitions.
	Defined BitSet
	// Used marks registers read by at least one instruction.
	Used BitSet
	// CallOnlyDef marks registers whose only definitions are call results
	// (ignoring an unused one of these is idiomatic, like a discarded
	// return value).
	CallOnlyDef BitSet
}

// NewDefUse scans fn and returns its def/use summary.
func NewDefUse(fn *ir.Func) *DefUse {
	du := &DefUse{
		Defined:     NewBitSet(fn.NumRegs),
		Used:        NewBitSet(fn.NumRegs),
		CallOnlyDef: NewBitSet(fn.NumRegs),
	}
	nonCallDef := NewBitSet(fn.NumRegs)
	var uses []ir.Reg
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = instrUses(in, uses[:0])
			for _, u := range uses {
				du.Used.Set(int(u))
			}
			if d := instrDef(in); d != ir.NoReg {
				du.Defined.Set(int(d))
				if in.Op != ir.OpCall {
					nonCallDef.Set(int(d))
				}
			}
		}
	}
	for r := 0; r < fn.NumRegs; r++ {
		if du.Defined.Get(r) && !nonCallDef.Get(r) {
			du.CallOnlyDef.Set(r)
		}
	}
	return du
}
