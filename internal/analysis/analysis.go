package analysis

import "pbse/internal/ir"

// Info bundles every static-analysis result for one finalised program.
type Info struct {
	Prog *ir.Program
	// Funcs is parallel to Prog.Funcs.
	Funcs []*FuncInfo
	Taint *TaintInfo
}

// FuncInfoOf returns the FuncInfo of fn, or nil.
func (inf *Info) FuncInfoOf(fn *ir.Func) *FuncInfo {
	for i, f := range inf.Prog.Funcs {
		if f == fn {
			return inf.Funcs[i]
		}
	}
	return nil
}

// Analyze runs the full pipeline — CFG construction, dominators, natural
// loops, interprocedural input-taint — and classifies each loop as
// input-dependent when any of its exit branches depends on program input
// (the static trap-phase signature of the paper's Fig. 1 loops).
func Analyze(p *ir.Program) *Info {
	inf := &Info{Prog: p, Funcs: make([]*FuncInfo, len(p.Funcs))}
	for i, f := range p.Funcs {
		fi := NewFuncInfo(f)
		fi.buildDominators()
		fi.buildLoops()
		inf.Funcs[i] = fi
	}
	inf.Taint = newTaintInfo(p)
	inf.Taint.run(inf.Funcs)

	if len(p.AllBlocks) == 0 {
		return inf // unfinalised program: loop classification needs block IDs
	}
	for fx, fi := range inf.Funcs {
		fn := p.Funcs[fx]
		for _, l := range fi.Loops {
			exits := l.Exits
			if len(exits) == 0 {
				exits = l.Blocks // infinite loop: consider every member branch
			}
			for _, b := range exits {
				if inf.Taint.InputDepTerm[fn.Blocks[b].ID] {
					l.InputDependent = true
					break
				}
			}
		}
	}
	return inf
}

// StaticHints is the program-wide summary handed to phase scheduling and
// search heuristics: which blocks sit inside (input-dependent) loops and
// which conditional branches depend on input. All slices are indexed by
// global block ID.
type StaticHints struct {
	// LoopDepth is the natural-loop nesting depth of each block.
	LoopDepth []int
	// InLoop marks blocks inside any natural loop.
	InLoop []bool
	// InInputLoop marks blocks inside a loop classified input-dependent.
	InInputLoop []bool
	// InputDepBranch marks blocks whose br/switch terminator depends on
	// program input.
	InputDepBranch []bool
	// NumLoops and NumInputLoops count the program's natural loops.
	NumLoops, NumInputLoops int
}

// Hints flattens the per-function results into global-block-ID form.
func (inf *Info) Hints() *StaticHints {
	n := len(inf.Prog.AllBlocks)
	h := &StaticHints{
		LoopDepth:      make([]int, n),
		InLoop:         make([]bool, n),
		InInputLoop:    make([]bool, n),
		InputDepBranch: append([]bool(nil), inf.Taint.InputDepTerm...),
	}
	for fx, fi := range inf.Funcs {
		fn := inf.Prog.Funcs[fx]
		h.NumLoops += len(fi.Loops)
		for _, l := range fi.Loops {
			if l.InputDependent {
				h.NumInputLoops++
			}
		}
		for bi, b := range fn.Blocks {
			h.LoopDepth[b.ID] = fi.LoopDepth(bi)
			if fi.LoopOf[bi] >= 0 {
				h.InLoop[b.ID] = true
				for li := fi.LoopOf[bi]; li >= 0; li = fi.Loops[li].Parent {
					if fi.Loops[li].InputDependent {
						h.InInputLoop[b.ID] = true
						break
					}
				}
			}
		}
	}
	return h
}
