package analysis

import (
	"testing"

	"pbse/internal/ir"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// blockIdx maps block names to positions for the named function.
func blockIdx(t *testing.T, p *ir.Program, fn string) map[string]int {
	t.Helper()
	f := p.Func(fn)
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	m := make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		m[b.Name] = i
	}
	return m
}

const diamondSrc = `
program diamond
func main(params=0 regs=8) {
entry:
	r0 = input
	r1 = load [r0+0] w8
	r2 = const 10 w8
	r3 = cmp.ult r1, r2 w8
	br r3 left right
left:
	jmp join
right:
	jmp join
join:
	exit
}
`

func TestDominatorsDiamond(t *testing.T) {
	p := parse(t, diamondSrc)
	fi := NewFuncInfo(p.Entry())
	fi.buildDominators()
	fi.buildLoops()
	ix := blockIdx(t, p, "main")

	wantIdom := map[string]string{"left": "entry", "right": "entry", "join": "entry"}
	for b, d := range wantIdom {
		if got := fi.Idom[ix[b]]; got != ix[d] {
			t.Errorf("idom(%s) = %d, want %s (%d)", b, got, d, ix[d])
		}
	}
	if fi.Idom[ix["entry"]] != -1 {
		t.Errorf("entry idom = %d, want -1", fi.Idom[ix["entry"]])
	}
	if !fi.Dominates(ix["entry"], ix["join"]) {
		t.Error("entry should dominate join")
	}
	if fi.Dominates(ix["left"], ix["join"]) {
		t.Error("left must not dominate join (right path exists)")
	}
	if len(fi.Loops) != 0 || fi.Irreducible {
		t.Errorf("diamond has no loops: loops=%d irreducible=%v", len(fi.Loops), fi.Irreducible)
	}
}

const nestedSrc = `
program nested
func main(params=0 regs=10) {
entry:
	r0 = input
	r1 = load [r0+0] w8
	jmp outer_head
outer_head:
	r2 = const 0 w8
	r3 = cmp.ugt r1, r2 w8
	br r3 outer_body done
outer_body:
	jmp inner_head
inner_head:
	r4 = load [r0+1] w8
	r5 = const 0 w8
	r6 = cmp.ugt r4, r5 w8
	br r6 inner_body outer_latch
inner_body:
	jmp inner_head
outer_latch:
	jmp outer_head
done:
	exit
}
`

func TestLoopsNested(t *testing.T) {
	p := parse(t, nestedSrc)
	fi := NewFuncInfo(p.Entry())
	fi.buildDominators()
	fi.buildLoops()
	ix := blockIdx(t, p, "main")

	if fi.Irreducible {
		t.Fatal("nested loops are reducible")
	}
	if len(fi.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(fi.Loops))
	}
	byHeader := map[int]*Loop{}
	for _, l := range fi.Loops {
		byHeader[l.Header] = l
	}
	outer, inner := byHeader[ix["outer_head"]], byHeader[ix["inner_head"]]
	if outer == nil || inner == nil {
		t.Fatalf("missing loop headers: %+v", fi.Loops)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths outer=%d inner=%d, want 1/2", outer.Depth, inner.Depth)
	}
	if fi.Loops[inner.Parent] != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	wantOuter := []string{"outer_head", "outer_body", "inner_head", "inner_body", "outer_latch"}
	for _, name := range wantOuter {
		if !outer.Contains(ix[name]) {
			t.Errorf("outer loop missing %s", name)
		}
	}
	if outer.Contains(ix["entry"]) || outer.Contains(ix["done"]) {
		t.Error("outer loop must exclude entry/done")
	}
	for _, name := range []string{"inner_head", "inner_body"} {
		if !inner.Contains(ix[name]) {
			t.Errorf("inner loop missing %s", name)
		}
	}
	if inner.Contains(ix["outer_body"]) || inner.Contains(ix["outer_latch"]) {
		t.Error("inner loop must be strictly smaller than outer")
	}
	if got := fi.LoopDepth(ix["inner_body"]); got != 2 {
		t.Errorf("LoopDepth(inner_body) = %d, want 2", got)
	}
	if got := fi.LoopDepth(ix["entry"]); got != 0 {
		t.Errorf("LoopDepth(entry) = %d, want 0", got)
	}
	// idom spot checks through the loop nest
	if fi.Idom[ix["inner_head"]] != ix["outer_body"] {
		t.Errorf("idom(inner_head) = %d, want outer_body", fi.Idom[ix["inner_head"]])
	}
	if fi.Idom[ix["done"]] != ix["outer_head"] {
		t.Errorf("idom(done) = %d, want outer_head", fi.Idom[ix["done"]])
	}
}

const irreducibleSrc = `
program irr
func main(params=0 regs=8) {
entry:
	r0 = input
	r1 = load [r0+0] w8
	r2 = const 1 w8
	r3 = cmp.eq r1, r2 w8
	br r3 a b
a:
	r4 = load [r0+1] w8
	r5 = cmp.eq r4, r2 w8
	br r5 b done
b:
	r6 = load [r0+2] w8
	r7 = cmp.eq r6, r2 w8
	br r7 a done
done:
	exit
}
`

func TestIrreducibleCFG(t *testing.T) {
	p := parse(t, irreducibleSrc)
	fi := NewFuncInfo(p.Entry())
	fi.buildDominators()
	fi.buildLoops()
	if !fi.Irreducible {
		t.Error("a/b cross-jumps form an irreducible region")
	}
	if len(fi.Loops) != 0 {
		t.Errorf("no natural loop should be found, got %d", len(fi.Loops))
	}
	ix := blockIdx(t, p, "main")
	if fi.Dominates(ix["a"], ix["b"]) || fi.Dominates(ix["b"], ix["a"]) {
		t.Error("neither a nor b dominates the other")
	}
}

func TestLivenessCountdown(t *testing.T) {
	p := parse(t, `
program countdown
func main(params=0 regs=4) {
entry:
	r0 = const 5 w32
	jmp head
head:
	r1 = const 0 w32
	r2 = cmp.ne r0, r1 w32
	br r2 body done
body:
	r3 = const 1 w32
	r0 = sub r0, r3 w32
	jmp head
done:
	exit
}
`)
	fi := NewFuncInfo(p.Entry())
	fi.buildDominators()
	liveIn, liveOut := Liveness(fi)
	ix := blockIdx(t, p, "main")

	if !liveIn[ix["head"]].Get(0) {
		t.Error("r0 must be live into head (used by the loop compare)")
	}
	if liveIn[ix["entry"]].Get(0) {
		t.Error("r0 is defined in entry, not live-in")
	}
	if !liveOut[ix["body"]].Get(0) {
		t.Error("r0 must be live out of body (flows back to head)")
	}
	if liveOut[ix["done"]].Count() != 0 {
		t.Errorf("nothing is live out of the exit block: %v", liveOut[ix["done"]])
	}

	du := NewDefUse(p.Entry())
	for r := 0; r < 4; r++ {
		if !du.Defined.Get(r) || !du.Used.Get(r) {
			t.Errorf("r%d should be both defined and used", r)
		}
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	if a.Count() != 3 || !a.Get(64) || a.Get(63) {
		t.Errorf("bitset basics broken: %v", a)
	}
	b := NewBitSet(130)
	b.Set(64)
	b.Set(100)
	if changed := b.Union(a); !changed || b.Count() != 4 {
		t.Errorf("union: changed=%v count=%d", b.Union(a), b.Count())
	}
	c := NewBitSet(130)
	c.Copy(b)
	if !c.Equal(b) {
		t.Error("copy/equal broken")
	}
	if changed := c.Intersect(a); !changed || c.Count() != 3 {
		t.Errorf("intersect: count=%d want 3", c.Count())
	}
	c.Clear(64)
	if c.Get(64) || c.Count() != 2 {
		t.Error("clear broken")
	}
}

func TestDistanceOracleMatchesBFS(t *testing.T) {
	p := parse(t, nestedSrc)
	inf := Analyze(p)
	o := NewDistanceOracle(p, inf.Hints())

	// Mark a single "uncovered" block and compare against the per-source
	// forward BFS the heuristic used before.
	for target := range p.AllBlocks {
		covered := func(b int) bool { return b != target }
		o.Recompute(covered)
		adj := ir.SuccsWithCalls(p)
		for from := range p.AllBlocks {
			want := ir.BFSDistance(adj, from, func(b int) bool { return !covered(b) })
			if got := o.Dist(from); got != want {
				t.Errorf("dist(%d -> %d) = %d, want %d", from, target, got, want)
			}
		}
	}
}

func TestDistanceOracleInterprocedural(t *testing.T) {
	p := parse(t, `
program callgraph
func helper(params=0 regs=2) {
entry:
	r0 = const 1 w32
	ret r0
}
func main(params=0 regs=4) {
entry:
	r0 = call helper()
	exit
}
`)
	inf := Analyze(p)
	o := NewDistanceOracle(p, inf.Hints())
	helperEntry := p.Func("helper").Entry().ID
	mainEntry := p.Func("main").Entry().ID
	o.Recompute(func(b int) bool { return b != helperEntry })
	if got := o.Dist(mainEntry); got != 1 {
		t.Errorf("call edge distance = %d, want 1", got)
	}
}
