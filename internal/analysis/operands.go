package analysis

import "pbse/internal/ir"

// instrUses appends the registers an instruction reads to buf and returns
// it. Only operand fields meaningful for the opcode are reported (e.g.
// OpJmp's zero-valued A is not a use of r0).
func instrUses(in *ir.Instr, buf []ir.Reg) []ir.Reg {
	switch in.Op {
	case ir.OpBin, ir.OpCmp:
		buf = append(buf, in.A, in.B)
	case ir.OpNot, ir.OpMov, ir.OpZext, ir.OpSext, ir.OpTrunc:
		buf = append(buf, in.A)
	case ir.OpSelect:
		buf = append(buf, in.A, in.B, in.C)
	case ir.OpLoad:
		buf = append(buf, in.A)
	case ir.OpStore:
		buf = append(buf, in.A, in.B)
	case ir.OpCall:
		buf = append(buf, in.Args...)
	case ir.OpRet:
		if in.A != ir.NoReg {
			buf = append(buf, in.A)
		}
	case ir.OpBr, ir.OpSwitch, ir.OpAssert:
		buf = append(buf, in.A)
	}
	return buf
}

// instrDef returns the register an instruction writes, or ir.NoReg.
func instrDef(in *ir.Instr) ir.Reg {
	switch in.Op {
	case ir.OpConst, ir.OpBin, ir.OpCmp, ir.OpNot, ir.OpMov, ir.OpZext,
		ir.OpSext, ir.OpTrunc, ir.OpSelect, ir.OpAlloca, ir.OpLoad,
		ir.OpInput, ir.OpInputLen:
		return in.Dst
	case ir.OpCall:
		return in.Dst // may be NoReg
	}
	return ir.NoReg
}
