package analysis

import (
	"testing"

	"pbse/internal/ir"
)

// badSrc mirrors cmd/irlint/testdata/bad.ir: a program that passes
// validation but trips five distinct linter checks.
const badSrc = `
program bad
func main(params=0 regs=8) {
entry:
	r0 = const 1 w32
	r1 = const 99 w32
	br r0 yes no
yes:
	r2 = alloca 16
	r3 = const 7 w32
	store [r2+0], r3 w32
	r4 = call never_returns()
	exit
no:
	exit
}
func never_returns(params=0 regs=1) {
entry:
	r0 = const 0 w32
	jmp spin
spin:
	jmp spin
}
func orphan(params=0 regs=2) {
entry:
	r0 = const 2 w32
	r1 = add r0, r0 w32
	ret r1
}
`

func kinds(diags []Diag) map[DiagKind]int {
	m := make(map[DiagKind]int)
	for _, d := range diags {
		m[d.Kind]++
	}
	return m
}

func TestLintBadProgram(t *testing.T) {
	p := parse(t, badSrc)
	diags := Lint(p)
	got := kinds(diags)
	for _, want := range []DiagKind{
		DiagDeadRegister, DiagConstBranch, DiagStoreNeverLoaded,
		DiagNoReturnCall, DiagUnreachableFunc,
	} {
		if got[want] == 0 {
			t.Errorf("missing %s finding in %v", want, diags)
		}
	}
	if len(got) < 3 {
		t.Errorf("acceptance: want >=3 distinct kinds, got %d (%v)", len(got), got)
	}
	for _, d := range diags {
		if d.Prog != "bad" || d.Func == "" {
			t.Errorf("diag missing position info: %+v", d)
		}
	}
}

func TestLintPositions(t *testing.T) {
	p := parse(t, badSrc)
	for _, d := range Lint(p) {
		if d.Kind == DiagConstBranch {
			if d.Pos() != "bad:main:entry" {
				t.Errorf("const-branch pos = %q, want bad:main:entry", d.Pos())
			}
			if d.Instr != 2 {
				t.Errorf("const-branch instr = %d, want 2", d.Instr)
			}
		}
	}
}

func TestLintCleanProgram(t *testing.T) {
	for _, prog := range loadExamplePrograms(t) {
		if diags := Lint(prog); len(diags) != 0 {
			t.Errorf("%s: examples must be lint-clean, got %v", prog.Name, diags)
		}
	}
}

// Unreachable blocks are rejected by Finalize, so the linter check only
// fires on hand-assembled programs that were never finalised.
func TestLintUnreachableBlockUnfinalised(t *testing.T) {
	p := ir.NewProgram("raw")
	fb := p.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	entry.Exit()
	orphan := fb.NewBlock("orphan")
	orphan.Exit()

	found := false
	for _, d := range Lint(p) {
		if d.Kind == DiagUnreachableBlock && d.Block == "orphan" {
			found = true
		}
	}
	if !found {
		t.Error("unreachable block not reported on unfinalised program")
	}
}

func TestLintDeadRegisterIgnoresCallResults(t *testing.T) {
	p := parse(t, `
program callres
func h(params=0 regs=1) {
entry:
	r0 = const 3 w32
	ret r0
}
func main(params=0 regs=2) {
entry:
	r0 = call h()
	exit
}
`)
	for _, d := range Lint(p) {
		if d.Kind == DiagDeadRegister && d.Func == "main" {
			t.Errorf("discarded call result flagged as dead register: %v", d)
		}
	}
}

func TestLintConstSwitch(t *testing.T) {
	p := parse(t, `
program sw
func main(params=0 regs=2) {
entry:
	r0 = const 2 w32
	switch r0 [1:a 2:b] default c
a:
	exit
b:
	exit
c:
	exit
}
`)
	got := kinds(Lint(p))
	if got[DiagConstBranch] != 1 {
		t.Errorf("constant switch not flagged: %v", got)
	}
}
