package analysis

import "sort"

// domProblem computes dominator sets as a forward dataflow pass:
// dom(b) = {b} ∪ ⋂ dom(preds), with dom(entry) = {entry}.
type domProblem struct{ n int }

func (p *domProblem) Direction() Direction      { return Forward }
func (p *domProblem) Bits() int                 { return p.n }
func (p *domProblem) Boundary(v BitSet)         {} // entry in-set: empty
func (p *domProblem) Init(v BitSet)             { v.Fill() }
func (p *domProblem) Meet(dst, src BitSet) bool { return dst.Intersect(src) }
func (p *domProblem) Transfer(block int, in, out BitSet) {
	out.Copy(in)
	out.Set(block)
}

// Loop is one natural loop: the set of blocks from which the back-edge
// sources (latches) reach the header without passing through it.
type Loop struct {
	// Header is the loop entry block (the back-edge target), by position.
	Header int
	// Latches are the back-edge sources.
	Latches []int
	// Blocks is the ascending set of member blocks (header included).
	Blocks []int
	// Exits are member blocks with at least one successor outside the loop.
	Exits []int
	// Parent indexes the innermost enclosing loop in FuncInfo.Loops, -1
	// for top-level loops.
	Parent int
	// Depth is the nesting depth (1 = outermost).
	Depth int
	// InputDependent is set by the taint analysis when any exit branch of
	// the loop depends on program input — the paper's trap-loop signature.
	InputDependent bool
}

// Contains reports membership of block b (by position) in the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// buildDominators fills DomSet and Idom via the dataflow framework.
func (fi *FuncInfo) buildDominators() {
	n := len(fi.Fn.Blocks)
	_, out := Solve(fi, &domProblem{n: n})
	fi.DomSet = make([]BitSet, n)
	for _, b := range fi.RPO {
		fi.DomSet[b] = out[b]
	}
	// idom(b): the strict dominator of b with the largest RPO number (the
	// closest one — every other strict dominator dominates it).
	fi.Idom = make([]int, n)
	for i := range fi.Idom {
		fi.Idom[i] = -1
	}
	for _, b := range fi.RPO {
		best := -1
		for _, d := range fi.RPO { // RPO ascending; keep the last match
			if d != b && fi.DomSet[b].Get(d) {
				best = d
			}
		}
		fi.Idom[b] = best
	}
}

// buildLoops detects natural loops from back edges (edges whose target
// dominates their source), computes bodies, exits and nesting, and marks
// irreducible retreating edges.
func (fi *FuncInfo) buildLoops() {
	n := len(fi.Fn.Blocks)
	latchesOf := make(map[int][]int) // header -> latches
	var headers []int
	for _, b := range fi.RPO {
		for _, s := range fi.Succs[b] {
			if !fi.Reachable[s] {
				continue
			}
			if fi.Dominates(s, b) {
				if len(latchesOf[s]) == 0 {
					headers = append(headers, s)
				}
				latchesOf[s] = append(latchesOf[s], b)
			} else if fi.RPONum[s] <= fi.RPONum[b] {
				// retreating edge to a non-dominating target
				fi.Irreducible = true
			}
		}
	}
	sort.Ints(headers)

	fi.LoopOf = make([]int, n)
	for i := range fi.LoopOf {
		fi.LoopOf[i] = -1
	}
	for _, h := range headers {
		inLoop := make([]bool, n)
		inLoop[h] = true
		stack := append([]int(nil), latchesOf[h]...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inLoop[b] {
				continue
			}
			inLoop[b] = true
			for _, p := range fi.Preds[b] {
				if fi.Reachable[p] && !inLoop[p] {
					stack = append(stack, p)
				}
			}
		}
		l := &Loop{Header: h, Latches: latchesOf[h], Parent: -1}
		for b := 0; b < n; b++ {
			if !inLoop[b] {
				continue
			}
			l.Blocks = append(l.Blocks, b)
			for _, s := range fi.Succs[b] {
				if !inLoop[s] {
					l.Exits = append(l.Exits, b)
					break
				}
			}
		}
		fi.Loops = append(fi.Loops, l)
	}

	// Nesting: the innermost enclosing loop of l is the smallest other
	// loop containing l's header. Sorting by size makes parents precede
	// children, so depths resolve in one pass.
	order := make([]int, len(fi.Loops))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(fi.Loops[order[a]].Blocks) > len(fi.Loops[order[b]].Blocks)
	})
	for _, li := range order {
		l := fi.Loops[li]
		for _, pi := range order {
			p := fi.Loops[pi]
			if pi == li || len(p.Blocks) <= len(l.Blocks) || !p.Contains(l.Header) {
				continue
			}
			if l.Parent == -1 || len(p.Blocks) < len(fi.Loops[l.Parent].Blocks) {
				l.Parent = pi
			}
		}
		if l.Parent == -1 {
			l.Depth = 1
		} else {
			l.Depth = fi.Loops[l.Parent].Depth + 1
		}
		// innermost wins: processed largest-first, so children overwrite
		for _, b := range l.Blocks {
			fi.LoopOf[b] = li
		}
	}
}
