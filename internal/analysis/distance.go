package analysis

import "pbse/internal/ir"

// DistanceOracle answers distance-to-uncovered queries over the
// interprocedural block graph (branch/switch targets plus call edges).
// It replaces the old per-(block, epoch) forward BFS with one
// multi-source reverse BFS per coverage epoch — O(V+E) total instead of
// O(V+E) per queried block — and carries the static loop hints so search
// heuristics can damp states spinning inside input-dependent loops.
type DistanceOracle struct {
	radj  [][]int
	dist  []int32
	queue []int32
	Hints *StaticHints
}

// NewDistanceOracle builds the reversed adjacency for prog. hints may be
// nil when loop information is not needed.
func NewDistanceOracle(prog *ir.Program, hints *StaticHints) *DistanceOracle {
	adj := ir.SuccsWithCalls(prog)
	o := &DistanceOracle{
		radj:  make([][]int, len(adj)),
		dist:  make([]int32, len(adj)),
		queue: make([]int32, 0, len(adj)),
		Hints: hints,
	}
	for from, succs := range adj {
		for _, to := range succs {
			o.radj[to] = append(o.radj[to], from)
		}
	}
	return o
}

// Recompute refreshes every distance from the current uncovered set: a
// multi-source BFS over reversed edges, so dist(b) is the minimum number
// of forward edges from b to any block with covered(b) == false.
func (o *DistanceOracle) Recompute(covered func(blockID int) bool) {
	q := o.queue[:0]
	for b := range o.dist {
		if covered(b) {
			o.dist[b] = -1
		} else {
			o.dist[b] = 0
			q = append(q, int32(b))
		}
	}
	for head := 0; head < len(q); head++ {
		b := q[head]
		for _, p := range o.radj[b] {
			if o.dist[p] < 0 {
				o.dist[p] = o.dist[b] + 1
				q = append(q, int32(p))
			}
		}
	}
	o.queue = q[:0]
}

// Dist returns the last-recomputed distance from blockID to the nearest
// uncovered block, or -1 when none is reachable.
func (o *DistanceOracle) Dist(blockID int) int { return int(o.dist[blockID]) }

// InInputLoop reports whether blockID sits inside a statically detected
// input-dependent loop (false when the oracle has no hints).
func (o *DistanceOracle) InInputLoop(blockID int) bool {
	return o.Hints != nil && o.Hints.InInputLoop[blockID]
}
