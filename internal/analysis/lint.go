package analysis

import (
	"fmt"
	"sort"

	"pbse/internal/ir"
)

// DiagKind names a class of linter finding.
type DiagKind string

// Linter diagnostic kinds.
const (
	// DiagUnreachableBlock: a block with no path from the function entry.
	// (Program.Finalize rejects these outright; the linter still reports
	// them for programs assembled by hand.)
	DiagUnreachableBlock DiagKind = "unreachable-block"
	// DiagDeadRegister: a register written by a non-call instruction but
	// never read anywhere in the function.
	DiagDeadRegister DiagKind = "dead-register"
	// DiagConstBranch: a br/switch whose operand is a locally provable
	// constant — the branch always goes one way and is foldable.
	DiagConstBranch DiagKind = "const-branch"
	// DiagStoreNeverLoaded: an allocation site that is stored to but whose
	// memory no load ever reads (whole-program may-points-to).
	DiagStoreNeverLoaded DiagKind = "store-never-loaded"
	// DiagNoReturnCall: a call to a function with no reachable ret — the
	// code after the call can never execute.
	DiagNoReturnCall DiagKind = "no-return-call"
	// DiagUnreachableFunc: a function that is not main and is never called
	// transitively from main.
	DiagUnreachableFunc DiagKind = "unreachable-func"
)

// Diag is one structured linter finding.
type Diag struct {
	Kind  DiagKind `json:"kind"`
	Prog  string   `json:"prog"`
	Func  string   `json:"func"`
	Block string   `json:"block,omitempty"`
	// Instr is the offending instruction's index within the block, -1 when
	// the finding concerns a whole block or function.
	Instr int    `json:"instr"`
	Msg   string `json:"msg"`
}

// Pos renders the prog:func:block position of the finding.
func (d Diag) Pos() string {
	p := d.Prog + ":" + d.Func
	if d.Block != "" {
		p += ":" + d.Block
	}
	return p
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos(), d.Kind, d.Msg)
}

// Lint runs every linter check over the analysed program and returns the
// findings in deterministic (function, block, instruction) order.
func (inf *Info) Lint() []Diag {
	var diags []Diag
	for fx, fn := range inf.Prog.Funcs {
		fi := inf.Funcs[fx]
		diags = append(diags, lintUnreachableBlocks(fn, fi)...)
		diags = append(diags, lintDeadRegisters(fn)...)
		diags = append(diags, lintConstBranches(fn, fi)...)
		diags = append(diags, lintNoReturnCalls(inf, fn, fi)...)
	}
	diags = append(diags, lintStoresNeverLoaded(inf)...)
	diags = append(diags, lintUnreachableFuncs(inf)...)
	return diags
}

// Lint analyses p and runs every linter check; a convenience wrapper
// around Analyze(p).Lint().
func Lint(p *ir.Program) []Diag { return Analyze(p).Lint() }

func lintUnreachableBlocks(fn *ir.Func, fi *FuncInfo) []Diag {
	var out []Diag
	for bi, b := range fn.Blocks {
		if !fi.Reachable[bi] {
			out = append(out, Diag{
				Kind: DiagUnreachableBlock, Prog: fn.Prog.Name, Func: fn.Name,
				Block: b.Name, Instr: -1,
				Msg: "block is unreachable from the function entry",
			})
		}
	}
	return out
}

func lintDeadRegisters(fn *ir.Func) []Diag {
	du := NewDefUse(fn)
	dead := NewBitSet(fn.NumRegs)
	n := 0
	for r := 0; r < fn.NumRegs; r++ {
		if du.Defined.Get(r) && !du.Used.Get(r) && !du.CallOnlyDef.Get(r) {
			dead.Set(r)
			n++
		}
	}
	if n == 0 {
		return nil
	}
	// report at the first defining instruction of each dead register
	var out []Diag
	reported := NewBitSet(fn.NumRegs)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			d := instrDef(&b.Instrs[i])
			if d == ir.NoReg || !dead.Get(int(d)) || reported.Get(int(d)) {
				continue
			}
			reported.Set(int(d))
			out = append(out, Diag{
				Kind: DiagDeadRegister, Prog: fn.Prog.Name, Func: fn.Name,
				Block: b.Name, Instr: i,
				Msg: fmt.Sprintf("r%d is written here but never read", d),
			})
		}
	}
	return out
}

// lintConstBranches runs a block-local constant propagation: registers
// proven constant between the block entry and the terminator make a
// br/switch foldable.
func lintConstBranches(fn *ir.Func, fi *FuncInfo) []Diag {
	var out []Diag
	for bi, b := range fn.Blocks {
		if !fi.Reachable[bi] {
			continue
		}
		consts := make(map[ir.Reg]uint64)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpBr:
				if v, ok := consts[in.A]; ok {
					dir := "false"
					if v != 0 {
						dir = "true"
					}
					out = append(out, Diag{
						Kind: DiagConstBranch, Prog: fn.Prog.Name, Func: fn.Name,
						Block: b.Name, Instr: i,
						Msg: fmt.Sprintf("branch condition r%d is always %s (const %d)", in.A, dir, v),
					})
				}
			case ir.OpSwitch:
				if v, ok := consts[in.A]; ok {
					out = append(out, Diag{
						Kind: DiagConstBranch, Prog: fn.Prog.Name, Func: fn.Name,
						Block: b.Name, Instr: i,
						Msg: fmt.Sprintf("switch operand r%d is always const %d", in.A, v),
					})
				}
			default:
				stepConsts(in, consts)
			}
		}
	}
	return out
}

// stepConsts updates the local constant map across one non-terminator
// instruction; unsupported results simply become unknown.
func stepConsts(in *ir.Instr, consts map[ir.Reg]uint64) {
	d := instrDef(in)
	if d == ir.NoReg {
		return
	}
	unknown := func() { delete(consts, d) }
	w := uint(in.Width)
	switch in.Op {
	case ir.OpConst:
		consts[d] = maskW(in.Imm, w)
	case ir.OpMov, ir.OpZext, ir.OpTrunc:
		if v, ok := consts[in.A]; ok {
			consts[d] = maskW(v, w)
		} else {
			unknown()
		}
	case ir.OpNot:
		if v, ok := consts[in.A]; ok {
			consts[d] = maskW(^v, w)
		} else {
			unknown()
		}
	case ir.OpBin:
		a, aok := consts[in.A]
		b, bok := consts[in.B]
		if v, ok := evalBin(in.Bin, a, b, w); aok && bok && ok {
			consts[d] = v
		} else {
			unknown()
		}
	case ir.OpCmp:
		a, aok := consts[in.A]
		b, bok := consts[in.B]
		if aok && bok {
			consts[d] = evalCmp(in.Pred, a, b, w)
		} else {
			unknown()
		}
	default:
		// sext needs the source width, loads/calls are runtime values
		unknown()
	}
}

func maskW(v uint64, w uint) uint64 {
	if w >= 64 {
		return v
	}
	return v & (1<<w - 1)
}

func sextW(v uint64, w uint) int64 {
	if w >= 64 {
		return int64(v)
	}
	if v&(1<<(w-1)) != 0 {
		v |= ^uint64(0) << w
	}
	return int64(v)
}

func evalBin(op ir.BinOp, a, b uint64, w uint) (uint64, bool) {
	switch op {
	case ir.Add:
		return maskW(a+b, w), true
	case ir.Sub:
		return maskW(a-b, w), true
	case ir.Mul:
		return maskW(a*b, w), true
	case ir.And:
		return a & b, true
	case ir.Or:
		return a | b, true
	case ir.Xor:
		return a ^ b, true
	case ir.Shl:
		if b >= uint64(w) {
			return 0, true
		}
		return maskW(a<<b, w), true
	case ir.LShr:
		if b >= uint64(w) {
			return 0, true
		}
		return a >> b, true
	case ir.UDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.URem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	// signed ops left to the interpreter — not worth duplicating here
	return 0, false
}

func evalCmp(p ir.Pred, a, b uint64, w uint) uint64 {
	sa, sb := sextW(a, w), sextW(b, w)
	var r bool
	switch p {
	case ir.Eq:
		r = a == b
	case ir.Ne:
		r = a != b
	case ir.Ult:
		r = a < b
	case ir.Ule:
		r = a <= b
	case ir.Ugt:
		r = a > b
	case ir.Uge:
		r = a >= b
	case ir.Slt:
		r = sa < sb
	case ir.Sle:
		r = sa <= sb
	case ir.Sgt:
		r = sa > sb
	case ir.Sge:
		r = sa >= sb
	}
	if r {
		return 1
	}
	return 0
}

func lintNoReturnCalls(inf *Info, fn *ir.Func, fi *FuncInfo) []Diag {
	var out []Diag
	for bi, b := range fn.Blocks {
		if !fi.Reachable[bi] {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpCall {
				continue
			}
			callee := inf.Prog.Func(in.Callee)
			if callee == nil || funcCanReturn(inf, callee) {
				continue
			}
			out = append(out, Diag{
				Kind: DiagNoReturnCall, Prog: fn.Prog.Name, Func: fn.Name,
				Block: b.Name, Instr: i,
				Msg: fmt.Sprintf("%q has no reachable ret; code after this call never runs", in.Callee),
			})
		}
	}
	return out
}

func funcCanReturn(inf *Info, fn *ir.Func) bool {
	fi := inf.FuncInfoOf(fn)
	if fi == nil {
		return true
	}
	for _, bi := range fi.RPO {
		if t := fn.Blocks[bi].Terminator(); t != nil && t.Op == ir.OpRet {
			return true
		}
	}
	return false
}

func lintStoresNeverLoaded(inf *Info) []Diag {
	t := inf.Taint
	loaded := NewBitSet(t.numSites)
	for fx, fn := range inf.Prog.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLoad {
					loaded.Union(t.pts[fx][b.Instrs[i].A])
				}
			}
		}
	}
	var out []Diag
	for fx, fn := range inf.Prog.Funcs {
		fi := inf.Funcs[fx]
		for bi, b := range fn.Blocks {
			if !fi.Reachable[bi] {
				continue
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpAlloca {
					continue
				}
				site := t.siteOf[in]
				if loaded.Get(site) || !siteStored(inf, site) {
					continue
				}
				out = append(out, Diag{
					Kind: DiagStoreNeverLoaded, Prog: fn.Prog.Name, Func: fn.Name,
					Block: b.Name, Instr: i,
					Msg: "object is stored to but never loaded from",
				})
			}
		}
	}
	return out
}

func siteStored(inf *Info, site int) bool {
	t := inf.Taint
	for fx, fn := range inf.Prog.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpStore && t.pts[fx][b.Instrs[i].A].Get(site) {
					return true
				}
			}
		}
	}
	return false
}

func lintUnreachableFuncs(inf *Info) []Diag {
	main := inf.Prog.Func("main")
	if main == nil {
		return nil
	}
	called := map[*ir.Func]bool{main: true}
	work := []*ir.Func{main}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		fi := inf.FuncInfoOf(fn)
		for _, bi := range fi.RPO {
			for i := range fn.Blocks[bi].Instrs {
				in := &fn.Blocks[bi].Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				if c := inf.Prog.Func(in.Callee); c != nil && !called[c] {
					called[c] = true
					work = append(work, c)
				}
			}
		}
	}
	var names []string
	for _, fn := range inf.Prog.Funcs {
		if !called[fn] {
			names = append(names, fn.Name)
		}
	}
	sort.Strings(names)
	var out []Diag
	for _, name := range names {
		out = append(out, Diag{
			Kind: DiagUnreachableFunc, Prog: inf.Prog.Name, Func: name, Instr: -1,
			Msg: "function is never called from main",
		})
	}
	return out
}
