// Package targets contains the synthetic file-format parsers the
// experiments run on. Each target mirrors the structure of one of the
// paper's real test programs (readelf, pngtest, gif2tiff/tiff2rgba,
// dwarfdump): a header-validation phase, input-dependent loops over
// tables whose lengths come from the file (the trap phases), bypass
// branches that let a few paths skip the loops (Fig 2), and seeded bugs
// of the paper's classes hidden in the deep phases (Table III).
package targets

import (
	"fmt"
	"math/rand"

	"pbse/internal/ir"
)

// Target couples a buildable program with its seed generator, mirroring
// one (package, test-driver) row of the paper's tables.
type Target struct {
	// Name identifies the synthetic package ("minielf", "minipng", ...).
	Name string
	// Driver is the test-driver analogue ("readelf", "pngtest", ...).
	Driver string
	// Paper names the real-world program this target stands in for.
	Paper string
	// Build constructs and finalises the IR program.
	Build func() (*ir.Program, error)
	// GenSeed generates a valid input of approximately the given size.
	GenSeed func(rng *rand.Rand, size int) []byte
	// GenBuggySeed generates an input that triggers one of the seeded
	// bugs concretely (used by the Fig 5(b) experiment); nil when the
	// target has no concretely-reachable seeded bug generator.
	GenBuggySeed func(rng *rand.Rand) []byte
}

// All returns every registered target in a stable order.
func All() []*Target {
	return []*Target{
		MiniELF(),
		MiniPNG(),
		MiniTIFF(),
		MiniTIFFRGBA(),
		MiniDWARF(),
	}
}

// ByDriver returns the target whose Driver matches, or an error.
func ByDriver(driver string) (*Target, error) {
	for _, t := range All() {
		if t.Driver == driver {
			return t, nil
		}
	}
	return nil, fmt.Errorf("targets: unknown driver %q", driver)
}

// emitReadHelpers adds bounds-checked little-endian readers to p:
//
//	read8(off u32) u32, read16(off u32) u32, read32(off u32) u32
//
// Each returns 0 when the access would run past the input, so parser code
// can read fearlessly; seeded bugs use raw loads instead.
func emitReadHelpers(p *ir.Program) {
	for _, h := range []struct {
		name  string
		nbyte uint64
		width uint
	}{
		{"read8", 1, 8},
		{"read16", 2, 16},
		{"read32", 4, 32},
	} {
		fb := p.NewFunc(h.name, 1)
		entry := fb.NewBlock("entry")
		ok := fb.NewBlock("ok")
		oob := fb.NewBlock("oob")

		off := fb.Param(0)
		off64 := entry.Zext(off, 64)
		end := entry.BinImm(ir.Add, off64, h.nbyte, 64)
		n := entry.InputLen(64)
		c := entry.Cmp(ir.Ule, end, n, 64)
		entry.Br(c, ok.Blk(), oob.Blk())

		ip := ok.Input()
		addr := ok.Add(ip, off64, 64)
		v := ok.Load(addr, 0, h.width)
		v32 := ok.Zext(v, 32)
		ok.Ret(v32)

		z := oob.Const(0, 32)
		oob.Ret(z)
	}
}

// loopParts holds the registers and blocks of a counted loop built by
// beginLoop.
type loopParts struct {
	I     ir.Reg           // u32 induction variable
	Head  *ir.Block        // condition block (jump here to continue)
	Body  *ir.BlockBuilder // loop body (caller fills it, then calls endLoop)
	After *ir.BlockBuilder // first block after the loop
}

// beginLoop emits `for I = 0; I < limit; I++` scaffolding: cur jumps into
// the loop head; the caller fills parts.Body and finishes it with
// endLoop (or custom control flow back to parts.Head / out to
// parts.After).
func beginLoop(fb *ir.FuncBuilder, cur *ir.BlockBuilder, name string, limit ir.Reg) loopParts {
	head := fb.NewBlock(name + ".head")
	body := fb.NewBlock(name + ".body")
	after := fb.NewBlock(name + ".after")

	i := fb.NewReg()
	cur.ConstTo(i, 0, 32)
	cur.Jmp(head.Blk())

	c := head.Cmp(ir.Ult, i, limit, 32)
	head.Br(c, body.Blk(), after.Blk())

	return loopParts{I: i, Head: head.Blk(), Body: body, After: after}
}

// endLoop increments the induction variable and jumps back to the head.
func endLoop(lp loopParts, tail *ir.BlockBuilder) {
	ni := tail.AddImm(lp.I, 1, 32)
	tail.MovTo(lp.I, ni, 32)
	tail.Jmp(lp.Head)
}

// le16 appends v little-endian.
func le16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

// le32 appends v little-endian.
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// pad extends b with pseudo-random filler to exactly size bytes (values
// kept below 0x10 so byte-indexed histogram code stays in bounds on
// benign seeds).
func pad(b []byte, size int, rng *rand.Rand) []byte {
	for len(b) < size {
		b = append(b, byte(rng.Intn(0x10)))
	}
	return b[:size]
}
