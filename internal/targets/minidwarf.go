package targets

import (
	"math/rand"

	"pbse/internal/ir"
)

// MiniDWARF is the dwarfdump analogue: an abbreviation table plus a
// recursive DIE (debug info entry) tree walk — recursion is the paper's
// other trap-phase shape. File layout:
//
//	0..3   magic 'D' 'W' 'F' '1'
//	4..5   abbrev_off    6..7   abbrev_count
//	8..9   info_off      10..11 info_count (top-level DIEs)
//	abbrev entry (4B): code(1) tag(1) nattrs(1) form(1)
//	DIE: code(1); nattrs values (2B each, per abbrev); nchildren(1);
//	     children DIEs recursively. Code 0 is a null DIE (1 byte).
//
// Seeded bugs (libdwarf had 10 across these classes):
//
//	D1 (OOB read):   the attribute-name table (16 bytes) is indexed with
//	                 tag&0x1f.
//	D2 (null deref): form 3 attributes select a string pointer; value&7
//	                 == 0 selects the null pointer.
//	D3 (OOB write):  the depth histogram (8 bytes) is indexed with the
//	                 recursion depth, unchecked past depth 7.
func MiniDWARF() *Target {
	return &Target{
		Name:         "minidwarf",
		Driver:       "dwarfdump",
		Paper:        "libdwarf-20151114 dwarfdump",
		Build:        buildMiniDWARF,
		GenSeed:      genDwarfSeed,
		GenBuggySeed: genDwarfBuggySeed,
	}
}

func buildMiniDWARF() (*ir.Program, error) {
	p := ir.NewProgram("minidwarf")
	emitReadHelpers(p)

	dwarfCheckHeader(p)
	dwarfFindAbbrev(p)
	dwarfProcessAttrs(p)
	dwarfProcessDIE(p)
	dwarfScanAbbrevTable(p)
	dwarfEmitRich(p)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	bad := fb.NewBlock("bad")
	run := fb.NewBlock("run")
	ok := b.Call("dwarf_check_header")
	c := b.CmpImm(ir.Ne, ok, 0, 32)
	b.Br(c, run.Blk(), bad.Blk())
	bad.Print("not a DWF file")
	bad.Exit()

	run.Call("scan_abbrev_table")
	nTop := run.Call("read16", run.Const(10, 32))
	infoOff := run.Call("read16", run.Const(8, 32))

	// walk the top-level DIEs
	pos := fb.NewReg()
	run.MovTo(pos, infoOff, 32)
	lp := beginLoop(fb, run, "top", nTop)
	zero := lp.Body.Const(0, 32)
	np := lp.Body.Call("process_die", pos, zero)
	lp.Body.MovTo(pos, np, 32)
	endLoop(lp, lp.Body)
	lp.After.Call("line_program")
	lp.After.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func dwarfCheckHeader(p *ir.Program) {
	fb := p.NewFunc("dwarf_check_header", 0)
	entry := fb.NewBlock("entry")
	fail := fb.NewBlock("fail")
	cur := entry
	for i, want := range []uint64{'D', 'W', 'F', '1'} {
		next := fb.NewBlock("m" + string(rune('0'+i)))
		v := cur.Call("read8", cur.Const(uint64(i), 32))
		c := cur.CmpImm(ir.Eq, v, want, 32)
		cur.Br(c, next.Blk(), fail.Blk())
		cur = next
	}
	one := cur.Const(1, 32)
	cur.Ret(one)
	zero := fail.Const(0, 32)
	fail.Ret(zero)
}

// dwarfScanAbbrevTable pre-validates every abbreviation entry — the
// first input-dependent loop.
func dwarfScanAbbrevTable(p *ir.Program) {
	fb := p.NewFunc("scan_abbrev_table", 0)
	entry := fb.NewBlock("entry")

	off := entry.Call("read16", entry.Const(4, 32))
	count := entry.Call("read16", entry.Const(6, 32))
	lp := beginLoop(fb, entry, "ab", count)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 4, 32)
	base := b.Add(off, stride, 32)
	code := b.Call("read8", base)
	okCode := fb.NewBlock("okcode")
	badCode := fb.NewBlock("badcode")
	join := fb.NewBlock("join")
	cc := b.CmpImm(ir.Ne, code, 0, 32)
	b.Br(cc, okCode.Blk(), badCode.Blk())
	badCode.Print("abbrev code 0")
	badCode.Jmp(join.Blk())
	nattrs := okCode.Call("read8", okCode.AddImm(base, 2, 32))
	okN := fb.NewBlock("okn")
	badN := fb.NewBlock("badn")
	nc := okCode.CmpImm(ir.Ule, nattrs, 8, 32)
	okCode.Br(nc, okN.Blk(), badN.Blk())
	badN.Print("too many attrs")
	badN.Jmp(join.Blk())
	okN.Jmp(join.Blk())
	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)
	lp.After.RetVoid()
}

// dwarfFindAbbrev(code) linearly scans the abbreviation table and returns
// the entry offset, or 0xffffffff when absent.
func dwarfFindAbbrev(p *ir.Program) {
	fb := p.NewFunc("find_abbrev", 1)
	entry := fb.NewBlock("entry")
	want := fb.Param(0)

	off := entry.Call("read16", entry.Const(4, 32))
	count := entry.Call("read16", entry.Const(6, 32))
	lp := beginLoop(fb, entry, "fa", count)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 4, 32)
	base := b.Add(off, stride, 32)
	code := b.Call("read8", base)
	hit := fb.NewBlock("hit")
	miss := fb.NewBlock("miss")
	hc := b.Cmp(ir.Eq, code, want, 32)
	b.Br(hc, hit.Blk(), miss.Blk())
	hit.Ret(base)
	ni := miss.AddImm(lp.I, 1, 32)
	miss.MovTo(lp.I, ni, 32)
	miss.Jmp(lp.Head)

	sentinel := lp.After.Const(0xffffffff, 32)
	lp.After.Ret(sentinel)
}

// dwarfProcessAttrs(pos, abbrevOff) consumes the attribute values of one
// DIE and returns the new position. Carries bugs D1 and D2.
func dwarfProcessAttrs(p *ir.Program) {
	fb := p.NewFunc("process_attrs", 2)
	entry := fb.NewBlock("entry")
	pos0, abbrevOff := fb.Param(0), fb.Param(1)

	names := entry.Alloca(16)  // D1: indexed with tag&0x1f
	strbuf := entry.Alloca(32) // D2: or the null pointer

	tag := entry.Call("read8", entry.AddImm(abbrevOff, 1, 32))
	nattrs := entry.Call("read8", entry.AddImm(abbrevOff, 2, 32))
	form := entry.Call("read8", entry.AddImm(abbrevOff, 3, 32))

	// BUG D1: OOB read of the 16-byte name table for tag >= 0x10
	nidx := entry.BinImm(ir.And, tag, 0x1f, 32)
	nidx64 := entry.Zext(nidx, 64)
	naddr := entry.Add(names, nidx64, 64)
	entry.Load(naddr, 0, 8)

	pos := fb.NewReg()
	entry.MovTo(pos, pos0, 32)
	lp := beginLoop(fb, entry, "attr", nattrs)
	b := lp.Body
	val := b.Call("read16", pos)
	np := b.AddImm(pos, 2, 32)
	b.MovTo(pos, np, 32)

	b.Call("decode_form", form, val)

	isStr := fb.NewBlock("isstr")
	plain := fb.NewBlock("plain")
	join := fb.NewBlock("join")
	fc := b.CmpImm(ir.Eq, form, 3, 32)
	b.Br(fc, isStr.Blk(), plain.Blk())

	// BUG D2: val&7 == 0 leaves the string pointer null
	strOK := fb.NewBlock("strok")
	strNull := fb.NewBlock("strnull")
	sel := isStr.BinImm(ir.And, val, 7, 32)
	nz := isStr.CmpImm(ir.Ne, sel, 0, 32)
	isStr.Br(nz, strOK.Blk(), strNull.Blk())
	idx64 := strOK.Zext(sel, 64)
	saddr := strOK.Add(strbuf, idx64, 64)
	strOK.Load(saddr, 0, 8)
	strOK.Jmp(join.Blk())
	zero64 := strNull.Const(0, 64)
	strNull.Load(zero64, 0, 8) // crash: null dereference
	strNull.Jmp(join.Blk())

	plain.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)

	lp.After.Ret(pos)
}

// dwarfProcessDIE(pos, depth) is the recursive tree walk. Carries bug D3:
// the 8-byte depth histogram is written at index depth with no check.
func dwarfProcessDIE(p *ir.Program) {
	fb := p.NewFunc("process_die", 2)
	entry := fb.NewBlock("entry")
	pos0, depth := fb.Param(0), fb.Param(1)

	// stop at end of file (defensive, like dwarfdump's section bounds)
	n := entry.InputLen(32)
	inFile := entry.Cmp(ir.Ult, pos0, n, 32)
	parse := fb.NewBlock("parse")
	eof := fb.NewBlock("eof")
	entry.Br(inFile, parse.Blk(), eof.Blk())
	ep := eof.AddImm(pos0, 1, 32)
	eof.Ret(ep)

	hist := parse.Alloca(8)
	// BUG D3: depth is unbounded (input-controlled nesting)
	d64 := parse.Zext(depth, 64)
	haddr := parse.Add(hist, d64, 64)
	one8 := parse.Const(1, 8)
	parse.Store(haddr, 0, one8, 8)

	code := parse.Call("read8", pos0)
	p1 := parse.AddImm(pos0, 1, 32)
	isNull := fb.NewBlock("null")
	lookup := fb.NewBlock("lookup")
	zc := parse.CmpImm(ir.Eq, code, 0, 32)
	parse.Br(zc, isNull.Blk(), lookup.Blk())
	isNull.Ret(p1)

	abbrev := lookup.Call("find_abbrev", code)
	found := fb.NewBlock("found")
	missing := fb.NewBlock("missing")
	mc := lookup.CmpImm(ir.Eq, abbrev, 0xffffffff, 32)
	lookup.Br(mc, missing.Blk(), found.Blk())
	missing.Print("unknown abbrev code")
	missing.Ret(p1)

	apos := found.Call("process_attrs", p1, abbrev)
	nchild := found.Call("read8", apos)
	dtag := found.Call("read8", found.AddImm(abbrev, 1, 32))
	found.Call("describe_tag", dtag, nchild)
	cpos := fb.NewReg()
	cp0 := found.AddImm(apos, 1, 32)
	found.MovTo(cpos, cp0, 32)

	d1 := found.AddImm(depth, 1, 32)
	lp := beginLoop(fb, found, "child", nchild)
	np := lp.Body.Call("process_die", cpos, d1)
	lp.Body.MovTo(cpos, np, 32)
	endLoop(lp, lp.Body)

	lp.After.Ret(cpos)
}

// genDwarfSeed builds a benign DWF file: an abbrev table with small tags
// (< 0x10, keeping D1 dormant), non-string forms or non-zero string
// selectors (D2 dormant), and a DIE tree nested at most 3 deep (D3
// dormant).
func genDwarfSeed(rng *rand.Rand, size int) []byte {
	if size < 64 {
		size = 64
	}
	b := []byte{'D', 'W', 'F', '1'}
	abbrevCount := 2 + rng.Intn(2)
	abbrevOff := 16
	infoOff := abbrevOff + abbrevCount*4

	// a small valid line-number program placed after the DIEs; its
	// offset is patched in below once the info size is known
	lineProg := []byte{
		1, byte(rng.Intn(64)), 0, // advance pc
		2, byte(rng.Intn(5)), // advance line
		5,                       // copy
		byte(9 + rng.Intn(200)), // special opcode
		4, 7, 8,                 // const add, fixed advance, reset
		3, byte(1 + rng.Intn(9)), // set file
		6, byte(rng.Intn(80)), 0, // set column
		0, // end of sequence
	}

	b = le16(b, uint16(abbrevOff))
	b = le16(b, uint16(abbrevCount))
	b = le16(b, uint16(infoOff))

	type abbrev struct{ code, tag, nattrs, form byte }
	abbrevs := make([]abbrev, abbrevCount)
	for i := range abbrevs {
		abbrevs[i] = abbrev{
			code:   byte(i + 1),
			tag:    byte(dwarfTags[rng.Intn(9)].id), // ids < 0x10 keep D1 dormant
			nattrs: byte(1 + rng.Intn(3)),
			form:   byte(1 + rng.Intn(7)),
		}
	}

	// DIE tree: a couple of top-level DIEs, each with one child level
	var info []byte
	var emitDIE func(depth int)
	emitDIE = func(depth int) {
		a := abbrevs[rng.Intn(len(abbrevs))]
		info = append(info, a.code)
		for i := 0; i < int(a.nattrs); i++ {
			v := uint16(1 + rng.Intn(200)) // low 3 bits rarely 0…
			if a.form == 3 && v&7 == 0 {
				v |= 1 // …and forced non-zero for string forms (D2 dormant)
			}
			info = le16(info, v)
		}
		if depth < 2 && rng.Intn(2) == 0 {
			info = append(info, 1) // one child
			emitDIE(depth + 1)
		} else {
			info = append(info, 0) // no children
		}
	}
	nTop := 2
	for i := 0; i < nTop; i++ {
		emitDIE(0)
	}
	b = le16(b, uint16(nTop))
	lineOff := infoOff + len(info)
	b = le16(b, uint16(lineOff))
	b = le16(b, uint16(len(lineProg)))
	for i := range abbrevs {
		b = append(b, abbrevs[i].code, abbrevs[i].tag, abbrevs[i].nattrs, abbrevs[i].form)
	}
	b = append(b, info...)
	b = append(b, lineProg...)
	return pad(b, size, rng)
}

// genDwarfBuggySeed nests DIEs 9 deep, overflowing the 8-byte depth
// histogram concretely (bug D3).
func genDwarfBuggySeed(rng *rand.Rand) []byte {
	b := []byte{'D', 'W', 'F', '1'}
	b = le16(b, 16)           // abbrev off
	b = le16(b, 1)            // one abbrev
	b = le16(b, 20)           // info off
	b = le16(b, 1)            // one top-level DIE
	b = le16(b, 0)            // line program off (none)
	b = le16(b, 0)            // line program len
	b = append(b, 1, 2, 1, 1) // code 1, tag 2, 1 attr, form 1

	var info []byte
	depth := 9
	for i := 0; i < depth; i++ {
		info = append(info, 1)       // code
		info = le16(info, uint16(5)) // attr value
		info = append(info, 1)       // one child
	}
	info = append(info, 0) // deepest child is a null DIE
	b = append(b, info...)
	return pad(b, 128, rng)
}
