package targets

import (
	"math/rand"

	"pbse/internal/ir"
)

// MiniTIFF is the gif2tiff analogue: it parses a GIF-like input (header,
// logical screen descriptor, colour table, data blocks) the way gif2tiff
// reads its input before conversion. File layout:
//
//	0..3   magic 'G' 'I' 'F' '8'
//	4..5   screen width    6..7  screen height
//	8      flags (bit7: colour table present; bits0-2: size exponent)
//	colour table: 3 * 2^(1+(flags&7)) bytes when present
//	blocks: 0x2c image descriptor: x(2) y(2) w(2) h(2), then data
//	        sub-blocks (len byte + len data bytes, 0-terminated)
//	        0x21 extension: label(1) + sub-blocks
//	        0x3b trailer: end of file
//
// Seeded bug T1 (OOB write): the colour table is copied into a fixed
// 96-byte colormap (32 entries), but the size exponent allows up to 256
// entries — exponent >= 5 overflows, mirroring gif2tiff's colormap bugs.
func MiniTIFF() *Target {
	return &Target{
		Name:         "minitiff",
		Driver:       "gif2tiff",
		Paper:        "libtiff-4.0.6 gif2tiff",
		Build:        buildMiniTIFF,
		GenSeed:      genGIFSeed,
		GenBuggySeed: genGIFBuggySeed,
	}
}

// MiniTIFFRGBA is the tiff2rgba analogue: a TIFF-like parser whose
// CIELab conversion path carries the Fig 6 bug. File layout:
//
//	0..1   magic 'I' 'I'
//	2..3   version 42
//	4..5   IFD offset
//	IFD: count(2), then count entries of 8 bytes:
//	     tag(2) type(2) count(2) value(2)
//	tags: 256 width, 257 height, 262 photometric (8 = CIELab),
//	      273 strip offset, 279 strip byte count
//
// Seeded bugs:
//
//	T2 (OOB read, Fig 6 / putcontig8bitCIELab): when photometric is
//	    CIELab the converter reads w*h*3 bytes from a fixed 257-byte
//	    buffer.
//	T3 (integer overflow -> OOB write): the strip copier size-checks
//	    w*h truncated to 16 bits but loops over the full 32-bit product.
func MiniTIFFRGBA() *Target {
	return &Target{
		Name:         "minitiff",
		Driver:       "tiff2rgba",
		Paper:        "libtiff-4.0.6 tiff2rgba",
		Build:        buildMiniTIFFRGBA,
		GenSeed:      genTIFFSeed,
		GenBuggySeed: genTIFFBuggySeed,
	}
}

// --- gif2tiff driver ---

func buildMiniTIFF() (*ir.Program, error) {
	p := ir.NewProgram("minitiff-gif2tiff")
	emitReadHelpers(p)

	gifCheckHeader(p)
	gifReadColorTable(p)
	gifReadSubBlocks(p)
	gifReadImage(p)
	gifEmitRich(p)
	gifConvertPass(p)
	gifBlockWalk(p)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	bad := fb.NewBlock("bad")
	run := fb.NewBlock("run")
	ok := b.Call("gif_check_header")
	c := b.CmpImm(ir.Ne, ok, 0, 32)
	b.Br(c, run.Blk(), bad.Blk())
	bad.Print("not a GIF file")
	bad.Exit()
	pos := run.Call("gif_read_color_table")
	run.Call("gif_block_walk", pos)
	run.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func gifCheckHeader(p *ir.Program) {
	fb := p.NewFunc("gif_check_header", 0)
	entry := fb.NewBlock("entry")
	fail := fb.NewBlock("fail")
	cur := entry
	for i, want := range []uint64{'G', 'I', 'F', '8'} {
		next := fb.NewBlock("m" + string(rune('0'+i)))
		off := cur.Const(uint64(i), 32)
		v := cur.Call("read8", off)
		c := cur.CmpImm(ir.Eq, v, want, 32)
		cur.Br(c, next.Blk(), fail.Blk())
		cur = next
	}
	// dimensions must be non-zero
	w := cur.Call("read16", cur.Const(4, 32))
	okW := fb.NewBlock("okw")
	wc := cur.CmpImm(ir.Ugt, w, 0, 32)
	cur.Br(wc, okW.Blk(), fail.Blk())
	h := okW.Call("read16", okW.Const(6, 32))
	done := fb.NewBlock("done")
	hc := okW.CmpImm(ir.Ugt, h, 0, 32)
	okW.Br(hc, done.Blk(), fail.Blk())
	one := done.Const(1, 32)
	done.Ret(one)
	zero := fail.Const(0, 32)
	fail.Ret(zero)
}

// gifReadColorTable returns the position after the colour table. Seeded
// bug T1: the 96-byte colormap holds 32 entries but the exponent allows
// up to 256.
func gifReadColorTable(p *ir.Program) {
	fb := p.NewFunc("gif_read_color_table", 0)
	entry := fb.NewBlock("entry")
	have := fb.NewBlock("have")
	none := fb.NewBlock("none")

	colormap := entry.Alloca(96) // 32 entries * 3 bytes
	flags := entry.Call("read8", entry.Const(8, 32))
	present := entry.BinImm(ir.And, flags, 0x80, 32)
	pc := entry.CmpImm(ir.Ne, present, 0, 32)
	entry.Br(pc, have.Blk(), none.Blk())

	nine := none.Const(9, 32)
	none.Ret(nine)

	expo := have.BinImm(ir.And, flags, 7, 32)
	e1 := have.AddImm(expo, 1, 32)
	one := have.Const(1, 32)
	entries := have.Bin(ir.Shl, one, e1, 32) // 2^(expo+1), up to 256

	lp := beginLoop(fb, have, "cmap", entries)
	b := lp.Body
	// copy 3 bytes per entry from the file into the colormap
	stride := b.BinImm(ir.Mul, lp.I, 3, 32)
	src := b.AddImm(stride, 9, 32)
	for k := uint64(0); k < 3; k++ {
		so := b.AddImm(src, k, 32)
		v := b.Call("read8", so)
		v8 := b.Trunc(v, 8)
		dst := b.AddImm(stride, k, 32)
		dst64 := b.Zext(dst, 64)
		addr := b.Add(colormap, dst64, 64) // BUG T1: no bound on entries
		b.Store(addr, 0, v8, 8)
	}
	endLoop(lp, b)

	tblBytes := lp.After.BinImm(ir.Mul, entries, 3, 32)
	end := lp.After.AddImm(tblBytes, 9, 32)
	lp.After.Ret(end)
}

// gifReadSubBlocks(pos) walks len-prefixed data sub-blocks until a zero
// length; returns the position after the terminator.
func gifReadSubBlocks(p *ir.Program) {
	fb := p.NewFunc("gif_read_sub_blocks", 1)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	data := fb.NewBlock("data")
	out := fb.NewBlock("out")

	pos := fb.NewReg()
	entry.MovTo(pos, fb.Param(0), 32)
	entry.Jmp(head.Blk())

	// stop at end of file
	n := head.InputLen(32)
	inFile := head.Cmp(ir.Ult, pos, n, 32)
	chk := fb.NewBlock("chk")
	head.Br(inFile, chk.Blk(), out.Blk())

	blen := chk.Call("read8", pos)
	zc := chk.CmpImm(ir.Eq, blen, 0, 32)
	fin := fb.NewBlock("fin")
	chk.Br(zc, fin.Blk(), data.Blk())
	fp := fin.AddImm(pos, 1, 32)
	fin.Ret(fp)

	// consume the block: per-byte accumulation (LZW stand-in)
	acc := fb.NewReg()
	data.ConstTo(acc, 0, 32)
	dstart := data.AddImm(pos, 1, 32)
	lp := beginLoop(fb, data, "blk", blen)
	bpos := lp.Body.Add(dstart, lp.I, 32)
	v := lp.Body.Call("read8", bpos)
	na := lp.Body.Add(acc, v, 32)
	lp.Body.MovTo(acc, na, 32)
	endLoop(lp, lp.Body)

	adv := lp.After.AddImm(blen, 1, 32)
	np := lp.After.Add(pos, adv, 32)
	lp.After.MovTo(pos, np, 32)
	lp.After.Jmp(head.Blk())

	out.Ret(pos)
}

// gifReadImage(pos) parses an image descriptor (x, y, w, h, flags), an
// optional local colour table, and the data sub-blocks.
func gifReadImage(p *ir.Program) {
	fb := p.NewFunc("gif_read_image", 1)
	entry := fb.NewBlock("entry")
	pos := fb.Param(0)

	w := entry.Call("read16", entry.AddImm(pos, 4, 32))
	h := entry.Call("read16", entry.AddImm(pos, 6, 32))
	okDim := fb.NewBlock("okdim")
	badDim := fb.NewBlock("baddim")
	area := entry.Mul(w, h, 32)
	ac := entry.CmpImm(ir.Ugt, area, 0, 32)
	entry.Br(ac, okDim.Blk(), badDim.Blk())
	zp := badDim.AddImm(pos, 9, 32)
	badDim.Ret(zp)

	flags := okDim.Call("read8", okDim.AddImm(pos, 8, 32))
	tblStart := okDim.AddImm(pos, 9, 32)
	dstart := okDim.Call("gif_local_color_table", tblStart, flags)
	end := okDim.Call("gif_read_sub_blocks", dstart)
	okDim.Ret(end)
}

// gifConvertPass(w, h) is the GIF->TIFF conversion stage, reachable only
// after the parse reaches a trailer: a per-pixel loop with dithering and
// quantisation branches, like gif2tiff's rasterisation.
func gifConvertPass(p *ir.Program) {
	fb := p.NewFunc("gif_convert_pass", 2)
	entry := fb.NewBlock("entry")
	w, h := fb.Param(0), fb.Param(1)

	acc := fb.NewReg()
	errAcc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	entry.ConstTo(errAcc, 0, 32)
	area := entry.Mul(w, h, 32)
	// clamp to the file size like the strip readers do
	n := entry.InputLen(32)
	clamped := entry.Select(entry.Cmp(ir.Ult, area, n, 32), area, n, 32)

	lp := beginLoop(fb, entry, "conv", clamped)
	b := lp.Body
	px := b.Call("read8", lp.I)

	// quantisation: 4 intensity bands with distinct treatment
	dark := fb.NewBlock("q.dark")
	mid := fb.NewBlock("q.mid")
	bright := fb.NewBlock("q.bright")
	sat := fb.NewBlock("q.sat")
	join := fb.NewBlock("q.join")
	band := b.BinImm(ir.LShr, px, 6, 32)
	b.Switch(band, []uint64{0, 1, 2},
		[]*ir.Block{dark.Blk(), mid.Blk(), bright.Blk()}, sat.Blk())
	d1 := dark.AddImm(acc, 0, 32)
	dark.MovTo(acc, d1, 32)
	dark.Jmp(join.Blk())
	m1 := mid.BinImm(ir.Mul, px, 2, 32)
	m2 := mid.Add(acc, m1, 32)
	mid.MovTo(acc, m2, 32)
	mid.Jmp(join.Blk())
	b1 := bright.BinImm(ir.Mul, px, 3, 32)
	b2 := bright.Add(acc, b1, 32)
	bright.MovTo(acc, b2, 32)
	bright.Jmp(join.Blk())
	s1 := sat.AddImm(acc, 255, 32)
	sat.MovTo(acc, s1, 32)
	sat.Jmp(join.Blk())

	// Floyd-Steinberg-flavoured error diffusion branch
	diff := fb.NewBlock("fs.diff")
	keep := fb.NewBlock("fs.keep")
	fsJoin := fb.NewBlock("fs.join")
	e1 := join.BinImm(ir.And, px, 0xf, 32)
	ec := join.CmpImm(ir.Ugt, e1, 7, 32)
	join.Br(ec, diff.Blk(), keep.Blk())
	ne := diff.Add(errAcc, e1, 32)
	diff.MovTo(errAcc, ne, 32)
	diff.Jmp(fsJoin.Blk())
	keep.Jmp(fsJoin.Blk())

	ni := fsJoin.AddImm(lp.I, 1, 32)
	fsJoin.MovTo(lp.I, ni, 32)
	fsJoin.Jmp(lp.Head)
	lp.After.Ret(acc)
}

// gifBlockWalk(pos) is the outer block loop: image descriptors,
// extensions, trailer.
func gifBlockWalk(p *ir.Program) {
	fb := p.NewFunc("gif_block_walk", 1)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")

	pos := fb.NewReg()
	sawImage := fb.NewReg()
	entry.MovTo(pos, fb.Param(0), 32)
	entry.ConstTo(sawImage, 0, 32)
	entry.Jmp(head.Blk())

	n := head.InputLen(32)
	c := head.Cmp(ir.Ult, pos, n, 32)
	head.Br(c, body.Blk(), out.Blk())

	tag := body.Call("read8", pos)
	img := fb.NewBlock("b.img")
	ext := fb.NewBlock("b.ext")
	trail := fb.NewBlock("b.trail")
	junk := fb.NewBlock("b.junk")
	body.Switch(tag, []uint64{0x2c, 0x21, 0x3b},
		[]*ir.Block{img.Blk(), ext.Blk(), trail.Blk()}, junk.Blk())

	ip := img.AddImm(pos, 1, 32)
	ie := img.Call("gif_read_image", ip)
	img.MovTo(pos, ie, 32)
	ione := img.Const(1, 32)
	img.MovTo(sawImage, ione, 32)
	img.Jmp(head.Blk())

	// extension: dispatch on the label byte
	label := ext.Call("read8", ext.AddImm(pos, 1, 32))
	ep := ext.AddImm(pos, 2, 32)
	gce := fb.NewBlock("e.gce")
	cmt := fb.NewBlock("e.cmt")
	ptx := fb.NewBlock("e.ptx")
	app := fb.NewBlock("e.app")
	edef := fb.NewBlock("e.def")
	ejoin := fb.NewBlock("e.join")
	epos := fb.NewReg()
	ext.Switch(label, []uint64{0xf9, 0xfe, 0x01, 0xff},
		[]*ir.Block{gce.Blk(), cmt.Blk(), ptx.Blk(), app.Blk()}, edef.Blk())
	g1 := gce.Call("gif_graphic_control", ep)
	gce.MovTo(epos, g1, 32)
	gce.Jmp(ejoin.Blk())
	c1 := cmt.Call("gif_comment", ep)
	cmt.MovTo(epos, c1, 32)
	cmt.Jmp(ejoin.Blk())
	p1 := ptx.Call("gif_plain_text", ep)
	ptx.MovTo(epos, p1, 32)
	ptx.Jmp(ejoin.Blk())
	a1 := app.Call("gif_application", ep)
	app.MovTo(epos, a1, 32)
	app.Jmp(ejoin.Blk())
	d1 := edef.Call("gif_read_sub_blocks", ep)
	edef.MovTo(epos, d1, 32)
	edef.Jmp(ejoin.Blk())
	ejoin.MovTo(pos, epos, 32)
	ejoin.Jmp(head.Blk())

	trail.Print("trailer")
	// gif2tiff only converts when at least one image was decoded
	doConv := fb.NewBlock("b.conv")
	skipConv := fb.NewBlock("b.skipconv")
	sc := trail.CmpImm(ir.Ne, sawImage, 0, 32)
	trail.Br(sc, doConv.Blk(), skipConv.Blk())
	w := doConv.Call("read16", doConv.Const(4, 32))
	h := doConv.Call("read16", doConv.Const(6, 32))
	doConv.Call("gif_convert_pass", w, h)
	doConv.Jmp(out.Blk())
	skipConv.Print("no image to convert")
	skipConv.Jmp(out.Blk())

	jp := junk.AddImm(pos, 1, 32)
	junk.MovTo(pos, jp, 32)
	junk.Jmp(head.Blk())

	out.RetVoid()
}

// --- tiff2rgba driver ---

func buildMiniTIFFRGBA() (*ir.Program, error) {
	p := ir.NewProgram("minitiff-tiff2rgba")
	emitReadHelpers(p)

	tiffCheckHeader(p)
	tiffReadIFD(p)
	tiffGetTag(p)
	tiffPutCIELab(p)
	tiffCopyStrip(p)
	tiffEmitRich(p)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	bad := fb.NewBlock("bad")
	run := fb.NewBlock("run")
	ok := b.Call("tiff_check_header")
	c := b.CmpImm(ir.Ne, ok, 0, 32)
	b.Br(c, run.Blk(), bad.Blk())
	bad.Print("not a TIFF file")
	bad.Exit()

	run.Call("tiff_read_ifd")
	run.Call("tiff_validate_tags")
	t256 := run.Const(256, 32)
	w := run.Call("tiff_get_tag", t256)
	t257 := run.Const(257, 32)
	h := run.Call("tiff_get_tag", t257)
	t262 := run.Const(262, 32)
	photo := run.Call("tiff_get_tag", t262)
	run.Call("dispatch_photometric", photo, w, h)
	run.Call("copy_strip", w, h)
	run.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func tiffCheckHeader(p *ir.Program) {
	fb := p.NewFunc("tiff_check_header", 0)
	entry := fb.NewBlock("entry")
	fail := fb.NewBlock("fail")
	cur := entry
	for i, want := range []uint64{'I', 'I'} {
		next := fb.NewBlock("m" + string(rune('0'+i)))
		v := cur.Call("read8", cur.Const(uint64(i), 32))
		c := cur.CmpImm(ir.Eq, v, want, 32)
		cur.Br(c, next.Blk(), fail.Blk())
		cur = next
	}
	ver := cur.Call("read16", cur.Const(2, 32))
	done := fb.NewBlock("done")
	vc := cur.CmpImm(ir.Eq, ver, 42, 32)
	cur.Br(vc, done.Blk(), fail.Blk())
	one := done.Const(1, 32)
	done.Ret(one)
	zero := fail.Const(0, 32)
	fail.Ret(zero)
}

// tiffReadIFD walks every IFD entry with a per-tag switch — the
// input-dependent trap loop of this driver.
func tiffReadIFD(p *ir.Program) {
	fb := p.NewFunc("tiff_read_ifd", 0)
	entry := fb.NewBlock("entry")

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	ifdOff := entry.Call("read16", entry.Const(4, 32))
	count := entry.Call("read16", ifdOff)
	base := entry.AddImm(ifdOff, 2, 32)

	lp := beginLoop(fb, entry, "ifd", count)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 8, 32)
	ebase := b.Add(base, stride, 32)
	tag := b.Call("read16", ebase)
	typ := b.Call("read16", b.AddImm(ebase, 2, 32))
	val := b.Call("read16", b.AddImm(ebase, 6, 32))

	// type must be 1..5 (like TIFFFetchNormalTag's type validation)
	okType := fb.NewBlock("oktype")
	badType := fb.NewBlock("badtype")
	join := fb.NewBlock("join")
	tc1 := b.CmpImm(ir.Uge, typ, 1, 32)
	tc2 := b.CmpImm(ir.Ule, typ, 5, 32)
	tc := b.Bin(ir.And, tc1, tc2, 1)
	b.Br(tc, okType.Blk(), badType.Blk())
	badType.Print("bad entry type")
	badType.Jmp(join.Blk())

	// known-tag switch
	known := fb.NewBlock("known")
	unknown := fb.NewBlock("unknown")
	okType.Switch(tag, []uint64{256, 257, 259, 262, 273, 279},
		[]*ir.Block{known.Blk(), known.Blk(), known.Blk(), known.Blk(), known.Blk(), known.Blk()},
		unknown.Blk())
	na := known.Add(acc, val, 32)
	known.MovTo(acc, na, 32)
	known.Jmp(join.Blk())
	unknown.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)

	lp.After.Ret(acc)
}

// tiffGetTag(tag) linearly scans the IFD for a tag and returns its value
// (0 when absent).
func tiffGetTag(p *ir.Program) {
	fb := p.NewFunc("tiff_get_tag", 1)
	entry := fb.NewBlock("entry")
	want := fb.Param(0)

	ifdOff := entry.Call("read16", entry.Const(4, 32))
	count := entry.Call("read16", ifdOff)
	base := entry.AddImm(ifdOff, 2, 32)

	lp := beginLoop(fb, entry, "scan", count)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 8, 32)
	ebase := b.Add(base, stride, 32)
	tag := b.Call("read16", ebase)
	hit := fb.NewBlock("hit")
	miss := fb.NewBlock("miss")
	hc := b.Cmp(ir.Eq, tag, want, 32)
	b.Br(hc, hit.Blk(), miss.Blk())
	v := hit.Call("read16", hit.AddImm(ebase, 6, 32))
	hit.Ret(v)
	ni := miss.AddImm(lp.I, 1, 32)
	miss.MovTo(lp.I, ni, 32)
	miss.Jmp(lp.Head)

	z := lp.After.Const(0, 32)
	lp.After.Ret(z)
}

// tiffPutCIELab carries seeded bug T2 (Fig 6): it reads w*h*3 bytes from
// a fixed 257-byte buffer with no bound.
func tiffPutCIELab(p *ir.Program) {
	fb := p.NewFunc("put_cielab", 2)
	entry := fb.NewBlock("entry")
	w, h := fb.Param(0), fb.Param(1)

	pp := entry.Alloca(257)
	area := entry.Mul(w, h, 32)
	total := entry.BinImm(ir.Mul, area, 3, 32)

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	lp := beginLoop(fb, entry, "lab", total)
	b := lp.Body
	i64 := b.Zext(lp.I, 64)
	addr := b.Add(pp, i64, 64) // BUG T2: i ranges to w*h*3-1, buffer is 257
	v := b.Load(addr, 0, 8)
	v32 := b.Zext(v, 32)
	na := b.Add(acc, v32, 32)
	b.MovTo(acc, na, 32)
	endLoop(lp, b)

	lp.After.Ret(acc)
}

// tiffCopyStrip carries seeded bug T3: the size check truncates w*h to 16
// bits (integer overflow) but the copy loop runs over the full product.
func tiffCopyStrip(p *ir.Program) {
	fb := p.NewFunc("copy_strip", 2)
	entry := fb.NewBlock("entry")
	w, h := fb.Param(0), fb.Param(1)

	buf := entry.Alloca(64)
	prod := entry.Mul(w, h, 32)
	sz16 := entry.Trunc(prod, 16) // BUG T3: truncating size check
	fits := fb.NewBlock("fits")
	skip := fb.NewBlock("skip")
	fc := entry.CmpImm(ir.Ule, sz16, 64, 16)
	entry.Br(fc, fits.Blk(), skip.Blk())
	skip.Print("strip too large")
	skip.RetVoid()

	lp := beginLoop(fb, fits, "copy", prod)
	b := lp.Body
	v := b.Call("read8", lp.I)
	v8 := b.Trunc(v, 8)
	i64 := b.Zext(lp.I, 64)
	addr := b.Add(buf, i64, 64) // OOB write once i >= 64 (needs the overflow)
	b.Store(addr, 0, v8, 8)
	endLoop(lp, b)
	lp.After.RetVoid()
}

// genGIFSeed builds a benign GIF-like file: header, a colour table with a
// safe exponent (<= 4), one extension, one image with a few data
// sub-blocks, trailer.
func genGIFSeed(rng *rand.Rand, size int) []byte {
	if size < 64 {
		size = 64
	}
	b := []byte{'G', 'I', 'F', '8'}
	b = le16(b, uint16(4+rng.Intn(60))) // width
	b = le16(b, uint16(4+rng.Intn(60))) // height
	expo := byte(rng.Intn(5))           // <= 4 keeps T1 dormant
	b = append(b, 0x80|expo)
	entries := 1 << (expo + 1)
	for i := 0; i < entries*3; i++ {
		b = append(b, byte(rng.Intn(0x10)))
	}

	// extension block
	b = append(b, 0x21, 0xf9)
	b = append(b, 4)
	for i := 0; i < 4; i++ {
		b = append(b, byte(rng.Intn(0x10)))
	}
	b = append(b, 0)

	// graphic-control and comment extensions exercise their handlers
	b = append(b, 0x21, 0xf9, 4, byte(rng.Intn(16)))
	b = le16(b, uint16(rng.Intn(500)))
	b = append(b, byte(rng.Intn(16)), 0)
	b = append(b, 0x21, 0xfe, 5)
	b = append(b, "hello"...)
	b = append(b, 0)

	// image descriptor + data sub-blocks sized toward the target size
	b = append(b, 0x2c)
	b = le16(b, 0)
	b = le16(b, 0)
	b = le16(b, uint16(2+rng.Intn(14)))
	b = le16(b, uint16(2+rng.Intn(14)))
	b = append(b, 0) // image flags: no local colour table
	remaining := size - len(b) - 2
	for remaining > 2 {
		bl := remaining - 2
		if bl > 200 {
			bl = 200
		}
		b = append(b, byte(bl))
		for i := 0; i < bl; i++ {
			b = append(b, byte(rng.Intn(0x10)))
		}
		remaining = size - len(b) - 2
	}
	b = append(b, 0)    // sub-block terminator
	b = append(b, 0x3b) // trailer
	return pad(b, size, rng)
}

// genGIFBuggySeed uses colour-table exponent 7 (256 entries), overflowing
// the 96-byte colormap concretely (bug T1).
func genGIFBuggySeed(rng *rand.Rand) []byte {
	b := genGIFSeed(rng, 900)
	b[8] = 0x80 | 7
	return b
}

// genTIFFSeed builds a benign TIFF-like file: header, IFD with width,
// height, photometric (CIELab), strip tags; w*h*3 stays within the
// 257-byte CIELab buffer and w*h within the 64-byte strip buffer.
func genTIFFSeed(rng *rand.Rand, size int) []byte {
	if size < 96 {
		size = 96
	}
	b := []byte{'I', 'I'}
	b = le16(b, 42)
	b = le16(b, 6) // IFD at offset 6

	w := uint16(2 + rng.Intn(6))
	h := uint16(2 + rng.Intn(6))
	for w*h > 64 {
		h--
	}

	photos := []uint16{0, 1, 2, 3, 5, 6, 8}
	entries := []struct{ tag, typ, cnt, val uint16 }{
		{256, 3, 1, w},
		{257, 3, 1, h},
		{259, 3, 1, 1},
		{262, 3, 1, photos[rng.Intn(len(photos))]},
		{273, 4, 1, 80},
		{279, 4, 1, uint16(rng.Intn(100))},
		{258, 3, 1, 8},
		{277, 3, 1, uint16(1 + rng.Intn(4))},
		{284, 3, 1, 1},
		{296, 3, 1, uint16(rng.Intn(4))},
	}
	b = le16(b, uint16(len(entries)))
	for _, e := range entries {
		b = le16(b, e.tag)
		b = le16(b, e.typ)
		b = le16(b, e.cnt)
		b = le16(b, e.val)
	}
	return pad(b, size, rng)
}

// genTIFFBuggySeed sets dimensions so w*h*3 > 257, triggering T2
// concretely on the CIELab path.
func genTIFFBuggySeed(rng *rand.Rand) []byte {
	b := genTIFFSeed(rng, 128)
	// width is the value of the first IFD entry: offset 6 (IFD) + 2
	// (count) + 6 (tag/type/cnt) = 14; height at 22; photometric (4th
	// entry) value at 38 must select the CIELab path
	b[14], b[15] = 20, 0
	b[22], b[23] = 8, 0 // 20*8*3 = 480 > 257
	b[38], b[39] = 8, 0
	return b
}
