package targets

import (
	"sort"

	"pbse/internal/interp"
	"pbse/internal/ir"
)

// SelectSeed implements the paper's §III-B4 heuristic for picking one
// seed from a corpus: consider only the 10 smallest candidates, and among
// those pick the one whose concrete run covers the most basic blocks.
// Ties break toward the smaller (then earlier) seed. It returns nil for
// an empty corpus.
func SelectSeed(prog *ir.Program, candidates [][]byte) []byte {
	if len(candidates) == 0 {
		return nil
	}
	idx := make([]int, len(candidates))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return len(candidates[idx[a]]) < len(candidates[idx[b]])
	})
	if len(idx) > 10 {
		idx = idx[:10]
	}

	best := -1
	bestCov := -1
	for _, i := range idx {
		cov := coverageOf(prog, candidates[i])
		if cov > bestCov {
			best, bestCov = i, cov
		}
	}
	return candidates[best]
}

// coverageOf counts distinct basic blocks covered by one concrete run.
func coverageOf(prog *ir.Program, seed []byte) int {
	covered := make(map[int]bool)
	m := interp.New(prog, seed, interp.Options{
		MaxSteps: 10_000_000,
		Tracer:   func(b *ir.Block, _ int64) { covered[b.ID] = true },
	})
	m.Run()
	return len(covered)
}
