package targets

import (
	"math/rand"

	"pbse/internal/ir"
)

// MiniPNG is the pngtest analogue. File layout:
//
//	0..7   signature 0x89 'P' 'N' 'G' 0x0d 0x0a 0x1a 0x0a
//	chunks: len(2) type(1) data[len] crc(1)
//	types: 1 IHDR (w(2) h(2) depth(1) color(1))
//	       2 tIME (year(2) month(1) day(1) hour(1) minute(1) second(1))
//	       3 tEXt (keyword bytes, NUL, text)
//	       4 IDAT (filtered data bytes)
//	       5 IEND (terminates parsing)
//
// The chunk walk is the outer input-dependent loop; IDAT processing is
// the dense inner loop (the trap phases in Fig 1(e)). Seeded bugs mirror
// the paper's libpng CVEs:
//
//	P1 (OOB read, CVE-2015-7981/Fig 8): the tIME handler indexes the
//	    12-entry month-name table with (month-1)%12 computed in signed
//	    arithmetic — month 0 yields index -1.
//	P2 (OOB read/underflow, CVE-2015-8540/Fig 7): the tEXt keyword
//	    trimmer walks backwards zeroing trailing spaces; an all-space
//	    keyword underflows the buffer.
func MiniPNG() *Target {
	return &Target{
		Name:         "minipng",
		Driver:       "pngtest",
		Paper:        "libpng-1.2.56 pngtest",
		Build:        buildMiniPNG,
		GenSeed:      genPNGSeed,
		GenBuggySeed: genPNGBuggySeed,
	}
}

func buildMiniPNG() (*ir.Program, error) {
	p := ir.NewProgram("minipng")
	emitReadHelpers(p)

	pngFinalChecks(p)
	pngRewritePass(p)
	pngCheckSig(p)
	pngHandleIHDR(p)
	pngHandleTIME(p)
	pngHandleTEXT(p)
	pngHandleIDAT(p)
	pngEmitRich(p)
	pngChunkWalk(p)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	bad := fb.NewBlock("bad")
	run := fb.NewBlock("run")
	ok := b.Call("check_sig")
	c := b.CmpImm(ir.Ne, ok, 0, 32)
	b.Br(c, run.Blk(), bad.Blk())
	bad.Print("not a PNG file")
	bad.Exit()
	run.Call("chunk_walk")
	run.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func pngCheckSig(p *ir.Program) {
	fb := p.NewFunc("check_sig", 0)
	entry := fb.NewBlock("entry")
	fail := fb.NewBlock("fail")
	cur := entry
	for i, want := range []uint64{0x89, 'P', 'N', 'G', 0x0d, 0x0a, 0x1a, 0x0a} {
		next := fb.NewBlock("sig" + string(rune('a'+i)))
		off := cur.Const(uint64(i), 32)
		v := cur.Call("read8", off)
		c := cur.CmpImm(ir.Eq, v, want, 32)
		cur.Br(c, next.Blk(), fail.Blk())
		cur = next
	}
	one := cur.Const(1, 32)
	cur.Ret(one)
	zero := fail.Const(0, 32)
	fail.Ret(zero)
}

// pngChunkWalk is the outer loop: read len/type, dispatch, advance. It
// stops at IEND, at a zero-progress step, or at end of file.
func pngChunkWalk(p *ir.Program) {
	fb := p.NewFunc("chunk_walk", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")

	pos := fb.NewReg()
	sawIHDR := fb.NewReg()
	sawIDAT := fb.NewReg()
	entry.ConstTo(pos, 8, 32)
	entry.ConstTo(sawIHDR, 0, 32)
	entry.ConstTo(sawIDAT, 0, 32)
	entry.Jmp(head.Blk())

	// continue while pos+3 <= len(input)
	n := head.InputLen(32)
	end := head.AddImm(pos, 3, 32)
	c := head.Cmp(ir.Ule, end, n, 32)
	head.Br(c, body.Blk(), out.Blk())

	dlen := body.Call("read16", pos)
	tpos := body.AddImm(pos, 2, 32)
	typ := body.Call("read8", tpos)
	doff := body.AddImm(pos, 3, 32)

	// CRC verification before the chunk is used (png_crc_finish): the
	// stored byte must match the data checksum, chaining a constraint
	// per chunk — the property that makes deep chunks hard to reach
	// symbolically
	crcSum := fb.NewReg()
	body.ConstTo(crcSum, 0, 32)
	crcLp := beginLoop(fb, body, "crc", dlen)
	cb := crcLp.Body
	cv := cb.Call("read8", cb.Add(doff, crcLp.I, 32))
	ncs := cb.Add(crcSum, cv, 32)
	ncsm := cb.BinImm(ir.And, ncs, 0xff, 32)
	cb.MovTo(crcSum, ncsm, 32)
	endLoop(crcLp, cb)
	crcOK := fb.NewBlock("crc.ok")
	crcBad := fb.NewBlock("crc.bad")
	stored := crcLp.After.Call("read8", crcLp.After.Add(doff, dlen, 32))
	expect := crcLp.After.BinImm(ir.And, crcSum, 0xff, 32)
	cmc := crcLp.After.Cmp(ir.Eq, stored, expect, 32)
	crcLp.After.Br(cmc, crcOK.Blk(), crcBad.Blk())
	crcBad.Print("CRC error")
	crcBad.Jmp(out.Blk())

	// libpng's ordering rules: every chunk but the first requires a seen
	// IHDR; parsing stops on a violation
	isIHDR := fb.NewBlock("ord.isihdr")
	needHdr := fb.NewBlock("ord.needhdr")
	ordOK := fb.NewBlock("ord.ok")
	misorder := fb.NewBlock("ord.bad")
	oc := crcOK.CmpImm(ir.Eq, typ, 1, 32)
	crcOK.Br(oc, isIHDR.Blk(), needHdr.Blk())
	isIHDR.Jmp(ordOK.Blk())
	hc := needHdr.CmpImm(ir.Ne, sawIHDR, 0, 32)
	needHdr.Br(hc, ordOK.Blk(), misorder.Blk())
	misorder.Print("chunk before IHDR")
	misorder.Jmp(out.Blk())

	ihdr := fb.NewBlock("c.ihdr")
	timeB := fb.NewBlock("c.time")
	text := fb.NewBlock("c.text")
	idat := fb.NewBlock("c.idat")
	iend := fb.NewBlock("c.iend")
	unk := fb.NewBlock("c.unknown")
	join := fb.NewBlock("c.join")

	ancillary := []struct {
		id uint64
		fn string
	}{
		{6, "handle_plte"}, {7, "handle_trns"}, {8, "handle_gama"},
		{9, "handle_chrm"}, {10, "handle_srgb"}, {11, "handle_bkgd"},
		{12, "handle_phys"}, {13, "handle_sbit"}, {14, "handle_hist"},
		{15, "handle_ztxt"},
	}
	vals := []uint64{1, 2, 3, 4, 5}
	arms := []*ir.Block{ihdr.Blk(), timeB.Blk(), text.Blk(), idat.Blk(), iend.Blk()}
	for _, a := range ancillary {
		bb := fb.NewBlock("c.anc")
		if a.id == 6 { // PLTE must precede IDAT
			late := fb.NewBlock("c.late")
			okp := fb.NewBlock("c.okp")
			lc := bb.CmpImm(ir.Ne, sawIDAT, 0, 32)
			bb.Br(lc, late.Blk(), okp.Blk())
			late.Print("PLTE after IDAT")
			late.Jmp(out.Blk())
			okp.Call(a.fn, doff, dlen)
			okp.Jmp(join.Blk())
		} else {
			bb.Call(a.fn, doff, dlen)
			bb.Jmp(join.Blk())
		}
		vals = append(vals, a.id)
		arms = append(arms, bb.Blk())
	}
	ordOK.Switch(typ, vals, arms, unk.Blk())

	hv := ihdr.Call("handle_ihdr", doff, dlen)
	hOK := fb.NewBlock("c.hok")
	hBad := fb.NewBlock("c.hbad")
	hvc := ihdr.CmpImm(ir.Ne, hv, 0, 32)
	ihdr.Br(hvc, hOK.Blk(), hBad.Blk())
	hBad.Print("invalid IHDR; stop")
	hBad.Jmp(out.Blk())
	hone := hOK.Const(1, 32)
	hOK.MovTo(sawIHDR, hone, 32)
	hOK.Jmp(join.Blk())
	timeB.Call("handle_time", doff, dlen)
	timeB.Jmp(join.Blk())
	text.Call("handle_text", doff, dlen)
	text.Jmp(join.Blk())
	ione := idat.Const(1, 32)
	idat.MovTo(sawIDAT, ione, 32)
	idat.Call("handle_idat", doff, dlen)
	idat.Call("apply_filters", doff, dlen)
	idat.Jmp(join.Blk())
	iend.Print("IEND")
	iend.Call("final_checks", sawIHDR, sawIDAT, pos)
	// pngtest writes the image back out only after a complete read:
	// the rewrite stage needs both a valid IHDR and image data
	both := iend.Bin(ir.And, sawIHDR, sawIDAT, 32)
	doRewrite := fb.NewBlock("c.rewrite")
	skipRewrite := fb.NewBlock("c.skiprw")
	bc := iend.CmpImm(ir.Ne, both, 0, 32)
	iend.Br(bc, doRewrite.Blk(), skipRewrite.Blk())
	doRewrite.Call("rewrite_pass")
	doRewrite.Jmp(out.Blk())
	skipRewrite.Print("incomplete image; not rewritten")
	skipRewrite.Jmp(out.Blk())
	unk.Print("unknown chunk")
	unk.Jmp(join.Blk())

	// pos += 3 + dlen + 1 (len, type, data, crc)
	adv := join.AddImm(dlen, 4, 32)
	np := join.Add(pos, adv, 32)
	join.MovTo(pos, np, 32)
	join.Jmp(head.Blk())

	out.RetVoid()
}

// pngFinalChecks(sawIHDR, sawIDAT, endPos) is pngtest's post-read
// consistency stage: it only runs after a well-formed walk reaches IEND.
func pngFinalChecks(p *ir.Program) {
	fb := p.NewFunc("final_checks", 3)
	entry := fb.NewBlock("entry")
	sawIHDR, sawIDAT, endPos := fb.Param(0), fb.Param(1), fb.Param(2)

	noHdr := fb.NewBlock("nohdr")
	hasHdr := fb.NewBlock("hashdr")
	c1 := entry.CmpImm(ir.Ne, sawIHDR, 0, 32)
	entry.Br(c1, hasHdr.Blk(), noHdr.Blk())
	noHdr.Print("IEND without IHDR")
	noHdr.RetVoid()

	noDat := fb.NewBlock("nodat")
	hasDat := fb.NewBlock("hasdat")
	c2 := hasHdr.CmpImm(ir.Ne, sawIDAT, 0, 32)
	hasHdr.Br(c2, hasDat.Blk(), noDat.Blk())
	noDat.Print("image has no IDAT")
	noDat.RetVoid()

	// trailing garbage detection
	clean := fb.NewBlock("clean")
	trailing := fb.NewBlock("trailing")
	n := hasDat.InputLen(32)
	end4 := hasDat.AddImm(endPos, 4, 32)
	c3 := hasDat.Cmp(ir.Uge, end4, n, 32)
	hasDat.Br(c3, clean.Blk(), trailing.Blk())
	trailing.Print("trailing bytes after IEND")
	trailing.RetVoid()
	clean.RetVoid()
}

// pngRewritePass is the write-back half of pngtest: a second walk over
// the chunk stream computing a running Adler-style checksum per chunk —
// an entire pipeline stage reachable only after the read pass succeeds.
func pngRewritePass(p *ir.Program) {
	fb := p.NewFunc("rewrite_pass", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")

	pos := fb.NewReg()
	s1 := fb.NewReg()
	s2 := fb.NewReg()
	entry.ConstTo(pos, 8, 32)
	entry.ConstTo(s1, 1, 32)
	entry.ConstTo(s2, 0, 32)
	entry.Jmp(head.Blk())

	n := head.InputLen(32)
	end := head.AddImm(pos, 3, 32)
	c := head.Cmp(ir.Ule, end, n, 32)
	head.Br(c, body.Blk(), out.Blk())

	dlen := body.Call("read16", pos)
	typ := body.Call("read8", body.AddImm(pos, 2, 32))
	doff := body.AddImm(pos, 3, 32)

	// critical chunks (type < 6) are checksummed byte by byte
	critical := fb.NewBlock("crit")
	ancillary := fb.NewBlock("anc")
	join := fb.NewBlock("join")
	cc := body.CmpImm(ir.Ult, typ, 6, 32)
	body.Br(cc, critical.Blk(), ancillary.Blk())

	lp := beginLoop(fb, critical, "adler", dlen)
	b := lp.Body
	v := b.Call("read8", b.Add(doff, lp.I, 32))
	ns1 := b.Add(s1, v, 32)
	m1 := b.BinImm(ir.And, ns1, 0xffff, 32) // modular, mask keeps circuits small
	b.MovTo(s1, m1, 32)
	ns2 := b.Add(s2, s1, 32)
	m2 := b.BinImm(ir.And, ns2, 0xffff, 32)
	b.MovTo(s2, m2, 32)
	endLoop(lp, b)
	lp.After.Jmp(join.Blk())

	ancillary.Jmp(join.Blk())

	stop := fb.NewBlock("stop")
	cont := fb.NewBlock("cont")
	ic := join.CmpImm(ir.Eq, typ, 5, 32)
	join.Br(ic, stop.Blk(), cont.Blk())
	stop.Jmp(out.Blk())
	adv := cont.AddImm(dlen, 4, 32)
	np := cont.Add(pos, adv, 32)
	cont.MovTo(pos, np, 32)
	cont.Jmp(head.Blk())

	sh := out.BinImm(ir.Shl, s2, 16, 32)
	sum := out.Bin(ir.Or, sh, s1, 32)
	out.Ret(sum)
}

// pngHandleIHDR validates the bit depth with a switch (five legal values)
// and range-checks the dimensions.
func pngHandleIHDR(p *ir.Program) {
	fb := p.NewFunc("handle_ihdr", 2)
	entry := fb.NewBlock("entry")
	short := fb.NewBlock("short")
	parse := fb.NewBlock("parse")
	doff, dlen := fb.Param(0), fb.Param(1)

	c := entry.CmpImm(ir.Uge, dlen, 6, 32)
	entry.Br(c, parse.Blk(), short.Blk())
	short.Print("IHDR too short")
	z0 := short.Const(0, 32)
	short.Ret(z0)

	w := parse.Call("read16", doff)
	hoff := parse.AddImm(doff, 2, 32)
	h := parse.Call("read16", hoff)
	dpos := parse.AddImm(doff, 4, 32)
	depth := parse.Call("read8", dpos)

	okDepth := fb.NewBlock("okdepth")
	badDepth := fb.NewBlock("baddepth")
	parse.Switch(depth, []uint64{1, 2, 4, 8, 16},
		[]*ir.Block{okDepth.Blk(), okDepth.Blk(), okDepth.Blk(), okDepth.Blk(), okDepth.Blk()},
		badDepth.Blk())
	badDepth.Print("invalid bit depth")
	zd := badDepth.Const(0, 32)
	badDepth.Ret(zd)

	// dimension sanity branches (like png_check_IHDR)
	okW := fb.NewBlock("okw")
	badDim := fb.NewBlock("baddim")
	done := fb.NewBlock("done")
	wc := okDepth.CmpImm(ir.Ugt, w, 0, 32)
	okDepth.Br(wc, okW.Blk(), badDim.Blk())
	hc := okW.CmpImm(ir.Ugt, h, 0, 32)
	okW.Br(hc, done.Blk(), badDim.Blk())
	badDim.Print("zero dimension")
	zz := badDim.Const(0, 32)
	badDim.Ret(zz)
	one := done.Const(1, 32)
	done.Ret(one)
}

// pngHandleTIME carries seeded bug P1 (Fig 8): signed (month-1)%12 into a
// 12-byte table.
func pngHandleTIME(p *ir.Program) {
	fb := p.NewFunc("handle_time", 2)
	entry := fb.NewBlock("entry")
	short := fb.NewBlock("short")
	parse := fb.NewBlock("parse")
	doff, dlen := fb.Param(0), fb.Param(1)

	c := entry.CmpImm(ir.Uge, dlen, 7, 32)
	entry.Br(c, parse.Blk(), short.Blk())
	short.RetVoid()

	months := parse.Alloca(12)
	mpos := parse.AddImm(doff, 2, 32)
	month := parse.Call("read8", mpos)
	// BUG P1: (month-1) % 12 in signed arithmetic; month == 0 gives -1
	m1 := parse.BinImm(ir.Sub, month, 1, 32)
	idx := parse.BinImm(ir.SRem, m1, 12, 32)
	idx64 := parse.Sext(idx, 64)
	addr := parse.Add(months, idx64, 64)
	parse.Load(addr, 0, 8)

	// day/hour/minute/second range branches (like png_convert_to_rfc1123)
	dpos := parse.AddImm(doff, 3, 32)
	day := parse.Call("read8", dpos)
	okDay := fb.NewBlock("okday")
	badDay := fb.NewBlock("badday")
	dc := parse.CmpImm(ir.Ule, day, 31, 32)
	parse.Br(dc, okDay.Blk(), badDay.Blk())
	badDay.Print("day out of range")
	badDay.RetVoid()
	okDay.RetVoid()
}

// pngHandleTEXT carries seeded bug P2 (Fig 7): the keyword trimmer walks
// backwards past the start of the buffer when the keyword is all spaces.
func pngHandleTEXT(p *ir.Program) {
	fb := p.NewFunc("handle_text", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	keybuf := entry.Alloca(16)

	// copy loop: up to 15 bytes, stop at NUL
	klen := fb.NewReg()
	entry.ConstTo(klen, 0, 32)
	limit := entry.Select(entry.CmpImm(ir.Ult, dlen, 15, 32), dlen, entry.Const(15, 32), 32)
	lp := beginLoop(fb, entry, "copy", limit)
	b := lp.Body
	bpos := b.Add(doff, lp.I, 32)
	v := b.Call("read8", bpos)
	isNul := fb.NewBlock("copy.nul")
	keep := fb.NewBlock("copy.keep")
	nc := b.CmpImm(ir.Eq, v, 0, 32)
	b.Br(nc, isNul.Blk(), keep.Blk())
	isNul.Jmp(lp.After.Blk())
	i64 := keep.Zext(lp.I, 64)
	kaddr := keep.Add(keybuf, i64, 64)
	v8 := keep.Trunc(v, 8)
	keep.Store(kaddr, 0, v8, 8)
	nk := keep.AddImm(klen, 1, 32)
	keep.MovTo(klen, nk, 32)
	endLoop(lp, keep)

	// trim loop (png_check_keyword): kp = klen-1; while keybuf[kp]==' '
	// { keybuf[kp] = 0; kp-- } — BUG P2: no lower bound on kp.
	after := lp.After
	emptyK := fb.NewBlock("emptyk")
	trimInit := fb.NewBlock("triminit")
	trimHead := fb.NewBlock("trimhead")
	trimBody := fb.NewBlock("trimbody")
	done := fb.NewBlock("done")

	ec := after.CmpImm(ir.Eq, klen, 0, 32)
	after.Br(ec, emptyK.Blk(), trimInit.Blk())
	emptyK.Print("empty keyword")
	emptyK.RetVoid()

	kp := fb.NewReg()
	k1 := trimInit.BinImm(ir.Sub, klen, 1, 32)
	trimInit.MovTo(kp, k1, 32)
	trimInit.Jmp(trimHead.Blk())

	kp64 := trimHead.Zext(kp, 64)
	taddr := trimHead.Add(keybuf, kp64, 64)
	tv := trimHead.Load(taddr, 0, 8)
	sc := trimHead.CmpImm(ir.Eq, tv, ' ', 8)
	trimHead.Br(sc, trimBody.Blk(), done.Blk())

	z := trimBody.Const(0, 8)
	kp64b := trimBody.Zext(kp, 64)
	waddr := trimBody.Add(keybuf, kp64b, 64)
	trimBody.Store(waddr, 0, z, 8)
	nkp := trimBody.BinImm(ir.Sub, kp, 1, 32)
	trimBody.MovTo(kp, nkp, 32)
	trimBody.Jmp(trimHead.Blk())

	done.RetVoid()
}

// pngHandleIDAT is the dense per-byte processing loop with a per-byte
// filter switch.
func pngHandleIDAT(p *ir.Program) {
	fb := p.NewFunc("handle_idat", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	lp := beginLoop(fb, entry, "idat", dlen)
	b := lp.Body
	bpos := b.Add(doff, lp.I, 32)
	v := b.Call("read8", bpos)
	f0 := fb.NewBlock("f0")
	f1 := fb.NewBlock("f1")
	f2 := fb.NewBlock("f2")
	fj := fb.NewBlock("fj")
	fsel := b.BinImm(ir.And, v, 3, 32)
	b.Switch(fsel, []uint64{0, 1}, []*ir.Block{f0.Blk(), f1.Blk()}, f2.Blk())
	a0 := f0.Add(acc, v, 32)
	f0.MovTo(acc, a0, 32)
	f0.Jmp(fj.Blk())
	a1 := f1.BinImm(ir.Xor, acc, 0x5a, 32)
	f1.MovTo(acc, a1, 32)
	f1.Jmp(fj.Blk())
	a2 := f2.BinImm(ir.Mul, acc, 3, 32)
	f2.MovTo(acc, a2, 32)
	f2.Jmp(fj.Blk())
	ni := fj.AddImm(lp.I, 1, 32)
	fj.MovTo(lp.I, ni, 32)
	fj.Jmp(lp.Head)

	lp.After.Ret(acc)
}

// genPNGSeed builds a benign PNG-like file: signature, IHDR, tIME (valid
// month), tEXt (non-space keyword), IDAT filler sized to hit the
// requested length, IEND.
func genPNGSeed(rng *rand.Rand, size int) []byte {
	if size < 64 {
		size = 64
	}
	b := []byte{0x89, 'P', 'N', 'G', 0x0d, 0x0a, 0x1a, 0x0a}

	chunk := func(typ byte, data []byte) {
		b = le16(b, uint16(len(data)))
		b = append(b, typ)
		b = append(b, data...)
		sum := 0
		for _, d := range data {
			sum += int(d)
		}
		b = append(b, byte(sum)) // checksum byte, verified by the walk
	}

	var ihdr []byte
	ihdr = le16(ihdr, uint16(4+rng.Intn(28))) // width
	ihdr = le16(ihdr, uint16(4+rng.Intn(28))) // height
	ihdr = append(ihdr, []byte{8, 0}[rng.Intn(1)], 0)
	chunk(1, ihdr)

	var tm []byte
	tm = le16(tm, 2015)
	tm = append(tm, byte(1+rng.Intn(12)), byte(1+rng.Intn(28)), byte(rng.Intn(24)), byte(rng.Intn(60)), byte(rng.Intn(60)))
	chunk(2, tm)

	text := append([]byte("Title"), 0, 'o', 'k')
	chunk(3, text)

	// a spread of ancillary chunks (PLTE, tRNS, gAMA, cHRM, sRGB, bKGD,
	// pHYs, sBIT, hIST, zTXt), each with valid contents
	var plte []byte
	for i := 0; i < 4*3; i++ {
		plte = append(plte, byte(rng.Intn(0x10)))
	}
	chunk(6, plte)
	chunk(7, []byte{byte(rng.Intn(0x10)), 0}) // grayscale tRNS
	var gama []byte
	gama = le16(gama, uint16(100+rng.Intn(10000)))
	chunk(8, gama)
	var chrm []byte
	for i := 0; i < 8; i++ {
		chrm = le16(chrm, uint16(rng.Intn(40000)))
	}
	chunk(9, chrm)
	chunk(10, []byte{byte(rng.Intn(4))})
	chunk(11, []byte{byte(rng.Intn(0x10)), 0}) // grayscale bKGD
	var phys []byte
	phys = le16(phys, 2834)
	phys = le16(phys, 2834)
	phys = append(phys, 1)
	chunk(12, phys)
	chunk(13, []byte{8, 8, 8})
	var hist []byte
	for i := 0; i < 4; i++ {
		hist = le16(hist, uint16(rng.Intn(100)))
	}
	chunk(14, hist)
	ztxt := append([]byte("cmt"), 0, 0) // keyword, NUL, method 0
	ztxt = append(ztxt, byte(rng.Intn(0x10)), byte(rng.Intn(0x10)))
	chunk(15, ztxt)

	idatLen := size - len(b) - 4 /*idat framing*/ - 4 /*iend*/
	if idatLen < 4 {
		idatLen = 4
	}
	if idatLen > 0xffff {
		idatLen = 0xffff
	}
	idat := make([]byte, idatLen)
	for i := range idat {
		idat[i] = byte(rng.Intn(0x10))
	}
	chunk(4, idat)
	chunk(5, nil)
	return pad(b, size, rng)
}

// genPNGBuggySeed sets the tIME month to 0, triggering P1 concretely.
func genPNGBuggySeed(rng *rand.Rand) []byte {
	b := genPNGSeed(rng, 96)
	// walk the chunks to find tIME (type 2) and zero its month byte
	pos := 8
	for pos+3 <= len(b) {
		dlen := int(b[pos]) | int(b[pos+1])<<8
		typ := b[pos+2]
		if typ == 2 {
			b[pos+3+2] = 0 // month
			sum := 0
			for i := 0; i < dlen; i++ {
				sum += int(b[pos+3+i])
			}
			b[pos+3+dlen] = byte(sum) // repair the checksum
			return b
		}
		if typ == 5 {
			break
		}
		pos += 3 + dlen + 1
	}
	return b
}
