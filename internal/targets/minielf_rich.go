package targets

import "pbse/internal/ir"

// This file adds the breadth that makes minielf comparable in shape to
// real readelf: machine/OSABI describers (switches over many
// architecture ids), NOTE/RELA/STRTAB/VERSION section processing, and
// per-section flag decoding. The handlers are emitted data-driven from
// spec tables — each arm computes something different from the table
// entry, as readelf's per-architecture printers do.

// elfMachines mirrors a slice of the EM_* table: id and a per-arch
// "pointer size" used in the arm's computation.
var elfMachines = []struct {
	id     uint64
	ptr    uint64
	hasFPU bool
}{
	{2, 4, true},    // sparc
	{3, 4, true},    // 386
	{8, 4, true},    // mips
	{20, 4, true},   // ppc
	{21, 8, true},   // ppc64
	{22, 8, true},   // s390
	{40, 4, true},   // arm
	{42, 4, true},   // sh
	{50, 8, true},   // ia64
	{62, 8, true},   // x86-64
	{83, 2, false},  // avr
	{88, 4, false},  // m32r
	{92, 4, true},   // openrisc
	{106, 4, false}, // blackfin
	{113, 4, false}, // altera nios2
	{183, 8, true},  // aarch64
	{243, 8, true},  // riscv
	{247, 8, false}, // bpf
}

// elfOSABIs mirrors ELFOSABI_* values.
var elfOSABIs = []uint64{0, 1, 2, 3, 6, 9, 12, 97, 255}

// elfNoteTypes: NT_* values with a validation limit on descsz.
var elfNoteTypes = []struct {
	id      uint64
	maxDesc uint64
}{
	{1, 32}, {2, 16}, {3, 20}, {4, 8}, {5, 64}, {6, 48}, {7, 4}, {0x46494c45, 40},
}

// elfRelocKinds: R_*_ * values with a distinct formula selector.
var elfRelocKinds = []struct {
	id   uint64
	kind int // 0: S+A, 1: S+A-P, 2: B+A, 3: masked, 4: shifted
}{
	{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 3}, {6, 0}, {7, 4},
	{8, 2}, {9, 3}, {10, 4}, {11, 1},
}

// elfEmitRich registers the breadth handlers on p.
func elfEmitRich(p *ir.Program) {
	elfDescribeMachine(p)
	elfDescribeOSABI(p)
	elfProcessNotes(p)
	elfProcessRelocs(p)
	elfProcessStrtab(p)
	elfProcessVersionInfo(p)
	elfDecodeSectionFlags(p)
	elfProcessSpecialSections(p)
}

// elfDescribeMachine switches on the machine id (header byte 15), with a
// per-architecture arm like readelf's get_machine_name.
func elfDescribeMachine(p *ir.Program) {
	fb := p.NewFunc("describe_machine", 0)
	entry := fb.NewBlock("entry")
	m := entry.Call("read8", entry.Const(15, 32))

	def := fb.NewBlock("m.unknown")
	join := fb.NewBlock("m.join")
	ret := fb.NewReg()
	entry.ConstTo(ret, 0, 32)

	vals := make([]uint64, len(elfMachines))
	arms := make([]*ir.Block, len(elfMachines))
	for i, em := range elfMachines {
		bb := fb.NewBlock("m.arm")
		vals[i] = em.id
		arms[i] = bb.Blk()
		// distinct computation per architecture: scale by pointer size
		v := bb.Const(em.id*em.ptr, 32)
		if em.hasFPU {
			// FPU machines validate an alignment bit in the flags
			flags := bb.Call("read8", bb.Const(14, 32))
			aligned := fb.NewBlock("m.aligned")
			misaligned := fb.NewBlock("m.mis")
			bit := bb.BinImm(ir.And, flags, 4, 32)
			c := bb.CmpImm(ir.Ne, bit, 0, 32)
			bb.Br(c, aligned.Blk(), misaligned.Blk())
			av := aligned.AddImm(v, 1, 32)
			aligned.MovTo(ret, av, 32)
			aligned.Jmp(join.Blk())
			misaligned.MovTo(ret, v, 32)
			misaligned.Jmp(join.Blk())
		} else {
			bb.MovTo(ret, v, 32)
			bb.Jmp(join.Blk())
		}
	}
	entry.Switch(m, vals, arms, def.Blk())
	def.Print("unknown machine")
	def.Jmp(join.Blk())
	join.Ret(ret)
}

// elfDescribeOSABI switches on the OSABI nibble of the flags byte.
func elfDescribeOSABI(p *ir.Program) {
	fb := p.NewFunc("describe_osabi", 0)
	entry := fb.NewBlock("entry")
	flags := entry.Call("read8", entry.Const(14, 32))
	abi := entry.BinImm(ir.LShr, flags, 4, 32)

	def := fb.NewBlock("a.unknown")
	join := fb.NewBlock("a.join")
	ret := fb.NewReg()
	entry.ConstTo(ret, 0, 32)

	// map the nibble to ABI table positions
	vals := make([]uint64, 0, len(elfOSABIs))
	arms := make([]*ir.Block, 0, len(elfOSABIs))
	for i, id := range elfOSABIs {
		bb := fb.NewBlock("a.arm")
		vals = append(vals, uint64(i))
		arms = append(arms, bb.Blk())
		v := bb.Const(id+uint64(i)*3, 32)
		bb.MovTo(ret, v, 32)
		bb.Jmp(join.Blk())
	}
	entry.Switch(abi, vals, arms, def.Blk())
	def.Jmp(join.Blk())
	join.Ret(ret)
}

// elfProcessNotes(doff, sz) walks NT records: namesz(2) descsz(2) type(2)
// then namesz+descsz payload bytes, with per-type descsz validation.
func elfProcessNotes(p *ir.Program) {
	fb := p.NewFunc("process_notes", 2)
	entry := fb.NewBlock("entry")
	doff, sz := fb.Param(0), fb.Param(1)

	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")
	pos := fb.NewReg()
	acc := fb.NewReg()
	entry.MovTo(pos, doff, 32)
	entry.ConstTo(acc, 0, 32)
	end := entry.Add(doff, sz, 32)
	entry.Jmp(head.Blk())

	lim := head.AddImm(pos, 6, 32)
	c := head.Cmp(ir.Ule, lim, end, 32)
	head.Br(c, body.Blk(), out.Blk())

	namesz := body.Call("read16", pos)
	descsz := body.Call("read16", body.AddImm(pos, 2, 32))
	ntype := body.Call("read16", body.AddImm(pos, 4, 32))

	// namesz sanity (readelf: corrupt notes)
	nameOK := fb.NewBlock("n.nameok")
	corrupt := fb.NewBlock("n.corrupt")
	nc := body.CmpImm(ir.Ule, namesz, 32, 32)
	body.Br(nc, nameOK.Blk(), corrupt.Blk())
	corrupt.Print("corrupt note name")
	corrupt.Jmp(out.Blk())

	// per-type descsz validation
	def := fb.NewBlock("n.def")
	join := fb.NewBlock("n.join")
	vals := make([]uint64, len(elfNoteTypes))
	arms := make([]*ir.Block, len(elfNoteTypes))
	for i, nt := range elfNoteTypes {
		bb := fb.NewBlock("n.arm")
		vals[i] = nt.id
		arms[i] = bb.Blk()
		good := fb.NewBlock("n.good")
		bad := fb.NewBlock("n.bad")
		dc := bb.CmpImm(ir.Ule, descsz, nt.maxDesc, 32)
		bb.Br(dc, good.Blk(), bad.Blk())
		gv := good.AddImm(ntype, nt.maxDesc, 32)
		ga := good.Add(acc, gv, 32)
		good.MovTo(acc, ga, 32)
		good.Jmp(join.Blk())
		bad.Print("oversized note desc")
		bad.Jmp(join.Blk())
	}
	nameOK.Switch(ntype, vals, arms, def.Blk())
	def.Jmp(join.Blk())

	// advance past header + payloads
	pay := join.Add(namesz, descsz, 32)
	adv := join.AddImm(pay, 6, 32)
	np := join.Add(pos, adv, 32)
	join.MovTo(pos, np, 32)
	join.Jmp(head.Blk())

	out.Ret(acc)
}

// elfProcessRelocs(doff, sz) walks RELA entries, dispatching on the
// relocation kind with a distinct formula per kind.
func elfProcessRelocs(p *ir.Program) {
	fb := p.NewFunc("process_relocs", 2)
	entry := fb.NewBlock("entry")
	doff, sz := fb.Param(0), fb.Param(1)

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	n := entry.BinImm(ir.LShr, sz, 3, 32) // 8-byte entries
	lp := beginLoop(fb, entry, "rel", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 8, 32)
	base := b.Add(doff, stride, 32)
	off := b.Call("read16", base)
	info := b.Call("read16", b.AddImm(base, 2, 32))
	addend := b.Call("read16", b.AddImm(base, 4, 32))
	rtype := b.BinImm(ir.And, info, 0xf, 32)
	symidx := b.BinImm(ir.LShr, info, 4, 32)

	// symbol index sanity
	symOK := fb.NewBlock("r.symok")
	symBad := fb.NewBlock("r.symbad")
	join := fb.NewBlock("r.join")
	scnt := b.CmpImm(ir.Ult, symidx, 4096, 32)
	b.Br(scnt, symOK.Blk(), symBad.Blk())
	symBad.Print("bad symbol index")
	symBad.Jmp(join.Blk())

	def := fb.NewBlock("r.def")
	vals := make([]uint64, len(elfRelocKinds))
	arms := make([]*ir.Block, len(elfRelocKinds))
	for i, rk := range elfRelocKinds {
		bb := fb.NewBlock("r.arm")
		vals[i] = rk.id
		arms[i] = bb.Blk()
		var v ir.Reg
		switch rk.kind {
		case 0: // S + A
			v = bb.Add(symidx, addend, 32)
		case 1: // S + A - P
			sa := bb.Add(symidx, addend, 32)
			v = bb.Sub(sa, off, 32)
		case 2: // B + A
			v = bb.AddImm(addend, 0x400, 32)
		case 3: // masked
			v = bb.BinImm(ir.And, addend, 0xfff, 32)
		default: // shifted
			v = bb.BinImm(ir.LShr, addend, 2, 32)
		}
		na := bb.Add(acc, v, 32)
		bb.MovTo(acc, na, 32)
		bb.Jmp(join.Blk())
	}
	symOK.Switch(rtype, vals, arms, def.Blk())
	def.Print("unknown relocation")
	def.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)
	lp.After.Ret(acc)
}

// elfProcessStrtab(doff, sz) scans string-table bytes, counting strings
// and validating printability.
func elfProcessStrtab(p *ir.Program) {
	fb := p.NewFunc("process_strtab", 2)
	entry := fb.NewBlock("entry")
	doff, sz := fb.Param(0), fb.Param(1)

	nstr := fb.NewReg()
	bad := fb.NewReg()
	entry.ConstTo(nstr, 0, 32)
	entry.ConstTo(bad, 0, 32)
	lp := beginLoop(fb, entry, "str", sz)
	b := lp.Body
	pos := b.Add(doff, lp.I, 32)
	v := b.Call("read8", pos)

	isNul := fb.NewBlock("s.nul")
	notNul := fb.NewBlock("s.notnul")
	printable := fb.NewBlock("s.print")
	unprintable := fb.NewBlock("s.unprint")
	join := fb.NewBlock("s.join")

	zc := b.CmpImm(ir.Eq, v, 0, 32)
	b.Br(zc, isNul.Blk(), notNul.Blk())
	ns := isNul.AddImm(nstr, 1, 32)
	isNul.MovTo(nstr, ns, 32)
	isNul.Jmp(join.Blk())

	lo := notNul.CmpImm(ir.Uge, v, 0x20, 32)
	hi := notNul.CmpImm(ir.Ult, v, 0x7f, 32)
	pc := notNul.Bin(ir.And, lo, hi, 1)
	notNul.Br(pc, printable.Blk(), unprintable.Blk())
	printable.Jmp(join.Blk())
	nb := unprintable.AddImm(bad, 1, 32)
	unprintable.MovTo(bad, nb, 32)
	unprintable.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)
	lp.After.Ret(nstr)
}

// elfProcessVersionInfo(doff, sz) walks chained version records:
// version(2) count(2) next(2), following next offsets like readelf's
// process_version_sections.
func elfProcessVersionInfo(p *ir.Program) {
	fb := p.NewFunc("process_version_info", 2)
	entry := fb.NewBlock("entry")
	doff, sz := fb.Param(0), fb.Param(1)

	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")
	pos := fb.NewReg()
	seen := fb.NewReg()
	entry.MovTo(pos, doff, 32)
	entry.ConstTo(seen, 0, 32)
	end := entry.Add(doff, sz, 32)
	entry.Jmp(head.Blk())

	// guard both the record bounds and a chain-length limit
	lim := head.AddImm(pos, 6, 32)
	inRange := head.Cmp(ir.Ule, lim, end, 32)
	chk2 := fb.NewBlock("v.chk2")
	head.Br(inRange, chk2.Blk(), out.Blk())
	few := chk2.CmpImm(ir.Ult, seen, 16, 32)
	chk2.Br(few, body.Blk(), out.Blk())

	ver := body.Call("read16", pos)
	next := body.Call("read16", body.AddImm(pos, 4, 32))

	// version must be 1 or 2
	okVer := fb.NewBlock("v.ok")
	badVer := fb.NewBlock("v.bad")
	follow := fb.NewBlock("v.follow")
	body.Switch(ver, []uint64{1, 2}, []*ir.Block{okVer.Blk(), okVer.Blk()}, badVer.Blk())
	badVer.Print("unsupported version record")
	badVer.Jmp(out.Blk())

	// next == 0 terminates the chain; otherwise follow the offset
	ns := okVer.AddImm(seen, 1, 32)
	okVer.MovTo(seen, ns, 32)
	zc := okVer.CmpImm(ir.Eq, next, 0, 32)
	okVer.Br(zc, out.Blk(), follow.Blk())
	np := follow.Add(pos, next, 32)
	follow.MovTo(pos, np, 32)
	follow.Jmp(head.Blk())

	out.Ret(seen)
}

// elfDecodeSectionFlags(flagsVal) checks six flag bits with a distinct
// action per bit, like readelf's section-flag legend.
func elfDecodeSectionFlags(p *ir.Program) {
	fb := p.NewFunc("decode_section_flags", 1)
	entry := fb.NewBlock("entry")
	flags := fb.Param(0)

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	cur := entry
	for bit := 0; bit < 6; bit++ {
		set := fb.NewBlock("f.set")
		next := fb.NewBlock("f.next")
		b := cur.BinImm(ir.And, flags, 1<<uint(bit), 32)
		c := cur.CmpImm(ir.Ne, b, 0, 32)
		cur.Br(c, set.Blk(), next.Blk())
		nv := set.AddImm(acc, uint64(bit*bit+1), 32)
		set.MovTo(acc, nv, 32)
		set.Jmp(next.Blk())
		cur = next
	}
	cur.Ret(acc)
}

// elfProcessSpecialSections dispatches NOTE/RELA/STRTAB/VERSION sections
// to their handlers — readelf's process_section_contents switchboard.
func elfProcessSpecialSections(p *ir.Program) {
	fb := p.NewFunc("process_special_sections", 0)
	entry := fb.NewBlock("entry")

	n := entry.Call("read16", entry.Const(8, 32))
	shoff := entry.Call("read16", entry.Const(12, 32))
	lp := beginLoop(fb, entry, "spc", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	doff := b.Call("read16", b.AddImm(base, 2, 32))
	sz := b.Call("read16", b.AddImm(base, 4, 32))
	info := b.Call("read16", b.AddImm(base, 10, 32))
	b.Call("decode_section_flags", info)
	inFile := b.Call("section_in_file", doff, sz)
	spOK := fb.NewBlock("sp.infile")
	spBad := fb.NewBlock("sp.badsec")
	fc2 := b.CmpImm(ir.Ne, inFile, 0, 32)

	rela := fb.NewBlock("sp.rela")
	vers := fb.NewBlock("sp.vers")
	strt := fb.NewBlock("sp.str")
	note := fb.NewBlock("sp.note")
	join := fb.NewBlock("sp.join")
	b.Br(fc2, spOK.Blk(), spBad.Blk())
	spBad.Print("special section out of file")
	spBad.Jmp(join.Blk())
	spOK.Switch(t, []uint64{4, 5, 6, 7},
		[]*ir.Block{rela.Blk(), vers.Blk(), strt.Blk(), note.Blk()}, join.Blk())

	rela.Call("process_relocs", doff, sz)
	rela.Jmp(join.Blk())
	vers.Call("process_version_info", doff, sz)
	vers.Jmp(join.Blk())
	strt.Call("process_strtab", doff, sz)
	strt.Jmp(join.Blk())
	note.Call("process_notes", doff, sz)
	note.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)
	lp.After.RetVoid()
}
