package targets

import (
	"math/rand"

	"pbse/internal/ir"
)

// MiniELF is the readelf analogue. File layout (little endian):
//
//	0..3    magic 0x7f 'E' 'L' 'F'
//	4       class (1 or 2)
//	5       version (must be 1)
//	6..7    e_phnum      8..9    e_shnum
//	10..11  e_phoff      12..13  e_shoff
//	14..15  e_flags (bit0: do_section_groups, bit1: do_unwind)
//	program header entry (8B):  type(2) offset(2) filesz(2) flags(2)
//	section header entry (12B): type(2) offset(2) size(2) name(2) link(2) info(2)
//
// Section types: 0 NULL, 1 PROGBITS, 2 DYNAMIC, 3 SYMTAB, 17 GROUP.
//
// Phase structure (mirroring Fig 1(a)): header validation and the
// phnum/shnum-bounded loops form Phase A (the paper's five
// input-dependent loops); the dynamic-section, symbol and
// section-contents passes form Phase B. process_section_groups carries
// the Fig 2 bypass (flag-gated early return). Seeded bugs:
//
//	B1 (OOB read):  process_symbols indexes a fixed 32-byte table with
//	                info&0x3f (up to 63) — the Fig 6-style unchecked
//	                index-from-file bug.
//	B2 (OOB write): process_section_contents indexes a 16-byte histogram
//	                with byte&0x1f (up to 31).
func MiniELF() *Target {
	return &Target{
		Name:         "minielf",
		Driver:       "readelf",
		Paper:        "binutils-2.26 readelf",
		Build:        buildMiniELF,
		GenSeed:      genELFSeed,
		GenBuggySeed: genELFBuggySeed,
	}
}

func buildMiniELF() (*ir.Program, error) {
	p := ir.NewProgram("minielf")
	emitReadHelpers(p)
	elfSectionInFile(p)

	elfCheckHeader(p)
	elfProcessFileHeader(p)
	elfProcessProgramHeaders(p)
	elfProcessSectionHeaders(p)
	elfProcessSectionGroups(p)
	elfProcessDynamicSection(p)
	elfProcessSymbols(p)
	elfProcessSectionContents(p)
	elfEmitRich(p)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	bad := fb.NewBlock("bad")
	run := fb.NewBlock("run")
	ok := b.Call("check_header")
	c := b.CmpImm(ir.Ne, ok, 0, 32)
	b.Br(c, run.Blk(), bad.Blk())
	bad.Print("not an ELF file")
	bad.Exit()
	run.Call("process_file_header")
	run.Call("describe_machine")
	run.Call("describe_osabi")
	run.Call("process_program_headers")
	run.Call("process_section_headers")
	run.Call("process_section_groups")
	run.Call("process_dynamic_section")
	run.Call("process_symbols")
	run.Call("process_section_contents")
	run.Call("process_special_sections")
	run.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// elfSectionInFile(doff, sz) reports whether a section body lies inside
// the file — readelf's get_data validation. Deep per-section loops only
// run for consistent entries, so reaching them symbolically requires
// constructing a coherent header + section-table chain.
func elfSectionInFile(p *ir.Program) {
	fb := p.NewFunc("section_in_file", 2)
	entry := fb.NewBlock("entry")
	doff, sz := fb.Param(0), fb.Param(1)
	ok := fb.NewBlock("ok")
	bad := fb.NewBlock("bad")
	d64 := entry.Zext(doff, 64)
	s64 := entry.Zext(sz, 64)
	end := entry.Add(d64, s64, 64)
	n := entry.InputLen(64)
	c1 := entry.Cmp(ir.Ule, end, n, 64)
	entry.Br(c1, ok.Blk(), bad.Blk())
	// the body must also start after the 16-byte header
	ok2 := fb.NewBlock("ok2")
	c2 := ok.CmpImm(ir.Uge, doff, 16, 32)
	ok.Br(c2, ok2.Blk(), bad.Blk())
	one := ok2.Const(1, 32)
	ok2.Ret(one)
	zero := bad.Const(0, 32)
	bad.Ret(zero)
}

// elfCheckHeader validates magic, class and version byte by byte.
func elfCheckHeader(p *ir.Program) {
	fb := p.NewFunc("check_header", 0)
	entry := fb.NewBlock("entry")
	fail := fb.NewBlock("fail")

	cur := entry
	for i, want := range []uint64{0x7f, 'E', 'L', 'F'} {
		next := fb.NewBlock("magic" + string(rune('0'+i)))
		off := cur.Const(uint64(i), 32)
		v := cur.Call("read8", off)
		c := cur.CmpImm(ir.Eq, v, want, 32)
		cur.Br(c, next.Blk(), fail.Blk())
		cur = next
	}
	// class must be 1 or 2
	classOK := fb.NewBlock("class_ok")
	off4 := cur.Const(4, 32)
	cls := cur.Call("read8", off4)
	cur.Switch(cls, []uint64{1, 2}, []*ir.Block{classOK.Blk(), classOK.Blk()}, fail.Blk())
	// version must be 1
	done := fb.NewBlock("done")
	off5 := classOK.Const(5, 32)
	ver := classOK.Call("read8", off5)
	vc := classOK.CmpImm(ir.Eq, ver, 1, 32)
	classOK.Br(vc, done.Blk(), fail.Blk())

	one := done.Const(1, 32)
	done.Ret(one)
	zero := fail.Const(0, 32)
	fail.Ret(zero)
}

// elfProcessFileHeader sums the 16 header bytes (a small fixed loop) and
// branches on class/flags, like readelf's banner printing.
func elfProcessFileHeader(p *ir.Program) {
	fb := p.NewFunc("process_file_header", 0)
	entry := fb.NewBlock("entry")

	sum := fb.NewReg()
	entry.ConstTo(sum, 0, 32)
	limit := entry.Const(16, 32)
	lp := beginLoop(fb, entry, "hdr", limit)

	v := lp.Body.Call("read8", lp.I)
	ns := lp.Body.Add(sum, v, 32)
	lp.Body.MovTo(sum, ns, 32)
	endLoop(lp, lp.Body)

	// branch on class, like the "ELF32/ELF64" banner
	is64 := fb.NewBlock("is64")
	is32 := fb.NewBlock("is32")
	out := fb.NewBlock("out")
	off4 := lp.After.Const(4, 32)
	cls := lp.After.Call("read8", off4)
	c := lp.After.CmpImm(ir.Eq, cls, 2, 32)
	lp.After.Br(c, is64.Blk(), is32.Blk())
	is64.Print("ELF64")
	is64.Jmp(out.Blk())
	is32.Print("ELF32")
	is32.Jmp(out.Blk())
	out.Ret(sum)
}

// elfProcessProgramHeaders is the first input-dependent trap loop: e_phnum
// iterations, a type switch per entry, and a bounds validation branch.
func elfProcessProgramHeaders(p *ir.Program) {
	fb := p.NewFunc("process_program_headers", 0)
	entry := fb.NewBlock("entry")

	total := fb.NewReg()
	unknown := fb.NewReg()
	entry.ConstTo(total, 0, 32)
	entry.ConstTo(unknown, 0, 32)
	off6 := entry.Const(6, 32)
	n := entry.Call("read16", off6)
	off10 := entry.Const(10, 32)
	phoff := entry.Call("read16", off10)

	lp := beginLoop(fb, entry, "ph", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 8, 32)
	base := b.Add(phoff, stride, 32)
	t := b.Call("read16", base)
	off2 := b.AddImm(base, 2, 32)
	segOff := b.Call("read16", off2)
	off4 := b.AddImm(base, 4, 32)
	segSz := b.Call("read16", off4)

	caseNull := fb.NewBlock("ph.null")
	caseLoad := fb.NewBlock("ph.load")
	caseDyn := fb.NewBlock("ph.dyn")
	caseDef := fb.NewBlock("ph.def")
	join := fb.NewBlock("ph.join")
	b.Switch(t, []uint64{0, 1, 2},
		[]*ir.Block{caseNull.Blk(), caseLoad.Blk(), caseDyn.Blk()}, caseDef.Blk())

	caseNull.Jmp(join.Blk())

	// LOAD: validate that the segment fits in the file
	valid := fb.NewBlock("ph.valid")
	invalid := fb.NewBlock("ph.invalid")
	end := caseLoad.Add(segOff, segSz, 32)
	flen := caseLoad.InputLen(32)
	vc := caseLoad.Cmp(ir.Ule, end, flen, 32)
	caseLoad.Br(vc, valid.Blk(), invalid.Blk())
	nt := valid.Add(total, segSz, 32)
	valid.MovTo(total, nt, 32)
	valid.Jmp(join.Blk())
	invalid.Print("segment out of file")
	invalid.Jmp(join.Blk())

	caseDyn.Print("dynamic segment")
	caseDyn.Jmp(join.Blk())

	nu := caseDef.AddImm(unknown, 1, 32)
	caseDef.MovTo(unknown, nu, 32)
	caseDef.Jmp(join.Blk())

	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)

	lp.After.Ret(total)
}

// elfProcessSectionHeaders is the second trap loop: e_shnum iterations
// with a type histogram.
func elfProcessSectionHeaders(p *ir.Program) {
	fb := p.NewFunc("process_section_headers", 0)
	entry := fb.NewBlock("entry")

	hist := entry.Alloca(32) // 8 u32 counters, indexed by type&7 (in bounds)
	off8 := entry.Const(8, 32)
	n := entry.Call("read16", off8)
	off12 := entry.Const(12, 32)
	shoff := entry.Call("read16", off12)

	lp := beginLoop(fb, entry, "sh", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	idx := b.BinImm(ir.And, t, 7, 32)
	slot := b.BinImm(ir.Mul, idx, 4, 32)
	slot64 := b.Zext(slot, 64)
	addr := b.Add(hist, slot64, 64)
	old := b.Load(addr, 0, 32)
	nv := b.AddImm(old, 1, 32)
	b.Store(addr, 0, nv, 32)
	endLoop(lp, b)

	lp.After.RetVoid()
}

// elfProcessSectionGroups mirrors Fig 2: a flag-gated early return lets
// some paths bypass the e_shnum loop entirely.
func elfProcessSectionGroups(p *ir.Program) {
	fb := p.NewFunc("process_section_groups", 0)
	entry := fb.NewBlock("entry")
	bypass := fb.NewBlock("bypass")
	check := fb.NewBlock("check")
	empty := fb.NewBlock("empty")
	scan := fb.NewBlock("scan")

	// if (!do_unwind && !do_section_groups) return 1
	off14 := entry.Const(14, 32)
	flags := entry.Call("read16", off14)
	wanted := entry.BinImm(ir.And, flags, 3, 32)
	c := entry.CmpImm(ir.Eq, wanted, 0, 32)
	entry.Br(c, bypass.Blk(), check.Blk())
	one := bypass.Const(1, 32)
	bypass.Ret(one)

	// if e_shnum == 0 { print; return 1 }
	off8 := check.Const(8, 32)
	n := check.Call("read16", off8)
	cz := check.CmpImm(ir.Eq, n, 0, 32)
	check.Br(cz, empty.Blk(), scan.Blk())
	empty.Print("There are no sections to group.")
	oneE := empty.Const(1, 32)
	empty.Ret(oneE)

	// for each section: GROUP sections get an inner member loop
	groups := fb.NewReg()
	scan.ConstTo(groups, 0, 32)
	off12 := scan.Const(12, 32)
	shoff := scan.Call("read16", off12)
	lp := beginLoop(fb, scan, "grp", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	isGroup := fb.NewBlock("grp.is")
	skip := fb.NewBlock("grp.skip")
	gc := b.CmpImm(ir.Eq, t, 17, 32)
	b.Br(gc, isGroup.Blk(), skip.Blk())

	// inner loop over group members (size/4 entries at the data offset)
	off2 := isGroup.AddImm(base, 2, 32)
	doff := isGroup.Call("read16", off2)
	off4 := isGroup.AddImm(base, 4, 32)
	sz := isGroup.Call("read16", off4)
	nmemb := isGroup.BinImm(ir.LShr, sz, 2, 32)
	inner := beginLoop(fb, isGroup, "memb", nmemb)
	ib := inner.Body
	mstride := ib.BinImm(ir.Mul, inner.I, 4, 32)
	mbase := ib.Add(doff, mstride, 32)
	ib.Call("read16", mbase)
	endLoop(inner, ib)
	ng := inner.After.AddImm(groups, 1, 32)
	inner.After.MovTo(groups, ng, 32)
	inner.After.Jmp(skip.Blk())

	ni := skip.AddImm(lp.I, 1, 32)
	skip.MovTo(lp.I, ni, 32)
	skip.Jmp(lp.Head)

	lp.After.Ret(groups)
}

// elfProcessDynamicSection scans for DYNAMIC sections and walks their
// tag/value entries until DT_NULL — a nested input-dependent loop.
func elfProcessDynamicSection(p *ir.Program) {
	fb := p.NewFunc("process_dynamic_section", 0)
	entry := fb.NewBlock("entry")

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	off8 := entry.Const(8, 32)
	n := entry.Call("read16", off8)
	off12 := entry.Const(12, 32)
	shoff := entry.Call("read16", off12)

	lp := beginLoop(fb, entry, "dyn", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	isDyn := fb.NewBlock("dyn.is")
	skip := fb.NewBlock("dyn.skip")
	dc := b.CmpImm(ir.Eq, t, 2, 32)
	b.Br(dc, isDyn.Blk(), skip.Blk())

	off2 := isDyn.AddImm(base, 2, 32)
	doff := isDyn.Call("read16", off2)
	off4 := isDyn.AddImm(base, 4, 32)
	sz := isDyn.Call("read16", off4)
	inFile := isDyn.Call("section_in_file", doff, sz)
	dynOK := fb.NewBlock("dyn.infile")
	dynBad := fb.NewBlock("dyn.badsec")
	fc2 := isDyn.CmpImm(ir.Ne, inFile, 0, 32)
	isDyn.Br(fc2, dynOK.Blk(), dynBad.Blk())
	dynBad.Print("dynamic section out of file")
	dynBad.Jmp(skip.Blk())
	nent := dynOK.BinImm(ir.LShr, sz, 2, 32)

	inner := beginLoop(fb, dynOK, "ent", nent)
	ib := inner.Body
	ebase0 := ib.BinImm(ir.Mul, inner.I, 4, 32)
	ebase := ib.Add(doff, ebase0, 32)
	tag := ib.Call("read16", ebase)
	voff := ib.AddImm(ebase, 2, 32)
	val := ib.Call("read16", voff)

	// DT_NULL terminates the walk
	walkOn := fb.NewBlock("ent.on")
	zc := ib.CmpImm(ir.Eq, tag, 0, 32)
	ib.Br(zc, inner.After.Blk(), walkOn.Blk())

	// tag switch, like readelf's dynamic-tag printing
	needed := fb.NewBlock("ent.needed")
	soname := fb.NewBlock("ent.soname")
	hash := fb.NewBlock("ent.hash")
	other := fb.NewBlock("ent.other")
	join := fb.NewBlock("ent.join")
	walkOn.Switch(tag, []uint64{1, 14, 4},
		[]*ir.Block{needed.Blk(), soname.Blk(), hash.Blk()}, other.Blk())
	for _, arm := range []*ir.BlockBuilder{needed, soname, hash, other} {
		na := arm.Add(acc, val, 32)
		arm.MovTo(acc, na, 32)
		arm.Jmp(join.Blk())
	}
	ni := join.AddImm(inner.I, 1, 32)
	join.MovTo(inner.I, ni, 32)
	join.Jmp(inner.Head)

	inner.After.Jmp(skip.Blk())

	n2 := skip.AddImm(lp.I, 1, 32)
	skip.MovTo(lp.I, n2, 32)
	skip.Jmp(lp.Head)

	lp.After.Ret(acc)
}

// elfProcessSymbols walks SYMTAB sections. Seeded bug B1: the 32-byte
// short-name table is indexed with info&0x3f (0..63) without a bounds
// check — an OOB read for info >= 0x20, reachable only deep in Phase B.
func elfProcessSymbols(p *ir.Program) {
	fb := p.NewFunc("process_symbols", 0)
	entry := fb.NewBlock("entry")

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	shortNames := entry.Alloca(32)
	off8 := entry.Const(8, 32)
	n := entry.Call("read16", off8)
	off12 := entry.Const(12, 32)
	shoff := entry.Call("read16", off12)

	lp := beginLoop(fb, entry, "sym", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	isSym := fb.NewBlock("sym.is")
	skip := fb.NewBlock("sym.skip")
	sc := b.CmpImm(ir.Eq, t, 3, 32)
	b.Br(sc, isSym.Blk(), skip.Blk())

	off2 := isSym.AddImm(base, 2, 32)
	doff := isSym.Call("read16", off2)
	off4 := isSym.AddImm(base, 4, 32)
	sz := isSym.Call("read16", off4)
	inFile := isSym.Call("section_in_file", doff, sz)
	symOK := fb.NewBlock("sym.infile")
	symBad := fb.NewBlock("sym.badsec")
	fc2 := isSym.CmpImm(ir.Ne, inFile, 0, 32)
	isSym.Br(fc2, symOK.Blk(), symBad.Blk())
	symBad.Print("symbol table out of file")
	symBad.Jmp(skip.Blk())
	nsym := symOK.BinImm(ir.UDiv, sz, 6, 32)

	inner := beginLoop(fb, symOK, "one", nsym)
	ib := inner.Body
	sbase0 := ib.BinImm(ir.Mul, inner.I, 6, 32)
	sbase := ib.Add(doff, sbase0, 32)
	nameOff := ib.Call("read16", sbase)
	voff := ib.AddImm(sbase, 2, 32)
	val := ib.Call("read16", voff)
	ioff := ib.AddImm(sbase, 4, 32)
	info := ib.Call("read8", ioff)

	// BUG B1: idx ranges over 0..63 but the table holds 32 bytes.
	idx := ib.BinImm(ir.And, info, 0x3f, 32)
	idx64 := ib.Zext(idx, 64)
	naddr := ib.Add(shortNames, idx64, 64)
	tag := ib.Load(naddr, 0, 8)
	tag32 := ib.Zext(tag, 32)

	s1 := ib.Add(acc, nameOff, 32)
	s2 := ib.Add(s1, val, 32)
	s3 := ib.Add(s2, tag32, 32)
	ib.MovTo(acc, s3, 32)
	endLoop(inner, ib)
	inner.After.Jmp(skip.Blk())

	n2 := skip.AddImm(lp.I, 1, 32)
	skip.MovTo(lp.I, n2, 32)
	skip.Jmp(lp.Head)

	lp.After.Ret(acc)
}

// elfProcessSectionContents walks PROGBITS data bytes. Seeded bug B2: the
// 16-byte histogram is indexed with byte&0x1f (0..31) — an OOB write for
// data bytes >= 0x10.
func elfProcessSectionContents(p *ir.Program) {
	fb := p.NewFunc("process_section_contents", 0)
	entry := fb.NewBlock("entry")

	hist := entry.Alloca(16)
	off8 := entry.Const(8, 32)
	n := entry.Call("read16", off8)
	off12 := entry.Const(12, 32)
	shoff := entry.Call("read16", off12)

	lp := beginLoop(fb, entry, "sec", n)
	b := lp.Body
	stride := b.BinImm(ir.Mul, lp.I, 12, 32)
	base := b.Add(shoff, stride, 32)
	t := b.Call("read16", base)
	isBits := fb.NewBlock("sec.is")
	skip := fb.NewBlock("sec.skip")
	pc := b.CmpImm(ir.Eq, t, 1, 32)
	b.Br(pc, isBits.Blk(), skip.Blk())

	off2 := isBits.AddImm(base, 2, 32)
	doff := isBits.Call("read16", off2)
	off4 := isBits.AddImm(base, 4, 32)
	sz := isBits.Call("read16", off4)
	inFile := isBits.Call("section_in_file", doff, sz)
	bitsOK := fb.NewBlock("sec.infile")
	bitsBad := fb.NewBlock("sec.badsec")
	fc2 := isBits.CmpImm(ir.Ne, inFile, 0, 32)
	isBits.Br(fc2, bitsOK.Blk(), bitsBad.Blk())
	bitsBad.Print("section body out of file")
	bitsBad.Jmp(skip.Blk())

	inner := beginLoop(fb, bitsOK, "byte", sz)
	ib := inner.Body
	boff := ib.Add(doff, inner.I, 32)
	v := ib.Call("read8", boff)
	// BUG B2: idx ranges over 0..31 but the histogram holds 16 bytes.
	idx := ib.BinImm(ir.And, v, 0x1f, 32)
	idx64 := ib.Zext(idx, 64)
	haddr := ib.Add(hist, idx64, 64)
	old := ib.Load(haddr, 0, 8)
	nv := ib.AddImm(old, 1, 8)
	ib.Store(haddr, 0, nv, 8)
	endLoop(inner, ib)
	inner.After.Jmp(skip.Blk())

	n2 := skip.AddImm(lp.I, 1, 32)
	skip.MovTo(lp.I, n2, 32)
	skip.Jmp(lp.Head)

	lp.After.RetVoid()
}

// genELFSeed produces a benign mini-ELF of approximately the requested
// size: valid header, a few program headers, and DYNAMIC, SYMTAB,
// PROGBITS, RELA, VERSION, STRTAB and NOTE sections whose data stays
// clear of the seeded bug triggers.
func genELFSeed(rng *rand.Rand, size int) []byte {
	if size < 256 {
		size = 256
	}
	var b []byte
	b = append(b, 0x7f, 'E', 'L', 'F')
	b = append(b, byte(1+rng.Intn(2))) // class
	b = append(b, 1)                   // version

	phnum := uint16(2 + rng.Intn(2))
	phoff := uint16(16)

	// section payloads, built first so offsets are known
	var dyn, sym, rela, vers, strt, note []byte
	// dynamic entries: (tag,val)* then DT_NULL
	dyn = le16(dyn, 1)
	dyn = le16(dyn, uint16(rng.Intn(100)))
	dyn = le16(dyn, 4)
	dyn = le16(dyn, uint16(rng.Intn(100)))
	dyn = le16(dyn, 0)
	dyn = le16(dyn, 0)
	// symbols: name(2) value(2) info(1) other(1); info < 0x20 keeps B1 dormant
	for i := 0; i < 3; i++ {
		sym = le16(sym, uint16(rng.Intn(64)))
		sym = le16(sym, uint16(rng.Intn(1000)))
		sym = append(sym, byte(rng.Intn(0x20)), 0)
	}
	// relocations: offset(2) info(2) addend(2) pad(2)
	for i := 0; i < 3; i++ {
		rela = le16(rela, uint16(rng.Intn(512)))
		rk := elfRelocKinds[rng.Intn(len(elfRelocKinds))]
		rela = le16(rela, uint16(rng.Intn(100))<<4|uint16(rk.id))
		rela = le16(rela, uint16(rng.Intn(4096)))
		rela = le16(rela, 0)
	}
	// version chain: two records linked by next offsets
	vers = le16(vers, 1)
	vers = le16(vers, 1)
	vers = le16(vers, 6) // next record directly after
	vers = le16(vers, uint16(1+rng.Intn(2)))
	vers = le16(vers, 2)
	vers = le16(vers, 0) // chain end
	// string table: printable strings with NUL terminators
	for _, w := range []string{"main", "init", "libm"} {
		strt = append(strt, w...)
		strt = append(strt, 0)
	}
	// notes: two records with in-limit descsz values
	for i := 0; i < 2; i++ {
		nt := elfNoteTypes[rng.Intn(4)] // small ids fit in 16 bits
		namesz := uint16(4)
		descsz := uint16(rng.Intn(int(nt.maxDesc)/2 + 1))
		note = le16(note, namesz)
		note = le16(note, descsz)
		note = le16(note, uint16(nt.id))
		for j := uint16(0); j < namesz+descsz; j++ {
			note = append(note, byte(rng.Intn(0x10)))
		}
	}

	type section struct {
		typ  uint16
		data []byte
	}
	sections := []section{
		{2, dyn}, {3, sym}, {1, nil /* PROGBITS filler, sized below */},
		{4, rela}, {5, vers}, {6, strt}, {7, note},
	}
	shnum := uint16(len(sections))
	shoff := phoff + phnum*8
	dataStart := shoff + shnum*12

	// size the PROGBITS filler to land near the requested total
	fixed := 0
	for _, s := range sections {
		fixed += len(s.data)
	}
	bitsSz := size - int(dataStart) - fixed
	if bitsSz < 4 {
		bitsSz = 4
	}
	if bitsSz > 0xffff {
		bitsSz = 0xffff
	}
	bits := make([]byte, bitsSz)
	for i := range bits {
		bits[i] = byte(rng.Intn(0x10)) // < 0x10 keeps B2 dormant
	}
	sections[2].data = bits

	b = le16(b, phnum)
	b = le16(b, shnum)
	b = le16(b, phoff)
	b = le16(b, shoff)
	// flags: bit0 do_section_groups, bit2 aligned, OSABI nibble; then the
	// machine id byte
	abiNibble := byte(rng.Intn(len(elfOSABIs)))
	b = append(b, 1|4|abiNibble<<4)
	b = append(b, byte(elfMachines[rng.Intn(len(elfMachines))].id))

	// program headers
	for i := uint16(0); i < phnum; i++ {
		b = le16(b, uint16(i%3)) // type cycles NULL/LOAD/DYNAMIC
		b = le16(b, dataStart)
		b = le16(b, 8)
		b = le16(b, uint16(rng.Intn(8)))
	}

	// section headers, then payloads in the same order
	off := dataStart
	for _, s := range sections {
		b = le16(b, s.typ)
		b = le16(b, off)
		b = le16(b, uint16(len(s.data)))
		b = le16(b, 0)                    // name
		b = le16(b, 0)                    // link
		b = le16(b, uint16(rng.Intn(64))) // info (flags for the decoder)
		off += uint16(len(s.data))
	}
	for _, s := range sections {
		b = append(b, s.data...)
	}
	return pad(b, size, rng)
}

// genELFBuggySeed plants a symbol whose info byte triggers the B1 OOB
// read concretely.
func genELFBuggySeed(rng *rand.Rand) []byte {
	b := genELFSeed(rng, 128)
	// symbol table starts after header(16) + ph(phnum*8) + sh(36) + dyn(12);
	// recompute from the header fields to stay robust
	shoff := int(b[12]) | int(b[13])<<8
	symEntryBase := shoff + 12 // second section header
	symOff := int(b[symEntryBase+2]) | int(b[symEntryBase+3])<<8
	// first symbol's info byte at symOff+4
	b[symOff+4] = 0x3f
	return b
}
