package targets

import (
	"math/rand"
	"testing"

	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/symex"
)

// TestSeededBugsFoundFromBuggyNeighborhood: starting concolic execution
// from each buggy seed, the symbolic bug checks fire on the seed path
// itself (the engine sees the OOB even while following the concrete
// path) and produce reproducing witnesses.
func TestSeededBugsFoundFromBuggyNeighborhood(t *testing.T) {
	wantKind := map[string]bugs.Kind{
		"readelf":   bugs.OOBRead,
		"pngtest":   bugs.OOBRead,
		"gif2tiff":  bugs.OOBWrite,
		"tiff2rgba": bugs.OOBRead,
		"dwarfdump": bugs.OOBWrite,
	}
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			prog, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			seed := tgt.GenBuggySeed(rand.New(rand.NewSource(3)))
			ex := symex.NewExecutor(prog, symex.Options{InputSize: len(seed)})
			// concolic execution stops at the concrete fault, but the
			// symbolic OOB check fires first and records the bug
			_, err = concolic.Run(ex, seed, concolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range ex.Bugs.Reports() {
				if r.Kind == wantKind[tgt.Driver] {
					found = true
					if r.Input != nil {
						rr := interp.New(prog, r.Input, interp.Options{MaxSteps: 10_000_000}).Run()
						if rr.Reason != interp.StopFault {
							t.Errorf("witness does not reproduce: %+v", rr)
						}
					}
				}
			}
			if !found {
				t.Errorf("bug class %v not detected on the buggy seed path; got %v",
					wantKind[tgt.Driver], ex.Bugs.Reports())
			}
		})
	}
}

// TestConcolicExitsCleanOnBenignSeeds: the concolic engine must follow
// every benign seed to a clean exit (shadow semantics match the concrete
// interpreter).
func TestConcolicExitsCleanOnBenignSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("concolic shadow run over every target is slow")
	}
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			prog, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			seed := tgt.GenSeed(rand.New(rand.NewSource(5)), 576)
			ex := symex.NewExecutor(prog, symex.Options{InputSize: len(seed)})
			res, err := concolic.Run(ex, seed, concolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exited {
				t.Errorf("concolic run did not exit cleanly")
			}
			// the concolic step count must match the concrete interpreter's
			cres := interp.New(prog, seed, interp.Options{}).Run()
			if cres.Reason != interp.StopExited {
				t.Fatalf("interp: %+v", cres)
			}
			if res.Steps != cres.Steps {
				t.Errorf("concolic steps %d != interp steps %d (lockstep broken)", res.Steps, cres.Steps)
			}
		})
	}
}

// TestSeedSelectHeuristic: among candidates, the smallest-10/top-coverage
// rule picks a small high-coverage seed, not a big one.
func TestSeedSelectHeuristic(t *testing.T) {
	tgt, err := ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var cands [][]byte
	// 12 valid seeds of growing size plus junk candidates
	for i := 0; i < 12; i++ {
		cands = append(cands, tgt.GenSeed(rng, 256+i*64))
	}
	junk := make([]byte, 64) // invalid header: minimal coverage
	cands = append(cands, junk)

	got := SelectSeed(prog, cands)
	if got == nil {
		t.Fatal("no seed selected")
	}
	if len(got) > 256+9*64 {
		t.Errorf("selected seed of %d bytes; only the 10 smallest are eligible", len(got))
	}
	if coverageOf(prog, got) <= coverageOf(prog, junk) {
		t.Errorf("selected seed has junk-level coverage")
	}
	if SelectSeed(prog, nil) != nil {
		t.Error("empty corpus should select nil")
	}
}

// TestBuggySeedsAreValidOtherwise: buggy seeds must parse normally up to
// the bug (they pass header validation), so the bug truly sits in a deep
// phase.
func TestBuggySeedsParseDeep(t *testing.T) {
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			prog, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			seed := tgt.GenBuggySeed(rand.New(rand.NewSource(3)))
			var steps int64
			m := interp.New(prog, seed, interp.Options{Tracer: func(_ *ir.Block, s int64) { steps = s }})
			res := m.Run()
			if res.Reason != interp.StopFault {
				t.Fatalf("buggy seed did not fault: %+v", res)
			}
			if res.Steps < 100 {
				t.Errorf("fault after only %d steps — bug is not deep", res.Steps)
			}
			_ = steps
		})
	}
}
