package targets

import (
	"math/rand"
	"testing"

	"pbse/internal/interp"
	"pbse/internal/ir"
)

func TestAllTargetsBuild(t *testing.T) {
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			p, err := tgt.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if p.NumInstrs < 50 {
				t.Errorf("suspiciously small program: %d instrs", p.NumInstrs)
			}
			if len(p.AllBlocks) < 15 {
				t.Errorf("suspiciously few blocks: %d", len(p.AllBlocks))
			}
		})
	}
}

// TestBenignSeedsRunClean is the key sanity property: generated seeds
// must parse without hitting any seeded bug, across sizes and rng seeds.
func TestBenignSeedsRunClean(t *testing.T) {
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			p, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{256, 576, 1024, 4096} {
				for s := int64(0); s < 5; s++ {
					rng := rand.New(rand.NewSource(s))
					seed := tgt.GenSeed(rng, size)
					if len(seed) != size {
						t.Errorf("seed size = %d, want %d", len(seed), size)
					}
					res := interp.New(p, seed, interp.Options{MaxSteps: 5_000_000}).Run()
					if res.Reason != interp.StopExited {
						t.Fatalf("size %d rng %d: %v (fault: %v)", size, s, res.Reason, res.Fault)
					}
				}
			}
		})
	}
}

// TestSeedsExerciseDepth ensures benign seeds actually reach the deep
// phases (enough distinct blocks covered on the concrete path).
func TestSeedsExerciseDepth(t *testing.T) {
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			p, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			// union coverage over a handful of seeds: generators vary
			// format features (photometric modes, chunk mixes) per seed
			covered := make(map[int]bool)
			for s := int64(0); s < 8; s++ {
				rng := rand.New(rand.NewSource(s))
				seed := tgt.GenSeed(rng, 576)
				m := interp.New(p, seed, interp.Options{Tracer: func(b *ir.Block, _ int64) {
					covered[b.ID] = true
				}})
				m.Run()
			}
			frac := float64(len(covered)) / float64(len(p.AllBlocks))
			if frac < 0.5 {
				t.Errorf("seeds cover only %.0f%% of blocks (%d/%d)", frac*100, len(covered), len(p.AllBlocks))
			}
		})
	}
}

func TestBuggySeedsCrash(t *testing.T) {
	wantKinds := map[string]interp.FaultKind{
		"readelf":   interp.FaultOOBRead,  // B1: symbol short-name table
		"pngtest":   interp.FaultOOBRead,  // P1: month index -1
		"gif2tiff":  interp.FaultOOBWrite, // T1: colormap overflow
		"tiff2rgba": interp.FaultOOBRead,  // T2: CIELab buffer
		"dwarfdump": interp.FaultOOBWrite, // D3: depth histogram
	}
	for _, tgt := range All() {
		t.Run(tgt.Driver, func(t *testing.T) {
			if tgt.GenBuggySeed == nil {
				t.Skip("no buggy seed generator")
			}
			p, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			seed := tgt.GenBuggySeed(rng)
			res := interp.New(p, seed, interp.Options{MaxSteps: 5_000_000}).Run()
			if res.Reason != interp.StopFault {
				t.Fatalf("buggy seed did not crash: %+v", res)
			}
			if want := wantKinds[tgt.Driver]; res.Fault.Kind != want {
				t.Errorf("fault kind = %v, want %v (%s)", res.Fault.Kind, want, res.Fault)
			}
		})
	}
}

func TestByDriver(t *testing.T) {
	if _, err := ByDriver("readelf"); err != nil {
		t.Errorf("readelf should exist: %v", err)
	}
	if _, err := ByDriver("nope"); err == nil {
		t.Error("unknown driver should error")
	}
}

func TestSeedDeterminism(t *testing.T) {
	for _, tgt := range All() {
		a := tgt.GenSeed(rand.New(rand.NewSource(5)), 256)
		b := tgt.GenSeed(rand.New(rand.NewSource(5)), 256)
		if string(a) != string(b) {
			t.Errorf("%s: seeds differ for same rng seed", tgt.Driver)
		}
	}
}
