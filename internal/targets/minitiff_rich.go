package targets

import "pbse/internal/ir"

// Breadth handlers for the two libtiff drivers. The gif2tiff side gains
// the real GIF extension blocks (graphic control, comment, plain text,
// application) and local-colour-table handling; the tiff2rgba side gains
// the photometric-interpretation conversions (gray, RGB, palette, CMYK,
// YCbCr, CIELab) and the usual tag validations.

// gifEmitRich registers the gif2tiff breadth handlers.
func gifEmitRich(p *ir.Program) {
	gifGraphicControl(p)
	gifComment(p)
	gifPlainText(p)
	gifApplication(p)
	gifLocalColorTable(p)
}

// gifGraphicControl parses the 0xf9 extension: block size must be 4,
// disposal method 0..3, then delay and transparent index.
func gifGraphicControl(p *ir.Program) {
	fb := p.NewFunc("gif_graphic_control", 1)
	entry := fb.NewBlock("entry")
	pos := fb.Param(0)

	bs := entry.Call("read8", pos)
	okBS := fb.NewBlock("okbs")
	badBS := fb.NewBlock("badbs")
	bc := entry.CmpImm(ir.Eq, bs, 4, 32)
	entry.Br(bc, okBS.Blk(), badBS.Blk())
	badBS.Print("bad graphic control size")
	bp := badBS.AddImm(pos, 1, 32)
	badBS.Ret(bp)

	flags := okBS.Call("read8", okBS.AddImm(pos, 1, 32))
	disp := okBS.BinImm(ir.LShr, flags, 2, 32)
	dispOK := okBS.BinImm(ir.And, disp, 7, 32)
	arms := make([]*ir.Block, 4)
	vals := make([]uint64, 4)
	join := fb.NewBlock("join")
	bad := fb.NewBlock("baddisp")
	for k := 0; k < 4; k++ {
		bb := fb.NewBlock("d.arm")
		vals[k] = uint64(k)
		arms[k] = bb.Blk()
		bb.Jmp(join.Blk())
	}
	okBS.Switch(dispOK, vals, arms, bad.Blk())
	bad.Print("reserved disposal method")
	bad.Jmp(join.Blk())

	join.Call("read16", join.AddImm(pos, 2, 32)) // delay
	join.Call("read8", join.AddImm(pos, 4, 32))  // transparent index
	np := join.AddImm(pos, 6, 32)                // size + 4 fields + terminator
	join.Ret(np)
}

// gifComment counts printable vs non-printable bytes across the
// comment's sub-blocks.
func gifComment(p *ir.Program) {
	fb := p.NewFunc("gif_comment", 1)
	entry := fb.NewBlock("entry")
	pos0 := fb.Param(0)

	head := fb.NewBlock("head")
	blk := fb.NewBlock("blk")
	out := fb.NewBlock("out")
	pos := fb.NewReg()
	printable := fb.NewReg()
	entry.MovTo(pos, pos0, 32)
	entry.ConstTo(printable, 0, 32)
	entry.Jmp(head.Blk())

	n := head.InputLen(32)
	inFile := head.Cmp(ir.Ult, pos, n, 32)
	chk := fb.NewBlock("chk")
	head.Br(inFile, chk.Blk(), out.Blk())
	blen := chk.Call("read8", pos)
	zc := chk.CmpImm(ir.Eq, blen, 0, 32)
	fin := fb.NewBlock("fin")
	chk.Br(zc, fin.Blk(), blk.Blk())
	fp := fin.AddImm(pos, 1, 32)
	fin.Ret(fp)

	dstart := blk.AddImm(pos, 1, 32)
	lp := beginLoop(fb, blk, "cmt", blen)
	b := lp.Body
	v := b.Call("read8", b.Add(dstart, lp.I, 32))
	isP := fb.NewBlock("isp")
	notP := fb.NewBlock("notp")
	join := fb.NewBlock("cjoin")
	c1 := b.CmpImm(ir.Uge, v, 0x20, 32)
	c2 := b.CmpImm(ir.Ult, v, 0x7f, 32)
	c := b.Bin(ir.And, c1, c2, 1)
	b.Br(c, isP.Blk(), notP.Blk())
	npr := isP.AddImm(printable, 1, 32)
	isP.MovTo(printable, npr, 32)
	isP.Jmp(join.Blk())
	notP.Jmp(join.Blk())
	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)

	adv := lp.After.AddImm(blen, 1, 32)
	np := lp.After.Add(pos, adv, 32)
	lp.After.MovTo(pos, np, 32)
	lp.After.Jmp(head.Blk())

	out.Ret(pos)
}

// gifPlainText parses the 0x01 extension header (12 bytes of grid
// geometry with validations) then skips the text sub-blocks.
func gifPlainText(p *ir.Program) {
	fb := p.NewFunc("gif_plain_text", 1)
	entry := fb.NewBlock("entry")
	pos := fb.Param(0)

	bs := entry.Call("read8", pos)
	okBS := fb.NewBlock("okbs")
	badBS := fb.NewBlock("badbs")
	bc := entry.CmpImm(ir.Eq, bs, 12, 32)
	entry.Br(bc, okBS.Blk(), badBS.Blk())
	badBS.Print("bad plain text header")
	bp := badBS.AddImm(pos, 1, 32)
	badBS.Ret(bp)

	cw := okBS.Call("read8", okBS.AddImm(pos, 9, 32))  // cell width
	ch := okBS.Call("read8", okBS.AddImm(pos, 10, 32)) // cell height
	okCell := fb.NewBlock("okcell")
	badCell := fb.NewBlock("badcell")
	join := fb.NewBlock("join")
	c1 := okBS.CmpImm(ir.Ugt, cw, 0, 32)
	c2 := okBS.CmpImm(ir.Ugt, ch, 0, 32)
	c := okBS.Bin(ir.And, c1, c2, 1)
	okBS.Br(c, okCell.Blk(), badCell.Blk())
	badCell.Print("zero text cell")
	badCell.Jmp(join.Blk())
	okCell.Jmp(join.Blk())

	hdrEnd := join.AddImm(pos, 13, 32)
	end := join.Call("gif_read_sub_blocks", hdrEnd)
	join.Ret(end)
}

// gifApplication checks the 11-byte application identifier and loops the
// payload sub-blocks.
func gifApplication(p *ir.Program) {
	fb := p.NewFunc("gif_application", 1)
	entry := fb.NewBlock("entry")
	pos := fb.Param(0)

	bs := entry.Call("read8", pos)
	okBS := fb.NewBlock("okbs")
	badBS := fb.NewBlock("badbs")
	bc := entry.CmpImm(ir.Eq, bs, 11, 32)
	entry.Br(bc, okBS.Blk(), badBS.Blk())
	badBS.Print("bad application block")
	bp := badBS.AddImm(pos, 1, 32)
	badBS.Ret(bp)

	// check for the NETSCAPE2.0-style identifier prefix "NS"
	id0 := okBS.Call("read8", okBS.AddImm(pos, 1, 32))
	isNS := fb.NewBlock("isns")
	notNS := fb.NewBlock("notns")
	join := fb.NewBlock("join")
	nc := okBS.CmpImm(ir.Eq, id0, 'N', 32)
	okBS.Br(nc, isNS.Blk(), notNS.Blk())
	isNS.Print("netscape extension")
	isNS.Jmp(join.Blk())
	notNS.Jmp(join.Blk())

	hdrEnd := join.AddImm(pos, 12, 32)
	end := join.Call("gif_read_sub_blocks", hdrEnd)
	join.Ret(end)
}

// gifLocalColorTable(pos, flags) skips a local colour table when the
// image descriptor requests one, validating the exponent.
func gifLocalColorTable(p *ir.Program) {
	fb := p.NewFunc("gif_local_color_table", 2)
	entry := fb.NewBlock("entry")
	pos, flags := fb.Param(0), fb.Param(1)

	present := entry.BinImm(ir.And, flags, 0x80, 32)
	have := fb.NewBlock("have")
	none := fb.NewBlock("none")
	pc := entry.CmpImm(ir.Ne, present, 0, 32)
	entry.Br(pc, have.Blk(), none.Blk())
	none.Ret(pos)

	expo := have.BinImm(ir.And, flags, 7, 32)
	e1 := have.AddImm(expo, 1, 32)
	one := have.Const(1, 32)
	entries := have.Bin(ir.Shl, one, e1, 32)
	// sum the table bytes (gif2tiff copies local tables too, but into a
	// correctly sized buffer — no seeded bug here)
	sum := fb.NewReg()
	have.ConstTo(sum, 0, 32)
	total := have.BinImm(ir.Mul, entries, 3, 32)
	lp := beginLoop(fb, have, "lct", total)
	b := lp.Body
	v := b.Call("read8", b.Add(pos, lp.I, 32))
	ns := b.Add(sum, v, 32)
	b.MovTo(sum, ns, 32)
	endLoop(lp, b)
	np := lp.After.Add(pos, total, 32)
	lp.After.Ret(np)
}

// --- tiff2rgba breadth ---

// tiffTagSpecs: tag id, maximum legal value (0 = unbounded), default.
var tiffTagSpecs = []struct {
	id  uint64
	max uint64
}{
	{258, 32}, // bits per sample
	{259, 8},  // compression
	{277, 8},  // samples per pixel
	{278, 0},  // rows per strip
	{282, 0},  // x resolution
	{283, 0},  // y resolution
	{284, 2},  // planar configuration
	{296, 3},  // resolution unit
	{317, 2},  // predictor
	{338, 4},  // extra samples
}

// tiffEmitRich registers the tiff2rgba breadth handlers.
func tiffEmitRich(p *ir.Program) {
	tiffValidateTags(p)
	tiffConvertGray(p)
	tiffConvertRGB(p)
	tiffConvertPalette(p)
	tiffConvertCMYK(p)
	tiffConvertYCbCr(p)
	tiffDispatchPhotometric(p)
}

// tiffValidateTags range-checks the well-known tags.
func tiffValidateTags(p *ir.Program) {
	fb := p.NewFunc("tiff_validate_tags", 0)
	entry := fb.NewBlock("entry")
	cur := entry
	for _, spec := range tiffTagSpecs {
		if spec.max == 0 {
			tagc := cur.Const(spec.id, 32)
			cur.Call("tiff_get_tag", tagc)
			continue
		}
		tagc := cur.Const(spec.id, 32)
		v := cur.Call("tiff_get_tag", tagc)
		ok := fb.NewBlock("t.ok")
		warn := fb.NewBlock("t.warn")
		c := cur.CmpImm(ir.Ule, v, spec.max, 32)
		cur.Br(c, ok.Blk(), warn.Blk())
		warn.Print("tag value out of range")
		warn.Jmp(ok.Blk())
		cur = ok
	}
	cur.RetVoid()
}

// conversionLoop emits a per-pixel loop with the supplied body and
// registers it as a function name(w, h).
func conversionLoop(p *ir.Program, name string, bytesPerPixel uint64,
	body func(b *ir.BlockBuilder, acc ir.Reg, px ir.Reg)) {
	fb := p.NewFunc(name, 2)
	entry := fb.NewBlock("entry")
	w, h := fb.Param(0), fb.Param(1)

	acc := fb.NewReg()
	entry.ConstTo(acc, 0, 32)
	area := entry.Mul(w, h, 32)
	// conversions are bounded to the strip that fits the file, like
	// TIFFReadEncodedStrip clamping
	flen := entry.InputLen(32)
	bpp := entry.Const(bytesPerPixel, 32)
	maxPix := entry.Bin(ir.UDiv, flen, bpp, 32)
	clamped := entry.Select(entry.Cmp(ir.Ult, area, maxPix, 32), area, maxPix, 32)

	lp := beginLoop(fb, entry, "px", clamped)
	b := lp.Body
	off := b.BinImm(ir.Mul, lp.I, bytesPerPixel, 32)
	px := b.Call("read8", off)
	body(b, acc, px)
	endLoop(lp, b)
	lp.After.Ret(acc)
}

func tiffConvertGray(p *ir.Program) {
	conversionLoop(p, "convert_gray", 1, func(b *ir.BlockBuilder, acc, px ir.Reg) {
		// WhiteIsZero inverts
		inv := b.BinImm(ir.Xor, px, 0xff, 32)
		na := b.Add(acc, inv, 32)
		b.MovTo(acc, na, 32)
	})
}

func tiffConvertRGB(p *ir.Program) {
	conversionLoop(p, "convert_rgb", 3, func(b *ir.BlockBuilder, acc, px ir.Reg) {
		lum := b.BinImm(ir.Mul, px, 3, 32)
		na := b.Add(acc, lum, 32)
		b.MovTo(acc, na, 32)
	})
}

func tiffConvertPalette(p *ir.Program) {
	conversionLoop(p, "convert_palette", 1, func(b *ir.BlockBuilder, acc, px ir.Reg) {
		// palette lookup stays in bounds: a 256-entry table is allocated
		// per call in real libtiff; here the index is masked correctly
		idx := b.BinImm(ir.And, px, 0xff, 32)
		na := b.Add(acc, idx, 32)
		b.MovTo(acc, na, 32)
	})
}

func tiffConvertCMYK(p *ir.Program) {
	conversionLoop(p, "convert_cmyk", 4, func(b *ir.BlockBuilder, acc, px ir.Reg) {
		k := b.BinImm(ir.Sub, px, 255, 32)
		na := b.Sub(acc, k, 32)
		b.MovTo(acc, na, 32)
	})
}

func tiffConvertYCbCr(p *ir.Program) {
	conversionLoop(p, "convert_ycbcr", 3, func(b *ir.BlockBuilder, acc, px ir.Reg) {
		y := b.BinImm(ir.Mul, px, 298, 32)
		sh := b.BinImm(ir.LShr, y, 8, 32)
		na := b.Add(acc, sh, 32)
		b.MovTo(acc, na, 32)
	})
}

// tiffDispatchPhotometric routes the image through the conversion
// matching the photometric tag (put_cielab keeps the seeded Fig 6 bug).
func tiffDispatchPhotometric(p *ir.Program) {
	fb := p.NewFunc("dispatch_photometric", 3)
	entry := fb.NewBlock("entry")
	photo, w, h := fb.Param(0), fb.Param(1), fb.Param(2)

	white := fb.NewBlock("ph.white")
	black := fb.NewBlock("ph.black")
	rgb := fb.NewBlock("ph.rgb")
	pal := fb.NewBlock("ph.pal")
	cmyk := fb.NewBlock("ph.cmyk")
	ycc := fb.NewBlock("ph.ycc")
	lab := fb.NewBlock("ph.lab")
	unk := fb.NewBlock("ph.unk")
	out := fb.NewBlock("ph.out")

	entry.Switch(photo, []uint64{0, 1, 2, 3, 5, 6, 8},
		[]*ir.Block{white.Blk(), black.Blk(), rgb.Blk(), pal.Blk(), cmyk.Blk(), ycc.Blk(), lab.Blk()},
		unk.Blk())

	white.Call("convert_gray", w, h)
	white.Jmp(out.Blk())
	black.Call("convert_gray", w, h)
	black.Jmp(out.Blk())
	rgb.Call("convert_rgb", w, h)
	rgb.Jmp(out.Blk())
	pal.Call("convert_palette", w, h)
	pal.Jmp(out.Blk())
	cmyk.Call("convert_cmyk", w, h)
	cmyk.Jmp(out.Blk())
	ycc.Call("convert_ycbcr", w, h)
	ycc.Jmp(out.Blk())
	lab.Call("put_cielab", w, h) // seeded bug T2 lives here
	lab.Jmp(out.Blk())
	unk.Print("unknown photometric interpretation")
	unk.Jmp(out.Blk())
	out.RetVoid()
}
