package targets

import "pbse/internal/ir"

// Breadth handlers for minidwarf: a DW_TAG dispatch table, per-form
// attribute decoding, and a line-number program interpreter — the state
// machine that dominates real dwarfdump runs (and a natural trap phase:
// one input-bounded opcode loop).
//
// The header grows line-table fields: bytes 12..13 line_off, 14..15
// line_count (opcode bytes).

// dwarfTags mirrors a slice of the DW_TAG_* table with a "has children
// expected" hint used for a validation branch.
var dwarfTags = []struct {
	id      uint64
	hasKids bool
	weight  uint64
}{
	{0x01, false, 3},  // array_type
	{0x02, true, 5},   // class_type
	{0x04, true, 7},   // enumeration_type
	{0x05, false, 2},  // formal_parameter
	{0x08, false, 4},  // imported_declaration
	{0x0b, true, 6},   // lexical_block
	{0x0d, false, 8},  // member
	{0x0f, false, 1},  // pointer_type
	{0x11, true, 9},   // compile_unit
	{0x13, true, 10},  // structure_type
	{0x16, false, 11}, // typedef
	{0x17, true, 12},  // union_type
	{0x1d, true, 13},  // inlined_subroutine
	{0x24, false, 14}, // base_type
	{0x2e, true, 15},  // subprogram
	{0x34, false, 16}, // variable
}

// dwarfEmitRich registers the breadth handlers.
func dwarfEmitRich(p *ir.Program) {
	dwarfDescribeTag(p)
	dwarfDecodeForm(p)
	dwarfLineProgram(p)
}

// dwarfDescribeTag dispatches on the DIE tag with a per-tag arm and a
// children-expectation check.
func dwarfDescribeTag(p *ir.Program) {
	fb := p.NewFunc("describe_tag", 2)
	entry := fb.NewBlock("entry")
	tag, nchild := fb.Param(0), fb.Param(1)

	ret := fb.NewReg()
	entry.ConstTo(ret, 0, 32)
	def := fb.NewBlock("t.def")
	join := fb.NewBlock("t.join")
	vals := make([]uint64, len(dwarfTags))
	arms := make([]*ir.Block, len(dwarfTags))
	for i, dt := range dwarfTags {
		bb := fb.NewBlock("t.arm")
		vals[i] = dt.id
		arms[i] = bb.Blk()
		v := bb.Const(dt.id*dt.weight, 32)
		if dt.hasKids {
			// container tags usually have children; warn when empty
			warn := fb.NewBlock("t.warn")
			fine := fb.NewBlock("t.fine")
			c := bb.CmpImm(ir.Eq, nchild, 0, 32)
			bb.Br(c, warn.Blk(), fine.Blk())
			warn.Print("container DIE without children")
			warn.MovTo(ret, v, 32)
			warn.Jmp(join.Blk())
			fine.MovTo(ret, v, 32)
			fine.Jmp(join.Blk())
		} else {
			bb.MovTo(ret, v, 32)
			bb.Jmp(join.Blk())
		}
	}
	entry.Switch(tag, vals, arms, def.Blk())
	def.Print("unknown DIE tag")
	def.Jmp(join.Blk())
	join.Ret(ret)
}

// dwarfDecodeForm(form, val) decodes one attribute value per its form:
// data1/2/4, string index, reference, flag, block, sdata — each with a
// distinct computation or validation.
func dwarfDecodeForm(p *ir.Program) {
	fb := p.NewFunc("decode_form", 2)
	entry := fb.NewBlock("entry")
	form, val := fb.Param(0), fb.Param(1)

	ret := fb.NewReg()
	entry.ConstTo(ret, 0, 32)
	join := fb.NewBlock("f.join")
	def := fb.NewBlock("f.def")

	data1 := fb.NewBlock("f.data1")
	data2 := fb.NewBlock("f.data2")
	strx := fb.NewBlock("f.str")
	ref := fb.NewBlock("f.ref")
	flag := fb.NewBlock("f.flag")
	blockF := fb.NewBlock("f.block")
	sdata := fb.NewBlock("f.sdata")

	entry.Switch(form, []uint64{1, 2, 3, 4, 5, 6, 7},
		[]*ir.Block{data1.Blk(), data2.Blk(), strx.Blk(), ref.Blk(), flag.Blk(), blockF.Blk(), sdata.Blk()},
		def.Blk())

	// data1: low byte only
	d1 := data1.BinImm(ir.And, val, 0xff, 32)
	data1.MovTo(ret, d1, 32)
	data1.Jmp(join.Blk())

	// data2: full 16 bits
	data2.MovTo(ret, val, 32)
	data2.Jmp(join.Blk())

	// string index: handled in process_attrs (bug D2 site); count here
	s1 := strx.AddImm(val, 1, 32)
	strx.MovTo(ret, s1, 32)
	strx.Jmp(join.Blk())

	// reference: must point inside the file
	refOK := fb.NewBlock("f.refok")
	refBad := fb.NewBlock("f.refbad")
	n := ref.InputLen(32)
	rc := ref.Cmp(ir.Ult, val, n, 32)
	ref.Br(rc, refOK.Blk(), refBad.Blk())
	refBad.Print("reference outside file")
	refBad.Jmp(join.Blk())
	tv := refOK.Call("read8", val) // chase the reference one hop
	refOK.MovTo(ret, tv, 32)
	refOK.Jmp(join.Blk())

	// flag: 0/1 only
	flagOK := fb.NewBlock("f.flagok")
	flagBad := fb.NewBlock("f.flagbad")
	fc := flag.CmpImm(ir.Ule, val, 1, 32)
	flag.Br(fc, flagOK.Blk(), flagBad.Blk())
	flagBad.Print("non-boolean flag")
	flagBad.Jmp(join.Blk())
	flagOK.MovTo(ret, val, 32)
	flagOK.Jmp(join.Blk())

	// block: length-prefixed region; sum up to 8 bytes
	bsum := fb.NewReg()
	blockF.ConstTo(bsum, 0, 32)
	blen := blockF.BinImm(ir.And, val, 7, 32)
	lp := beginLoop(fb, blockF, "blk", blen)
	bv := lp.Body.Call("read8", lp.Body.Add(val, lp.I, 32))
	nb := lp.Body.Add(bsum, bv, 32)
	lp.Body.MovTo(bsum, nb, 32)
	endLoop(lp, lp.Body)
	lp.After.MovTo(ret, bsum, 32)
	lp.After.Jmp(join.Blk())

	// sdata: zig-zag decode
	mag := sdata.BinImm(ir.LShr, val, 1, 32)
	sgn := sdata.BinImm(ir.And, val, 1, 32)
	neg := fb.NewBlock("f.neg")
	posb := fb.NewBlock("f.pos")
	sc := sdata.CmpImm(ir.Ne, sgn, 0, 32)
	sdata.Br(sc, neg.Blk(), posb.Blk())
	nm := neg.Not(mag, 32)
	neg.MovTo(ret, nm, 32)
	neg.Jmp(join.Blk())
	posb.MovTo(ret, mag, 32)
	posb.Jmp(join.Blk())

	def.Print("unknown form")
	def.Jmp(join.Blk())
	join.Ret(ret)
}

// dwarfLineProgram interprets the line-number opcodes at
// line_off..line_off+line_count: a register state machine with ten
// opcodes, like .debug_line.
func dwarfLineProgram(p *ir.Program) {
	fb := p.NewFunc("line_program", 0)
	entry := fb.NewBlock("entry")

	lineOff := entry.Call("read16", entry.Const(12, 32))
	lineCnt := entry.Call("read16", entry.Const(14, 32))

	pc := fb.NewReg()   // address register
	line := fb.NewReg() // line register
	file := fb.NewReg()
	col := fb.NewReg()
	rows := fb.NewReg()
	pos := fb.NewReg()
	entry.ConstTo(pc, 0, 32)
	entry.ConstTo(line, 1, 32)
	entry.ConstTo(file, 1, 32)
	entry.ConstTo(col, 0, 32)
	entry.ConstTo(rows, 0, 32)
	entry.MovTo(pos, lineOff, 32)
	end := entry.Add(lineOff, lineCnt, 32)

	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	out := fb.NewBlock("out")
	entry.Jmp(head.Blk())
	hc := head.Cmp(ir.Ult, pos, end, 32)
	head.Br(hc, body.Blk(), out.Blk())

	op := body.Call("read8", pos)
	p1 := body.AddImm(pos, 1, 32)

	opEnd := fb.NewBlock("op.end")
	opAdvPC := fb.NewBlock("op.advpc")
	opAdvLine := fb.NewBlock("op.advline")
	opSetFile := fb.NewBlock("op.setfile")
	opConstPC := fb.NewBlock("op.constpc")
	opCopy := fb.NewBlock("op.copy")
	opSetCol := fb.NewBlock("op.setcol")
	opFixedPC := fb.NewBlock("op.fixedpc")
	opReset := fb.NewBlock("op.reset")
	opSpecial := fb.NewBlock("op.special")
	join := fb.NewBlock("op.join")

	body.Switch(op, []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8},
		[]*ir.Block{opEnd.Blk(), opAdvPC.Blk(), opAdvLine.Blk(), opSetFile.Blk(),
			opConstPC.Blk(), opCopy.Blk(), opSetCol.Blk(), opFixedPC.Blk(), opReset.Blk()},
		opSpecial.Blk())

	// 0: end of sequence
	opEnd.Jmp(out.Blk())

	// 1: advance pc by a 16-bit operand
	adv := opAdvPC.Call("read16", p1)
	npc := opAdvPC.Add(pc, adv, 32)
	opAdvPC.MovTo(pc, npc, 32)
	np1 := opAdvPC.AddImm(pos, 3, 32)
	opAdvPC.MovTo(pos, np1, 32)
	opAdvPC.Jmp(head.Blk())

	// 2: advance line by a signed byte
	db := opAdvLine.Call("read8", p1)
	dsx := opAdvLine.Trunc(db, 8)
	ds := opAdvLine.Sext(dsx, 32)
	nl := opAdvLine.Add(line, ds, 32)
	opAdvLine.MovTo(line, nl, 32)
	np2 := opAdvLine.AddImm(pos, 2, 32)
	opAdvLine.MovTo(pos, np2, 32)
	opAdvLine.Jmp(head.Blk())

	// 3: set file (validated non-zero)
	fv := opSetFile.Call("read8", p1)
	fOK := fb.NewBlock("op.fok")
	fBad := fb.NewBlock("op.fbad")
	fc := opSetFile.CmpImm(ir.Ne, fv, 0, 32)
	opSetFile.Br(fc, fOK.Blk(), fBad.Blk())
	fBad.Print("file index zero")
	fBad.Jmp(join.Blk())
	fOK.MovTo(file, fv, 32)
	fOK.Jmp(join.Blk())

	// 4: const add pc
	cp := opConstPC.AddImm(pc, 17, 32)
	opConstPC.MovTo(pc, cp, 32)
	opConstPC.Jmp(join.Blk())

	// 5: copy (emit a row)
	nr := opCopy.AddImm(rows, 1, 32)
	opCopy.MovTo(rows, nr, 32)
	opCopy.Jmp(join.Blk())

	// 6: set column from a 16-bit operand
	cv := opSetCol.Call("read16", p1)
	opSetCol.MovTo(col, cv, 32)
	np6 := opSetCol.AddImm(pos, 3, 32)
	opSetCol.MovTo(pos, np6, 32)
	opSetCol.Jmp(head.Blk())

	// 7: fixed advance pc
	fp := opFixedPC.AddImm(pc, 4, 32)
	opFixedPC.MovTo(pc, fp, 32)
	opFixedPC.Jmp(join.Blk())

	// 8: reset registers
	opReset.ConstTo(pc, 0, 32)
	opReset.ConstTo(line, 1, 32)
	opReset.ConstTo(col, 0, 32)
	opReset.Jmp(join.Blk())

	// >= 9: special opcode: split into line/pc deltas
	adj := opSpecial.BinImm(ir.Sub, op, 9, 32)
	dl := opSpecial.BinImm(ir.URem, adj, 12, 32)
	dp := opSpecial.BinImm(ir.UDiv, adj, 12, 32)
	nls := opSpecial.Add(line, dl, 32)
	opSpecial.MovTo(line, nls, 32)
	nps := opSpecial.Add(pc, dp, 32)
	opSpecial.MovTo(pc, nps, 32)
	nrs := opSpecial.AddImm(rows, 1, 32)
	opSpecial.MovTo(rows, nrs, 32)
	opSpecial.Jmp(join.Blk())

	// single-byte opcodes advance by one
	join.MovTo(pos, p1, 32)
	join.Jmp(head.Blk())

	out.Ret(rows)
}
