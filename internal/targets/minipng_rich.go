package targets

import "pbse/internal/ir"

// Breadth handlers for minipng, mirroring libpng's ancillary-chunk
// readers (png_handle_PLTE, _tRNS, _gAMA, _cHRM, _sRGB, _bKGD, _pHYs,
// _sBIT, _hIST, _zTXt) and the five scanline filter algorithms. Chunk
// type ids continue the minipng numbering: 6 PLTE, 7 tRNS, 8 gAMA,
// 9 cHRM, 10 sRGB, 11 bKGD, 12 pHYs, 13 sBIT, 14 hIST, 15 zTXt.

// pngEmitRich registers the ancillary handlers on p.
func pngEmitRich(p *ir.Program) {
	pngHandlePLTE(p)
	pngHandleTRNS(p)
	pngHandleGAMA(p)
	pngHandleCHRM(p)
	pngHandleSRGB(p)
	pngHandleBKGD(p)
	pngHandlePHYS(p)
	pngHandleSBIT(p)
	pngHandleHIST(p)
	pngHandleZTXT(p)
	pngApplyFilters(p)
}

// pngHandlePLTE validates the palette: length divisible by 3, at most
// 256 entries, and walks the entries accumulating a luminance-ish sum.
func pngHandlePLTE(p *ir.Program) {
	fb := p.NewFunc("handle_plte", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	okMod := fb.NewBlock("okmod")
	badMod := fb.NewBlock("badmod")
	rem := entry.BinImm(ir.URem, dlen, 3, 32)
	mc := entry.CmpImm(ir.Eq, rem, 0, 32)
	entry.Br(mc, okMod.Blk(), badMod.Blk())
	badMod.Print("PLTE length not divisible by 3")
	badMod.RetVoid()

	okCnt := fb.NewBlock("okcnt")
	badCnt := fb.NewBlock("badcnt")
	n := okMod.BinImm(ir.UDiv, dlen, 3, 32)
	cc := okMod.CmpImm(ir.Ule, n, 256, 32)
	okMod.Br(cc, okCnt.Blk(), badCnt.Blk())
	badCnt.Print("too many palette entries")
	badCnt.RetVoid()

	lum := fb.NewReg()
	okCnt.ConstTo(lum, 0, 32)
	lp := beginLoop(fb, okCnt, "pal", n)
	b := lp.Body
	base0 := b.BinImm(ir.Mul, lp.I, 3, 32)
	base := b.Add(doff, base0, 32)
	r := b.Call("read8", base)
	g := b.Call("read8", b.AddImm(base, 1, 32))
	bl := b.Call("read8", b.AddImm(base, 2, 32))
	// 2R + 4G + B, the classic fast luma approximation
	r2 := b.BinImm(ir.Mul, r, 2, 32)
	g4 := b.BinImm(ir.Mul, g, 4, 32)
	s1 := b.Add(r2, g4, 32)
	s2 := b.Add(s1, bl, 32)
	nl := b.Add(lum, s2, 32)
	b.MovTo(lum, nl, 32)
	endLoop(lp, b)
	lp.After.RetVoid()
}

// pngHandleTRNS branches on length (grayscale 2, rgb 6, palette n<=256).
func pngHandleTRNS(p *ir.Program) {
	fb := p.NewFunc("handle_trns", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	gray := fb.NewBlock("gray")
	rgb := fb.NewBlock("rgb")
	pal := fb.NewBlock("pal")
	out := fb.NewBlock("out")
	entry.Switch(dlen, []uint64{2, 6}, []*ir.Block{gray.Blk(), rgb.Blk()}, pal.Blk())

	gray.Call("read16", doff)
	gray.Jmp(out.Blk())

	for k := uint64(0); k < 3; k++ {
		rgb.Call("read16", rgb.AddImm(doff, k*2, 32))
	}
	rgb.Jmp(out.Blk())

	okPal := fb.NewBlock("okpal")
	badPal := fb.NewBlock("badpal")
	pc := pal.CmpImm(ir.Ule, dlen, 256, 32)
	pal.Br(pc, okPal.Blk(), badPal.Blk())
	badPal.Print("tRNS longer than palette")
	badPal.Jmp(out.Blk())
	lp := beginLoop(fb, okPal, "trns", dlen)
	bpos := lp.Body.Add(doff, lp.I, 32)
	lp.Body.Call("read8", bpos)
	endLoop(lp, lp.Body)
	lp.After.Jmp(out.Blk())

	out.RetVoid()
}

// pngHandleGAMA range-checks the gamma value like png_handle_gAMA.
func pngHandleGAMA(p *ir.Program) {
	fb := p.NewFunc("handle_gama", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	okLen := fb.NewBlock("oklen")
	badLen := fb.NewBlock("badlen")
	lc := entry.CmpImm(ir.Uge, dlen, 2, 32)
	entry.Br(lc, okLen.Blk(), badLen.Blk())
	badLen.RetVoid()

	g := okLen.Call("read16", doff)
	zero := fb.NewBlock("zero")
	small := fb.NewBlock("small")
	large := fb.NewBlock("large")
	normal := fb.NewBlock("normal")
	out := fb.NewBlock("out")
	zc := okLen.CmpImm(ir.Eq, g, 0, 32)
	okLen.Br(zc, zero.Blk(), small.Blk())
	zero.Print("gamma zero")
	zero.Jmp(out.Blk())
	sc := small.CmpImm(ir.Ult, g, 16, 32)
	small.Br(sc, large.Blk(), normal.Blk())
	large.Print("gamma implausibly small")
	large.Jmp(out.Blk())
	normal.Jmp(out.Blk())
	out.RetVoid()
}

// pngHandleCHRM reads 8 chromaticity values and validates each.
func pngHandleCHRM(p *ir.Program) {
	fb := p.NewFunc("handle_chrm", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	okLen := fb.NewBlock("oklen")
	badLen := fb.NewBlock("badlen")
	lc := entry.CmpImm(ir.Uge, dlen, 16, 32)
	entry.Br(lc, okLen.Blk(), badLen.Blk())
	badLen.RetVoid()

	cur := okLen
	for k := 0; k < 8; k++ {
		v := cur.Call("read16", cur.AddImm(doff, uint64(k*2), 32))
		ok := fb.NewBlock("c.ok")
		warn := fb.NewBlock("c.warn")
		// chromaticities are fixed-point <= 40000 in real libpng; our
		// 16-bit analogue caps at 40000 too
		vc := cur.CmpImm(ir.Ule, v, 40000, 32)
		cur.Br(vc, ok.Blk(), warn.Blk())
		warn.Print("chromaticity out of range")
		warn.Jmp(ok.Blk())
		cur = ok
	}
	cur.RetVoid()
}

// pngHandleSRGB switches on the rendering intent (4 valid values).
func pngHandleSRGB(p *ir.Program) {
	fb := p.NewFunc("handle_srgb", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)
	_ = dlen

	intent := entry.Call("read8", doff)
	arms := make([]*ir.Block, 4)
	vals := make([]uint64, 4)
	out := fb.NewBlock("out")
	bad := fb.NewBlock("bad")
	for k := 0; k < 4; k++ {
		bb := fb.NewBlock("i.arm")
		vals[k] = uint64(k)
		arms[k] = bb.Blk()
		bb.Jmp(out.Blk())
	}
	entry.Switch(intent, vals, arms, bad.Blk())
	bad.Print("unknown rendering intent")
	bad.Jmp(out.Blk())
	out.RetVoid()
}

// pngHandleBKGD branches on background sample size.
func pngHandleBKGD(p *ir.Program) {
	fb := p.NewFunc("handle_bkgd", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	idx := fb.NewBlock("idx")
	gray := fb.NewBlock("gray")
	rgb := fb.NewBlock("rgb")
	out := fb.NewBlock("out")
	entry.Switch(dlen, []uint64{1, 2, 6},
		[]*ir.Block{idx.Blk(), gray.Blk(), rgb.Blk()}, out.Blk())
	idx.Call("read8", doff)
	idx.Jmp(out.Blk())
	gray.Call("read16", doff)
	gray.Jmp(out.Blk())
	for k := uint64(0); k < 3; k++ {
		rgb.Call("read16", rgb.AddImm(doff, k*2, 32))
	}
	rgb.Jmp(out.Blk())
	out.RetVoid()
}

// pngHandlePHYS validates the unit specifier and aspect ratio.
func pngHandlePHYS(p *ir.Program) {
	fb := p.NewFunc("handle_phys", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	okLen := fb.NewBlock("oklen")
	badLen := fb.NewBlock("badlen")
	lc := entry.CmpImm(ir.Uge, dlen, 5, 32)
	entry.Br(lc, okLen.Blk(), badLen.Blk())
	badLen.RetVoid()

	x := okLen.Call("read16", doff)
	y := okLen.Call("read16", okLen.AddImm(doff, 2, 32))
	unit := okLen.Call("read8", okLen.AddImm(doff, 4, 32))
	okUnit := fb.NewBlock("okunit")
	badUnit := fb.NewBlock("badunit")
	out := fb.NewBlock("out")
	uc := okLen.CmpImm(ir.Ule, unit, 1, 32)
	okLen.Br(uc, okUnit.Blk(), badUnit.Blk())
	badUnit.Print("unknown pHYs unit")
	badUnit.Jmp(out.Blk())
	sq := fb.NewBlock("square")
	nsq := fb.NewBlock("nonsquare")
	qc := okUnit.Cmp(ir.Eq, x, y, 32)
	okUnit.Br(qc, sq.Blk(), nsq.Blk())
	sq.Jmp(out.Blk())
	nsq.Jmp(out.Blk())
	out.RetVoid()
}

// pngHandleSBIT checks each significant-bit field against the depth.
func pngHandleSBIT(p *ir.Program) {
	fb := p.NewFunc("handle_sbit", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	cnt := entry.Select(entry.CmpImm(ir.Ult, dlen, 4, 32), dlen, entry.Const(4, 32), 32)
	lp := beginLoop(fb, entry, "sbit", cnt)
	b := lp.Body
	v := b.Call("read8", b.Add(doff, lp.I, 32))
	ok := fb.NewBlock("sb.ok")
	bad := fb.NewBlock("sb.bad")
	join := fb.NewBlock("sb.join")
	c1 := b.CmpImm(ir.Uge, v, 1, 32)
	c2 := b.CmpImm(ir.Ule, v, 16, 32)
	c := b.Bin(ir.And, c1, c2, 1)
	b.Br(c, ok.Blk(), bad.Blk())
	ok.Jmp(join.Blk())
	bad.Print("invalid significant bits")
	bad.Jmp(join.Blk())
	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)
	lp.After.RetVoid()
}

// pngHandleHIST sums 16-bit histogram entries.
func pngHandleHIST(p *ir.Program) {
	fb := p.NewFunc("handle_hist", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	sum := fb.NewReg()
	entry.ConstTo(sum, 0, 32)
	n := entry.BinImm(ir.LShr, dlen, 1, 32)
	lp := beginLoop(fb, entry, "hist", n)
	b := lp.Body
	o := b.BinImm(ir.Mul, lp.I, 2, 32)
	v := b.Call("read16", b.Add(doff, o, 32))
	ns := b.Add(sum, v, 32)
	b.MovTo(sum, ns, 32)
	endLoop(lp, b)
	lp.After.Ret(sum)
}

// pngHandleZTXT scans for the keyword NUL, checks the compression
// method byte, and runs a toy inflate loop over the remainder.
func pngHandleZTXT(p *ir.Program) {
	fb := p.NewFunc("handle_ztxt", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	// find the keyword terminator
	head := fb.NewBlock("head")
	chk := fb.NewBlock("chk")
	found := fb.NewBlock("found")
	nokey := fb.NewBlock("nokey")
	i := fb.NewReg()
	entry.ConstTo(i, 0, 32)
	entry.Jmp(head.Blk())
	hc := head.Cmp(ir.Ult, i, dlen, 32)
	head.Br(hc, chk.Blk(), nokey.Blk())
	v := chk.Call("read8", chk.Add(doff, i, 32))
	step := fb.NewBlock("step")
	zc := chk.CmpImm(ir.Eq, v, 0, 32)
	chk.Br(zc, found.Blk(), step.Blk())
	ni := step.AddImm(i, 1, 32)
	step.MovTo(i, ni, 32)
	step.Jmp(head.Blk())
	nokey.Print("zTXt keyword unterminated")
	nokey.RetVoid()

	// compression method must be 0
	m0 := fb.NewBlock("m0")
	mbad := fb.NewBlock("mbad")
	mpos := found.AddImm(i, 1, 32)
	mabs := found.Add(doff, mpos, 32)
	meth := found.Call("read8", mabs)
	mc := found.CmpImm(ir.Eq, meth, 0, 32)
	found.Br(mc, m0.Blk(), mbad.Blk())
	mbad.Print("unknown zTXt compression")
	mbad.RetVoid()

	// toy inflate: xor-rolling over the compressed payload
	state := fb.NewReg()
	m0.ConstTo(state, 0x9e, 32)
	rest := m0.Sub(dlen, mpos, 32)
	start := m0.Add(doff, mpos, 32)
	lp := beginLoop(fb, m0, "inf", rest)
	b := lp.Body
	cv := b.Call("read8", b.Add(start, lp.I, 32))
	x := b.Bin(ir.Xor, state, cv, 32)
	rot := b.BinImm(ir.Shl, x, 1, 32)
	hi2 := b.BinImm(ir.LShr, x, 7, 32)
	mix := b.Bin(ir.Or, rot, hi2, 32)
	msk := b.BinImm(ir.And, mix, 0xff, 32)
	b.MovTo(state, msk, 32)
	endLoop(lp, b)
	lp.After.Ret(state)
}

// pngApplyFilters(doff, dlen, bpp) replays the five PNG scanline filter
// algorithms over the IDAT bytes: None, Sub, Up, Average, Paeth — the
// Paeth predictor contributing its three-way comparisons.
func pngApplyFilters(p *ir.Program) {
	fb := p.NewFunc("apply_filters", 2)
	entry := fb.NewBlock("entry")
	doff, dlen := fb.Param(0), fb.Param(1)

	prior := fb.NewReg() // previous reconstructed byte ("left")
	above := fb.NewReg() // stand-in for the byte above
	entry.ConstTo(prior, 0, 32)
	entry.ConstTo(above, 0, 32)

	lp := beginLoop(fb, entry, "flt", dlen)
	b := lp.Body
	raw := b.Call("read8", b.Add(doff, lp.I, 32))
	ftype := b.BinImm(ir.URem, lp.I, 5, 32) // cycle filters per byte

	fNone := fb.NewBlock("f.none")
	fSub := fb.NewBlock("f.sub")
	fUp := fb.NewBlock("f.up")
	fAvg := fb.NewBlock("f.avg")
	fPaeth := fb.NewBlock("f.paeth")
	join := fb.NewBlock("f.join")
	recon := fb.NewReg()

	b.Switch(ftype, []uint64{0, 1, 2, 3},
		[]*ir.Block{fNone.Blk(), fSub.Blk(), fUp.Blk(), fAvg.Blk()}, fPaeth.Blk())

	fNone.MovTo(recon, raw, 32)
	fNone.Jmp(join.Blk())

	sv := fSub.Add(raw, prior, 32)
	sm := fSub.BinImm(ir.And, sv, 0xff, 32)
	fSub.MovTo(recon, sm, 32)
	fSub.Jmp(join.Blk())

	uv := fUp.Add(raw, above, 32)
	um := fUp.BinImm(ir.And, uv, 0xff, 32)
	fUp.MovTo(recon, um, 32)
	fUp.Jmp(join.Blk())

	asum := fAvg.Add(prior, above, 32)
	ahalf := fAvg.BinImm(ir.LShr, asum, 1, 32)
	av := fAvg.Add(raw, ahalf, 32)
	am := fAvg.BinImm(ir.And, av, 0xff, 32)
	fAvg.MovTo(recon, am, 32)
	fAvg.Jmp(join.Blk())

	// Paeth predictor: nearest of left, above, upper-left (0 here)
	pa := fPaeth.Mov(above, 32) // |p - left| with p = left+above-0
	pb := fPaeth.Mov(prior, 32) // |p - above|
	useLeft := fb.NewBlock("f.pleft")
	useAbove := fb.NewBlock("f.pabove")
	pjoin := fb.NewBlock("f.pjoin")
	pred := fb.NewReg()
	pc := fPaeth.Cmp(ir.Ule, pa, pb, 32)
	fPaeth.Br(pc, useLeft.Blk(), useAbove.Blk())
	useLeft.MovTo(pred, prior, 32)
	useLeft.Jmp(pjoin.Blk())
	useAbove.MovTo(pred, above, 32)
	useAbove.Jmp(pjoin.Blk())
	pv := pjoin.Add(raw, pred, 32)
	pm := pjoin.BinImm(ir.And, pv, 0xff, 32)
	pjoin.MovTo(recon, pm, 32)
	pjoin.Jmp(join.Blk())

	join.MovTo(above, prior, 32)
	join.MovTo(prior, recon, 32)
	ni := join.AddImm(lp.I, 1, 32)
	join.MovTo(lp.I, ni, 32)
	join.Jmp(lp.Head)

	lp.After.Ret(prior)
}
