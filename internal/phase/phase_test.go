package phase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbse/internal/analysis"
	"pbse/internal/concolic"
)

func TestKMeansSeparatesWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	// cluster A around (0,0), cluster B around (10,10)
	for i := 0; i < 20; i++ {
		points = append(points, []float64{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 20; i++ {
		points = append(points, []float64{10 + rng.Float64(), 10 + rng.Float64()})
	}
	assign := KMeans(points, 2, rand.New(rand.NewSource(2)), 50)
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("cluster A split: %v", assign[:20])
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatalf("cluster B split: %v", assign[20:])
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("clusters A and B merged")
	}
}

func TestKMeansProperties(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		a1 := KMeans(points, k, rand.New(rand.NewSource(seed+1)), 30)
		a2 := KMeans(points, k, rand.New(rand.NewSource(seed+1)), 30)
		if len(a1) != n {
			return false
		}
		for i := range a1 {
			// valid ids and deterministic
			if a1[i] < 0 || a1[i] >= k || a1[i] != a2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKMeansDegenerate(t *testing.T) {
	if got := KMeans(nil, 3, rand.New(rand.NewSource(1)), 10); got != nil {
		t.Errorf("nil points should return nil, got %v", got)
	}
	// k > n
	points := [][]float64{{1}, {2}}
	assign := KMeans(points, 5, rand.New(rand.NewSource(1)), 10)
	if len(assign) != 2 {
		t.Errorf("assign len = %d", len(assign))
	}
	// k == 1
	assign = KMeans(points, 1, rand.New(rand.NewSource(1)), 10)
	if assign[0] != 0 || assign[1] != 0 {
		t.Errorf("k=1 should assign all to 0: %v", assign)
	}
}

// mkBBVs builds BBVs with the given per-segment block-count maps and
// linearly growing coverage.
func mkBBVs(segments []map[int]int, lens []int, coverages []float64) []concolic.BBV {
	var out []concolic.BBV
	tm := int64(0)
	for s, m := range segments {
		for i := 0; i < lens[s]; i++ {
			tm += 100
			out = append(out, concolic.BBV{
				Index:    len(out),
				Time:     tm,
				Counts:   m,
				Coverage: coverages[s],
			})
		}
	}
	return out
}

func TestDivideTwoObviousPhases(t *testing.T) {
	bbvs := mkBBVs(
		[]map[int]int{{1: 8, 2: 2}, {5: 7, 6: 3}},
		[]int{12, 12},
		[]float64{0.2, 0.5},
	)
	div := Divide(bbvs, DefaultOptions())
	if len(div.Phases) < 2 {
		t.Fatalf("phases = %d, want >= 2", len(div.Phases))
	}
	// the first 12 BBVs should all be one phase, the last 12 another
	p0 := div.Assign[0]
	for i := 1; i < 12; i++ {
		if div.Assign[i] != p0 {
			t.Fatalf("segment 1 split: %v", div.Assign)
		}
	}
	p1 := div.Assign[12]
	if p1 == p0 {
		t.Fatal("segments merged")
	}
	for i := 13; i < 24; i++ {
		if div.Assign[i] != p1 {
			t.Fatalf("segment 2 split: %v", div.Assign)
		}
	}
	// both are long runs: both trap
	if div.NumTrap != 2 {
		t.Errorf("trap phases = %d, want 2", div.NumTrap)
	}
	// order follows first BBV time
	if div.Phases[0].FirstTime >= div.Phases[1].FirstTime {
		t.Error("phases not ordered by first time")
	}
}

// TestCoverageElementFindsMoreTraps reproduces the Fig 4 mechanism: two
// program stages execute the same code mix, but coverage growth differs;
// only the coverage-augmented clustering separates them.
func TestCoverageElementFindsMoreTraps(t *testing.T) {
	bbvs := mkBBVs(
		[]map[int]int{{1: 5, 2: 5}, {1: 5, 2: 5}},
		[]int{15, 15},
		[]float64{0.1, 0.9},
	)
	with := Divide(bbvs, DefaultOptions())
	woOpts := DefaultOptions()
	woOpts.IncludeCoverage = false
	without := Divide(bbvs, woOpts)
	if with.NumTrap <= without.NumTrap {
		t.Errorf("coverage-augmented traps = %d, plain = %d; want more with coverage",
			with.NumTrap, without.NumTrap)
	}
	if with.NumTrap != 2 {
		t.Errorf("coverage-augmented traps = %d, want 2", with.NumTrap)
	}
}

func TestTrapRunLength(t *testing.T) {
	tests := []struct {
		n    int
		frac float64
		want int
	}{
		{100, 0.05, 5},
		{10, 0.05, 2}, // ceil(0.5) = 1, floor is 2
		{200, 0.05, 10},
		{40, 0.1, 4},
	}
	for _, tt := range tests {
		if got := trapRunLength(tt.n, tt.frac); got != tt.want {
			t.Errorf("trapRunLength(%d, %f) = %d, want %d", tt.n, tt.frac, got, tt.want)
		}
	}
}

func TestDispersedClusterIsNotTrap(t *testing.T) {
	// alternate two block mixes every BBV: clusters exist, but no long
	// consecutive run, so neither is a trap phase
	var bbvs []concolic.BBV
	a := map[int]int{1: 10}
	b := map[int]int{9: 10}
	for i := 0; i < 40; i++ {
		m := a
		if i%2 == 1 {
			m = b
		}
		bbvs = append(bbvs, concolic.BBV{Index: i, Time: int64(i+1) * 100, Counts: m, Coverage: 0.5})
	}
	// force k=2: the two clusters alternate every BBV, so no long run
	// exists and neither cluster is a trap phase. (Unrestricted k would
	// pick k=1, whose single all-covering cluster is trivially a trap —
	// consistent with the paper's max-trap-count selection rule.)
	opts := DefaultOptions()
	opts.KMin, opts.KMax = 2, 2
	div := Divide(bbvs, opts)
	if div.NumTrap != 0 {
		t.Errorf("alternating BBVs at k=2 produced %d trap phases, want 0 (runs: %v)",
			div.NumTrap, div.Phases)
	}
}

func TestPhaseOfTime(t *testing.T) {
	bbvs := mkBBVs(
		[]map[int]int{{1: 8}, {5: 7}},
		[]int{10, 10},
		[]float64{0.2, 0.5},
	)
	div := Divide(bbvs, DefaultOptions())
	early := div.PhaseOfTime(bbvs, 50)    // within the first BBV interval
	late := div.PhaseOfTime(bbvs, 1950)   // within the last
	beyond := div.PhaseOfTime(bbvs, 9999) // past the end clamps to last
	if early == late {
		t.Errorf("early and late times map to the same phase")
	}
	if beyond != late {
		t.Errorf("beyond-end time should clamp to last phase")
	}
}

func TestDivideEmpty(t *testing.T) {
	div := Divide(nil, DefaultOptions())
	if len(div.Phases) != 0 || div.NumTrap != 0 {
		t.Errorf("empty input produced %+v", div)
	}
}

func TestVectoriseNormalises(t *testing.T) {
	bbvs := []concolic.BBV{
		{Counts: map[int]int{1: 30, 2: 10}, Coverage: 0.5},
	}
	pts := Vectorise(bbvs, true, 2.0)
	if len(pts) != 1 || len(pts[0]) != 3 {
		t.Fatalf("bad shape: %v", pts)
	}
	sum := pts[0][0] + pts[0][1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("proportions sum = %f, want 1", sum)
	}
	if pts[0][2] != 1.0 { // 0.5 * weight 2
		t.Errorf("coverage element = %f, want 1.0", pts[0][2])
	}
}

func TestDivideDeterminism(t *testing.T) {
	bbvs := mkBBVs(
		[]map[int]int{{1: 8, 2: 2}, {5: 7, 6: 3}, {8: 4, 9: 6}},
		[]int{10, 14, 8},
		[]float64{0.2, 0.5, 0.8},
	)
	d1 := Divide(bbvs, DefaultOptions())
	d2 := Divide(bbvs, DefaultOptions())
	if d1.K != d2.K || d1.NumTrap != d2.NumTrap {
		t.Fatalf("nondeterministic division: k=%d/%d traps=%d/%d", d1.K, d2.K, d1.NumTrap, d2.NumTrap)
	}
	for i := range d1.Assign {
		if d1.Assign[i] != d2.Assign[i] {
			t.Fatalf("assign differs at %d", i)
		}
	}
}

func TestAnnotateStaticHints(t *testing.T) {
	// Blocks 1,2 are inside an input-dependent loop; 5,6 are not.
	hints := &analysis.StaticHints{
		InInputLoop:   []bool{false, true, true, false, false, false, false},
		NumLoops:      1,
		NumInputLoops: 1,
	}
	bbvs := []concolic.BBV{
		{Index: 0, Time: 100, Counts: map[int]int{1: 8, 2: 2}},
		{Index: 1, Time: 200, Counts: map[int]int{5: 7, 6: 3}},
	}
	opts := DefaultOptions()
	opts.KMin, opts.KMax = 2, 2 // force one phase per BBV
	opts.Report = &analysis.Report{Hints: hints}
	div := Divide(bbvs, opts)

	for _, p := range div.Phases {
		for _, bi := range p.BBVs {
			want := 0.0
			if bi == 0 {
				want = 1.0 // all of BBV 0's mass is in blocks 1,2
			}
			if p.InputLoopFrac != want {
				t.Errorf("phase with BBV %d: InputLoopFrac = %f, want %f", bi, p.InputLoopFrac, want)
			}
		}
	}
}

func TestAnnotateStaticNilHints(t *testing.T) {
	bbvs := []concolic.BBV{{Index: 0, Time: 100, Counts: map[int]int{1: 8}}}
	div := Divide(bbvs, DefaultOptions())
	for _, p := range div.Phases {
		if p.InputLoopFrac != 0 {
			t.Errorf("InputLoopFrac without hints = %f, want 0", p.InputLoopFrac)
		}
	}
}
