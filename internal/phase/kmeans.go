// Package phase implements pbSE's phase analysis (§III-B1): normalising
// basic block vectors, augmenting them with code coverage, clustering them
// with k-means, selecting k by trap-phase count, and identifying trap
// phases as long runs of consecutive same-cluster BBVs.
package phase

import "math/rand"

// KMeans clusters points into k groups and returns the assignment
// (point index -> cluster id in [0,k)). Initialisation is k-means++ with
// deterministic randomness from rng. Empty input returns nil.
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return make([]int, n)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	dim := len(points[0])

	centroids := initPlusPlus(points, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, dist2(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := dist2(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// recompute centroids
		counts := make([]int, k)
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// re-seed an empty cluster at a random point
				copy(centroids[c], points[rng.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] /= float64(counts[c])
			}
		}
	}
	return assign
}

// initPlusPlus picks k initial centroids with the k-means++ strategy.
func initPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	first := make([]float64, dim)
	copy(first, points[rng.Intn(n)])
	centroids = append(centroids, first)

	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := dist2(p, centroids[0])
			for _, c := range centroids[1:] {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i := range d2 {
				r -= d2[i]
				if r <= 0 {
					idx = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copy(c, points[idx])
		centroids = append(centroids, c)
	}
	return centroids
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
