package phase

import (
	"math"
	"math/rand"
	"sort"

	"pbse/internal/analysis"
	"pbse/internal/concolic"
)

// Options configure phase division.
type Options struct {
	// KMin/KMax bound the k-means cluster-count search (paper: 1..20).
	KMin, KMax int
	// TrapFraction is the minimum run length of consecutive same-phase
	// BBVs identifying a trap phase, as a fraction of the total number of
	// BBVs (paper: 0.05).
	TrapFraction float64
	// IncludeCoverage appends the running code-coverage fraction to each
	// BBV before clustering (the paper's key addition, Fig 4). Disabling
	// it is the Fig 4(a) ablation.
	IncludeCoverage bool
	// CoverageWeight scales the coverage element relative to the
	// normalised block proportions. Default 1.
	CoverageWeight float64
	// Seed drives the deterministic k-means initialisation.
	Seed int64
	// MaxIter bounds k-means iterations. Default 50.
	MaxIter int
	// Report carries the unified static-analysis results (loop
	// structure, input-dependence hints, abstract-interpretation facts);
	// when set, each phase is annotated with the fraction of its
	// execution mass spent inside statically detected input-dependent
	// loops and the fraction spent in blocks with statically dead
	// out-edges.
	Report *analysis.Report
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{KMin: 1, KMax: 20, TrapFraction: 0.05, IncludeCoverage: true, CoverageWeight: 1, Seed: 1}
}

// Phase is one cluster of BBVs: a program phase.
type Phase struct {
	ID         int
	BBVs       []int // member BBV indices, ascending
	FirstTime  int64 // gather time of the earliest member (ordering key)
	Trap       bool  // contains a long run of consecutive BBVs
	LongestRun int
	// InputLoopFrac is the fraction of this phase's block executions that
	// happened inside statically detected input-dependent loops (0 when no
	// static hints were supplied). Phases dominated by such loops are the
	// static counterpart of the dynamic trap signature.
	InputLoopFrac float64
	// InfeasibleEdgeFrac is the fraction of this phase's block executions
	// spent in blocks with at least one statically proven dead out-edge
	// (0 when the abstract-interpretation pass did not run). A phase
	// whose trap blocks branch mostly one way statically has fewer
	// reachable siblings than its fork count suggests, so the scheduler
	// damps its exploration boost.
	InfeasibleEdgeFrac float64
}

// Division is the result of phase analysis for one concolic run.
type Division struct {
	K       int
	Assign  []int   // BBV index -> phase position in Phases
	Phases  []Phase // ordered by FirstTime
	NumTrap int
}

// TrapPhases returns the trap phases in order.
func (d *Division) TrapPhases() []Phase {
	var out []Phase
	for _, p := range d.Phases {
		if p.Trap {
			out = append(out, p)
		}
	}
	return out
}

// Divide clusters the BBVs into phases per §III-B1: normalise, append the
// coverage element, run k-means for k in [KMin, KMax], keep the k that
// identifies the most trap phases (ties: smallest k).
func Divide(bbvs []concolic.BBV, opts Options) *Division {
	if opts.KMax == 0 {
		opts = mergeDefaults(opts)
	}
	points := Vectorise(bbvs, opts.IncludeCoverage, opts.CoverageWeight)
	n := len(points)
	if n == 0 {
		return &Division{}
	}
	minRun := trapRunLength(n, opts.TrapFraction)

	var best *Division
	for k := opts.KMin; k <= opts.KMax && k <= n; k++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(k)*7919))
		assign := KMeans(points, k, rng, opts.MaxIter)
		div := assemble(bbvs, assign, k, minRun)
		if best == nil || div.NumTrap > best.NumTrap {
			best = div
		}
	}
	annotateStatic(best, bbvs, opts.Report)
	return best
}

// annotateStatic fills Phase.InputLoopFrac and Phase.InfeasibleEdgeFrac
// from the static report: the share of each phase's block-execution mass
// that lies in blocks inside input-dependent loops, and the share in
// blocks with a statically dead out-edge.
func annotateStatic(div *Division, bbvs []concolic.BBV, rep *analysis.Report) {
	if rep == nil || div == nil {
		return
	}
	hints, abs := rep.Hints, rep.Abs
	for i := range div.Phases {
		p := &div.Phases[i]
		var inLoop, deadEdge, total float64
		for _, bi := range p.BBVs {
			for id, c := range bbvs[bi].Counts {
				total += float64(c)
				if hints != nil && id < len(hints.InInputLoop) && hints.InInputLoop[id] {
					inLoop += float64(c)
				}
				if abs.HasDeadEdge(id) {
					deadEdge += float64(c)
				}
			}
		}
		if total > 0 {
			p.InputLoopFrac = inLoop / total
			p.InfeasibleEdgeFrac = deadEdge / total
		}
	}
}

func mergeDefaults(opts Options) Options {
	def := DefaultOptions()
	if opts.KMin == 0 {
		opts.KMin = def.KMin
	}
	if opts.KMax == 0 {
		opts.KMax = def.KMax
	}
	if opts.TrapFraction == 0 {
		opts.TrapFraction = def.TrapFraction
	}
	if opts.CoverageWeight == 0 {
		opts.CoverageWeight = def.CoverageWeight
	}
	return opts
}

// trapRunLength converts the trap fraction into a concrete run length
// (at least 2 BBVs).
func trapRunLength(numBBVs int, frac float64) int {
	if frac <= 0 {
		frac = 0.05
	}
	n := int(math.Ceil(frac * float64(numBBVs)))
	if n < 2 {
		n = 2
	}
	return n
}

// Vectorise converts BBVs into normalised dense vectors, optionally
// appending the weighted coverage element.
func Vectorise(bbvs []concolic.BBV, includeCoverage bool, coverageWeight float64) [][]float64 {
	// collect the union of block ids
	idSet := make(map[int]int)
	for _, b := range bbvs {
		for id := range b.Counts {
			if _, ok := idSet[id]; !ok {
				idSet[id] = len(idSet)
			}
		}
	}
	dim := len(idSet)
	extra := 0
	if includeCoverage {
		extra = 1
	}
	points := make([][]float64, len(bbvs))
	for i, b := range bbvs {
		v := make([]float64, dim+extra)
		total := 0
		for _, c := range b.Counts {
			total += c
		}
		if total > 0 {
			for id, c := range b.Counts {
				v[idSet[id]] = float64(c) / float64(total)
			}
		}
		if includeCoverage {
			v[dim] = b.Coverage * coverageWeight
		}
		points[i] = v
	}
	return points
}

// assemble groups BBVs by cluster, computes trap flags and phase order.
func assemble(bbvs []concolic.BBV, assign []int, k int, minRun int) *Division {
	members := make([][]int, k)
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	// longest run of consecutive same-cluster BBVs per cluster
	longest := make([]int, k)
	run := 0
	for i := range assign {
		if i > 0 && assign[i] == assign[i-1] {
			run++
		} else {
			run = 1
		}
		if run > longest[assign[i]] {
			longest[assign[i]] = run
		}
	}

	var phases []Phase
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		p := Phase{
			BBVs:       members[c],
			FirstTime:  bbvs[members[c][0]].Time,
			Trap:       longest[c] >= minRun,
			LongestRun: longest[c],
		}
		phases = append(phases, p)
	}
	// §III-B3: execution order of phases follows the time of their first
	// BBV (earlier phases have simpler constraints).
	sort.Slice(phases, func(i, j int) bool { return phases[i].FirstTime < phases[j].FirstTime })

	div := &Division{K: k, Assign: make([]int, len(assign))}
	numTrap := 0
	for i := range phases {
		phases[i].ID = i
		if phases[i].Trap {
			numTrap++
		}
		for _, b := range phases[i].BBVs {
			div.Assign[b] = i
		}
	}
	div.Phases = phases
	div.NumTrap = numTrap
	return div
}

// PhaseOfTime returns the phase index whose BBV interval contains the
// given time offset (BBV i covers (prevTime, bbvs[i].Time]); -1 when out
// of range.
func (d *Division) PhaseOfTime(bbvs []concolic.BBV, t int64) int {
	for i, b := range bbvs {
		if t <= b.Time {
			return d.Assign[i]
		}
	}
	if len(bbvs) > 0 {
		return d.Assign[len(bbvs)-1]
	}
	return -1
}

// Shard deals n items round-robin across w shards (shard j gets items
// j, j+w, j+2w, ...), returning the item indices of each shard. The
// work-stealing scheduler uses it to split every phase's seed-state
// frontier across all workers — intra-phase parallelism, where the
// round-barrier scheduler assigned whole phases — so each worker starts
// with a representative cross-section of every phase. The deal is
// deterministic in (n, w).
func Shard(n, w int) [][]int {
	if w < 1 {
		w = 1
	}
	out := make([][]int, w)
	for i := 0; i < n; i++ {
		out[i%w] = append(out[i%w], i)
	}
	return out
}
