package pbse

import (
	"math/rand"
	"testing"

	"pbse/internal/symex"
	"pbse/internal/targets"
)

// TestProfileSmallRun exists for performance work: a small budget run
// that prints solver statistics.
func TestProfileSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling helper")
	}
	tgt, _ := targets.ByDriver("readelf")
	prog, _ := tgt.Build()
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	res, err := Run(prog, seed, Options{Budget: 100_000}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Executor.Solver.Stats()
	t.Logf("covered=%d bugs=%d clock=%d", res.Covered, len(res.Bugs), res.Executor.Clock())
	t.Logf("solver: queries=%d cacheHits=%d candidates=%d intervals=%d satRuns=%d conflicts=%d",
		st.Queries, st.CacheHits, st.CandidateSat, st.IntervalFast, st.SATRuns, st.Conflicts)
}
