package pbse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pbse/internal/store"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// Per-driver budgets and seed sizes keep the kill/resume matrix
// affordable on one core (each cell runs the campaign three times: full,
// interrupted, resumed) while still executing ≥2 scheduler rounds and
// finding bugs, so kill-after-round-1 is a genuine mid-campaign
// interrupt. The whole internal/pbse package must stay under go test's
// default 600s; the existing suite uses most of it.
const (
	readelfBudget = 50_000
	dwarfBudget   = 60_000
	storeSeedSize = 256
)

func runStored(t *testing.T, driver string, budget int64, opts Options) *Result {
	t.Helper()
	tgt, err := targets.ByDriver(driver)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), storeSeedSize)
	opts.Budget = budget
	res, err := Run(prog, seed, opts, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bugIDs(res *Result) []string {
	ids := make([]string, 0, len(res.Bugs))
	for _, b := range res.Bugs {
		ids = append(ids, b.ID())
	}
	sort.Strings(ids)
	return ids
}

// TestResumeDeterminism is the tentpole acceptance check: killing a
// campaign after round 1 and resuming it from the checkpoint must land on
// exactly the coverage, bug-ID set, and per-phase stats of the
// uninterrupted run — for multiple targets and worker counts.
func TestResumeDeterminism(t *testing.T) {
	skipIfShort(t)
	for _, tc := range []struct {
		driver  string
		budget  int64
		workers int
	}{
		{"readelf", readelfBudget, 1},
		{"readelf", readelfBudget, 4},
		{"dwarfdump", dwarfBudget, 1},
		{"dwarfdump", dwarfBudget, 4},
	} {
		tc := tc
		t.Run(tc.driver+"/w"+string(rune('0'+tc.workers)), func(t *testing.T) {
			t.Parallel() // cells are independent; keeps the package under go test's 600s default
			stFull, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			full := runStored(t, tc.driver, tc.budget, Options{
				Workers: tc.workers, Store: stFull, StoreLabel: tc.driver, Deterministic: true,
			})
			if full.Interrupted {
				t.Fatal("uninterrupted run reported Interrupted")
			}
			m, err := stFull.ReadManifest()
			if err != nil || m == nil || m.Status != store.StatusComplete {
				t.Fatalf("full-run manifest = %+v, %v (want complete)", m, err)
			}

			// Kill after one round, in a separate store directory so the
			// warm solver cache cannot contaminate the comparison.
			dir := t.TempDir()
			stKill, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			killed := runStored(t, tc.driver, tc.budget, Options{
				Workers: tc.workers, Store: stKill, StoreLabel: tc.driver, MaxRounds: 1, Deterministic: true,
			})
			if !killed.Interrupted {
				t.Fatal("MaxRounds=1 run not marked Interrupted")
			}
			if m, _ := stKill.ReadManifest(); m == nil || m.Status != store.StatusRunning {
				t.Fatalf("interrupted manifest = %+v (want running)", m)
			}

			// Resume in a fresh Store handle, as a new process would.
			stRes, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			resumed := runStored(t, tc.driver, tc.budget, Options{
				Workers: tc.workers, Store: stRes, StoreLabel: tc.driver, Resume: true, Deterministic: true,
			})
			if !resumed.Resumed {
				t.Fatal("resume run did not report Resumed")
			}
			if resumed.Interrupted {
				t.Fatal("resume run reported Interrupted")
			}

			if full.Covered != resumed.Covered {
				t.Errorf("coverage diverged: full=%d resumed=%d", full.Covered, resumed.Covered)
			}
			if f, r := bugIDs(full), bugIDs(resumed); !reflect.DeepEqual(f, r) {
				t.Errorf("bug IDs diverged:\n full   %v\n resumed %v", f, r)
			}
			if !reflect.DeepEqual(full.PhaseStats, resumed.PhaseStats) {
				t.Errorf("phase stats diverged:\n full   %+v\n resumed %+v", full.PhaseStats, resumed.PhaseStats)
			}
			if full.Gov != resumed.Gov {
				t.Errorf("gov stats diverged: full=%+v resumed=%+v", full.Gov, resumed.Gov)
			}
		})
	}
}

// TestResumeGuards exercises the manifest compatibility checks.
func TestResumeGuards(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runStored(t, "dwarfdump", dwarfBudget, Options{
		Workers: 1, Store: st, StoreLabel: "dwarfdump", MaxRounds: 1,
	})

	tgt, _ := targets.ByDriver("dwarfdump")
	prog, _ := tgt.Build()
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), storeSeedSize)

	// Different seed bytes must be rejected.
	other := append([]byte(nil), seed...)
	other[0] ^= 0xff
	st2, _ := store.Open(dir)
	if _, err := Run(prog, other, Options{Budget: dwarfBudget, Workers: 1, Store: st2, Resume: true},
		symex.Options{InputSize: len(other)}); err == nil {
		t.Error("resume with different seed bytes was accepted")
	}

	// Different budget (part of the options signature) must be rejected.
	st3, _ := store.Open(dir)
	if _, err := Run(prog, seed, Options{Budget: dwarfBudget * 2, Workers: 1, Store: st3, Resume: true},
		symex.Options{InputSize: len(seed)}); err == nil {
		t.Error("resume with different budget was accepted")
	}

	// Resume with empty store must be rejected.
	st4, _ := store.Open(t.TempDir())
	if _, err := Run(prog, seed, Options{Budget: dwarfBudget, Workers: 1, Store: st4, Resume: true},
		symex.Options{InputSize: len(seed)}); err == nil {
		t.Error("resume from empty store was accepted")
	}
}

// TestCrossRunSolverCacheWarm checks the persistent verdict cache: a
// second fresh campaign over the same store must start with the first
// run's verdicts loaded and spend measurably fewer SAT runs.
func TestCrossRunSolverCacheWarm(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run1 := runStored(t, "dwarfdump", dwarfBudget, Options{
		Workers: 1, Store: st1, StoreLabel: "dwarfdump",
	})
	if run1.Store.VerdictsFlushed == 0 {
		t.Fatal("first run flushed no verdicts")
	}

	// New handle = new process: the verdict log is re-read from disk.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run2 := runStored(t, "dwarfdump", dwarfBudget, Options{
		Workers: 1, Store: st2, StoreLabel: "dwarfdump",
	})
	if run2.Store.VerdictsLoaded == 0 {
		t.Fatal("second run loaded no verdicts from disk")
	}
	if run2.SolverStats.SharedHits == 0 {
		t.Error("warm cache produced no shared hits")
	}
	if run2.SolverStats.SATRuns >= run1.SolverStats.SATRuns {
		t.Errorf("warm cache did not reduce SAT runs: run1=%d run2=%d",
			run1.SolverStats.SATRuns, run2.SolverStats.SATRuns)
	}
	// The cache only serves verdicts, never models, so the trajectory must
	// be unchanged.
	if run1.Covered != run2.Covered {
		t.Errorf("warm cache changed coverage: %d vs %d", run1.Covered, run2.Covered)
	}
	if !reflect.DeepEqual(bugIDs(run1), bugIDs(run2)) {
		t.Errorf("warm cache changed bug set: %v vs %v", bugIDs(run1), bugIDs(run2))
	}
}
