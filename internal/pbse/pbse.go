// Package pbse implements the paper's headline contribution: phase-based
// symbolic execution (Algorithms 1 and 3). A run performs concolic
// execution of a seed input to gather BBVs and seedStates, divides the
// execution into phases by clustering coverage-augmented BBVs, and then
// schedules symbolic execution round-robin across phases, moving on when
// a phase stops covering new code within the current (escalating) time
// period.
package pbse

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"pbse/internal/analysis"
	"pbse/internal/analysis/absint"
	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/expr"
	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// Options configure a pbSE run.
type Options struct {
	// Budget is the total virtual-time budget in instructions (concolic
	// execution included, mirroring the paper's accounting where c-time
	// and p-time are reported but small).
	Budget int64
	// TimePeriod is the per-phase time slice for the first turn; turn n
	// uses n*TimePeriod (Algorithm 3 line 15). Default Budget/50.
	TimePeriod int64
	// ConcolicInterval is the BBV gathering interval. Default 4096.
	ConcolicInterval int64
	// PhaseOpts tune the phase division; zero value = paper defaults.
	PhaseOpts phase.Options
	// DisableDedup turns off the §III-B3 seedState deduplication (keep
	// only the earliest seedState per fork point) — an ablation switch.
	DisableDedup bool
	// Sequential disables round-robin phase scheduling (ablation): each
	// phase gets one long slice in order.
	Sequential bool
	// TrapOnly schedules only trap phases (plus the phase containing the
	// earliest seedStates); off by default — the paper tests every phase.
	TrapOnly bool
	// DisableStaticHints skips the static analysis pass entirely — no
	// loop/taint slice boosts and no abstract-interpretation facts — an
	// ablation switch.
	DisableStaticHints bool
	// DisableAbsint keeps the static report (and phase annotation) but
	// withholds the abstract-interpretation facts from the executor: no
	// PreCheck fast path and no edge-map pruning. Scheduling is identical
	// with the switch on or off; only solver traffic differs. This is the
	// control arm of BENCH_absint.
	DisableAbsint bool
	// Seed drives in-phase state selection.
	Seed int64
	// Workers is the number of scheduler workers. Default (0) is
	// runtime.GOMAXPROCS(0). With Workers <= 1 (or Sequential set) the
	// original single-goroutine round-robin runs, bit-for-bit identical
	// to previous releases. With Workers > 1 the default is the
	// work-stealing fast mode (worksteal.go, DESIGN.md §12): every
	// phase's frontier is sharded across all workers, coverage and
	// solver verdicts publish asynchronously, and sibling solver queries
	// are batched — highest throughput, but results depend on goroutine
	// interleaving. Set Deterministic for the reproducible island
	// scheduler instead.
	Workers int
	// Deterministic selects the round-barrier island scheduler for
	// Workers > 1 (parallel.go, DESIGN.md §8): phases run as isolated
	// islands, cross-island observation is deferred to round barriers,
	// and the run's coverage, bugs, and GovStats are a pure function of
	// Seed regardless of worker count or goroutine interleaving — at the
	// cost of capping useful workers at the populated-phase count and
	// idling workers at every barrier. Part of the store options
	// signature: a campaign must be resumed in the mode that started it.
	Deterministic bool
	// Store, when non-nil, persists the campaign: a checkpoint at every
	// scheduler round barrier, the cross-run solver verdict cache, and
	// the bug-reproducer corpus (see internal/store and DESIGN.md §9). A
	// killed run loses at most one round of work.
	Store *store.Store
	// Resume continues from Store's checkpoint instead of starting over,
	// skipping the concolic trace and phase analysis. The store's
	// manifest must match this run's program, seed, and options; it is
	// an error when the store holds no checkpoint.
	Resume bool
	// MaxRounds, when positive, stops this process after it has executed
	// that many scheduler rounds, right after the round's checkpoint is
	// written (Result.Interrupted is set). It is the controlled-interrupt
	// hook for resume tests and CI; the campaign itself continues across
	// processes via Resume.
	MaxRounds int64
	// StoreLabel tags the store manifest (e.g. the target driver name).
	StoreLabel string
	// Supervise, when non-nil with Enabled set, runs the campaign under
	// the fault-isolation supervisor (DESIGN.md §11): island turns are
	// contained by recover boundaries and wall-clock watchdogs, faulting
	// islands retry under exponential backoff with degraded budgets, and
	// store failures are tolerated instead of failing the run. When no
	// fault fires a supervised run is bit-identical to an unsupervised
	// one, so the option is (deliberately) not part of the store's
	// options signature. The sequential ablation scheduler ignores it.
	Supervise *supervise.Options
}

// CoveragePoint is one (virtual time, blocks covered) sample.
type CoveragePoint struct {
	Time    int64
	Covered int
}

// PhaseStat summarises the work done in one phase.
type PhaseStat struct {
	ID          int
	Trap        bool
	SeedStates  int
	Steps       int64
	Turns       int64 // scheduler turns granted to this phase
	NewBlocks   int
	Bugs        int
	Quarantines int // states of this phase terminated by the panic boundary
}

// WorkerStat summarises one worker goroutine's activity in a parallel
// run. Which worker runs which phase turn is decided by a work queue, so
// these counters (unlike coverage, bugs, and GovStats) may vary between
// runs of the same seed.
type WorkerStat struct {
	Worker int
	Turns  int64
	Steps  int64
}

// Result is the outcome of a pbSE run.
type Result struct {
	Covered    int
	CTime      int64         // virtual cost of the concolic step
	PTime      time.Duration // wall time of phase analysis
	Division   *phase.Division
	Concolic   *concolic.Result
	Bugs       []*bugs.Report
	PhaseStats []PhaseStat
	Series     []CoveragePoint
	// Hints are the static-analysis results used to annotate phases (nil
	// when DisableStaticHints was set).
	Hints *analysis.StaticHints
	// Report is the full unified static-analysis report (CFG/loop/taint
	// plus abstract-interpretation facts); nil when DisableStaticHints
	// was set.
	Report *analysis.Report
	// Executor exposes the underlying engine for inspection (coverage
	// sets, solver stats).
	Executor *symex.Executor
	// Gov holds the resource-governance counters for the whole run
	// (solver Unknowns and retries, degradations to concretization,
	// quarantined states, memory-pressure evictions), summed across the
	// main executor and every phase worker.
	Gov symex.GovStats
	// Workers is the effective worker count used for phase scheduling.
	Workers int
	// WorkerStats holds per-worker counters (parallel runs only).
	WorkerStats []WorkerStat
	// SolverStats aggregates solver counters across the main executor and
	// every phase worker's solver.
	SolverStats solver.Stats
	// SharedCache reports cross-worker verdict-cache traffic (zero for
	// single-worker runs, which have no shared cache).
	SharedCache solver.ShardStats
	// Resumed says this run continued from a store checkpoint (concolic
	// trace and phase analysis were loaded, not recomputed).
	Resumed bool
	// Interrupted says the run stopped at Options.MaxRounds with budget
	// remaining; the store holds a checkpoint to resume from.
	Interrupted bool
	// Store holds the persistence counters (zero without Options.Store).
	Store store.Stats
	// Supervised says the campaign ran under the fault-isolation
	// supervisor (Options.Supervise).
	Supervised bool
	// Sup holds the supervision counters: faults contained, turns
	// degraded, states requeued or lost. Includes the carry from earlier
	// processes when the campaign was resumed.
	Sup supervise.SupStats
}

// phasePool is the per-phase state pool driven by Algorithm 3.
type phasePool struct {
	info   phase.Phase
	states []*symex.State
	stat   PhaseStat
}

// sliceBoost scales a phase's round-robin time slice by how much of its
// execution mass sits in statically detected input-dependent loops: a
// phase entirely inside such loops gets a double slice, one with none
// keeps the baseline. The boost is damped by the phase's statically
// infeasible-edge mass — a trap whose branches are mostly proven dead
// has less to explore than its fork count suggests. Mild by design —
// scheduling order is untouched.
func (p *phasePool) sliceBoost() float64 {
	f := clamp01(p.info.InputLoopFrac)
	return (1 + f) * (1 - 0.5*clamp01(p.info.InfeasibleEdgeFrac))
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Run executes pbSE on prog with the given seed input (Algorithm 1 with a
// single selected seed; see §III-B4 for the seed-selection heuristic
// implemented in package targets).
func Run(prog *ir.Program, seed []byte, opts Options, exOpts symex.Options) (*Result, error) {
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("pbse: Budget must be positive")
	}
	if opts.TimePeriod == 0 {
		opts.TimePeriod = opts.Budget / 50
		if opts.TimePeriod < 1 {
			opts.TimePeriod = 1
		}
	}
	if exOpts.InputSize == 0 {
		exOpts.InputSize = len(seed)
	}

	seedBytes := make([]byte, exOpts.InputSize)
	copy(seedBytes, seed)

	// Static analysis runs up front — before any executor exists — so the
	// phase annotation, the result report, and (unless ablated) the
	// executor's static pruning facts all come from the same pass. The
	// report is computed whether or not DisableAbsint is set, so phase
	// scheduling is identical in both configurations; the switch gates
	// only the solver-facing facts.
	if !opts.DisableStaticHints && opts.PhaseOpts.Report == nil {
		opts.PhaseOpts.Report = absint.BuildReport(prog)
	}
	if rep := opts.PhaseOpts.Report; rep != nil && !opts.DisableAbsint && exOpts.Static == nil {
		exOpts.Static = rep.Abs
	}

	camp, err := newCampaign(prog, seedBytes, opts)
	if err != nil {
		return nil, err
	}
	sv := newSupervision(opts, exOpts)
	camp.attachSupervision(sv)
	if camp.enabled() {
		// The persistent verdict cache doubles as the solver's shared
		// tier, so Sat/Unsat facts survive across runs of this store.
		if exOpts.SolverOpts.Shared == nil {
			exOpts.SolverOpts.Shared = camp.cache
		}
		// Chaos runs inject store I/O faults through the same injector
		// the executors use; production runs wire nothing.
		if exOpts.FaultInjector != nil {
			camp.st.SetIOInjector(exOpts.FaultInjector)
		}
		if opts.Resume {
			if !camp.st.HasCheckpoint() {
				return nil, fmt.Errorf("pbse: resume requested but store %q has no checkpoint", camp.st.Dir())
			}
			return resumeRun(prog, seedBytes, opts, exOpts, camp, sv)
		}
		if err := camp.beginFresh(seedBytes); err != nil {
			return nil, err
		}
	}

	// A run headed for the work-stealing scheduler gets batched sibling
	// dispatch on the main executor too, so the serial concolic stage
	// shares the fast pipeline (one slice per terminator, witness solves
	// memoised per site) instead of paying the legacy per-query slicing.
	// W=1, Sequential, and Deterministic runs keep the legacy pipeline
	// untouched — that is the baseline the determinism contract pins.
	if fastWorkers := opts.Workers; !opts.Sequential && !opts.Deterministic &&
		(fastWorkers > 1 || fastWorkers == 0 && runtime.GOMAXPROCS(0) > 1) {
		exOpts.BatchSiblings = true
	}

	ex := symex.NewExecutor(prog, exOpts)
	res := &Result{Executor: ex}

	// the seed input satisfies every prefix of the seed path's
	// constraints; keep it as a standing solver candidate
	ex.Solver.AddCandidate(expr.Assignment{ex.InputArr: append([]byte(nil), seedBytes...)})

	// Pick the BBV interval so the seed path yields enough BBVs for
	// k-means (~48): a concrete dry run measures the path length at
	// native speed.
	if opts.ConcolicInterval == 0 {
		dry := interp.New(prog, seed, interp.Options{MaxSteps: opts.Budget / 2}).Run()
		opts.ConcolicInterval = dry.Steps / 48
		if opts.ConcolicInterval < 64 {
			opts.ConcolicInterval = 64
		}
	}

	// Step 1: concolic execution (Algorithm 2).
	con, err := concolic.Run(ex, seed, concolic.Options{
		Interval: opts.ConcolicInterval,
		MaxSteps: opts.Budget / 2,
	})
	if err != nil {
		return nil, fmt.Errorf("pbse: concolic step: %w", err)
	}
	res.Concolic = con
	res.CTime = con.Steps
	res.Series = append(res.Series, CoveragePoint{Time: ex.Clock(), Covered: ex.NumCovered()})

	// Step 2: phase analysis, annotated from the static report so phases
	// dominated by input-dependent loops can get longer slices (damped by
	// their statically dead-edge mass).
	pStart := time.Now()
	if rep := opts.PhaseOpts.Report; rep != nil {
		res.Report = rep
		res.Hints = rep.Hints
	}
	div := phase.Divide(con.BBVs, opts.PhaseOpts)
	res.PTime = time.Since(pStart)
	res.Division = div

	// Map seedStates to phases by fork time and deduplicate by fork point.
	pools := buildPools(div, con, opts)
	camp.wire(ex, res, con, div, pools)

	// Step 3: phase-scheduled symbolic execution (Algorithm 3).
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	populated := 0
	for _, p := range pools {
		if len(p.states) > 0 {
			populated++
		}
	}
	res.Workers = 1
	rng, src := newCountedRand(opts.Seed + 1)
	switch {
	case opts.Sequential:
		runSequential(ex, pools, opts, rng, res, camp, src, 0)
	case workers <= 1 || (opts.Deterministic && populated < 2) || populated < 1:
		runRoundRobin(ex, pools, opts, rng, res, camp, src, nil, 0, sv)
	case opts.Deterministic:
		// Round-barrier islands: one phase per island, so more workers
		// than populated phases cannot help.
		if workers > populated {
			workers = populated
		}
		res.Workers = workers
		runParallel(prog, ex, pools, seedBytes, workers, opts, exOpts, res, camp, nil, sv)
	default:
		// Work-stealing fast mode: frontiers are sharded across all
		// workers (intra-phase parallelism), so no phase-count cap.
		res.Workers = workers
		runWorkSteal(prog, ex, pools, seedBytes, workers, opts, exOpts, res, camp, nil, sv)
	}

	return finishRun(ex, res, camp, con, div, pools, sv)
}

// finishRun is Run's common tail, shared with the resume path: fold the
// per-pool stats and worker aggregates into res, attribute concolic-era
// bugs to phases, and (for persisted campaigns) write the final manifest
// and reproducers.
func finishRun(ex *symex.Executor, res *Result, camp *campaign,
	con *concolic.Result, div *phase.Division, pools []*phasePool, sv *supervision) (*Result, error) {

	for _, p := range pools {
		res.PhaseStats = append(res.PhaseStats, p.stat)
	}
	res.Covered = ex.NumCovered()
	res.Bugs = ex.Bugs.Reports()
	// runParallel stashes the phase workers' aggregate in res.Gov and
	// res.SolverStats (and the resume path pre-seeds them with the
	// checkpoint's carry); fold in the main executor's share (the whole
	// run, for single-worker schedules).
	gov := ex.Gov()
	gov.Merge(res.Gov)
	res.Gov = gov
	solv := ex.Solver.Stats()
	solv.Accum(res.SolverStats)
	res.SolverStats = solv
	// bugs detected during the concolic step carry no phase yet;
	// attribute them to the phase containing their detection time
	for _, b := range res.Bugs {
		if b.Phase < 0 && b.Time <= con.Start+con.Steps {
			b.Phase = div.PhaseOfTime(con.BBVs, b.Time-con.Start)
		}
	}
	if camp != nil {
		res.Sup = camp.carrySup
	}
	if sv.supervised() {
		res.Supervised = true
		res.Sup.Merge(sv.sup.Stats())
	}
	return res, camp.finish(res)
}

// buildPools assigns seedStates to phases (by the time of their fork
// point) and applies the §III-B3 dedup: keep the earliest seedState per
// fork point.
func buildPools(div *phase.Division, con *concolic.Result, opts Options) []*phasePool {
	pools := make([]*phasePool, len(div.Phases))
	for i, p := range div.Phases {
		pools[i] = &phasePool{info: p, stat: PhaseStat{ID: p.ID, Trap: p.Trap}}
	}
	if len(pools) == 0 {
		return nil
	}

	states := con.SeedStates
	if !opts.DisableDedup {
		earliest := make(map[[2]int]*symex.State)
		for _, s := range states {
			key := [2]int{s.SeedForkBlockID, s.SeedForkIdx}
			if old, ok := earliest[key]; !ok || s.ForkTime < old.ForkTime {
				earliest[key] = s
			}
		}
		dedup := make([]*symex.State, 0, len(earliest))
		for _, s := range states {
			key := [2]int{s.SeedForkBlockID, s.SeedForkIdx}
			if earliest[key] == s {
				dedup = append(dedup, s)
			}
		}
		states = dedup
	}

	for _, s := range states {
		pi := div.PhaseOfTime(con.BBVs, s.ForkTime-con.Start)
		if pi < 0 {
			pi = 0
		}
		pools[pi].states = append(pools[pi].states, s)
		pools[pi].stat.SeedStates++
	}

	if opts.TrapOnly {
		var kept []*phasePool
		for _, p := range pools {
			if p.info.Trap || (len(kept) == 0 && len(p.states) > 0) {
				kept = append(kept, p)
			}
		}
		if len(kept) > 0 {
			pools = kept
		}
	}
	return pools
}

// runRoundRobin is Algorithm 3: cycle phases, escalating the time period
// each full turn, breaking out of a phase once it stops covering new code
// past its slice. A barrier fires at every multiple of the live-phase
// count — there the campaign (if any) checkpoints, and MaxRounds can stop
// the process with the checkpoint already durable. The resume path passes
// the checkpointed live order and turn counter; fresh runs pass (nil, 0).
// Under supervision each turn runs inside the inline recover/ladder
// containment (supervision.turnW1); the kill-round fault fires after a
// full cycle's turns, before that cycle's checkpoint.
func runRoundRobin(ex *symex.Executor, pools []*phasePool, opts Options, rng *rand.Rand,
	res *Result, camp *campaign, src *countedSource, live []*phasePool, startI int64,
	sv *supervision) {

	if live == nil {
		live = make([]*phasePool, 0, len(pools))
		for _, p := range pools {
			if len(p.states) > 0 {
				live = append(live, p)
			}
		}
	}
	i := startI
	lastBarrier := int64(-1)
	var executed int64
	for len(live) > 0 && ex.Clock() < opts.Budget {
		if i%int64(len(live)) == 0 && i != lastBarrier {
			lastBarrier = i
			if i > startI {
				executed++
				camp.bumpRound()
				sv.kill(executed)
			}
			camp.barrierW1(modeRoundRobin, i, live, src)
			if opts.MaxRounds > 0 && executed >= opts.MaxRounds {
				res.Interrupted = true
				return
			}
		}
		phaseNum := int(i % int64(len(live)))
		turnNum := i/int64(len(live)) + 1
		pool := live[phaseNum]
		if len(pool.states) == 0 {
			live = append(live[:phaseNum], live[phaseNum+1:]...)
			continue
		}
		turnStart := ex.Clock()
		slice := int64(float64(turnNum*opts.TimePeriod) * pool.sliceBoost())
		if sv.supervised() {
			sv.turnW1(ex, pool, opts, rng, res, turnStart, slice)
		} else {
			runPhaseTurn(ex, pool, opts, rng, res, func() bool {
				return ex.Clock()-turnStart > slice
			})
		}
		pool.stat.Turns++
		i++
	}
	// Exit checkpoint: resuming a finished campaign reconstructs this
	// position and immediately falls through again.
	camp.barrierW1(modeRoundRobin, i, live, src)
}

// runSequential is the scheduling ablation: each phase once, in order,
// with an equal share of the remaining budget. The barrier (and
// checkpoint) sits before each phase's single slice; NextTurn is the
// index of the phase about to run.
func runSequential(ex *symex.Executor, pools []*phasePool, opts Options, rng *rand.Rand,
	res *Result, camp *campaign, src *countedSource, startIdx int) {

	var executed int64
	for idx := startIdx; idx < len(pools); idx++ {
		pool := pools[idx]
		if len(pool.states) == 0 {
			continue
		}
		camp.barrierW1(modeSequential, int64(idx), seqLive(pools, idx), src)
		if opts.MaxRounds > 0 && executed >= opts.MaxRounds {
			res.Interrupted = true
			return
		}
		remainingPhases := 0
		for _, p := range pools[idx:] {
			if len(p.states) > 0 {
				remainingPhases++
			}
		}
		slice := (opts.Budget - ex.Clock()) / int64(remainingPhases)
		turnStart := ex.Clock()
		runPhaseTurn(ex, pool, opts, rng, res, func() bool {
			return ex.Clock()-turnStart > slice
		})
		pool.stat.Turns++
		executed++
		camp.bumpRound()
		if ex.Clock() >= opts.Budget {
			break
		}
	}
	camp.barrierW1(modeSequential, int64(len(pools)), nil, src)
}

// seqLive lists the not-yet-visited populated pools, for the sequential
// checkpoint's live set.
func seqLive(pools []*phasePool, idx int) []*phasePool {
	var out []*phasePool
	for _, p := range pools[idx:] {
		if len(p.states) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// runPhaseTurn is the inner loop of Algorithm 3 (lines 11-18): step states
// of one phase until the pool drains or the slice expires without new
// coverage.
func runPhaseTurn(ex *symex.Executor, pool *phasePool, opts Options, rng *rand.Rand, res *Result, sliceOver func() bool) {
	for len(pool.states) > 0 && ex.Clock() < opts.Budget {
		// selectState: uniform random among the pool (deterministic rng)
		idx := rng.Intn(len(pool.states))
		st := pool.states[idx]
		if st.Terminated() {
			pool.states[idx] = pool.states[len(pool.states)-1]
			pool.states = pool.states[:len(pool.states)-1]
			continue
		}
		r := ex.StepBlock(st)
		pool.stat.Steps++
		// updateStates: forked states stay in this phase's pool
		pool.states = append(pool.states, r.Added...)
		if r.Terminated {
			if r.Reason == symex.TermQuarantined {
				pool.stat.Quarantines++
			}
			pool.states[idx] = pool.states[len(pool.states)-1]
			pool.states = pool.states[:len(pool.states)-1]
		}
		if r.NewCover {
			pool.stat.NewBlocks++
			res.Series = append(res.Series, CoveragePoint{Time: ex.Clock(), Covered: ex.NumCovered()})
		}
		if r.Bug != nil {
			r.Bug.Phase = pool.info.ID
			pool.stat.Bugs++
		}
		if sliceOver() && !r.NewCover {
			return // Algorithm 3 line 15
		}
	}
}
