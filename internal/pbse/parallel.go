package pbse

// Parallel phase scheduling. Algorithm 3's round-robin over phases is
// embarrassingly parallel — each phase owns its own seedStates and
// frontier — so with Options.Workers > 1 the phases run as isolated
// islands: every phase gets a private symex.Executor (its own
// expr.Context and solver, so the hot paths need no locks), with the
// shared concolic seedStates translated in via expr.Importer. Rounds are
// the unit of synchronization: in one round every live phase runs one
// scheduler turn, distributed over W worker goroutines; at the round
// barrier the coordinator merges newly covered blocks, publishes solver
// verdicts into the sharded cross-worker cache, and broadcasts the
// merged coverage snapshot back to every island — all in phase-ID order,
// a fixed reduction. Because islands only observe each other through
// those barrier merges, the run's coverage, bugs, and GovStats are a
// pure function of opts.Seed, regardless of worker count or goroutine
// interleaving (per-worker counters are the documented exception).

import (
	"math/rand"
	"sync"

	"pbse/internal/expr"
	"pbse/internal/ir"
	"pbse/internal/solver"
	"pbse/internal/store"
	"pbse/internal/symex"
)

// stateIDStride separates the fork-ID ranges of phase islands so state
// IDs stay globally unique (and eviction tiebreaks deterministic).
const stateIDStride = 1 << 20

// roundCache is one island's view of the shared verdict cache. Reads go
// straight to the shared cache; writes are buffered and published by
// the coordinator at the round barrier, in phase order. During a round
// the shared cache is therefore frozen, so what an island observes — and
// hence its whole trajectory — cannot depend on how far other islands
// happened to get first. The shared tier is a plain ShardedCache, or the
// store's persistent cache when the run is checkpointed.
type roundCache struct {
	shared  solver.VerdictCache
	pending []pendingVerdict
}

type pendingVerdict struct {
	key uint64
	r   solver.Result
}

func (c *roundCache) Get(key uint64) (solver.Result, bool) { return c.shared.Get(key) }

func (c *roundCache) Put(key uint64, r solver.Result) {
	if r == solver.Unknown {
		return
	}
	c.pending = append(c.pending, pendingVerdict{key, r})
}

// publish drains the buffered verdicts into the shared cache. Called
// only by the coordinator between rounds.
func (c *roundCache) publish() {
	for _, p := range c.pending {
		c.shared.Put(p.key, p.r)
	}
	c.pending = c.pending[:0]
}

// island is one phase's isolated execution unit: a private executor with
// the phase's translated states, a phase-seeded rng, and the deferred
// cache view.
type island struct {
	pool   *phasePool
	ex     *symex.Executor
	states []*symex.State
	rng    *rand.Rand
	src    *countedSource // rng's draw counter, for checkpointing
	cache  *roundCache
}

// runParallel drives the round-barrier scheduler. ex is the concolic-run
// executor: its coverage seeds every island, and the merged results are
// folded back into it (coverage, bug ledger) so Run's common tail and
// res.Executor behave exactly as in the single-worker schedule. The
// islands' governance and solver aggregates are left in res.Gov and
// res.SolverStats for Run to fold in.
func runParallel(prog *ir.Program, ex *symex.Executor, pools []*phasePool,
	seedBytes []byte, workers int, opts Options, exOpts symex.Options, res *Result,
	camp *campaign, rp *parallelResume) {

	var shared solver.VerdictCache
	if camp.enabled() {
		shared = camp.cache
	} else {
		shared = solver.NewShardedCache()
	}

	var isles []*island
	startRound := int64(1)
	var deadClock int64 // clocks of islands that drained before this process
	if rp != nil {
		isles = rp.isles
		startRound = rp.round
		deadClock = rp.deadClock
	} else {
		baseCover := ex.CoveredBlocks()
		for _, p := range pools {
			if len(p.states) > 0 {
				isles = append(isles, &island{pool: p})
			}
		}

		// Build the islands concurrently: each build touches only its own
		// context (reading the shared seedStates and expression DAG, which
		// no one mutates anymore).
		var wg sync.WaitGroup
		for _, is := range isles {
			wg.Add(1)
			go func(is *island) {
				defer wg.Done()
				buildIsland(prog, ex, is, shared, seedBytes, baseCover, opts, exOpts)
			}(is)
		}
		wg.Wait()
	}

	globalCovered := make([]bool, len(prog.AllBlocks))
	for _, id := range ex.CoveredBlocks() {
		globalCovered[id] = true
	}
	numCovered := ex.NumCovered()

	ws := make([]WorkerStat, workers)
	for i := range ws {
		ws[i].Worker = i
	}

	live := append([]*island(nil), isles...)

	// Global virtual time: the concolic clock plus every island's clock —
	// including islands that drained (their clocks move to deadClock when
	// pruned, and ride the checkpoint across processes). Budget is
	// enforced at round barriers; within a round each island's turn is
	// hard-capped at a fair share of the remaining budget.
	vtime := func() int64 {
		t := ex.Clock() + deadClock
		for _, is := range live {
			t += is.ex.Clock()
		}
		return t
	}

	coveredIDs := func() []int {
		out := make([]int, 0, numCovered)
		for id, c := range globalCovered {
			if c {
				out = append(out, id)
			}
		}
		return out
	}

	// Entry checkpoint: islands are built (or restored), no round has run
	// yet in this process.
	camp.barrierParallel(startRound, isles, live, deadClock, coveredIDs(), ws)

	var executed int64
	for round := startRound; len(live) > 0 && vtime() < opts.Budget; round++ {
		share := (opts.Budget-vtime())/int64(len(live)) + 1

		jobs := make(chan *island)
		var turnWG sync.WaitGroup
		for w := 0; w < workers; w++ {
			turnWG.Add(1)
			go func(w int) {
				defer turnWG.Done()
				for is := range jobs {
					steps := runIslandTurn(is, round, share, opts)
					ws[w].Turns++
					ws[w].Steps += steps
				}
			}(w)
		}
		for _, is := range live {
			jobs <- is
		}
		close(jobs)
		turnWG.Wait()

		// Round barrier: merge new coverage and publish solver verdicts in
		// phase order — the fixed reduction that keeps results independent
		// of which worker ran which turn when.
		var roundNew []int
		for _, is := range live {
			for _, id := range is.ex.CoveredBlocks() {
				if !globalCovered[id] {
					globalCovered[id] = true
					roundNew = append(roundNew, id)
					is.pool.stat.NewBlocks++
				}
			}
			is.cache.publish()
		}
		if len(roundNew) > 0 {
			numCovered += len(roundNew)
			res.Series = append(res.Series, CoveragePoint{Time: vtime(), Covered: numCovered})
			// Broadcast the merged snapshot: an island entering a block
			// another phase covered sees NewCover=false, the same patience
			// signal the sequential scheduler's shared bitmap produces.
			for _, is := range live {
				is.ex.AbsorbCoverage(roundNew)
			}
		}

		var keep []*island
		for _, is := range live {
			if len(is.states) > 0 {
				keep = append(keep, is)
			} else {
				deadClock += is.ex.Clock()
			}
		}
		live = keep

		executed++
		camp.bumpRound()
		camp.barrierParallel(round+1, isles, live, deadClock, coveredIDs(), ws)
		if opts.MaxRounds > 0 && executed >= opts.MaxRounds {
			res.Interrupted = true
			break
		}
	}

	// Final merge into the shared executor and result, in phase order.
	ex.AbsorbCoverage(coveredIDs())
	for _, is := range isles {
		for _, r := range is.ex.Bugs.Reports() {
			ex.Bugs.Add(r)
		}
		res.Gov.Merge(is.ex.Gov())
		res.SolverStats.Accum(is.ex.Solver.Stats())
	}
	res.SharedCache = sharedCacheStats(shared)
	res.WorkerStats = camp.mergeWorkerStats(ws)
}

// sharedCacheStats extracts the in-memory traffic counters from either
// shared-tier implementation.
func sharedCacheStats(v solver.VerdictCache) solver.ShardStats {
	switch c := v.(type) {
	case *solver.ShardedCache:
		return c.Stats()
	case *store.SolverCache:
		return c.MemStats()
	}
	return solver.ShardStats{}
}

// buildIsland constructs one phase's private executor and translates the
// phase's seedStates into it.
func buildIsland(prog *ir.Program, ex *symex.Executor, is *island,
	shared solver.VerdictCache, seedBytes []byte, baseCover []int,
	opts Options, exOpts symex.Options) {

	id := is.pool.info.ID
	po := exOpts
	po.FaultInjector = exOpts.FaultInjector.Child(int64(id)) // nil-safe
	po.SolverOpts.Injector = nil                             // rewired from the child injector
	cache := &roundCache{shared: shared}
	po.SolverOpts.Shared = cache

	pex := symex.NewExecutor(prog, po)
	sb := make([]byte, len(seedBytes))
	copy(sb, seedBytes)
	pex.Solver.AddCandidate(expr.Assignment{pex.InputArr: sb})
	pex.AbsorbCoverage(baseCover)

	im := expr.NewImporter(pex.Ctx, map[*expr.Array]*expr.Array{ex.InputArr: pex.InputArr})
	for _, s := range is.pool.states {
		is.states = append(is.states, pex.ImportState(s, im))
	}
	pex.SetStateIDBase((id + 1) * stateIDStride)

	is.ex = pex
	is.cache = cache
	is.rng, is.src = newCountedRand(opts.Seed + 1 + int64(id)*0x9e3779b9)
}

// runIslandTurn is the parallel counterpart of runPhaseTurn: one
// Algorithm 3 turn over the island's pool, in the island's local virtual
// time. turnNum escalates the slice exactly as the sequential scheduler's
// full-cycle count does; hardCap bounds the turn by the island's fair
// share of the remaining global budget.
func runIslandTurn(is *island, turnNum, hardCap int64, opts Options) int64 {
	pool := is.pool
	slice := int64(float64(turnNum*opts.TimePeriod) * pool.sliceBoost())
	turnStart := is.ex.Clock()
	var steps int64
	for len(is.states) > 0 && is.ex.Clock()-turnStart < hardCap {
		idx := is.rng.Intn(len(is.states))
		st := is.states[idx]
		if st.Terminated() {
			is.states[idx] = is.states[len(is.states)-1]
			is.states = is.states[:len(is.states)-1]
			continue
		}
		r := is.ex.StepBlock(st)
		steps++
		pool.stat.Steps++
		is.states = append(is.states, r.Added...)
		if r.Terminated {
			if r.Reason == symex.TermQuarantined {
				pool.stat.Quarantines++
			}
			is.states[idx] = is.states[len(is.states)-1]
			is.states = is.states[:len(is.states)-1]
		}
		if r.Bug != nil {
			r.Bug.Phase = pool.info.ID
			pool.stat.Bugs++
		}
		if is.ex.Clock()-turnStart > slice && !r.NewCover {
			break // Algorithm 3 line 15
		}
	}
	pool.stat.Turns++
	return steps
}
