package pbse

// Parallel phase scheduling. Algorithm 3's round-robin over phases is
// embarrassingly parallel — each phase owns its own seedStates and
// frontier — so with Options.Workers > 1 the phases run as isolated
// islands: every phase gets a private symex.Executor (its own
// expr.Context and solver, so the hot paths need no locks), with the
// shared concolic seedStates translated in via expr.Importer. Rounds are
// the unit of synchronization: in one round every live phase runs one
// scheduler turn, distributed over W worker goroutines; at the round
// barrier the coordinator merges newly covered blocks, publishes solver
// verdicts into the sharded cross-worker cache, and broadcasts the
// merged coverage snapshot back to every island — all in phase-ID order,
// a fixed reduction. Because islands only observe each other through
// those barrier merges, the run's coverage, bugs, and GovStats are a
// pure function of opts.Seed, regardless of worker count or goroutine
// interleaving (per-worker counters are the documented exception).

import (
	"math/rand"
	"sync"
	"time"

	"pbse/internal/expr"
	"pbse/internal/faultinject"
	"pbse/internal/ir"
	"pbse/internal/solver"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// stateIDStride separates the fork-ID ranges of phase islands so state
// IDs stay globally unique (and eviction tiebreaks deterministic).
const stateIDStride = 1 << 20

// roundCache is one island's view of the shared verdict cache. Reads go
// straight to the shared cache; writes are buffered and published by
// the coordinator at the round barrier, in phase order. During a round
// the shared cache is therefore frozen, so what an island observes — and
// hence its whole trajectory — cannot depend on how far other islands
// happened to get first. The shared tier is a plain ShardedCache, or the
// store's persistent cache when the run is checkpointed.
type roundCache struct {
	shared  solver.VerdictCache
	pending []pendingVerdict
}

type pendingVerdict struct {
	key uint64
	r   solver.Result
}

func (c *roundCache) Get(key uint64) (solver.Result, bool) { return c.shared.Get(key) }

func (c *roundCache) Put(key uint64, r solver.Result) {
	if r == solver.Unknown {
		return
	}
	c.pending = append(c.pending, pendingVerdict{key, r})
}

// publish drains the buffered verdicts into the shared cache. Called
// only by the coordinator between rounds.
func (c *roundCache) publish() {
	for _, p := range c.pending {
		c.shared.Put(p.key, p.r)
	}
	c.pending = c.pending[:0]
}

// island is one phase's isolated execution unit: a private executor with
// the phase's translated states, a phase-seeded rng, and the deferred
// cache view.
type island struct {
	pool   *phasePool
	ex     *symex.Executor
	states []*symex.State
	rng    *rand.Rand
	src    *countedSource // rng's draw counter, for checkpointing
	cache  *roundCache

	// Supervision state (zero on unsupervised runs). Owned by the
	// coordinator and the single worker running the island's turn —
	// except while limbo is non-nil, when an abandoned turn goroutine
	// may still be mutating ex, states, and turnStat: nothing of the
	// island may be read until limbo reports Done (the close of its done
	// channel is the happens-before edge).
	inj         *faultinject.Injector // the island's private fault injector
	turnStat    PhaseStat             // scratch stats of the in-flight turn
	turnSteps   int64                 // steps of the in-flight turn
	preClock    int64                 // executor clock before the turn
	preStates   int                   // pool size before the turn
	limbo       *supervise.Handle     // non-nil while the turn is abandoned
	limboRounds int                   // rounds spent in limbo
	abandoned   bool                  // quarantined while racing; never touched again
}

// runParallel drives the round-barrier scheduler. ex is the concolic-run
// executor: its coverage seeds every island, and the merged results are
// folded back into it (coverage, bug ledger) so Run's common tail and
// res.Executor behave exactly as in the single-worker schedule. The
// islands' governance and solver aggregates are left in res.Gov and
// res.SolverStats for Run to fold in.
func runParallel(prog *ir.Program, ex *symex.Executor, pools []*phasePool,
	seedBytes []byte, workers int, opts Options, exOpts symex.Options, res *Result,
	camp *campaign, rp *parallelResume, sv *supervision) {

	var shared solver.VerdictCache
	if camp.enabled() {
		shared = camp.cache
	} else {
		shared = solver.NewShardedCache()
	}

	var isles []*island
	startRound := int64(1)
	var deadClock int64 // clocks of islands that drained before this process
	if rp != nil {
		isles = rp.isles
		startRound = rp.round
		deadClock = rp.deadClock
	} else {
		baseCover := ex.CoveredBlocks()
		for _, p := range pools {
			if len(p.states) > 0 {
				isles = append(isles, &island{pool: p})
			}
		}

		// Build the islands concurrently: each build touches only its own
		// context (reading the shared seedStates and expression DAG, which
		// no one mutates anymore).
		var wg sync.WaitGroup
		for _, is := range isles {
			wg.Add(1)
			go func(is *island) {
				defer wg.Done()
				buildIsland(prog, ex, is, shared, seedBytes, baseCover, opts, exOpts)
			}(is)
		}
		wg.Wait()
	}

	globalCovered := make([]bool, len(prog.AllBlocks))
	for _, id := range ex.CoveredBlocks() {
		globalCovered[id] = true
	}
	numCovered := ex.NumCovered()

	ws := make([]WorkerStat, workers)
	for i := range ws {
		ws[i].Worker = i
	}

	live := append([]*island(nil), isles...)
	var limbo []*island  // islands whose turn goroutine is abandoned
	var limboClock int64 // their last safely observed clocks
	supOn := sv.supervised()

	// Global virtual time: the concolic clock plus every island's clock —
	// including islands that drained (their clocks move to deadClock when
	// pruned, and ride the checkpoint across processes) and islands in
	// limbo (their racing executors are accounted at the clock last read
	// before the turn). Budget is enforced at round barriers; within a
	// round each island's turn is hard-capped at a fair share of the
	// remaining budget.
	vtime := func() int64 {
		t := ex.Clock() + deadClock + limboClock
		for _, is := range live {
			t += is.ex.Clock()
		}
		return t
	}

	coveredIDs := func() []int {
		out := make([]int, 0, numCovered)
		for id, c := range globalCovered {
			if c {
				out = append(out, id)
			}
		}
		return out
	}

	// reintegrate scans limbo at the top of each round: a turn goroutine
	// that finally returned gives its island back to the live set (in
	// phase-ID order, with a full coverage refresh); one that overstays
	// MaxIslandRestarts rounds takes its island to quarantine for good.
	reintegrate := func() {
		var still []*island
		for _, is := range limbo {
			if is.limbo.Done() {
				limboClock -= is.preClock
				if _, crashed := is.limbo.Crash(); crashed {
					// Crashed after the watchdog had already given up on
					// it; the states survived the contained panic.
					sv.sup.Add(supervise.SupStats{Crashes: 1, RequeuedStates: int64(len(is.states))})
				}
				is.pool.absorbTurnStat(is.turnStat)
				is.limbo = nil
				is.ex.AbsorbCoverage(coveredIDs()) // catch up on missed broadcasts
				live = insertIsland(live, is)
				continue
			}
			is.limboRounds++
			if is.limboRounds > sv.sup.Opts().MaxIslandRestarts {
				sv.sup.Add(supervise.SupStats{
					QuarantinedIslands: 1,
					QuarantinedStates:  int64(is.preStates),
				})
				limboClock -= is.preClock
				deadClock += is.preClock
				is.abandoned = true
				continue
			}
			still = append(still, is)
		}
		limbo = still
	}

	// Entry checkpoint: islands are built (or restored), no round has run
	// yet in this process.
	camp.barrierParallel(startRound, safeIsles(isles), live, deadClock, coveredIDs(), ws)

	var executed int64
	needFinalCk := false
	for round := startRound; len(live)+len(limbo) > 0 && vtime() < opts.Budget; round++ {
		if supOn {
			reintegrate()
		}
		var pre supervise.SupStats
		if supOn {
			pre = sv.sup.Stats()
		}

		if len(live) > 0 {
			share := (opts.Budget-vtime())/int64(len(live)) + 1

			jobs := make(chan *island)
			var turnWG sync.WaitGroup
			for w := 0; w < workers; w++ {
				turnWG.Add(1)
				go func(w int) {
					defer turnWG.Done()
					for is := range jobs {
						var steps int64
						if supOn {
							steps = runSupervisedTurn(is, round, share, opts, sv)
						} else {
							steps = runIslandTurn(is, round, share, 1, &is.pool.stat, opts)
						}
						ws[w].Turns++
						ws[w].Steps += steps
					}
				}(w)
			}
			for _, is := range live {
				jobs <- is
			}
			close(jobs)
			turnWG.Wait()
		} else {
			// Only limbo islands remain; give their goroutines a moment
			// to return before polling again.
			time.Sleep(10 * time.Millisecond)
		}

		// Islands whose turn just hung leave the live set before anyone
		// reads their (racing) executors.
		if supOn {
			var sane []*island
			for _, is := range live {
				if is.limbo != nil {
					limboClock += is.preClock
					limbo = append(limbo, is)
				} else {
					sane = append(sane, is)
				}
			}
			live = sane
		}

		// Kill-round fault: after the round's turns, before its barrier
		// checkpoint, so this round's work is genuinely lost.
		sv.kill(executed + 1)

		// Round barrier: merge new coverage and publish solver verdicts in
		// phase order — the fixed reduction that keeps results independent
		// of which worker ran which turn when.
		var roundNew []int
		for _, is := range live {
			for _, id := range is.ex.CoveredBlocks() {
				if !globalCovered[id] {
					globalCovered[id] = true
					roundNew = append(roundNew, id)
					is.pool.stat.NewBlocks++
				}
			}
			is.cache.publish()
		}
		if len(roundNew) > 0 {
			numCovered += len(roundNew)
			res.Series = append(res.Series, CoveragePoint{Time: vtime(), Covered: numCovered})
			// Broadcast the merged snapshot: an island entering a block
			// another phase covered sees NewCover=false, the same patience
			// signal the sequential scheduler's shared bitmap produces.
			for _, is := range live {
				is.ex.AbsorbCoverage(roundNew)
			}
		}

		var keep []*island
		for _, is := range live {
			if len(is.states) > 0 {
				keep = append(keep, is)
			} else {
				deadClock += is.ex.Clock()
			}
		}
		live = keep

		executed++
		camp.bumpRound()
		interrupting := opts.MaxRounds > 0 && executed >= opts.MaxRounds

		// Checkpoint cadence: every round unless supervision stretches it;
		// any contained fault forces the checkpoint back in (counted when
		// it lands off-cadence), and an interrupt always checkpoints.
		ckDue := true
		if supOn {
			post := sv.sup.Stats()
			faultRound := post.Faults() > pre.Faults()
			if faultRound || post.BackoffSkips > pre.BackoffSkips || len(limbo) > 0 {
				sv.sup.Add(supervise.SupStats{DegradedRounds: 1})
			}
			every := sv.sup.Opts().CheckpointEvery
			onCadence := every <= 1 || executed%every == 0
			ckDue = onCadence || faultRound || interrupting
			if faultRound && !onCadence {
				sv.sup.Add(supervise.SupStats{FaultCheckpoints: 1})
			}
		}
		if ckDue {
			camp.barrierParallel(round+1, safeIsles(isles), live, deadClock, coveredIDs(), ws)
			needFinalCk = false
		} else {
			needFinalCk = true
		}
		if interrupting {
			res.Interrupted = true
			break
		}
	}

	// Drain limbo: give each abandoned turn one generous last chance to
	// return (the injected hang delay is finite; real hangs are bounded
	// by the executor's own interrupt checks). Survivors contribute their
	// coverage and stats like any island; the rest stay quarantined and
	// are excluded from every merge below — their goroutines may still be
	// running.
	if supOn {
		for _, is := range limbo {
			wait := sv.sup.Opts().IslandDeadline + sv.sup.Opts().HangGrace +
				is.inj.Opts().IslandHangDelay + time.Second
			if !is.limbo.Wait(wait) {
				sv.sup.Add(supervise.SupStats{
					QuarantinedIslands: 1,
					QuarantinedStates:  int64(is.preStates),
				})
				is.abandoned = true
				continue
			}
			if _, crashed := is.limbo.Crash(); crashed {
				sv.sup.Add(supervise.SupStats{Crashes: 1})
			}
			is.pool.absorbTurnStat(is.turnStat)
			is.limbo = nil
			for _, id := range is.ex.CoveredBlocks() {
				if !globalCovered[id] {
					globalCovered[id] = true
					numCovered++
					is.pool.stat.NewBlocks++
				}
			}
		}
		limbo = nil
	}
	if needFinalCk {
		camp.barrierParallel(executed+startRound, safeIsles(isles), live, deadClock, coveredIDs(), ws)
	}

	// Final merge into the shared executor and result, in phase order.
	// Abandoned islands are skipped wholesale: their executors may still
	// be racing, and their last turn's work is recorded as lost.
	ex.AbsorbCoverage(coveredIDs())
	for _, is := range isles {
		if is.abandoned {
			continue
		}
		for _, r := range is.ex.Bugs.Reports() {
			ex.Bugs.Add(r)
		}
		res.Gov.Merge(is.ex.Gov())
		res.SolverStats.Accum(is.ex.Solver.Stats())
	}
	res.SharedCache = sharedCacheStats(shared)
	res.WorkerStats = camp.mergeWorkerStats(ws)
}

// sharedCacheStats extracts the in-memory traffic counters from either
// shared-tier implementation.
func sharedCacheStats(v solver.VerdictCache) solver.ShardStats {
	switch c := v.(type) {
	case *solver.ShardedCache:
		return c.Stats()
	case *store.SolverCache:
		return c.MemStats()
	}
	return solver.ShardStats{}
}

// buildIsland constructs one phase's private executor and translates the
// phase's seedStates into it.
func buildIsland(prog *ir.Program, ex *symex.Executor, is *island,
	shared solver.VerdictCache, seedBytes []byte, baseCover []int,
	opts Options, exOpts symex.Options) {

	id := is.pool.info.ID
	po := exOpts
	po.FaultInjector = exOpts.FaultInjector.Child(int64(id)) // nil-safe
	po.SolverOpts.Injector = nil                             // rewired from the child injector
	is.inj = po.FaultInjector
	cache := &roundCache{shared: shared}
	po.SolverOpts.Shared = cache

	pex := symex.NewExecutor(prog, po)
	sb := make([]byte, len(seedBytes))
	copy(sb, seedBytes)
	pex.Solver.AddCandidate(expr.Assignment{pex.InputArr: sb})
	pex.AbsorbCoverage(baseCover)

	im := expr.NewImporter(pex.Ctx, map[*expr.Array]*expr.Array{ex.InputArr: pex.InputArr})
	for _, s := range is.pool.states {
		is.states = append(is.states, pex.ImportState(s, im))
	}
	pex.SetStateIDBase((id + 1) * stateIDStride)

	is.ex = pex
	is.cache = cache
	is.rng, is.src = newCountedRand(opts.Seed + 1 + int64(id)*0x9e3779b9)
}

// runIslandTurn is the parallel counterpart of runPhaseTurn: one
// Algorithm 3 turn over the island's pool, in the island's local virtual
// time. turnNum escalates the slice exactly as the sequential scheduler's
// full-cycle count does; hardCap bounds the turn by the island's fair
// share of the remaining global budget. scale is the supervisor's budget
// haircut (1 on healthy turns — an exact float multiply, so unsupervised
// results are untouched); stat receives the turn's counters, which is
// &pool.stat except for supervised turns, whose scratch stat is merged
// only once the turn goroutine is known dead. The interrupt check makes
// the turn wind down cooperatively when the watchdog trips.
func runIslandTurn(is *island, turnNum, hardCap int64, scale float64, stat *PhaseStat, opts Options) int64 {
	pool := is.pool
	slice := int64(float64(turnNum*opts.TimePeriod) * pool.sliceBoost() * scale)
	turnStart := is.ex.Clock()
	var steps int64
	for len(is.states) > 0 && is.ex.Clock()-turnStart < hardCap && !is.ex.Interrupted() {
		idx := is.rng.Intn(len(is.states))
		st := is.states[idx]
		if st.Terminated() {
			is.states[idx] = is.states[len(is.states)-1]
			is.states = is.states[:len(is.states)-1]
			continue
		}
		r := is.ex.StepBlock(st)
		steps++
		stat.Steps++
		is.states = append(is.states, r.Added...)
		if r.Terminated {
			if r.Reason == symex.TermQuarantined {
				stat.Quarantines++
			}
			is.states[idx] = is.states[len(is.states)-1]
			is.states = is.states[:len(is.states)-1]
		}
		if r.Bug != nil {
			r.Bug.Phase = pool.info.ID
			stat.Bugs++
		}
		if is.ex.Clock()-turnStart > slice && !r.NewCover {
			break // Algorithm 3 line 15
		}
	}
	stat.Turns++
	return steps
}
