package pbse

import (
	"fmt"
	"testing"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// Tests for the work-stealing fast scheduler. The deterministic-mode
// identity gate lives in TestParallelDeterminism (parallel_test.go);
// here we pin the fast mode's weaker but still load-bearing contract:
// whatever order states are stolen and stepped in, no state and no
// coverage may be lost.

// stealSeeds exercises distinct path mixes through phasedIR so a
// scheduling bug that only bites on a particular frontier shape still
// has a chance to fire.
var stealSeeds = [][]byte{
	{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0, 0, 0, 0, 0, 0, 0, 0},
	{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8, 0, 0, 0, 0, 0, 0, 0, 0},
}

// TestStealOrderIndependence is the fast-mode scheduling gate on the
// purpose-built phased program: the 4M budget fully exhausts the 256-path
// frontier, so any worker count must reach at least the W=1 block set and
// bug sites — states may be stepped in any interleaving and migrate
// between workers, but none may vanish. (Bit-identical equality is the
// deterministic mode's contract, checked by TestParallelDeterminism.)
func TestStealOrderIndependence(t *testing.T) {
	for si, seed := range stealSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", si), func(t *testing.T) {
			t.Parallel()
			prog := parsePhased(t)
			run := func(workers int) *Result {
				res, err := Run(prog, seed,
					Options{Budget: 4_000_000, Seed: 5, Workers: workers},
					symex.Options{InputSize: len(seed)})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			base := run(1)
			baseBlocks, baseSites := coverageAndBugs(base)
			baseSet := make(map[int]bool, len(baseBlocks))
			for _, b := range baseBlocks {
				baseSet[b] = true
			}

			for _, w := range []int{2, 8} {
				res := run(w)
				if res.Workers != w {
					t.Fatalf("fast mode capped workers: got %d want %d", res.Workers, w)
				}
				blocks, sites := coverageAndBugs(res)
				missing := 0
				got := make(map[int]bool, len(blocks))
				for _, b := range blocks {
					got[b] = true
				}
				for b := range baseSet {
					if !got[b] {
						missing++
					}
				}
				if missing > 0 {
					t.Errorf("W=%d lost %d of %d W=1 blocks (covered %d)",
						w, missing, len(baseBlocks), len(blocks))
				}
				siteSet := make(map[string]bool, len(sites))
				for _, s := range sites {
					siteSet[s] = true
				}
				for _, s := range baseSites {
					if !siteSet[s] {
						t.Errorf("W=%d missed W=1 bug site %q", w, s)
					}
				}
				var steps int64
				for _, ws := range res.WorkerStats {
					steps += ws.Steps
				}
				if len(res.WorkerStats) != w || steps == 0 {
					t.Errorf("W=%d worker stats empty: %+v", w, res.WorkerStats)
				}
			}
		})
	}
}

// TestWorkStealSupervisedChaos pins supervision on the fast scheduler:
// per-worker crash injection must be contained (not kill the run), be
// counted in SupStats, and still leave real coverage behind.
func TestWorkStealSupervisedChaos(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	prog := parsePhased(t)
	seed := stealSeeds[0]
	inj := faultinject.New(23, faultinject.Options{
		IslandCrashRate: 0.1,
		IslandHangRate:  0.05,
		IslandHangDelay: 250 * time.Millisecond,
	})
	res, err := Run(prog, seed, Options{
		Budget: 4_000_000, Seed: 5, Workers: 4, TimePeriod: 100,
		Supervise: &supervise.Options{
			Enabled:           true,
			IslandDeadline:    50 * time.Millisecond,
			HangGrace:         50 * time.Millisecond,
			MaxIslandRestarts: 50,
		},
	}, symex.Options{InputSize: len(seed), FaultInjector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Supervised {
		t.Fatal("run not marked Supervised")
	}
	if res.Covered == 0 {
		t.Fatal("chaos run covered nothing")
	}
	if res.Sup.Faults() == 0 {
		t.Fatalf("injected faults fired none: %+v", res.Sup)
	}
}

// TestWorkStealSaveResume pins checkpoint/resume on the fast scheduler:
// a MaxRounds=1 run leaves a rendezvous checkpoint behind, and resuming
// it completes the campaign with at least the interrupted coverage.
// (Bit-identity with the uninterrupted run is deliberately NOT claimed —
// that is the deterministic mode's contract, see TestResumeDeterminism.)
func TestWorkStealSaveResume(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	killed := runStored(t, "readelf", readelfBudget, Options{
		Workers: 4, Store: st, StoreLabel: "readelf", MaxRounds: 1,
	})
	if !killed.Interrupted {
		t.Fatal("MaxRounds=1 worksteal run not marked Interrupted")
	}
	if m, _ := st.ReadManifest(); m == nil || m.Status != store.StatusRunning {
		t.Fatalf("interrupted manifest = %+v (want running)", m)
	}

	stRes, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := runStored(t, "readelf", readelfBudget, Options{
		Workers: 4, Store: stRes, StoreLabel: "readelf", Resume: true,
	})
	if !resumed.Resumed {
		t.Fatal("resume run did not report Resumed")
	}
	if resumed.Interrupted {
		t.Fatal("resumed run did not complete")
	}
	if resumed.Covered < killed.Covered {
		t.Fatalf("resume lost coverage: %d < %d at interrupt", resumed.Covered, killed.Covered)
	}
	if m, _ := stRes.ReadManifest(); m == nil || m.Status != store.StatusComplete {
		t.Fatalf("resumed manifest = %+v (want complete)", m)
	}
}
