package pbse

import (
	"testing"
)

// The static analysis runs as part of phase division and must find
// input-dependent loops in every bundled target (they all parse input).
func TestPBSEStaticHintsComputed(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget/4, Options{})
	if res.Hints == nil {
		t.Fatal("static hints missing from result")
	}
	if res.Hints.NumLoops == 0 {
		t.Error("readelf target should contain natural loops")
	}
	if res.Hints.NumInputLoops == 0 {
		t.Error("readelf target should contain input-dependent loops")
	}
	frac := 0.0
	for _, p := range res.Division.Phases {
		if p.InputLoopFrac < 0 || p.InputLoopFrac > 1 {
			t.Errorf("phase %d: InputLoopFrac out of range: %f", p.ID, p.InputLoopFrac)
		}
		frac += p.InputLoopFrac
	}
	if frac == 0 {
		t.Error("no phase carries any input-loop mass")
	}
}

func TestPBSEStaticHintsAblation(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget/4, Options{DisableStaticHints: true})
	if res.Hints != nil {
		t.Error("DisableStaticHints should leave Hints nil")
	}
	for _, p := range res.Division.Phases {
		if p.InputLoopFrac != 0 {
			t.Errorf("ablation run annotated phase %d with %f", p.ID, p.InputLoopFrac)
		}
	}
}
