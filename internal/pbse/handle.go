package pbse

// Handle is the resumable campaign API the serving layer drives. Where
// Run owns a campaign from seed to budget exhaustion in one call, a
// Handle executes the same campaign as a sequence of bounded Step
// calls, each leaving a durable round-barrier checkpoint behind before
// returning. Between Steps the campaign exists only on disk, so a
// process may interleave many campaigns over one worker pool, drop a
// campaign for hours, or die outright — the next Step (in this process
// or another) resumes from the checkpoint.
//
// Determinism: a campaign executed in Steps of any granularity lands on
// exactly the coverage, bug-ID set, phase stats, and governance
// counters of one uninterrupted Run with the same options — each Step
// is a checkpoint/resume cycle, and those are bit-exact (DESIGN.md §9).
// Sharing one persistent verdict cache across many concurrent handles
// keeps this property: shared verdicts only short-circuit solver work,
// never change its answers (store.Root, DESIGN.md §13).

import (
	"fmt"
	"sync"

	"pbse/internal/ir"
	"pbse/internal/symex"
)

// Handle is one resumable campaign bound to a store directory. Methods
// are safe for concurrent use, but Steps serialize: a campaign is a
// single logical thread of execution no matter how many goroutines
// drive it.
type Handle struct {
	prog   *ir.Program
	seed   []byte
	opts   Options
	exOpts symex.Options

	mu   sync.Mutex
	done bool
	last *Result
}

// NewHandle binds a campaign to its store. Options.Store is mandatory —
// a handle is resumable by construction — and MaxRounds/Resume must be
// left zero: the handle owns both (the per-Step round budget and the
// fresh-vs-resume decision, which it makes from the store's state). A
// store already holding this campaign's checkpoint is picked up where
// it left off; even a store whose campaign already completed yields a
// full Result from the first Step — the resume path reconstructs the
// final position and falls straight through.
func NewHandle(prog *ir.Program, seed []byte, opts Options, exOpts symex.Options) (*Handle, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("pbse: NewHandle requires Options.Store")
	}
	if opts.MaxRounds != 0 {
		return nil, fmt.Errorf("pbse: NewHandle owns MaxRounds; pass the per-step round budget to Step")
	}
	if opts.Resume {
		return nil, fmt.Errorf("pbse: NewHandle owns Resume; it decides fresh-vs-resume from the store")
	}
	return &Handle{prog: prog, seed: append([]byte(nil), seed...), opts: opts, exOpts: exOpts}, nil
}

// Step advances the campaign by at most rounds scheduler rounds (0 =
// run to budget exhaustion) and returns the campaign-cumulative Result:
// coverage, bugs, phase stats, and governance counters include all
// rounds ever executed, in this process or any before it. The returned
// Result's Interrupted flag is false exactly when the campaign is
// finished. Stepping a finished campaign is a no-op returning the last
// Result.
func (h *Handle) Step(rounds int64) (*Result, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return h.last, nil
	}
	o := h.opts
	o.MaxRounds = rounds
	o.Resume = o.Store.HasCheckpoint()
	res, err := Run(h.prog, h.seed, o, h.exOpts)
	if err != nil {
		return nil, err
	}
	h.last = res
	h.done = !res.Interrupted
	return res, nil
}

// Done reports whether the campaign has drained its budget. A finished
// campaign's store manifest is marked complete and all Steps are no-ops.
func (h *Handle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// Last returns the Result of the most recent Step (nil before the first).
func (h *Handle) Last() *Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}
