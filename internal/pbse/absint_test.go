package pbse

import "testing"

// The acceptance bar for the static-pruning pass: with the pass on, the
// campaign must avoid some solver work (StaticPrunes > 0, strictly fewer
// SAT-core runs) while exploring the exact same state space — coverage
// and the bug set are bit-identical with the pass on or off.
func TestAbsintPrunesWithoutChangingResults(t *testing.T) {
	skipIfShort(t)
	for _, driver := range []string{"readelf", "gif2tiff"} {
		driver := driver
		t.Run(driver, func(t *testing.T) {
			on := runPBSE(t, driver, testBudget/2, Options{})
			off := runPBSE(t, driver, testBudget/2, Options{DisableAbsint: true})

			// the Sat verdict of PreCheck assumes path conditions stay
			// solver-validated; both arms must be free of degraded queries
			// for the bit-identity comparison to be meaningful
			if on.Gov.SolverUnknowns != 0 || off.Gov.SolverUnknowns != 0 {
				t.Fatalf("solver Unknowns present (on=%d off=%d); comparison void",
					on.Gov.SolverUnknowns, off.Gov.SolverUnknowns)
			}

			if on.SolverStats.StaticPrunes == 0 {
				t.Errorf("pass enabled but StaticPrunes = 0")
			}
			if off.SolverStats.StaticPrunes != 0 {
				t.Errorf("pass disabled but StaticPrunes = %d", off.SolverStats.StaticPrunes)
			}
			if on.SolverStats.SATRuns >= off.SolverStats.SATRuns {
				t.Errorf("SAT-core runs with pass = %d, without = %d; want strictly fewer",
					on.SolverStats.SATRuns, off.SolverStats.SATRuns)
			}

			if on.Covered != off.Covered {
				t.Errorf("coverage differs: on=%d off=%d", on.Covered, off.Covered)
			}
			onIDs, offIDs := bugIDs(on), bugIDs(off)
			if len(onIDs) != len(offIDs) {
				t.Fatalf("bug sets differ in size: on=%v off=%v", onIDs, offIDs)
			}
			for i := range onIDs {
				if onIDs[i] != offIDs[i] {
					t.Fatalf("bug sets differ: on=%v off=%v", onIDs, offIDs)
				}
			}

			// the unified report rides on the result in both configurations
			// (DisableAbsint only gates the executor's use of it)
			if on.Report == nil || on.Report.Abs == nil {
				t.Error("enabled run missing analysis report")
			}
			if off.Report == nil || off.Report.Abs == nil {
				t.Error("control run missing analysis report (annotation must not depend on the switch)")
			}
		})
	}
}

// Phase annotation must populate InfeasibleEdgeFrac from the report, and
// identically in both configurations (the control arm's schedule may not
// drift, or the on/off comparison stops being apples to apples).
func TestAbsintPhaseAnnotationIdentical(t *testing.T) {
	skipIfShort(t)
	on := runPBSE(t, "readelf", testBudget/4, Options{})
	off := runPBSE(t, "readelf", testBudget/4, Options{DisableAbsint: true})
	if len(on.Division.Phases) != len(off.Division.Phases) {
		t.Fatalf("phase counts differ: on=%d off=%d",
			len(on.Division.Phases), len(off.Division.Phases))
	}
	for i := range on.Division.Phases {
		po, pf := on.Division.Phases[i], off.Division.Phases[i]
		if po.InfeasibleEdgeFrac != pf.InfeasibleEdgeFrac {
			t.Errorf("phase %d: InfeasibleEdgeFrac on=%f off=%f", i,
				po.InfeasibleEdgeFrac, pf.InfeasibleEdgeFrac)
		}
		if po.InfeasibleEdgeFrac < 0 || po.InfeasibleEdgeFrac > 1 {
			t.Errorf("phase %d: InfeasibleEdgeFrac out of range: %f", i, po.InfeasibleEdgeFrac)
		}
	}
}
