package pbse

// Campaign persistence (see internal/store and DESIGN.md §9). A campaign
// wraps one pbSE run's connection to a store directory: it writes a
// checkpoint at every scheduler round barrier, flushes the persistent
// solver verdict cache, and maintains the manifest and bug-reproducer
// corpus. The resume path rebuilds the executors (and, for parallel
// runs, the phase islands) from the checkpoint instead of re-running
// concolic tracing and phase analysis.
//
// All campaign methods are nil-safe: a run without Options.Store carries
// a nil *campaign and every hook is a no-op, keeping the schedulers'
// hot paths free of store conditionals.

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/expr"
	"pbse/internal/ir"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// Scheduler modes recorded in checkpoints.
const (
	modeRoundRobin = "roundrobin"
	modeSequential = "sequential"
	modeParallel   = "parallel"
	modeWorkSteal  = "worksteal"
)

// countedSource wraps the deterministic rand source with a draw counter,
// so a resumed run can fast-forward its rng to the checkpointed position.
// Every rand.Rand operation the schedulers use (Intn) costs exactly one
// source draw, and wrapping does not perturb the stream: rand.Rand takes
// the same Source64 path either way.
type countedSource struct {
	src   rand.Source64
	draws int64
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countedSource) Seed(s int64) { c.src.Seed(s) }

// skip advances the underlying stream n draws without counting them
// (they were already counted in the run being resumed).
func (c *countedSource) skip(n int64) {
	for i := int64(0); i < n; i++ {
		c.src.Int63()
	}
	c.draws = n
}

func newCountedRand(seed int64) (*rand.Rand, *countedSource) {
	src := &countedSource{src: rand.NewSource(seed).(rand.Source64)}
	return rand.New(src), src
}

// campaign is the persistence context of one Run (nil when no store).
type campaign struct {
	st    *store.Store
	cache *store.SolverCache
	opts  Options

	manifest *store.Manifest

	// carry* hold the aggregate counters of all work done before this
	// process (zero for fresh runs); barrier checkpoints store carry +
	// this process's counters.
	carryGov     symex.GovStats
	carrySolver  solver.Stats
	carryWorkers []store.WorkerStat
	carrySup     supervise.SupStats

	// sv is the run's supervision context (nil when unsupervised).
	// Supervised campaigns tolerate store failures — logged and counted
	// in SupStats.StoreFaults — instead of surfacing them from Run.
	sv *supervision

	roundsDone int64

	// wired refs for checkpoint building
	ex    *symex.Executor
	res   *Result
	con   *concolic.Result
	div   *phase.Division
	pools []*phasePool

	err error // first store failure; surfaced by finish
}

// newCampaign opens the run's store connection, or returns nil when no
// store is configured.
func newCampaign(prog *ir.Program, seedBytes []byte, opts Options) (*campaign, error) {
	if opts.Store == nil {
		return nil, nil
	}
	cache, err := opts.Store.SolverCache()
	if err != nil {
		return nil, err
	}
	return &campaign{
		st:    opts.Store,
		cache: cache,
		opts:  opts,
		manifest: &store.Manifest{
			Label:      opts.StoreLabel,
			Program:    programSig(prog),
			SeedSHA256: store.SeedSig(seedBytes),
			InputSize:  len(seedBytes),
			OptionsSig: optionsSig(opts),
			Status:     store.StatusRunning,
		},
	}, nil
}

func (c *campaign) enabled() bool { return c != nil && c.st != nil }

func (c *campaign) fail(err error) {
	if c.sv.supervised() {
		log.Printf("pbse: store failure tolerated: %v", err)
		c.sv.sup.Add(supervise.SupStats{StoreFaults: 1})
		return
	}
	if c.err == nil {
		c.err = err
	}
}

// attachSupervision hands the campaign the run's supervision context
// (before any barrier can fire).
func (c *campaign) attachSupervision(sv *supervision) {
	if c != nil {
		c.sv = sv
	}
}

// supTotal is the supervision carry plus this process's live counters —
// what barrier checkpoints persist as CarrySup.
func (c *campaign) supTotal() supervise.SupStats {
	s := c.carrySup
	if c.sv.supervised() {
		s.Merge(c.sv.sup.Stats())
	}
	return s
}

// beginFresh marks the store as owned by this campaign before any work
// runs, saving the seed so replays and audits can reconstruct the run.
func (c *campaign) beginFresh(seedBytes []byte) error {
	if err := c.st.WriteSeed(seedBytes); err != nil {
		return err
	}
	return c.st.WriteManifest(c.manifest)
}

// wire hands the campaign the objects the barrier checkpoints read.
func (c *campaign) wire(ex *symex.Executor, res *Result, con *concolic.Result,
	div *phase.Division, pools []*phasePool) {
	if c == nil {
		return
	}
	c.ex = ex
	c.res = res
	c.con = con
	c.div = div
	c.pools = pools
}

func (c *campaign) bumpRound() {
	if c != nil {
		c.roundsDone++
	}
}

// base builds the checkpoint fields common to every scheduler.
func (c *campaign) base(mode string) *store.Checkpoint {
	ck := &store.Checkpoint{
		Mode:        mode,
		RoundsDone:  c.roundsDone,
		NextStateID: c.ex.NextStateID(),
		Clock:       c.ex.Clock(),
		CTime:       c.res.CTime,
		PTimeNanos:  int64(c.res.PTime),
		ConStart:    c.con.Start,
		ConSteps:    c.con.Steps,
		ConExited:   c.con.Exited,
		BBVs:        c.con.BBVs,
		Division:    c.div,
	}
	for _, p := range c.res.Series {
		ck.Series = append(ck.Series, store.CoveragePoint{Time: p.Time, Covered: p.Covered})
	}
	for _, p := range c.pools {
		s := p.stat
		ck.PhaseStats = append(ck.PhaseStats, store.PhaseStat{
			ID: s.ID, Trap: s.Trap, SeedStates: s.SeedStates, Steps: s.Steps,
			Turns: s.Turns, NewBlocks: s.NewBlocks, Bugs: s.Bugs, Quarantines: s.Quarantines,
		})
	}
	return ck
}

// persist writes the checkpoint and its companions: solver verdicts are
// flushed to the cross-run cache, new bug reproducers enter the corpus,
// and the manifest records progress. Store failures do not stop the
// campaign — the first one is remembered and surfaced when Run returns.
func (c *campaign) persist(ck *store.Checkpoint) {
	if err := c.st.WriteCheckpoint(ck); err != nil {
		c.fail(err)
		return
	}
	if err := c.cache.Flush(); err != nil {
		c.fail(err)
	}
	for _, b := range ck.Bugs {
		if _, err := c.st.AddReproducer(b); err != nil {
			c.fail(err)
		}
	}
	c.manifest.Rounds = c.roundsDone
	c.manifest.Covered = len(ck.Covered)
	c.manifest.Bugs = len(ck.Bugs)
	if err := c.st.WriteManifest(c.manifest); err != nil {
		c.fail(err)
	}
}

// barrierW1 checkpoints a single-worker scheduler at a round barrier:
// one state section holding every populated pool, plus the scheduler
// position (nextTurn, rng draws, live order).
func (c *campaign) barrierW1(mode string, nextTurn int64, live []*phasePool, src *countedSource) {
	if !c.enabled() {
		return
	}
	ck := c.base(mode)
	ck.NextTurn = nextTurn
	ck.RNGDraws = src.draws
	ck.Covered = c.ex.CoveredBlocks()
	ck.Bugs = c.ex.Bugs.Reports()
	ck.Quarantine = c.ex.QuarantineRecords()
	gov := c.carryGov
	gov.Merge(c.ex.Gov())
	ck.CarryGov = gov
	sol := c.carrySolver
	sol.Accum(c.ex.Solver.Stats())
	ck.CarrySolver = sol
	ck.CarryWorkers = c.carryWorkers
	ck.CarrySup = c.supTotal()
	for _, p := range live {
		ck.LiveIDs = append(ck.LiveIDs, p.info.ID)
	}
	var sec store.StateSection
	for _, p := range c.pools {
		if len(p.states) == 0 {
			continue
		}
		l := store.StateList{PhaseID: p.info.ID}
		for _, s := range p.states {
			l.States = append(l.States, c.ex.Snapshot(s))
		}
		sec.Lists = append(sec.Lists, l)
	}
	ck.Sections = []store.StateSection{sec}
	c.persist(ck)
}

// barrierParallel checkpoints the round-barrier scheduler: one state
// section per live island (with its clock, rng draws, and fork-ID
// position), and carry aggregates covering every island ever built —
// pruned islands keep contributing their bugs and counters even though
// their states are gone.
func (c *campaign) barrierParallel(nextRound int64, isles, live []*island,
	deadClock int64, covered []int, ws []WorkerStat) {
	if !c.enabled() {
		return
	}
	ck := c.base(modeParallel)
	ck.NextTurn = nextRound
	ck.DeadClock = deadClock
	ck.Covered = covered

	col := bugs.NewCollector()
	for _, r := range c.ex.Bugs.Reports() {
		col.Add(r)
	}
	gov := c.carryGov
	gov.Merge(c.ex.Gov())
	sol := c.carrySolver
	sol.Accum(c.ex.Solver.Stats())
	ck.Quarantine = append([]symex.QuarantineRecord(nil), c.ex.QuarantineRecords()...)
	for _, is := range isles {
		for _, r := range is.ex.Bugs.Reports() {
			col.Add(r)
		}
		gov.Merge(is.ex.Gov())
		sol.Accum(is.ex.Solver.Stats())
		ck.Quarantine = append(ck.Quarantine, is.ex.QuarantineRecords()...)
	}
	ck.Bugs = col.Reports()
	ck.CarryGov = gov
	ck.CarrySolver = sol
	ck.CarryWorkers = mergeWorkerCarry(c.carryWorkers, ws)
	ck.CarrySup = c.supTotal()

	for _, is := range live {
		ck.LiveIDs = append(ck.LiveIDs, is.pool.info.ID)
		l := store.StateList{
			PhaseID:     is.pool.info.ID,
			Clock:       is.ex.Clock(),
			RNGDraws:    is.src.draws,
			NextStateID: is.ex.NextStateID(),
		}
		for _, s := range is.states {
			l.States = append(l.States, is.ex.Snapshot(s))
		}
		// The island's private ledger: its per-phase bug counter only
		// advances on sites new to this island, so resume must restore
		// exactly this set (not the merged ck.Bugs) to keep counting
		// identical.
		l.Bugs = is.ex.Bugs.Reports()
		ck.Sections = append(ck.Sections, store.StateSection{Lists: []store.StateList{l}})
	}
	c.persist(ck)
}

// barrierWorkSteal checkpoints the work-stealing scheduler at a
// rendezvous: every active worker is parked (or exited), so all their
// executors are quiescent. One state section per worker still holding
// states, with a list per populated phase shard; states are re-dealt on
// resume, so no per-worker clocks or rng positions are recorded — the
// workers' total virtual time rides in DeadClock and the coverage
// board's position in Epoch (checkpoint format v3). Abandoned workers
// are excluded: their executors may still be racing a runaway turn.
func (c *campaign) barrierWorkSteal(sh *wsShared) {
	if !c.enabled() {
		return
	}
	ck := c.base(modeWorkSteal)
	ck.NextTurn = sh.rounds
	ck.DeadClock = sh.vtime() - c.ex.Clock()
	ck.Epoch = sh.board.epoch.Load()
	ck.Covered = sh.board.snapshot()

	col := bugs.NewCollector()
	for _, r := range c.ex.Bugs.Reports() {
		col.Add(r)
	}
	gov := c.carryGov
	gov.Merge(c.ex.Gov())
	sol := c.carrySolver
	sol.Accum(c.ex.Solver.Stats())
	ck.Quarantine = append([]symex.QuarantineRecord(nil), c.ex.QuarantineRecords()...)

	// The main executor's PhaseStats miss the workers' scratch counters
	// (they merge into the pools only when the run ends); fold them in
	// here so the checkpointed stats match what a finished run reports.
	ck.PhaseStats = ck.PhaseStats[:0]
	merged := make([]PhaseStat, len(c.pools))
	for i, p := range c.pools {
		merged[i] = p.stat
	}
	ws := make([]WorkerStat, 0, len(sh.workers))
	liveID := make(map[int]bool)
	var maxNextID int
	for _, w := range sh.workers {
		if w.abandoned.Load() {
			continue
		}
		ws = append(ws, w.stats)
		for _, r := range w.ex.Bugs.Reports() {
			col.Add(r)
		}
		gov.Merge(w.ex.Gov())
		sol.Accum(w.ex.Solver.Stats())
		ck.Quarantine = append(ck.Quarantine, w.ex.QuarantineRecords()...)
		if n := w.ex.NextStateID(); n > maxNextID {
			maxNextID = n
		}
		for pi := range merged {
			s := w.pstats[pi]
			merged[pi].Steps += s.Steps
			merged[pi].Turns += s.Turns
			merged[pi].NewBlocks += s.NewBlocks
			merged[pi].Bugs += s.Bugs
			merged[pi].Quarantines += s.Quarantines
		}
	}
	for _, s := range merged {
		ck.PhaseStats = append(ck.PhaseStats, store.PhaseStat{
			ID: s.ID, Trap: s.Trap, SeedStates: s.SeedStates, Steps: s.Steps,
			Turns: s.Turns, NewBlocks: s.NewBlocks, Bugs: s.Bugs, Quarantines: s.Quarantines,
		})
	}
	if maxNextID > ck.NextStateID {
		ck.NextStateID = maxNextID
	}
	ck.Bugs = col.Reports()
	ck.CarryGov = gov
	ck.CarrySolver = sol
	ck.CarryWorkers = mergeWorkerCarry(c.carryWorkers, ws)
	ck.CarrySup = c.supTotal()

	for _, w := range sh.workers {
		if w.abandoned.Load() {
			continue
		}
		var sec store.StateSection
		for pi := range w.fronts {
			var l store.StateList
			for _, s := range w.fronts[pi].states {
				if s.Terminated() {
					continue
				}
				l.States = append(l.States, w.ex.Snapshot(s))
			}
			if len(l.States) == 0 {
				continue
			}
			l.PhaseID = c.pools[pi].info.ID
			l.NextStateID = w.ex.NextStateID()
			sec.Lists = append(sec.Lists, l)
			liveID[l.PhaseID] = true
		}
		if len(sec.Lists) > 0 {
			ck.Sections = append(ck.Sections, sec)
		}
	}
	for _, p := range c.pools {
		if liveID[p.info.ID] {
			ck.LiveIDs = append(ck.LiveIDs, p.info.ID)
		}
	}
	c.persist(ck)
}

// mergeWorkerStats folds the checkpointed per-worker carry into this
// process's counters for Result.WorkerStats (worker counts may differ
// across processes; indices are matched where present).
func (c *campaign) mergeWorkerStats(ws []WorkerStat) []WorkerStat {
	if !c.enabled() || len(c.carryWorkers) == 0 {
		return ws
	}
	merged := mergeWorkerCarry(c.carryWorkers, ws)
	out := make([]WorkerStat, len(merged))
	for i, m := range merged {
		out[i] = WorkerStat{Worker: m.Worker, Turns: m.Turns, Steps: m.Steps}
	}
	return out
}

func mergeWorkerCarry(carry []store.WorkerStat, ws []WorkerStat) []store.WorkerStat {
	out := append([]store.WorkerStat(nil), carry...)
	for _, w := range ws {
		placed := false
		for i := range out {
			if out[i].Worker == w.Worker {
				out[i].Turns += w.Turns
				out[i].Steps += w.Steps
				placed = true
				break
			}
		}
		if !placed {
			out = append(out, store.WorkerStat{Worker: w.Worker, Turns: w.Turns, Steps: w.Steps})
		}
	}
	return out
}

// finish closes the campaign: flush any verdicts since the last barrier,
// store reproducers for every bug, and mark the manifest complete unless
// the run was interrupted (an interrupted run's checkpoint is already
// durable and the manifest stays "running").
func (c *campaign) finish(res *Result) error {
	if !c.enabled() {
		return nil
	}
	if err := c.cache.Flush(); err != nil {
		c.fail(err)
	}
	for _, b := range res.Bugs {
		if _, err := c.st.AddReproducer(b); err != nil {
			c.fail(err)
		}
	}
	if !res.Interrupted {
		c.manifest.Status = store.StatusComplete
		c.manifest.Rounds = c.roundsDone
		c.manifest.Covered = res.Covered
		c.manifest.Bugs = len(res.Bugs)
		if err := c.st.WriteManifest(c.manifest); err != nil {
			c.fail(err)
		}
	}
	res.Store = c.st.Stats()
	return c.err
}

// programSig is the manifest's target signature: cheap to compute, and
// any rebuild that changes block numbering (which checkpoints depend on)
// changes it.
func programSig(prog *ir.Program) string {
	return fmt.Sprintf("%s/blocks=%d/instrs=%d", prog.Name, len(prog.AllBlocks), prog.NumInstrs)
}

// optionsSig captures every option that shapes the campaign trajectory.
// Workers and MaxRounds are deliberately absent: within one scheduling
// mode the worker count does not change results (DESIGN.md §8), and
// MaxRounds only decides where this process stops. Supervise is absent
// too — fault-free supervision is inert (DESIGN.md §11), so a
// supervised process may resume an unsupervised store and vice versa.
// Deterministic IS part of the signature: the two scheduler families
// take different trajectories and write different checkpoint modes, so
// a fast-mode store must not be resumed deterministically or vice
// versa. ConcolicInterval is the user-specified value (0 when derived
// from the dry run, which is itself deterministic).
func optionsSig(opts Options) string {
	return fmt.Sprintf("budget=%d tp=%d ci=%d dedup=%t seq=%t trap=%t nohints=%t noabs=%t seed=%d det=%t",
		opts.Budget, opts.TimePeriod, opts.ConcolicInterval, opts.DisableDedup,
		opts.Sequential, opts.TrapOnly, opts.DisableStaticHints, opts.DisableAbsint, opts.Seed,
		opts.Deterministic)
}

// inputResolver maps the checkpoint's serialised arrays onto ex's input
// array — the only array pbSE states reference.
func inputResolver(ex *symex.Executor) store.ArrayResolver {
	return func(name string, size int) (*expr.Array, error) {
		if name == ex.InputArr.Name && size == ex.InputArr.Size {
			return ex.InputArr, nil
		}
		return nil, fmt.Errorf("pbse: resume: unknown array %q (size %d, input is %q size %d)",
			name, size, ex.InputArr.Name, ex.InputArr.Size)
	}
}

// parallelResume carries the rebuilt islands into runParallel.
type parallelResume struct {
	round     int64
	deadClock int64
	isles     []*island
}

// resumeRun continues a checkpointed campaign: validate the store
// against this run's identity, rebuild the executor(s) and pools from
// the checkpoint, fast-forward the rngs, and re-enter the checkpointed
// scheduler. Concolic tracing and phase analysis are skipped — their
// results are part of the checkpoint.
func resumeRun(prog *ir.Program, seedBytes []byte, opts Options, exOpts symex.Options,
	camp *campaign, sv *supervision) (*Result, error) {

	m, err := camp.st.ReadManifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("pbse: resume: store %s has a checkpoint but no manifest", camp.st.Dir())
	}
	want := camp.manifest
	if m.Program != want.Program || m.SeedSHA256 != want.SeedSHA256 ||
		m.InputSize != want.InputSize || m.OptionsSig != want.OptionsSig {
		return nil, fmt.Errorf("pbse: resume: store %s belongs to a different campaign (program %q seed %s options %q; this run is %q %s %q)",
			camp.st.Dir(), m.Program, m.SeedSHA256[:8], m.OptionsSig,
			want.Program, want.SeedSHA256[:8], want.OptionsSig)
	}
	m.Status = store.StatusRunning
	camp.manifest = m

	cf, err := camp.st.ReadCheckpoint()
	if err != nil {
		return nil, err
	}
	ck := cf.Common()
	camp.roundsDone = ck.RoundsDone
	camp.carryGov = ck.CarryGov
	camp.carrySolver = ck.CarrySolver
	camp.carryWorkers = ck.CarryWorkers
	camp.carrySup = ck.CarrySup

	ex := symex.NewExecutor(prog, exOpts)
	ex.SetClock(ck.Clock)
	ex.AbsorbCoverage(ck.Covered)
	for _, b := range ck.Bugs {
		ex.Bugs.Add(b)
	}
	ex.AdoptQuarantineRecords(ck.Quarantine)
	ex.Solver.AddCandidate(expr.Assignment{ex.InputArr: append([]byte(nil), seedBytes...)})

	con := &concolic.Result{BBVs: ck.BBVs, Start: ck.ConStart, Steps: ck.ConSteps, Exited: ck.ConExited}
	res := &Result{
		Executor: ex,
		Resumed:  true,
		Workers:  1,
		CTime:    ck.CTime,
		PTime:    time.Duration(ck.PTimeNanos),
		Division: ck.Division,
		Concolic: con,
		Gov:      ck.CarryGov,
	}
	res.SolverStats = ck.CarrySolver
	if rep := opts.PhaseOpts.Report; rep != nil {
		res.Report = rep
		res.Hints = rep.Hints
	}
	for _, p := range ck.Series {
		res.Series = append(res.Series, CoveragePoint{Time: p.Time, Covered: p.Covered})
	}

	pools := restorePools(ck)
	byID := make(map[int]*phasePool, len(pools))
	for _, p := range pools {
		byID[p.stat.ID] = p
	}
	camp.wire(ex, res, con, ck.Division, pools)

	switch ck.Mode {
	case modeWorkSteal:
		// Work-stealing checkpoints are re-dealt, not rebuilt: decode
		// every worker section's states into the main executor, group
		// them by phase, and let runWorkSteal shard them across this
		// process's workers from scratch. No bit-identity is promised
		// across the kill (fast mode never promises it); coverage, the
		// bug ledger, and carry counters continue exactly.
		maxNext := ck.NextStateID
		for i := 0; i < cf.NumSections(); i++ {
			lists, err := cf.DecodeSection(i, ex.Ctx, inputResolver(ex))
			if err != nil {
				return nil, err
			}
			for _, l := range lists {
				p := byID[l.PhaseID]
				if p == nil {
					return nil, fmt.Errorf("pbse: resume: checkpoint references unknown phase %d", l.PhaseID)
				}
				for _, snap := range l.States {
					st, err := ex.RestoreState(snap)
					if err != nil {
						return nil, err
					}
					p.states = append(p.states, st)
				}
				if l.NextStateID > maxNext {
					maxNext = l.NextStateID
				}
			}
		}
		ex.SetStateIDBase(maxNext)
		workers := opts.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers < 1 {
			workers = 1
		}
		res.Workers = workers
		rp := &wsResume{deadClock: ck.DeadClock, epoch: ck.Epoch, rounds: ck.NextTurn}
		runWorkSteal(prog, ex, pools, seedBytes, workers, opts, exOpts, res, camp, rp, sv)
	case modeParallel:
		rp, workers, err := rebuildIslands(prog, cf, ck, byID, seedBytes, opts, exOpts, camp)
		if err != nil {
			return nil, err
		}
		res.Workers = workers
		runParallel(prog, ex, pools, seedBytes, workers, opts, exOpts, res, camp, rp, sv)
	case modeRoundRobin, modeSequential:
		if cf.NumSections() != 1 {
			return nil, fmt.Errorf("pbse: resume: %s checkpoint has %d state sections (want 1)", ck.Mode, cf.NumSections())
		}
		lists, err := cf.DecodeSection(0, ex.Ctx, inputResolver(ex))
		if err != nil {
			return nil, err
		}
		for _, l := range lists {
			p := byID[l.PhaseID]
			if p == nil {
				return nil, fmt.Errorf("pbse: resume: checkpoint references unknown phase %d", l.PhaseID)
			}
			for _, snap := range l.States {
				st, err := ex.RestoreState(snap)
				if err != nil {
					return nil, err
				}
				p.states = append(p.states, st)
			}
		}
		ex.SetStateIDBase(ck.NextStateID)
		rng, src := newCountedRand(opts.Seed + 1)
		src.skip(ck.RNGDraws)
		if ck.Mode == modeSequential {
			runSequential(ex, pools, opts, rng, res, camp, src, int(ck.NextTurn))
		} else {
			live := make([]*phasePool, 0, len(ck.LiveIDs))
			for _, id := range ck.LiveIDs {
				p := byID[id]
				if p == nil {
					return nil, fmt.Errorf("pbse: resume: live phase %d not in checkpoint pools", id)
				}
				live = append(live, p)
			}
			runRoundRobin(ex, pools, opts, rng, res, camp, src, live, ck.NextTurn, sv)
		}
	default:
		return nil, fmt.Errorf("pbse: resume: unknown scheduler mode %q", ck.Mode)
	}

	return finishRun(ex, res, camp, con, ck.Division, pools, sv)
}

// restorePools rebuilds the pool skeletons (info + accumulated stats) in
// checkpoint order; states are filled in by the mode-specific decode.
func restorePools(ck *store.Checkpoint) []*phasePool {
	infoByID := make(map[int]phase.Phase)
	if ck.Division != nil {
		for _, p := range ck.Division.Phases {
			infoByID[p.ID] = p
		}
	}
	pools := make([]*phasePool, 0, len(ck.PhaseStats))
	for _, s := range ck.PhaseStats {
		pools = append(pools, &phasePool{
			info: infoByID[s.ID],
			stat: PhaseStat{
				ID: s.ID, Trap: s.Trap, SeedStates: s.SeedStates, Steps: s.Steps,
				Turns: s.Turns, NewBlocks: s.NewBlocks, Bugs: s.Bugs, Quarantines: s.Quarantines,
			},
		})
	}
	return pools
}

// rebuildIslands reconstructs the live phase islands from the
// checkpoint's state sections (section i belongs to LiveIDs[i]): a fresh
// private executor per island, states decoded into its context, clock
// and rng fast-forwarded to the barrier position.
func rebuildIslands(prog *ir.Program, cf *store.CheckpointFile, ck *store.Checkpoint,
	byID map[int]*phasePool, seedBytes []byte, opts Options, exOpts symex.Options,
	camp *campaign) (*parallelResume, int, error) {

	if cf.NumSections() != len(ck.LiveIDs) {
		return nil, 0, fmt.Errorf("pbse: resume: %d state sections for %d live islands",
			cf.NumSections(), len(ck.LiveIDs))
	}
	rp := &parallelResume{round: ck.NextTurn, deadClock: ck.DeadClock}
	for i := 0; i < cf.NumSections(); i++ {
		id := ck.LiveIDs[i]
		pool := byID[id]
		if pool == nil {
			return nil, 0, fmt.Errorf("pbse: resume: live island %d not in checkpoint pools", id)
		}
		po := exOpts
		po.FaultInjector = exOpts.FaultInjector.Child(int64(id))
		po.SolverOpts.Injector = nil
		inj := po.FaultInjector
		cache := &roundCache{shared: camp.cache}
		po.SolverOpts.Shared = cache
		pex := symex.NewExecutor(prog, po)
		pex.Solver.AddCandidate(expr.Assignment{pex.InputArr: append([]byte(nil), seedBytes...)})
		pex.AbsorbCoverage(ck.Covered)

		lists, err := cf.DecodeSection(i, pex.Ctx, inputResolver(pex))
		if err != nil {
			return nil, 0, err
		}
		if len(lists) != 1 || lists[0].PhaseID != id {
			return nil, 0, fmt.Errorf("pbse: resume: island section %d malformed", i)
		}
		l := lists[0]
		is := &island{pool: pool, ex: pex, cache: cache, inj: inj}
		for _, b := range l.Bugs {
			pex.Bugs.Add(b)
		}
		for _, snap := range l.States {
			st, err := pex.RestoreState(snap)
			if err != nil {
				return nil, 0, err
			}
			is.states = append(is.states, st)
		}
		pex.SetStateIDBase(l.NextStateID)
		pex.SetClock(l.Clock)
		is.rng, is.src = newCountedRand(opts.Seed + 1 + int64(id)*0x9e3779b9)
		is.src.skip(l.RNGDraws)
		rp.isles = append(rp.isles, is)
	}

	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rp.isles) {
		workers = len(rp.isles)
	}
	if workers < 1 {
		workers = 1
	}
	return rp, workers, nil
}
