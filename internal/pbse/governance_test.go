package pbse

import (
	"math/rand"
	"testing"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// runGoverned runs pbSE on readelf with the given injector and executor
// options, asserting the run itself never errors or panics.
func runGoverned(t *testing.T, budget int64, exOpts symex.Options) *Result {
	t.Helper()
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	exOpts.InputSize = len(seed)
	res, err := Run(prog, seed, Options{Budget: budget, Seed: 42}, exOpts)
	if err != nil {
		t.Fatalf("pbse.Run under fault injection: %v", err)
	}
	return res
}

// TestPBSECompletesUnderEveryFault is the tentpole acceptance check:
// under each fault mode, pbse.Run terminates without a panic escaping,
// returns non-zero coverage, and reports accurate governance counters.
func TestPBSECompletesUnderEveryFault(t *testing.T) {
	skipIfShort(t)
	const budget = 60_000
	cases := []struct {
		name   string
		opts   faultinject.Options
		exOpts symex.Options
		check  func(t *testing.T, res *Result, inj *faultinject.Injector)
	}{
		{
			name: "solver-unknown",
			opts: faultinject.Options{SolverUnknownRate: 0.5},
			check: func(t *testing.T, res *Result, inj *faultinject.Injector) {
				if res.Gov.SolverUnknowns == 0 {
					t.Error("no governed Unknowns despite injection")
				}
				if inj.Counts().SolverUnknown == 0 {
					t.Error("injector never fired")
				}
				st := res.Executor.Solver.Stats()
				if st.InjectedUnknowns == 0 {
					t.Error("solver stats missed injected Unknowns")
				}
			},
		},
		{
			name: "solver-slow",
			opts: faultinject.Options{SolverSlowRate: 1, SolverSlowDelay: 20 * time.Microsecond},
			check: func(t *testing.T, res *Result, inj *faultinject.Injector) {
				if inj.Counts().SolverSlow == 0 {
					t.Error("slow-query fault never fired")
				}
			},
		},
		{
			name: "step-panic",
			opts: faultinject.Options{StepPanicRate: 0.05},
			check: func(t *testing.T, res *Result, inj *faultinject.Injector) {
				if res.Gov.Quarantines == 0 {
					t.Error("no quarantines despite injected step panics")
				}
				if res.Gov.Quarantines != int64(inj.Counts().StepPanic) {
					t.Errorf("quarantines = %d, injector fired %d times",
						res.Gov.Quarantines, inj.Counts().StepPanic)
				}
			},
		},
		{
			name:   "alloc-pressure",
			opts:   faultinject.Options{AllocPressureRate: 1, AllocPhantomBytes: 1 << 40},
			exOpts: symex.Options{MaxStateBytes: 1 << 20},
			check: func(t *testing.T, res *Result, inj *faultinject.Injector) {
				if inj.Counts().AllocPressure == 0 {
					t.Error("alloc-pressure fault never fired")
				}
				if res.Gov.Evictions == 0 {
					t.Error("no evictions despite phantom pressure above the cap")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faultinject.New(11, tc.opts)
			exOpts := tc.exOpts
			exOpts.FaultInjector = inj
			res := runGoverned(t, budget, exOpts)
			if res.Covered == 0 {
				t.Fatal("run covered nothing under fault injection")
			}
			tc.check(t, res, inj)
		})
	}
}

// TestPBSENoFaultZeroGovernance: a clean run must report zero
// quarantines, evictions, and concretizations — governance machinery is
// inert when nothing goes wrong.
func TestPBSENoFaultZeroGovernance(t *testing.T) {
	skipIfShort(t)
	res := runGoverned(t, 60_000, symex.Options{})
	if res.Covered == 0 {
		t.Fatal("no coverage")
	}
	g := res.Gov
	if g.Quarantines != 0 || g.Evictions != 0 || g.Concretizations != 0 {
		t.Errorf("clean run has governance events: %+v", g)
	}
	for _, ps := range res.PhaseStats {
		if ps.Quarantines != 0 {
			t.Errorf("phase %d reports %d quarantines on a clean run", ps.ID, ps.Quarantines)
		}
	}
	if res.Executor.Solver.Stats().InjectedUnknowns != 0 {
		t.Error("injected Unknowns counted without an injector")
	}
}

// TestPBSEPhaseProgressUnderQuarantine is satellite (d): when every step
// inside one function panics — so any seedState entering it quarantines —
// the phase scheduler must keep making progress in the other phases
// instead of wedging on the poisoned one.
func TestPBSEPhaseProgressUnderQuarantine(t *testing.T) {
	skipIfShort(t)
	inj := faultinject.New(3, faultinject.Options{
		StepPanicRate: 1,
		StepPanicFunc: "process_section_headers",
	})
	res := runGoverned(t, 120_000, symex.Options{FaultInjector: inj})
	if res.Gov.Quarantines == 0 {
		t.Skip("no state reached the poisoned function at this budget")
	}
	var healthySteps int64
	for _, ps := range res.PhaseStats {
		if ps.Quarantines == 0 {
			healthySteps += ps.Steps
		}
	}
	if healthySteps == 0 {
		t.Error("no un-poisoned phase made progress")
	}
	if res.Covered == 0 {
		t.Error("no coverage with one poisoned function")
	}
}

// TestPBSEGovernanceShortSmoke is the -short stand-in for the fault
// suite: one small run with combined solver-unknown and step-panic
// injection must complete with coverage and a consistent zero/non-zero
// counter split.
func TestPBSEGovernanceShortSmoke(t *testing.T) {
	inj := faultinject.New(11, faultinject.Options{
		SolverUnknownRate: 0.3,
		StepPanicRate:     0.02,
	})
	res := runGoverned(t, 20_000, symex.Options{FaultInjector: inj})
	if res.Covered == 0 {
		t.Fatal("smoke run covered nothing under injection")
	}
	if inj.Counts().SolverUnknown > 0 && res.Gov.SolverUnknowns == 0 {
		t.Error("injector fired but governance saw no Unknowns")
	}
	if res.Gov.Evictions != 0 {
		t.Error("evictions without a MaxStateBytes cap")
	}
}
