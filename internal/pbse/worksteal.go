package pbse

// Work-stealing fast-mode scheduler (DESIGN.md §12). The round-barrier
// scheduler (parallel.go, kept as Options.Deterministic) parallelises
// across phases: each phase is an island, a round runs one turn per
// island, and all cross-island observation is deferred to the barrier.
// That design buys bit-reproducibility but caps the worker count at the
// populated-phase count and leaves workers idle whenever islands finish
// their turns at different times.
//
// The work-stealing scheduler parallelises across *states* instead.
// Every phase's frontier is dealt round-robin over all W workers
// (phase.Shard), so each worker drives its own private Algorithm 3 —
// round-robin over its shards of every phase, escalating slices, break
// on a slice without new cover — and no phase-count cap applies. Three
// mechanisms replace the barrier:
//
//   - Epoch-based coverage publication: a shared coverBoard holds the
//     global coverage bitmap in CAS-updated words plus an epoch counter.
//     Workers publish newly covered blocks as they find them and absorb
//     foreign bits at turn boundaries (skipped cheaply when the epoch is
//     unchanged), so Algorithm 3's patience signal stays global without
//     any stop-the-world merge.
//   - Immediate verdict publication: worker solvers write Sat/Unsat
//     verdicts straight into the shared cache (solver.ShardedCache or
//     the store's persistent cache) instead of parking them in a
//     roundCache until the barrier; every Put carries a sequence number
//     (ShardedCache.Seq) so publication order remains reconstructible.
//     Workers also batch sibling feasibility queries per terminator
//     (symex.Options.BatchSiblings), bit-blasting the shared
//     path-constraint slice once per branch or switch.
//   - Work stealing: a worker whose shards drain posts a request on a
//     shared channel; any worker passing a poll point detaches half of
//     its largest frontier (symex.Executor.DetachState) and hands the
//     states over, and the thief rebuilds them in its own context via
//     expr.Importer. A claim CAS arbitrates between a victim serving the
//     request and the thief timing out, so states are never detached
//     into a request nobody is waiting on.
//
// The trade is determinism: results depend on goroutine interleaving,
// so coverage, bug sets, and stats are NOT a pure function of opts.Seed
// (use -deterministic when bit-reproducibility matters more than
// throughput). Checkpoints happen at rendezvous points — when global
// virtual time crosses the cadence, workers park at their next turn
// boundary and the last arrival writes the checkpoint (modeWorkSteal)
// with every executor quiescent; resume re-deals the states, with no
// bit-identity promise. Supervision attaches per worker through the
// same Supervisor.Turn handle interface the islands use: crashes requeue
// the worker's states, watchdog-tripped turns get a bounded grace wait
// and then the whole worker is abandoned (its states quarantined).

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbse/internal/expr"
	"pbse/internal/faultinject"
	"pbse/internal/ir"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// wsFlushInterval is how many steps pass between a worker's mid-turn
// bookkeeping points: global-clock flush, coverage publication, steal
// service, and stop/rendezvous checks.
const wsFlushInterval = 64

// wsStealTimeout bounds how long a thief waits for a victim before
// reclaiming its request.
const wsStealTimeout = 2 * time.Millisecond

// coverBoard is the shared coverage state: one bit per block, set with
// CAS so workers publish without locks. epoch increments on every
// publication that added at least one block — workers compare it against
// their last absorbed epoch to skip no-op absorbs. The series is the
// run-wide coverage curve, appended under mu.
type coverBoard struct {
	words   []atomic.Uint64
	epoch   atomic.Int64
	covered atomic.Int64

	mu     sync.Mutex
	series []CoveragePoint
}

func newCoverBoard(numBlocks int, base []int) *coverBoard {
	b := &coverBoard{words: make([]atomic.Uint64, (numBlocks+63)/64)}
	for _, id := range base {
		w := &b.words[id/64]
		w.Store(w.Load() | 1<<(id%64))
	}
	b.covered.Store(int64(len(base)))
	return b
}

// publish CASes ids into the board, returning how many were new. A
// publication that grew the board bumps the epoch and records a series
// point at virtual time now.
func (b *coverBoard) publish(ids []int, now int64) int {
	fresh := 0
	for _, id := range ids {
		w := &b.words[id/64]
		bit := uint64(1) << (id % 64)
		for {
			old := w.Load()
			if old&bit != 0 {
				break
			}
			if w.CompareAndSwap(old, old|bit) {
				fresh++
				break
			}
		}
	}
	if fresh > 0 {
		total := b.covered.Add(int64(fresh))
		b.epoch.Add(1)
		b.mu.Lock()
		b.series = append(b.series, CoveragePoint{Time: now, Covered: int(total)})
		b.mu.Unlock()
	}
	return fresh
}

// snapshot lists every covered block id.
func (b *coverBoard) snapshot() []int {
	out := make([]int, 0, b.covered.Load())
	for wi := range b.words {
		w := b.words[wi].Load()
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &^= 1 << bit
		}
	}
	return out
}

// stealReq is one thief's request for work. claimed arbitrates the race
// between a victim starting to serve and the thief timing out: whoever
// wins the CAS owns the request, so a victim never detaches states into
// a reply nobody will read, and a thief that loses the CAS knows a
// grant is in flight and waits for it unconditionally.
type stealReq struct {
	claimed atomic.Bool
	reply   chan stealGrant
}

// stealGrant carries detached (never terminated) states from victim to
// thief. The channel transfer is the happens-before edge that makes the
// thief's reads of the victim-context expressions race-free; from
// identifies the source context for the thief's importer cache.
type stealGrant struct {
	states []*symex.State
	pool   int // pools index the states belong to
	from   *wsWorker
}

// wsFrontier is one worker's shard of one phase's frontier.
type wsFrontier struct {
	states []*symex.State
	turn   int64 // per-phase turn counter; escalates the slice
}

// wsWorker is one scheduler worker: a private executor (own context and
// solver, hot paths lock-free) holding shards of every phase.
type wsWorker struct {
	id  int
	sh  *wsShared
	ex  *symex.Executor
	rng *rand.Rand
	inj *faultinject.Injector

	fronts []wsFrontier
	next   int // round-robin cursor over fronts

	// live is this worker's frontier population (terminated-in-place
	// states included until popped). Owner-written, read by the drained
	// scan; abandoned workers are excluded from that scan, which is what
	// keeps a runaway turn from wedging termination.
	live atomic.Int64

	published int   // local covered count already pushed to the board
	seenEpoch int64 // board epoch last absorbed
	importers map[*wsWorker]*expr.Importer

	stats  WorkerStat
	pstats []PhaseStat // per-pool scratch; merged into pools at exit

	// abandoned marks a worker whose hung turn goroutine overstayed the
	// grace wait: its executor may still be racing, so everything it
	// owns is excluded from drained scans, checkpoints, and the final
	// merge. Atomic because the drained scan reads it cross-worker.
	abandoned atomic.Bool
}

// wsShared is the state all workers share.
type wsShared struct {
	opts  Options
	pools []*phasePool
	board *coverBoard
	sv    *supervision

	clock   atomic.Int64 // global virtual time (concolic + all workers, all processes)
	stop    atomic.Bool
	intr    atomic.Bool // stopped by MaxRounds
	steal   chan *stealReq
	transit atomic.Int64 // states detached but not yet imported

	workers []*wsWorker

	// Rendezvous checkpointing: when the clock crosses nextCk, ckWant
	// parks every worker at its next turn boundary; the last to arrive
	// (or the last exiting worker others were waiting on) runs checkpoint
	// with every active executor quiescent.
	ckOn       bool
	cadence    int64
	nextCk     atomic.Int64
	ckWant     atomic.Bool
	rounds     int64  // rendezvous checkpoints completed (this process)
	checkpoint func() // runs under the barrier; nil-safe campaign inside
	bar        struct {
		mu      sync.Mutex
		cond    *sync.Cond
		arrived int
		active  int
		gen     uint64
	}
}

func (sh *wsShared) vtime() int64 { return sh.clock.Load() }

func (sh *wsShared) activeWorkers() int64 {
	sh.bar.mu.Lock()
	n := int64(sh.bar.active)
	sh.bar.mu.Unlock()
	if n < 1 {
		n = 1
	}
	return n
}

// drained reports that no live work remains anywhere a non-abandoned
// worker (or an in-flight steal) could still reach.
func (sh *wsShared) drained() bool {
	if sh.transit.Load() != 0 {
		return false
	}
	for _, w := range sh.workers {
		if w.abandoned.Load() {
			continue
		}
		if w.live.Load() > 0 {
			return false
		}
	}
	return true
}

// rendezvous parks the worker while a checkpoint is wanted. The last
// arrival writes the checkpoint itself — at that instant every other
// active worker is parked inside this function, so every executor it
// reads is quiescent.
func (sh *wsShared) rendezvous() {
	if !sh.ckWant.Load() {
		return
	}
	b := &sh.bar
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.active {
		sh.runCheckpoint()
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for b.gen == gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// workerExit retires a worker from the barrier. If everyone else is
// already parked waiting on this worker, it runs the pending checkpoint
// on their behalf before leaving.
func (sh *wsShared) workerExit() {
	b := &sh.bar
	b.mu.Lock()
	b.active--
	if sh.ckWant.Load() && b.active > 0 && b.arrived == b.active {
		sh.runCheckpoint()
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// runCheckpoint executes one rendezvous: count the round, fire the
// kill-round fault hook (before the checkpoint, so the killed round's
// work is genuinely lost), persist, honour MaxRounds, and schedule the
// next rendezvous. Called with bar.mu held and all other active workers
// parked.
func (sh *wsShared) runCheckpoint() {
	sh.rounds++
	sh.sv.kill(sh.rounds)
	if sh.checkpoint != nil {
		sh.checkpoint()
	}
	if sh.opts.MaxRounds > 0 && sh.rounds >= sh.opts.MaxRounds {
		sh.intr.Store(true)
		sh.stop.Store(true)
	}
	sh.nextCk.Store(sh.vtime() + sh.cadence)
	sh.ckWant.Store(false)
}

// wsResume carries a modeWorkSteal checkpoint's position into
// runWorkSteal; states were already decoded into the main executor's
// pools and are re-dealt like a fresh start.
type wsResume struct {
	deadClock int64 // virtual time spent by workers before this process
	epoch     int64
	rounds    int64
}

// runWorkSteal drives the fast-mode scheduler. ex is the concolic-run
// executor: its coverage seeds the board and every worker, and the
// merged results fold back into it so Run's common tail behaves exactly
// as for the other schedulers.
func runWorkSteal(prog *ir.Program, ex *symex.Executor, pools []*phasePool,
	seedBytes []byte, workers int, opts Options, exOpts symex.Options, res *Result,
	camp *campaign, rp *wsResume, sv *supervision) {

	var shared solver.VerdictCache
	if camp.enabled() {
		shared = camp.cache
	} else {
		shared = solver.NewShardedCache()
	}

	baseCover := ex.CoveredBlocks()
	sh := &wsShared{
		opts:  opts,
		pools: pools,
		board: newCoverBoard(len(prog.AllBlocks), baseCover),
		sv:    sv,
		steal: make(chan *stealReq, workers),
	}
	sh.bar.cond = sync.NewCond(&sh.bar.mu)
	sh.bar.active = workers
	sh.clock.Store(ex.Clock())
	if rp != nil {
		sh.clock.Add(rp.deadClock)
		sh.board.epoch.Store(rp.epoch)
		sh.rounds = rp.rounds
	}
	sh.ckOn = camp.enabled() || opts.MaxRounds > 0
	sh.cadence = opts.TimePeriod * int64(len(pools)+1)
	if sh.cadence < 1 {
		sh.cadence = 1
	}
	sh.nextCk.Store(sh.vtime() + sh.cadence)

	// Deal every phase's frontier round-robin across the workers.
	shards := make([][][]*symex.State, workers) // [worker][pool]states
	for w := 0; w < workers; w++ {
		shards[w] = make([][]*symex.State, len(pools))
	}
	for pi, p := range pools {
		for w, idxs := range phase.Shard(len(p.states), workers) {
			for _, i := range idxs {
				shards[w][pi] = append(shards[w][pi], p.states[i])
			}
		}
	}

	sh.workers = make([]*wsWorker, workers)
	var buildWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := &wsWorker{id: i, sh: sh, importers: make(map[*wsWorker]*expr.Importer)}
		w.stats.Worker = i
		sh.workers[i] = w
		buildWG.Add(1)
		go func(w *wsWorker) {
			defer buildWG.Done()
			buildWSWorker(prog, ex, w, shared, seedBytes, baseCover, opts, exOpts, shards[w.id])
		}(w)
	}
	buildWG.Wait()

	if camp.enabled() {
		sh.checkpoint = func() {
			camp.bumpRound()
			camp.barrierWorkSteal(sh)
		}
	}

	var runWG sync.WaitGroup
	for _, w := range sh.workers {
		runWG.Add(1)
		go func(w *wsWorker) {
			defer runWG.Done()
			w.run()
		}(w)
	}
	runWG.Wait()

	// Final merge, in worker order. Abandoned workers are skipped
	// wholesale — their executors may still be racing a runaway turn —
	// and their last turn's work is recorded as lost.
	ex.AbsorbCoverage(sh.board.snapshot())
	ws := make([]WorkerStat, 0, workers)
	for _, w := range sh.workers {
		if w.abandoned.Load() {
			continue
		}
		ws = append(ws, w.stats)
		for _, r := range w.ex.Bugs.Reports() {
			ex.Bugs.Add(r)
		}
		res.Gov.Merge(w.ex.Gov())
		res.SolverStats.Accum(w.ex.Solver.Stats())
		for pi := range pools {
			s := w.pstats[pi]
			pools[pi].stat.Steps += s.Steps
			pools[pi].stat.Turns += s.Turns
			pools[pi].stat.NewBlocks += s.NewBlocks
			pools[pi].stat.Bugs += s.Bugs
			pools[pi].stat.Quarantines += s.Quarantines
		}
	}
	sh.board.mu.Lock()
	pts := append([]CoveragePoint(nil), sh.board.series...)
	sh.board.mu.Unlock()
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	res.Series = append(res.Series, pts...)
	res.Interrupted = sh.intr.Load()
	res.SharedCache = sharedCacheStats(shared)
	res.WorkerStats = camp.mergeWorkerStats(ws)

	// Exit checkpoint: a finished (or drained) campaign reconstructs this
	// position on resume and immediately falls through again.
	if camp.enabled() && !res.Interrupted {
		camp.barrierWorkSteal(sh)
	}
}

// buildWSWorker constructs one worker's private executor and imports its
// deal of every phase's states. Unlike the islands' roundCache, the
// solver's shared tier is wired directly: verdicts publish the moment
// they are decided. BatchSiblings turns on batched sibling dispatch —
// fast mode only, since batching changes cache-fill order.
func buildWSWorker(prog *ir.Program, ex *symex.Executor, w *wsWorker,
	shared solver.VerdictCache, seedBytes []byte, baseCover []int,
	opts Options, exOpts symex.Options, deal [][]*symex.State) {

	po := exOpts
	po.FaultInjector = exOpts.FaultInjector.Child(int64(w.id)) // nil-safe
	po.SolverOpts.Injector = nil                               // rewired from the child injector
	po.SolverOpts.Shared = shared
	po.BatchSiblings = true
	w.inj = po.FaultInjector

	pex := symex.NewExecutor(prog, po)
	sb := make([]byte, len(seedBytes))
	copy(sb, seedBytes)
	pex.Solver.AddCandidate(expr.Assignment{pex.InputArr: sb})
	pex.AbsorbCoverage(baseCover)

	im := expr.NewImporter(pex.Ctx, map[*expr.Array]*expr.Array{ex.InputArr: pex.InputArr})
	w.fronts = make([]wsFrontier, len(deal))
	n := 0
	for pi, states := range deal {
		for _, s := range states {
			w.fronts[pi].states = append(w.fronts[pi].states, pex.ImportState(s, im))
			n++
		}
	}
	pex.SetStateIDBase(ex.NextStateID() + (w.id+1)*stateIDStride)

	w.ex = pex
	w.pstats = make([]PhaseStat, len(deal))
	w.published = pex.NumCovered()
	w.rng = rand.New(rand.NewSource(opts.Seed + 101 + int64(w.id)*0x9e3779b9))
	w.live.Store(int64(n))
}

// run is the worker driver loop: absorb foreign coverage, run one turn
// of the next non-empty phase shard, publish; steal when drained.
func (w *wsWorker) run() {
	sh := w.sh
	for !sh.stop.Load() {
		sh.rendezvous()
		if sh.stop.Load() {
			break
		}
		w.absorbForeign()
		pi := w.pickPhase()
		if pi < 0 {
			if sh.drained() {
				break
			}
			w.trySteal()
			continue
		}
		if sh.sv.supervised() {
			w.runTurnSupervised(pi)
			if w.abandoned.Load() {
				return // runTurnSupervised already retired us from the barrier
			}
		} else {
			w.runTurn(pi, 1)
		}
		w.publish(pi)
		if sh.ckOn && sh.vtime() >= sh.nextCk.Load() {
			sh.ckWant.Store(true)
		}
	}
	sh.workerExit()
}

// pickPhase advances the round-robin cursor to the next frontier with
// states; -1 when every shard is empty.
func (w *wsWorker) pickPhase() int {
	for i := 0; i < len(w.fronts); i++ {
		pi := (w.next + i) % len(w.fronts)
		if len(w.fronts[pi].states) > 0 {
			w.next = (pi + 1) % len(w.fronts)
			return pi
		}
	}
	return -1
}

// absorbForeign folds the board's bits this worker hasn't seen into its
// private bitmap, so entering a block another worker covered reads as
// NewCover=false — the global patience signal. Skipped in O(1) when the
// epoch hasn't moved.
func (w *wsWorker) absorbForeign() {
	e := w.sh.board.epoch.Load()
	if e == w.seenEpoch {
		return
	}
	w.seenEpoch = e
	w.ex.AbsorbCoverage(w.sh.board.snapshot())
	w.published = w.ex.NumCovered() // absorbed blocks are already on the board
}

// publish pushes locally new coverage to the board, crediting pool pi.
func (w *wsWorker) publish(pi int) {
	if w.ex.NumCovered() == w.published {
		return
	}
	fresh := w.sh.board.publish(w.ex.CoveredBlocks(), w.sh.vtime())
	w.published = w.ex.NumCovered()
	w.pstats[pi].NewBlocks += fresh
}

// runTurn is one Algorithm 3 turn over the worker's shard of phase pi:
// uniform-random selection, escalating slice, break on a slice without
// new cover. Differences from the deterministic islands: the slice and
// hard cap cut against the *global* atomic clock (flushed every
// wsFlushInterval steps), coverage publishes mid-turn, steal requests
// are served at flush points, and a state that just covered new code is
// stepped again immediately (frontier affinity — cheap coverage-guided
// bias that determinism forbids the islands).
func (w *wsWorker) runTurn(pi int, scale float64) int64 {
	sh := w.sh
	f := &w.fronts[pi]
	f.turn++
	pool := sh.pools[pi]
	slice := int64(float64(f.turn*sh.opts.TimePeriod) * pool.sliceBoost() * scale)
	hardCap := (sh.opts.Budget-sh.vtime())/sh.activeWorkers() + 1
	stat := &w.pstats[pi]
	turnStart := w.ex.Clock()
	lastFlush := turnStart
	var steps int64
	var cur *symex.State // stick with a state while it covers new code
	for len(f.states) > 0 && !w.ex.Interrupted() {
		st := cur
		cur = nil
		if st == nil || st.Terminated() {
			idx := w.rng.Intn(len(f.states))
			st = f.states[idx]
			if st.Terminated() {
				f.states[idx] = f.states[len(f.states)-1]
				f.states = f.states[:len(f.states)-1]
				w.live.Add(-1)
				continue
			}
		}
		r := w.ex.StepBlock(st)
		steps++
		stat.Steps++
		if len(r.Added) > 0 {
			f.states = append(f.states, r.Added...)
			w.live.Add(int64(len(r.Added)))
		}
		if r.Bug != nil {
			r.Bug.Phase = pool.info.ID
			stat.Bugs++
		}
		if r.Terminated && r.Reason == symex.TermQuarantined {
			stat.Quarantines++
		}
		// terminated states are dropped lazily, at selection time
		if r.NewCover && !r.Terminated {
			cur = st
		}
		now := w.ex.Clock()
		if now-turnStart >= hardCap {
			break
		}
		if now-turnStart > slice && !r.NewCover {
			break // Algorithm 3 line 15
		}
		if steps%wsFlushInterval == 0 {
			sh.clock.Add(now - lastFlush)
			lastFlush = now
			if sh.vtime() >= sh.opts.Budget {
				sh.stop.Store(true)
				break
			}
			w.publish(pi)
			w.serveSteals()
			if sh.stop.Load() || sh.ckWant.Load() {
				break
			}
		}
	}
	sh.clock.Add(w.ex.Clock() - lastFlush)
	if sh.vtime() >= sh.opts.Budget {
		sh.stop.Store(true)
	}
	stat.Turns++
	w.stats.Turns++
	w.stats.Steps += steps
	return steps
}

// serveSteals answers at most one pending steal request. A worker that
// cannot help (no frontier with a state to spare) puts the request back
// for someone else; the thief's timeout covers the case where nobody
// can.
func (w *wsWorker) serveSteals() {
	select {
	case req := <-w.sh.steal:
		if !w.serve(req) {
			select {
			case w.sh.steal <- req:
			default:
			}
		}
	default:
	}
}

// serve detaches half of this worker's largest frontier into a grant.
func (w *wsWorker) serve(req *stealReq) bool {
	best, n := -1, 1
	for i := range w.fronts {
		if l := len(w.fronts[i].states); l > n {
			best, n = i, l
		}
	}
	if best < 0 {
		return false
	}
	if !req.claimed.CompareAndSwap(false, true) {
		return true // thief gave up; request is dead
	}
	f := &w.fronts[best]
	cut := len(f.states) - len(f.states)/2
	g := stealGrant{pool: best, from: w}
	removed := int64(0)
	for _, st := range f.states[cut:] {
		removed++
		if st.Terminated() {
			continue // terminated-in-place: drop, never transfer
		}
		w.ex.DetachState(st)
		g.states = append(g.states, st)
	}
	f.states = f.states[:cut]
	w.live.Add(-removed)
	w.sh.transit.Add(int64(len(g.states)))
	req.reply <- g
	return true
}

// trySteal posts a request and imports the grant. Returns false when no
// victim served in time (the request is then reclaimed via the claim
// CAS, or — if a victim won the claim first — its grant is awaited
// unconditionally, since the victim already detached the states).
func (w *wsWorker) trySteal() bool {
	sh := w.sh
	req := &stealReq{reply: make(chan stealGrant, 1)}
	select {
	case sh.steal <- req:
	default:
		time.Sleep(wsStealTimeout)
		return false
	}
	var g stealGrant
	timer := time.NewTimer(wsStealTimeout)
	select {
	case g = <-req.reply:
		timer.Stop()
	case <-timer.C:
		if req.claimed.CompareAndSwap(false, true) {
			return false
		}
		g = <-req.reply
	}
	if len(g.states) == 0 {
		return false
	}
	im := w.importers[g.from]
	if im == nil {
		im = expr.NewImporter(w.ex.Ctx, map[*expr.Array]*expr.Array{g.from.ex.InputArr: w.ex.InputArr})
		w.importers[g.from] = im
	}
	f := &w.fronts[g.pool]
	for _, st := range g.states {
		f.states = append(f.states, w.ex.ImportState(st, im))
	}
	w.live.Add(int64(len(g.states)))
	sh.transit.Add(-int64(len(g.states)))
	return true
}

// runTurnSupervised wraps one turn in the supervisor's containment: the
// body runs on its own goroutine under Supervisor.Turn with the
// executor's interrupt as the watchdog's abort, and the worker climbs
// the same retry/backoff ladder the phase islands use (keyed by worker
// id). A crash leaves the shard's states queued for the next turn. A
// watchdog trip gets a bounded grace wait for the body to honour the
// interrupt; a body that overstays takes the whole worker with it —
// abandoned, its states quarantined, excluded from every later read.
func (w *wsWorker) runTurnSupervised(pi int) {
	sv := w.sh.sv
	sup := sv.sup
	lad := sup.Island(w.id)
	if lad.TakeSkip() {
		sup.Add(supervise.SupStats{BackoffSkips: 1})
		return
	}
	if lad.Failures() > 0 {
		sup.Add(supervise.SupStats{Restarts: 1})
	}
	scale := lad.SliceScale()
	preLive := w.live.Load()
	w.ex.ClearInterrupt()
	w.ex.SetConcretizeOnly(lad.Level() >= supervise.LevelConcretize)
	outcome, _, h := sup.Turn(func() {
		if w.inj.IslandCrash() {
			panic(fmt.Sprintf("faultinject: worker %d crash", w.id))
		}
		if d, ok := w.inj.IslandHang(); ok {
			time.Sleep(d)
			if w.ex.Interrupted() {
				return // the watchdog gave up on us while we stalled
			}
		}
		w.runTurn(pi, scale)
	}, w.ex.Interrupt)
	switch outcome {
	case supervise.Crashed:
		w.ex.SetConcretizeOnly(false)
		lad.Fault()
		sup.Add(supervise.SupStats{RequeuedStates: int64(len(w.fronts[pi].states))})
	case supervise.Interrupted:
		w.ex.SetConcretizeOnly(false)
		lad.Fault()
	case supervise.Hung:
		lad.Fault()
		wait := sup.Opts().IslandDeadline + sup.Opts().HangGrace +
			w.inj.Opts().IslandHangDelay + time.Second
		if h.Wait(wait) {
			w.ex.SetConcretizeOnly(false)
			if _, crashed := h.Crash(); crashed {
				sup.Add(supervise.SupStats{Crashes: 1})
			}
			return
		}
		// The body is still running: nothing of this worker may be
		// touched again. Its states leave the live-work account so the
		// other workers can still drain and exit.
		sup.Add(supervise.SupStats{QuarantinedIslands: 1, QuarantinedStates: preLive})
		w.abandoned.Store(true)
		w.sh.workerExit()
	default:
		w.ex.SetConcretizeOnly(false)
		lad.Success()
	}
}
