package pbse

// Supervised campaigns (DESIGN.md §11). A supervision context wraps the
// schedulers with the fault-isolation mechanics of internal/supervise:
// island turns run under a recover boundary and a wall-clock watchdog,
// faulting islands climb a retry/backoff ladder (full slice → half slice
// → concretize-only → quarantine), and every contained fault is counted
// in SupStats. The context also carries the process-level fault injector
// so the kill-round hook (a self-inflicted SIGKILL for crash-recovery
// tests) fires at the same point in every scheduler.
//
// Determinism: when no fault fires, every hook here is inert — no ladder
// moves, no jitter rng is drawn, no turn is skipped — so a supervised
// run is bit-identical to an unsupervised one (asserted by
// TestSupervisedNoFaultIdentical). After the first fault the guarantee
// weakens to "the campaign completes with accurate counters".

import (
	"fmt"
	"math/rand"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// supervision is the run-wide supervision context. A nil *supervision
// (unsupervised run without a fault injector) makes every method a
// no-op; sup is nil when only the kill-round hook is wanted.
type supervision struct {
	sup *supervise.Supervisor
	inj *faultinject.Injector // process-level injector (kill-round hook)
}

// newSupervision builds the context from the run options, or nil when
// neither supervision nor fault injection is configured. The
// supervisor's jitter seed defaults to the campaign seed so haircuts
// are reproducible without extra configuration.
func newSupervision(opts Options, exOpts symex.Options) *supervision {
	sv := &supervision{inj: exOpts.FaultInjector}
	if opts.Supervise != nil && opts.Supervise.Enabled {
		so := *opts.Supervise
		if so.Seed == 0 {
			so.Seed = opts.Seed
		}
		sv.sup = supervise.New(so)
	}
	if sv.sup == nil && sv.inj == nil {
		return nil
	}
	return sv
}

// supervised reports whether fault isolation is active (as opposed to a
// context carrying only the kill hook).
func (sv *supervision) supervised() bool { return sv != nil && sv.sup != nil }

// kill fires the kill-round fault when this process has completed round
// scheduler rounds. Called after a round's turns and before its barrier
// checkpoint, so the killed round's work is genuinely lost.
func (sv *supervision) kill(round int64) {
	if sv != nil {
		sv.inj.KillAtRound(round)
	}
}

// turnW1 is the single-worker supervised turn: inline recover
// containment plus the retry ladder. There is no watchdog — the shared
// executor cannot be abandoned to a runaway goroutine — so W=1 covers
// crashes, backoff, and degraded slices; hard hangs are the re-exec
// supervisor's job (cmd/pbse -supervise).
func (sv *supervision) turnW1(ex *symex.Executor, pool *phasePool, opts Options,
	rng *rand.Rand, res *Result, turnStart, slice int64) {

	sup := sv.sup
	lad := sup.Island(pool.info.ID)
	if lad.TakeSkip() {
		sup.Add(supervise.SupStats{BackoffSkips: 1, DegradedRounds: 1})
		return
	}
	if lad.Failures() > 0 {
		sup.Add(supervise.SupStats{Restarts: 1})
	}
	scaled := int64(float64(slice) * lad.SliceScale())
	ex.SetConcretizeOnly(lad.Level() >= supervise.LevelConcretize)
	outcome, _ := sup.TurnSync(func() {
		if sv.inj.IslandCrash() {
			panic(fmt.Sprintf("faultinject: island %d crash", pool.info.ID))
		}
		if d, ok := sv.inj.IslandHang(); ok {
			time.Sleep(d)
		}
		runPhaseTurn(ex, pool, opts, rng, res, func() bool {
			return ex.Clock()-turnStart > scaled
		})
	})
	ex.SetConcretizeOnly(false)
	if outcome == supervise.Crashed {
		// The panic fired at the turn boundary: the pool's states are
		// intact and simply stay queued for the next turn.
		lad.Fault()
		sup.Add(supervise.SupStats{RequeuedStates: int64(len(pool.states)), DegradedRounds: 1})
	} else {
		lad.Success()
	}
}

// runSupervisedTurn is the parallel supervised turn, run by a worker
// goroutine. The turn body executes on its own goroutine under
// Supervisor.Turn; its stat deltas go to the island's scratch turnStat
// so a hung turn cannot race the coordinator's checkpoint reads, and
// are folded into the pool only once the turn goroutine is known dead.
func runSupervisedTurn(is *island, round, share int64, opts Options, sv *supervision) int64 {
	sup := sv.sup
	lad := sup.Island(is.pool.info.ID)
	if lad.TakeSkip() {
		sup.Add(supervise.SupStats{BackoffSkips: 1})
		return 0
	}
	if lad.Failures() > 0 {
		sup.Add(supervise.SupStats{Restarts: 1})
	}
	scale := lad.SliceScale()
	is.preClock = is.ex.Clock()
	is.preStates = len(is.states)
	is.turnStat = PhaseStat{}
	is.turnSteps = 0
	is.ex.ClearInterrupt()
	is.ex.SetConcretizeOnly(lad.Level() >= supervise.LevelConcretize)
	outcome, _, h := sup.Turn(func() {
		if is.inj.IslandCrash() {
			panic(fmt.Sprintf("faultinject: island %d crash", is.pool.info.ID))
		}
		if d, ok := is.inj.IslandHang(); ok {
			time.Sleep(d)
			if is.ex.Interrupted() {
				return // the watchdog gave up on us while we stalled
			}
		}
		is.turnSteps = runIslandTurn(is, round, share, scale, &is.turnStat, opts)
	}, is.ex.Interrupt)
	switch outcome {
	case supervise.Crashed:
		// Injected crashes fire before any state is touched; real ones
		// mid-turn are already contained per-state by the step boundary.
		// Either way the pool keeps its states for the next turn.
		lad.Fault()
		sup.Add(supervise.SupStats{RequeuedStates: int64(len(is.states))})
	case supervise.Interrupted:
		lad.Fault()
	case supervise.Hung:
		// The turn goroutine is still running; park the island in limbo.
		// Nothing of the island may be touched until h reports Done.
		lad.Fault()
		is.limbo = h
		is.limboRounds = 0
		return 0
	default:
		lad.Success()
	}
	is.pool.absorbTurnStat(is.turnStat)
	return is.turnSteps
}

// absorbTurnStat folds one supervised turn's scratch counters into the
// pool (NewBlocks is merged at the round barrier, not here).
func (p *phasePool) absorbTurnStat(ts PhaseStat) {
	p.stat.Steps += ts.Steps
	p.stat.Turns += ts.Turns
	p.stat.Bugs += ts.Bugs
	p.stat.Quarantines += ts.Quarantines
}

// insertIsland returns live with is inserted in phase-ID order — the
// order every barrier reduction runs in, restored when an island leaves
// limbo.
func insertIsland(live []*island, is *island) []*island {
	at := len(live)
	for i, l := range live {
		if l.pool.info.ID > is.pool.info.ID {
			at = i
			break
		}
	}
	live = append(live, nil)
	copy(live[at+1:], live[at:])
	live[at] = is
	return live
}

// safeIsles filters out islands whose executors may be racing (in limbo
// or abandoned); only these are safe for barrier aggregation.
func safeIsles(isles []*island) []*island {
	out := make([]*island, 0, len(isles))
	for _, is := range isles {
		if is.limbo == nil && !is.abandoned {
			out = append(out, is)
		}
	}
	return out
}
