package pbse

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pbse/internal/ir"
	"pbse/internal/symex"
)

// phasedIR is purpose-built for the determinism gate: two input-forking
// stages (low bits of bytes 0..3 then 4..7, 256 total paths — a frontier
// a modest budget fully exhausts) separated by concrete busy loops that
// stretch the seed path over many BBV intervals and give each stage a
// distinct block signature, so phase division yields several populated
// phases. Memory is only addressed at concrete offsets, so no path ever
// depends on a solver model choice, and two assert sites give the bug
// lists something to disagree about if determinism breaks.
const phasedIR = `
program phasedet

func main(params=0 regs=32) {
entry:
	r0 = input
	r20 = const 0 w32
	r23 = const 1 w32
	r1 = const 0 w32
	jmp a_loop
a_loop:
	r2 = const 4 w32
	r3 = cmp.ult r1, r2 w32
	br r3 a_body a_busy_init
a_body:
	r4 = zext r1 w64
	r5 = add r0, r4 w64
	r6 = load [r5+0] w8
	r7 = zext r6 w32
	r8 = const 1 w32
	r9 = and r7, r8 w32
	br r9 a_odd a_even
a_odd:
	r20 = add r20, r7 w32
	jmp a_next
a_even:
	r10 = const 3 w32
	r11 = mul r7, r10 w32
	r20 = xor r20, r11 w32
	jmp a_next
a_next:
	r12 = const 1 w32
	r1 = add r1, r12 w32
	jmp a_loop
a_busy_init:
	r13 = const 0 w32
	jmp a_busy
a_busy:
	r14 = const 150 w32
	r15 = cmp.ult r13, r14 w32
	br r15 a_busy_body b_init
a_busy_body:
	r16 = const 13 w32
	r17 = mul r23, r16 w32
	r18 = const 5 w32
	r19 = lshr r17, r18 w32
	r23 = xor r17, r19 w32
	r22 = const 1 w32
	r13 = add r13, r22 w32
	jmp a_busy
b_init:
	r1 = const 4 w32
	jmp b_loop
b_loop:
	r2 = const 8 w32
	r3 = cmp.ult r1, r2 w32
	br r3 b_body b_busy_init
b_body:
	r4 = zext r1 w64
	r5 = add r0, r4 w64
	r6 = load [r5+0] w8
	r7 = zext r6 w32
	r8 = const 2 w32
	r9 = and r7, r8 w32
	br r9 b_high b_low
b_high:
	r20 = sub r20, r7 w32
	jmp b_next
b_low:
	r10 = const 5 w32
	r11 = mul r7, r10 w32
	r20 = or r20, r11 w32
	jmp b_next
b_next:
	r12 = const 1 w32
	r1 = add r1, r12 w32
	jmp b_loop
b_busy_init:
	r13 = const 0 w32
	jmp b_busy
b_busy:
	r14 = const 150 w32
	r15 = cmp.ult r13, r14 w32
	br r15 b_busy_body c_checks
b_busy_body:
	r16 = const 29 w32
	r17 = add r23, r16 w32
	r18 = const 3 w32
	r19 = shl r17, r18 w32
	r23 = xor r17, r19 w32
	r22 = const 1 w32
	r13 = add r13, r22 w32
	jmp b_busy
c_checks:
	r24 = const 255 w32
	r25 = and r20, r24 w32
	r26 = const 42 w32
	r27 = cmp.ne r25, r26 w32
	assert r27 "low byte hit 42"
	r28 = const 7 w32
	r29 = and r20, r28 w32
	r30 = const 5 w32
	r31 = cmp.ne r29, r30 w32
	assert r31 "low bits hit 5"
	exit
}
`

func parsePhased(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := ir.Parse(phasedIR)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func coverageAndBugs(res *Result) ([]int, []string) {
	blocks := res.Executor.CoveredBlocks()
	sites := make([]string, 0, len(res.Bugs))
	for _, b := range res.Bugs {
		sites = append(sites, b.Site())
	}
	sort.Strings(sites)
	return blocks, sites
}

// TestParallelDeterminism is the regression gate for the parallel
// scheduler: on a frontier the budget fully exhausts, every worker count
// must produce the same covered-block set and bug list, and repeated
// parallel runs must agree on everything (including per-phase stats).
func TestParallelDeterminism(t *testing.T) {
	for _, rngSeed := range []int64{3, 7} {
		t.Run(fmt.Sprintf("input-%d", rngSeed), func(t *testing.T) {
			prog := parsePhased(t)
			rng := rand.New(rand.NewSource(rngSeed))
			seed := make([]byte, 16)
			rng.Read(seed)

			run := func(workers int) *Result {
				res, err := Run(prog, seed,
					Options{Budget: 4_000_000, Seed: 5, Workers: workers, Deterministic: true},
					symex.Options{InputSize: len(seed)})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			base := run(1)
			if base.Gov.Concretizations != 0 {
				t.Fatalf("precondition violated: W=1 run degraded to concretization")
			}
			baseBlocks, baseSites := coverageAndBugs(base)

			for _, w := range []int{2, 8} {
				res := run(w)
				blocks, sites := coverageAndBugs(res)
				if !reflect.DeepEqual(blocks, baseBlocks) {
					t.Errorf("W=%d covered blocks differ from W=1: %d vs %d blocks\n w:  %v\n w1: %v",
						w, len(blocks), len(baseBlocks), blocks, baseBlocks)
				}
				if !reflect.DeepEqual(sites, baseSites) {
					t.Errorf("W=%d bug sites differ from W=1:\n w:  %v\n w1: %v", w, sites, baseSites)
				}
			}

			// The parallel scheduler must actually have engaged for the
			// comparison above to mean anything.
			eight := run(8)
			if eight.Workers <= 1 {
				t.Fatalf("parallel scheduler did not engage (workers=%d, %d phases)",
					eight.Workers, len(eight.PhaseStats))
			}

			// Same seed, same worker count: bit-for-bit agreement, down to
			// per-phase counters and governance stats.
			again := run(8)
			b1, s1 := coverageAndBugs(eight)
			b2, s2 := coverageAndBugs(again)
			if !reflect.DeepEqual(b1, b2) || !reflect.DeepEqual(s1, s2) {
				t.Errorf("repeated W=8 runs disagree on coverage or bugs")
			}
			if eight.Gov != again.Gov {
				t.Errorf("repeated W=8 runs disagree on GovStats: %+v vs %+v", eight.Gov, again.Gov)
			}
			if !reflect.DeepEqual(eight.PhaseStats, again.PhaseStats) {
				t.Errorf("repeated W=8 runs disagree on PhaseStats:\n a: %+v\n b: %+v",
					eight.PhaseStats, again.PhaseStats)
			}
		})
	}
}

// TestParallelMatchesSequentialOnTarget runs a real generated target at a
// small budget under W=1 and W=4 and checks the W=1 path is untouched by
// the refactor (field defaults route to the legacy scheduler) while W=4
// produces a valid result with worker stats and shared-cache traffic.
func TestParallelSmokeOnTarget(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", 200_000, Options{Workers: 4})
	if res.Covered == 0 {
		t.Fatal("no coverage")
	}
	if res.Workers > 1 {
		if len(res.WorkerStats) != res.Workers {
			t.Fatalf("got %d worker stats for %d workers", len(res.WorkerStats), res.Workers)
		}
		var turns int64
		for _, w := range res.WorkerStats {
			turns += w.Turns
		}
		if turns == 0 {
			t.Error("no turns recorded by any worker")
		}
	}
	if res.SolverStats.Queries == 0 {
		t.Error("aggregated solver stats empty")
	}
}
