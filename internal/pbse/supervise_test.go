package pbse

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"testing"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// killBudget keeps the SIGKILL/resume matrix affordable: the round count
// (~Budget/TimePeriod = 50) is budget-independent, so a small budget
// still puts kill-round=2 well inside the campaign.
const killBudget = 30_000

// runPhasedSupervised runs the parallel-scheduler regression program
// with optional supervision and fault injection.
func runPhasedSupervised(t *testing.T, workers int, so *supervise.Options, inj *faultinject.Injector) *Result {
	t.Helper()
	prog := parsePhased(t)
	rng := rand.New(rand.NewSource(3))
	seed := make([]byte, 16)
	rng.Read(seed)
	// The program's frontier exhausts around clock 31k, so the default
	// TimePeriod (Budget/50) explores it in one giant turn per phase. A
	// tiny explicit period forces ~25 escalating rounds instead, giving
	// the per-turn supervision hooks a real workout.
	res, err := Run(prog, seed, Options{Budget: 4_000_000, Seed: 5, Workers: workers, TimePeriod: 100, Supervise: so, Deterministic: true},
		symex.Options{InputSize: len(seed), FaultInjector: inj})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSupervisedNoFaultIdentical is the supervision determinism gate:
// with no fault injected, a supervised campaign must be bit-identical to
// an unsupervised one — same coverage, bugs, per-phase stats, and
// governance counters — and report an all-zero SupStats.
func TestSupervisedNoFaultIdentical(t *testing.T) {
	skipIfShort(t)
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			t.Parallel()
			base := runPhasedSupervised(t, workers, nil, nil)
			sup := runPhasedSupervised(t, workers, &supervise.Options{Enabled: true}, nil)
			if !sup.Supervised {
				t.Fatal("supervised run not marked Supervised")
			}
			if base.Supervised {
				t.Fatal("unsupervised run marked Supervised")
			}
			bCov, bBugs := coverageAndBugs(base)
			sCov, sBugs := coverageAndBugs(sup)
			if !reflect.DeepEqual(bCov, sCov) {
				t.Errorf("coverage diverged: base=%d blocks supervised=%d blocks", len(bCov), len(sCov))
			}
			if !reflect.DeepEqual(bBugs, sBugs) {
				t.Errorf("bugs diverged:\n base       %v\n supervised %v", bBugs, sBugs)
			}
			if !reflect.DeepEqual(base.PhaseStats, sup.PhaseStats) {
				t.Errorf("phase stats diverged:\n base       %+v\n supervised %+v", base.PhaseStats, sup.PhaseStats)
			}
			if base.Gov != sup.Gov {
				t.Errorf("gov diverged: base=%+v supervised=%+v", base.Gov, sup.Gov)
			}
			if sup.Sup != (supervise.SupStats{}) {
				t.Errorf("fault-free supervision recorded activity: %+v", sup.Sup)
			}
		})
	}
}

// TestSupervisedChaosParallel: at 10% injected crash and hang rates the
// supervised parallel campaign must complete with accurate fault
// accounting and nearly the coverage of the undisturbed run.
func TestSupervisedChaosParallel(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	base := runPhasedSupervised(t, 4, nil, nil)
	inj := faultinject.New(99, faultinject.Options{
		IslandCrashRate: 0.1,
		IslandHangRate:  0.1,
		IslandHangDelay: 250 * time.Millisecond,
	})
	// A hang delay well past deadline+grace forces genuine limbo trips;
	// a roomy restart cap keeps slow reintegration from quarantining
	// islands (the quarantine rung is unit-tested in internal/supervise).
	res := runPhasedSupervised(t, 4, &supervise.Options{
		Enabled:           true,
		IslandDeadline:    50 * time.Millisecond,
		HangGrace:         50 * time.Millisecond,
		MaxIslandRestarts: 50,
	}, inj)
	if res.Interrupted {
		t.Fatal("chaos run did not complete")
	}
	if res.Sup.Faults() == 0 {
		t.Fatal("10% crash+hang rates fired no faults — injection not wired through")
	}
	if res.Sup.Crashes == 0 {
		t.Errorf("no crashes contained: %+v", res.Sup)
	}
	if res.Sup.DegradedRounds == 0 {
		t.Errorf("faults fired but no round marked degraded: %+v", res.Sup)
	}
	if res.Sup.WatchdogTrips < res.Sup.Hangs {
		t.Errorf("every hang implies a prior watchdog trip: %+v", res.Sup)
	}
	bCov, _ := coverageAndBugs(base)
	cCov, _ := coverageAndBugs(res)
	if min := (len(bCov) * 95) / 100; len(cCov) < min {
		t.Errorf("chaos coverage %d below 95%% of undisturbed %d", len(cCov), len(bCov))
	}
}

// TestSupervisedW1CrashAccounting: at Workers=1 the process injector
// feeds the inline containment directly, so the contained-crash counter
// must match the injector's fire count exactly.
func TestSupervisedW1CrashAccounting(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	base := runPhasedSupervised(t, 1, nil, nil)
	inj := faultinject.New(17, faultinject.Options{IslandCrashRate: 0.1})
	res := runPhasedSupervised(t, 1, &supervise.Options{Enabled: true}, inj)
	fired := inj.Counts().IslandCrash
	if fired == 0 {
		t.Fatal("injector never fired")
	}
	if res.Sup.Crashes != fired {
		t.Errorf("Sup.Crashes = %d, injector fired %d", res.Sup.Crashes, fired)
	}
	if res.Sup.RequeuedStates == 0 {
		t.Errorf("contained crashes requeued no states: %+v", res.Sup)
	}
	bCov, _ := coverageAndBugs(base)
	cCov, _ := coverageAndBugs(res)
	if min := (len(bCov) * 95) / 100; len(cCov) < min {
		t.Errorf("crash-ridden coverage %d below 95%% of undisturbed %d", len(cCov), len(bCov))
	}
}

// TestSupervisedKillResume is the self-healing acceptance gate: a
// campaign SIGKILLed mid-round (after a round's turns, before its
// checkpoint — the injected kill-round fault) and resumed from the last
// checkpoint must land bit-identical to the uninterrupted run.
func TestSupervisedKillResume(t *testing.T) {
	skipIfShort(t)
	for _, workers := range []int{2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			t.Parallel()
			stFull, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			full := runStored(t, "readelf", killBudget, Options{
				Workers: workers, Store: stFull, StoreLabel: "readelf", Deterministic: true,
			})
			if full.Interrupted {
				t.Fatal("reference run reported Interrupted")
			}

			// Re-exec this test binary as the victim: it runs the same
			// campaign with kill-round=2 and SIGKILLs itself mid-round.
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestSupervisedKillVictim$", "-test.v")
			cmd.Env = append(os.Environ(),
				"PBSE_KILL_VICTIM=1",
				"PBSE_KILL_STORE="+dir,
				"PBSE_KILL_WORKERS="+strconv.Itoa(workers))
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ProcessState.ExitCode() != -1 {
				t.Fatalf("victim did not die on a signal (err=%v):\n%s", err, out)
			}

			stRes, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !stRes.HasCheckpoint() {
				t.Fatal("no checkpoint survived the SIGKILL")
			}
			resumed := runStored(t, "readelf", killBudget, Options{
				Workers: workers, Store: stRes, StoreLabel: "readelf", Resume: true,
				Supervise: &supervise.Options{Enabled: true}, Deterministic: true,
			})
			if !resumed.Resumed {
				t.Fatal("resume run did not report Resumed")
			}
			if resumed.Interrupted {
				t.Fatal("resume run reported Interrupted")
			}

			if full.Covered != resumed.Covered {
				t.Errorf("coverage diverged: full=%d resumed=%d", full.Covered, resumed.Covered)
			}
			if f, r := bugIDs(full), bugIDs(resumed); !reflect.DeepEqual(f, r) {
				t.Errorf("bug IDs diverged:\n full    %v\n resumed %v", f, r)
			}
			if !reflect.DeepEqual(full.PhaseStats, resumed.PhaseStats) {
				t.Errorf("phase stats diverged:\n full    %+v\n resumed %+v", full.PhaseStats, resumed.PhaseStats)
			}
			if full.Gov != resumed.Gov {
				t.Errorf("gov stats diverged: full=%+v resumed=%+v", full.Gov, resumed.Gov)
			}
		})
	}
}

// TestSupervisedKillVictim is the subprocess body for
// TestSupervisedKillResume; it only runs when re-executed with
// PBSE_KILL_VICTIM=1 and never returns normally — the injected
// kill-round=2 SIGKILLs the process after round 2's turns.
func TestSupervisedKillVictim(t *testing.T) {
	if os.Getenv("PBSE_KILL_VICTIM") != "1" {
		t.Skip("subprocess body for TestSupervisedKillResume")
	}
	workers, err := strconv.Atoi(os.Getenv("PBSE_KILL_WORKERS"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(os.Getenv("PBSE_KILL_STORE"))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), storeSeedSize)
	inj := faultinject.New(7, faultinject.Options{KillRound: 2})
	_, err = Run(prog, seed, Options{
		Budget: killBudget, Workers: workers, Store: st, StoreLabel: "readelf",
		Supervise: &supervise.Options{Enabled: true}, Deterministic: true,
	}, symex.Options{InputSize: len(seed), FaultInjector: inj})
	t.Fatalf("survived kill-round=2 (err=%v) — campaign ran fewer than 2 rounds?", err)
}
