package pbse

// Handle is the contract the campaign service builds on: Step-chunked
// execution of any granularity must land bit-identical to one
// uninterrupted Run, and a handle must be safe to construct over a
// store in any state (fresh, mid-campaign, complete).

import (
	"math/rand"
	"reflect"
	"testing"

	"pbse/internal/ir"
	"pbse/internal/store"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

const handleBudget = 10_000

// buildTarget materializes a registered target and a deterministic seed.
func buildTarget(t *testing.T, driver string, seedSize int) (*ir.Program, []byte) {
	t.Helper()
	tgt, err := targets.ByDriver(driver)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, tgt.GenSeed(rand.New(rand.NewSource(42)), seedSize)
}

func TestHandleRejectsBadOptions(t *testing.T) {
	prog, seed := buildTarget(t, "readelf", 256)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHandle(prog, seed, Options{Budget: handleBudget}, symex.Options{InputSize: len(seed)}); err == nil {
		t.Error("NewHandle without a store succeeded")
	}
	if _, err := NewHandle(prog, seed, Options{Budget: handleBudget, Store: st, MaxRounds: 1},
		symex.Options{InputSize: len(seed)}); err == nil {
		t.Error("NewHandle with MaxRounds set succeeded")
	}
	if _, err := NewHandle(prog, seed, Options{Budget: handleBudget, Store: st, Resume: true},
		symex.Options{InputSize: len(seed)}); err == nil {
		t.Error("NewHandle with Resume set succeeded")
	}
}

// TestHandleStepEquivalence walks one campaign round-by-round through a
// Handle and checks the cumulative result of the last Step is
// bit-identical to an uninterrupted Run, that Done flips exactly at
// budget exhaustion, and that stepping a finished handle is a no-op.
func TestHandleStepEquivalence(t *testing.T) {
	prog, seed := buildTarget(t, "readelf", 256)

	stRef, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(prog, seed, Options{
		Budget: handleBudget, Store: stRef, StoreLabel: "readelf",
	}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandle(prog, seed, Options{
		Budget: handleBudget, Store: st, StoreLabel: "readelf",
	}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	steps := 0
	for !h.Done() {
		if res, err = h.Step(1); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 100 {
			t.Fatal("campaign did not finish in 100 single-round steps")
		}
	}
	if steps < 2 {
		t.Fatalf("campaign finished in %d step(s) — nothing was chunked", steps)
	}
	if res.Interrupted {
		t.Error("final Step still reported Interrupted")
	}
	if res.Covered != ref.Covered {
		t.Errorf("coverage: stepped %d, uninterrupted %d", res.Covered, ref.Covered)
	}
	if s, r := bugIDs(res), bugIDs(ref); !reflect.DeepEqual(s, r) {
		t.Errorf("bug IDs: stepped %v, uninterrupted %v", s, r)
	}
	if !reflect.DeepEqual(res.PhaseStats, ref.PhaseStats) {
		t.Errorf("phase stats diverged:\n stepped %+v\n full    %+v", res.PhaseStats, ref.PhaseStats)
	}
	if res.Gov != ref.Gov {
		t.Errorf("gov stats diverged: stepped %+v, full %+v", res.Gov, ref.Gov)
	}

	// Step after done: no-op returning the last result.
	again, err := h.Step(1)
	if err != nil || again != res {
		t.Errorf("Step on finished handle: (%p, %v), want cached %p", again, err, res)
	}
	if h.Last() != res {
		t.Error("Last did not return the final result")
	}

	// A fresh handle over the completed store yields the full result on
	// its first Step — the service's restart-after-completion path.
	h2, err := NewHandle(prog, seed, Options{
		Budget: handleBudget, Store: st, StoreLabel: "readelf",
	}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Interrupted || res2.Covered != ref.Covered {
		t.Errorf("handle over completed store: interrupted=%v covered=%d, want false/%d",
			res2.Interrupted, res2.Covered, ref.Covered)
	}
	if !h2.Done() {
		t.Error("handle over completed store not Done after first Step")
	}
}
