package pbse

import (
	"math/rand"
	"testing"

	"pbse/internal/interp"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

const testBudget = 400_000

func runPBSE(t *testing.T, driver string, budget int64, opts Options) *Result {
	t.Helper()
	tgt, err := targets.ByDriver(driver)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	opts.Budget = budget
	res, err := Run(prog, seed, opts, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPBSEEndToEndMiniELF(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget, Options{})
	if res.Covered == 0 {
		t.Fatal("no coverage")
	}
	if res.Division == nil || len(res.Division.Phases) == 0 {
		t.Fatal("no phases identified")
	}
	if res.CTime <= 0 {
		t.Error("c-time not recorded")
	}
	if res.PTime <= 0 {
		t.Error("p-time not recorded")
	}
	if len(res.Series) == 0 {
		t.Error("coverage series empty")
	}
	// seedStates must be distributed over phases
	total := 0
	for _, ps := range res.PhaseStats {
		total += ps.SeedStates
	}
	if total == 0 {
		t.Error("no seedStates assigned to any phase")
	}
}

func TestPBSEFindsDeepBugs(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", 800_000, Options{})
	if len(res.Bugs) == 0 {
		t.Fatal("pbSE found no bugs in minielf")
	}
	foundWithWitness := 0
	tgt, _ := targets.ByDriver("readelf")
	prog, _ := tgt.Build()
	for _, b := range res.Bugs {
		if b.Input == nil {
			continue
		}
		r := interp.New(prog, b.Input, interp.Options{MaxSteps: 10_000_000}).Run()
		if r.Reason == interp.StopFault {
			foundWithWitness++
		} else {
			t.Errorf("witness for %v does not reproduce (got %v)", b, r.Reason)
		}
	}
	if foundWithWitness == 0 {
		t.Error("no bug had a reproducing witness")
	}
	// bugs must be attributed to a phase
	for _, b := range res.Bugs {
		if b.Phase < 0 {
			t.Errorf("bug %v has no phase attribution", b)
		}
	}
}

// TestPBSEBeatsKLEEDefault is the headline claim (Table I/II shape): at
// the same virtual-time budget, pbSE covers more basic blocks than
// KLEE's default searcher started from scratch.
func TestPBSEBeatsKLEEDefault(t *testing.T) {
	skipIfShort(t)
	const budget = 500_000
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)

	// pbSE
	progA, _ := tgt.Build()
	pres, err := Run(progA, seed, Options{Budget: budget}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}

	// KLEE default (random-path + covnew interleaved), symbolic file of
	// the same size
	progB, _ := tgt.Build()
	ex := symex.NewExecutor(progB, symex.Options{InputSize: len(seed)})
	rng := rand.New(rand.NewSource(1))
	s, _ := symex.NewSearcher(symex.SearchDefault, ex, rng)
	s.Add(ex.NewEntryState())
	(&symex.Runner{Ex: ex, Search: s}).Run(budget)

	t.Logf("pbSE covered %d, KLEE default covered %d", pres.Covered, ex.NumCovered())
	if pres.Covered <= ex.NumCovered() {
		t.Errorf("pbSE (%d) did not beat KLEE default (%d)", pres.Covered, ex.NumCovered())
	}
}

// TestPBSEDeterminism re-runs one driver and expects identical results.
// readelf, not pngtest: pngtest's solver load made this one test take
// ~10 minutes, pushing the package past go test's default timeout. The
// determinism property is driver-independent (all randomness flows from
// the seed), pngtest still runs in TestPBSEAllTargets, and the parallel
// scheduler's stronger determinism gate is TestParallelDeterminism.
func TestPBSEDeterminism(t *testing.T) {
	skipIfShort(t)
	r1 := runPBSE(t, "readelf", testBudget/4, Options{})
	r2 := runPBSE(t, "readelf", testBudget/4, Options{})
	if r1.Covered != r2.Covered || len(r1.Bugs) != len(r2.Bugs) {
		t.Errorf("nondeterministic: covered %d/%d bugs %d/%d",
			r1.Covered, r2.Covered, len(r1.Bugs), len(r2.Bugs))
	}
}

func TestPBSESequentialAblation(t *testing.T) {
	skipIfShort(t)
	seq := runPBSE(t, "readelf", testBudget/4, Options{Sequential: true})
	if seq.Covered == 0 {
		t.Fatal("sequential scheduling produced no coverage")
	}
}

func TestPBSEDedupAblation(t *testing.T) {
	skipIfShort(t)
	with := runPBSE(t, "readelf", testBudget/4, Options{})
	without := runPBSE(t, "readelf", testBudget/4, Options{DisableDedup: true})
	// dedup strictly reduces the seedState pool
	sum := func(r *Result) int {
		n := 0
		for _, ps := range r.PhaseStats {
			n += ps.SeedStates
		}
		return n
	}
	if sum(with) >= sum(without) {
		t.Errorf("dedup did not reduce seedStates: %d vs %d", sum(with), sum(without))
	}
}

func TestPBSEAllTargets(t *testing.T) {
	skipIfShort(t)
	for _, driver := range []string{"readelf", "pngtest", "gif2tiff", "tiff2rgba", "dwarfdump"} {
		t.Run(driver, func(t *testing.T) {
			res := runPBSE(t, driver, testBudget/8, Options{})
			if res.Covered == 0 {
				t.Error("no coverage")
			}
			if len(res.Division.Phases) == 0 {
				t.Error("no phases")
			}
		})
	}
}

func TestPBSERejectsZeroBudget(t *testing.T) {
	tgt, _ := targets.ByDriver("readelf")
	prog, _ := tgt.Build()
	if _, err := Run(prog, []byte{1}, Options{}, symex.Options{InputSize: 1}); err == nil {
		t.Error("expected error for zero budget")
	}
}

// skipIfShort skips full-budget pbSE runs under -short; the quick smoke
// test below keeps the end-to-end path exercised.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-budget pbSE run skipped in -short mode")
	}
}

// TestPBSEShortSmoke is the -short stand-in for the full-budget tests: a
// small-budget end-to-end run that still goes through concolic execution,
// phase division, static hints and round-robin scheduling.
func TestPBSEShortSmoke(t *testing.T) {
	res := runPBSE(t, "readelf", 40_000, Options{})
	if res.Covered == 0 {
		t.Fatal("smoke run covered nothing")
	}
	if res.Division == nil || len(res.Division.Phases) == 0 {
		t.Fatal("smoke run produced no phases")
	}
	if res.Hints == nil {
		t.Fatal("smoke run computed no static hints")
	}
}
