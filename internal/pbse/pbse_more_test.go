package pbse

import (
	"math/rand"
	"testing"

	"pbse/internal/phase"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

func TestTrapOnlyOption(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget/4, Options{TrapOnly: true})
	if res.Covered == 0 {
		t.Fatal("trap-only scheduling produced no coverage")
	}
	// every scheduled phase with work must be a trap phase (or the first
	// non-empty pool kept as fallback)
	nonTrapWithWork := 0
	for _, ps := range res.PhaseStats {
		if !ps.Trap && ps.Steps > 0 {
			nonTrapWithWork++
		}
	}
	if nonTrapWithWork > 1 {
		t.Errorf("%d non-trap phases were scheduled under TrapOnly", nonTrapWithWork)
	}
}

func TestExplicitTimePeriod(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget/4, Options{TimePeriod: 1_000})
	if res.Covered == 0 {
		t.Fatal("no coverage with explicit time period")
	}
}

func TestPhaseOptsPropagate(t *testing.T) {
	skipIfShort(t)
	po := phase.DefaultOptions()
	po.KMin, po.KMax = 2, 2
	res := runPBSE(t, "readelf", testBudget/4, Options{PhaseOpts: po})
	if res.Division.K != 2 {
		t.Errorf("k = %d, want forced 2", res.Division.K)
	}
}

func TestSeriesMonotone(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "gif2tiff", testBudget/4, Options{})
	prevT, prevC := int64(-1), -1
	for _, pt := range res.Series {
		if pt.Time < prevT || pt.Covered < prevC {
			t.Fatalf("series not monotone: %+v", res.Series)
		}
		prevT, prevC = pt.Time, pt.Covered
	}
}

func TestConcolicIntervalAutoSizing(t *testing.T) {
	skipIfShort(t)
	// default options must yield enough BBVs for meaningful clustering
	res := runPBSE(t, "dwarfdump", testBudget, Options{})
	if n := len(res.Concolic.BBVs); n < 10 {
		t.Errorf("auto-sized interval produced only %d BBVs", n)
	}
}

func TestBudgetRespected(t *testing.T) {
	skipIfShort(t)
	res := runPBSE(t, "readelf", testBudget/4, Options{})
	clock := res.Executor.Clock()
	// StepBlock overshoot is bounded by one block, but phase turns check
	// per step; allow a small slack
	budget := int64(testBudget / 4)
	if clock > budget+budget/10 {
		t.Errorf("clock %d wildly exceeds budget %d", clock, budget)
	}
}

func TestPBSEWithSelectedSeed(t *testing.T) {
	skipIfShort(t)
	tgt, err := targets.ByDriver("pngtest")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A small corpus and budget keep this inside the suite's time budget:
	// the test exercises the SelectSeed -> Run pipeline, not coverage depth.
	rng := rand.New(rand.NewSource(8))
	var corpus [][]byte
	for i := 0; i < 3; i++ {
		corpus = append(corpus, tgt.GenSeed(rng, 300+i*100))
	}
	seed := targets.SelectSeed(prog, corpus)
	if seed == nil {
		t.Fatal("seed selection failed")
	}
	res, err := Run(prog, seed, Options{Budget: testBudget / 4}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered == 0 {
		t.Error("no coverage from selected seed")
	}
}
