package symex

// Plain-data state snapshots for the persistent run store
// (internal/store). A snapshot references program locations by stable
// identifiers — function name, global block ID — and expressions as live
// *expr.Expr nodes, which the store's codec serialises through its
// deterministic expression table. Two things are deliberately not
// captured: ptNode (random-path tree linkage, scheduler-local and
// nil-tolerated everywhere) and the copy-on-write freeze bits (the
// restored state owns deep copies, so the next fork re-freezes).

import (
	"fmt"
	"sort"

	"pbse/internal/expr"
	"pbse/internal/ir"
)

// StateSnap is a self-contained snapshot of one State.
type StateSnap struct {
	ID     int
	Frames []FrameSnap
	Objs   []ObjSnap // ascending object id
	// NextObjID is the state's next allocation id.
	NextObjID uint32

	BlockID int // global block ID, -1 when the state has no position
	Idx     int

	PC []*expr.Expr // path constraints, oldest first

	Depth         int
	ForkTime      int64
	LastNewCover  int64
	StepsExecuted int64

	SeedForkBlockID int
	SeedForkIdx     int

	NeedsValidation bool
	Terminated      bool // pools keep terminated states until next selection
	Evicted         bool
}

// FrameSnap is one activation record of a snapshot.
type FrameSnap struct {
	Fn         string
	Regs       []*expr.Expr // nil entries are unwritten registers
	RetDst     ir.Reg
	RetBlockID int // -1 for the entry frame
	RetIndex   int
}

// ObjSnap is one memory object of a snapshot.
type ObjSnap struct {
	ID   uint32
	Size int
	Conc []byte
	Sym  []*expr.Expr // nil, or len Size with nil holes
}

// Snapshot captures st as plain data. The snapshot shares nothing mutable
// with st (slices are copied; expressions are immutable).
func (e *Executor) Snapshot(st *State) *StateSnap {
	snap := &StateSnap{
		ID:              st.ID,
		NextObjID:       st.nextID,
		BlockID:         -1,
		Idx:             st.Idx,
		PC:              append([]*expr.Expr(nil), st.PathConstraints()...),
		Depth:           st.Depth,
		ForkTime:        st.ForkTime,
		LastNewCover:    st.LastNewCover,
		StepsExecuted:   st.StepsExecuted,
		SeedForkBlockID: st.SeedForkBlockID,
		SeedForkIdx:     st.SeedForkIdx,
		NeedsValidation: st.needsValidation,
		Terminated:      st.terminated,
		Evicted:         st.evicted,
	}
	if st.Blk != nil {
		snap.BlockID = st.Blk.ID
	}
	for _, f := range st.frames {
		fs := FrameSnap{
			Fn:         f.fn.Name,
			Regs:       append([]*expr.Expr(nil), f.regs...),
			RetDst:     f.retDst,
			RetBlockID: -1,
			RetIndex:   f.retIndex,
		}
		if f.retBlock != nil {
			fs.RetBlockID = f.retBlock.ID
		}
		snap.Frames = append(snap.Frames, fs)
	}
	ids := make([]uint32, 0, len(st.objs))
	for id := range st.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := st.objs[id]
		os := ObjSnap{ID: id, Size: o.size, Conc: append([]byte(nil), o.conc...)}
		if o.sym != nil {
			os.Sym = append([]*expr.Expr(nil), o.sym...)
		}
		snap.Objs = append(snap.Objs, os)
	}
	return snap
}

// RestoreState rebuilds a snapshotted state inside e. Every expression in
// the snapshot must already live in e.Ctx (the store codec decodes them
// there). Live states are registered with the executor; terminated ones
// are rebuilt inert, preserving pool composition across a resume. The
// executor's next fork ID advances past the restored ID.
func (e *Executor) RestoreState(snap *StateSnap) (*State, error) {
	prog := e.Prog
	st := &State{
		ID:              snap.ID,
		objs:            make(map[uint32]*mobject, len(snap.Objs)),
		nextID:          snap.NextObjID,
		Idx:             snap.Idx,
		Depth:           snap.Depth,
		ForkTime:        snap.ForkTime,
		LastNewCover:    snap.LastNewCover,
		StepsExecuted:   snap.StepsExecuted,
		SeedForkBlockID: snap.SeedForkBlockID,
		SeedForkIdx:     snap.SeedForkIdx,
		needsValidation: snap.NeedsValidation,
		terminated:      snap.Terminated,
		evicted:         snap.Evicted,
	}
	if snap.BlockID >= 0 {
		if snap.BlockID >= len(prog.AllBlocks) {
			return nil, fmt.Errorf("symex: restore state %d: block %d out of range", snap.ID, snap.BlockID)
		}
		st.Blk = prog.AllBlocks[snap.BlockID]
		if snap.Idx < 0 || snap.Idx > len(st.Blk.Instrs) {
			return nil, fmt.Errorf("symex: restore state %d: index %d out of range in %s", snap.ID, snap.Idx, st.Blk.Name)
		}
	}
	for _, fs := range snap.Frames {
		fn := prog.Func(fs.Fn)
		if fn == nil {
			return nil, fmt.Errorf("symex: restore state %d: unknown function %q", snap.ID, fs.Fn)
		}
		f := &frame{fn: fn, retDst: fs.RetDst, retIndex: fs.RetIndex}
		f.regs = make([]*expr.Expr, fn.NumRegs)
		if len(fs.Regs) > len(f.regs) {
			return nil, fmt.Errorf("symex: restore state %d: %d regs for %q (max %d)", snap.ID, len(fs.Regs), fs.Fn, len(f.regs))
		}
		copy(f.regs, fs.Regs)
		if fs.RetBlockID >= 0 {
			if fs.RetBlockID >= len(prog.AllBlocks) {
				return nil, fmt.Errorf("symex: restore state %d: return block %d out of range", snap.ID, fs.RetBlockID)
			}
			f.retBlock = prog.AllBlocks[fs.RetBlockID]
		}
		st.frames = append(st.frames, f)
	}
	for _, os := range snap.Objs {
		if os.Size != len(os.Conc) || (os.Sym != nil && len(os.Sym) != os.Size) {
			return nil, fmt.Errorf("symex: restore state %d: object %d size mismatch", snap.ID, os.ID)
		}
		o := &mobject{size: os.Size, conc: append([]byte(nil), os.Conc...)}
		if os.Sym != nil {
			o.sym = append([]*expr.Expr(nil), os.Sym...)
		}
		st.objs[os.ID] = o
	}
	for _, c := range snap.PC {
		st.addConstraint(c)
	}
	if e.nextStateID <= st.ID {
		e.nextStateID = st.ID + 1
	}
	if !st.terminated {
		e.register(st)
	}
	return st, nil
}

// SetClock restores the virtual clock of a resumed executor.
func (e *Executor) SetClock(t int64) { e.clock = t }

// NextStateID returns the next fork ID the executor will assign.
func (e *Executor) NextStateID() int { return e.nextStateID }

// AdoptQuarantineRecords restores checkpointed quarantine diagnostics
// (subject to the usual retention cap; the carried GovStats hold the true
// count).
func (e *Executor) AdoptQuarantineRecords(rs []QuarantineRecord) {
	for _, r := range rs {
		if len(e.quarantined) >= maxQuarantineRecords {
			return
		}
		e.quarantined = append(e.quarantined, r)
	}
}
