package symex

import (
	"math/rand"

	"pbse/internal/analysis"
)

// weightedSearcher selects states with probability proportional to a
// weight function — KLEE's WeightedRandomSearcher.
type weightedSearcher struct {
	name   string
	states []*State
	rng    *rand.Rand
	weight func(*State) float64
}

func (s *weightedSearcher) Name() string { return s.name }

func (s *weightedSearcher) Add(st *State) { s.states = append(s.states, st) }

func (s *weightedSearcher) Remove(st *State) {
	for i := range s.states {
		if s.states[i] == st {
			s.states[i] = s.states[len(s.states)-1]
			s.states = s.states[:len(s.states)-1]
			return
		}
	}
}

func (s *weightedSearcher) Select() *State {
	total := 0.0
	for _, st := range s.states {
		total += s.weight(st)
	}
	if total <= 0 {
		return s.states[s.rng.Intn(len(s.states))]
	}
	r := s.rng.Float64() * total
	for _, st := range s.states {
		r -= s.weight(st)
		if r <= 0 {
			return st
		}
	}
	return s.states[len(s.states)-1]
}

func (s *weightedSearcher) Empty() bool { return len(s.states) == 0 }

// newCovNewSearcher weights states by how recently they covered new code
// (KLEE's CoveringNew heuristic): states that found fresh blocks lately
// get selected more often.
func newCovNewSearcher(ex *Executor, rng *rand.Rand) Searcher {
	return &weightedSearcher{
		name: string(SearchCovNew),
		rng:  rng,
		weight: func(st *State) float64 {
			age := ex.Clock() - st.LastNewCover
			if age < 0 {
				age = 0
			}
			// +depth term mirrors KLEE's md2u component of covnew's
			// weight: prefer states that are not absurdly deep
			return 1.0 / float64(age+1) / float64(st.Depth+1)
		},
	}
}

// md2uSearcher weights states by the inverse minimum distance (in CFG
// blocks, with call edges) to an uncovered block — KLEE's
// MinDistToUncovered heuristic. Distances come from a shared
// analysis.DistanceOracle: one multi-source reverse BFS per coverage
// epoch instead of a forward BFS per queried block.
type md2uSearcher struct {
	weightedSearcher

	ex     *Executor
	oracle *analysis.DistanceOracle
	epoch  int
}

func newMD2USearcher(ex *Executor, rng *rand.Rand) Searcher {
	s := &md2uSearcher{
		ex:     ex,
		oracle: analysis.NewDistanceOracle(ex.Prog, nil),
		epoch:  -1,
	}
	s.name = string(SearchMD2U)
	s.rng = rng
	s.weight = s.md2uWeight
	return s
}

func (s *md2uSearcher) md2uWeight(st *State) float64 {
	if s.epoch != s.ex.CoverEpoch() {
		s.epoch = s.ex.CoverEpoch()
		s.oracle.Recompute(s.ex.Covered)
	}
	d := s.oracle.Dist(st.Blk.ID)
	if d < 0 {
		return 1e-9 // no uncovered block reachable
	}
	return 1.0 / float64(d+1)
}
