package symex

import (
	"fmt"
	"sync/atomic"

	"pbse/internal/analysis"
	"pbse/internal/bugs"
	"pbse/internal/expr"
	"pbse/internal/faultinject"
	"pbse/internal/ir"
	"pbse/internal/solver"
)

// Options configure an Executor.
type Options struct {
	// InputSize is the symbolic input size in bytes.
	InputSize int
	// SolverOpts tune the constraint solver.
	SolverOpts solver.Options
	// ITEThreshold is the maximum offset range materialised as an ITE
	// chain for symbolic loads; wider ranges are concretised. Default 16.
	ITEThreshold int
	// MaxStates caps live states; further forks are suppressed (the
	// false/else side is dropped). 0 means unlimited.
	MaxStates int
	// MaxStateBytes is a soft cap on the estimated total heap footprint
	// of live states. When a periodic sweep finds the total above the
	// cap, the executor evicts (terminates) the highest-cost states,
	// preferring non-seedStates so Algorithm 3's per-phase seeds survive
	// pressure. 0 means unlimited.
	MaxStateBytes int64
	// FaultInjector, when set, enables deterministic fault injection for
	// robustness testing. It is also wired into SolverOpts.Injector
	// unless one is already set there.
	FaultInjector *faultinject.Injector
	// Static, when set, enables static query pruning from the
	// abstract-interpretation pass: branch queries consult the proven
	// edge-feasibility map and solver.PreCheck seeded with the current
	// block's interval invariants before any SAT dispatch. The facts must
	// come from the same finalised program this executor runs.
	Static *analysis.AbsFacts
	// BatchSiblings routes the sibling feasibility queries of one branch
	// or switch terminator through solver.FeasibleBatch: the shared
	// path-constraint slice is bit-blasted once and each sibling decided
	// under an assumption literal. Verdicts are identical to individual
	// queries but arrive in a different cache/publication order, so only
	// the fast-mode work-stealing scheduler sets this — the deterministic
	// schedulers keep the classic one-query-at-a-time stream.
	BatchSiblings bool
}

// TermReason explains why a state terminated.
type TermReason int

// Termination reasons.
const (
	TermNone        TermReason = iota
	TermExit                   // clean exit
	TermInfeasible             // path constraints became unsatisfiable
	TermFault                  // unavoidable fault (e.g. concrete div by zero)
	TermError                  // internal error (wild pointer, unknown op)
	TermQuarantined            // a panic while stepping was contained to this state
	TermEvicted                // terminated by the memory-pressure sweep
)

// StepResult reports what happened during one StepBlock call.
type StepResult struct {
	Added      []*State // states forked off during the step
	NewCover   bool     // entered a block not covered before
	Terminated bool
	Reason     TermReason
	Bug        *bugs.Report // bug found during the step (may be non-fatal)
}

// Executor drives symbolic execution of one program. It owns the
// expression context, the solver, global coverage, and bug collection;
// search order is decided by the caller (a Searcher or the pbSE
// scheduler).
type Executor struct {
	Prog     *ir.Program
	Ctx      *expr.Context
	Solver   *solver.Solver
	InputArr *expr.Array
	Bugs     *bugs.Collector

	// BlockHook, when set, is invoked on every basic-block entry with the
	// entering state and the virtual time (used for BBV gathering and
	// trace recording).
	BlockHook func(st *State, b *ir.Block, clock int64)

	opts        Options
	concolic    *concolicMode
	clock       int64
	covered     []bool
	numCovered  int
	coverEpoch  int // bumped when coverage grows (heuristic caches key on it)
	nextStateID int
	liveStates  int

	// Resource governance (govern.go).
	inj                *faultinject.Injector
	gov                GovStats
	live               map[*State]struct{}
	stepsSincePressure int
	quarantined        []QuarantineRecord

	// factBuf is reused scratch for materialising static invariants as
	// solver.RangeFacts (static.go).
	factBuf []solver.RangeFact

	// witnessTried records bug sites (BlockID<<32|instr index) where the
	// batched bounds check already attempted the expensive full-path
	// witness query. A successful attempt reports the bug (and Seen
	// suppresses later ones); a failed one means the witness solve gave
	// up — without this memo such a site would re-run the doomed query
	// on every later execution of the same instruction (memory.go).
	witnessTried map[int64]bool

	// Supervision hooks (see internal/supervise and DESIGN.md §11).
	// interrupted is the cooperative abort flag a watchdog raises from
	// another goroutine; schedulers poll it between steps. concretizeOnly
	// is only toggled between turns by whoever owns the executor, so it
	// needs no synchronization.
	interrupted    atomic.Bool
	concretizeOnly bool
}

// NewExecutor returns an executor for prog with a fresh context/solver.
func NewExecutor(prog *ir.Program, opts Options) *Executor {
	if opts.ITEThreshold == 0 {
		opts.ITEThreshold = 16
	}
	if opts.FaultInjector != nil && opts.SolverOpts.Injector == nil {
		opts.SolverOpts.Injector = opts.FaultInjector
	}
	ctx := expr.NewContext()
	return &Executor{
		Prog:     prog,
		Ctx:      ctx,
		Solver:   solver.New(opts.SolverOpts),
		InputArr: expr.NewArray("input", opts.InputSize),
		Bugs:     bugs.NewCollector(),
		opts:     opts,
		covered:  make([]bool, len(prog.AllBlocks)),
		inj:      opts.FaultInjector,
	}
}

// Clock returns the global virtual time (instructions executed).
func (e *Executor) Clock() int64 { return e.clock }

// Interrupt raises the cooperative abort flag: schedulers polling
// Interrupted wind the current turn down at the next step boundary.
// Safe to call from any goroutine (the supervisor's watchdog does).
func (e *Executor) Interrupt() { e.interrupted.Store(true) }

// ClearInterrupt lowers the abort flag before a new turn.
func (e *Executor) ClearInterrupt() { e.interrupted.Store(false) }

// Interrupted reports whether an abort has been requested.
func (e *Executor) Interrupted() bool { return e.interrupted.Load() }

// SetConcretizeOnly switches the executor into (or out of) degraded
// concretize-only stepping: symbolic branches and switches stop forking
// and instead pin their direction to a concrete model of the path —
// the cheapest mode that still makes progress, used by the supervisor's
// retry ladder for islands with repeated faults. Must only be toggled
// between turns by the executor's owner.
func (e *Executor) SetConcretizeOnly(on bool) { e.concretizeOnly = on }

// NumCovered returns the number of distinct basic blocks covered.
func (e *Executor) NumCovered() int { return e.numCovered }

// CoverEpoch increases whenever coverage grows.
func (e *Executor) CoverEpoch() int { return e.coverEpoch }

// Covered reports whether block id has been covered.
func (e *Executor) Covered(id int) bool { return e.covered[id] }

// CoveredBlocks returns a copy of the covered-block ID set.
func (e *Executor) CoveredBlocks() []int {
	out := make([]int, 0, e.numCovered)
	for id, c := range e.covered {
		if c {
			out = append(out, id)
		}
	}
	return out
}

// LiveStates returns the number of non-terminated states created by this
// executor and not yet terminated.
func (e *Executor) LiveStates() int { return e.liveStates }

// NewEntryState creates the initial state at main's entry with a fully
// symbolic input of Options.InputSize bytes.
func (e *Executor) NewEntryState() *State {
	main := e.Prog.Entry()
	st := &State{
		ID:              e.nextStateID,
		objs:            make(map[uint32]*mobject, 8),
		nextID:          InputObjID + 1,
		Blk:             main.Entry(),
		Idx:             0,
		SeedForkBlockID: -1,
		SeedForkIdx:     -1,
	}
	e.nextStateID++
	e.register(st)
	st.frames = []*frame{{fn: main, regs: make([]*expr.Expr, main.NumRegs), retDst: ir.NoReg}}
	input := newObject(e.opts.InputSize)
	for i := 0; i < e.opts.InputSize; i++ {
		input.setByte(i, e.Ctx.ByteAt(e.InputArr, i))
	}
	st.objs[InputObjID] = input
	return st
}

// markCover records block entry; returns true when it is new coverage.
func (e *Executor) markCover(id int) bool {
	if e.covered[id] {
		return false
	}
	e.covered[id] = true
	e.numCovered++
	e.coverEpoch++
	return true
}

// terminate marks st dead.
func (e *Executor) terminate(st *State) {
	if !st.terminated {
		st.terminated = true
		e.liveStates--
		delete(e.live, st)
	}
}

// Terminate allows schedulers to kill a state explicitly.
func (e *Executor) Terminate(st *State) { e.terminate(st) }

// StepBlock runs st until it leaves its current basic block (executes its
// terminator), forks, or terminates. On entry st must be live.
//
// StepBlock is the quarantine boundary: a panic raised while stepping st
// — whether from an instruction-handling bug or injected by the fault
// harness — is recovered here and converted into termination of st
// alone. Other live states, coverage, and solver state are unaffected.
func (e *Executor) StepBlock(st *State) (res StepResult) {
	defer func() {
		if p := recover(); p != nil {
			e.quarantine(st, p, &res)
		}
	}()
	if e.inj != nil && e.concolic == nil && !st.terminated && st.Blk != nil &&
		e.inj.StepPanic(st.Blk.Fn.Name) {
		panic(fmt.Sprintf("faultinject: injected panic stepping %s", st.Blk.Fn.Name))
	}
	res = e.stepBlock(st)
	e.maybeEvict(st)
	return res
}

// stepBlock is the unguarded step dispatch; see StepBlock.
func (e *Executor) stepBlock(st *State) StepResult {
	if st.terminated {
		return StepResult{Terminated: true, Reason: TermNone}
	}
	var res StepResult
	if st.needsValidation {
		// seedStates recorded during concolic execution skip the fork-time
		// feasibility check; validate lazily on first selection. Only a
		// definitive Unsat kills the state: on Unknown (even after the
		// escalated retry) the seed is kept — its path was concretely
		// executed, so it is almost certainly feasible, and killing it
		// would silently disable a phase.
		st.needsValidation = false
		if e.validatePC(st) == solver.Unsat {
			e.terminate(st)
			res.Terminated = true
			res.Reason = TermInfeasible
			return res
		}
	}
	if st.StepsExecuted == 0 {
		// first step of a fresh state: process the initial block entry
		e.enterBlock(st, &res)
	}
	for {
		in := &st.Blk.Instrs[st.Idx]
		e.clock++
		st.StepsExecuted++

		done, transferred := e.execInstr(st, in, &res)
		if transferred && !st.terminated && in.Op != ir.OpRet {
			// Control moved to a new block (or into a callee). Returning
			// into the middle of the caller's block is not a block entry
			// (matching the concrete interpreter's accounting).
			e.enterBlock(st, &res)
		}
		if done {
			return res
		}
		if transferred {
			if in.Op.IsTerminator() {
				return res // block boundary reached
			}
			// calls/returns continue within the step until a real block
			// boundary, matching "one source block per step"
			continue
		}
		st.Idx++
	}
}

// enterBlock processes a basic-block entry: the BBV/trace hook and
// coverage accounting.
func (e *Executor) enterBlock(st *State, res *StepResult) {
	if e.BlockHook != nil {
		e.BlockHook(st, st.Blk, e.clock)
	}
	if e.markCover(st.Blk.ID) {
		res.NewCover = true
		st.LastNewCover = e.clock
	}
}

// execInstr executes one instruction. It returns (done, transferred):
// done ends the StepBlock call (termination or fork); transferred means
// control moved (st.Blk/st.Idx already updated).
func (e *Executor) execInstr(st *State, in *ir.Instr, res *StepResult) (bool, bool) {
	c := e.Ctx
	w := uint(in.Width)
	switch in.Op {
	case ir.OpConst:
		st.setReg(in.Dst, c.Const(in.Imm, w))
	case ir.OpBin:
		a := st.reg(c, in.A, w)
		b := st.reg(c, in.B, w)
		if isDivOp(in.Bin) {
			if stop := e.checkDivByZero(st, in, b, res); stop {
				return true, false
			}
			// after checkDivByZero the divisor is constrained non-zero
			// (or was concrete non-zero)
		}
		st.setReg(in.Dst, applyBin(c, in.Bin, a, b))
	case ir.OpCmp:
		a := st.reg(c, in.A, w)
		b := st.reg(c, in.B, w)
		st.setReg(in.Dst, applyPred(c, in.Pred, a, b))
	case ir.OpNot:
		st.setReg(in.Dst, c.NotE(st.reg(c, in.A, w)))
	case ir.OpMov:
		st.setReg(in.Dst, st.reg(c, in.A, w))
	case ir.OpZext:
		st.setReg(in.Dst, coerceZ(c, st.rawReg(c, in.A), w))
	case ir.OpSext:
		a := st.rawReg(c, in.A)
		if a.Width() >= w {
			st.setReg(in.Dst, c.TruncE(a, w))
		} else {
			st.setReg(in.Dst, c.SExtE(a, w))
		}
	case ir.OpTrunc:
		st.setReg(in.Dst, coerceZ(c, st.rawReg(c, in.A), w))
	case ir.OpSelect:
		cond := st.reg(c, in.A, 1)
		b := st.reg(c, in.B, w)
		d := st.reg(c, in.C, w)
		st.setReg(in.Dst, c.ITEe(cond, b, d))
	case ir.OpAlloca:
		id := st.nextID
		st.nextID++
		st.objs[id] = newObject(int(in.Imm))
		st.setReg(in.Dst, c.Const(ir.MakeObjRef(id, 0), 64))
	case ir.OpInput:
		st.setReg(in.Dst, c.Const(ir.MakeObjRef(InputObjID, 0), 64))
	case ir.OpInputLen:
		st.setReg(in.Dst, c.Const(uint64(e.opts.InputSize), w))
	case ir.OpLoad:
		v, stop := e.execLoad(st, in, res)
		if stop {
			return true, false
		}
		st.setReg(in.Dst, v)
	case ir.OpStore:
		if stop := e.execStore(st, in, res); stop {
			return true, false
		}
	case ir.OpCall:
		callee := e.Prog.Func(in.Callee)
		nf := &frame{
			fn:       callee,
			regs:     make([]*expr.Expr, callee.NumRegs),
			retDst:   in.Dst,
			retBlock: st.Blk,
			retIndex: st.Idx + 1,
		}
		for i, a := range in.Args {
			nf.regs[i] = st.rawReg(c, a)
		}
		st.frames = append(st.frames, nf)
		st.Blk = callee.Entry()
		st.Idx = 0
		return false, true
	case ir.OpRet:
		var rv *expr.Expr
		if in.A != ir.NoReg {
			rv = st.rawReg(c, in.A)
		}
		fr := st.frames[len(st.frames)-1]
		st.frames = st.frames[:len(st.frames)-1]
		if len(st.frames) == 0 {
			e.terminate(st)
			res.Terminated = true
			res.Reason = TermExit
			return true, false
		}
		if fr.retDst != ir.NoReg && rv != nil {
			st.setReg(fr.retDst, rv)
		}
		st.Blk = fr.retBlock
		st.Idx = fr.retIndex
		return false, true
	case ir.OpBr:
		return e.execBranch(st, in, res)
	case ir.OpJmp:
		st.Blk = in.Targets[0]
		st.Idx = 0
		return false, true
	case ir.OpSwitch:
		return e.execSwitch(st, in, res)
	case ir.OpAssert:
		if stop := e.checkAssert(st, in, res); stop {
			return true, false
		}
	case ir.OpExit:
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermExit
		return true, false
	case ir.OpPrint:
		// no-op
	default:
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermError
		return true, false
	}
	return false, false
}

// mayBeTrue asks the solver whether cond can hold on st's path, returning
// a full witness model on success. Use feasible for yes/no questions — it
// is much cheaper on deep paths. Unknown degrades to "no": bug reports
// require a witness, so an inconclusive query must not file one.
func (e *Executor) mayBeTrue(st *State, cond *expr.Expr) (bool, expr.Assignment) {
	if cond.IsTrue() {
		return true, expr.Assignment{}
	}
	if cond.IsFalse() {
		return false, nil
	}
	if e.queryFeasible(st, cond) != solver.Sat {
		return false, nil
	}
	var hint expr.Assignment
	if e.concolic != nil {
		hint = e.concolic.asn
	}
	ok, m, _ := e.Solver.MayBeTrue(st.PathConstraints(), cond, hint)
	return ok, m
}

// feasible reports whether cond can hold on st's path, solving only the
// constraint slice that shares symbolic bytes with cond (sound because
// live states always have satisfiable path constraints). Unknown degrades
// to "yes": callers use a false answer to terminate states or prune
// paths, and an inconclusive query must never kill a reachable state. At
// worst the caller constrains the path with a condition that later proves
// unsatisfiable, and the state dies as infeasible.
func (e *Executor) feasible(st *State, cond *expr.Expr) bool {
	return e.queryFeasible(st, cond) != solver.Unsat
}

// execBranch handles OpBr, forking when both directions are feasible.
func (e *Executor) execBranch(st *State, in *ir.Instr, res *StepResult) (bool, bool) {
	cond := st.reg(e.Ctx, in.A, 1)
	if cond.IsConst() {
		st.Blk = in.Targets[1-int(cond.Value())]
		st.Idx = 0
		return false, true
	}
	if e.concolic != nil {
		return e.concolicBranch(st, in, cond, res)
	}
	if e.concretizeOnly {
		// Degraded mode: no feasibility queries, no forking — pin the
		// branch to its value under a concrete model of the path, exactly
		// like the doubly-Unknown fallback below. An inconsistent pin
		// kills the state as infeasible at a later check, never unsoundly.
		if e.concretizeCond(st, cond) {
			st.addConstraint(cond)
			st.Blk = in.Targets[0]
		} else {
			st.addConstraint(e.Ctx.NotB(cond))
			st.Blk = in.Targets[1]
		}
		st.Idx = 0
		return false, true
	}
	// A statically dead edge needs no query: the pass proved no execution
	// reaching this terminator can take it, so the solver would answer
	// Unsat. The other side still goes through queryFeasible (where
	// PreCheck gets a chance before the SAT core).
	deadTrue := e.opts.Static.EdgeInfeasible(st.Blk.ID, 0)
	deadFalse := e.opts.Static.EdgeInfeasible(st.Blk.ID, 1)
	canTrue, canFalse := solver.Unsat, solver.Unsat
	if deadTrue || deadFalse {
		e.Solver.NoteStaticPrune()
	}
	if e.opts.BatchSiblings && !deadTrue && !deadFalse {
		vs := e.queryFeasibleBatch(st, []*expr.Expr{cond, e.Ctx.NotB(cond)})
		canTrue, canFalse = vs[0], vs[1]
	} else {
		if !deadTrue {
			canTrue = e.queryFeasible(st, cond)
		}
		if !deadFalse {
			canFalse = e.queryFeasible(st, e.Ctx.NotB(cond))
		}
	}
	// A live state's path constraints are satisfiable, so an Unsat answer
	// on one side proves the other side feasible even when its own query
	// stayed Unknown.
	if canTrue == solver.Unknown && canFalse == solver.Unsat {
		canTrue = solver.Sat
	}
	if canFalse == solver.Unknown && canTrue == solver.Unsat {
		canFalse = solver.Sat
	}
	if canTrue == solver.Unknown && canFalse == solver.Unknown {
		// Both directions inconclusive after escalated retries: degrade to
		// concolic-style single-path execution by pinning the branch to
		// its value under a concrete model of the path.
		if e.concretizeCond(st, cond) {
			canTrue, canFalse = solver.Sat, solver.Unknown
		} else {
			canTrue, canFalse = solver.Unknown, solver.Sat
		}
	}
	switch {
	case canTrue == solver.Sat && canFalse == solver.Sat:
		if e.opts.MaxStates > 0 && e.liveStates >= e.opts.MaxStates {
			// fork suppressed: follow the true side only
			st.addConstraint(cond)
			st.Blk = in.Targets[0]
			st.Idx = 0
			return false, true
		}
		other := st.fork(e.nextStateID, e.clock)
		e.nextStateID++
		e.register(other)
		other.addConstraint(e.Ctx.NotB(cond))
		other.Blk = in.Targets[1]
		other.Idx = 0
		st.addConstraint(cond)
		st.Blk = in.Targets[0]
		st.Idx = 0
		res.Added = append(res.Added, other)
		attachToPTree(st, other)
		return true, true // fork ends the step; st is at a fresh block
	case canTrue == solver.Sat:
		// canFalse is Unsat or Unknown; an Unknown side is never forked
		// into (it would create a state with unvalidated constraints).
		st.addConstraint(cond)
		st.Blk = in.Targets[0]
		st.Idx = 0
		return false, true
	case canFalse == solver.Sat:
		st.addConstraint(e.Ctx.NotB(cond))
		st.Blk = in.Targets[1]
		st.Idx = 0
		return false, true
	default:
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermInfeasible
		return true, false
	}
}

// execSwitch handles OpSwitch, forking into every feasible case.
func (e *Executor) execSwitch(st *State, in *ir.Instr, res *StepResult) (bool, bool) {
	c := e.Ctx
	v := st.rawReg(c, in.A)
	if v.IsConst() {
		target := in.Targets[len(in.Vals)]
		for i, val := range in.Vals {
			if v.Value() == val {
				target = in.Targets[i]
				break
			}
		}
		st.Blk = target
		st.Idx = 0
		return false, true
	}
	if e.concolic != nil {
		return e.concolicSwitch(st, in, v, res)
	}
	if e.concretizeOnly {
		return e.concretizeSwitch(st, in, v)
	}
	// collect feasible (condition, target) pairs; Unknown arms are never
	// forked into, but their presence means an empty feasible set does
	// not prove infeasibility
	var feasible []switchArm
	anyUnknown := false
	defCond := c.True()
	if e.opts.BatchSiblings {
		feasible, anyUnknown, defCond = e.switchArmsBatched(st, in, v)
	} else {
		for i, val := range in.Vals {
			eq := c.EqE(v, c.Const(val, v.Width()))
			defCond = c.AndB(defCond, c.NotB(eq))
			if e.opts.Static.EdgeInfeasible(st.Blk.ID, i) {
				// statically dead arm: the solver would answer Unsat
				e.Solver.NoteStaticPrune()
				continue
			}
			switch e.queryFeasible(st, eq) {
			case solver.Sat:
				feasible = append(feasible, switchArm{cond: eq, target: in.Targets[i]})
			case solver.Unknown:
				anyUnknown = true
			}
		}
		if e.opts.Static.EdgeInfeasible(st.Blk.ID, len(in.Vals)) {
			e.Solver.NoteStaticPrune()
		} else {
			switch e.queryFeasible(st, defCond) {
			case solver.Sat:
				feasible = append(feasible, switchArm{cond: defCond, target: in.Targets[len(in.Vals)]})
			case solver.Unknown:
				anyUnknown = true
			}
		}
	}
	if len(feasible) == 0 {
		if anyUnknown {
			// every arm Unsat or Unknown: degrade by dispatching on the
			// switch value under a concrete model of the path
			atomic.AddInt64(&e.gov.Concretizations, 1)
			cv := e.modelEvaluator(st).Eval(v)
			target := in.Targets[len(in.Vals)]
			pin := defCond
			for i, val := range in.Vals {
				if cv == val {
					target = in.Targets[i]
					pin = c.EqE(v, c.Const(val, v.Width()))
					break
				}
			}
			st.addConstraint(pin)
			st.Blk = target
			st.Idx = 0
			return false, true
		}
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermInfeasible
		return true, false
	}
	// current state takes the first arm; fork the rest
	for _, a := range feasible[1:] {
		if e.opts.MaxStates > 0 && e.liveStates >= e.opts.MaxStates {
			break
		}
		other := st.fork(e.nextStateID, e.clock)
		e.nextStateID++
		e.register(other)
		other.addConstraint(a.cond)
		other.Blk = a.target
		other.Idx = 0
		res.Added = append(res.Added, other)
		attachToPTree(st, other)
	}
	st.addConstraint(feasible[0].cond)
	st.Blk = feasible[0].target
	st.Idx = 0
	if len(res.Added) > 0 {
		return true, true
	}
	return false, true
}

// switchArm is one feasible (condition, target) pair of a symbolic
// switch dispatch.
type switchArm struct {
	cond   *expr.Expr
	target *ir.Block
}

// switchArmsBatched is execSwitch's arm-collection pass under
// Options.BatchSiblings: all live arm conditions (plus the default's)
// go through queryFeasibleBatch as one sibling set, so the shared
// scrutinee slice is bit-blasted once instead of once per arm. The
// returned arms, Unknown flag and default condition feed the same
// fork/degrade logic as the classic per-arm loop.
func (e *Executor) switchArmsBatched(st *State, in *ir.Instr, v *expr.Expr) ([]switchArm, bool, *expr.Expr) {
	c := e.Ctx
	conds := make([]*expr.Expr, 0, len(in.Vals)+1)
	targets := make([]*ir.Block, 0, len(in.Vals)+1)
	defCond := c.True()
	for i, val := range in.Vals {
		eq := c.EqE(v, c.Const(val, v.Width()))
		defCond = c.AndB(defCond, c.NotB(eq))
		if e.opts.Static.EdgeInfeasible(st.Blk.ID, i) {
			e.Solver.NoteStaticPrune()
			continue
		}
		conds = append(conds, eq)
		targets = append(targets, in.Targets[i])
	}
	if e.opts.Static.EdgeInfeasible(st.Blk.ID, len(in.Vals)) {
		e.Solver.NoteStaticPrune()
	} else {
		conds = append(conds, defCond)
		targets = append(targets, in.Targets[len(in.Vals)])
	}
	var feasible []switchArm
	anyUnknown := false
	for i, r := range e.queryFeasibleBatch(st, conds) {
		switch r {
		case solver.Sat:
			feasible = append(feasible, switchArm{cond: conds[i], target: targets[i]})
		case solver.Unknown:
			anyUnknown = true
		}
	}
	return feasible, anyUnknown, defCond
}

// concretizeSwitch degrades a symbolic switch in concretize-only mode:
// the switch value is evaluated under a concrete model of the path and
// execution continues single-path into the matching arm, mirroring the
// every-arm-Unknown fallback in execSwitch.
func (e *Executor) concretizeSwitch(st *State, in *ir.Instr, v *expr.Expr) (bool, bool) {
	c := e.Ctx
	atomic.AddInt64(&e.gov.Concretizations, 1)
	cv := e.modelEvaluator(st).Eval(v)
	defCond := c.True()
	target := in.Targets[len(in.Vals)]
	var pin *expr.Expr
	for i, val := range in.Vals {
		eq := c.EqE(v, c.Const(val, v.Width()))
		defCond = c.AndB(defCond, c.NotB(eq))
		if pin == nil && cv == val {
			pin = eq
			target = in.Targets[i]
		}
	}
	if pin == nil {
		pin = defCond
	}
	st.addConstraint(pin)
	st.Blk = target
	st.Idx = 0
	return false, true
}

// checkDivByZero reports a bug when the divisor can be zero, then
// constrains it non-zero. Returns true when the state terminated.
func (e *Executor) checkDivByZero(st *State, in *ir.Instr, divisor *expr.Expr, res *StepResult) bool {
	c := e.Ctx
	zero := c.EqE(divisor, c.Const(0, divisor.Width()))
	if zero.IsFalse() {
		return false
	}
	if ok, m := e.mayBeTrue(st, zero); ok {
		e.report(st, in, bugs.DivByZero, "divisor can be zero", m, res)
		if zero.IsTrue() {
			e.terminate(st)
			res.Terminated = true
			res.Reason = TermFault
			return true
		}
	}
	nz := c.NotB(zero)
	if !e.feasible(st, nz) {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return true
	}
	st.addConstraint(nz)
	return false
}

// checkAssert reports a bug when the assertion can fail, then constrains
// it to hold. Returns true when the state terminated.
func (e *Executor) checkAssert(st *State, in *ir.Instr, res *StepResult) bool {
	c := e.Ctx
	cond := st.reg(c, in.A, 1)
	if cond.IsTrue() {
		return false
	}
	if ok, m := e.mayBeTrue(st, c.NotB(cond)); ok {
		e.report(st, in, bugs.AssertFail, in.Msg, m, res)
	}
	if !e.feasible(st, cond) {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return true
	}
	st.addConstraint(cond)
	return false
}

// report files a bug with a generated witness input.
func (e *Executor) report(st *State, in *ir.Instr, kind bugs.Kind, msg string, model expr.Assignment, res *StepResult) {
	idx := instrIndex(st.Blk, in)
	r := &bugs.Report{
		Kind:    kind,
		Func:    st.Blk.Fn.Name,
		Block:   st.Blk.Name,
		BlockID: st.Blk.ID,
		Index:   idx,
		Msg:     msg,
		Time:    e.clock,
		Phase:   -1,
	}
	if model != nil {
		if bs, ok := model[e.InputArr]; ok {
			input := make([]byte, e.opts.InputSize)
			copy(input, bs)
			r.Input = input
		}
	}
	if e.Bugs.Add(r) {
		res.Bug = r
	}
}

func instrIndex(b *ir.Block, in *ir.Instr) int {
	for i := range b.Instrs {
		if &b.Instrs[i] == in {
			return i
		}
	}
	return -1
}

func isDivOp(op ir.BinOp) bool {
	switch op {
	case ir.UDiv, ir.SDiv, ir.URem, ir.SRem:
		return true
	}
	return false
}

func applyBin(c *expr.Context, op ir.BinOp, a, b *expr.Expr) *expr.Expr {
	switch op {
	case ir.Add:
		return c.Add(a, b)
	case ir.Sub:
		return c.Sub(a, b)
	case ir.Mul:
		return c.Mul(a, b)
	case ir.UDiv:
		return c.UDiv(a, b)
	case ir.SDiv:
		return c.SDiv(a, b)
	case ir.URem:
		return c.URem(a, b)
	case ir.SRem:
		return c.SRem(a, b)
	case ir.And:
		return c.And(a, b)
	case ir.Or:
		return c.Or(a, b)
	case ir.Xor:
		return c.Xor(a, b)
	case ir.Shl:
		return c.Shl(a, b)
	case ir.LShr:
		return c.LShr(a, b)
	case ir.AShr:
		return c.AShr(a, b)
	default:
		panic(fmt.Sprintf("symex: unknown binop %s", op))
	}
}

func applyPred(c *expr.Context, p ir.Pred, a, b *expr.Expr) *expr.Expr {
	switch p {
	case ir.Eq:
		return c.EqE(a, b)
	case ir.Ne:
		return c.NeE(a, b)
	case ir.Ult:
		return c.UltE(a, b)
	case ir.Ule:
		return c.UleE(a, b)
	case ir.Ugt:
		return c.UgtE(a, b)
	case ir.Uge:
		return c.UgeE(a, b)
	case ir.Slt:
		return c.SltE(a, b)
	case ir.Sle:
		return c.SleE(a, b)
	case ir.Sgt:
		return c.SgtE(a, b)
	case ir.Sge:
		return c.SgeE(a, b)
	default:
		panic(fmt.Sprintf("symex: unknown pred %s", p))
	}
}

func coerceZ(c *expr.Context, e *expr.Expr, w uint) *expr.Expr {
	switch {
	case e.Width() == w:
		return e
	case e.Width() > w:
		return c.TruncE(e, w)
	default:
		return c.ZExtE(e, w)
	}
}
