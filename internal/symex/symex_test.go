package symex

import (
	"math/rand"
	"testing"

	"pbse/internal/bugs"
	"pbse/internal/interp"
	"pbse/internal/ir"
)

func mustFinalize(t *testing.T, p *ir.Program) *ir.Program {
	t.Helper()
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// magicProg: if input[0] == 0x7f then path A (exit) else path B (exit).
func magicProg(t *testing.T) *ir.Program {
	p := ir.NewProgram("magic")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	okB := fb.NewBlock("ok")
	badB := fb.NewBlock("bad")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c := b.CmpImm(ir.Eq, v, 0x7f, 8)
	b.Br(c, okB.Blk(), badB.Blk())
	okB.Exit()
	badB.Exit()
	return mustFinalize(t, p)
}

func runAll(t *testing.T, ex *Executor, kind SearcherKind, budget int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s, err := NewSearcher(kind, ex, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(ex.NewEntryState())
	(&Runner{Ex: ex, Search: s}).Run(budget)
}

func TestBranchForksBothSides(t *testing.T) {
	p := magicProg(t)
	ex := NewExecutor(p, Options{InputSize: 4})
	runAll(t, ex, SearchDFS, 1_000_000)
	// all four blocks covered: entry, ok, bad
	if got := ex.NumCovered(); got != 3 {
		t.Errorf("covered = %d, want 3", got)
	}
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0", ex.LiveStates())
	}
}

// oobProg models the Fig 6 libtiff bug: w and h read from the file, a
// fixed 257-byte buffer read at offset h*w*3.
func oobProg(t *testing.T) *ir.Program {
	p := ir.NewProgram("cielab")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	ip := b.Input()
	w := b.Load(ip, 0, 16)
	h := b.Load(ip, 2, 16)
	w32 := b.Zext(w, 32)
	h32 := b.Zext(h, 32)
	area := b.Mul(w32, h32, 32)
	idx := b.BinImm(ir.Mul, area, 3, 32)
	buf := b.Alloca(257)
	idx64 := b.Zext(idx, 64)
	addr := b.Add(buf, idx64, 64)
	b.Load(addr, 0, 8) // OOB when h*w*3 > 256
	b.Exit()
	return mustFinalize(t, p)
}

func TestOOBReadDetectedWithWitness(t *testing.T) {
	p := oobProg(t)
	ex := NewExecutor(p, Options{InputSize: 8})
	runAll(t, ex, SearchDFS, 1_000_000)
	reports := ex.Bugs.Reports()
	if len(reports) == 0 {
		t.Fatal("expected an OOB read report")
	}
	r := reports[0]
	if r.Kind != bugs.OOBRead {
		t.Fatalf("kind = %v, want OOB read", r.Kind)
	}
	if r.Input == nil {
		t.Fatal("report has no witness input")
	}
	// the witness must actually crash the concrete interpreter
	res := interp.New(p, r.Input, interp.Options{}).Run()
	if res.Reason != interp.StopFault || res.Fault.Kind != interp.FaultOOBRead {
		t.Fatalf("witness does not reproduce: %+v (input % x)", res, r.Input)
	}
}

func TestDivByZeroSymbolic(t *testing.T) {
	p := ir.NewProgram("div")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	ip := b.Input()
	d := b.Load(ip, 0, 8)
	x := b.Const(100, 8)
	b.Bin(ir.UDiv, x, d, 8)
	b.Exit()
	mustFinalize(t, p)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 100_000)
	rs := ex.Bugs.Reports()
	if len(rs) != 1 || rs[0].Kind != bugs.DivByZero {
		t.Fatalf("want one div-by-zero, got %v", rs)
	}
	// witness byte 0 must be zero
	if rs[0].Input[0] != 0 {
		t.Errorf("witness divisor = %d, want 0", rs[0].Input[0])
	}
	// execution continues past the division on the non-zero path
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0 (path should complete)", ex.LiveStates())
	}
}

func TestAssertBugAndContinue(t *testing.T) {
	p := ir.NewProgram("assert")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	tail := fb.NewBlock("tail")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c := b.CmpImm(ir.Ne, v, 42, 8)
	b.Assert(c, "input must not be 42")
	b.Jmp(tail.Blk())
	tail.Exit()
	mustFinalize(t, p)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 100_000)
	rs := ex.Bugs.Reports()
	if len(rs) != 1 || rs[0].Kind != bugs.AssertFail {
		t.Fatalf("want one assert failure, got %v", rs)
	}
	if rs[0].Input[0] != 42 {
		t.Errorf("witness = %d, want 42", rs[0].Input[0])
	}
	if !ex.Covered(p.Func("main").Blocks[1].ID) {
		t.Error("tail block not covered despite constraint continuation")
	}
}

// loopProg: input-dependent loop (the trap-phase shape): n = input[0];
// loop n times; then a deep block.
func loopProg(t *testing.T) *ir.Program {
	p := ir.NewProgram("loop")
	fb := p.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	deep := fb.NewBlock("deep")

	i := fb.NewReg()
	n := fb.NewReg()
	ip := entry.Input()
	nv := entry.Load(ip, 0, 8)
	n32 := entry.Zext(nv, 32)
	entry.MovTo(n, n32, 32)
	entry.ConstTo(i, 0, 32)
	entry.Jmp(head.Blk())

	c := head.Cmp(ir.Ult, i, n, 32)
	head.Br(c, body.Blk(), deep.Blk())

	ni := body.AddImm(i, 1, 32)
	body.MovTo(i, ni, 32)
	body.Jmp(head.Blk())

	deep.Exit()
	return mustFinalize(t, p)
}

func TestSymbolicLoopForks(t *testing.T) {
	p := loopProg(t)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchBFS, 200_000)
	if got := ex.NumCovered(); got != 4 {
		t.Errorf("covered = %d, want 4", got)
	}
}

func TestCopyOnWriteIsolation(t *testing.T) {
	// prog: buf = alloca; if input[0]==1 { buf[0]=1 } else { buf[0]=2 };
	// assert buf[0] == expected per branch
	p := ir.NewProgram("cow")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	thenB := fb.NewBlock("then")
	elseB := fb.NewBlock("else")

	buf := fb.NewReg()
	a := b.Alloca(4)
	b.MovTo(buf, a, 64)
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c := b.CmpImm(ir.Eq, v, 1, 8)
	b.Br(c, thenB.Blk(), elseB.Blk())

	one := thenB.Const(1, 8)
	thenB.Store(buf, 0, one, 8)
	rv := thenB.Load(buf, 0, 8)
	ok := thenB.CmpImm(ir.Eq, rv, 1, 8)
	thenB.Assert(ok, "then sees 1")
	thenB.Exit()

	two := elseB.Const(2, 8)
	elseB.Store(buf, 0, two, 8)
	rv2 := elseB.Load(buf, 0, 8)
	ok2 := elseB.CmpImm(ir.Eq, rv2, 2, 8)
	elseB.Assert(ok2, "else sees 2")
	elseB.Exit()
	mustFinalize(t, p)

	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 100_000)
	if n := ex.Bugs.Len(); n != 0 {
		t.Fatalf("COW broken: %d bug reports: %v", n, ex.Bugs.Reports())
	}
	if ex.NumCovered() != 3 {
		t.Errorf("covered = %d, want 3", ex.NumCovered())
	}
}

func TestSwitchForksFeasibleCases(t *testing.T) {
	p := ir.NewProgram("switch")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	c1 := fb.NewBlock("c1")
	c2 := fb.NewBlock("c2")
	def := fb.NewBlock("def")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	b.Switch(v, []uint64{1, 2}, []*ir.Block{c1.Blk(), c2.Blk()}, def.Blk())
	c1.Exit()
	c2.Exit()
	def.Exit()
	mustFinalize(t, p)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchBFS, 100_000)
	if ex.NumCovered() != 4 {
		t.Errorf("covered = %d, want 4 (all switch arms)", ex.NumCovered())
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range AllSearcherKinds {
		t.Run(string(kind), func(t *testing.T) {
			run := func() (int, int64) {
				p := loopProg(t)
				ex := NewExecutor(p, Options{InputSize: 2})
				runAll(t, ex, kind, 30_000)
				return ex.NumCovered(), ex.Clock()
			}
			c1, t1 := run()
			c2, t2 := run()
			if c1 != c2 || t1 != t2 {
				t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
			}
		})
	}
}

func TestAllSearchersCoverMagicProg(t *testing.T) {
	for _, kind := range AllSearcherKinds {
		t.Run(string(kind), func(t *testing.T) {
			p := magicProg(t)
			ex := NewExecutor(p, Options{InputSize: 4})
			runAll(t, ex, kind, 100_000)
			if ex.NumCovered() != 3 {
				t.Errorf("covered = %d, want 3", ex.NumCovered())
			}
		})
	}
}

func TestMaxStatesSuppressesForks(t *testing.T) {
	p := loopProg(t)
	ex := NewExecutor(p, Options{InputSize: 1, MaxStates: 1})
	runAll(t, ex, SearchDFS, 50_000)
	// with MaxStates=1 the run follows single paths only; it must still
	// terminate without error
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d", ex.LiveStates())
	}
}

func TestRunnerBudget(t *testing.T) {
	p := loopProg(t)
	ex := NewExecutor(p, Options{InputSize: 4})
	rng := rand.New(rand.NewSource(1))
	s, _ := NewSearcher(SearchBFS, ex, rng)
	s.Add(ex.NewEntryState())
	(&Runner{Ex: ex, Search: s}).Run(500)
	if ex.Clock() < 500 {
		t.Errorf("clock = %d, want >= 500 (budget reached)", ex.Clock())
	}
	if ex.Clock() > 5000 {
		t.Errorf("clock = %d, budget wildly overshot", ex.Clock())
	}
}

func TestInfeasibleBranchKillsState(t *testing.T) {
	// if input[0] < 5 { if input[0] > 10 { unreachable } }
	p := ir.NewProgram("infeasible")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	inner := fb.NewBlock("inner")
	dead := fb.NewBlock("dead")
	out := fb.NewBlock("out")
	ip := b.Input()
	v := fb.NewReg()
	lv := b.Load(ip, 0, 8)
	b.MovTo(v, lv, 8)
	c1 := b.CmpImm(ir.Ult, v, 5, 8)
	b.Br(c1, inner.Blk(), out.Blk())
	c2 := inner.CmpImm(ir.Ugt, v, 10, 8)
	inner.Br(c2, dead.Blk(), out.Blk())
	dead.Exit()
	out.Exit()
	mustFinalize(t, p)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchBFS, 100_000)
	deadID := p.Func("main").Blocks[2].ID
	if ex.Covered(deadID) {
		t.Error("infeasible block was covered")
	}
}

// --- searcher unit tests ---

func mkStates(n int) []*State {
	out := make([]*State, n)
	for i := range out {
		out[i] = &State{ID: i}
	}
	return out
}

func TestDFSSelectsNewest(t *testing.T) {
	s := &dfsSearcher{}
	sts := mkStates(3)
	for _, st := range sts {
		s.Add(st)
	}
	if got := s.Select(); got != sts[2] {
		t.Errorf("dfs selected %v, want newest", got)
	}
	s.Remove(sts[2])
	if got := s.Select(); got != sts[1] {
		t.Errorf("dfs selected %v after removal", got)
	}
}

func TestBFSRotates(t *testing.T) {
	s := &bfsSearcher{}
	sts := mkStates(3)
	for _, st := range sts {
		s.Add(st)
	}
	got := []*State{s.Select(), s.Select(), s.Select(), s.Select()}
	want := []*State{sts[0], sts[1], sts[2], sts[0]}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("select %d = state %d, want %d", i, got[i].ID, want[i].ID)
		}
	}
}

func TestRandomPathBiasTowardShallow(t *testing.T) {
	// Build a tree: root has child A (1 state) and child B which forked
	// many times (8 states). Random-path should select A far more often
	// than 1/9 of the time.
	rng := rand.New(rand.NewSource(7))
	s := newRandomPathSearcher(rng)
	a := &State{ID: 0}
	s.Add(a)
	b := &State{ID: 1}
	s.Add(b)
	// simulate forks of b: each fork creates a sibling
	cur := b
	for i := 2; i < 9; i++ {
		child := &State{ID: i}
		attachToPTree(cur, child)
		cur = child
	}
	countA := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if s.Select() == a {
			countA++
		}
	}
	// uniform-over-states would give ~222; random-path gives ~1000
	if countA < trials/3 {
		t.Errorf("random-path not biased toward shallow: a selected %d/%d", countA, trials)
	}
}

func TestWeightedSearcherPrefersHighWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sts := mkStates(2)
	s := &weightedSearcher{
		name: "test",
		rng:  rng,
		weight: func(st *State) float64 {
			if st.ID == 0 {
				return 100
			}
			return 1
		},
	}
	s.Add(sts[0])
	s.Add(sts[1])
	count0 := 0
	for i := 0; i < 1000; i++ {
		if s.Select() == sts[0] {
			count0++
		}
	}
	if count0 < 900 {
		t.Errorf("weighted selection picked heavy state only %d/1000", count0)
	}
}

func TestInterleavedAlternates(t *testing.T) {
	a := &dfsSearcher{}
	b := &bfsSearcher{}
	s := newInterleavedSearcher(a, b)
	sts := mkStates(2)
	s.Add(sts[0])
	s.Add(sts[1])
	// dfs gives newest (1), bfs gives oldest (0)
	if s.Select() != sts[1] || s.Select() != sts[0] {
		t.Error("interleaved did not alternate dfs/bfs")
	}
	s.Remove(sts[0])
	s.Remove(sts[1])
	if !s.Empty() {
		t.Error("interleaved not empty after removals")
	}
}
