package symex

import "math/rand"

// ptNode is a node of the execution tree maintained for the random-path
// searcher (KLEE's PTree): leaves carry live states, inner nodes are past
// fork points. liveCount counts live states in the subtree so selection
// can skip dead branches.
type ptNode struct {
	parent    *ptNode
	children  []*ptNode
	state     *State
	liveCount int
}

func (n *ptNode) bumpLive(delta int) {
	for m := n; m != nil; m = m.parent {
		m.liveCount += delta
	}
}

// attachToPTree records a fork in the execution tree. It is a no-op when
// the forking state is not tracked by a random-path searcher.
func attachToPTree(parent, child *State) {
	pn := parent.ptNode
	if pn == nil {
		return
	}
	// the old leaf becomes an inner fork node with two fresh leaves
	left := &ptNode{parent: pn, state: parent, liveCount: 1}
	right := &ptNode{parent: pn, state: child, liveCount: 1}
	pn.state = nil
	pn.children = []*ptNode{left, right}
	pn.bumpLive(1) // one leaf existed; now two
	parent.ptNode = left
	child.ptNode = right
}

// randomPathSearcher selects states by walking the execution tree from
// the root, choosing uniformly among children with live descendants at
// each fork — KLEE's RandomPathSearcher. This biases selection toward
// shallow states (each fork halves the probability mass), which is what
// makes it effective against path explosion.
type randomPathSearcher struct {
	root *ptNode
	rng  *rand.Rand
}

func newRandomPathSearcher(rng *rand.Rand) *randomPathSearcher {
	return &randomPathSearcher{root: &ptNode{}, rng: rng}
}

func (s *randomPathSearcher) Name() string { return string(SearchRandomPath) }

func (s *randomPathSearcher) Add(st *State) {
	if st.ptNode != nil {
		// already in the tree (added by a fork under this searcher)
		return
	}
	leaf := &ptNode{parent: s.root, state: st, liveCount: 1}
	s.root.children = append(s.root.children, leaf)
	s.root.bumpLive(1)
	st.ptNode = leaf
}

func (s *randomPathSearcher) Remove(st *State) {
	n := st.ptNode
	if n == nil || n.state != st {
		return
	}
	n.state = nil
	n.bumpLive(-1)
	st.ptNode = nil
}

func (s *randomPathSearcher) Select() *State {
	n := s.root
	for {
		if n.state != nil {
			return n.state
		}
		// choose uniformly among children with live descendants
		idx := -1
		seen := 0
		for i, ch := range n.children {
			if ch.liveCount == 0 {
				continue
			}
			seen++
			if s.rng.Intn(seen) == 0 {
				idx = i
			}
		}
		if idx < 0 {
			panic("symex: random-path select on empty tree")
		}
		n = n.children[idx]
	}
}

func (s *randomPathSearcher) Empty() bool { return s.root.liveCount == 0 }
