package symex

import (
	"sync"
	"testing"

	"pbse/internal/faultinject"
)

// TestGovStatsConcurrentReads hammers the GovStats counters the way the
// parallel scheduler does: one goroutine mutates them by executing (an
// island stepping its states), while many goroutines snapshot via Gov()
// and fold snapshots with Merge. Run under -race this proves the atomic
// counter discipline; the assertions check snapshots are monotonic and
// the final fold equals the final snapshot.
func TestGovStatsConcurrentReads(t *testing.T) {
	const readers = 15 // + 1 mutator = 16 goroutines

	p := magicProg(t)
	ex := NewExecutor(p, Options{
		InputSize:     4,
		FaultInjector: faultinject.New(1, faultinject.Options{SolverUnknownRate: 1}),
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev GovStats
			for {
				select {
				case <-done:
					return
				default:
				}
				g := ex.Gov()
				if g.SolverUnknowns < prev.SolverUnknowns ||
					g.Concretizations < prev.Concretizations ||
					g.Quarantines < prev.Quarantines {
					t.Errorf("Gov() snapshot went backwards: %+v then %+v", prev, g)
					return
				}
				prev = g
				var fold GovStats
				fold.Merge(g)
				if fold != g {
					t.Errorf("Merge of one snapshot differs: %+v vs %+v", fold, g)
					return
				}
			}
		}()
	}

	runAll(t, ex, SearchDFS, 100_000)
	close(done)
	wg.Wait()

	g := ex.Gov()
	if g.SolverUnknowns == 0 {
		t.Error("mutator produced no solver unknowns; hammer exercised nothing")
	}
	var fold GovStats
	fold.Merge(g)
	fold.Merge(GovStats{})
	if fold != g {
		t.Errorf("final fold %+v != final snapshot %+v", fold, g)
	}
}
