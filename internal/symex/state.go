// Package symex is the symbolic execution engine: KLEE's role in the pbSE
// system. It executes IR programs over symbolic input, forking execution
// states at symbolic branches, querying the solver for feasibility, and
// detecting memory-safety and arithmetic bugs with generated test cases.
package symex

import (
	"fmt"

	"pbse/internal/expr"
	"pbse/internal/ir"
)

// InputObjID is the object id of the symbolic input buffer.
const InputObjID uint32 = 1

// mobject is one memory object. Bytes are either concrete (conc) or
// symbolic (sym[i] != nil overrides conc[i]). Objects are copy-on-write
// across state forks via the frozen flag.
type mobject struct {
	size   int
	conc   []byte
	sym    []*expr.Expr // nil slice when fully concrete
	frozen bool
}

func newObject(size int) *mobject {
	return &mobject{size: size, conc: make([]byte, size)}
}

func (o *mobject) clone() *mobject {
	n := &mobject{size: o.size, conc: make([]byte, len(o.conc))}
	copy(n.conc, o.conc)
	if o.sym != nil {
		n.sym = make([]*expr.Expr, len(o.sym))
		copy(n.sym, o.sym)
	}
	return n
}

// byteExpr returns the symbolic expression for byte i.
func (o *mobject) byteExpr(c *expr.Context, i int) *expr.Expr {
	if o.sym != nil && o.sym[i] != nil {
		return o.sym[i]
	}
	return c.Const(uint64(o.conc[i]), 8)
}

// setByte stores a byte expression (concrete constants are stored as
// concrete bytes).
func (o *mobject) setByte(i int, e *expr.Expr) {
	if e.IsConst() {
		o.conc[i] = byte(e.Value())
		if o.sym != nil {
			o.sym[i] = nil
		}
		return
	}
	if o.sym == nil {
		o.sym = make([]*expr.Expr, o.size)
	}
	o.sym[i] = e
}

// frame is one activation record; registers hold expressions.
type frame struct {
	fn       *ir.Func
	regs     []*expr.Expr
	retDst   ir.Reg
	retBlock *ir.Block
	retIndex int
}

func (f *frame) clone() *frame {
	n := &frame{fn: f.fn, retDst: f.retDst, retBlock: f.retBlock, retIndex: f.retIndex}
	n.regs = make([]*expr.Expr, len(f.regs))
	copy(n.regs, f.regs)
	return n
}

// pcNode is a persistent (shared-tail) list of path constraints.
type pcNode struct {
	parent *pcNode
	cond   *expr.Expr
	depth  int
}

// State is one symbolic execution state (KLEE's ExecutionState).
type State struct {
	ID int

	frames []*frame
	objs   map[uint32]*mobject
	nextID uint32

	Blk *ir.Block
	Idx int

	pc     *pcNode
	pcText []*expr.Expr // materialised constraints; lazily rebuilt

	// Search metadata.
	Depth         int   // number of forks on the path
	ForkTime      int64 // virtual time of the fork creating this state
	LastNewCover  int64 // virtual time when this state last covered new code
	StepsExecuted int64

	// ptNode links the state into the random-path execution tree.
	ptNode *ptNode

	// SeedForkBlockID/Idx identify the fork point for seedState dedup in
	// pbSE (§III-B3); -1 when not a seedState.
	SeedForkBlockID int
	SeedForkIdx     int

	// needsValidation marks seedStates whose feasibility was not checked
	// at fork time (concolic mode skips the solver); the executor
	// validates lazily on first selection.
	needsValidation bool

	terminated bool
	evicted    bool // terminated by the memory-pressure sweep
}

func (s *State) String() string {
	return fmt.Sprintf("state{%d at %s[%d] depth=%d}", s.ID, s.Blk, s.Idx, s.Depth)
}

// Terminated reports whether the state finished (exit, fault, infeasible).
func (s *State) Terminated() bool { return s.terminated }

// Evicted reports whether the state was terminated by the executor's
// memory-pressure sweep rather than by execution.
func (s *State) Evicted() bool { return s.evicted }

// CostBytes estimates the state's retained heap footprint for the
// memory-pressure sweep. It is a deterministic accounting model, not a
// runtime measurement: per-object concrete bytes plus symbolic-byte
// pointer slots, per-frame register slots, and the state's share of the
// path-constraint list. COW sharing is deliberately ignored (each state
// is charged for objects it references) so the estimate is stable and
// an upper bound.
func (s *State) CostBytes() int64 {
	const (
		stateOverhead = 256 // State struct, maps, ptNode
		objOverhead   = 48  // mobject struct + slice headers
		frameOverhead = 64  // frame struct + slice header
		ptrBytes      = 8   // one register / symbolic-byte slot
		pcNodeBytes   = 48  // one pcNode + its interned expr share
	)
	n := int64(stateOverhead)
	for _, o := range s.objs {
		n += objOverhead + int64(len(o.conc))
		if o.sym != nil {
			n += int64(len(o.sym)) * ptrBytes
		}
	}
	for _, f := range s.frames {
		n += frameOverhead + int64(len(f.regs))*ptrBytes
	}
	if s.pc != nil {
		n += int64(s.pc.depth) * pcNodeBytes
	}
	return n
}

// PathConstraints returns the state's constraints, oldest first. The
// returned slice is cached and must not be modified.
func (s *State) PathConstraints() []*expr.Expr {
	n := 0
	if s.pc != nil {
		n = s.pc.depth
	}
	if len(s.pcText) == n {
		return s.pcText
	}
	out := make([]*expr.Expr, n)
	for node, i := s.pc, n-1; node != nil; node, i = node.parent, i-1 {
		out[i] = node.cond
	}
	s.pcText = out
	return out
}

// addConstraint appends a path constraint.
func (s *State) addConstraint(c *expr.Expr) {
	depth := 1
	if s.pc != nil {
		depth = s.pc.depth + 1
	}
	s.pc = &pcNode{parent: s.pc, cond: c, depth: depth}
	s.pcText = nil
}

// NumConstraints returns the path-constraint count.
func (s *State) NumConstraints() int {
	if s.pc == nil {
		return 0
	}
	return s.pc.depth
}

// freezeObjects marks every object copy-on-write (called on fork).
func (s *State) freezeObjects() {
	for _, o := range s.objs {
		o.frozen = true
	}
}

// writable returns the object for id, cloning it first if shared.
func (s *State) writable(id uint32) *mobject {
	o := s.objs[id]
	if o == nil {
		return nil
	}
	if o.frozen {
		o = o.clone()
		s.objs[id] = o
	}
	return o
}

// object returns the object for id for reading (may be shared).
func (s *State) object(id uint32) *mobject { return s.objs[id] }

// fork clones the state. Objects become copy-on-write; frames and the
// object map are copied shallowly (frames deep: register slices).
func (s *State) fork(newID int, now int64) *State {
	s.freezeObjects()
	n := &State{
		ID:              newID,
		frames:          make([]*frame, len(s.frames)),
		objs:            make(map[uint32]*mobject, len(s.objs)),
		nextID:          s.nextID,
		Blk:             s.Blk,
		Idx:             s.Idx,
		pc:              s.pc,
		Depth:           s.Depth + 1,
		ForkTime:        now,
		LastNewCover:    s.LastNewCover,
		SeedForkBlockID: -1,
		SeedForkIdx:     -1,
	}
	for i, f := range s.frames {
		n.frames[i] = f.clone()
	}
	for id, o := range s.objs {
		n.objs[id] = o
	}
	s.Depth++
	return n
}

// top returns the active frame.
func (s *State) top() *frame { return s.frames[len(s.frames)-1] }

// reg reads a register coerced to width w (zero-extend or truncate),
// matching the concrete interpreter's masking semantics.
func (s *State) reg(c *expr.Context, r ir.Reg, w uint) *expr.Expr {
	e := s.top().regs[r]
	if e == nil {
		return c.Const(0, w)
	}
	switch {
	case e.Width() == w:
		return e
	case e.Width() > w:
		return c.TruncE(e, w)
	default:
		return c.ZExtE(e, w)
	}
}

// rawReg reads a register at its own width.
func (s *State) rawReg(c *expr.Context, r ir.Reg) *expr.Expr {
	e := s.top().regs[r]
	if e == nil {
		return c.Const(0, 64)
	}
	return e
}

// setReg writes a register.
func (s *State) setReg(r ir.Reg, e *expr.Expr) {
	s.top().regs[r] = e
}
