package symex

import (
	"pbse/internal/analysis"
	"pbse/internal/ir"
	"pbse/internal/solver"
)

// staticFacts materialises the abstract-interpretation invariants that
// hold at st's current program point as range facts over the state's
// register expressions, for solver.PreCheck.
//
// At the block terminator the pass's Term facts describe exactly the
// frame's register file, so all of them apply. Mid-block (the fault
// probes: division, assertions, memory bounds) only the Entry facts are
// available, and an entry fact survives to instruction Idx only when no
// earlier instruction in the block redefines its register — the register
// then still holds the block-entry value the fact ranges over.
//
// The returned slice is scratch owned by the executor — valid until the
// next call.
func (e *Executor) staticFacts(st *State) []solver.RangeFact {
	abs := e.opts.Static
	if abs == nil || st.Blk == nil {
		return nil
	}
	var facts []analysis.RegFact
	atTerm := st.Idx == len(st.Blk.Instrs)-1
	if atTerm {
		facts = abs.TermFacts(st.Blk.ID)
	} else {
		facts = abs.EntryFacts(st.Blk.ID)
	}
	if len(facts) == 0 {
		return nil
	}
	buf := e.factBuf[:0]
	regs := st.top().regs
	for _, f := range facts {
		if int(f.Reg) >= len(regs) {
			continue
		}
		if !atTerm && redefinedBefore(st.Blk, st.Idx, f.Reg) {
			continue
		}
		x := regs[f.Reg]
		// constants carry their own exact range; width mismatches mean
		// the fact describes a different view of the register than the
		// stored expression, so it must not be asserted
		if x == nil || x.IsConst() || f.Width == 0 || uint(f.Width) != x.Width() {
			continue
		}
		buf = append(buf, solver.RangeFact{E: x, Lo: f.Lo, Hi: f.Hi})
	}
	e.factBuf = buf
	return buf
}

// redefinedBefore reports whether any of b's first idx instructions
// writes r. Builders may leave Dst zero-valued on no-dst ops, which reads
// as a write to r0 here — over-approximating kills is sound, it only
// drops a usable fact.
func redefinedBefore(b *ir.Block, idx int, r ir.Reg) bool {
	for j := 0; j < idx; j++ {
		if b.Instrs[j].Dst == r {
			return true
		}
	}
	return false
}
