package symex

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"

	"pbse/internal/expr"
	"pbse/internal/solver"
)

// Resource governance: the executor's defenses against the three ways a
// KLEE-class engine dies in practice — pathological solver queries,
// runaway state sets, and bugs in instruction handling. Solver Unknowns
// are retried once with an escalated conflict budget and then degraded
// by concretization (the query never kills a reachable state); a panic
// while stepping one state quarantines that state and leaves the rest of
// the run intact; and under memory pressure the highest-cost states are
// evicted from the frontier instead of OOM-ing the process.

// GovStats counts resource-governance events during a run. The executor
// mutates the counters with atomics (see Gov), so concurrent readers —
// progress reporters, the parallel-scheduler hammer tests — never race
// with a stepping executor.
type GovStats struct {
	SolverUnknowns  int64 // queries whose first attempt returned Unknown
	SolverRetries   int64 // escalated-budget retries issued
	Concretizations int64 // branch/switch decisions degraded to a model value
	Quarantines     int64 // states terminated by the step panic boundary
	Evictions       int64 // states terminated by memory pressure
}

// Merge adds o's counters into g (used by the parallel scheduler's fixed
// phase-ordered reduction; the receiver must not be concurrently mutated).
func (g *GovStats) Merge(o GovStats) {
	g.SolverUnknowns += o.SolverUnknowns
	g.SolverRetries += o.SolverRetries
	g.Concretizations += o.Concretizations
	g.Quarantines += o.Quarantines
	g.Evictions += o.Evictions
}

// QuarantineRecord describes one quarantined state: the panic value and
// stack, plus where the state was executing.
type QuarantineRecord struct {
	StateID int
	Func    string
	Block   string
	Panic   string
	Stack   string
}

const (
	// budgetEscalation multiplies the solver conflict budget for the
	// single retry of an Unknown query (ISSUE: exponential backoff).
	budgetEscalation = 8
	// pressureInterval is how many StepBlock calls pass between
	// memory-pressure sweeps.
	pressureInterval = 64
	// maxQuarantineRecords caps the retained quarantine diagnostics.
	maxQuarantineRecords = 32
)

// Gov returns a snapshot of the governance counters accumulated so far.
// Counters are written with atomics, so Gov is safe to call while another
// goroutine is stepping this executor.
func (e *Executor) Gov() GovStats {
	return GovStats{
		SolverUnknowns:  atomic.LoadInt64(&e.gov.SolverUnknowns),
		SolverRetries:   atomic.LoadInt64(&e.gov.SolverRetries),
		Concretizations: atomic.LoadInt64(&e.gov.Concretizations),
		Quarantines:     atomic.LoadInt64(&e.gov.Quarantines),
		Evictions:       atomic.LoadInt64(&e.gov.Evictions),
	}
}

// QuarantineRecords returns the retained quarantine diagnostics (capped
// at maxQuarantineRecords; Gov().Quarantines is the true count).
func (e *Executor) QuarantineRecords() []QuarantineRecord { return e.quarantined }

// queryFeasible decides whether cond can hold on st's path, treating
// solver.Unknown as a first-class outcome: an Unknown first attempt is
// retried once with a budgetEscalation× conflict budget. The caller sees
// Unknown only when both attempts gave up.
func (e *Executor) queryFeasible(st *State, cond *expr.Expr) solver.Result {
	if cond.IsTrue() {
		return solver.Sat
	}
	if cond.IsFalse() {
		return solver.Unsat
	}
	if e.opts.Static != nil {
		// Static pruning: try to decide the query from interval facts
		// alone before any SAT dispatch. Unsat verdicts are sound
		// unconditionally; Sat verdicts rely on live states keeping
		// satisfiable path constraints, which holds whenever no query
		// degraded to Unknown (tracked in GovStats.SolverUnknowns).
		if r := e.Solver.PreCheckPC(st.PathConstraints(), cond, e.staticFacts(st)); r != solver.Unknown {
			return r
		}
	}
	var hint expr.Assignment
	if e.concolic != nil {
		hint = e.concolic.asn
	}
	r, _ := e.Solver.Feasible(st.PathConstraints(), cond, hint)
	if r != solver.Unknown {
		return r
	}
	atomic.AddInt64(&e.gov.SolverUnknowns, 1)
	atomic.AddInt64(&e.gov.SolverRetries, 1)
	prev := e.Solver.SetMaxConflicts(e.Solver.MaxConflicts() * budgetEscalation)
	r, _ = e.Solver.Feasible(st.PathConstraints(), cond, hint)
	e.Solver.SetMaxConflicts(prev)
	return r
}

// queryFeasibleBatch is queryFeasible over the sibling conditions of
// one terminator (branch: cond/¬cond; switch: every live arm plus the
// default). The path is sliced ONCE for the whole sibling set
// (SliceMulti) and that union slice feeds both the static precheck and
// the SAT dispatch — the unbatched pipeline re-slices the path twice
// per sibling, which profiles as the dominant cost of deep paths.
// Trivial and statically decided siblings are answered inline; the rest
// go through solver.FeasibleBatchSliced, which blasts the shared slice
// once. The Unknown policy matches queryFeasible exactly: each Unknown
// sibling gets the governance counters and one individually escalated
// retry.
func (e *Executor) queryFeasibleBatch(st *State, conds []*expr.Expr) []solver.Result {
	out := make([]solver.Result, len(conds))
	pending := make([]*expr.Expr, 0, len(conds))
	idx := make([]int, 0, len(conds))
	var slice []*expr.Expr
	sliced := false
	ensureSlice := func() []*expr.Expr {
		if !sliced {
			slice = e.Solver.SliceMulti(st.PathConstraints(), conds)
			sliced = true
		}
		return slice
	}
	for i, cond := range conds {
		switch {
		case cond.IsTrue():
			out[i] = solver.Sat
		case cond.IsFalse():
			out[i] = solver.Unsat
		default:
			if e.opts.Static != nil {
				if r := e.Solver.PreCheckSliced(ensureSlice(), cond, e.staticFacts(st)); r != solver.Unknown {
					out[i] = r
					continue
				}
			}
			pending = append(pending, cond)
			idx = append(idx, i)
		}
	}
	if len(pending) == 0 {
		return out
	}
	var hint expr.Assignment
	if e.concolic != nil {
		hint = e.concolic.asn
	}
	for j, v := range e.Solver.FeasibleBatchSliced(ensureSlice(), pending, hint) {
		r := v.Res
		if r == solver.Unknown {
			atomic.AddInt64(&e.gov.SolverUnknowns, 1)
			atomic.AddInt64(&e.gov.SolverRetries, 1)
			prev := e.Solver.SetMaxConflicts(e.Solver.MaxConflicts() * budgetEscalation)
			r, _ = e.Solver.Feasible(st.PathConstraints(), pending[j], hint)
			e.Solver.SetMaxConflicts(prev)
		}
		out[idx[j]] = r
	}
	return out
}

// validatePC decides a lazily-validated seedState's feasibility. The
// state's constraints are the concolic path's — satisfiable, the seed
// input executed it — plus the one negated-branch constraint appended at
// fork time, so the full-path check is equisatisfiable with one sliced
// feasibility query of that last constraint against the rest (the
// relevantSlice argument: dropped constraints share no symbolic bytes
// with the slice's closure and are themselves satisfiable). The batched
// pipeline uses the sliced form; the legacy pipeline keeps the full
// check, which is the pinned baseline behaviour.
func (e *Executor) validatePC(st *State) solver.Result {
	if !e.opts.BatchSiblings {
		return e.checkPC(st)
	}
	pc := st.PathConstraints()
	if len(pc) == 0 {
		return solver.Sat
	}
	return e.queryFeasiblePrefix(pc[:len(pc)-1], pc[len(pc)-1])
}

// queryFeasiblePrefix is queryFeasible with an explicit constraint
// prefix instead of the state's full pc.
func (e *Executor) queryFeasiblePrefix(prefix []*expr.Expr, cond *expr.Expr) solver.Result {
	var hint expr.Assignment
	if e.concolic != nil {
		hint = e.concolic.asn
	}
	r, _ := e.Solver.Feasible(prefix, cond, hint)
	if r != solver.Unknown {
		return r
	}
	atomic.AddInt64(&e.gov.SolverUnknowns, 1)
	atomic.AddInt64(&e.gov.SolverRetries, 1)
	prev := e.Solver.SetMaxConflicts(e.Solver.MaxConflicts() * budgetEscalation)
	r, _ = e.Solver.Feasible(prefix, cond, hint)
	e.Solver.SetMaxConflicts(prev)
	return r
}

// checkPC decides satisfiability of st's full path constraints with the
// same Unknown-retry policy as queryFeasible.
func (e *Executor) checkPC(st *State) solver.Result {
	r, _, _ := e.Solver.Check(st.PathConstraints(), nil)
	if r != solver.Unknown {
		return r
	}
	atomic.AddInt64(&e.gov.SolverUnknowns, 1)
	atomic.AddInt64(&e.gov.SolverRetries, 1)
	prev := e.Solver.SetMaxConflicts(e.Solver.MaxConflicts() * budgetEscalation)
	r, _, _ = e.Solver.Check(st.PathConstraints(), nil)
	e.Solver.SetMaxConflicts(prev)
	return r
}

// modelEvaluator returns an evaluator for some concrete input consistent
// with st's path — the degradation ladder's source of truth when a
// branch query stays Unknown. In concolic mode the shadow input is the
// only valid choice; otherwise a model of the path constraints is used
// (typically a candidate-cache hit). If even the model query gives up,
// the all-zero input is the final fallback: the pinned direction may
// then be inconsistent with the path, in which case the state dies as
// infeasible at a later check instead of progressing unsoundly.
func (e *Executor) modelEvaluator(st *State) *expr.Evaluator {
	if e.concolic != nil {
		return e.concolic.eval
	}
	if r, m, _ := e.Solver.Check(st.PathConstraints(), nil); r == solver.Sat {
		return expr.NewEvaluator(m)
	}
	return expr.NewEvaluator(expr.Assignment{e.InputArr: make([]byte, e.opts.InputSize)})
}

// concretizeCond degrades a doubly-Unknown branch: the condition is
// evaluated under a concrete model of the path and execution continues
// single-path in that direction.
func (e *Executor) concretizeCond(st *State, cond *expr.Expr) bool {
	atomic.AddInt64(&e.gov.Concretizations, 1)
	return e.modelEvaluator(st).EvalBool(cond)
}

// register tracks a newly created live state.
func (e *Executor) register(st *State) {
	e.liveStates++
	if e.live == nil {
		e.live = make(map[*State]struct{}, 64)
	}
	e.live[st] = struct{}{}
}

// quarantine converts a panic raised while stepping st into a
// terminated-with-error outcome for that state alone. Any states forked
// before the panic are complete and stay in res.Added.
func (e *Executor) quarantine(st *State, p any, res *StepResult) {
	e.terminate(st)
	atomic.AddInt64(&e.gov.Quarantines, 1)
	if len(e.quarantined) < maxQuarantineRecords {
		rec := QuarantineRecord{
			StateID: st.ID,
			Panic:   fmt.Sprint(p),
			Stack:   string(debug.Stack()),
		}
		if st.Blk != nil {
			rec.Func = st.Blk.Fn.Name
			rec.Block = st.Blk.Name
		}
		e.quarantined = append(e.quarantined, rec)
	}
	res.Terminated = true
	res.Reason = TermQuarantined
}

// maybeEvict runs the periodic memory-pressure sweep: when the estimated
// footprint of all live states (plus any injected phantom allocation)
// exceeds Options.MaxStateBytes, the highest-cost states are evicted —
// terminated so searchers drop them on next selection — highest cost
// first, never the currently stepping state, and never a pristine
// seedState (Algorithm 3's per-phase seeds survive pressure).
func (e *Executor) maybeEvict(cur *State) {
	e.stepsSincePressure++
	if e.stepsSincePressure < pressureInterval {
		return
	}
	e.stepsSincePressure = 0
	limit := e.opts.MaxStateBytes
	if limit <= 0 {
		return
	}
	total := e.inj.AllocPhantom()
	type stateCost struct {
		st    *State
		bytes int64
	}
	costs := make([]stateCost, 0, len(e.live))
	for st := range e.live {
		b := st.CostBytes()
		total += b
		costs = append(costs, stateCost{st, b})
	}
	if total <= limit {
		return
	}
	// deterministic order despite map iteration: evictable class first,
	// then cost descending, then newest state first
	sort.Slice(costs, func(i, j int) bool {
		pi, pj := evictClass(costs[i].st), evictClass(costs[j].st)
		if pi != pj {
			return pi < pj
		}
		if costs[i].bytes != costs[j].bytes {
			return costs[i].bytes > costs[j].bytes
		}
		return costs[i].st.ID > costs[j].st.ID
	})
	for _, c := range costs {
		if total <= limit {
			break
		}
		if c.st == cur {
			continue
		}
		if evictClass(c.st) > 0 {
			break // only protected seedStates remain
		}
		c.st.evicted = true
		e.terminate(c.st)
		atomic.AddInt64(&e.gov.Evictions, 1)
		total -= c.bytes
	}
}

// evictClass partitions states for eviction: 0 is evictable, higher is
// protected. Pristine seedStates — recorded by the concolic run and not
// yet executed — are the per-phase seeds of Algorithm 3; evicting one
// would silently disable its phase.
func evictClass(st *State) int {
	if st.SeedForkBlockID >= 0 && st.StepsExecuted == 0 {
		return 1
	}
	return 0
}
