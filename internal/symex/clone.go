package symex

// Cross-executor state transport for the parallel pbSE scheduler. Each
// phase worker owns a private Executor (its own expr.Context and solver,
// so hot paths stay lock-free); the seedStates recorded by the shared
// concolic run must therefore be rebuilt inside the worker's context
// before the worker can execute them.

import "pbse/internal/expr"

// SetStateIDBase moves the executor's next fork ID to base (no-op when
// base is not ahead). The parallel scheduler gives every phase worker a
// disjoint ID range so state IDs stay unique — and eviction tiebreaks
// deterministic — across workers.
func (e *Executor) SetStateIDBase(base int) {
	if base > e.nextStateID {
		e.nextStateID = base
	}
}

// AbsorbCoverage marks the given blocks covered without crediting any
// state with new coverage. The parallel scheduler broadcasts the merged
// global bitmap between rounds, so a worker entering a block another
// phase already covered sees NewCover=false — the same patience signal
// the sequential scheduler's single shared bitmap produces.
func (e *Executor) AbsorbCoverage(ids []int) {
	grew := false
	for _, id := range ids {
		if !e.covered[id] {
			e.covered[id] = true
			e.numCovered++
			grew = true
		}
	}
	if grew {
		e.coverEpoch++
	}
}

// DetachState removes a live state from e's bookkeeping without
// terminating it: the state stays fully usable as an ImportState source.
// The work-stealing scheduler detaches stolen states on the victim
// executor before the thief imports them, so the victim's eviction
// sweeps and live-state counts no longer see states it will never step
// again. Detaching an already-terminated state is a no-op.
func (e *Executor) DetachState(st *State) {
	if st.terminated {
		return
	}
	if _, ok := e.live[st]; ok {
		e.liveStates--
		delete(e.live, st)
	}
}

// ConcreteObjects evaluates every memory object of st under asn,
// returning each object's bytes by id — the symbolic counterpart of the
// concrete interpreter's final-memory snapshot, compared against it by
// the differential oracle tests.
func (e *Executor) ConcreteObjects(st *State, asn expr.Assignment) map[uint32][]byte {
	ev := expr.NewEvaluator(asn)
	out := make(map[uint32][]byte, len(st.objs))
	for id, o := range st.objs {
		bs := make([]byte, o.size)
		for i := range bs {
			bs[i] = byte(ev.Eval(o.byteExpr(e.Ctx, i)))
		}
		out[id] = bs
	}
	return out
}

// ImportState rebuilds src — a live state of another executor over the
// same program — inside e, translating every expression through im (which
// must map the source executor's input array to e.InputArr). The copy
// shares nothing mutable with src: objects are deep-copied, so the two
// executors can step their versions independently. The imported state
// keeps src's ID and metadata and is registered live in e.
func (e *Executor) ImportState(src *State, im *expr.Importer) *State {
	n := &State{
		ID:              src.ID,
		frames:          make([]*frame, len(src.frames)),
		objs:            make(map[uint32]*mobject, len(src.objs)),
		nextID:          src.nextID,
		Blk:             src.Blk,
		Idx:             src.Idx,
		Depth:           src.Depth,
		ForkTime:        src.ForkTime,
		LastNewCover:    src.LastNewCover,
		StepsExecuted:   src.StepsExecuted,
		SeedForkBlockID: src.SeedForkBlockID,
		SeedForkIdx:     src.SeedForkIdx,
		needsValidation: src.needsValidation,
	}
	for i, f := range src.frames {
		nf := &frame{fn: f.fn, retDst: f.retDst, retBlock: f.retBlock, retIndex: f.retIndex}
		nf.regs = make([]*expr.Expr, len(f.regs))
		for j, r := range f.regs {
			if r != nil {
				nf.regs[j] = im.Import(r)
			}
		}
		n.frames[i] = nf
	}
	for id, o := range src.objs {
		no := &mobject{size: o.size, conc: make([]byte, len(o.conc))}
		copy(no.conc, o.conc)
		if o.sym != nil {
			no.sym = make([]*expr.Expr, len(o.sym))
			for i, s := range o.sym {
				if s != nil {
					no.sym[i] = im.Import(s)
				}
			}
		}
		n.objs[id] = no
	}
	for _, c := range src.PathConstraints() {
		n.addConstraint(im.Import(c))
	}
	if e.nextStateID <= n.ID {
		e.nextStateID = n.ID + 1
	}
	e.register(n)
	return n
}
