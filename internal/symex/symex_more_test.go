package symex

import (
	"math/rand"
	"testing"

	"pbse/internal/bugs"
	"pbse/internal/interp"
	"pbse/internal/ir"
)

// recursionProg: fib-shaped recursion with depth from the input byte and
// a base-case return — exercises deep call stacks and recursive state
// cloning.
func recursionProg(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("rec")
	rb := p.NewFunc("depthsum", 1)
	entry := rb.NewBlock("entry")
	base := rb.NewBlock("base")
	recur := rb.NewBlock("recur")
	n := rb.Param(0)
	c := entry.CmpImm(ir.Eq, n, 0, 32)
	entry.Br(c, base.Blk(), recur.Blk())
	z := base.Const(0, 32)
	base.Ret(z)
	n1 := recur.BinImm(ir.Sub, n, 1, 32)
	sub := recur.Call("depthsum", n1)
	s := recur.Add(sub, n, 32)
	recur.Ret(s)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	small := b.BinImm(ir.And, v, 0xf, 32)
	r := b.Call("depthsum", small)
	// sum 0..15 max = 120; assert it
	ok := b.CmpImm(ir.Ule, r, 120, 32)
	b.Assert(ok, "gauss bound")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecursionSymbolic(t *testing.T) {
	p := recursionProg(t)
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchBFS, 500_000)
	if ex.Bugs.Len() != 0 {
		t.Errorf("gauss bound violated: %v", ex.Bugs.Reports())
	}
	// all blocks reachable
	if ex.NumCovered() != len(p.AllBlocks) {
		t.Errorf("covered %d/%d", ex.NumCovered(), len(p.AllBlocks))
	}
}

func TestRecursionMatchesInterp(t *testing.T) {
	p := recursionProg(t)
	for v := byte(0); v < 16; v++ {
		res := interp.New(p, []byte{v}, interp.Options{}).Run()
		if res.Reason != interp.StopExited {
			t.Fatalf("input %d: %+v", v, res)
		}
	}
}

// TestSymbolicSelect: Select with a symbolic condition produces an ITE
// and both outcomes verify.
func TestSymbolicSelect(t *testing.T) {
	p := ir.NewProgram("sel")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	cond := b.CmpImm(ir.Ult, v, 10, 8)
	ten := b.Const(10, 8)
	sel := b.Select(cond, v, ten, 8) // min(v, 10)
	ok := b.CmpImm(ir.Ule, sel, 10, 8)
	b.Assert(ok, "clamp works")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 50_000)
	if ex.Bugs.Len() != 0 {
		t.Errorf("clamp violated: %v", ex.Bugs.Reports())
	}
}

// TestSymbolicLoadITEWindow: a masked symbolic offset within the ITE
// threshold loads symbolically; asserting a property of the loaded value
// must consider every in-window byte.
func TestSymbolicLoadITEWindow(t *testing.T) {
	p := ir.NewProgram("itewin")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	buf := b.Alloca(8)
	// store marker at index 5
	m := b.Const(0x77, 8)
	b.Store(buf, 5, m, 8)
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	idx := b.BinImm(ir.And, v, 7, 32) // 0..7, inside ITE window
	idx64 := b.Zext(idx, 64)
	addr := b.Add(buf, idx64, 64)
	got := b.Load(addr, 0, 8)
	// claim the load can never see the marker — must be refuted
	ne := b.CmpImm(ir.Ne, got, 0x77, 8)
	b.Assert(ne, "marker unreachable")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 50_000)
	rs := ex.Bugs.Reports()
	if len(rs) != 1 || rs[0].Kind != bugs.AssertFail {
		t.Fatalf("expected the marker to be reachable through the ITE window: %v", rs)
	}
	// witness must select index 5
	if rs[0].Input[0]&7 != 5 {
		t.Errorf("witness byte %#x does not select index 5", rs[0].Input[0])
	}
}

// TestNestedCallsShareNoRegisters: callee frames must not leak register
// values between calls.
func TestNestedCallsShareNoRegisters(t *testing.T) {
	p := ir.NewProgram("frames")
	hb := p.NewFunc("id", 1)
	he := hb.NewBlock("entry")
	he.Ret(hb.Param(0))

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	one := b.Const(1, 32)
	two := b.Const(2, 32)
	r1 := b.Call("id", one)
	r2 := b.Call("id", two)
	sum := b.Add(r1, r2, 32)
	ok := b.CmpImm(ir.Eq, sum, 3, 32)
	b.Assert(ok, "frames isolated")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 10_000)
	if ex.Bugs.Len() != 0 {
		t.Errorf("frame isolation broken: %v", ex.Bugs.Reports())
	}
}

// TestPTreeLiveCountInvariant: after arbitrary add/fork/remove sequences,
// the root live count equals the number of live states.
func TestPTreeLiveCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := newRandomPathSearcher(rng)
	var live []*State
	id := 0
	for step := 0; step < 500; step++ {
		switch {
		case len(live) == 0 || rng.Intn(4) == 0:
			st := &State{ID: id}
			id++
			s.Add(st)
			live = append(live, st)
		case rng.Intn(3) == 0:
			// fork a random live state
			parent := live[rng.Intn(len(live))]
			child := &State{ID: id}
			id++
			attachToPTree(parent, child)
			live = append(live, child)
		default:
			i := rng.Intn(len(live))
			s.Remove(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if s.root.liveCount != len(live) {
			t.Fatalf("step %d: root live=%d, actual=%d", step, s.root.liveCount, len(live))
		}
		if len(live) > 0 {
			sel := s.Select()
			found := false
			for _, st := range live {
				if st == sel {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: selected dead state %v", step, sel)
			}
		}
	}
}

// TestConstraintSharingAcrossForks: forked states share the constraint
// prefix but diverge after.
func TestConstraintSharingAcrossForks(t *testing.T) {
	p := ir.NewProgram("pcshare")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	t1 := fb.NewBlock("t1")
	t2 := fb.NewBlock("t2")
	done := fb.NewBlock("done")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c1 := b.CmpImm(ir.Ult, v, 100, 8)
	b.Br(c1, t1.Blk(), done.Blk())
	c2 := t1.CmpImm(ir.Ult, v, 50, 8)
	t1.Br(c2, t2.Blk(), done.Blk())
	t2.Exit()
	done.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(p, Options{InputSize: 1})
	st := ex.NewEntryState()
	r1 := ex.StepBlock(st) // entry: forks at first branch
	if len(r1.Added) != 1 {
		t.Fatalf("expected 1 fork, got %d", len(r1.Added))
	}
	other := r1.Added[0]
	if st.NumConstraints() != 1 || other.NumConstraints() != 1 {
		t.Fatalf("constraints: %d / %d, want 1 / 1", st.NumConstraints(), other.NumConstraints())
	}
	r2 := ex.StepBlock(st) // t1: forks again
	if len(r2.Added) != 1 {
		t.Fatalf("expected second fork")
	}
	if st.NumConstraints() != 2 {
		t.Errorf("taken path constraints = %d, want 2", st.NumConstraints())
	}
	if other.NumConstraints() != 1 {
		t.Errorf("sibling constraints mutated: %d, want 1", other.NumConstraints())
	}
}

// TestTruncRoundTrip: sext/trunc chains through registers match the
// concrete interpreter on all inputs.
func TestExtensionsMatchInterp(t *testing.T) {
	p := ir.NewProgram("ext2")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	sx := b.Sext(v, 32)
	shr := b.BinImm(ir.AShr, sx, 4, 32)
	tr := b.Trunc(shr, 8)
	buf := b.Alloca(1)
	b.Store(buf, 0, tr, 8)
	rd := b.Load(buf, 0, 8)
	same := b.Cmp(ir.Eq, rd, tr, 8)
	b.Assert(same, "store/load roundtrip")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// symbolic: no assert failure possible
	ex := NewExecutor(p, Options{InputSize: 1})
	runAll(t, ex, SearchDFS, 20_000)
	if ex.Bugs.Len() != 0 {
		t.Fatalf("roundtrip broken symbolically: %v", ex.Bugs.Reports())
	}
	// concrete spot checks
	for _, v := range []byte{0x00, 0x7f, 0x80, 0xff} {
		res := interp.New(p, []byte{v}, interp.Options{}).Run()
		if res.Reason != interp.StopExited {
			t.Errorf("input %#x: %+v", v, res)
		}
	}
}
