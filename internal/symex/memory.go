package symex

import (
	"fmt"

	"pbse/internal/bugs"
	"pbse/internal/expr"
	"pbse/internal/ir"
	"pbse/internal/solver"
)

// resolved is the outcome of pointer resolution: the target object and a
// 64-bit byte-offset expression into it.
type resolved struct {
	objID uint32
	off   *expr.Expr // width 64
}

// resolveAddr decomposes an address expression into (object, offset). The
// object id must be concrete: either the whole address is constant, or it
// is const + symbolic where the constant carries the object id (the
// canonical form produced by pointer arithmetic on Alloca/Input
// pointers). A nil result means the pointer is wild.
func (e *Executor) resolveAddr(addr *expr.Expr) *resolved {
	c := e.Ctx
	var base uint64
	switch {
	case addr.IsConst():
		base = addr.Value()
	case addr.Kind() == expr.Add && addr.Kid(0).IsConst():
		base = addr.Kid(0).Value()
	default:
		return nil
	}
	id := ir.ObjID(base)
	if id == 0 {
		return nil
	}
	off := c.Sub(addr, c.Const(uint64(id)<<32, 64))
	return &resolved{objID: id, off: off}
}

// checkBounds reports an OOB bug when the access can exceed the object and
// constrains the state in-bounds. It returns the final offset expression
// (possibly concretised) or nil when the state terminated.
func (e *Executor) checkBounds(st *State, in *ir.Instr, r *resolved, size int, write bool, res *StepResult) *expr.Expr {
	c := e.Ctx
	obj := st.object(r.objID)
	if obj == nil {
		e.report(st, in, bugs.NullDeref, fmt.Sprintf("pointer references unknown object %d", r.objID), e.witness(st), res)
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return nil
	}
	kind := bugs.OOBRead
	if write {
		kind = bugs.OOBWrite
	}
	if obj.size < size {
		// the object cannot hold the access at any offset
		e.report(st, in, kind, fmt.Sprintf("%d-byte access into %d-byte object", size, obj.size), e.witness(st), res)
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return nil
	}
	limit := uint64(obj.size - size)
	inBounds := c.UleE(r.off, c.Const(limit, 64))
	if inBounds.IsTrue() {
		return r.off
	}
	oob := c.NotB(inBounds)
	if e.opts.BatchSiblings {
		// Batched dispatch: oob and inBounds read the same symbolic
		// bytes, so both questions resolve on one path slice and one SAT
		// instance instead of four separate slicing passes. The witness
		// model a report needs is only extracted when an OOB is actually
		// possible (mayBeTrue re-asks, but from a warm cache).
		vs := e.queryFeasibleBatch(st, []*expr.Expr{oob, inBounds})
		if vs[0] == solver.Sat {
			// The full-path witness model is only worth solving once per
			// site: a success is deduplicated by the collector afterwards,
			// and a failure (witness solve gave up) would repeat the same
			// doomed query on every later execution of this instruction.
			wkey := int64(st.Blk.ID)<<32 | int64(uint32(instrIndex(st.Blk, in)))
			if !e.witnessTried[wkey] {
				if e.witnessTried == nil {
					e.witnessTried = make(map[int64]bool, 16)
				}
				e.witnessTried[wkey] = true
				if ok, m := e.mayBeTrue(st, oob); ok {
					e.report(st, in, kind,
						fmt.Sprintf("offset can reach beyond object %d (size %d, access %d bytes)", r.objID, obj.size, size), m, res)
				}
			}
		}
		// Unknown degrades to "yes" exactly like feasible: only a
		// definite Unsat may kill a reachable state.
		if vs[1] == solver.Unsat {
			e.terminate(st)
			res.Terminated = true
			res.Reason = TermFault
			return nil
		}
		st.addConstraint(inBounds)
		return r.off
	}
	if ok, m := e.mayBeTrue(st, oob); ok {
		e.report(st, in, kind,
			fmt.Sprintf("offset can reach beyond object %d (size %d, access %d bytes)", r.objID, obj.size, size), m, res)
	}
	if !e.feasible(st, inBounds) {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return nil
	}
	st.addConstraint(inBounds)
	return r.off
}

// narrowOffset turns a symbolic in-bounds offset into something loadable:
// either it is constant, or its feasible range is small enough to build an
// ITE chain, or it gets concretised to a witness value (with the equality
// added as a constraint).
func (e *Executor) narrowOffset(st *State, off *expr.Expr) (lo, hi uint64, concretized bool, ok bool) {
	if off.IsConst() {
		v := off.Value()
		return v, v, false, true
	}
	l, h := solver.UnsignedRange(off)
	if h-l < uint64(e.opts.ITEThreshold) {
		return l, h, false, true
	}
	// In concolic mode the shadow value is the only concretisation
	// consistent with the concrete path the state is following.
	if e.concolic != nil {
		v := e.concolic.eval.Eval(off)
		st.addConstraint(e.Ctx.EqE(off, e.Ctx.Const(v, 64)))
		return v, v, true, true
	}
	// concretise: find one feasible value in off's constraint cone and
	// pin it
	m, ok2 := e.Solver.ConcretizeModel(st.PathConstraints(), off)
	if !ok2 {
		return 0, 0, false, false
	}
	v := expr.NewEvaluator(m).Eval(off)
	st.addConstraint(e.Ctx.EqE(off, e.Ctx.Const(v, 64)))
	return v, v, true, true
}

// execLoad evaluates an OpLoad; (value, stop). stop=true means the state
// terminated during the access checks.
func (e *Executor) execLoad(st *State, in *ir.Instr, res *StepResult) (*expr.Expr, bool) {
	c := e.Ctx
	size := int(in.Width) / 8
	if size == 0 {
		size = 1
	}
	addr := c.Add(st.reg(c, in.A, 64), c.Const(in.Imm, 64))
	r := e.resolveAddr(addr)
	if r == nil {
		e.report(st, in, bugs.NullDeref, "load through wild or null pointer", e.witness(st), res)
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return nil, true
	}
	off := e.checkBounds(st, in, r, size, false, res)
	if off == nil {
		return nil, true
	}
	obj := st.object(r.objID)
	lo, hi, _, ok := e.narrowOffset(st, off)
	if !ok {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermInfeasible
		return nil, true
	}
	if lo > uint64(obj.size) || int(lo)+size > obj.size {
		// The concretised offset is outside the object. In concolic mode
		// this is the concrete crash itself (the bug was already
		// reported by checkBounds); for pure symbolic states it would be
		// an engine invariant violation. Either way the path ends here.
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return nil, true
	}
	if lo == hi {
		return e.loadAt(obj, int(lo), size), false
	}
	// ITE chain over the feasible window [lo, hi]
	val := e.loadAt(obj, int(lo), size)
	for o := lo + 1; o <= hi; o++ {
		if int(o)+size > obj.size {
			break
		}
		cond := c.EqE(off, c.Const(o, 64))
		val = c.ITEe(cond, e.loadAt(obj, int(o), size), val)
	}
	return val, false
}

// loadAt reads size bytes little-endian at a concrete offset.
func (e *Executor) loadAt(obj *mobject, off, size int) *expr.Expr {
	c := e.Ctx
	v := obj.byteExpr(c, off)
	for i := 1; i < size; i++ {
		v = c.Concat(obj.byteExpr(c, off+i), v)
	}
	return v
}

// execStore evaluates an OpStore; returns stop=true when the state
// terminated.
func (e *Executor) execStore(st *State, in *ir.Instr, res *StepResult) bool {
	c := e.Ctx
	size := int(in.Width) / 8
	if size == 0 {
		size = 1
	}
	addr := c.Add(st.reg(c, in.A, 64), c.Const(in.Imm, 64))
	r := e.resolveAddr(addr)
	if r == nil {
		e.report(st, in, bugs.NullDeref, "store through wild or null pointer", e.witness(st), res)
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return true
	}
	off := e.checkBounds(st, in, r, size, true, res)
	if off == nil {
		return true
	}
	val := st.reg(c, in.B, uint(in.Width))
	lo, hi, _, ok := e.narrowOffset(st, off)
	if !ok {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermInfeasible
		return true
	}
	if lo != hi {
		// Symbolic store: concretise the offset to a feasible witness
		// value (a documented simplification; KLEE forks per object
		// instead). Concolic states use the shadow value, the only one
		// consistent with the concrete path.
		if e.concolic != nil {
			lo = e.concolic.eval.Eval(off)
		} else {
			m, ok2 := e.Solver.ConcretizeModel(st.PathConstraints(), off)
			if !ok2 {
				e.terminate(st)
				res.Terminated = true
				res.Reason = TermInfeasible
				return true
			}
			lo = expr.NewEvaluator(m).Eval(off)
		}
		st.addConstraint(c.EqE(off, c.Const(lo, 64)))
	}
	if lo > uint64(obj0Size(st, r.objID)) || int(lo)+size > obj0Size(st, r.objID) {
		e.terminate(st)
		res.Terminated = true
		res.Reason = TermFault
		return true
	}
	obj := st.writable(r.objID)
	for i := 0; i < size; i++ {
		b := c.TruncE(c.LShr(val, c.Const(uint64(8*i), val.Width())), 8)
		obj.setByte(int(lo)+i, b)
	}
	return false
}

// obj0Size returns the byte size of an object in st.
func obj0Size(st *State, id uint32) int { return st.object(id).size }

// witness produces a model of the current path constraints for bug
// test-case generation (nil when none can be found quickly).
func (e *Executor) witness(st *State) expr.Assignment {
	r, m, _ := e.Solver.Check(st.PathConstraints(), nil)
	if r != solver.Sat {
		return nil
	}
	return m
}
