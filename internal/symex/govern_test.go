package symex

import (
	"math/rand"
	"testing"
	"time"

	"pbse/internal/faultinject"
	"pbse/internal/ir"
	"pbse/internal/solver"
)

// hardBranchProg branches on x*y == 0xBEEF && x > 0xff && y > 0xff over
// two 16-bit input reads — the multiplication makes the query blow any
// one-conflict SAT budget (same shape as the solver package's
// hard-factoring tests), so with MaxConflicts: 1 the true side stays
// Unknown.
func hardBranchProg(t *testing.T) *ir.Program {
	p := ir.NewProgram("hard")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	hardB := fb.NewBlock("hard")
	easyB := fb.NewBlock("easy")
	ip := b.Input()
	x := b.Zext(b.Load(ip, 0, 16), 32)
	y := b.Zext(b.Load(ip, 2, 16), 32)
	prod := b.Mul(x, y, 32)
	c1 := b.CmpImm(ir.Eq, prod, 0xBEEF, 32)
	c2 := b.CmpImm(ir.Ugt, x, 0xff, 32)
	c3 := b.CmpImm(ir.Ugt, y, 0xff, 32)
	cond := b.Bin(ir.And, c1, b.Bin(ir.And, c2, c3, 1), 1)
	b.Br(cond, hardB.Blk(), easyB.Blk())
	hardB.Exit()
	easyB.Exit()
	return mustFinalize(t, p)
}

// TestUnknownDoesNotKillState is the satellite (a) regression: before
// resource governance, an Unknown feasibility answer was conflated with
// Unsat and a state whose branch query hit the conflict budget was
// terminated as infeasible, losing its whole (reachable) subtree. Now the
// state must survive and follow a validated direction.
func TestUnknownDoesNotKillState(t *testing.T) {
	p := hardBranchProg(t)
	ex := NewExecutor(p, Options{
		InputSize: 4,
		SolverOpts: solver.Options{
			MaxConflicts:      1,
			DisableCandidates: true,
			DisableCache:      true,
		},
	})
	runAll(t, ex, SearchDFS, 100_000)
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0 (run should drain)", ex.LiveStates())
	}
	// entry plus at least the easy side must be covered: the state may
	// not die at the branch
	if got := ex.NumCovered(); got < 2 {
		t.Fatalf("covered = %d blocks, want >= 2: Unknown killed the state", got)
	}
	if ex.Gov().SolverUnknowns == 0 {
		t.Error("expected at least one governed Unknown (is the query too easy?)")
	}
	if ex.Gov().SolverRetries == 0 {
		t.Error("expected an escalated-budget retry")
	}
}

// TestInjectedUnknownDegradesToConcretization: with every solver query
// forced Unknown (retries included), branch handling must degrade to
// concolic-style single-path execution instead of wedging or dying.
func TestInjectedUnknownDegradesToConcretization(t *testing.T) {
	p := magicProg(t)
	ex := NewExecutor(p, Options{
		InputSize:     4,
		FaultInjector: faultinject.New(1, faultinject.Options{SolverUnknownRate: 1}),
	})
	runAll(t, ex, SearchDFS, 100_000)
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0", ex.LiveStates())
	}
	// entry + the branch side picked by the zero-model fallback
	if got := ex.NumCovered(); got < 2 {
		t.Fatalf("covered = %d, want >= 2", got)
	}
	if ex.Gov().Concretizations == 0 {
		t.Error("expected a degraded (concretized) branch decision")
	}
}

// boomProg: input[0] == 1 calls boom() (two blocks), otherwise exits.
func boomProg(t *testing.T) *ir.Program {
	p := ir.NewProgram("boom")
	boomF := p.NewFunc("boom", 0)
	bb := boomF.NewBlock("b.entry")
	bb2 := boomF.NewBlock("b.done")
	bb.Jmp(bb2.Blk())
	bb2.RetVoid()

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	callB := fb.NewBlock("call")
	okB := fb.NewBlock("ok")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c := b.CmpImm(ir.Eq, v, 1, 8)
	b.Br(c, callB.Blk(), okB.Blk())
	callB.Call("boom")
	callB.Exit()
	okB.Exit()
	return mustFinalize(t, p)
}

// TestQuarantineIsolation: a panic injected while one state executes
// inside boom() must terminate only that state; the sibling path still
// completes and the run drains cleanly.
func TestQuarantineIsolation(t *testing.T) {
	p := boomProg(t)
	ex := NewExecutor(p, Options{
		InputSize: 1,
		FaultInjector: faultinject.New(1, faultinject.Options{
			StepPanicRate: 1,
			StepPanicFunc: "boom",
		}),
	})
	rng := rand.New(rand.NewSource(1))
	s, err := NewSearcher(SearchDFS, ex, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(ex.NewEntryState())
	stats := (&Runner{Ex: ex, Search: s}).Run(100_000)

	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0", ex.LiveStates())
	}
	g := ex.Gov()
	if g.Quarantines == 0 {
		t.Fatal("no quarantines recorded")
	}
	if stats.Quarantined != g.Quarantines {
		t.Errorf("RunStats.Quarantined = %d, executor counted %d", stats.Quarantined, g.Quarantines)
	}
	recs := ex.QuarantineRecords()
	if len(recs) == 0 {
		t.Fatal("no quarantine records")
	}
	for _, r := range recs {
		if r.Func != "boom" {
			t.Errorf("quarantined in %q, want boom", r.Func)
		}
		if r.Panic == "" || r.Stack == "" {
			t.Errorf("record missing panic/stack: %+v", r)
		}
	}
	// the non-boom path must be unaffected: entry, ok covered
	if got := ex.NumCovered(); got < 2 {
		t.Errorf("covered = %d, want >= 2 (other states must survive)", got)
	}
}

// TestRealPanicQuarantined: a genuine executor panic (not injected) is
// also contained by the StepBlock boundary.
func TestRealPanicQuarantined(t *testing.T) {
	p := magicProg(t)
	ex := NewExecutor(p, Options{InputSize: 4})
	st := ex.NewEntryState()
	st.Blk = nil // force a nil-deref panic inside stepBlock
	res := ex.StepBlock(st)
	if !res.Terminated || res.Reason != TermQuarantined {
		t.Fatalf("res = %+v, want quarantined termination", res)
	}
	if !st.Terminated() {
		t.Error("state not terminated")
	}
	if ex.Gov().Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", ex.Gov().Quarantines)
	}
}

// TestEvictionUnderPressure: with a tiny MaxStateBytes the sweep must
// fire, evict states, and the run must still drain without leaks.
func TestEvictionUnderPressure(t *testing.T) {
	p := loopProg(t)
	ex := NewExecutor(p, Options{
		InputSize:     8,
		MaxStateBytes: 1, // any live state exceeds this
	})
	runAll(t, ex, SearchBFS, 50_000)
	if ex.Gov().Evictions == 0 {
		t.Fatal("no evictions under a 1-byte cap")
	}
	if ex.LiveStates() != 0 {
		t.Errorf("live states = %d, want 0", ex.LiveStates())
	}
}

// TestNoEvictionWithoutCap: the sweep must be inert when MaxStateBytes is
// unset even under injected alloc pressure.
func TestNoEvictionWithoutCap(t *testing.T) {
	p := loopProg(t)
	ex := NewExecutor(p, Options{
		InputSize: 8,
		FaultInjector: faultinject.New(1, faultinject.Options{
			AllocPressureRate: 1,
			AllocPhantomBytes: 1 << 40,
		}),
	})
	runAll(t, ex, SearchBFS, 50_000)
	if ex.Gov().Evictions != 0 {
		t.Errorf("evictions = %d, want 0 without MaxStateBytes", ex.Gov().Evictions)
	}
}

// TestRunnerBudgetOvershootUnderSlowQueries is satellite (d): injected
// slow queries stall the wall clock but not the virtual clock, and the
// Runner must still stop at (not far past) its virtual budget without
// hanging.
func TestRunnerBudgetOvershootUnderSlowQueries(t *testing.T) {
	p := loopProg(t)
	inj := faultinject.New(5, faultinject.Options{
		SolverSlowRate:  1,
		SolverSlowDelay: 50 * time.Microsecond,
	})
	ex := NewExecutor(p, Options{InputSize: 8, FaultInjector: inj})
	const budget = 5_000
	start := time.Now()
	runAll(t, ex, SearchBFS, budget)
	elapsed := time.Since(start)
	if inj.Counts().SolverSlow == 0 {
		t.Fatal("slow-query fault never fired")
	}
	// the loop stops within one block of the budget: overshoot is bounded
	// by the longest basic block, not by stalled queries
	if over := ex.Clock() - budget; over > 64 {
		t.Errorf("virtual clock overshot budget by %d instructions", over)
	}
	if elapsed > 30*time.Second {
		t.Errorf("run took %v: slow queries must not wedge the runner", elapsed)
	}
}
