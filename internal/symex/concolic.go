package symex

import (
	"pbse/internal/expr"
	"pbse/internal/ir"
)

// Concolic-mode support (Algorithm 2 of the paper). In concolic mode the
// executor maintains a concrete shadow of the single running state: branch
// directions follow the shadow evaluation of the seed input instead of
// solver queries, and at every symbolic fork point a seedState for the
// not-taken side is recorded through the OnSeedFork callback rather than
// explored. Bug checks still run, using the shadow as a solver hint.

// concolicMode holds the shadow state while enabled.
type concolicMode struct {
	asn    expr.Assignment
	eval   *expr.Evaluator
	onFork func(seed *State)
}

// EnableConcolic switches the executor into concolic mode with the given
// concrete input binding. onFork (may be nil) receives each recorded
// seedState.
func (e *Executor) EnableConcolic(input []byte, onFork func(seed *State)) {
	bs := make([]byte, e.opts.InputSize)
	copy(bs, input)
	asn := expr.Assignment{e.InputArr: bs}
	e.concolic = &concolicMode{asn: asn, eval: expr.NewEvaluator(asn), onFork: onFork}
}

// DisableConcolic returns the executor to pure symbolic execution.
func (e *Executor) DisableConcolic() { e.concolic = nil }

// ShadowAssignment returns the concrete binding used in concolic mode.
func (e *Executor) ShadowAssignment() expr.Assignment {
	if e.concolic == nil {
		return nil
	}
	return e.concolic.asn
}

// concolicBranch follows the shadow direction and records the not-taken
// side as a seedState.
func (e *Executor) concolicBranch(st *State, in *ir.Instr, cond *expr.Expr, res *StepResult) (bool, bool) {
	taken := e.concolic.eval.EvalBool(cond)
	notCond := e.Ctx.NotB(cond)
	takenCond, otherCond := cond, notCond
	takenIdx, otherIdx := 0, 1
	if !taken {
		takenCond, otherCond = notCond, cond
		takenIdx, otherIdx = 1, 0
	}
	e.recordSeedState(st, in, otherCond, in.Targets[otherIdx], res)
	st.addConstraint(takenCond)
	st.Blk = in.Targets[takenIdx]
	st.Idx = 0
	return false, true
}

// concolicSwitch follows the shadow case and records every other arm as a
// seedState (infeasible arms die at their first solver check later).
func (e *Executor) concolicSwitch(st *State, in *ir.Instr, v *expr.Expr, res *StepResult) (bool, bool) {
	c := e.Ctx
	cv := e.concolic.eval.Eval(v)
	takenTarget := in.Targets[len(in.Vals)]
	var takenCond *expr.Expr
	defCond := c.True()
	for i, val := range in.Vals {
		eq := c.EqE(v, c.Const(val, v.Width()))
		defCond = c.AndB(defCond, c.NotB(eq))
		if val == cv {
			takenTarget = in.Targets[i]
			takenCond = eq
		} else {
			e.recordSeedState(st, in, eq, in.Targets[i], res)
		}
	}
	if takenCond == nil {
		takenCond = defCond
	} else {
		e.recordSeedState(st, in, defCond, in.Targets[len(in.Vals)], res)
	}
	st.addConstraint(takenCond)
	st.Blk = takenTarget
	st.Idx = 0
	return false, true
}

// recordSeedState clones st toward a not-taken direction and hands it to
// the OnSeedFork callback.
func (e *Executor) recordSeedState(st *State, in *ir.Instr, cond *expr.Expr, target *ir.Block, res *StepResult) {
	seed := st.fork(e.nextStateID, e.clock)
	e.nextStateID++
	e.register(seed)
	seed.addConstraint(cond)
	seed.Blk = target
	seed.Idx = 0
	seed.SeedForkBlockID = st.Blk.ID
	seed.SeedForkIdx = instrIndex(st.Blk, in)
	seed.needsValidation = true
	res.Added = append(res.Added, seed)
	if e.concolic.onFork != nil {
		e.concolic.onFork(seed)
	}
}
