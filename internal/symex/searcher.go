package symex

import (
	"fmt"
	"math/rand"
)

// Searcher selects which execution state to run next — KLEE's search
// strategy abstraction. Implementations must be deterministic given the
// same *rand.Rand seed.
type Searcher interface {
	Name() string
	Add(st *State)
	Remove(st *State)
	// Select returns the state to step next. It must only return live
	// states that were Added and not Removed.
	Select() *State
	Empty() bool
}

// SearcherKind names the built-in strategies from the paper's Table I.
type SearcherKind string

// Built-in search strategies.
const (
	SearchDFS         SearcherKind = "dfs"
	SearchBFS         SearcherKind = "bfs"
	SearchRandomState SearcherKind = "random-state"
	SearchRandomPath  SearcherKind = "random-path"
	SearchCovNew      SearcherKind = "covnew"
	SearchMD2U        SearcherKind = "md2u"
	SearchDefault     SearcherKind = "default" // random-path + covnew interleaved
)

// AllSearcherKinds lists every strategy in Table I order.
var AllSearcherKinds = []SearcherKind{
	SearchDefault, SearchRandomPath, SearchRandomState,
	SearchCovNew, SearchMD2U, SearchDFS, SearchBFS,
}

// NewSearcher constructs the named strategy bound to ex (heuristic
// strategies consult its coverage state) with deterministic randomness
// from rng.
func NewSearcher(kind SearcherKind, ex *Executor, rng *rand.Rand) (Searcher, error) {
	switch kind {
	case SearchDFS:
		return &dfsSearcher{}, nil
	case SearchBFS:
		return &bfsSearcher{}, nil
	case SearchRandomState:
		return &randomStateSearcher{rng: rng}, nil
	case SearchRandomPath:
		return newRandomPathSearcher(rng), nil
	case SearchCovNew:
		return newCovNewSearcher(ex, rng), nil
	case SearchMD2U:
		return newMD2USearcher(ex, rng), nil
	case SearchDefault:
		rp := newRandomPathSearcher(rng)
		cn := newCovNewSearcher(ex, rng)
		return newInterleavedSearcher(rp, cn), nil
	default:
		return nil, fmt.Errorf("symex: unknown searcher %q", kind)
	}
}

// dfsSearcher always selects the newest state (KLEE's DFSSearcher).
type dfsSearcher struct {
	stack []*State
}

func (s *dfsSearcher) Name() string { return string(SearchDFS) }

func (s *dfsSearcher) Add(st *State) { s.stack = append(s.stack, st) }

func (s *dfsSearcher) Remove(st *State) {
	for i := len(s.stack) - 1; i >= 0; i-- {
		if s.stack[i] == st {
			s.stack = append(s.stack[:i], s.stack[i+1:]...)
			return
		}
	}
}

func (s *dfsSearcher) Select() *State { return s.stack[len(s.stack)-1] }

func (s *dfsSearcher) Empty() bool { return len(s.stack) == 0 }

// bfsSearcher rotates through states oldest-first (KLEE's BFSSearcher).
type bfsSearcher struct {
	queue []*State
}

func (s *bfsSearcher) Name() string { return string(SearchBFS) }

func (s *bfsSearcher) Add(st *State) { s.queue = append(s.queue, st) }

func (s *bfsSearcher) Remove(st *State) {
	for i := range s.queue {
		if s.queue[i] == st {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

func (s *bfsSearcher) Select() *State {
	st := s.queue[0]
	// rotate so the next Select sees the next-oldest state
	s.queue = append(s.queue[1:], st)
	return st
}

func (s *bfsSearcher) Empty() bool { return len(s.queue) == 0 }

// randomStateSearcher picks a pending state uniformly at random.
type randomStateSearcher struct {
	states []*State
	rng    *rand.Rand
}

func (s *randomStateSearcher) Name() string { return string(SearchRandomState) }

func (s *randomStateSearcher) Add(st *State) { s.states = append(s.states, st) }

func (s *randomStateSearcher) Remove(st *State) {
	for i := range s.states {
		if s.states[i] == st {
			// order does not matter; swap-delete
			s.states[i] = s.states[len(s.states)-1]
			s.states = s.states[:len(s.states)-1]
			return
		}
	}
}

func (s *randomStateSearcher) Select() *State {
	return s.states[s.rng.Intn(len(s.states))]
}

func (s *randomStateSearcher) Empty() bool { return len(s.states) == 0 }

// interleavedSearcher alternates between sub-searchers per selection —
// KLEE's InterleavedSearcher, used for the "default" strategy.
type interleavedSearcher struct {
	subs []Searcher
	next int
}

func newInterleavedSearcher(subs ...Searcher) *interleavedSearcher {
	return &interleavedSearcher{subs: subs}
}

func (s *interleavedSearcher) Name() string { return string(SearchDefault) }

func (s *interleavedSearcher) Add(st *State) {
	for _, sub := range s.subs {
		sub.Add(st)
	}
}

func (s *interleavedSearcher) Remove(st *State) {
	for _, sub := range s.subs {
		sub.Remove(st)
	}
}

func (s *interleavedSearcher) Select() *State {
	sub := s.subs[s.next]
	s.next = (s.next + 1) % len(s.subs)
	return sub.Select()
}

func (s *interleavedSearcher) Empty() bool { return s.subs[0].Empty() }

// Runner drives an Executor with a Searcher until a virtual-time budget
// is exhausted or no states remain — the "KLEE main loop".
type Runner struct {
	Ex     *Executor
	Search Searcher
}

// RunStats summarise a Run call.
type RunStats struct {
	Steps       int64 // StepBlock calls
	StatesRun   int64
	ForksAdded  int64
	Quarantined int64 // states terminated by the step panic boundary
}

// Run steps states until ex.Clock() reaches budget or the searcher
// drains.
func (r *Runner) Run(budget int64) RunStats {
	var stats RunStats
	for r.Ex.Clock() < budget && !r.Search.Empty() {
		st := r.Search.Select()
		if st.Terminated() {
			r.Search.Remove(st)
			continue
		}
		res := r.Ex.StepBlock(st)
		stats.Steps++
		for _, a := range res.Added {
			r.Search.Add(a)
			stats.ForksAdded++
		}
		if res.Terminated {
			if res.Reason == TermQuarantined {
				stats.Quarantined++
			}
			r.Search.Remove(st)
		}
	}
	return stats
}
