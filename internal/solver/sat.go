// Package solver decides satisfiability of bitvector constraint sets and
// produces models (concrete assignments of symbolic input bytes).
//
// The pipeline mirrors what STP does for KLEE: expression simplification
// happens in package expr; this package adds candidate-model fast paths,
// unsigned interval propagation, independent-constraint slicing, Tseitin
// bit-blasting to CNF, and a CDCL SAT solver with two-watched-literal
// propagation, VSIDS-style activities, first-UIP clause learning and Luby
// restarts.
//
// # Panic and error policy
//
// A solver query must never take down the engine: a caller holding a
// live execution state can always recover from "the solver proved
// nothing" by degrading (retry, concretize, drop the query). So every
// internal-invariant violation inside a query — a bit-blast width
// mismatch, an unloweable expression kind, a failed CDCL enqueue — is
// raised as an *InternalError via throwInternal and recovered at the
// satCheck/satCheckIncremental boundary, where it becomes an Unknown
// verdict with the error attached. Plain panics are reserved for true
// programmer errors at the API edge (malformed expressions constructed
// outside this package), which no caller can meaningfully handle.
package solver

import (
	"fmt"
	"time"
)

// Lit is a SAT literal: variable v has positive literal v<<1 and negative
// literal v<<1|1.
type Lit int32

// NegLit returns the negation of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns l's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

func mkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

const (
	lUndef int8 = iota
	lTrue
	lFalse
)

// watcher is a clause reference watching a literal.
type watcher struct {
	clause  int32
	blocker Lit // quick check: if blocker is true the clause is satisfied
}

// sat is a CDCL SAT solver over clauses added with addClause.
type sat struct {
	clauses  [][]Lit
	learned  []bool
	watches  [][]watcher // indexed by literal
	assigns  []int8      // per var
	levels   []int32     // per var: decision level
	reasons  []int32     // per var: clause index or -1
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	polarity []bool // phase saving

	conflicts    int64
	decisions    int64
	propagations int64
	maxConflicts int64

	// deadline bounds the wall clock of the current solveWith call (zero
	// means none); undefReason records why the last call returned lUndef.
	deadline    time.Time
	undefReason int8

	// assumps are the assumption literals of the current solveWith call;
	// they are decided first, one per decision level.
	assumps []Lit

	ok bool // false once a top-level conflict is found
}

// Reasons for an lUndef verdict from solveWith.
const (
	undefNone int8 = iota
	undefBudget
	undefDeadline
)

func newSAT() *sat {
	return &sat{varInc: 1, ok: true, maxConflicts: 1 << 62}
}

// newVar allocates a fresh variable and returns its index.
func (s *sat) newVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.levels = append(s.levels, 0)
	s.reasons = append(s.reasons, -1)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

func (s *sat) value(l Lit) int8 {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// addClause inserts a problem clause; returns false when the formula became
// trivially unsatisfiable.
func (s *sat) addClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// remove duplicate/false literals, detect tautology and satisfied clauses
	out := lits[:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		if s.value(l) == lTrue || seen[l.Neg()] {
			return true // already satisfied or tautology
		}
		if s.value(l) == lFalse || seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() >= 0 {
			s.ok = false
			return false
		}
		return true
	}
	cl := make([]Lit, len(out))
	copy(cl, out)
	s.attach(cl, false)
	return true
}

func (s *sat) attach(cl []Lit, isLearned bool) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	s.learned = append(s.learned, isLearned)
	s.watches[cl[0].Neg()] = append(s.watches[cl[0].Neg()], watcher{clause: ci, blocker: cl[1]})
	s.watches[cl[1].Neg()] = append(s.watches[cl[1].Neg()], watcher{clause: ci, blocker: cl[0]})
	return ci
}

func (s *sat) enqueue(l Lit, reason int32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.levels[v] = int32(s.decisionLevel())
	s.reasons[v] = reason
	s.trail = append(s.trail, l)
	return true
}

func (s *sat) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the index of a
// conflicting clause, or -1.
func (s *sat) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict int32 = -1
	outer:
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			cl := s.clauses[w.clause]
			// ensure the false literal is at cl[1]
			if cl[0] == p.Neg() {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if s.value(cl[0]) == lTrue {
				kept = append(kept, watcher{clause: w.clause, blocker: cl[0]})
				continue
			}
			// find a new watch
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != lFalse {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1].Neg()] = append(s.watches[cl[1].Neg()], watcher{clause: w.clause, blocker: cl[0]})
					continue outer
				}
			}
			// clause is unit or conflicting
			kept = append(kept, w)
			if s.value(cl[0]) == lFalse {
				conflict = w.clause
				// copy the remaining watchers and stop
				kept = append(kept, ws[wi+1:]...)
				s.qhead = len(s.trail)
				break
			}
			if !s.enqueue(cl[0], w.clause) {
				throwInternal("enqueue of unit literal failed")
			}
		}
		s.watches[p] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *sat) analyze(conflict int32) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	seen := make([]bool, len(s.assigns))
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	ci := conflict

	for {
		cl := s.clauses[ci]
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range cl[start:] {
			v := q.Var()
			if seen[v] || s.levels[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.levels[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// pick the next literal on the trail to resolve
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		ci = s.reasons[p.Var()]
	}
	learnt[0] = p.Neg()

	// compute backtrack level: max level among learnt[1:]
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.levels[learnt[i].Var()] > s.levels[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.levels[learnt[1].Var()])
	}
	return learnt, btLevel
}

func (s *sat) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

func (s *sat) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reasons[v] = -1
		s.heap.push(v, s.activity)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *sat) pickBranchVar() int {
	for {
		v := s.heap.pop(s.activity)
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// luby returns the i-th element of the Luby restart sequence (1-based).
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// solve runs the CDCL loop; it returns lTrue (sat), lFalse (unsat), or
// lUndef when the conflict budget is exhausted.
func (s *sat) solve() int8 { return s.solveWith(nil, s.maxConflicts) }

// solveWith runs CDCL under the given assumption literals (decided first,
// one per level). On lTrue the assignment is left intact for model
// extraction; call reset() before the next query. lFalse means the
// formula is unsatisfiable under the assumptions (the instance stays
// usable unless a level-0 conflict made it permanently unsat).
func (s *sat) solveWith(assumps []Lit, budget int64) int8 {
	if !s.ok {
		return lFalse
	}
	s.undefReason = undefNone
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.undefReason = undefDeadline
		return lUndef
	}
	if c := s.propagate(); c >= 0 {
		s.ok = false
		return lFalse
	}
	s.assumps = assumps
	startConflicts := s.conflicts
	var restartNum int64 = 1
	conflictsThisRestart := int64(0)
	restartBudget := luby(restartNum) * 64
	var iter int64

	for {
		iter++
		if iter&255 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.reset()
			s.undefReason = undefDeadline
			return lUndef
		}
		conflict := s.propagate()
		if conflict >= 0 {
			s.conflicts++
			conflictsThisRestart++
			if s.conflicts-startConflicts > budget {
				s.reset()
				s.undefReason = undefBudget
				return lUndef
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse
			}
			if s.decisionLevel() <= len(s.assumps) {
				// conflict depends only on assumptions: unsat under them
				s.reset()
				return lFalse
			}
			learnt, btLevel := s.analyze(conflict)
			if btLevel < len(s.assumps) {
				btLevel = len(s.assumps)
				if btLevel > s.decisionLevel()-1 {
					btLevel = s.decisionLevel() - 1
				}
			}
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				if s.decisionLevel() == 0 {
					if !s.enqueue(learnt[0], -1) {
						s.ok = false
						return lFalse
					}
				} else if s.value(learnt[0]) == lUndef {
					s.enqueue(learnt[0], -1)
				} else if s.value(learnt[0]) == lFalse {
					// falsified unit under assumptions
					s.reset()
					return lFalse
				}
			} else {
				ci := s.attach(learnt, true)
				if s.value(learnt[0]) == lUndef {
					s.enqueue(learnt[0], ci)
				}
			}
			s.varInc /= 0.95
			continue
		}
		if conflictsThisRestart >= restartBudget {
			restartNum++
			conflictsThisRestart = 0
			restartBudget = luby(restartNum) * 64
			s.backtrack(0)
			continue
		}
		// decide pending assumptions first, one per level
		if s.decisionLevel() < len(s.assumps) {
			p := s.assumps[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case lFalse:
				s.reset()
				return lFalse
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				if !s.enqueue(p, -1) {
					throwInternal("assumption enqueue failed")
				}
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			return lTrue // all variables assigned
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(mkLit(v, !s.polarity[v]), -1) {
			throwInternal("decision enqueue failed")
		}
	}
}

// reset undoes all decisions, returning the instance to level 0 so new
// clauses can be added and another query solved.
func (s *sat) reset() {
	s.backtrack(0)
	s.assumps = nil
}

// modelValue returns the assigned truth of variable v (false if unassigned).
func (s *sat) modelValue(v int) bool { return s.assigns[v] == lTrue }

func (s *sat) String() string {
	return fmt.Sprintf("sat{vars=%d clauses=%d conflicts=%d decisions=%d props=%d}",
		len(s.assigns), len(s.clauses), s.conflicts, s.decisions, s.propagations)
}

// varHeap is an activity-ordered max-heap of variable indices.
type varHeap struct {
	data []int
	pos  []int // var -> index in data, -1 when absent
}

func (h *varHeap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) push(v int, act []float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data)-1, act)
}

func (h *varHeap) pop(act []float64) int {
	if len(h.data) == 0 {
		return -1
	}
	v := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[v] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return v
}

func (h *varHeap) update(v int, act []float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.data[p]] >= act[v] {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[i]] = i
		i = p
	}
	h.data[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.data[i]
	n := len(h.data)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && act[h.data[c+1]] > act[h.data[c]] {
			c++
		}
		if act[v] >= act[h.data[c]] {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[i]] = i
		i = c
	}
	h.data[i] = v
	h.pos[v] = i
}
