package solver

import (
	"pbse/internal/expr"
)

// blaster lowers expressions to CNF over a sat instance. Each expression
// node maps to a vector of literals, least-significant bit first. Width-1
// expressions map to a single literal.
type blaster struct {
	sat   *sat
	memo  map[*expr.Expr][]Lit
	bytes map[expr.SymByte][]Lit // symbolic input bytes -> 8 literals
	lTrue Lit                    // literal that is constrained true
}

func newBlaster(s *sat) *blaster {
	b := &blaster{
		sat:   s,
		memo:  make(map[*expr.Expr][]Lit, 256),
		bytes: make(map[expr.SymByte][]Lit),
	}
	v := s.newVar()
	b.lTrue = mkLit(v, false)
	s.addClause(b.lTrue)
	return b
}

func (b *blaster) lFalse() Lit { return b.lTrue.Neg() }

func (b *blaster) constLit(v bool) Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse()
}

func (b *blaster) fresh() Lit { return mkLit(b.sat.newVar(), false) }

// assertTrue adds the constraint that the width-1 expression e holds.
func (b *blaster) assertTrue(e *expr.Expr) {
	ls := b.blast(e)
	b.sat.addClause(ls[0])
}

// byteLits returns (allocating if needed) the 8 literals of a symbolic byte.
func (b *blaster) byteLits(sb expr.SymByte) []Lit {
	if ls, ok := b.bytes[sb]; ok {
		return ls
	}
	ls := make([]Lit, 8)
	for i := range ls {
		ls[i] = b.fresh()
	}
	b.bytes[sb] = ls
	return ls
}

// blast returns the literal vector of e (LSB first), creating gates as
// needed.
func (b *blaster) blast(e *expr.Expr) []Lit {
	if ls, ok := b.memo[e]; ok {
		return ls
	}
	ls := b.blast1(e)
	if uint(len(ls)) != e.Width() {
		throwInternal("blast width mismatch for %v: got %d want %d", e, len(ls), e.Width())
	}
	b.memo[e] = ls
	return ls
}

func (b *blaster) blast1(e *expr.Expr) []Lit {
	w := int(e.Width())
	switch e.Kind() {
	case expr.Const:
		v := e.Value()
		ls := make([]Lit, w)
		for i := 0; i < w; i++ {
			ls[i] = b.constLit(v>>uint(i)&1 == 1)
		}
		return ls
	case expr.Read:
		sb := expr.SymByte{Arr: e.Array(), Idx: e.ReadIndex()}
		return b.byteLits(sb)
	case expr.Add:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		sum, _ := b.adder(a, c, b.lFalse())
		return sum
	case expr.Sub:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return b.subtract(a, c)
	case expr.Mul:
		return b.multiply(b.blast(e.Kid(0)), b.blast(e.Kid(1)))
	case expr.UDiv:
		q, _ := b.divide(b.blast(e.Kid(0)), b.blast(e.Kid(1)))
		return q
	case expr.URem:
		_, r := b.divide(b.blast(e.Kid(0)), b.blast(e.Kid(1)))
		return r
	case expr.SDiv:
		return b.signedDivRem(e, true)
	case expr.SRem:
		return b.signedDivRem(e, false)
	case expr.And:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		ls := make([]Lit, w)
		for i := range ls {
			ls[i] = b.andGate(a[i], c[i])
		}
		return ls
	case expr.Or:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		ls := make([]Lit, w)
		for i := range ls {
			ls[i] = b.orGate(a[i], c[i])
		}
		return ls
	case expr.Xor:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		ls := make([]Lit, w)
		for i := range ls {
			ls[i] = b.xorGate(a[i], c[i])
		}
		return ls
	case expr.Not:
		a := b.blast(e.Kid(0))
		ls := make([]Lit, w)
		for i := range ls {
			ls[i] = a[i].Neg()
		}
		return ls
	case expr.Shl:
		return b.shifter(e, shiftLeft)
	case expr.LShr:
		return b.shifter(e, shiftLogicalRight)
	case expr.AShr:
		return b.shifter(e, shiftArithRight)
	case expr.Eq:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return []Lit{b.equality(a, c)}
	case expr.Ult:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return []Lit{b.unsignedLess(a, c, false)}
	case expr.Ule:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return []Lit{b.unsignedLess(a, c, true)}
	case expr.Slt:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return []Lit{b.signedLess(a, c, false)}
	case expr.Sle:
		a, c := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		return []Lit{b.signedLess(a, c, true)}
	case expr.ZExt:
		a := b.blast(e.Kid(0))
		ls := make([]Lit, w)
		copy(ls, a)
		for i := len(a); i < w; i++ {
			ls[i] = b.lFalse()
		}
		return ls
	case expr.SExt:
		a := b.blast(e.Kid(0))
		ls := make([]Lit, w)
		copy(ls, a)
		sign := a[len(a)-1]
		for i := len(a); i < w; i++ {
			ls[i] = sign
		}
		return ls
	case expr.Trunc:
		a := b.blast(e.Kid(0))
		ls := make([]Lit, w)
		copy(ls, a[:w])
		return ls
	case expr.Concat:
		hi, lo := b.blast(e.Kid(0)), b.blast(e.Kid(1))
		ls := make([]Lit, 0, w)
		ls = append(ls, lo...)
		ls = append(ls, hi...)
		return ls
	case expr.ITE:
		cond := b.blast(e.Kid(0))[0]
		a, c := b.blast(e.Kid(1)), b.blast(e.Kid(2))
		ls := make([]Lit, w)
		for i := range ls {
			ls[i] = b.mux(cond, a[i], c[i])
		}
		return ls
	default:
		throwInternal("blast: unknown kind %s", e.Kind())
		return nil // unreachable
	}
}

// --- gates ---

func (b *blaster) andGate(x, y Lit) Lit {
	if x == b.lFalse() || y == b.lFalse() {
		return b.lFalse()
	}
	if x == b.lTrue {
		return y
	}
	if y == b.lTrue {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Neg() {
		return b.lFalse()
	}
	o := b.fresh()
	b.sat.addClause(o.Neg(), x)
	b.sat.addClause(o.Neg(), y)
	b.sat.addClause(o, x.Neg(), y.Neg())
	return o
}

func (b *blaster) orGate(x, y Lit) Lit {
	return b.andGate(x.Neg(), y.Neg()).Neg()
}

func (b *blaster) xorGate(x, y Lit) Lit {
	if x == b.lFalse() {
		return y
	}
	if y == b.lFalse() {
		return x
	}
	if x == b.lTrue {
		return y.Neg()
	}
	if y == b.lTrue {
		return x.Neg()
	}
	if x == y {
		return b.lFalse()
	}
	if x == y.Neg() {
		return b.lTrue
	}
	o := b.fresh()
	b.sat.addClause(o.Neg(), x, y)
	b.sat.addClause(o.Neg(), x.Neg(), y.Neg())
	b.sat.addClause(o, x.Neg(), y)
	b.sat.addClause(o, x, y.Neg())
	return o
}

// mux returns s ? x : y.
func (b *blaster) mux(s, x, y Lit) Lit {
	if s == b.lTrue {
		return x
	}
	if s == b.lFalse() {
		return y
	}
	if x == y {
		return x
	}
	o := b.fresh()
	b.sat.addClause(s.Neg(), x.Neg(), o)
	b.sat.addClause(s.Neg(), x, o.Neg())
	b.sat.addClause(s, y.Neg(), o)
	b.sat.addClause(s, y, o.Neg())
	return o
}

// fullAdder returns (sum, carry) of x + y + cin.
func (b *blaster) fullAdder(x, y, cin Lit) (Lit, Lit) {
	sum := b.xorGate(b.xorGate(x, y), cin)
	carry := b.orGate(b.andGate(x, y), b.andGate(cin, b.xorGate(x, y)))
	return sum, carry
}

// adder returns the ripple-carry sum of equal-width vectors and the final
// carry-out.
func (b *blaster) adder(x, y []Lit, cin Lit) ([]Lit, Lit) {
	out := make([]Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

// subtract returns x - y (two's complement: x + ^y + 1).
func (b *blaster) subtract(x, y []Lit) []Lit {
	ny := make([]Lit, len(y))
	for i := range y {
		ny[i] = y[i].Neg()
	}
	out, _ := b.adder(x, ny, b.lTrue)
	return out
}

// negate returns -x.
func (b *blaster) negate(x []Lit) []Lit {
	zero := make([]Lit, len(x))
	for i := range zero {
		zero[i] = b.lFalse()
	}
	return b.subtract(zero, x)
}

// multiply returns the low len(x) bits of x*y (shift-add).
func (b *blaster) multiply(x, y []Lit) []Lit {
	w := len(x)
	acc := make([]Lit, w)
	for i := range acc {
		acc[i] = b.lFalse()
	}
	for i := 0; i < w; i++ {
		// partial = y[i] ? (x << i) : 0, added into acc
		part := make([]Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				part[j] = b.lFalse()
			} else {
				part[j] = b.andGate(x[j-i], y[i])
			}
		}
		acc, _ = b.adder(acc, part, b.lFalse())
	}
	return acc
}

// divide returns the unsigned (quotient, remainder) of x/y using a
// restoring-division circuit. Division by zero follows the SMT-LIB
// convention: quotient all-ones, remainder x.
func (b *blaster) divide(x, y []Lit) ([]Lit, []Lit) {
	w := len(x)
	// Work with a (w+1)-bit remainder so rem<<1|bit never overflows the
	// comparison with the (w+1)-bit-extended divisor.
	rem := make([]Lit, w+1)
	for i := range rem {
		rem[i] = b.lFalse()
	}
	d := make([]Lit, w+1)
	copy(d, y)
	d[w] = b.lFalse()

	q := make([]Lit, w)
	for i := w - 1; i >= 0; i-- {
		// rem = rem << 1 | x[i]
		nr := make([]Lit, w+1)
		nr[0] = x[i]
		copy(nr[1:], rem[:w])
		rem = nr
		// q[i] = rem >= d
		ge := b.unsignedLess(rem, d, false).Neg()
		q[i] = ge
		// rem = ge ? rem - d : rem
		sub := b.subtract(rem, d)
		for j := range rem {
			rem[j] = b.mux(ge, sub[j], rem[j])
		}
	}
	// division-by-zero handling
	dz := b.isZero(y)
	qOut := make([]Lit, w)
	rOut := make([]Lit, w)
	for i := 0; i < w; i++ {
		qOut[i] = b.mux(dz, b.lTrue, q[i])
		rOut[i] = b.mux(dz, x[i], rem[i])
	}
	return qOut, rOut
}

// signedDivRem lowers SDiv/SRem by conditional negation around divide.
func (b *blaster) signedDivRem(e *expr.Expr, wantQuot bool) []Lit {
	x := b.blast(e.Kid(0))
	y := b.blast(e.Kid(1))
	w := len(x)
	sx, sy := x[w-1], y[w-1]
	ax := b.condNegate(sx, x)
	ay := b.condNegate(sy, y)
	q, r := b.divide(ax, ay)
	if wantQuot {
		qneg := b.xorGate(sx, sy)
		out := b.condNegate(qneg, q)
		// keep the div-by-zero convention of the expr layer: q = all-ones
		dz := b.isZero(y)
		for i := range out {
			out[i] = b.mux(dz, b.lTrue, out[i])
		}
		return out
	}
	out := b.condNegate(sx, r) // remainder takes the dividend's sign
	dz := b.isZero(y)
	for i := range out {
		out[i] = b.mux(dz, x[i], out[i])
	}
	return out
}

func (b *blaster) condNegate(c Lit, x []Lit) []Lit {
	n := b.negate(x)
	out := make([]Lit, len(x))
	for i := range x {
		out[i] = b.mux(c, n[i], x[i])
	}
	return out
}

func (b *blaster) isZero(x []Lit) Lit {
	nz := b.lFalse()
	for _, l := range x {
		nz = b.orGate(nz, l)
	}
	return nz.Neg()
}

type shiftKind int

const (
	shiftLeft shiftKind = iota + 1
	shiftLogicalRight
	shiftArithRight
)

// shifter builds a barrel shifter for e = kid0 shifted by kid1.
func (b *blaster) shifter(e *expr.Expr, kind shiftKind) []Lit {
	x := b.blast(e.Kid(0))
	amt := b.blast(e.Kid(1))
	w := len(x)

	fill := b.lFalse()
	if kind == shiftArithRight {
		fill = x[w-1]
	}

	// stages for amount bits that can select within the width
	cur := make([]Lit, w)
	copy(cur, x)
	for s := 0; s < len(amt) && (1<<s) < w*2; s++ {
		sh := 1 << s
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var shifted Lit
			switch kind {
			case shiftLeft:
				if i-sh >= 0 {
					shifted = cur[i-sh]
				} else {
					shifted = b.lFalse()
				}
			default:
				if i+sh < w {
					shifted = cur[i+sh]
				} else {
					shifted = fill
				}
			}
			next[i] = b.mux(amt[s], shifted, cur[i])
		}
		cur = next
	}
	// any set amount bit >= the highest stage forces overshift semantics
	over := b.lFalse()
	for s := 0; s < len(amt); s++ {
		if 1<<s >= w*2 {
			over = b.orGate(over, amt[s])
		}
	}
	// also: amounts in [w, 2^stages) are handled by the stages themselves
	// (they shift everything out), so only bits beyond the stage range
	// matter here.
	out := make([]Lit, w)
	for i := range out {
		var overVal Lit
		if kind == shiftArithRight {
			overVal = fill
		} else {
			overVal = b.lFalse()
		}
		out[i] = b.mux(over, overVal, cur[i])
	}
	return out
}

func (b *blaster) equality(x, y []Lit) Lit {
	neq := b.lFalse()
	for i := range x {
		neq = b.orGate(neq, b.xorGate(x[i], y[i]))
	}
	return neq.Neg()
}

// unsignedLess returns x < y (orEqual selects <=). Vectors must be the same
// length.
func (b *blaster) unsignedLess(x, y []Lit, orEqual bool) Lit {
	lt := b.constLit(orEqual)
	for i := 0; i < len(x); i++ { // LSB to MSB
		// lt_i = (~x_i & y_i) | (x_i==y_i & lt_{i-1})
		xiLTyi := b.andGate(x[i].Neg(), y[i])
		eq := b.xorGate(x[i], y[i]).Neg()
		lt = b.orGate(xiLTyi, b.andGate(eq, lt))
	}
	return lt
}

// signedLess returns the signed comparison: flip the sign bits and compare
// unsigned.
func (b *blaster) signedLess(x, y []Lit, orEqual bool) Lit {
	fx := make([]Lit, len(x))
	fy := make([]Lit, len(y))
	copy(fx, x)
	copy(fy, y)
	fx[len(fx)-1] = x[len(x)-1].Neg()
	fy[len(fy)-1] = y[len(y)-1].Neg()
	return b.unsignedLess(fx, fy, orEqual)
}

// model extracts the concrete value of every symbolic byte touched during
// blasting from the SAT assignment.
func (b *blaster) model() map[expr.SymByte]byte {
	out := make(map[expr.SymByte]byte, len(b.bytes))
	for sb, ls := range b.bytes {
		var v byte
		for i, l := range ls {
			bit := b.sat.modelValue(l.Var())
			if l.Sign() {
				bit = !bit
			}
			if bit {
				v |= 1 << uint(i)
			}
		}
		out[sb] = v
	}
	return out
}
