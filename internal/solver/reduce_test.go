package solver

import (
	"math/rand"
	"testing"

	"pbse/internal/expr"
)

// TestReduceBoundsKeepsStrongest: chains of lower/upper bounds over one
// term collapse to the strongest of each.
func TestReduceBoundsKeepsStrongest(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	x := c.ReadLE(arr, 0, 2)
	cs := []*expr.Expr{
		c.UltE(c.Const(0, 16), x),   // x > 0
		c.UltE(c.Const(5, 16), x),   // x > 5
		c.UltE(c.Const(3, 16), x),   // x > 3
		c.UleE(x, c.Const(100, 16)), // x <= 100
		c.UltE(x, c.Const(50, 16)),  // x < 50
	}
	out := reduceBounds(cs)
	if len(out) != 2 {
		t.Fatalf("got %d constraints, want 2: %v", len(out), out)
	}
	// must keep x > 5 and x < 50
	keep := map[*expr.Expr]bool{}
	for _, e := range out {
		keep[e] = true
	}
	if !keep[cs[1]] || !keep[cs[4]] {
		t.Errorf("wrong constraints kept: %v", out)
	}
}

// TestReduceBoundsEquivalence: the reduced set must be logically
// equivalent to the original on random assignments.
func TestReduceBoundsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	for iter := 0; iter < 60; iter++ {
		x := c.ReadLE(arr, rng.Intn(3), 2)
		var cs []*expr.Expr
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			v := c.Const(uint64(rng.Intn(1000)), 16)
			var e *expr.Expr
			switch rng.Intn(4) {
			case 0:
				e = c.UltE(v, x)
			case 1:
				e = c.UleE(v, x)
			case 2:
				e = c.UltE(x, v)
			default:
				e = c.UleE(x, v)
			}
			if rng.Intn(3) == 0 {
				e = c.NotB(e)
			}
			cs = append(cs, e)
		}
		orig := make([]*expr.Expr, len(cs))
		copy(orig, cs)
		reduced := reduceBounds(cs)
		for trial := 0; trial < 16; trial++ {
			bs := make([]byte, 4)
			rng.Read(bs)
			ev := expr.NewEvaluator(expr.Assignment{arr: bs})
			allOrig, allRed := true, true
			for _, e := range orig {
				if !ev.EvalBool(e) {
					allOrig = false
				}
			}
			for _, e := range reduced {
				if !ev.EvalBool(e) {
					allRed = false
				}
			}
			if allOrig != allRed {
				t.Fatalf("iter %d: reduction changed semantics (orig=%v red=%v)\norig: %v\nred: %v",
					iter, allOrig, allRed, orig, reduced)
			}
		}
	}
}

func TestReduceBoundsMixedTermsUntouched(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ByteAt(arr, 0)
	y := c.ByteAt(arr, 1)
	cs := []*expr.Expr{
		c.UltE(c.Const(1, 8), x),
		c.UltE(c.Const(2, 8), y),
		c.EqE(x, y), // not a bound; must survive
	}
	out := reduceBounds(cs)
	if len(out) != 3 {
		t.Errorf("independent terms should keep all constraints: %v", out)
	}
}

// TestSeedBoundsContradiction: directly contradictory bounds decide Unsat
// without SAT.
func TestSeedBoundsContradiction(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	x := c.ReadLE(arr, 0, 2)
	s := New(Options{DisableCandidates: true, DisableCache: true})
	r, _, _ := s.Check([]*expr.Expr{
		c.UltE(c.Const(100, 16), x), // x > 100
		c.UltE(x, c.Const(50, 16)),  // x < 50
	}, nil)
	if r != Unsat {
		t.Fatalf("got %v, want unsat", r)
	}
	if s.Stats().SATRuns != 0 {
		t.Errorf("contradictory bounds should not reach SAT (runs=%d)", s.Stats().SATRuns)
	}
}

// TestSeededIntervalRefutesLoopExit: the common loop pattern — a sibling
// constraint pins the bound, the query steps past it.
func TestSeededIntervalRefutesLoopExit(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	n := c.ZExtE(c.ReadLE(arr, 0, 2), 32)
	s := New(Options{DisableCandidates: true, DisableCache: true})
	r, _, _ := s.Check([]*expr.Expr{
		c.NotB(c.UltE(c.Const(3, 32), n)), // n <= 3
		c.UltE(c.Const(7, 32), n),         // query: n > 7
	}, nil)
	if r != Unsat {
		t.Fatalf("got %v, want unsat", r)
	}
	if s.Stats().SATRuns != 0 {
		t.Errorf("interval seeding should have decided (runs=%d)", s.Stats().SATRuns)
	}
}

// TestIncrementalMatchesFresh: incremental and per-query modes agree on
// random query sequences sharing constraints.
func TestIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	inc := New(Options{Incremental: true, DisableCandidates: true, DisableCache: true, DisableIntervals: true, DisableSlicing: true})
	fresh := New(Options{DisableCandidates: true, DisableCache: true, DisableIntervals: true, DisableSlicing: true})

	var pool []*expr.Expr
	for i := 0; i < 24; i++ {
		pool = append(pool, expr.RandBoolExpr(c, rng, arr, 2))
	}
	for q := 0; q < 40; q++ {
		var cs []*expr.Expr
		for i := 0; i < 1+rng.Intn(3); i++ {
			cs = append(cs, pool[rng.Intn(len(pool))])
		}
		r1, m1, _ := inc.Check(cs, nil)
		r2, _, _ := fresh.Check(cs, nil)
		if r1 != r2 {
			t.Fatalf("query %d: incremental=%v fresh=%v for %v", q, r1, r2, cs)
		}
		if r1 == Sat {
			ev := expr.NewEvaluator(m1)
			for _, e := range cs {
				if !ev.EvalBool(e) {
					t.Fatalf("query %d: incremental model invalid for %v", q, e)
				}
			}
		}
	}
}

// TestFeasibleMatchesMayBeTrue: the sliced feasibility check agrees with
// the full check whenever the path constraints are satisfiable.
func TestFeasibleMatchesMayBeTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := expr.NewContext()
	arr := expr.NewArray("in", 3)
	for iter := 0; iter < 60; iter++ {
		// build a satisfiable pc by construction: pick an assignment and
		// only keep constraints it satisfies
		bs := make([]byte, 3)
		rng.Read(bs)
		ev := expr.NewEvaluator(expr.Assignment{arr: bs})
		var pc []*expr.Expr
		for len(pc) < 4 {
			e := expr.RandBoolExpr(c, rng, arr, 2)
			if ev.EvalBool(e) {
				pc = append(pc, e)
			}
		}
		cond := expr.RandBoolExpr(c, rng, arr, 2)
		s1 := New(Options{})
		s2 := New(Options{})
		gotR, _ := s1.Feasible(pc, cond, nil)
		got := gotR == Sat
		want, _, _ := s2.MayBeTrue(pc, cond, nil)
		if got != want {
			t.Fatalf("iter %d: Feasible=%v MayBeTrue=%v\npc: %v\ncond: %v", iter, got, want, pc, cond)
		}
	}
}

func TestConcretizeModelConsistent(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ZExtE(c.ReadLE(arr, 0, 2), 32)
	y := c.ZExtE(c.ReadLE(arr, 2, 2), 32)
	pc := []*expr.Expr{
		c.UltE(c.Const(10, 32), x), // x > 10
		c.UltE(x, c.Const(20, 32)), // x < 20
		c.EqE(y, c.Const(7, 32)),   // independent group
	}
	s := New(Options{})
	m, ok := s.ConcretizeModel(pc, x)
	if !ok {
		t.Fatal("concretize failed")
	}
	v := expr.NewEvaluator(m).Eval(x)
	if v <= 10 || v >= 20 {
		t.Errorf("concretized x = %d, want in (10,20)", v)
	}
}
