package solver

import "pbse/internal/expr"

// interval is an unsigned value range [lo, hi] for a node of some width.
// full() intervals carry no information.
type interval struct {
	lo, hi uint64
}

func fullIval(w uint) interval { return interval{lo: 0, hi: maskW(w)} }

func maskW(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

func (iv interval) isFull(w uint) bool { return iv.lo == 0 && iv.hi == maskW(w) }

func (iv interval) isConst() bool { return iv.lo == iv.hi }

// meet intersects two intervals at width w. Inverted inputs (lo > hi,
// the product of wraparound in a caller) carry no usable information and
// are widened to full rather than trusted — trusting them turns a
// harvesting bug into a wrong Unsat. ok is false when the intersection
// is empty (the two ranges contradict).
func meet(a, b interval, w uint) (interval, bool) {
	if a.lo > a.hi {
		a = fullIval(w)
	}
	if b.lo > b.hi {
		b = fullIval(w)
	}
	if b.lo > a.lo {
		a.lo = b.lo
	}
	if b.hi < a.hi {
		a.hi = b.hi
	}
	if a.lo > a.hi {
		return fullIval(w), false
	}
	return a, true
}

// intervalCheck returns Unsat when unsigned interval propagation proves
// some constraint cannot be 1; otherwise Unknown. This is a sound but
// incomplete fast path — it never returns Sat. Before propagating, it
// seeds the per-node memo with ranges harvested from the constraint set's
// own bound constraints (C < X, X <= C, and their negations), so a query
// like 5 < n is refuted immediately when a sibling constraint pins
// n <= 3 — the common loop-exit pattern.
func intervalCheck(constraints []*expr.Expr) Result {
	memo := make(map[*expr.Expr]interval, 64)
	if contradictory := seedBounds(constraints, memo); contradictory {
		return Unsat
	}
	for _, c := range constraints {
		iv := ivalOf(c, memo)
		if iv.lo == 0 && iv.hi == 0 {
			return Unsat
		}
	}
	return Unknown
}

// seedBounds narrows memo entries for terms constrained by simple
// unsigned bounds in the set, reporting true when two bounds contradict
// outright (the set is unsat). Intersecting ranges from multiple bound
// constraints over the same term is sound: the memo then reflects the
// conjunction.
func seedBounds(constraints []*expr.Expr, memo map[*expr.Expr]interval) bool {
	return seedBoundsX(constraints, memo, nil, false)
}

// seedBoundsX is seedBounds with two extensions used by the static
// PreCheck path (and kept out of the per-query hot path): order, when
// non-nil, records each term on its first seeding so callers can run
// deterministic propagation sweeps over the seeded set; harvestEq also
// harvests equality-with-constant pins (X == C), which the pruning pass
// needs to refute follow-on bounds but which rarely pays for itself in
// the in-dispatch interval stage.
func seedBoundsX(constraints []*expr.Expr, memo map[*expr.Expr]interval, order *[]*expr.Expr, harvestEq bool) bool {
	structural := make(map[*expr.Expr]interval, 16)
	for _, c := range constraints {
		neg := false
		if c.Kind() == expr.Xor && c.Kid(0).IsConst() && c.Kid(0).Value() == 1 && c.Kid(1).IsBool() {
			neg = true
			c = c.Kid(1)
		}
		if harvestEq && !neg && c.Kind() == expr.Eq {
			a, b := c.Kid(0), c.Kid(1)
			var term *expr.Expr
			var v uint64
			switch {
			case a.IsConst() && !b.IsConst():
				term, v = b, a.Value()
			case !a.IsConst() && b.IsConst():
				term, v = a, b.Value()
			default:
				continue
			}
			if v > maskW(term.Width()) {
				return true // X == C with C outside X's width: unsat outright
			}
			if contradictory := seedTerm(term, interval{lo: v, hi: v}, memo, structural, order); contradictory {
				return true
			}
			continue
		}
		if c.Kind() != expr.Ult && c.Kind() != expr.Ule {
			continue
		}
		a, b := c.Kid(0), c.Kid(1)
		strict := c.Kind() == expr.Ult
		var term *expr.Expr
		var lo, hi uint64
		switch {
		case a.IsConst() && !b.IsConst():
			term = b
			lo, hi = 0, maskW(term.Width())
			v := a.Value()
			if !neg { // C < X or C <= X
				if strict {
					if v == maskW(term.Width()) {
						continue
					}
					v++
				}
				lo = v
			} else { // X <= C or X < C
				if !strict {
					if v == 0 {
						continue
					}
					v--
				}
				hi = v
			}
		case !a.IsConst() && b.IsConst():
			term = a
			lo, hi = 0, maskW(term.Width())
			v := b.Value()
			if !neg { // X < C or X <= C
				if strict {
					if v == 0 {
						continue
					}
					v--
				}
				hi = v
			} else { // C <= X or C < X
				if !strict {
					if v == maskW(term.Width()) {
						continue
					}
					v++
				}
				lo = v
			}
		default:
			continue
		}
		if contradictory := seedTerm(term, interval{lo: lo, hi: hi}, memo, structural, order); contradictory {
			return true // contradictory bounds: the set is unsat
		}
	}
	return false
}

// seedTerm meets a harvested bound into memo[term], reporting true on an
// empty intersection. New terms start from their structural range (e.g.
// zext of a byte is at most 255), computed with an unseeded memo, and are
// appended to order on first seeding.
func seedTerm(term *expr.Expr, bound interval, memo, structural map[*expr.Expr]interval, order *[]*expr.Expr) bool {
	cur, ok := memo[term]
	if !ok {
		cur = ivalOf(term, structural)
		if order != nil {
			*order = append(*order, term)
		}
	}
	cur, ok = meet(cur, bound, term.Width())
	if !ok {
		return true
	}
	memo[term] = cur
	return false
}

// ivalOf computes a conservative unsigned interval for e.
func ivalOf(e *expr.Expr, memo map[*expr.Expr]interval) interval {
	if iv, ok := memo[e]; ok {
		return iv
	}
	iv := ival1(e, memo)
	memo[e] = iv
	return iv
}

func ival1(e *expr.Expr, memo map[*expr.Expr]interval) interval {
	w := e.Width()
	switch e.Kind() {
	case expr.Const:
		return interval{lo: e.Value(), hi: e.Value()}
	case expr.Read:
		return interval{lo: 0, hi: 0xff}
	case expr.Add:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		lo := a.lo + b.lo
		hi := a.hi + b.hi
		if hi < a.hi || hi > maskW(w) { // wraps
			return fullIval(w)
		}
		return interval{lo: lo, hi: hi}
	case expr.Sub:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.lo >= b.hi { // no borrow possible
			return interval{lo: a.lo - b.hi, hi: a.hi - b.lo}
		}
		return fullIval(w)
	case expr.Mul:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.hi != 0 && b.hi != 0 {
			hi := a.hi * b.hi
			if hi/a.hi != b.hi || hi > maskW(w) { // overflow
				return fullIval(w)
			}
			return interval{lo: a.lo * b.lo, hi: hi}
		}
		return interval{lo: 0, hi: 0}
	case expr.UDiv:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		// the divisor range must exclude zero AND be well-formed: an
		// inverted range like [5, 0] still contains zero at its upper
		// end, and dividing by b.hi == 0 would panic
		if b.lo > 0 && b.lo <= b.hi {
			return interval{lo: a.lo / b.hi, hi: a.hi / b.lo}
		}
		return fullIval(w) // divisor may be zero -> all-ones convention
	case expr.URem:
		b := ivalOf(e.Kid(1), memo)
		a := ivalOf(e.Kid(0), memo)
		if b.lo > 0 && b.lo <= b.hi {
			hi := b.hi - 1
			if a.hi < hi {
				hi = a.hi
			}
			return interval{lo: 0, hi: hi}
		}
		return interval{lo: 0, hi: a.hi} // x%0 = x
	case expr.And:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.isConst() && b.isConst() {
			v := a.lo & b.lo & maskW(w)
			return interval{lo: v, hi: v}
		}
		hi := a.hi
		if b.hi < hi {
			hi = b.hi
		}
		return interval{lo: 0, hi: hi}
	case expr.Or:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.isConst() && b.isConst() {
			v := (a.lo | b.lo) & maskW(w)
			return interval{lo: v, hi: v}
		}
		lo := a.lo
		if b.lo > lo {
			lo = b.lo
		}
		// upper bound: next power of two above max(hi) minus 1
		hi := ceilPow2Mask(a.hi | b.hi)
		if hi > maskW(w) {
			hi = maskW(w)
		}
		return interval{lo: lo, hi: hi}
	case expr.Xor:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.isConst() && b.isConst() {
			// exact fold; in particular not(b) == xor(1, b) folds negated
			// constant booleans, which PreCheck relies on
			v := (a.lo ^ b.lo) & maskW(w)
			return interval{lo: v, hi: v}
		}
		hi := ceilPow2Mask(a.hi | b.hi)
		if hi > maskW(w) {
			hi = maskW(w)
		}
		return interval{lo: 0, hi: hi}
	case expr.Not:
		a := ivalOf(e.Kid(0), memo)
		return interval{lo: ^a.hi & maskW(w), hi: ^a.lo & maskW(w)}
	case expr.Shl:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if b.isConst() && b.lo < uint64(w) {
			sh := b.lo
			if a.hi<<sh>>sh == a.hi && a.hi<<sh <= maskW(w) {
				return interval{lo: a.lo << sh, hi: a.hi << sh}
			}
		}
		return fullIval(w)
	case expr.LShr:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if b.hi >= uint64(w) {
			return interval{lo: 0, hi: a.hi >> b.lo}
		}
		return interval{lo: a.lo >> b.hi, hi: a.hi >> b.lo}
	case expr.AShr:
		return fullIval(w) // sign bit makes unsigned reasoning weak
	case expr.Eq:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.hi < b.lo || b.hi < a.lo {
			return interval{lo: 0, hi: 0} // disjoint: never equal
		}
		if a.isConst() && b.isConst() && a.lo == b.lo {
			return interval{lo: 1, hi: 1}
		}
		return interval{lo: 0, hi: 1}
	case expr.Ult:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.hi < b.lo {
			return interval{lo: 1, hi: 1}
		}
		if a.lo >= b.hi {
			return interval{lo: 0, hi: 0}
		}
		return interval{lo: 0, hi: 1}
	case expr.Ule:
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		if a.hi <= b.lo {
			return interval{lo: 1, hi: 1}
		}
		if a.lo > b.hi {
			return interval{lo: 0, hi: 0}
		}
		return interval{lo: 0, hi: 1}
	case expr.Slt, expr.Sle:
		kw := e.Kid(0).Width()
		a, b := ivalOf(e.Kid(0), memo), ivalOf(e.Kid(1), memo)
		// only reason when both sides stay within the non-negative range
		half := maskW(kw) >> 1
		if a.hi <= half && b.hi <= half {
			if e.Kind() == expr.Slt {
				if a.hi < b.lo {
					return interval{lo: 1, hi: 1}
				}
				if a.lo >= b.hi {
					return interval{lo: 0, hi: 0}
				}
			} else {
				if a.hi <= b.lo {
					return interval{lo: 1, hi: 1}
				}
				if a.lo > b.hi {
					return interval{lo: 0, hi: 0}
				}
			}
		}
		return interval{lo: 0, hi: 1}
	case expr.ZExt:
		return ivalOf(e.Kid(0), memo)
	case expr.SExt:
		a := ivalOf(e.Kid(0), memo)
		kw := e.Kid(0).Width()
		if a.hi <= maskW(kw)>>1 { // never negative
			return a
		}
		return fullIval(w)
	case expr.Trunc:
		a := ivalOf(e.Kid(0), memo)
		if a.hi <= maskW(w) {
			return a
		}
		return fullIval(w)
	case expr.Concat:
		hi := ivalOf(e.Kid(0), memo)
		lo := ivalOf(e.Kid(1), memo)
		lw := e.Kid(1).Width()
		return interval{lo: hi.lo<<lw | lo.lo, hi: hi.hi<<lw | lo.hi}
	case expr.ITE:
		c := ivalOf(e.Kid(0), memo)
		a, b := ivalOf(e.Kid(1), memo), ivalOf(e.Kid(2), memo)
		if c.isConst() {
			if c.lo == 1 {
				return a
			}
			return b
		}
		lo := a.lo
		if b.lo < lo {
			lo = b.lo
		}
		hi := a.hi
		if b.hi > hi {
			hi = b.hi
		}
		return interval{lo: lo, hi: hi}
	default:
		return fullIval(w)
	}
}

// ceilPow2Mask returns the smallest 2^k-1 that is >= v.
func ceilPow2Mask(v uint64) uint64 {
	m := uint64(0)
	for m < v {
		m = m<<1 | 1
	}
	return m
}

// UnsignedRange returns a conservative unsigned [lo, hi] range for e,
// usable by the executor to bound symbolic memory offsets.
func UnsignedRange(e *expr.Expr) (uint64, uint64) {
	iv := ivalOf(e, make(map[*expr.Expr]interval, 16))
	return iv.lo, iv.hi
}
