package solver

import (
	"time"

	"pbse/internal/expr"
)

// Batched sibling dispatch (DESIGN.md §12). A branch or switch
// terminator asks one feasibility question per successor edge, and all
// of those questions share the same path-constraint slice: cond and
// ¬cond read the same symbolic bytes, and every switch arm reads the
// scrutinee's. The classic pipeline answers them one Feasible call at a
// time, re-blasting the shared slice for every sibling that falls
// through to the SAT core. FeasibleBatch instead runs the cheap
// pipeline (caches, candidates, intervals) per sibling and then blasts
// the shared slice ONCE into a single fresh SAT instance, deciding each
// leftover sibling under an assumption literal — the same mechanism
// satCheckIncremental uses against the persistent instance, so the
// soundness argument is identical: Tseitin gates are biconditional, an
// unasserted sibling leaves the formula unconstrained.
//
// Soundness of the shared slice: each sibling's own relevant slice is a
// subset of the union slice, and the extra constraints the union pulls
// in share no symbolic bytes with that sibling's closure (or they would
// be in it). Those extras are a subset of pc, and pc is satisfiable on
// a live state, so conjoining them can never flip a Sat sibling to
// Unsat — union ∧ cond is equisatisfiable with slice ∧ cond.

// BatchVerdict is one sibling's outcome: the verdict plus, on Unknown,
// the cause (ErrBudgetExhausted, ErrDeadlineExceeded, ErrInjected, or
// an *InternalError) — the same error surface as Feasible.
type BatchVerdict struct {
	Res Result
	Err error
}

// batchPending is a sibling that survived the cheap pipeline and needs
// the SAT core.
type batchPending struct {
	idx  int // index into the caller's conds slice
	cond *expr.Expr
	key  string // local-cache key of the reduced constraint set
	skey uint64 // shared-cache fingerprint of the reduced set
}

// FeasibleBatch decides pc ∧ conds[i] for every sibling condition at
// once. Verdict semantics per sibling match Feasible with verdictOnly
// queries (models are extracted only to feed the candidate caches).
// Every sibling is counted as a query; Stats.Batches counts the shared
// SAT instances and Stats.BatchedQueries the siblings decided on one.
func (s *Solver) FeasibleBatch(pc []*expr.Expr, conds []*expr.Expr, hint expr.Assignment) []BatchVerdict {
	return s.FeasibleBatchSliced(s.relevantSliceMulti(pc, conds), conds, hint)
}

// SliceMulti returns the union relevant slice for a terminator's sibling
// conditions: the constraints of pc transitively connected to any cond
// through shared symbolic bytes. The batched executor path computes it
// once per terminator and reuses it for the static precheck
// (PreCheckSliced) and the SAT dispatch (FeasibleBatchSliced), instead
// of re-slicing the path for every sibling of every stage.
func (s *Solver) SliceMulti(pc []*expr.Expr, conds []*expr.Expr) []*expr.Expr {
	return s.relevantSliceMulti(pc, conds)
}

// FeasibleBatchSliced is FeasibleBatch with the union slice already
// computed by the caller (via SliceMulti, possibly over a superset of
// conds — a superset union slice is still a subset of pc, so the
// equisatisfiability argument above is unchanged).
func (s *Solver) FeasibleBatchSliced(slice []*expr.Expr, conds []*expr.Expr, hint expr.Assignment) []BatchVerdict {
	out := make([]BatchVerdict, len(conds))
	var pending []batchPending
	cs := make([]*expr.Expr, len(slice)+1)
	for i, cond := range conds {
		if cond.IsTrue() {
			out[i] = BatchVerdict{Res: Sat}
			continue
		}
		if cond.IsFalse() {
			out[i] = BatchVerdict{Res: Unsat}
			continue
		}
		copy(cs, slice)
		cs[len(slice)] = cond
		r, p, err := s.checkFast(cs, hint)
		if p == nil {
			out[i] = BatchVerdict{Res: r, Err: err}
			continue
		}
		p.idx = i
		p.cond = cond
		pending = append(pending, *p)
	}
	if len(pending) == 0 {
		return out
	}
	if len(pending) > 1 {
		s.stats.Batches++
		s.stats.BatchedQueries += int64(len(pending))
	}
	s.batchSAT(slice, pending, out)
	return out
}

// The union slicer runs on every terminator and every bounds check of
// the batched pipeline, so it trades the exact SymByte set computation
// of relevantSlice for the expression DAG's hash bitmasks
// (expr.ReadMask): each symbolic byte maps to one of 1024 bits, every
// node carries the OR of its reads' bits (built at hash-cons time), and
// the transitive-closure fixpoint reduces to word-wide AND/OR sweeps —
// no per-call read-set walks or memo probes at all. Hash collisions only
// ever ADD constraints to the slice, and a superset slice is sound
// everywhere the batch path uses it (see the equisatisfiability argument
// above and PreCheckSliced): precision is a performance knob here, never
// a correctness one. Bit assignment is a pure function of array name and
// byte index, so sibling workers slice identically and the shared-cache
// keys they derive from the slices keep colliding (that is what makes
// cross-worker verdict reuse work).

// relevantSliceMulti is relevantSlice seeded with the union of every
// sibling's reads: the constraints of pc transitively connected to any
// of the conds through shared symbolic bytes (conservatively, modulo
// mask collisions — see above).
func (s *Solver) relevantSliceMulti(pc []*expr.Expr, conds []*expr.Expr) []*expr.Expr {
	var want expr.ReadMask
	for _, cond := range conds {
		if m := cond.ReadMask(); m != nil {
			for i, w := range m.W {
				want.W[i] |= w
			}
			want.Coarse |= m.Coarse
		}
	}
	if want.Coarse == 0 {
		return nil
	}
	// one pointer read per constraint; the fixpoint sweeps below are pure
	// word arithmetic. Scratch is solver-owned and reused across calls —
	// this runs on every terminator, so per-call allocation is real GC
	// pressure.
	if cap(s.maskScratch) < len(pc) {
		s.maskScratch = make([]*expr.ReadMask, len(pc)*2)
		s.pickScratch = make([]bool, len(pc)*2)
	}
	masks := s.maskScratch[:len(pc)]
	picked := s.pickScratch[:len(pc)]
	for i, c := range pc {
		masks[i] = c.ReadMask()
		// a read-free constraint is constant and can never join a slice
		picked[i] = masks[i] == nil
	}
	// The fixpoint scans newest-first: path constraints grow
	// chronologically and a sibling condition usually connects to recent
	// constraints, which connect to older ones — a backward chain that one
	// descending pass absorbs whole, where an ascending pass needs one
	// round per link. The Coarse prefilter (one AND) rejects most
	// disjoint constraints without touching the 16-word masks.
	n := 0
	for changed := true; changed; {
		changed = false
		for i := len(pc) - 1; i >= 0; i-- {
			if picked[i] {
				continue
			}
			m := masks[i]
			if m.Coarse&want.Coarse == 0 {
				continue
			}
			hit := false
			for j, w := range m.W {
				if w&want.W[j] != 0 {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			picked[i] = true
			n++
			want.Coarse |= m.Coarse
			for j, w := range m.W {
				if w&^want.W[j] != 0 {
					want.W[j] |= w
					changed = true
				}
			}
		}
	}
	// emit in pc order, the order every worker derives cache keys from
	out := make([]*expr.Expr, 0, n)
	for i, c := range pc {
		if picked[i] && masks[i] != nil {
			out = append(out, c)
		}
	}
	return out
}

// checkFast runs check's cheap pipeline — injector, trivial scan, bound
// reduction, local cache, shared cache (verdict-only), candidates,
// intervals — and stops before SAT dispatch. A nil *batchPending means
// the query was decided (or injected-Unknown) right here; otherwise the
// returned pending carries the cache keys the SAT stage must publish
// under. Counter updates mirror check exactly, so a batched worker's
// stats stay comparable with a classic one's.
func (s *Solver) checkFast(constraints []*expr.Expr, hint expr.Assignment) (Result, *batchPending, error) {
	s.stats.Queries++

	if inj := s.opts.Injector; inj != nil {
		if inj.SolverUnknown() {
			s.stats.Unknowns++
			s.stats.InjectedUnknowns++
			return Unknown, nil, ErrInjected
		}
		if d, ok := inj.SolverSlow(); ok {
			time.Sleep(d)
		}
	}

	live := make([]*expr.Expr, 0, len(constraints))
	for _, c := range constraints {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			return Unsat, nil, nil
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return Sat, nil, nil
	}
	live = reduceBounds(live)

	key := ""
	if !s.opts.DisableCache {
		key = cacheKey(live)
		if e, ok := s.cache[key]; ok {
			s.stats.CacheHits++
			return e.result, nil, nil
		}
	}

	skey := uint64(0)
	if s.opts.Shared != nil {
		skey = s.sharedKey(live)
		// batched siblings are always verdict-only queries, so a shared
		// Sat is honoured too (unlike model-bearing Check calls)
		if r, ok := s.opts.Shared.Get(skey); ok {
			s.stats.SharedHits++
			if r == Unsat {
				s.remember(key, Unsat, nil)
			}
			return r, nil, nil
		}
	}

	if !s.opts.DisableCandidates {
		if m, ok := s.tryCandidates(live, hint); ok {
			s.stats.CandidateSat++
			s.remember(key, Sat, m)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(skey, Sat)
			}
			return Sat, nil, nil
		}
	}

	if !s.opts.DisableIntervals {
		if r := intervalCheck(live); r == Unsat {
			s.stats.IntervalFast++
			s.remember(key, Unsat, nil)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(skey, Unsat)
			}
			return Unsat, nil, nil
		}
	}

	return Unknown, &batchPending{key: key, skey: skey}, nil
}

// batchSAT decides the pending siblings on one fresh SAT instance: the
// shared slice is asserted true and blasted once, then each sibling's
// condition becomes an assumption literal for its own bounded solve. A
// recovered internal invariant violation degrades the current and all
// remaining siblings to Unknown, mirroring the per-query recover
// boundary of satCheck.
func (s *Solver) batchSAT(slice []*expr.Expr, pending []batchPending, out []BatchVerdict) {
	if s.opts.QueryDeadline > 0 {
		s.queryDeadline = time.Now().Add(s.opts.QueryDeadline)
	} else {
		s.queryDeadline = time.Time{}
	}
	next := 0
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		ie, ok := p.(*InternalError)
		if !ok {
			panic(p)
		}
		s.stats.InternalRecovered++
		for _, b := range pending[next:] {
			s.stats.Unknowns++
			out[b.idx] = BatchVerdict{Res: Unknown, Err: ie}
		}
	}()

	st := newSAT()
	st.deadline = s.queryDeadline
	bl := newBlaster(st)
	for _, c := range slice {
		bl.assertTrue(c)
	}
	for ; next < len(pending); next++ {
		b := &pending[next]
		s.stats.SATRuns++
		assump := bl.blast(b.cond)[0]
		before := st.conflicts
		verdict := st.solveWith([]Lit{assump}, s.opts.MaxConflicts)
		s.stats.Conflicts += st.conflicts - before
		switch verdict {
		case lFalse:
			s.remember(b.key, Unsat, nil)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(b.skey, Unsat)
			}
			out[b.idx] = BatchVerdict{Res: Unsat}
		case lUndef:
			s.stats.Unknowns++
			out[b.idx] = BatchVerdict{Res: Unknown, Err: s.undefError(st)}
		default:
			m := extractModel(bl)
			st.reset()
			s.remember(b.key, Sat, m)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(b.skey, Sat)
			}
			s.keepRecent(m)
			out[b.idx] = BatchVerdict{Res: Sat}
		}
	}
}
