package solver

import (
	"testing"

	"pbse/internal/expr"
)

func TestMeetTable(t *testing.T) {
	full32 := fullIval(32)
	tests := []struct {
		name   string
		a, b   interval
		w      uint
		want   interval
		wantOK bool
	}{
		{"overlap", interval{0, 10}, interval{5, 20}, 32, interval{5, 10}, true},
		{"nested", interval{0, 100}, interval{7, 7}, 32, interval{7, 7}, true},
		{"identical", interval{3, 9}, interval{3, 9}, 32, interval{3, 9}, true},
		{"touching", interval{0, 5}, interval{5, 9}, 32, interval{5, 5}, true},
		{"disjoint", interval{0, 4}, interval{10, 20}, 32, full32, false},
		{"disjoint-rev", interval{10, 20}, interval{0, 4}, 32, full32, false},
		// inverted inputs are the product of wraparound in a caller and
		// must be widened to full, not trusted
		{"inverted-a", interval{5, 0}, interval{2, 8}, 32, interval{2, 8}, true},
		{"inverted-b", interval{2, 8}, interval{5, 0}, 32, interval{2, 8}, true},
		{"inverted-both", interval{5, 0}, interval{9, 1}, 32, full32, true},
		// wraparound at the width boundary
		{"wrap-64", interval{^uint64(0), 0}, interval{0, 10}, 64, interval{0, 10}, true},
		{"w8-full", interval{200, 100}, interval{0, 50}, 8, interval{0, 50}, true},
		{"w1-bool", interval{0, 1}, interval{1, 1}, 1, interval{1, 1}, true},
		{"w1-contradiction", interval{0, 0}, interval{1, 1}, 1, interval{0, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := meet(tt.a, tt.b, tt.w)
			if got != tt.want || ok != tt.wantOK {
				t.Errorf("meet(%v, %v, %d) = %v, %v; want %v, %v",
					tt.a, tt.b, tt.w, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

// Division by an interval that contains zero — including an inverted
// (lo > hi) interval whose endpoints straddle zero — must return the
// conservative full range, never panic.
func TestDivByIntervalContainingZero(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	y := c.ZExtE(c.ByteAt(arr, 1), 32) // [0, 255]: contains zero

	memo := map[*expr.Expr]interval{}
	if got := ivalOf(c.UDiv(x, y), memo); !got.isFull(32) {
		t.Errorf("udiv by [0,255] = %v, want full", got)
	}
	// x % 0 = x under the engine's convention, so the range keeps the
	// dividend's upper bound
	if got := ivalOf(c.URem(x, y), memo); got.lo != 0 || got.hi != 255 {
		t.Errorf("urem by [0,255] = %v, want [0,255]", got)
	}

	// now poison the divisor with an inverted interval, as a buggy
	// harvesting pass could: [5, 0] still contains zero at its upper end
	memo = map[*expr.Expr]interval{y: {lo: 5, hi: 0}}
	if got := ivalOf(c.UDiv(x, y), memo); !got.isFull(32) {
		t.Errorf("udiv by inverted [5,0] = %v, want full", got)
	}
	memo = map[*expr.Expr]interval{y: {lo: 5, hi: 0}}
	if got := ivalOf(c.URem(x, y), memo); got.lo != 0 || got.hi != 255 {
		t.Errorf("urem by inverted [5,0] = %v, want [0,255]", got)
	}

	// a well-formed zero-free divisor still divides exactly
	memo = map[*expr.Expr]interval{y: {lo: 5, hi: 10}}
	if got := ivalOf(c.UDiv(x, y), memo); got.lo != 0 || got.hi != 51 {
		t.Errorf("udiv by [5,10] = %v, want [0,51]", got)
	}
}

func TestPreCheckVerdicts(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)

	t.Run("sat", func(t *testing.T) {
		s := newTestSolver()
		cond := c.UltE(x, c.Const(300, 32))
		if r := s.PreCheck(cond, []RangeFact{{E: x, Lo: 0, Hi: 4}}); r != Sat {
			t.Fatalf("x in [0,4] < 300 = %v, want Sat", r)
		}
		if s.Stats().StaticPrunes != 1 {
			t.Fatalf("StaticPrunes = %d, want 1", s.Stats().StaticPrunes)
		}
	})
	t.Run("unsat", func(t *testing.T) {
		s := newTestSolver()
		cond := c.UltE(c.Const(10, 32), x)
		if r := s.PreCheck(cond, []RangeFact{{E: x, Lo: 0, Hi: 4}}); r != Unsat {
			t.Fatalf("10 < x with x in [0,4] = %v, want Unsat", r)
		}
		if s.Stats().StaticPrunes != 1 {
			t.Fatalf("StaticPrunes = %d, want 1", s.Stats().StaticPrunes)
		}
	})
	t.Run("unknown-no-facts", func(t *testing.T) {
		s := newTestSolver()
		cond := c.UltE(x, c.Const(100, 32))
		if r := s.PreCheck(cond, nil); r != Unknown {
			t.Fatalf("unconstrained x < 100 = %v, want Unknown", r)
		}
		if s.Stats().StaticPrunes != 0 {
			t.Fatalf("undecided PreCheck counted a prune")
		}
	})
	t.Run("negated-condition", func(t *testing.T) {
		// the executor queries the false edge as not(cond) == xor(1, cond);
		// the constant fold in ival1 must see through it
		s := newTestSolver()
		cond := c.NotB(c.UltE(x, c.Const(300, 32)))
		if r := s.PreCheck(cond, []RangeFact{{E: x, Lo: 0, Hi: 4}}); r != Unsat {
			t.Fatalf("not(x < 300) with x in [0,4] = %v, want Unsat", r)
		}
	})
	t.Run("facts-intersect", func(t *testing.T) {
		s := newTestSolver()
		cond := c.EqE(x, c.Const(7, 32))
		facts := []RangeFact{{E: x, Lo: 0, Hi: 4}, {E: x, Lo: 5, Hi: 20}}
		// two facts over the same term contradict: no information, never
		// a prune on bad input
		if r := s.PreCheck(cond, facts); r != Unknown {
			t.Fatalf("contradictory facts = %v, want Unknown", r)
		}
	})
	t.Run("malformed-facts-skipped", func(t *testing.T) {
		s := newTestSolver()
		cond := c.UltE(x, c.Const(5, 32))
		facts := []RangeFact{
			{E: nil, Lo: 0, Hi: 1},
			{E: x, Lo: 9, Hi: 2},                  // inverted
			{E: x, Lo: 0, Hi: 1 << 40},            // exceeds w32
			{E: c.ByteAt(arr, 1), Lo: 0, Hi: 300}, // exceeds w8
		}
		if r := s.PreCheck(cond, facts); r != Unknown {
			t.Fatalf("all-malformed facts = %v, want Unknown", r)
		}
	})
	t.Run("const-shortcuts", func(t *testing.T) {
		s := newTestSolver()
		if r := s.PreCheck(c.True(), nil); r != Sat {
			t.Fatalf("true = %v", r)
		}
		if r := s.PreCheck(c.False(), nil); r != Unsat {
			t.Fatalf("false = %v", r)
		}
		// literal shortcuts are free: not counted as static prunes
		if s.Stats().StaticPrunes != 0 {
			t.Fatalf("StaticPrunes = %d, want 0", s.Stats().StaticPrunes)
		}
	})
}

// PreCheck verdicts must agree with the SAT core on fact-augmented
// queries: encode the facts as explicit constraints and compare.
func TestPreCheckAgreesWithSAT(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	five := c.Const(5, 32)
	conds := []*expr.Expr{
		c.UltE(x, c.Const(1, 32)),
		c.UltE(x, five),
		c.UltE(five, x),
		c.EqE(x, c.Const(3, 32)),
		c.UleE(x, c.Const(200, 32)),
		c.NotB(c.UleE(x, c.Const(200, 32))),
		c.EqE(c.URem(x, five), c.Const(4, 32)),
	}
	fact := RangeFact{E: x, Lo: 2, Hi: 4}
	bounds := []*expr.Expr{
		c.UleE(c.Const(fact.Lo, 32), x),
		c.UleE(x, c.Const(fact.Hi, 32)),
	}
	for i, cond := range conds {
		pre := newTestSolver().PreCheck(cond, []RangeFact{fact})
		if pre == Unknown {
			continue
		}
		ref, _, err := noFastPaths().Check(append(bounds[:2:2], cond), nil)
		if err != nil {
			t.Fatalf("cond %d: %v", i, err)
		}
		// Sat from PreCheck is the stronger "always true": the negation
		// must be unsat too
		if pre == Sat {
			if ref != Sat {
				t.Errorf("cond %d: PreCheck Sat but SAT core says %v", i, ref)
			}
			negRef, _, err := noFastPaths().Check(append(bounds[:2:2], c.NotB(cond)), nil)
			if err != nil {
				t.Fatalf("cond %d: %v", i, err)
			}
			if negRef != Unsat {
				t.Errorf("cond %d: PreCheck Sat (always true) but negation is %v", i, negRef)
			}
		}
		if pre == Unsat && ref != Unsat {
			t.Errorf("cond %d: PreCheck Unsat but SAT core says %v", i, ref)
		}
	}
}
