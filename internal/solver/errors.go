package solver

import (
	"errors"
	"fmt"
)

// Sentinel causes for an Unknown verdict. Check returns one of these
// (possibly wrapped) alongside Unknown so callers can distinguish "the
// solver proved nothing within its resources" from other outcomes and
// pick a degradation strategy (retry with a bigger budget, concretize,
// or treat conservatively).
var (
	// ErrBudgetExhausted: the CDCL search hit Options.MaxConflicts.
	ErrBudgetExhausted = errors.New("solver: conflict budget exhausted")
	// ErrDeadlineExceeded: the query ran past Options.QueryDeadline.
	ErrDeadlineExceeded = errors.New("solver: query deadline exceeded")
	// ErrInjected: a fault-injection hook forced the Unknown.
	ErrInjected = errors.New("solver: injected fault")
)

// InternalError reports a broken solver-internal invariant (a bit-blast
// width mismatch, an expression kind the blaster cannot lower, a failed
// CDCL enqueue). The exported entry points convert these to an Unknown
// verdict instead of panicking, so one bad query cannot take down the
// engine; see the package comment in sat.go for the panic policy.
type InternalError struct {
	Msg string
}

func (e *InternalError) Error() string { return "solver: internal error: " + e.Msg }

// throwInternal raises an *InternalError through panic; satCheck and
// satCheckIncremental recover it at the query boundary.
func throwInternal(format string, args ...any) {
	panic(&InternalError{Msg: fmt.Sprintf(format, args...)})
}
