package solver

import (
	"testing"
	"time"

	"pbse/internal/expr"
)

// TestPreCheckDeadline: an armed QueryDeadline bounds the PreCheck and
// PreCheckPC propagation sweeps too — an expired sweep gives up with
// Unknown and is counted in Stats.PrecheckDeadlines instead of stalling
// the turn.
func TestPreCheckDeadline(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	cond := c.UltE(x, c.Const(300, 32))
	facts := []RangeFact{{E: x, Lo: 0, Hi: 4}}

	t.Run("precheck", func(t *testing.T) {
		s := New(Options{QueryDeadline: time.Nanosecond})
		if r := s.PreCheck(cond, facts); r != Unknown {
			t.Fatalf("PreCheck under 1ns deadline = %v, want Unknown", r)
		}
		st := s.Stats()
		if st.PrecheckDeadlines == 0 {
			t.Errorf("abandoned precheck not counted: %+v", st)
		}
		if st.StaticPrunes != 0 {
			t.Errorf("expired sweep still claimed a prune: %+v", st)
		}
	})
	t.Run("precheck-pc", func(t *testing.T) {
		s := New(Options{QueryDeadline: time.Nanosecond})
		pc := []*expr.Expr{c.UltE(x, c.Const(5, 32))}
		if r := s.PreCheckPC(pc, cond, facts); r != Unknown {
			t.Fatalf("PreCheckPC under 1ns deadline = %v, want Unknown", r)
		}
		if st := s.Stats(); st.PrecheckDeadlines == 0 {
			t.Errorf("abandoned precheck-pc sweep not counted: %+v", st)
		}
	})
	t.Run("unbounded", func(t *testing.T) {
		s := New(Options{}) // no deadline: the sweep must decide as before
		if r := s.PreCheck(cond, facts); r != Sat {
			t.Fatalf("unbounded PreCheck = %v, want Sat", r)
		}
		if st := s.Stats(); st.PrecheckDeadlines != 0 {
			t.Errorf("unbounded sweep counted a deadline: %+v", st)
		}
	})
}
