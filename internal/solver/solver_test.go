package solver

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pbse/internal/expr"
)

func newTestSolver() *Solver { return New(Options{}) }

// noFastPaths disables everything but bit-blasting, to exercise the SAT
// pipeline directly.
func noFastPaths() *Solver {
	return New(Options{DisableCache: true, DisableCandidates: true, DisableIntervals: true, DisableSlicing: true})
}

func TestTriviallySat(t *testing.T) {
	c := expr.NewContext()
	s := newTestSolver()
	r, m, _ := s.Check([]*expr.Expr{c.True()}, nil)
	if r != Sat || m == nil {
		t.Fatalf("true should be sat, got %v", r)
	}
}

func TestTriviallyUnsat(t *testing.T) {
	c := expr.NewContext()
	s := newTestSolver()
	r, _, _ := s.Check([]*expr.Expr{c.False()}, nil)
	if r != Unsat {
		t.Fatalf("false should be unsat, got %v", r)
	}
}

func TestSimpleByteConstraint(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	s := noFastPaths()
	b0 := c.ByteAt(arr, 0)
	r, m, _ := s.Check([]*expr.Expr{c.EqE(b0, c.Const(0x7f, 8))}, nil)
	if r != Sat {
		t.Fatalf("got %v, want sat", r)
	}
	if got := m.ByteOf(arr, 0); got != 0x7f {
		t.Fatalf("model byte = %#x, want 0x7f", got)
	}
}

func TestContradiction(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	s := noFastPaths()
	b0 := c.ByteAt(arr, 0)
	r, _, _ := s.Check([]*expr.Expr{
		c.EqE(b0, c.Const(1, 8)),
		c.EqE(b0, c.Const(2, 8)),
	}, nil)
	if r != Unsat {
		t.Fatalf("got %v, want unsat", r)
	}
}

func TestArithmeticGates(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	x := c.ZExtE(c.ByteAt(arr, 0), 16)
	y := c.ZExtE(c.ByteAt(arr, 1), 16)
	tests := []struct {
		name string
		give *expr.Expr
	}{
		{"add", c.Add(x, y)},
		{"sub", c.Sub(x, y)},
		{"mul", c.Mul(x, y)},
		{"udiv", c.UDiv(x, y)},
		{"urem", c.URem(x, y)},
		{"sdiv", c.SDiv(x, y)},
		{"srem", c.SRem(x, y)},
		{"and", c.And(x, y)},
		{"or", c.Or(x, y)},
		{"xor", c.Xor(x, y)},
		{"shl", c.Shl(x, y)},
		{"lshr", c.LShr(x, y)},
		{"ashr", c.AShr(x, y)},
	}
	rng := rand.New(rand.NewSource(3))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				bs := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
				want := expr.NewEvaluator(expr.Assignment{arr: bs}).Eval(tt.give)
				s := noFastPaths()
				// pin the inputs and require the op to equal its true value
				cs := []*expr.Expr{
					c.EqE(c.ByteAt(arr, 0), c.Const(uint64(bs[0]), 8)),
					c.EqE(c.ByteAt(arr, 1), c.Const(uint64(bs[1]), 8)),
					c.EqE(tt.give, c.Const(want, 16)),
				}
				if r, _, _ := s.Check(cs, nil); r != Sat {
					t.Fatalf("inputs %v: op==%#x should be sat, got %v", bs, want, r)
				}
				// ... and to differ from it must be unsat
				s2 := noFastPaths()
				cs[2] = c.NeE(tt.give, c.Const(want, 16))
				if r, _, _ := s2.Check(cs, nil); r != Unsat {
					t.Fatalf("inputs %v: op!=%#x should be unsat, got %v", bs, want, r)
				}
			}
		})
	}
}

// TestBitblastAgreesWithEval is the central soundness property: for random
// boolean expressions, a Sat verdict must come with a model that actually
// evaluates the expression to true, and an Unsat verdict must match a
// brute-force search over the (small) input space.
func TestBitblastAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	for i := 0; i < 120; i++ {
		e := expr.RandBoolExpr(c, rng, arr, 3)
		s := noFastPaths()
		r, m, _ := s.Check([]*expr.Expr{e}, nil)
		switch r {
		case Sat:
			ev := expr.NewEvaluator(m)
			if !ev.EvalBool(e) {
				t.Fatalf("iter %d: model does not satisfy %v", i, e)
			}
		case Unsat:
			// brute force over 2 bytes
			for v := 0; v < 1<<16; v++ {
				bs := []byte{byte(v), byte(v >> 8)}
				if expr.NewEvaluator(expr.Assignment{arr: bs}).EvalBool(e) {
					t.Fatalf("iter %d: unsat verdict but %v satisfied by %v", i, e, bs)
				}
			}
		default:
			t.Fatalf("iter %d: unexpected unknown for small formula %v", i, e)
		}
	}
}

// TestModelsSatisfyConstraints: whenever Check says Sat, the model must
// satisfy every constraint in the set.
func TestModelsSatisfyConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(4)
		cs := make([]*expr.Expr, n)
		for j := range cs {
			cs[j] = expr.RandBoolExpr(c, rng, arr, 3)
		}
		s := newTestSolver() // all fast paths on
		r, m, _ := s.Check(cs, nil)
		if r != Sat {
			continue
		}
		ev := expr.NewEvaluator(m)
		for j, cj := range cs {
			if !ev.EvalBool(cj) {
				t.Fatalf("iter %d: constraint %d (%v) not satisfied by model", i, j, cj)
			}
		}
	}
}

func TestFastPathsAgreeWithSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	for i := 0; i < 60; i++ {
		e := expr.RandBoolExpr(c, rng, arr, 3)
		fast := newTestSolver()
		slow := noFastPaths()
		r1, _, _ := fast.Check([]*expr.Expr{e}, nil)
		r2, _, _ := slow.Check([]*expr.Expr{e}, nil)
		if r1 != r2 {
			t.Fatalf("iter %d: fast=%v slow=%v for %v", i, r1, r2, e)
		}
	}
}

func TestCandidateFastPathAvoidsSAT(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 8)
	s := newTestSolver()
	// magic-byte style constraints should be solved by forced-byte
	// candidates without running the SAT solver
	cs := []*expr.Expr{
		c.EqE(c.ByteAt(arr, 0), c.Const(0x7f, 8)),
		c.EqE(c.ByteAt(arr, 1), c.Const('E', 8)),
		c.EqE(c.ReadLE(arr, 2, 2), c.Const(0x0102, 16)),
	}
	r, m, _ := s.Check(cs, nil)
	if r != Sat {
		t.Fatalf("got %v, want sat", r)
	}
	if s.Stats().SATRuns != 0 {
		t.Errorf("expected candidate fast path, but SAT ran %d times", s.Stats().SATRuns)
	}
	if m.ByteOf(arr, 0) != 0x7f || m.ByteOf(arr, 1) != 'E' || m.ByteOf(arr, 2) != 0x02 || m.ByteOf(arr, 3) != 0x01 {
		t.Errorf("bad model: % x", m[arr])
	}
}

func TestHintUsedAsCandidate(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	s := newTestSolver()
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	cond := c.EqE(c.Mul(x, x), c.Const(49, 32)) // x*x == 49
	hint := expr.Assignment{arr: []byte{7, 0}}
	r, m, _ := s.Check([]*expr.Expr{cond}, hint)
	if r != Sat {
		t.Fatalf("got %v, want sat", r)
	}
	if s.Stats().SATRuns != 0 {
		t.Errorf("hint should have satisfied without SAT, runs=%d", s.Stats().SATRuns)
	}
	if m.ByteOf(arr, 0) != 7 {
		t.Errorf("model byte %d, want 7 (from hint)", m.ByteOf(arr, 0))
	}
}

func TestCacheHit(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	s := newTestSolver()
	e := c.UltE(c.ByteAt(arr, 0), c.Const(10, 8))
	s.Check([]*expr.Expr{e}, nil)
	s.Check([]*expr.Expr{e}, nil)
	if s.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", s.Stats().CacheHits)
	}
}

func TestIntervalUnsatFastPath(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	s := New(Options{DisableCandidates: true, DisableCache: true})
	// zext(byte) can never exceed 255
	e := c.UltE(c.Const(300, 32), c.ZExtE(c.ByteAt(arr, 0), 32))
	r, _, _ := s.Check([]*expr.Expr{e}, nil)
	if r != Unsat {
		t.Fatalf("got %v, want unsat", r)
	}
	if s.Stats().SATRuns != 0 {
		t.Errorf("interval fast path should have decided; SAT ran %d times", s.Stats().SATRuns)
	}
}

func TestIndependenceSlicing(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 8)
	// two independent groups: bytes {0,1} and bytes {4,5}
	cs := []*expr.Expr{
		c.EqE(c.ByteAt(arr, 0), c.ByteAt(arr, 1)),
		c.UltE(c.ByteAt(arr, 4), c.ByteAt(arr, 5)),
	}
	groups := sliceIndependent(cs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	s := New(Options{DisableCandidates: true, DisableCache: true, DisableIntervals: true})
	r, m, _ := s.Check(cs, nil)
	if r != Sat {
		t.Fatalf("got %v, want sat", r)
	}
	ev := expr.NewEvaluator(m)
	for _, e := range cs {
		if !ev.EvalBool(e) {
			t.Errorf("merged model violates %v", e)
		}
	}
}

func TestSlicingTransitivity(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 8)
	// byte1 links c0 and c1 into one group; byte 7 is separate
	cs := []*expr.Expr{
		c.EqE(c.ByteAt(arr, 0), c.ByteAt(arr, 1)),
		c.EqE(c.ByteAt(arr, 1), c.ByteAt(arr, 2)),
		c.EqE(c.ByteAt(arr, 7), c.Const(9, 8)),
	}
	groups := sliceIndependent(cs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
}

func TestMayBeTrue(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 2)
	s := newTestSolver()
	pc := []*expr.Expr{c.UltE(c.ByteAt(arr, 0), c.Const(10, 8))}
	ok, m, _ := s.MayBeTrue(pc, c.EqE(c.ByteAt(arr, 0), c.Const(5, 8)), nil)
	if !ok {
		t.Fatal("byte<10 && byte==5 should be satisfiable")
	}
	if m.ByteOf(arr, 0) != 5 {
		t.Errorf("witness byte = %d, want 5", m.ByteOf(arr, 0))
	}
	ok, _, _ = s.MayBeTrue(pc, c.EqE(c.ByteAt(arr, 0), c.Const(20, 8)), nil)
	if ok {
		t.Error("byte<10 && byte==20 should be unsatisfiable")
	}
}

func TestUnknownOnConflictBudget(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	// factoring-flavoured constraint: x*y == 0xBEEF with x,y 16-bit and
	// both > 1 forces real search
	x := c.ReadLE(arr, 0, 2)
	y := c.ReadLE(arr, 2, 2)
	cs := []*expr.Expr{
		c.EqE(c.Mul(x, y), c.Const(0xBEEF, 16)),
		c.UltE(c.Const(0xff, 16), x),
		c.UltE(c.Const(0xff, 16), y),
	}
	s := New(Options{DisableCache: true, DisableCandidates: true, DisableIntervals: true, DisableSlicing: true, MaxConflicts: 1})
	r, _, err := s.Check(cs, nil)
	if r == Sat {
		// a lucky first assignment is possible but should not happen with
		// deterministic phase-saving defaults; accept only unknown/unsat
		t.Logf("warning: solved with 1 conflict budget")
	}
	if r == Unsat {
		t.Fatalf("constraint is satisfiable (0xBEEF = 3*0x3FA5...), got unsat")
	}
	if r == Unknown {
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("Unknown must carry ErrBudgetExhausted, got %v", err)
		}
		if s.Stats().BudgetExhausted == 0 || s.Stats().Unknowns == 0 {
			t.Errorf("budget-exhausted stats not counted: %+v", s.Stats())
		}
	}
}

// hardFactoringQuery returns a constraint set that needs real CDCL search
// (the 0xBEEF factoring query of TestUnknownOnConflictBudget).
func hardFactoringQuery(c *expr.Context, arr *expr.Array) []*expr.Expr {
	x := c.ReadLE(arr, 0, 2)
	y := c.ReadLE(arr, 2, 2)
	return []*expr.Expr{
		c.EqE(c.Mul(x, y), c.Const(0xBEEF, 16)),
		c.UltE(c.Const(0xff, 16), x),
		c.UltE(c.Const(0xff, 16), y),
	}
}

func TestUnknownNotCached(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	cs := hardFactoringQuery(c, arr)
	s := New(Options{DisableCandidates: true, DisableIntervals: true, DisableSlicing: true, MaxConflicts: 1})
	r, _, err := s.Check(cs, nil)
	if r != Unknown {
		t.Skipf("query decided within 1 conflict (r=%v); cannot exercise retry", r)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// escalate the budget and retry: a cached Unknown would return
	// instantly with the same verdict
	s.SetMaxConflicts(1_000_000)
	r, m, err := s.Check(cs, nil)
	if r != Sat {
		t.Fatalf("escalated retry got %v (err=%v), want sat", r, err)
	}
	ev := expr.NewEvaluator(m)
	for _, cst := range cs {
		if !ev.EvalBool(cst) {
			t.Fatalf("retry model does not satisfy %v", cst)
		}
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 4)
	cs := hardFactoringQuery(c, arr)
	s := New(Options{
		DisableCache: true, DisableCandidates: true, DisableIntervals: true,
		DisableSlicing: true, QueryDeadline: time.Nanosecond,
	})
	r, _, err := s.Check(cs, nil)
	if r != Unknown {
		t.Fatalf("got %v, want unknown under a 1ns deadline", r)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if s.Stats().DeadlineExceeded == 0 {
		t.Errorf("deadline stats not counted: %+v", s.Stats())
	}
}

// alwaysUnknown implements Injector, forcing Unknown on every query.
type alwaysUnknown struct{}

func (alwaysUnknown) SolverUnknown() bool               { return true }
func (alwaysUnknown) SolverSlow() (time.Duration, bool) { return 0, false }

func TestInjectedUnknown(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 1)
	s := New(Options{Injector: alwaysUnknown{}})
	r, _, err := s.Check([]*expr.Expr{c.EqE(c.ByteAt(arr, 0), c.Const(1, 8))}, nil)
	if r != Unknown || !errors.Is(err, ErrInjected) {
		t.Fatalf("got (%v, %v), want (unknown, ErrInjected)", r, err)
	}
	if s.Stats().InjectedUnknowns != 1 {
		t.Errorf("InjectedUnknowns = %d, want 1", s.Stats().InjectedUnknowns)
	}
}

func TestDivisionConventions(t *testing.T) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 1)
	x := c.ByteAt(arr, 0)
	s := noFastPaths()
	// x / 0 == 0xff for all x
	cs := []*expr.Expr{c.NeE(c.UDiv(x, c.Const(0, 8)), c.Const(0xff, 8))}
	if r, _, _ := s.Check(cs, nil); r != Unsat {
		t.Errorf("x/0 != 0xff should be unsat, got %v", r)
	}
	// x % 0 == x for all x
	s2 := noFastPaths()
	cs = []*expr.Expr{c.NeE(c.URem(x, c.Const(0, 8)), x)}
	if r, _, _ := s2.Check(cs, nil); r != Unsat {
		t.Errorf("x%%0 != x should be unsat, got %v", r)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestVarHeap(t *testing.T) {
	var h varHeap
	act := []float64{0.5, 3.0, 1.0, 2.0}
	for v := range act {
		h.push(v, act)
	}
	order := []int{1, 3, 2, 0}
	for _, want := range order {
		if got := h.pop(act); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	if h.pop(act) != -1 {
		t.Error("empty heap should pop -1")
	}
}

func BenchmarkSolverMagicBytes(b *testing.B) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 64)
	cs := []*expr.Expr{
		c.EqE(c.ByteAt(arr, 0), c.Const(0x7f, 8)),
		c.EqE(c.ReadLE(arr, 1, 4), c.Const(0xdeadbeef, 32)),
		c.UltE(c.ReadLE(arr, 8, 2), c.Const(100, 16)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		if r, _, _ := s.Check(cs, nil); r != Sat {
			b.Fatal("unexpected unsat")
		}
	}
}

func BenchmarkSolverBitblastArith(b *testing.B) {
	c := expr.NewContext()
	arr := expr.NewArray("in", 8)
	x := c.ReadLE(arr, 0, 4)
	cs := []*expr.Expr{
		c.EqE(c.Mul(x, c.Const(3, 32)), c.Const(0x99, 32)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := noFastPaths()
		if r, _, _ := s.Check(cs, nil); r != Sat {
			b.Fatal("unexpected unsat")
		}
	}
}
