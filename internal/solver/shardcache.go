package solver

import (
	"sync"
	"sync/atomic"
)

// ShardedCache is a verdict cache shared by the solvers of concurrent
// phase workers. It is lock-striped: entries are distributed over
// numShards shards by constraint-set fingerprint, so workers probing
// different shards never contend, and even same-shard probes share a
// read lock on the hit path. Each shard is padded out to its own cache
// line: the shard array is written under heavy contention from many
// goroutines, and without padding two neighbouring shard locks share a
// 64-byte line, so a store on one bounces the line out from under the
// other ("false sharing") — BenchmarkShardedCacheParallel measures the
// difference under 16 goroutines.
//
// Keys are structural fingerprints (expr.Fingerprint folded over the
// constraint set), so solvers operating in different expr.Contexts hit
// each other's entries. Only Sat/Unsat verdicts are stored — never
// models and never Unknown. Verdicts are semantic facts about the query,
// so a cross-worker hit can change how fast a worker answers but not
// what it answers; models are kept worker-local to keep each worker's
// trajectory independent of scheduling (see DESIGN.md §8).
//
// Every Put is stamped with a process-wide publication sequence number
// (the cache's logical epoch). The work-stealing scheduler publishes
// verdicts asynchronously — there is no round barrier freezing the
// cache — so the seq numbers are what make a run's verdict stream
// reconstructible after the fact: sorting a trace of (key, verdict,
// seq) by seq replays publication order exactly (DESIGN.md §12).
type ShardedCache struct {
	shards [numShards]paddedShard
	seq    atomic.Uint64 // publication epoch; stamped on every Put
	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64
}

const numShards = 64

// entry is one cached verdict plus the publication sequence number it
// was stamped with.
type entry struct {
	r   Result
	seq uint64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[uint64]entry
}

// paddedShard pushes consecutive shards onto distinct cache lines.
// sync.RWMutex is 24 bytes and the map header 8; pad the struct to two
// full 64-byte lines so no two shards' hot words ever cohabit a line.
type paddedShard struct {
	cacheShard
	_ [128 - 32]byte
}

// shardCap bounds one shard's entries; on overflow the shard is reset
// (same crude eviction as the per-solver cache, scaled per shard).
const shardCap = 4096

// NewShardedCache returns an empty cache.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]entry, 64)
	}
	return c
}

func (c *ShardedCache) shard(key uint64) *cacheShard {
	return &c.shards[key%numShards].cacheShard
}

// Get returns the cached verdict for the fingerprint, if present.
func (c *ShardedCache) Get(key uint64) (Result, bool) {
	if c == nil {
		return Unknown, false
	}
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.r, ok
}

// Peek returns the cached verdict without touching the hit/miss
// counters — for cache-maintenance probes (the persistent store's
// write-behind dedup) that should not distort traffic stats.
func (c *ShardedCache) Peek(key uint64) (Result, bool) {
	if c == nil {
		return Unknown, false
	}
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.r, ok
}

// Entry returns the cached verdict together with its publication
// sequence number (counters untouched). seq is 0 only for entries that
// predate the first Put — i.e. never; a present entry always has a
// positive seq.
func (c *ShardedCache) Entry(key uint64) (r Result, seq uint64, ok bool) {
	if c == nil {
		return Unknown, 0, false
	}
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.r, e.seq, ok
}

// Put records a Sat/Unsat verdict, stamped with the next publication
// sequence number. Unknown is ignored: "gave up" is not a fact about
// the query. A key published twice keeps its first verdict's slot but
// is restamped — the verdicts are necessarily equal (both are semantic
// facts about the same query), so only the stamp moves.
func (c *ShardedCache) Put(key uint64, r Result) {
	if c == nil || r == Unknown {
		return
	}
	seq := c.seq.Add(1)
	s := c.shard(key)
	s.mu.Lock()
	if len(s.m) >= shardCap {
		s.m = make(map[uint64]entry, 64)
	}
	s.m[key] = entry{r: r, seq: seq}
	s.mu.Unlock()
	c.stores.Add(1)
}

// Seq returns the current publication epoch: the sequence number of the
// most recent Put (0 if nothing has been published).
func (c *ShardedCache) Seq() uint64 {
	if c == nil {
		return 0
	}
	return c.seq.Load()
}

// ShardStats summarises cross-worker cache traffic.
type ShardStats struct {
	Hits    int64
	Misses  int64
	Stores  int64
	Entries int
}

// Stats returns a snapshot of the counters and the current entry count.
func (c *ShardedCache) Stats() ShardStats {
	if c == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i].cacheShard
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
