package solver

import (
	"sync"
	"sync/atomic"
)

// ShardedCache is a verdict cache shared by the solvers of concurrent
// phase workers. It is lock-striped: entries are distributed over
// numShards shards by constraint-set fingerprint, so workers probing
// different shards never contend, and even same-shard probes share a
// read lock on the hit path.
//
// Keys are structural fingerprints (expr.Fingerprint folded over the
// constraint set), so solvers operating in different expr.Contexts hit
// each other's entries. Only Sat/Unsat verdicts are stored — never
// models and never Unknown. Verdicts are semantic facts about the query,
// so a cross-worker hit can change how fast a worker answers but not
// what it answers; models are kept worker-local to keep each worker's
// trajectory independent of scheduling (see DESIGN.md §8).
type ShardedCache struct {
	shards [numShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64
}

const numShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[uint64]Result
}

// shardCap bounds one shard's entries; on overflow the shard is reset
// (same crude eviction as the per-solver cache, scaled per shard).
const shardCap = 4096

// NewShardedCache returns an empty cache.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]Result, 64)
	}
	return c
}

func (c *ShardedCache) shard(key uint64) *cacheShard {
	return &c.shards[key%numShards]
}

// Get returns the cached verdict for the fingerprint, if present.
func (c *ShardedCache) Get(key uint64) (Result, bool) {
	if c == nil {
		return Unknown, false
	}
	s := c.shard(key)
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// Peek returns the cached verdict without touching the hit/miss
// counters — for cache-maintenance probes (the persistent store's
// write-behind dedup) that should not distort traffic stats.
func (c *ShardedCache) Peek(key uint64) (Result, bool) {
	if c == nil {
		return Unknown, false
	}
	s := c.shard(key)
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	return r, ok
}

// Put records a Sat/Unsat verdict. Unknown is ignored: "gave up" is not
// a fact about the query.
func (c *ShardedCache) Put(key uint64, r Result) {
	if c == nil || r == Unknown {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	if len(s.m) >= shardCap {
		s.m = make(map[uint64]Result, 64)
	}
	s.m[key] = r
	s.mu.Unlock()
	c.stores.Add(1)
}

// ShardStats summarises cross-worker cache traffic.
type ShardStats struct {
	Hits    int64
	Misses  int64
	Stores  int64
	Entries int
}

// Stats returns a snapshot of the counters and the current entry count.
func (c *ShardedCache) Stats() ShardStats {
	if c == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
