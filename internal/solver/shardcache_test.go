package solver

import (
	"sync"
	"testing"
)

func TestShardedCacheSeqStamps(t *testing.T) {
	c := NewShardedCache()
	if c.Seq() != 0 {
		t.Fatalf("fresh cache Seq = %d, want 0", c.Seq())
	}
	c.Put(1, Sat)
	c.Put(2, Unsat)
	c.Put(3, Unknown) // must be ignored, no stamp burned
	if got := c.Seq(); got != 2 {
		t.Fatalf("Seq after 2 real Puts = %d, want 2", got)
	}
	r, seq, ok := c.Entry(1)
	if !ok || r != Sat || seq != 1 {
		t.Fatalf("Entry(1) = %v,%d,%v want Sat,1,true", r, seq, ok)
	}
	// Re-publishing a key keeps the verdict but moves the stamp.
	c.Put(1, Sat)
	if r, seq, ok = c.Entry(1); !ok || r != Sat || seq != 3 {
		t.Fatalf("restamped Entry(1) = %v,%d,%v want Sat,3,true", r, seq, ok)
	}
	if _, _, ok = c.Entry(3); ok {
		t.Fatal("Unknown verdict was cached")
	}
	if st := c.Stats(); st.Stores != 3 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 3 stores over 2 entries", st)
	}
}

func TestShardedCacheConcurrentSeq(t *testing.T) {
	// Concurrent Puts must hand out unique stamps, and every cached
	// entry must carry one of them.
	c := NewShardedCache()
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				if key%2 == 0 {
					c.Put(key, Sat)
				} else {
					c.Put(key, Unsat)
				}
				c.Get(key)
			}
		}()
	}
	wg.Wait()
	if got := c.Seq(); got != workers*per {
		t.Fatalf("Seq = %d after %d Puts", got, workers*per)
	}
	seen := make(map[uint64]bool, workers*per)
	for key := uint64(0); key < workers*per; key++ {
		r, seq, ok := c.Entry(key)
		if !ok {
			t.Fatalf("key %d missing", key)
		}
		want := Sat
		if key%2 == 1 {
			want = Unsat
		}
		if r != want {
			t.Fatalf("key %d verdict %v, want %v", key, r, want)
		}
		if seq == 0 || seq > workers*per || seen[seq] {
			t.Fatalf("key %d has invalid or duplicate seq %d", key, seq)
		}
		seen[seq] = true
	}
}

// BenchmarkShardedCacheParallel hammers the cache from 16 goroutines
// with the fast scheduler's mix (reads dominate, occasional publishes)
// across disjoint hot key ranges — the workload the cache-line padding
// on paddedShard exists for. Compare with the padding removed to see
// the false-sharing cost.
func BenchmarkShardedCacheParallel(b *testing.B) {
	c := NewShardedCache()
	for k := uint64(0); k < 1024; k++ {
		c.Put(k, Sat)
	}
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		var k uint64
		for pb.Next() {
			k++
			key := (k * 0x9e3779b97f4a7c15) >> 54 // 1024 hot keys
			if k%16 == 0 {
				c.Put(key, Sat) // restamp: same verdict, new seq
			} else {
				c.Get(key)
			}
		}
	})
}
