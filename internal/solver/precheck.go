package solver

import (
	"time"

	"pbse/internal/expr"
)

// precheckDeadline is the wall-clock cutoff for one PreCheck/PreCheckPC
// sweep, armed from Options.QueryDeadline (zero time when unbounded).
// The sweeps were added after the per-query deadline and originally ran
// outside it; on pathological fact sets they could stall a turn just
// like a runaway SAT search, so they now give up with Unknown — counted
// in Stats.PrecheckDeadlines — and let the regular pipeline (which has
// its own deadline) take over.
func (s *Solver) precheckDeadline() time.Time {
	if s.opts.QueryDeadline <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.opts.QueryDeadline)
}

func expiredDeadline(d time.Time) bool { return !d.IsZero() && !time.Now().Before(d) }

// RangeFact asserts that expression E always evaluates to a value in
// [Lo, Hi] on every execution reaching the current program point — a
// static invariant imported from the abstract-interpretation pass
// (analysis.AbsFacts mapped onto the state's register expressions).
type RangeFact struct {
	E      *expr.Expr
	Lo, Hi uint64
}

// PreCheck answers a branch-feasibility query from interval reasoning
// alone — no slicing, no caches, no SAT core, no budgets. facts seed
// the propagation with the externally proven ranges.
//
// Verdict semantics differ subtly from Feasible's:
//   - Unsat means cond evaluates to 0 under EVERY assignment allowed by
//     the facts. Since the facts are invariants implied by the path
//     constraints, pc AND cond is unsatisfiable — unconditionally sound.
//   - Sat means cond evaluates to 1 under every such assignment; it
//     proves pc AND cond satisfiable only when pc itself is satisfiable,
//     which holds for every state whose forks were solver-validated (the
//     caller is responsible for that precondition).
//
// A decided verdict is counted in Stats.StaticPrunes; the query never
// reaches Stats.Queries, keeping the fast path free.
func (s *Solver) PreCheck(cond *expr.Expr, facts []RangeFact) Result {
	switch {
	case cond.IsTrue():
		return Sat
	case cond.IsFalse():
		return Unsat
	}
	deadline := s.precheckDeadline()
	memo := make(map[*expr.Expr]interval, 32)
	for _, f := range facts {
		if expiredDeadline(deadline) {
			s.stats.PrecheckDeadlines++
			return Unknown
		}
		if f.E == nil || f.Lo > f.Hi {
			continue
		}
		w := f.E.Width()
		if f.Hi > maskW(w) {
			continue // malformed for this width; never trust it
		}
		cur, ok := memo[f.E]
		if !ok {
			cur = fullIval(w)
		}
		cur, ok = meet(cur, interval{lo: f.Lo, hi: f.Hi}, w)
		if !ok {
			// contradictory facts would make every verdict vacuous;
			// treat as no information rather than pruning on bad input
			return Unknown
		}
		memo[f.E] = cur
	}
	if expiredDeadline(deadline) {
		s.stats.PrecheckDeadlines++
		return Unknown
	}
	switch iv := ivalOf(cond, memo); {
	case iv.lo == 0 && iv.hi == 0:
		s.stats.StaticPrunes++
		return Unsat
	case iv.lo == 1 && iv.hi == 1:
		s.stats.StaticPrunes++
		return Sat
	}
	return Unknown
}

// PreCheckPC is PreCheck strengthened with the path constraints: when
// cond alone is undecided, the constraints sharing symbolic bytes with
// cond are interval-checked with the facts seeding the propagation. This
// refutes conjunctions the plain pre-dispatch interval pass cannot — the
// in-solver interval stage sees the same slice but not the invariants,
// which often carry exactly the missing range (e.g. a loop bound proven
// by widening/narrowing that never appears as an explicit constraint).
//
// Only Unsat can be concluded from the slice: facts are implied by the
// FULL pc, so slice AND cond AND facts unsat forces pc AND cond unsat,
// while a satisfiable slice says nothing about the rest of the path.
// Nothing is cached — the verdict depends on facts private to the
// caller's program point, and keying the shared caches on the constraint
// set alone would leak it into contexts with different invariants.
func (s *Solver) PreCheckPC(pc []*expr.Expr, cond *expr.Expr, facts []RangeFact) Result {
	if r := s.PreCheck(cond, facts); r != Unknown {
		return r
	}
	if len(facts) == 0 || len(pc) == 0 {
		return Unknown
	}
	return s.preCheckSliced(s.relevantSlice(pc, cond), cond, facts)
}

// PreCheckSliced is PreCheckPC with the slicing already done by the
// caller — the batched dispatch path computes ONE union slice per
// terminator (SliceMulti) and prechecks every sibling against it instead
// of re-slicing the path per sibling. slice may be any subset of the
// path constraints that contains the constraints relevant to cond (a
// superset union slice is fine): the only verdict drawn from it is
// Unsat, and slice AND cond AND facts unsat forces pc AND cond unsat for
// any slice ⊆ pc. Extra sibling-only constraints can only seed more
// bounds, never unsound ones — they too are implied by the path.
func (s *Solver) PreCheckSliced(slice []*expr.Expr, cond *expr.Expr, facts []RangeFact) Result {
	if r := s.PreCheck(cond, facts); r != Unknown {
		return r
	}
	if len(facts) == 0 {
		return Unknown
	}
	return s.preCheckSliced(slice, cond, facts)
}

// preCheckSliced runs the fact-seeded interval propagation over an
// already computed constraint slice (see PreCheckPC for the soundness
// argument; only Unsat may be concluded).
func (s *Solver) preCheckSliced(slice []*expr.Expr, cond *expr.Expr, facts []RangeFact) Result {
	if len(slice) == 0 {
		return Unknown
	}
	deadline := s.precheckDeadline()
	cs := make([]*expr.Expr, 0, len(slice)+1)
	cs = append(cs, slice...)
	cs = append(cs, cond)
	memo := make(map[*expr.Expr]interval, 64)
	order := make([]*expr.Expr, 0, 16)
	for _, f := range facts {
		if f.E == nil || f.Lo > f.Hi || f.Hi > maskW(f.E.Width()) {
			continue
		}
		if _, ok := memo[f.E]; !ok {
			order = append(order, f.E)
		}
		memo[f.E] = interval{lo: f.Lo, hi: f.Hi}
	}
	// seedBoundsX meets the harvested pc bounds (including X == C pins)
	// into the fact-seeded memo; a contradiction means slice AND cond AND
	// facts is unsat outright
	if contradictory := seedBoundsX(cs, memo, &order, true); contradictory {
		s.stats.StaticPrunes++
		return Unsat
	}
	// Propagation sweeps: a harvested bound lands on a compound term
	// (say add(2, x) <= 576) and shadows what the term's operands imply
	// (x >= 575 forces add(2, x) >= 577). Recomputing each seeded term
	// from its operands and meeting the two ranges surfaces exactly those
	// contradictions. Two sweeps let a range seeded late in the pass reach
	// terms seeded earlier; the fixed order keeps every worker's verdict
	// identical. Stale entries after a later tightening are wider, never
	// wrong, so each meet stays sound.
	for sweep := 0; sweep < 2; sweep++ {
		for _, term := range order {
			if expiredDeadline(deadline) {
				s.stats.PrecheckDeadlines++
				return Unknown
			}
			cur := memo[term]
			delete(memo, term)
			fresh := ivalOf(term, memo)
			met, ok := meet(cur, fresh, term.Width())
			if !ok {
				s.stats.StaticPrunes++
				return Unsat
			}
			memo[term] = met
		}
	}
	for _, c := range cs {
		if expiredDeadline(deadline) {
			s.stats.PrecheckDeadlines++
			return Unknown
		}
		if iv := ivalOf(c, memo); iv.lo == 0 && iv.hi == 0 {
			s.stats.StaticPrunes++
			return Unsat
		}
	}
	return Unknown
}

// NoteStaticPrune records a feasibility decision made entirely outside
// the solver (the executor consulting the static edge-feasibility map),
// so Stats.StaticPrunes reflects every statically avoided query.
func (s *Solver) NoteStaticPrune() { s.stats.StaticPrunes++ }
