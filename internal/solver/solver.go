package solver

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"pbse/internal/expr"
)

// Result is the outcome of a satisfiability check.
type Result int

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Stats counts solver activity; useful in benchmarks and ablations.
type Stats struct {
	Queries      int64
	CacheHits    int64
	SharedHits   int64 // verdicts answered by the cross-worker sharded cache
	CandidateSat int64 // decided by trying a candidate model
	IntervalFast int64 // decided by interval reasoning
	StaticPrunes int64 // decided before dispatch by PreCheck static facts
	SATRuns      int64 // fell through to bit-blasting + CDCL
	Conflicts    int64

	// Batched sibling dispatch (FeasibleBatch): shared SAT instances
	// built, and sibling queries decided on one (each blasts the common
	// path-constraint slice once instead of per query).
	Batches        int64
	BatchedQueries int64

	// Resource-governance counters: Unknown verdicts by cause.
	Unknowns          int64 // total Unknown verdicts returned
	BudgetExhausted   int64 // Unknowns from the conflict budget
	DeadlineExceeded  int64 // Unknowns from the wall-clock deadline
	InjectedUnknowns  int64 // Unknowns forced by fault injection
	InternalRecovered int64 // internal invariant violations degraded to Unknown

	// PrecheckDeadlines counts PreCheck/PreCheckPC propagation sweeps
	// abandoned by the query deadline (the sweep answers Unknown and the
	// query proceeds to the regular pipeline, which has its own deadline).
	PrecheckDeadlines int64
}

// Accum adds o's counters into s (merging per-worker solver stats).
func (s *Stats) Accum(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.SharedHits += o.SharedHits
	s.CandidateSat += o.CandidateSat
	s.IntervalFast += o.IntervalFast
	s.StaticPrunes += o.StaticPrunes
	s.SATRuns += o.SATRuns
	s.Conflicts += o.Conflicts
	s.Batches += o.Batches
	s.BatchedQueries += o.BatchedQueries
	s.Unknowns += o.Unknowns
	s.BudgetExhausted += o.BudgetExhausted
	s.DeadlineExceeded += o.DeadlineExceeded
	s.InjectedUnknowns += o.InjectedUnknowns
	s.InternalRecovered += o.InternalRecovered
	s.PrecheckDeadlines += o.PrecheckDeadlines
}

// Injector is the fault-injection surface the solver consults (see
// package faultinject, which implements it). A nil injector injects
// nothing.
type Injector interface {
	// SolverUnknown reports whether this query should give up with
	// Unknown.
	SolverUnknown() bool
	// SolverSlow returns a wall-clock stall for this query and whether
	// the fault fired.
	SolverSlow() (time.Duration, bool)
}

// Options configure the solver; the zero value enables every fast path.
type Options struct {
	DisableCache      bool
	DisableCandidates bool
	DisableIntervals  bool
	DisableSlicing    bool
	// Incremental reuses one persistent SAT instance with assumption
	// literals across queries. Off by default: per-query instances keep
	// model completion proportional to the query, which measures faster
	// on parser workloads.
	Incremental  bool
	MaxConflicts int64 // 0 means a generous default
	// QueryDeadline bounds the wall clock of one Check call's SAT search
	// (0 means none). An expired deadline yields Unknown with
	// ErrDeadlineExceeded; cheap fast paths (candidates, intervals) are
	// never cut short.
	QueryDeadline time.Duration
	// Injector, when non-nil, is consulted per query for injected faults
	// (see package faultinject).
	Injector Injector
	// Shared, when non-nil, is a cross-worker verdict cache consulted
	// after the local cache. It stores Sat/Unsat only (no models), keyed
	// by structural fingerprint, so solvers in different expr.Contexts
	// share results. ShardedCache is the concrete implementation; a
	// scheduler may interpose a view that defers Put until a
	// synchronization point (see pbse's round barrier).
	Shared VerdictCache
}

// VerdictCache is the cross-worker verdict cache surface the solver
// consults after its local cache. Implementations must tolerate
// concurrent Get/Put from many solvers.
type VerdictCache interface {
	// Get returns the cached verdict for the fingerprint, if present.
	Get(key uint64) (Result, bool)
	// Put records a Sat/Unsat verdict (implementations ignore Unknown).
	Put(key uint64, r Result)
}

// Solver decides constraint sets built in one expr.Context. It is not safe
// for concurrent use.
type Solver struct {
	opts  Options
	stats Stats

	cache map[string]cacheEntry
	// recent satisfying assignments, tried as candidates for new queries
	recent []candidate
	// standing holds persistent candidate assignments (e.g. the pbSE
	// seed input), tried after the per-query hint
	standing []candidate
	// zeroFF caches the all-zero and all-0xff candidates per array set
	// signature (cheap: there is usually exactly one input array)
	zero, ff *candidate
	// readsMemo caches the symbolic bytes referenced by each expression
	readsMemo map[*expr.Expr][]expr.SymByte
	// fpMemo caches structural fingerprints (shared-cache keys)
	fpMemo map[*expr.Expr]uint64
	// maskScratch/pickScratch are reused fixpoint buffers for the union
	// slicer (one live call per solver; solvers are not concurrent).
	maskScratch []*expr.ReadMask
	pickScratch []bool

	// persistent incremental SAT instance: every distinct constraint is
	// bit-blasted once; queries are solved under assumptions (the
	// constraints' output literals)
	psat   *sat
	pblast *blaster

	// queryDeadline is the wall-clock deadline of the Check call in
	// progress (zero when none); set once per query so every sliced
	// sub-solve shares it.
	queryDeadline time.Time
}

// candidate pairs an assignment with a persistent memoising evaluator:
// expressions are immutable and candidate assignments never change, so
// evaluation results stay valid across queries.
type candidate struct {
	asn expr.Assignment
	ev  *expr.Evaluator
}

func newCandidate(asn expr.Assignment) candidate {
	return candidate{asn: asn, ev: expr.NewEvaluator(asn)}
}

type cacheEntry struct {
	result Result
	model  expr.Assignment
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 3000
	}
	return &Solver{
		opts:      opts,
		cache:     make(map[string]cacheEntry, 256),
		readsMemo: make(map[*expr.Expr][]expr.SymByte, 1024),
		fpMemo:    make(map[*expr.Expr]uint64, 1024),
	}
}

// AddCandidate registers a persistent candidate assignment tried on every
// query (e.g. the concolic seed, which satisfies every prefix of the seed
// path's constraints). The assignment must not be mutated afterwards.
func (s *Solver) AddCandidate(asn expr.Assignment) {
	if asn != nil {
		s.standing = append(s.standing, newCandidate(asn))
	}
}

// readsOf returns (and caches) the symbolic bytes referenced by e.
func (s *Solver) readsOf(e *expr.Expr) []expr.SymByte {
	if r, ok := s.readsMemo[e]; ok {
		return r
	}
	r := expr.Reads(e)
	s.readsMemo[e] = r
	return r
}

// Feasible decides whether pc ∧ cond is satisfiable. It exploits the
// executor's invariant that pc alone is satisfiable: only the constraints
// sharing symbolic bytes (transitively) with cond need to be rechecked,
// which keeps branch-feasibility queries small on deep paths. On Unknown
// the error carries the cause (ErrBudgetExhausted, ErrDeadlineExceeded,
// ErrInjected, or an *InternalError).
func (s *Solver) Feasible(pc []*expr.Expr, cond *expr.Expr, hint expr.Assignment) (Result, error) {
	if cond.IsTrue() {
		return Sat, nil
	}
	if cond.IsFalse() {
		return Unsat, nil
	}
	slice := s.relevantSlice(pc, cond)
	slice = append(slice, cond)
	r, _, err := s.check(slice, hint, true)
	return r, err
}

// relevantSlice returns the constraints of pc transitively connected to
// cond through shared symbolic bytes.
func (s *Solver) relevantSlice(pc []*expr.Expr, cond *expr.Expr) []*expr.Expr {
	want := make(map[expr.SymByte]bool)
	for _, sb := range s.readsOf(cond) {
		want[sb] = true
	}
	if len(want) == 0 {
		return nil
	}
	picked := make([]bool, len(pc))
	out := make([]*expr.Expr, 0, len(pc)/4)
	for changed := true; changed; {
		changed = false
		for i, c := range pc {
			if picked[i] {
				continue
			}
			reads := s.readsOf(c)
			hit := false
			for _, sb := range reads {
				if want[sb] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			picked[i] = true
			out = append(out, c)
			for _, sb := range reads {
				if !want[sb] {
					want[sb] = true
					changed = true
				}
			}
		}
	}
	return out
}

// ConcretizeModel returns an assignment consistent with pc that gives e a
// concrete value. Only the constraints transitively sharing symbolic
// bytes with e are solved — sound because pc is satisfiable (the caller's
// state is live) and the remaining groups are independent of e's bytes.
func (s *Solver) ConcretizeModel(pc []*expr.Expr, e *expr.Expr) (expr.Assignment, bool) {
	slice := s.relevantSlice(pc, e)
	r, m, _ := s.Check(slice, nil)
	if r != Sat {
		return nil, false
	}
	return m, true
}

// Stats returns a copy of the accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// MaxConflicts returns the current per-query conflict budget.
func (s *Solver) MaxConflicts() int64 { return s.opts.MaxConflicts }

// SetMaxConflicts replaces the per-query conflict budget and returns the
// previous one. Callers use it to escalate the budget when retrying an
// Unknown query, restoring the old value afterwards.
func (s *Solver) SetMaxConflicts(n int64) int64 {
	prev := s.opts.MaxConflicts
	if n > 0 {
		s.opts.MaxConflicts = n
	}
	return prev
}

// Check decides whether the conjunction of constraints is satisfiable. On
// Sat the returned assignment satisfies every constraint. hint, when
// non-nil, is tried as the first candidate model (the concolic shadow
// state uses this). On Unknown the error reports why the solver gave up:
// ErrBudgetExhausted, ErrDeadlineExceeded, ErrInjected, or an
// *InternalError (a recovered invariant violation). Unknown results are
// never cached, so a retry with a bigger budget gets a fresh search.
func (s *Solver) Check(constraints []*expr.Expr, hint expr.Assignment) (Result, expr.Assignment, error) {
	return s.check(constraints, hint, false)
}

// sharedKey folds the constraints' structural fingerprints into one
// order-independent set key for the cross-worker cache.
func (s *Solver) sharedKey(constraints []*expr.Expr) uint64 {
	fps := make([]uint64, len(constraints))
	for i, c := range constraints {
		fps[i] = expr.Fingerprint(c, s.fpMemo)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	h := uint64(14695981039346656037)
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			h ^= fp & 0xff
			h *= 1099511628211
			fp >>= 8
		}
	}
	return h
}

// check implements Check. verdictOnly marks queries whose caller discards
// the model (branch-feasibility checks): those may be answered by a Sat
// verdict from the shared cross-worker cache. Model-bearing queries only
// take Unsat from the shared cache — models are never shared, keeping
// each worker's model stream deterministic regardless of scheduling.
func (s *Solver) check(constraints []*expr.Expr, hint expr.Assignment, verdictOnly bool) (Result, expr.Assignment, error) {
	s.stats.Queries++

	if inj := s.opts.Injector; inj != nil {
		if inj.SolverUnknown() {
			s.stats.Unknowns++
			s.stats.InjectedUnknowns++
			return Unknown, nil, ErrInjected
		}
		if d, ok := inj.SolverSlow(); ok {
			time.Sleep(d) // an armed QueryDeadline trips in the SAT loop
		}
	}

	// trivial scan
	live := make([]*expr.Expr, 0, len(constraints))
	for _, c := range constraints {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			return Unsat, nil, nil
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return Sat, expr.Assignment{}, nil
	}
	live = reduceBounds(live)

	key := ""
	if !s.opts.DisableCache {
		key = cacheKey(live)
		if e, ok := s.cache[key]; ok {
			s.stats.CacheHits++
			return e.result, e.model, nil
		}
	}

	skey := uint64(0)
	if s.opts.Shared != nil {
		skey = s.sharedKey(live)
		if r, ok := s.opts.Shared.Get(skey); ok && (r == Unsat || verdictOnly) {
			s.stats.SharedHits++
			if r == Unsat {
				// a Sat verdict without a model must not enter the local
				// cache: later model-bearing queries would hit it
				s.remember(key, Unsat, nil)
			}
			return r, nil, nil
		}
	}

	if !s.opts.DisableCandidates {
		if m, ok := s.tryCandidates(live, hint); ok {
			s.stats.CandidateSat++
			s.remember(key, Sat, m)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(skey, Sat)
			}
			return Sat, m, nil
		}
	}

	if !s.opts.DisableIntervals {
		if r := intervalCheck(live); r == Unsat {
			s.stats.IntervalFast++
			s.remember(key, Unsat, nil)
			if s.opts.Shared != nil {
				s.opts.Shared.Put(skey, Unsat)
			}
			return Unsat, nil, nil
		}
	}

	if s.opts.QueryDeadline > 0 {
		s.queryDeadline = time.Now().Add(s.opts.QueryDeadline)
	} else {
		s.queryDeadline = time.Time{}
	}
	var res Result
	var model expr.Assignment
	var err error
	if s.opts.DisableSlicing {
		res, model, err = s.satCheck(live)
	} else {
		res, model, err = s.checkSliced(live)
	}
	s.remember(key, res, model)
	if s.opts.Shared != nil {
		s.opts.Shared.Put(skey, res)
	}
	if res == Sat {
		s.keepRecent(model)
	}
	if res == Unknown {
		s.stats.Unknowns++
	}
	return res, model, err
}

// MayBeTrue reports whether cond can hold under the path constraints; on
// true the model is a witness. A non-nil error means the verdict was
// Unknown (reported as "no") and carries the cause.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr, hint expr.Assignment) (bool, expr.Assignment, error) {
	cs := make([]*expr.Expr, 0, len(pc)+1)
	cs = append(cs, pc...)
	cs = append(cs, cond)
	r, m, err := s.Check(cs, hint)
	return r == Sat, m, err
}

// reduceBounds collapses redundant unsigned range constraints over the
// same term: loop paths accumulate chains like n>0, n>1, …, n>k of which
// only the strongest matters. The reduction is an equivalence (the kept
// bound implies the dropped ones), so models stay valid. Recognised
// shapes, as produced by the expression canonicaliser:
//
//	(ult C X) / (ule C X)         lower bounds
//	(ult X C) / (ule X C)         upper bounds
//	(xor 1 (ult C X)) etc.        negations, flipped accordingly
func reduceBounds(live []*expr.Expr) []*expr.Expr {
	type bound struct {
		lo, hi       uint64 // inclusive bounds
		hasLo, hasHi bool
		loAt, hiAt   int // index of the strongest constraint
	}
	bounds := make(map[*expr.Expr]*bound)
	drop := make([]bool, len(live))

	widthMask := func(x *expr.Expr) uint64 {
		if x.Width() >= 64 {
			return ^uint64(0)
		}
		return (1 << x.Width()) - 1
	}

	// classify returns (term, lo-or-hi value, isLower, ok)
	classify := func(c *expr.Expr) (*expr.Expr, uint64, bool, bool) {
		neg := false
		if c.Kind() == expr.Xor && c.Kid(0).IsConst() && c.Kid(0).Value() == 1 && c.Kid(1).IsBool() {
			neg = true
			c = c.Kid(1)
		}
		if c.Kind() != expr.Ult && c.Kind() != expr.Ule {
			return nil, 0, false, false
		}
		a, b := c.Kid(0), c.Kid(1)
		strict := c.Kind() == expr.Ult
		switch {
		case a.IsConst() && !b.IsConst():
			// C < X or C <= X: lower bound (or, negated, upper bound)
			v := a.Value()
			if !neg {
				if strict {
					if v == widthMask(b) {
						return nil, 0, false, false // C < X unsat; leave to solver
					}
					v++
				}
				return b, v, true, true
			}
			// !(C < X) = X <= C ; !(C <= X) = X < C = X <= C-1
			if !strict {
				if v == 0 {
					return nil, 0, false, false
				}
				v--
			}
			return b, v, false, true
		case !a.IsConst() && b.IsConst():
			v := b.Value()
			if !neg {
				if strict {
					if v == 0 {
						return nil, 0, false, false
					}
					v--
				}
				return a, v, false, true
			}
			if !strict {
				if v == widthMask(a) {
					return nil, 0, false, false
				}
				v++
			}
			return a, v, true, true
		}
		return nil, 0, false, false
	}

	matched := 0
	for i, c := range live {
		term, v, isLower, ok := classify(c)
		if !ok {
			continue
		}
		matched++
		b := bounds[term]
		if b == nil {
			b = &bound{}
			bounds[term] = b
		}
		if isLower {
			if !b.hasLo || v > b.lo {
				if b.hasLo {
					drop[b.loAt] = true
				}
				b.lo, b.loAt, b.hasLo = v, i, true
			} else {
				drop[i] = true
			}
		} else {
			if !b.hasHi || v < b.hi {
				if b.hasHi {
					drop[b.hiAt] = true
				}
				b.hi, b.hiAt, b.hasHi = v, i, true
			} else {
				drop[i] = true
			}
		}
	}
	if matched <= 1 {
		return live
	}
	out := live[:0]
	for i, c := range live {
		if !drop[i] {
			out = append(out, c)
		}
	}
	return out
}

// checkSliced partitions constraints into independent groups (no shared
// symbolic bytes) and solves each group separately, merging the models.
func (s *Solver) checkSliced(constraints []*expr.Expr) (Result, expr.Assignment, error) {
	groups := sliceIndependent(constraints)
	if len(groups) <= 1 {
		return s.satCheck(constraints)
	}
	// Merge into a fresh assignment, copying from each group's model only
	// the bytes that group constrains: cached models can cover the whole
	// input (candidate-sourced entries), and copying foreign bytes would
	// clobber other groups' solutions. Models may also be shared via the
	// cache and must never be mutated.
	merged := expr.Assignment{}
	for _, g := range groups {
		r, m, err := s.cachedSatCheck(g)
		if r != Sat {
			return r, nil, err
		}
		for _, c := range g {
			for _, sb := range s.readsOf(c) {
				dst, ok := merged[sb.Arr]
				if !ok {
					dst = make([]byte, sb.Arr.Size)
					merged[sb.Arr] = dst
				}
				dst[sb.Idx] = m.ByteOf(sb.Arr, sb.Idx)
			}
		}
	}
	return Sat, merged, nil
}

// cachedSatCheck consults the query cache per independent group before
// bit-blasting — groups repeat heavily across queries on one path.
func (s *Solver) cachedSatCheck(constraints []*expr.Expr) (Result, expr.Assignment, error) {
	key := ""
	if !s.opts.DisableCache {
		key = cacheKey(constraints)
		if e, ok := s.cache[key]; ok {
			s.stats.CacheHits++
			return e.result, e.model, nil
		}
	}
	skey := uint64(0)
	if s.opts.Shared != nil {
		// per-group Unsat short-circuit: an Unsat group decides the whole
		// sliced query, and needs no model
		skey = s.sharedKey(constraints)
		if r, ok := s.opts.Shared.Get(skey); ok && r == Unsat {
			s.stats.SharedHits++
			s.remember(key, Unsat, nil)
			return Unsat, nil, nil
		}
	}
	r, m, err := s.satCheck(constraints)
	s.remember(key, r, m)
	if s.opts.Shared != nil {
		s.opts.Shared.Put(skey, r)
	}
	return r, m, err
}

// undefError maps a SAT instance's lUndef reason to the public cause.
func (s *Solver) undefError(st *sat) error {
	if st.undefReason == undefDeadline {
		s.stats.DeadlineExceeded++
		return ErrDeadlineExceeded
	}
	s.stats.BudgetExhausted++
	return ErrBudgetExhausted
}

// recoverInternal converts an *InternalError panic raised below the
// query boundary into an Unknown verdict (see the package panic policy).
func (s *Solver) recoverInternal(res *Result, model *expr.Assignment, err *error) {
	p := recover()
	if p == nil {
		return
	}
	ie, ok := p.(*InternalError)
	if !ok {
		panic(p)
	}
	s.stats.InternalRecovered++
	*res, *model, *err = Unknown, nil, ie
}

// satCheck decides a constraint set by bit-blasting + CDCL: incrementally
// against the persistent instance by default, or with a fresh instance
// when DisableIncremental is set.
func (s *Solver) satCheck(constraints []*expr.Expr) (res Result, model expr.Assignment, err error) {
	defer s.recoverInternal(&res, &model, &err)
	s.stats.SATRuns++
	// Large constraint sets use the persistent incremental instance:
	// their circuits are built once and reused across queries, which
	// matters on deep paths where long accumulator chains (checksums)
	// make every constraint expensive to blast. Small sets use a fresh
	// instance, whose model completion touches only the query's own
	// variables.
	if s.opts.Incremental || len(constraints) >= 24 {
		return s.satCheckIncremental(constraints)
	}
	st := newSAT()
	st.deadline = s.queryDeadline
	bl := newBlaster(st)
	for _, c := range constraints {
		bl.assertTrue(c)
	}
	switch st.solveWith(nil, s.opts.MaxConflicts) {
	case lFalse:
		s.stats.Conflicts += st.conflicts
		return Unsat, nil, nil
	case lUndef:
		s.stats.Conflicts += st.conflicts
		return Unknown, nil, s.undefError(st)
	}
	s.stats.Conflicts += st.conflicts
	return Sat, extractModel(bl), nil
}

// satCheckIncremental solves against the shared instance: each distinct
// constraint is blasted once (Tseitin gates are biconditional, so an
// unasserted constraint leaves the formula unconstrained), and the query
// assumes the constraints' output literals.
func (s *Solver) satCheckIncremental(constraints []*expr.Expr) (res Result, model expr.Assignment, err error) {
	defer s.recoverInternal(&res, &model, &err)
	if s.psat == nil {
		s.psat = newSAT()
		s.pblast = newBlaster(s.psat)
	}
	s.psat.deadline = s.queryDeadline
	assumps := make([]Lit, len(constraints))
	for i, c := range constraints {
		assumps[i] = s.pblast.blast(c)[0]
	}
	before := s.psat.conflicts
	verdict := s.psat.solveWith(assumps, s.opts.MaxConflicts)
	s.stats.Conflicts += s.psat.conflicts - before
	switch verdict {
	case lFalse:
		if !s.psat.ok {
			// the shared instance became permanently unsat, which cannot
			// happen for pure gate clauses; rebuild defensively
			s.psat = nil
			s.pblast = nil
		}
		return Unsat, nil, nil
	case lUndef:
		return Unknown, nil, s.undefError(s.psat)
	}
	asn := extractModel(s.pblast)
	s.psat.reset()
	return Sat, asn, nil
}

// extractModel reads the byte assignment out of a blaster whose SAT
// instance is in a satisfying state.
func extractModel(bl *blaster) expr.Assignment {
	bytes := bl.model()
	asn := expr.Assignment{}
	for sb, v := range bytes {
		bs, ok := asn[sb.Arr]
		if !ok {
			bs = make([]byte, sb.Arr.Size)
			asn[sb.Arr] = bs
		}
		bs[sb.Idx] = v
	}
	return asn
}

// tryCandidates evaluates all constraints under cheap candidate
// assignments: the caller hint, standing candidates (seed inputs), recent
// models, all-zero, all-0xff, and forced-byte propagation. Standing,
// recent and zero/ff candidates keep persistent memoising evaluators, so
// repeated constraints across queries cost one map lookup.
func (s *Solver) tryCandidates(constraints []*expr.Expr, hint expr.Assignment) (expr.Assignment, bool) {
	sat := func(ev *expr.Evaluator) bool {
		for _, c := range constraints {
			if !ev.EvalBool(c) {
				return false
			}
		}
		return true
	}
	for i := range s.standing {
		if sat(s.standing[i].ev) {
			return s.standing[i].asn.Clone(), true
		}
	}
	for i := range s.recent {
		if sat(s.recent[i].ev) {
			return s.recent[i].asn.Clone(), true
		}
	}
	arrays := arraysOf(constraints)
	s.ensureZeroFF(arrays)
	if s.zero != nil && sat(s.zero.ev) {
		return s.zero.asn.Clone(), true
	}
	if s.ff != nil && sat(s.ff.ev) {
		return s.ff.asn.Clone(), true
	}
	if hint != nil {
		ev := expr.NewEvaluator(hint)
		if sat(ev) {
			return hint.Clone(), true
		}
	}
	if forced := forcedBytes(constraints, arrays); forced != nil {
		ev := expr.NewEvaluator(forced)
		if sat(ev) {
			return forced, true
		}
	}
	return nil, false
}

// ensureZeroFF lazily builds the all-zero / all-0xff candidates covering
// the arrays seen so far (rebuilt when a new array appears).
func (s *Solver) ensureZeroFF(arrays []*expr.Array) {
	covered := s.zero != nil
	if covered {
		for _, a := range arrays {
			if _, ok := s.zero.asn[a]; !ok {
				covered = false
				break
			}
		}
	}
	if covered {
		return
	}
	zero := expr.Assignment{}
	ff := expr.Assignment{}
	if s.zero != nil {
		for a, bs := range s.zero.asn {
			zero[a] = bs
			ff[a] = s.ff.asn[a]
		}
	}
	for _, a := range arrays {
		if _, ok := zero[a]; ok {
			continue
		}
		zero[a] = make([]byte, a.Size)
		f := make([]byte, a.Size)
		for i := range f {
			f[i] = 0xff
		}
		ff[a] = f
	}
	z := newCandidate(zero)
	x := newCandidate(ff)
	s.zero, s.ff = &z, &x
}

// forcedBytes derives byte values implied by simple equality constraints
// (magic-byte checks such as in[0] == 0x7f) and returns an assignment with
// those bytes set. Starting from forced bytes makes parser-style queries
// succeed on the first candidate.
func forcedBytes(constraints []*expr.Expr, arrays []*expr.Array) expr.Assignment {
	asn := expr.Assignment{}
	for _, a := range arrays {
		asn[a] = make([]byte, a.Size)
	}
	found := false
	for _, c := range constraints {
		if c.Kind() != expr.Eq {
			continue
		}
		k, v := c.Kid(0), c.Kid(1)
		if !k.IsConst() {
			k, v = v, k
		}
		if !k.IsConst() {
			continue
		}
		if assignForced(asn, v, k.Value()) {
			found = true
		}
	}
	if !found {
		return nil
	}
	return asn
}

// assignForced writes the constant val into the bytes read by e when e is
// a direct (possibly extended or concatenated) read of input bytes.
func assignForced(asn expr.Assignment, e *expr.Expr, val uint64) bool {
	switch e.Kind() {
	case expr.Read:
		asn[e.Array()][e.ReadIndex()] = byte(val)
		return true
	case expr.ZExt, expr.SExt, expr.Trunc:
		return assignForced(asn, e.Kid(0), val)
	case expr.Concat:
		hi, lo := e.Kid(0), e.Kid(1)
		okLo := assignForced(asn, lo, val&((1<<lo.Width())-1))
		okHi := assignForced(asn, hi, val>>lo.Width())
		return okLo || okHi
	default:
		return false
	}
}

func (s *Solver) remember(key string, r Result, m expr.Assignment) {
	if s.opts.DisableCache || key == "" {
		return
	}
	if r == Unknown {
		// "gave up" is not a fact about the query: caching it would make
		// budget-escalated retries hit the cache and fail forever
		return
	}
	if len(s.cache) > 100000 {
		s.cache = make(map[string]cacheEntry, 256) // crude eviction
	}
	s.cache[key] = cacheEntry{result: r, model: m}
}

func (s *Solver) keepRecent(m expr.Assignment) {
	if s.opts.DisableCandidates || m == nil {
		return
	}
	const keep = 8
	s.recent = append(s.recent, newCandidate(m))
	if len(s.recent) > keep {
		s.recent = s.recent[len(s.recent)-keep:]
	}
}

func cacheKey(constraints []*expr.Expr) string {
	ids := make([]uint64, len(constraints))
	for i, c := range constraints {
		ids[i] = c.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.Grow(len(ids) * 8)
	for _, id := range ids {
		b.WriteString(strconv.FormatUint(id, 36))
		b.WriteByte(',')
	}
	return b.String()
}

func arraysOf(constraints []*expr.Expr) []*expr.Array {
	seen := make(map[*expr.Expr]bool)
	set := make(map[expr.SymByte]bool)
	for _, c := range constraints {
		expr.CollectReads(c, seen, set)
	}
	am := make(map[*expr.Array]bool)
	for sb := range set {
		am[sb.Arr] = true
	}
	out := make([]*expr.Array, 0, len(am))
	for a := range am {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sliceIndependent groups constraints that transitively share symbolic
// bytes (union-find over bytes).
func sliceIndependent(constraints []*expr.Expr) [][]*expr.Expr {
	parent := make(map[expr.SymByte]expr.SymByte)
	var find func(x expr.SymByte) expr.SymByte
	find = func(x expr.SymByte) expr.SymByte {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b expr.SymByte) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	reads := make([][]expr.SymByte, len(constraints))
	for i, c := range constraints {
		reads[i] = expr.Reads(c)
		for j := 1; j < len(reads[i]); j++ {
			union(reads[i][0], reads[i][j])
		}
	}
	groups := make(map[expr.SymByte][]*expr.Expr)
	var constOnly []*expr.Expr
	for i, c := range constraints {
		if len(reads[i]) == 0 {
			constOnly = append(constOnly, c)
			continue
		}
		r := find(reads[i][0])
		groups[r] = append(groups[r], c)
	}
	out := make([][]*expr.Expr, 0, len(groups)+1)
	if len(constOnly) > 0 {
		out = append(out, constOnly)
	}
	// deterministic order
	keys := make([]expr.SymByte, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Arr != keys[j].Arr {
			return keys[i].Arr.Name < keys[j].Arr.Name
		}
		return keys[i].Idx < keys[j].Idx
	})
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}
