package solver

import (
	"math/rand"
	"testing"

	"pbse/internal/expr"
)

// FuzzCheckSoundness feeds the solver random constraint conjunctions and
// checks the two soundness directions the engine depends on: a Sat model
// must actually satisfy every constraint under direct evaluation, and an
// Unsat verdict must survive removal of the interval prepass (the fast
// path must never manufacture an unsatisfiability the bit-blaster would
// not find). Unknown verdicts (conflict budget) are allowed and skipped.
func FuzzCheckSoundness(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(7), int64(2))
	f.Add(int64(12345), int64(3))
	f.Add(int64(-3), int64(4))
	f.Fuzz(func(t *testing.T, seed, nRaw int64) {
		rng := rand.New(rand.NewSource(seed))
		c := expr.NewContext()
		arr := expr.NewArray("in", 8)
		n := int(nRaw%4+4) % 4 // 0..3
		cs := make([]*expr.Expr, n+1)
		for i := range cs {
			cs[i] = expr.RandBoolExpr(c, rng, arr, 3)
		}

		s := New(Options{MaxConflicts: 20_000})
		res, model, err := s.Check(cs, nil)
		if err != nil && res != Unknown {
			t.Fatalf("error with definite verdict %v: %v", res, err)
		}
		switch res {
		case Sat:
			ev := expr.NewEvaluator(model)
			for i, con := range cs {
				if !ev.EvalBool(con) {
					t.Fatalf("Sat model violates constraint %d: %v under %v", i, con, model)
				}
			}
		case Unsat:
			s2 := New(Options{DisableIntervals: true, MaxConflicts: 100_000})
			if r2, m2, _ := s2.Check(cs, nil); r2 == Sat {
				t.Fatalf("interval prepass unsound: Unsat flipped to Sat without it (model %v)", m2)
			}
		}
	})
}
