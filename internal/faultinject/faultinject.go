// Package faultinject provides deterministic, seed-driven fault injection
// for the symbolic execution engine. An Injector is consulted by the
// solver (return Unknown, run slowly) and the executor (panic during a
// step, report allocation pressure); each hook draws from its own
// rand.Rand derived from the injector seed, so a given (seed, Options)
// pair produces the same fault sequence on every run regardless of how
// the hooks interleave.
//
// The injector is a test and hardening harness: production runs simply
// leave it nil. Hooks and counters are safe for concurrent use: each
// stream serialises its draws behind its own mutex and counters are
// atomic, so parallel phase workers may share one injector. The fault
// *sequence* under concurrency depends on goroutine interleaving; for
// per-worker determinism derive one injector per worker with Child.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default magnitudes for ParseSpec entries that give only a rate.
const (
	DefaultSlowDelay    = 200 * time.Microsecond
	DefaultPhantomBytes = 1 << 20
	DefaultHangDelay    = 250 * time.Millisecond
)

// Options configure injection rates (probability per consulted event in
// [0, 1]) and magnitudes.
type Options struct {
	// SolverUnknownRate is the probability that a solver Check returns
	// Unknown instead of deciding the query.
	SolverUnknownRate float64
	// SolverSlowRate is the probability that a solver Check stalls for
	// SolverSlowDelay of wall time before deciding.
	SolverSlowRate  float64
	SolverSlowDelay time.Duration // default DefaultSlowDelay
	// StepPanicRate is the probability that an executor step panics.
	StepPanicRate float64
	// StepPanicFunc restricts injected step panics to steps executing
	// inside the named function ("" means any function).
	StepPanicFunc string
	// AllocPressureRate is the probability that a memory-pressure sweep
	// sees AllocPhantomBytes of phantom allocation on top of the real
	// state footprint.
	AllocPressureRate float64
	AllocPhantomBytes int64 // default DefaultPhantomBytes
	// IslandCrashRate is the probability that a supervised island turn
	// panics at turn start (exercising the supervisor's crash
	// containment and state requeue).
	IslandCrashRate float64
	// IslandHangRate is the probability that a supervised island turn
	// stalls for IslandHangDelay of wall time before doing any work
	// (exercising the watchdog/limbo path).
	IslandHangRate  float64
	IslandHangDelay time.Duration // default DefaultHangDelay
	// StoreIORate is the probability that a persistent-store write
	// (checkpoint, manifest, cache flush, reproducer) fails with an
	// injected I/O error.
	StoreIORate float64
	// KillRound, when positive, SIGKILLs this process mid-round after it
	// has executed that many scheduler rounds — after the round's turns
	// but before its barrier checkpoint, so that round's work is
	// genuinely lost and must be recovered from the previous checkpoint.
	// Counted per process: a resumed process starts again from 1, so a
	// supervised re-exec loop still makes forward progress between kills.
	KillRound int64
}

// Counts reports how many times each fault actually fired.
type Counts struct {
	SolverUnknown int64
	SolverSlow    int64
	StepPanic     int64
	AllocPressure int64
	IslandCrash   int64
	IslandHang    int64
	StoreIO       int64
}

// stream is one lockable deterministic rand source. rand.Rand is not
// safe for concurrent use, so every draw holds the stream's mutex.
type stream struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newStream(seed int64) *stream {
	return &stream{rng: rand.New(rand.NewSource(seed))}
}

// fire draws one float under the stream lock and compares to rate.
func (s *stream) fire(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v < rate
}

// Injector is the deterministic fault source. The zero value injects
// nothing; use New.
type Injector struct {
	opts Options
	seed int64
	// one stream per hook so rates stay independent of call interleaving
	unknown, slow, panics, alloc     *stream
	islandCrash, islandHang, storeIO *stream
	counts                           atomicCounts
}

// atomicCounts mirrors Counts with atomic fields.
type atomicCounts struct {
	solverUnknown atomic.Int64
	solverSlow    atomic.Int64
	stepPanic     atomic.Int64
	allocPressure atomic.Int64
	islandCrash   atomic.Int64
	islandHang    atomic.Int64
	storeIO       atomic.Int64
}

// New returns an injector whose fault sequence is a pure function of
// seed and opts.
func New(seed int64, opts Options) *Injector {
	if opts.SolverSlowDelay == 0 {
		opts.SolverSlowDelay = DefaultSlowDelay
	}
	if opts.AllocPhantomBytes == 0 {
		opts.AllocPhantomBytes = DefaultPhantomBytes
	}
	if opts.IslandHangDelay == 0 {
		opts.IslandHangDelay = DefaultHangDelay
	}
	return &Injector{
		opts:        opts,
		seed:        seed,
		unknown:     newStream(seed ^ 0x736f6c76),
		slow:        newStream(seed ^ 0x736c6f77),
		panics:      newStream(seed ^ 0x70616e69),
		alloc:       newStream(seed ^ 0x616c6c6f),
		islandCrash: newStream(seed ^ 0x69636173),
		islandHang:  newStream(seed ^ 0x6968616e),
		storeIO:     newStream(seed ^ 0x73696f66),
	}
}

// Child derives an injector with the same options and an id-mixed seed.
// Parallel phase workers each take a Child(phaseID) so every worker sees
// a fault sequence that is a pure function of (seed, id), independent of
// how the workers interleave.
func (i *Injector) Child(id int64) *Injector {
	if i == nil {
		return nil
	}
	return New(i.seed*1000003+id+1, i.opts)
}

// Counts returns the fired-fault counters.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return Counts{
		SolverUnknown: i.counts.solverUnknown.Load(),
		SolverSlow:    i.counts.solverSlow.Load(),
		StepPanic:     i.counts.stepPanic.Load(),
		AllocPressure: i.counts.allocPressure.Load(),
		IslandCrash:   i.counts.islandCrash.Load(),
		IslandHang:    i.counts.islandHang.Load(),
		StoreIO:       i.counts.storeIO.Load(),
	}
}

// Opts returns the effective options (defaults applied).
func (i *Injector) Opts() Options {
	if i == nil {
		return Options{}
	}
	return i.opts
}

// SolverUnknown reports whether the current solver query should give up
// with an Unknown verdict.
func (i *Injector) SolverUnknown() bool {
	if i == nil || !i.unknown.fire(i.opts.SolverUnknownRate) {
		return false
	}
	i.counts.solverUnknown.Add(1)
	return true
}

// SolverSlow returns a stall duration for the current solver query, and
// whether the fault fired.
func (i *Injector) SolverSlow() (time.Duration, bool) {
	if i == nil || !i.slow.fire(i.opts.SolverSlowRate) {
		return 0, false
	}
	i.counts.solverSlow.Add(1)
	return i.opts.SolverSlowDelay, true
}

// StepPanic reports whether the executor step currently running inside
// fn should panic.
func (i *Injector) StepPanic(fn string) bool {
	if i == nil {
		return false
	}
	if i.opts.StepPanicFunc != "" && i.opts.StepPanicFunc != fn {
		return false
	}
	if !i.panics.fire(i.opts.StepPanicRate) {
		return false
	}
	i.counts.stepPanic.Add(1)
	return true
}

// AllocPhantom returns phantom bytes to add to the current
// memory-pressure sweep (0 when the fault does not fire).
func (i *Injector) AllocPhantom() int64 {
	if i == nil || !i.alloc.fire(i.opts.AllocPressureRate) {
		return 0
	}
	i.counts.allocPressure.Add(1)
	return i.opts.AllocPhantomBytes
}

// IslandCrash reports whether the island turn about to run should panic.
func (i *Injector) IslandCrash() bool {
	if i == nil || !i.islandCrash.fire(i.opts.IslandCrashRate) {
		return false
	}
	i.counts.islandCrash.Add(1)
	return true
}

// IslandHang returns a stall duration for the island turn about to run,
// and whether the fault fired.
func (i *Injector) IslandHang() (time.Duration, bool) {
	if i == nil || !i.islandHang.fire(i.opts.IslandHangRate) {
		return 0, false
	}
	i.counts.islandHang.Add(1)
	return i.opts.IslandHangDelay, true
}

// StoreIO reports whether the persistent-store write about to run should
// fail with an injected I/O error.
func (i *Injector) StoreIO() bool {
	if i == nil || !i.storeIO.fire(i.opts.StoreIORate) {
		return false
	}
	i.counts.storeIO.Add(1)
	return true
}

// KillAtRound SIGKILLs the current process when round matches the
// configured KillRound — the hardest fault the harness can produce: no
// deferred functions run, no buffers flush, exactly like an external
// kill -9. It never returns when the fault fires.
func (i *Injector) KillAtRound(round int64) {
	if i == nil || i.opts.KillRound <= 0 || round != i.opts.KillRound {
		return
	}
	killSelf()
}

// ParseSpec builds an injector from a comma-separated spec of
// kind=rate[:magnitude] entries, e.g.
//
//	solver-unknown=0.1,solver-slow=0.05:1ms,step-panic=0.01,alloc-pressure=0.2:1048576
//
// Magnitudes: solver-slow takes a duration (default 200µs),
// alloc-pressure takes bytes (default 1 MiB), island-hang takes a
// duration (default 250ms). kill-round takes an integer round number
// instead of a rate. An empty spec returns nil (no injection).
func ParseSpec(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var opts Options
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("faultinject: bad entry %q (want kind=rate)", part)
		}
		if kv[0] == "kill-round" {
			n, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faultinject: bad round %q for kill-round (want positive integer)", kv[1])
			}
			opts.KillRound = n
			continue
		}
		val, mag, hasMag := strings.Cut(kv[1], ":")
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: bad rate %q for %s", kv[1], kv[0])
		}
		switch kv[0] {
		case "solver-unknown":
			opts.SolverUnknownRate = rate
		case "solver-slow":
			opts.SolverSlowRate = rate
			if hasMag {
				d, err := time.ParseDuration(mag)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad delay %q: %v", mag, err)
				}
				opts.SolverSlowDelay = d
			}
		case "step-panic":
			if hasMag {
				return nil, fmt.Errorf("faultinject: step-panic takes no magnitude (got %q)", mag)
			}
			opts.StepPanicRate = rate
		case "alloc-pressure":
			opts.AllocPressureRate = rate
			if hasMag {
				n, err := strconv.ParseInt(mag, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad byte count %q: %v", mag, err)
				}
				opts.AllocPhantomBytes = n
			}
		case "island-crash":
			if hasMag {
				return nil, fmt.Errorf("faultinject: island-crash takes no magnitude (got %q)", mag)
			}
			opts.IslandCrashRate = rate
		case "island-hang":
			opts.IslandHangRate = rate
			if hasMag {
				d, err := time.ParseDuration(mag)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad delay %q: %v", mag, err)
				}
				opts.IslandHangDelay = d
			}
		case "store-io":
			if hasMag {
				return nil, fmt.Errorf("faultinject: store-io takes no magnitude (got %q)", mag)
			}
			opts.StoreIORate = rate
		default:
			return nil, fmt.Errorf("faultinject: unknown kind %q", kv[0])
		}
	}
	return New(seed, opts), nil
}
