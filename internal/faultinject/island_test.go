package faultinject

import (
	"testing"
	"time"
)

// TestIslandHooks covers the supervision-facing hooks: rates 0 and 1,
// count accuracy, and the default hang delay.
func TestIslandHooks(t *testing.T) {
	never := New(1, Options{})
	for i := 0; i < 100; i++ {
		if never.IslandCrash() {
			t.Fatal("island-crash fired at rate 0")
		}
		if _, ok := never.IslandHang(); ok {
			t.Fatal("island-hang fired at rate 0")
		}
		if never.StoreIO() {
			t.Fatal("store-io fired at rate 0")
		}
	}
	if c := never.Counts(); c != (Counts{}) {
		t.Fatalf("rate-0 injector counted fires: %+v", c)
	}

	always := New(1, Options{IslandCrashRate: 1, IslandHangRate: 1, StoreIORate: 1,
		IslandHangDelay: 7 * time.Millisecond})
	for i := 0; i < 10; i++ {
		if !always.IslandCrash() || !always.StoreIO() {
			t.Fatal("rate-1 hook did not fire")
		}
		d, ok := always.IslandHang()
		if !ok || d != 7*time.Millisecond {
			t.Fatalf("island-hang = (%v, %v), want (7ms, true)", d, ok)
		}
	}
	c := always.Counts()
	if c.IslandCrash != 10 || c.IslandHang != 10 || c.StoreIO != 10 {
		t.Fatalf("counts = %+v, want 10 of each island fault", c)
	}
}

func TestIslandHangDefaultDelay(t *testing.T) {
	in := New(3, Options{IslandHangRate: 1})
	if d, ok := in.IslandHang(); !ok || d != DefaultHangDelay {
		t.Fatalf("default hang delay = (%v, %v), want (%v, true)", d, ok, DefaultHangDelay)
	}
}

// TestIslandHooksNilSafe: every supervision hook must be callable on a
// nil injector — unsupervised schedulers pass one through unconditionally.
func TestIslandHooksNilSafe(t *testing.T) {
	var in *Injector
	if in.IslandCrash() {
		t.Error("nil IslandCrash fired")
	}
	if _, ok := in.IslandHang(); ok {
		t.Error("nil IslandHang fired")
	}
	if in.StoreIO() {
		t.Error("nil StoreIO fired")
	}
	in.KillAtRound(1) // must not kill or panic
	if in.Child(4) != nil {
		t.Error("nil Child not nil")
	}
	if in.Opts() != (Options{}) {
		t.Error("nil Opts not zero")
	}
}

// TestIslandChildIndependence: children derived for parallel islands
// must see fault sequences that differ from each other and reproduce
// exactly for the same (seed, id).
func TestIslandChildIndependence(t *testing.T) {
	parent := New(9, Options{IslandCrashRate: 0.5})
	seq := func(in *Injector, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.IslandCrash()
		}
		return out
	}
	a1 := seq(parent.Child(1), 64)
	a2 := seq(New(9, Options{IslandCrashRate: 0.5}).Child(1), 64)
	b := seq(parent.Child(2), 64)
	same, diff := true, false
	for i := range a1 {
		same = same && a1[i] == a2[i]
		diff = diff || a1[i] != b[i]
	}
	if !same {
		t.Error("Child(1) fault sequence not reproducible")
	}
	if !diff {
		t.Error("Child(1) and Child(2) drew identical fault sequences")
	}
	// Child fires land in the child's counters, not the parent's.
	if c := parent.Counts(); c.IslandCrash != 0 {
		t.Errorf("parent counted child fires: %+v", c)
	}
}

func TestParseSpecSupervision(t *testing.T) {
	in, err := ParseSpec("island-crash=0.1, island-hang=0.2:50ms, store-io=0.05, kill-round=3", 7)
	if err != nil {
		t.Fatal(err)
	}
	o := in.Opts()
	if o.IslandCrashRate != 0.1 || o.IslandHangRate != 0.2 ||
		o.IslandHangDelay != 50*time.Millisecond || o.StoreIORate != 0.05 || o.KillRound != 3 {
		t.Fatalf("parsed opts = %+v", o)
	}
	if in, err := ParseSpec("island-hang=1", 7); err != nil || in.Opts().IslandHangDelay != DefaultHangDelay {
		t.Fatalf("bare island-hang: err=%v opts=%+v", err, in.Opts())
	}
	for _, bad := range []string{
		"island-crash=0.1:5ms", // takes no magnitude
		"store-io=0.1:5",       // takes no magnitude
		"island-hang=0.1:bogus",
		"kill-round=0",
		"kill-round=-2",
		"kill-round=nope",
	} {
		if _, err := ParseSpec(bad, 7); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
