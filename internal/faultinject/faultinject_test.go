package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drawSequence records the outcomes of n draws from each hook.
func drawSequence(inj *Injector, n int) [4][]bool {
	var out [4][]bool
	for i := 0; i < n; i++ {
		out[0] = append(out[0], inj.SolverUnknown())
		_, slow := inj.SolverSlow()
		out[1] = append(out[1], slow)
		out[2] = append(out[2], inj.StepPanic("f"))
		out[3] = append(out[3], inj.AllocPhantom() != 0)
	}
	return out
}

func TestDeterministicAcrossInstances(t *testing.T) {
	opts := Options{
		SolverUnknownRate: 0.3,
		SolverSlowRate:    0.3,
		StepPanicRate:     0.3,
		AllocPressureRate: 0.3,
	}
	a := drawSequence(New(7, opts), 200)
	b := drawSequence(New(7, opts), 200)
	for k := range a {
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("hook %d draw %d differs between same-seed injectors", k, i)
			}
		}
	}
	c := drawSequence(New(8, opts), 200)
	same := true
	for k := range a {
		for i := range a[k] {
			if a[k][i] != c[k][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// TestStreamsIndependent: each hook has its own rand stream, so the draw
// sequence of one hook must not depend on how often the others are
// consulted (engines interleave hooks unpredictably).
func TestStreamsIndependent(t *testing.T) {
	opts := Options{SolverUnknownRate: 0.5, StepPanicRate: 0.5}
	a := New(3, opts)
	b := New(3, opts)
	var seqA, seqB []bool
	for i := 0; i < 100; i++ {
		seqA = append(seqA, a.SolverUnknown())
	}
	for i := 0; i < 100; i++ {
		b.StepPanic("x") // extra draws on an unrelated stream
		seqB = append(seqB, b.SolverUnknown())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("solver-unknown stream perturbed by step-panic draws at %d", i)
		}
	}
}

func TestRatesZeroAndOne(t *testing.T) {
	never := New(1, Options{})
	always := New(1, Options{
		SolverUnknownRate: 1, SolverSlowRate: 1,
		StepPanicRate: 1, AllocPressureRate: 1,
	})
	for i := 0; i < 50; i++ {
		if never.SolverUnknown() || never.StepPanic("f") || never.AllocPhantom() != 0 {
			t.Fatal("rate-0 injector fired")
		}
		if _, slow := never.SolverSlow(); slow {
			t.Fatal("rate-0 solver-slow fired")
		}
		if !always.SolverUnknown() || !always.StepPanic("f") || always.AllocPhantom() == 0 {
			t.Fatal("rate-1 injector did not fire")
		}
		if _, slow := always.SolverSlow(); !slow {
			t.Fatal("rate-1 solver-slow did not fire")
		}
	}
	c := always.Counts()
	if c.SolverUnknown != 50 || c.SolverSlow != 50 || c.StepPanic != 50 || c.AllocPressure != 50 {
		t.Fatalf("counts = %+v, want 50 each", c)
	}
}

func TestStepPanicFuncFilter(t *testing.T) {
	inj := New(1, Options{StepPanicRate: 1, StepPanicFunc: "target"})
	for i := 0; i < 20; i++ {
		if inj.StepPanic("other") {
			t.Fatal("fired for non-target function")
		}
	}
	if !inj.StepPanic("target") {
		t.Fatal("did not fire for target function")
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if inj.SolverUnknown() || inj.StepPanic("f") || inj.AllocPhantom() != 0 {
		t.Fatal("nil injector fired")
	}
	if _, slow := inj.SolverSlow(); slow {
		t.Fatal("nil injector slow fired")
	}
	if c := inj.Counts(); c != (Counts{}) {
		t.Fatal("nil injector has counts")
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("solver-unknown=0.5,solver-slow=0.25:2ms,step-panic=0.1,alloc-pressure=1:4096", 9)
	if err != nil {
		t.Fatal(err)
	}
	o := inj.Opts()
	if o.SolverUnknownRate != 0.5 || o.SolverSlowRate != 0.25 || o.StepPanicRate != 0.1 || o.AllocPressureRate != 1 {
		t.Fatalf("rates wrong: %+v", o)
	}
	if o.SolverSlowDelay != 2*time.Millisecond {
		t.Fatalf("slow delay = %v, want 2ms", o.SolverSlowDelay)
	}
	if o.AllocPhantomBytes != 4096 {
		t.Fatalf("phantom bytes = %d, want 4096", o.AllocPhantomBytes)
	}

	if _, err := ParseSpec("step-panic=0.1:boom", 9); err == nil {
		t.Error("step-panic with arg should error")
	}
	if _, err := ParseSpec("nope=1", 9); err == nil {
		t.Error("unknown key should error")
	}
	if _, err := ParseSpec("solver-unknown=2", 9); err == nil {
		t.Error("rate > 1 should error")
	}
	if _, err := ParseSpec("solver-unknown", 9); err == nil {
		t.Error("missing value should error")
	}
}

// TestConcurrentHooksAndCounts hammers every hook from 16 goroutines on
// one shared injector — the access pattern of parallel phase workers
// that share a parent injector during setup — and checks the counters
// reconcile: rate-1 hooks fire on every draw, rate-0 hooks never, and a
// fractional-rate hook fires at most once per draw. Run under -race this
// proves the stream locking and atomic counters.
func TestConcurrentHooksAndCounts(t *testing.T) {
	const (
		goroutines = 16
		draws      = 2000
	)
	inj := New(7, Options{
		SolverUnknownRate: 1,
		SolverSlowRate:    0.5,
		StepPanicRate:     1,
		StepPanicFunc:     "hot",
		AllocPressureRate: 1,
	})

	var wg sync.WaitGroup
	var slowFired atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				if !inj.SolverUnknown() {
					t.Error("rate-1 SolverUnknown did not fire")
					return
				}
				if _, ok := inj.SolverSlow(); ok {
					slowFired.Add(1)
				}
				if inj.StepPanic("cold") {
					t.Error("StepPanic fired outside its function filter")
					return
				}
				if !inj.StepPanic("hot") {
					t.Error("rate-1 StepPanic did not fire in its function")
					return
				}
				if inj.AllocPhantom() == 0 {
					t.Error("rate-1 AllocPhantom returned no bytes")
					return
				}
				// Children derived concurrently must be independent and safe.
				if c := inj.Child(int64(g)); c.Counts().StepPanic != 0 {
					t.Error("fresh child has nonzero counts")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * draws)
	counts := inj.Counts()
	if counts.SolverUnknown != total || counts.StepPanic != total || counts.AllocPressure != total {
		t.Errorf("rate-1 counters %+v, want %d each", counts, total)
	}
	if counts.SolverSlow != slowFired.Load() {
		t.Errorf("SolverSlow counter %d != observed firings %d", counts.SolverSlow, slowFired.Load())
	}
	if counts.SolverSlow == 0 || counts.SolverSlow == total {
		t.Errorf("rate-0.5 SolverSlow fired %d of %d draws", counts.SolverSlow, total)
	}
}
