//go:build unix

package faultinject

import (
	"os"
	"syscall"
)

// killSelf delivers SIGKILL to the current process — uncatchable, so the
// process dies exactly as under an external kill -9. The os.Exit is a
// fallback for the (theoretical) case where the signal could not be
// delivered; 137 is the shell's exit status for a SIGKILLed process.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}
