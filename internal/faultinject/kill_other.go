//go:build !unix

package faultinject

import "os"

// killSelf approximates kill -9 on platforms without SIGKILL semantics:
// an immediate exit with the conventional 137 status, skipping deferred
// functions and flushes.
func killSelf() { os.Exit(137) }
