package service

// Daemon crash-recovery determinism: a service SIGKILLed mid-round with
// three active campaigns, reopened over the same root, must finish all
// three bit-identically (coverage, clock, bug IDs) to uninterrupted
// reference runs. This extends the single-campaign re-exec harness of
// internal/pbse/supervise_test.go to the whole daemon: the victim is
// this test binary re-executed with PBSE_SVC_VICTIM=1, which submits
// the campaigns, waits until every one has a durable checkpoint, and
// SIGKILLs itself.

import (
	"context"
	"os"
	"os/exec"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// svcKillSpecs are the three campaigns in flight at the kill. Budgets
// are ~10× the first checkpoint's round, so the SIGKILL always lands
// mid-campaign, and the mix covers two targets and a buggy-seed run.
func svcKillSpecs() []Spec {
	return []Spec{
		{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: 60_000},
		{Tenant: "alice", Driver: "dwarfdump", SeedSize: 256, RNGSeed: 7, Budget: 60_000},
		{Tenant: "bob", Driver: "readelf", BuggySeed: true, RNGSeed: 3, Budget: 60_000},
	}
}

func TestDaemonKillRestartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon kill/restart matrix skipped in -short mode")
	}
	specs := svcKillSpecs()

	// References: each campaign run to completion by an undisturbed
	// service over its own root.
	refs := make([]*CampaignInfo, len(specs))
	refSvc, err := Open(t.TempDir(), testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		info, err := refSvc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := refSvc.WaitTerminal(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
		if refs[i], err = refSvc.Info(info.ID); err != nil {
			t.Fatal(err)
		}
		if refs[i].Status != StatusDone {
			t.Fatalf("reference campaign %s ended %s", info.ID, refs[i].Status)
		}
	}
	if err := refSvc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Victim: re-exec this binary; it submits the same specs over a
	// fresh root and SIGKILLs itself once all three are checkpointed
	// and still running.
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDaemonKillVictim$", "-test.v")
	cmd.Env = append(os.Environ(), "PBSE_SVC_VICTIM=1", "PBSE_SVC_ROOT="+dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.ExitCode() != -1 {
		t.Fatalf("victim did not die on a signal (err=%v):\n%s", err, out)
	}

	// Restart over the carcass: recovery must requeue all three, and
	// they must land exactly on the reference results.
	svc, err := Open(dir, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	infos := svc.List("")
	if len(infos) != len(specs) {
		t.Fatalf("recovered %d campaigns, want %d: %+v", len(infos), len(specs), infos)
	}
	resumedAny := false
	for _, info := range infos {
		if !info.Status.Terminal() {
			resumedAny = true
		}
	}
	if !resumedAny {
		t.Fatal("victim died with no campaign left in flight — kill landed too late")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, info := range infos {
		if _, err := svc.WaitTerminal(ctx, info.ID); err != nil {
			t.Fatalf("recovered campaign %s never finished: %v", info.ID, err)
		}
		got, err := svc.Info(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		ref := refs[i]
		if got.Status != StatusDone {
			t.Errorf("campaign %s ended %s (%s)", got.ID, got.Status, got.Error)
		}
		if got.Covered != ref.Covered {
			t.Errorf("campaign %s coverage diverged: killed+resumed %d, reference %d",
				got.ID, got.Covered, ref.Covered)
		}
		if got.Clock != ref.Clock {
			t.Errorf("campaign %s clock diverged: killed+resumed %d, reference %d",
				got.ID, got.Clock, ref.Clock)
		}
		if !reflect.DeepEqual(got.BugIDs, ref.BugIDs) {
			t.Errorf("campaign %s bug IDs diverged:\n killed+resumed %v\n reference      %v",
				got.ID, got.BugIDs, ref.BugIDs)
		}
		if got.Rounds != ref.Rounds {
			t.Errorf("campaign %s rounds diverged: killed+resumed %d, reference %d",
				got.ID, got.Rounds, ref.Rounds)
		}
	}
}

// TestDaemonKillVictim is the subprocess body for
// TestDaemonKillRestartDeterminism. It never returns normally: once
// every campaign has a durable checkpoint and none has finished, it
// SIGKILLs its own process mid-flight.
func TestDaemonKillVictim(t *testing.T) {
	if os.Getenv("PBSE_SVC_VICTIM") != "1" {
		t.Skip("subprocess body for TestDaemonKillRestartDeterminism")
	}
	svc, err := Open(os.Getenv("PBSE_SVC_ROOT"), testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range svcKillSpecs() {
		info, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, id := range ids {
			st, err := svc.Root().Campaign(id)
			if err != nil {
				t.Fatal(err)
			}
			info, err := svc.Info(id)
			if err != nil {
				t.Fatal(err)
			}
			if info.Status.Terminal() {
				t.Fatalf("campaign %s finished before the kill — budget too small", id)
			}
			if st.HasCheckpoint() {
				ready++
			}
		}
		if ready == len(ids) {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("campaigns never all checkpointed")
}
