package service

// HTTP/JSON surface of the campaign daemon. The API is small and
// curl-friendly:
//
//	POST /v1/campaigns               submit a Spec            → 201 CampaignInfo
//	GET  /v1/campaigns[?tenant=t]    list campaigns           → 200 [CampaignInfo]
//	GET  /v1/campaigns/{id}          one campaign             → 200 CampaignInfo
//	POST /v1/campaigns/{id}/cancel   cancel                   → 200 {"status":…}
//	POST /v1/campaigns/{id}/resume   re-admit failed/cancelled→ 200 {"status":…}
//	GET  /v1/campaigns/{id}/wait     block until terminal     → 200 CampaignInfo
//	GET  /v1/campaigns/{id}/events   SSE event stream (?from=seq resumes)
//	GET  /v1/tenants                 tenant accounting        → 200 [TenantInfo]
//	GET  /v1/tenants/{name}          one tenant               → 200 TenantInfo
//	GET  /statz                      daemon snapshot          → 200 Stats
//	POST /cluster/join               worker joins the fleet   → 200 {"ok":…}
//	POST /cluster/heartbeat          worker liveness          → 200 {"ok":…}
//	GET  /cluster/statz              fleet snapshot           → 200 ClusterStats
//	GET  /healthz                    liveness                 → 200 "ok"
//
// Errors map: unknown campaign → 404, quota exceeded → 429, draining →
// 503, campaign owned by another node → 409, validation → 400. The SSE stream replays the campaign's retained
// event log past `from` and then follows live events, ending after the
// Final event — a client that reconnects with from=<last seen seq>
// resumes without gaps or duplicates for the retained window.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Server wires a Service into an http.Handler.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer builds the HTTP surface over svc.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/wait", s.handleWait)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /v1/tenants/{name}", s.handleTenant)
	s.mux.HandleFunc("GET /statz", s.handleStats)
	s.mux.HandleFunc("POST /cluster/join", s.handleClusterJoin)
	s.mux.HandleFunc("POST /cluster/heartbeat", s.handleClusterHeartbeat)
	s.mux.HandleFunc("GET /cluster/statz", s.handleClusterStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps service errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotOwned):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	info, err := s.svc.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.svc.Info(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]Status{"status": st})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Resume(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]Status{"status": st})
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if d := r.URL.Query().Get("timeout"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil {
			writeErr(w, fmt.Errorf("service: bad timeout: %w", err))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}
	id := r.PathValue("id")
	if _, err := s.svc.WaitTerminal(ctx, id); err != nil {
		if errors.Is(err, ErrNotFound) {
			writeErr(w, err)
		} else {
			writeJSON(w, http.StatusRequestTimeout, map[string]string{"error": err.Error()})
		}
		return
	}
	info, err := s.svc.Info(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Tenants())
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Tenant(r.PathValue("name")))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

// handleClusterJoin / handleClusterHeartbeat are the coordinator ends
// of the remote slice-worker protocol; both 503 on daemons started
// without -cluster. /cluster/statz reports membership, leases, and
// dispatch accounting.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	reg := s.svc.Registry()
	if reg == nil {
		http.Error(w, "cluster mode disabled (start the daemon with -cluster)", http.StatusServiceUnavailable)
		return
	}
	reg.HandleJoin(w, r)
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	reg := s.svc.Registry()
	if reg == nil {
		http.Error(w, "cluster mode disabled (start the daemon with -cluster)", http.StatusServiceUnavailable)
		return
	}
	reg.HandleHeartbeat(w, r)
}

func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ClusterStats())
}

// handleEvents streams a campaign's events as Server-Sent Events:
// replayed from the retained log past ?from=<seq>, then live, ending
// after the campaign's Final event (or when the client goes away or the
// daemon drains).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.svc.Info(id); err != nil {
		writeErr(w, err)
		return
	}
	var from int64
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			writeErr(w, fmt.Errorf("service: bad from: %w", err))
			return
		}
		from = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, fmt.Errorf("service: streaming unsupported"))
		return
	}
	sub, replay, err := s.svc.Hub().Subscribe(id, from)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	write := func(evs []Event) bool {
		for _, ev := range evs {
			data, err := json.Marshal(&ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			if ev.Final {
				flusher.Flush()
				return true
			}
		}
		flusher.Flush()
		return false
	}
	if write(replay) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.C:
		}
		evs, closed := sub.Drain()
		if write(evs) || closed {
			return
		}
	}
}
