package service

// Cluster integration (DESIGN.md §14): several pbsed daemons over one
// shared store root. Each campaign is owned by exactly one daemon
// through a fenced lease file in its store directory; owners heartbeat
// their leases, peers mirror each other's campaigns from the job
// records on disk, and an owner that dies (or drains) is succeeded by
// whichever peer steals its expired (or released) lease first. Remote
// slice workers — `pbsed -join` processes — register with a
// coordinator and execute dispatched slices against the same root;
// the scheduler grants slices to local pool goroutines and remote
// dispatcher goroutines from the same queue, so quotas, priorities,
// and round-robin apply uniformly no matter where a slice runs.
//
// Safety rests on two properties the lower layers already guarantee:
// slices are bit-deterministic functions of the checkpoint they resume
// from, and checkpoint-class writes are atomic and lease-fenced. Any
// duplicated, stale, or re-dispatched slice therefore either writes
// nothing (fenced) or writes a genuine checkpoint some owner could
// have produced anyway — re-execution can waste work, never corrupt.

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pbse/internal/cluster"
	"pbse/internal/pbse"
	"pbse/internal/store"
)

// ClusterConfig tunes a daemon's fleet membership.
type ClusterConfig struct {
	// NodeID is this daemon's unique owner identity (lease files and
	// campaign-ID suffixes). Default: "<hostname>-<pid>".
	NodeID string
	// LeaseTTL is how long an owned campaign's lease lives between
	// heartbeat renewals; a daemon silent for a TTL loses its
	// campaigns to adoption (default 10s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the lease renewal cadence (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// AdoptEvery is how often the daemon scans the root for expired
	// peers' campaigns to adopt (default LeaseTTL).
	AdoptEvery time.Duration
	// Dispatch tunes the remote slice round trip.
	Dispatch cluster.DispatchOptions
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.NodeID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "node"
		}
		c.NodeID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.AdoptEvery <= 0 {
		c.AdoptEvery = c.LeaseTTL
	}
	return c
}

// sanitizeNodeID shapes a node ID into a campaign-ID suffix: only
// store.ValidID characters, bounded so "c%06d-<suffix>" stays well
// under the 64-byte ID limit.
func sanitizeNodeID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(out) < 40; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "node"
	}
	return string(out)
}

// Registry returns the remote-worker registry (nil single-node).
func (s *Service) Registry() *cluster.Registry { return s.registry }

// NodeID returns this daemon's cluster identity ("" single-node).
func (s *Service) NodeID() string {
	if s.leases == nil {
		return ""
	}
	return s.leases.Owner()
}

// leasePath is where a campaign's lease file lives.
func (s *Service) leasePath(id string) string {
	return filepath.Join(s.root.CampaignDir(id), cluster.LeaseFileName)
}

// acquireCampaignLease takes c's lease and installs the write fence on
// its store. No-op single-node (where every campaign is born owned).
func (s *Service) acquireCampaignLease(c *Campaign) error {
	if s.leases == nil {
		s.mu.Lock()
		c.owned = true
		s.mu.Unlock()
		return nil
	}
	st, err := s.root.Campaign(c.ID)
	if err != nil {
		return err
	}
	l, err := s.leases.Acquire(s.leasePath(c.ID))
	if err != nil {
		return err
	}
	st.SetFence(s.leases.Fence(l))
	s.mu.Lock()
	c.lease = l
	c.owned = true
	s.mu.Unlock()
	return nil
}

// releaseCampaign gives up c's lease (after its terminal job record is
// on disk), so peers see the campaign unowned immediately.
func (s *Service) releaseCampaign(c *Campaign) {
	if s.leases == nil {
		return
	}
	s.mu.Lock()
	l := c.lease
	c.lease = nil
	c.owned = false
	s.mu.Unlock()
	if l != nil {
		if err := s.leases.Release(l); err != nil {
			s.cfg.Logf("service: releasing lease on %s: %v", c.ID, err)
		}
	}
}

// releaseOwnedLeases releases every lease this daemon still holds —
// the drain path's parting gift: survivors adopt instantly instead of
// waiting out the TTL.
func (s *Service) releaseOwnedLeases() {
	if s.leases == nil {
		return
	}
	for _, l := range s.leases.Held() {
		if err := s.leases.Release(l); err != nil {
			s.cfg.Logf("service: drain: releasing %s: %v", l.Path, err)
		}
	}
	s.mu.Lock()
	for _, c := range s.camps {
		if c.lease != nil {
			c.lease = nil
			c.owned = false
		}
	}
	s.mu.Unlock()
}

// heartbeatLoop renews every held lease each cadence. A renewal that
// comes back ErrLost means the lease was stolen (we were too slow) —
// the campaign is handed over.
func (s *Service) heartbeatLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(s.cfg.Cluster.HeartbeatEvery):
		}
		for _, l := range s.leases.Held() {
			if err := s.leases.Renew(l); err != nil {
				s.handleLeaseLoss(l, err)
			}
		}
	}
}

// handleLeaseLoss reconciles the registry with a lease we failed to
// renew: the campaign now belongs to whoever stole it.
func (s *Service) handleLeaseLoss(l *cluster.Lease, cause error) {
	s.mu.Lock()
	var c *Campaign
	for _, cc := range s.camps {
		if cc.lease == l {
			c = cc
			break
		}
	}
	if c == nil {
		s.mu.Unlock()
		return
	}
	s.leasesLost++
	c.lease = nil
	c.owned = false
	switch {
	case c.status.Terminal():
		// Nothing in flight; the terminal record is already on disk.
	case c.status == StatusRunning:
		// The in-flight slice keeps running but its checkpoint-class
		// writes are fenced out; reconcile sees the lost ownership.
	default:
		s.queue.remove(c)
		s.finalizeLocked(c, StatusFailed, "campaign lease lost; another node will adopt it")
	}
	s.mu.Unlock()
	s.cfg.Logf("service: lost lease on %s (epoch %d): %v", c.ID, l.Epoch, cause)
}

// adoptLoop periodically scans the root for campaigns this daemon
// should mirror or adopt.
func (s *Service) adoptLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(s.cfg.Cluster.AdoptEvery):
		}
		s.adoptSweep()
	}
}

// adoptSweep walks every campaign directory under the root. Campaigns
// owned by this daemon are skipped; others are mirrored into the local
// registry from their job records, and non-terminal ones whose lease
// is expired (or released) are adopted: lease stolen, write fence
// installed, and the campaign re-queued to resume from its checkpoint.
func (s *Service) adoptSweep() {
	ids, err := s.root.List()
	if err != nil {
		s.cfg.Logf("service: adoption sweep: %v", err)
		return
	}
	for _, id := range ids {
		s.mu.Lock()
		c := s.camps[id]
		owned := c != nil && c.owned
		draining := s.draining
		s.mu.Unlock()
		if owned || draining {
			continue
		}
		rec, _, err := s.readJobRecord(id)
		if err != nil {
			continue // half-created or foreign directory
		}
		if rec.Status.Terminal() {
			s.observeCampaign(id, rec)
			continue
		}
		// Non-terminal and not ours: try to take it. Acquire only
		// succeeds on a missing, released, or expired lease — a live
		// owner returns ErrHeld and we just mirror.
		l, err := s.leases.Acquire(s.leasePath(id))
		if err != nil {
			s.observeCampaign(id, rec)
			continue
		}
		// Re-read under ownership: the previous owner may have written
		// a terminal record and released between our read and the steal.
		rec, _, err = s.readJobRecord(id)
		if err != nil || rec.Status.Terminal() {
			s.leases.Release(l)
			if err == nil {
				s.observeCampaign(id, rec)
			}
			continue
		}
		s.adoptCampaign(id, rec, l)
	}
}

// observeCampaign mirrors a peer-owned campaign's on-disk record into
// the local registry, so List/Info/WaitTerminal reflect fleet-wide
// state. Never touches owned campaigns or tenant accounting.
func (s *Service) observeCampaign(id string, rec jobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.camps[id]
	if c == nil {
		c = &Campaign{
			Spec:    rec.Spec,
			status:  rec.Status,
			bugSeen: make(map[string]bool),
			done:    make(chan struct{}),
		}
		s.camps[id] = c
		s.order = append(s.order, id)
		s.tenant(c.Tenant).total++
		if rec.Status.Terminal() {
			close(c.done)
		}
	}
	if c.owned {
		return // became ours since the caller checked
	}
	wasTerminal := c.status.Terminal()
	c.slices = rec.Slices
	c.rounds = rec.Rounds
	c.clock = rec.Clock
	c.covered = rec.Covered
	c.bugIDs = append([]string(nil), rec.BugIDs...)
	for _, b := range rec.BugIDs {
		c.bugSeen[b] = true
	}
	c.wallSeconds = rec.WallSeconds
	c.errMsg = rec.Error
	switch {
	case rec.Status.Terminal() && !wasTerminal:
		s.finalizeLocked(c, rec.Status, rec.Error)
	case !rec.Status.Terminal() && wasTerminal:
		// A peer resurrected (Resume) a campaign we saw terminal.
		c.status = rec.Status
		c.done = make(chan struct{})
		s.hub.Reopen(id)
	default:
		c.status = rec.Status
	}
}

// adoptCampaign takes over a campaign whose lease we just acquired:
// registry state is reset from the on-disk record, the write fence is
// re-armed on the new epoch, and the campaign re-enters the queue to
// resume from its last checkpoint.
func (s *Service) adoptCampaign(id string, rec jobRecord, l *cluster.Lease) {
	st, err := s.root.Campaign(id)
	if err != nil {
		s.cfg.Logf("service: adopt %s: %v", id, err)
		s.leases.Release(l)
		return
	}
	st.SetFence(s.leases.Fence(l))
	hasCk := st.HasCheckpoint()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.leases.Release(l)
		return
	}
	c := s.camps[id]
	if c == nil {
		c = &Campaign{Spec: rec.Spec, bugSeen: make(map[string]bool), done: make(chan struct{})}
		s.camps[id] = c
		s.order = append(s.order, id)
		s.tenant(c.Tenant).total++
	}
	if c.status.Terminal() {
		// Locally finalized (e.g. our own earlier lease loss): re-arm.
		c.done = make(chan struct{})
		s.hub.Reopen(id)
	}
	c.slices = rec.Slices
	c.rounds = rec.Rounds
	c.clock = rec.Clock
	c.covered = rec.Covered
	c.bugIDs = append([]string(nil), rec.BugIDs...)
	c.bugSeen = make(map[string]bool)
	for _, b := range rec.BugIDs {
		c.bugSeen[b] = true
	}
	c.wallSeconds = rec.WallSeconds
	c.errMsg = ""
	c.cancel = false
	c.handle = nil // force a fresh resume from the on-disk checkpoint
	c.st = st
	c.lease = l
	c.owned = true
	if !c.counted {
		t := s.tenant(c.Tenant)
		t.live++
		t.budget += c.Budget
		c.counted = true
	}
	if hasCk {
		c.status = StatusCheckpointed
	} else {
		c.status = StatusQueued
	}
	c.seq = s.nextSeq()
	s.queue.push(c)
	s.adoptions++
	epoch := l.Epoch
	s.publishStatusLocked(c, "adopted")
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cfg.Logf("service: adopted campaign %s (lease epoch %d)", id, epoch)
}

// readJobRecord reads a campaign's durable job record and its mtime.
func (s *Service) readJobRecord(id string) (jobRecord, time.Time, error) {
	path := s.jobPath(id)
	fi, err := os.Stat(path)
	if err != nil {
		return jobRecord{}, time.Time{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return jobRecord{}, time.Time{}, err
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return jobRecord{}, time.Time{}, err
	}
	rec.Spec.ID = id
	return rec, fi.ModTime(), nil
}

// onWorkerJoin spawns one dispatcher goroutine per slot of a freshly
// joined (or revived) remote worker. Dispatchers count in s.wg like
// local pool workers: Drain waits for their in-flight slices too.
func (s *Service) onWorkerJoin(w *cluster.RemoteWorker) {
	gen := s.registry.Generation(w)
	slots := s.registry.WorkerSlots(w)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	// Add under the same critical section that checks draining: Drain
	// sets draining before it waits, so the Add either happens-before
	// the Wait or does not happen at all.
	s.wg.Add(slots)
	s.mu.Unlock()
	for i := 0; i < slots; i++ {
		go s.remoteDispatcher(w, gen)
	}
}

// remoteDispatcher is one remote worker slot's slice runner: it grants
// from the same queue as local pool workers and ships each slice to
// the worker over HTTP. It retires when the worker dies, is replaced
// by a newer generation, or the service drains.
func (s *Service) remoteDispatcher(w *cluster.RemoteWorker, gen int) {
	defer s.wg.Done()
	for {
		if !s.registry.Usable(w, gen) {
			return
		}
		c := s.next()
		if c == nil {
			return
		}
		if !s.registry.Usable(w, gen) {
			// The worker lapsed while we waited for a grant; hand the
			// slice back for any other grantee.
			s.requeueSlice(c)
			return
		}
		s.mu.Lock()
		l, owned := c.lease, c.owned
		spec := c.Spec
		s.mu.Unlock()
		if !owned || l == nil {
			s.reconcile(c, sliceOutcome{err: fmt.Errorf("campaign lease lost before dispatch")}, 0)
			continue
		}
		specJSON, err := json.Marshal(&spec)
		if err != nil {
			s.reconcile(c, sliceOutcome{err: err}, 0)
			continue
		}
		start := time.Now()
		res, err := s.registry.Dispatch(context.Background(), w, cluster.SliceRequest{
			Campaign: c.ID,
			Rounds:   s.cfg.RoundsPerSlice,
			Owner:    l.Owner,
			Epoch:    l.Epoch,
			Spec:     specJSON,
		})
		if err != nil {
			// Transport failure after retries: the registry declared
			// the worker dead. Requeue the slice — safe anywhere, the
			// worker either never checkpointed or atomically wrote the
			// bit-deterministic checkpoint — and retire.
			s.requeueSlice(c)
			return
		}
		out := sliceOutcome{
			finished: res.Finished,
			rounds:   res.Rounds,
			clock:    res.Clock,
			covered:  res.Covered,
			bugIDs:   res.BugIDs,
		}
		if res.Error != "" {
			out = sliceOutcome{err: fmt.Errorf("remote slice on %s: %s", w.ID, res.Error)}
		}
		s.reconcile(c, out, time.Since(start).Seconds())
	}
}

// requeueSlice returns a granted-but-unexecuted slice to the queue
// (worker death, dispatcher retirement). The campaign made no
// progress, so only the grant accounting is unwound.
func (s *Service) requeueSlice(c *Campaign) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(c.Tenant).running--
	switch {
	case c.status.Terminal():
		// Lost ownership and was finalized while granted; nothing to requeue.
	case c.cancel:
		s.finalizeLocked(c, StatusCancelled, "")
		rec := c.record()
		go func() {
			s.persistJobBestEffort(c, rec)
			s.releaseCampaign(c)
		}()
	default:
		if c.slices > 0 {
			c.status = StatusCheckpointed
		} else {
			c.status = StatusQueued
		}
		c.seq = s.nextSeq()
		s.queue.push(c)
		s.publishStatusLocked(c, "status")
	}
	s.cond.Broadcast()
}

// ClusterStats is the /cluster/statz snapshot.
type ClusterStats struct {
	Enabled        bool                  `json:"enabled"`
	NodeID         string                `json:"node_id,omitempty"`
	LeaseTTLMillis int64                 `json:"lease_ttl_ms,omitempty"`
	LeasesHeld     int                   `json:"leases_held"`
	CampaignsOwned int                   `json:"campaigns_owned"`
	Observed       int                   `json:"campaigns_observed"`
	Adoptions      int64                 `json:"adoptions"`
	LeasesLost     int64                 `json:"leases_lost"`
	Workers        []cluster.WorkerInfo  `json:"workers,omitempty"`
	Dispatch       cluster.DispatchStats `json:"dispatch"`
}

// ClusterStats snapshots the daemon's fleet state.
func (s *Service) ClusterStats() ClusterStats {
	if s.leases == nil {
		return ClusterStats{}
	}
	cs := ClusterStats{
		Enabled:        true,
		NodeID:         s.leases.Owner(),
		LeaseTTLMillis: s.leases.TTL().Milliseconds(),
		LeasesHeld:     len(s.leases.Held()),
		Workers:        s.registry.Workers(),
		Dispatch:       s.registry.Stats(),
	}
	s.mu.Lock()
	for _, c := range s.camps {
		switch {
		case c.owned:
			cs.CampaignsOwned++
		case !c.status.Terminal():
			cs.Observed++
		}
	}
	cs.Adoptions = s.adoptions
	cs.LeasesLost = s.leasesLost
	s.mu.Unlock()
	return cs
}

// SliceExec executes dispatched slices on a worker node: the
// cluster.ExecFunc side of the protocol. It caches one handle per
// campaign — safe because every Step re-resumes from the shared
// on-disk checkpoint, so interleaving with slices run elsewhere is
// invisible — and fences each campaign's store on the dispatching
// owner's lease identity before stepping.
type SliceExec struct {
	root *store.Root
	cfg  Config

	mu      sync.Mutex
	handles map[string]*workerCampaign
}

type workerCampaign struct {
	handle *pbse.Handle
	st     *store.Store
}

// NewSliceExec builds a worker-side slice executor over the shared
// root. Config supplies Supervise and RoundsPerSlice defaults; quotas
// and scheduling stay coordinator-side.
func NewSliceExec(root *store.Root, cfg Config) *SliceExec {
	if cfg.RoundsPerSlice <= 0 {
		cfg.RoundsPerSlice = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &SliceExec{root: root, cfg: cfg, handles: make(map[string]*workerCampaign)}
}

// Exec runs one dispatched slice and reports the campaign-cumulative
// result. Implements cluster.ExecFunc.
func (e *SliceExec) Exec(req cluster.SliceRequest) (out cluster.SliceResult) {
	defer func() {
		if r := recover(); r != nil {
			out = cluster.SliceResult{Error: fmt.Sprintf("slice panicked: %v", r)}
		}
	}()
	var spec Spec
	if err := json.Unmarshal(req.Spec, &spec); err != nil {
		return cluster.SliceResult{Error: fmt.Sprintf("bad spec: %v", err)}
	}
	spec.ID = req.Campaign
	wc, err := e.campaign(spec)
	if err != nil {
		return cluster.SliceResult{Error: err.Error()}
	}
	// Fence on the dispatching owner's lease identity: if the
	// coordinator's lease lapses mid-slice, our checkpoint writes fail
	// instead of clobbering the successor's campaign.
	leasePath := filepath.Join(e.root.CampaignDir(req.Campaign), cluster.LeaseFileName)
	wc.st.SetFence(cluster.FenceCheck(leasePath, req.Owner, req.Epoch))
	rounds := req.Rounds
	if rounds <= 0 {
		rounds = e.cfg.RoundsPerSlice
	}
	res, err := wc.handle.Step(rounds)
	if err != nil {
		return cluster.SliceResult{Error: err.Error()}
	}
	if res == nil {
		return cluster.SliceResult{Finished: true}
	}
	out = cluster.SliceResult{
		Finished: !res.Interrupted,
		Clock:    res.Executor.Clock(),
		Covered:  res.Covered,
	}
	for _, b := range res.Bugs {
		out.BugIDs = append(out.BugIDs, b.ID())
	}
	if m, merr := wc.st.ReadManifest(); merr == nil && m != nil {
		out.Rounds = m.Rounds
	}
	return out
}

// campaign returns (building and caching on first use) the handle for
// one dispatched campaign.
func (e *SliceExec) campaign(spec Spec) (*workerCampaign, error) {
	e.mu.Lock()
	wc := e.handles[spec.ID]
	e.mu.Unlock()
	if wc != nil {
		return wc, nil
	}
	h, st, err := buildSpecHandle(e.root, spec, e.cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if cached := e.handles[spec.ID]; cached != nil {
		wc = cached
	} else {
		wc = &workerCampaign{handle: h, st: st}
		e.handles[spec.ID] = wc
	}
	e.mu.Unlock()
	return wc, nil
}
