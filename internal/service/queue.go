package service

// jobQueue holds the runnable campaigns waiting for a pool worker,
// ordered by (priority desc, seq asc): strict priority, FIFO within a
// priority class. Campaigns re-enter with a fresh seq after every
// slice, which makes equal-priority scheduling round-robin — each
// runnable campaign gets one slice per cycle, so tenants make
// proportional progress instead of head-of-line blocking.
//
// Selection scans linearly: the queue holds campaigns (not states), its
// length is the number of concurrently admitted campaigns, and the scan
// must skip tenant-ineligible entries anyway — a heap would still
// degenerate to a scan under the eligibility predicate.
type jobQueue struct {
	items []*Campaign
}

func (q *jobQueue) push(c *Campaign) {
	q.items = append(q.items, c)
}

func (q *jobQueue) len() int { return len(q.items) }

// popBest removes and returns the highest-priority (then oldest-seq)
// campaign for which eligible returns true, or nil when none qualifies.
func (q *jobQueue) popBest(eligible func(*Campaign) bool) *Campaign {
	best := -1
	for i, c := range q.items {
		if !eligible(c) {
			continue
		}
		if best < 0 || c.Priority > q.items[best].Priority ||
			(c.Priority == q.items[best].Priority && c.seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	c := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return c
}

// remove deletes c from the queue, reporting whether it was present.
func (q *jobQueue) remove(c *Campaign) bool {
	for i, it := range q.items {
		if it == c {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}
