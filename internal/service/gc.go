package service

// Campaign retention GC: terminal campaign trees accumulate under the
// root forever unless a retention policy sweeps them. The sweep runs
// once at Open and then on a timer, and only ever removes campaigns
// that are (a) terminal in their durable job record, (b) terminal (or
// unknown) in the local registry, and (c) not covered by a live lease
// — so a campaign a peer is still running, or has just adopted, is
// never touched no matter what the local view says.

import (
	"os"
	"sort"
	"time"

	"pbse/internal/cluster"
)

// gcLoop runs the retention sweep on a timer until the service drains.
func (s *Service) gcLoop() {
	defer s.bg.Done()
	every := s.cfg.GCEvery
	if every <= 0 {
		every = time.Minute
	}
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(every):
		}
		s.sweepTerminal()
	}
}

// sweepTerminal applies the retention policy: keep the Retain newest
// terminal campaigns (0 = all), and none older than RetainAge (0 = no
// age bound). Returns how many campaign trees were removed.
func (s *Service) sweepTerminal() int {
	if s.cfg.Retain <= 0 && s.cfg.RetainAge <= 0 {
		return 0
	}
	ids, err := s.root.List()
	if err != nil {
		s.cfg.Logf("service: retention sweep: %v", err)
		return 0
	}
	type candidate struct {
		id  string
		mod time.Time
	}
	var cands []candidate
	now := time.Now()
	for _, id := range ids {
		s.mu.Lock()
		c := s.camps[id]
		liveLocally := c != nil && !c.status.Terminal()
		s.mu.Unlock()
		if liveLocally {
			continue
		}
		rec, mod, err := s.readJobRecord(id)
		if err != nil || !rec.Status.Terminal() {
			continue
		}
		// A live lease means a peer considers this campaign its own
		// (perhaps mid-resurrection); leave it alone.
		if li, _ := cluster.ReadLease(s.leasePath(id)); li != nil && !li.Expired(now) {
			continue
		}
		cands = append(cands, candidate{id: id, mod: mod})
	}
	// Newest first: the retain-count window keeps the front.
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod.After(cands[j].mod) })
	removed := 0
	for i, cd := range cands {
		overCount := s.cfg.Retain > 0 && i >= s.cfg.Retain
		overAge := s.cfg.RetainAge > 0 && now.Sub(cd.mod) > s.cfg.RetainAge
		if !overCount && !overAge {
			continue
		}
		if err := os.RemoveAll(s.root.CampaignDir(cd.id)); err != nil {
			s.cfg.Logf("service: retention sweep %s: %v", cd.id, err)
			continue
		}
		s.root.Forget(cd.id)
		s.mu.Lock()
		if c := s.camps[cd.id]; c != nil && c.status.Terminal() {
			delete(s.camps, cd.id)
			for j, oid := range s.order {
				if oid == cd.id {
					s.order = append(s.order[:j], s.order[j+1:]...)
					break
				}
			}
		}
		s.gcSwept++
		s.mu.Unlock()
		removed++
	}
	if removed > 0 {
		s.cfg.Logf("service: retention sweep removed %d terminal campaign(s)", removed)
	}
	return removed
}
