package service

// Scheduler stress: 8 tenants × 4 campaigns over a 4-worker pool, some
// campaigns running under injected island-crash and store-I/O faults
// (with supervision, so the faults are contained, DESIGN.md §11). The
// assertions are the service's core invariants: per-tenant MaxRunning
// is never exceeded at any instant, every campaign reaches a terminal
// state, accounting drains to zero, and the daemon leaks no goroutines.
// CI runs this under -race; the whole point is the interleavings.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pbse/internal/supervise"
)

func TestServiceStress(t *testing.T) {
	const (
		tenants    = 8
		perTenant  = 4
		maxRunning = 2
		stressPool = 4
		tinyCamp   = 4_000
	)
	baseline := runtime.NumGoroutine()

	cfg := Config{
		Pool:         stressPool,
		DefaultQuota: Quota{MaxRunning: maxRunning, MaxLive: perTenant},
		Supervise:    &supervise.Options{Enabled: true},
		Logf:         func(string, ...any) {},
	}
	svc, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	drivers := []string{"readelf", "dwarfdump"}
	var ids []string
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant%d", ti)
		for ci := 0; ci < perTenant; ci++ {
			spec := Spec{
				Tenant:   tenant,
				Driver:   drivers[(ti+ci)%len(drivers)],
				SeedSize: 128,
				RNGSeed:  int64(ti*100 + ci),
				Budget:   tinyCamp,
				Priority: ci % 2,
			}
			// A quarter of the campaigns run under injected faults:
			// island crashes (contained by supervision) and store I/O
			// failures (tolerated by supervised persistence). They must
			// still terminate; the scheduler must not wedge on them.
			switch ci {
			case 2:
				spec.Inject = "island-crash=0.2"
				spec.Workers = 2
				spec.Deterministic = true
			case 3:
				spec.Inject = "store-io=0.1"
			}
			info, err := svc.Submit(spec)
			if err != nil {
				t.Fatalf("submit %s/%d: %v", tenant, ci, err)
			}
			ids = append(ids, info.ID)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := svc.WaitTerminal(ctx, id); err != nil {
			t.Fatalf("campaign %s never terminated: %v", id, err)
		}
	}

	// Every campaign is terminal; fault-free campaigns all completed.
	for _, info := range svc.List("") {
		if !info.Status.Terminal() {
			t.Errorf("campaign %s not terminal: %s", info.ID, info.Status)
		}
		if info.Inject == "" && info.Status != StatusDone {
			t.Errorf("fault-free campaign %s ended %s (%s)", info.ID, info.Status, info.Error)
		}
	}

	// Quotas were respected at every instant (the service records the
	// high-water mark under the same lock that grants slices), and the
	// accounting drained.
	for _, tn := range svc.Tenants() {
		if tn.MaxRunning > maxRunning {
			t.Errorf("tenant %s: %d campaigns ran concurrently, quota %d", tn.Name, tn.MaxRunning, maxRunning)
		}
		if tn.Running != 0 || tn.Live != 0 || tn.Budget != 0 {
			t.Errorf("tenant %s: accounting not drained: %+v", tn.Name, tn)
		}
		if tn.Total != perTenant {
			t.Errorf("tenant %s: total %d, want %d", tn.Name, tn.Total, perTenant)
		}
	}
	if st := svc.Stats(); st.Queued != 0 || st.Running != 0 || st.Live != 0 {
		t.Errorf("daemon not quiescent: %+v", st)
	}

	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// No leaked goroutines: the pool, the waiters, and every campaign's
	// machinery are gone once the service closes. Allow the runtime a
	// moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceWallClockQuota exercises the MaxWallSeconds ladder: once a
// tenant burns its worker-seconds, its queued campaigns fail at the
// grant point instead of running, while other tenants keep going.
func TestServiceWallClockQuota(t *testing.T) {
	cfg := testConfig(1)
	cfg.DefaultQuota = Quota{MaxWallSeconds: 0.000001} // exhausted after the first slice
	svc, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	a, err := svc.Submit(Spec{Tenant: "burn", Driver: "readelf", Budget: e2eBudget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.WaitTerminal(context.Background(), a.ID); err != nil {
		t.Fatal(err)
	}
	// The first campaign ran at least one slice (quota was intact at its
	// first grant) and then either finished or was failed at a later
	// grant; a second campaign must be failed outright.
	b, err := svc.Submit(Spec{Tenant: "burn", Driver: "readelf", Budget: e2eBudget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.WaitTerminal(context.Background(), b.ID); err != nil {
		t.Fatal(err)
	}
	info, _ := svc.Info(b.ID)
	if info.Status != StatusFailed {
		t.Fatalf("exhausted tenant's campaign ended %s, want failed", info.Status)
	}
	if info.Slices != 0 {
		t.Errorf("exhausted tenant's campaign ran %d slices", info.Slices)
	}
}
