package service

// End-to-end service tests: the full submit → stream → cancel →
// resubmit → resume lifecycle over a real HTTP server, asserting the
// daemon surfaces exactly the results the library produces — same
// terminal status, same stable bug IDs, and a streamed coverage series
// that only ever grows.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pbse/internal/pbse"
	"pbse/internal/store"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// Small virtual-time budgets keep the service suite inside the -short
// tier (it runs under -race in CI): readelf@20k is a handful of rounds
// and two seeded bugs, gif2tiff@10k a coverage-only campaign.
const (
	e2eBudget  = 20_000
	tinyBudget = 10_000
)

// testConfig returns a quiet service config for tests.
func testConfig(pool int) Config {
	return Config{Pool: pool, Logf: func(string, ...any) {}}
}

// newTestServer opens a service over dir and serves it over httptest.
// Both are torn down with the test.
func newTestServer(t *testing.T, dir string, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return svc, ts
}

// postJSON posts v and decodes the response into out, asserting the
// status code.
func postJSON(t *testing.T, url string, v any, wantCode int, out any) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// getJSON fetches url into out, asserting the status code.
func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// streamEvents consumes a campaign's SSE stream from seq `from` until
// its Final event (or the deadline) and returns the decoded events.
func streamEvents(t *testing.T, base, id string, from int64) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/v1/campaigns/%s/events?from=%d", base, id, from), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content-type %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("events: bad data line %q: %v", line, err)
		}
		evs = append(evs, ev)
		if ev.Final {
			return evs
		}
	}
	t.Fatalf("stream ended without a final event (%d events, scan err %v)", len(evs), sc.Err())
	return nil
}

// directRun executes the same campaign a Spec describes through the
// plain library path (own store, no service) — the bit-identity
// reference.
func directRun(t *testing.T, spec Spec) *pbse.Result {
	t.Helper()
	tgt, err := targets.ByDriver(spec.Driver)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(spec.RNGSeed))
	var seed []byte
	if spec.BuggySeed {
		seed = tgt.GenBuggySeed(rng)
	} else {
		seed = tgt.GenSeed(rng, spec.SeedSize)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 1
	}
	res, err := pbse.Run(prog, seed, pbse.Options{
		Budget: spec.Budget, TimePeriod: spec.TimePeriod, Seed: spec.RNGSeed,
		Workers: workers, Deterministic: spec.Deterministic,
		Store: st, StoreLabel: spec.Driver,
	}, symex.Options{InputSize: len(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func resultBugIDs(res *pbse.Result) []string {
	seen := map[string]bool{}
	var ids []string
	for _, b := range res.Bugs {
		if id := b.ID(); !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}

// TestServiceLifecycle drives the whole loop over HTTP: two campaigns
// from two tenants on one pool, streamed to completion; the streamed
// coverage is monotonic, the terminal infos carry the same bug IDs and
// coverage as a direct library run, and cancel → resume lands the
// cancelled campaign on the identical final state.
func TestServiceLifecycle(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), testConfig(2))

	specs := []Spec{
		{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: e2eBudget},
		{Tenant: "bob", Driver: "gif2tiff", SeedSize: 256, RNGSeed: 7, Budget: tinyBudget},
	}
	var ids []string
	for _, spec := range specs {
		var info CampaignInfo
		postJSON(t, ts.URL+"/v1/campaigns", spec, http.StatusCreated, &info)
		if info.ID == "" || info.Status.Terminal() {
			t.Fatalf("submit returned %+v", info)
		}
		ids = append(ids, info.ID)
	}

	for i, id := range ids {
		evs := streamEvents(t, ts.URL, id, 0)
		final := evs[len(evs)-1]
		if final.Status != StatusDone {
			t.Fatalf("campaign %s final status %q: %+v", id, final.Status, final)
		}

		// Streamed coverage is monotonic and ends at the final figure.
		cov := -1
		var streamedBugs []string
		for _, ev := range evs {
			if ev.Campaign != id {
				t.Fatalf("cross-campaign event on %s's stream: %+v", id, ev)
			}
			if ev.Type == "progress" || ev.Final {
				if ev.Covered < cov {
					t.Fatalf("streamed coverage regressed: %d after %d (%+v)", ev.Covered, cov, ev)
				}
				cov = ev.Covered
			}
			if ev.Type == "bug" {
				streamedBugs = append(streamedBugs, ev.BugID)
			}
		}

		var info CampaignInfo
		getJSON(t, ts.URL+"/v1/campaigns/"+id, http.StatusOK, &info)
		if info.Status != StatusDone {
			t.Fatalf("campaign %s: status %q after final event", id, info.Status)
		}
		if info.Covered != cov {
			t.Errorf("campaign %s: info coverage %d, streamed %d", id, info.Covered, cov)
		}
		if !reflect.DeepEqual(info.BugIDs, streamedBugs) &&
			!(len(info.BugIDs) == 0 && len(streamedBugs) == 0) {
			t.Errorf("campaign %s: info bugs %v, streamed %v", id, info.BugIDs, streamedBugs)
		}

		// Bit-identity with the plain library path.
		ref := directRun(t, specs[i])
		if info.Covered != ref.Covered {
			t.Errorf("campaign %s: service coverage %d, direct run %d", id, info.Covered, ref.Covered)
		}
		if refIDs := resultBugIDs(ref); !reflect.DeepEqual(info.BugIDs, refIDs) &&
			!(len(info.BugIDs) == 0 && len(refIDs) == 0) {
			t.Errorf("campaign %s: service bugs %v, direct run %v", id, info.BugIDs, refIDs)
		}
		if specs[i].Driver == "readelf" && len(info.BugIDs) == 0 {
			t.Errorf("readelf@%d found no bugs through the service", e2eBudget)
		}

		// A reconnect from the last seen seq replays nothing stale and
		// ends immediately on the final event.
		tail := streamEvents(t, ts.URL, id, final.Seq-1)
		if len(tail) != 1 || !tail[0].Final || tail[0].Seq != final.Seq {
			t.Errorf("campaign %s: resumed stream got %+v", id, tail)
		}
	}

	// Cancel → resume: a cancelled campaign is terminal, re-admitting it
	// finishes the identical campaign from its checkpoint.
	spec := Spec{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: e2eBudget}
	var info CampaignInfo
	postJSON(t, ts.URL+"/v1/campaigns", spec, http.StatusCreated, &info)
	id := info.ID
	// Wait for the first checkpoint (first progress event), then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/campaigns/"+id, http.StatusOK, &info)
		if info.Slices > 0 || info.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never ran a slice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var stResp map[string]Status
	postJSON(t, ts.URL+"/v1/campaigns/"+id+"/cancel", nil, http.StatusOK, &stResp)
	if _, err := svc.WaitTerminal(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id, http.StatusOK, &info)
	if info.Status != StatusCancelled && info.Status != StatusDone {
		t.Fatalf("after cancel: status %q", info.Status)
	}
	if info.Status == StatusCancelled {
		postJSON(t, ts.URL+"/v1/campaigns/"+id+"/resume", nil, http.StatusOK, &stResp)
		evs := streamEvents(t, ts.URL, id, 0)
		if got := evs[len(evs)-1].Status; got != StatusDone {
			t.Fatalf("resumed campaign ended %q", got)
		}
		getJSON(t, ts.URL+"/v1/campaigns/"+id, http.StatusOK, &info)
	}
	ref := directRun(t, spec)
	if info.Covered != ref.Covered || !reflect.DeepEqual(info.BugIDs, resultBugIDs(ref)) {
		t.Errorf("cancel→resume diverged: covered %d bugs %v, direct %d %v",
			info.Covered, info.BugIDs, ref.Covered, resultBugIDs(ref))
	}
}

// TestServiceValidation covers the API's error mapping: bad specs 400,
// unknown campaigns 404, quota rejections 429.
func TestServiceValidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.DefaultQuota = Quota{MaxLive: 1}
	_, ts := newTestServer(t, t.TempDir(), cfg)

	var errResp map[string]string
	postJSON(t, ts.URL+"/v1/campaigns", Spec{Driver: "no-such-driver", Budget: 1000},
		http.StatusBadRequest, &errResp)
	postJSON(t, ts.URL+"/v1/campaigns", Spec{Driver: "readelf"},
		http.StatusBadRequest, &errResp) // missing budget
	postJSON(t, ts.URL+"/v1/campaigns", Spec{Driver: "readelf", Budget: 1000, Tenant: "../evil"},
		http.StatusBadRequest, &errResp)
	postJSON(t, ts.URL+"/v1/campaigns", Spec{Driver: "readelf", Budget: 1000, Inject: "bogus-fault=1"},
		http.StatusBadRequest, &errResp)
	getJSON(t, ts.URL+"/v1/campaigns/c999999", http.StatusNotFound, &errResp)
	postJSON(t, ts.URL+"/v1/campaigns/c999999/cancel", nil, http.StatusNotFound, &errResp)

	// MaxLive=1: the second live campaign for one tenant is rejected 429.
	var info CampaignInfo
	postJSON(t, ts.URL+"/v1/campaigns",
		Spec{Tenant: "q", Driver: "readelf", Budget: e2eBudget}, http.StatusCreated, &info)
	postJSON(t, ts.URL+"/v1/campaigns",
		Spec{Tenant: "q", Driver: "readelf", Budget: e2eBudget}, http.StatusTooManyRequests, &errResp)
	// Another tenant is unaffected.
	postJSON(t, ts.URL+"/v1/campaigns",
		Spec{Tenant: "r", Driver: "gif2tiff", Budget: tinyBudget}, http.StatusCreated, &info)
}

// TestServiceSharedCachePersists checks the root's shared verdict cache
// spans campaigns and daemon generations: a second service over the
// same root preloads the verdicts the first one's campaigns flushed.
func TestServiceSharedCachePersists(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Submit(Spec{Driver: "readelf", Budget: tinyBudget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.WaitTerminal(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	flushed := svc.Stats().Shared.VerdictsFlushed
	if flushed == 0 {
		t.Fatal("campaign flushed no verdicts into the shared cache")
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, err := Open(dir, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close(context.Background())
	if loaded := svc2.Stats().Shared.VerdictsLoaded; loaded < flushed {
		t.Errorf("restarted root preloaded %d shared verdicts, first daemon flushed %d", loaded, flushed)
	}
	// The recovered terminal campaign is still visible with its results.
	got, err := svc2.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Errorf("recovered campaign status %q", got.Status)
	}
}
