// Package service turns the pbSE library into a long-running
// multi-tenant campaign daemon (DESIGN.md §13): campaigns are submitted
// over HTTP, multiplexed at scheduler-round granularity over one shared
// pool of slice workers, accounted against per-tenant quotas, streamed
// as events, and persisted through a store.Root so a killed daemon
// resumes every in-flight campaign from its last checkpoint.
//
// The serving model is deliberately built on the checkpoint/resume
// machinery instead of beside it: one "slice" of a campaign is a
// pbse.Handle.Step (resume → N scheduler rounds → checkpoint), so the
// unit of multiplexing is also the unit of durability. Preemption is
// free (the campaign is on disk between slices), crash recovery is the
// same code path as a normal slice, and a campaign's results are
// bit-identical to an uninterrupted pbse.Run no matter how its slices
// interleave with other tenants' work.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"pbse/internal/cluster"
	"pbse/internal/faultinject"
	"pbse/internal/pbse"
	"pbse/internal/store"
	"pbse/internal/supervise"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// Status is a campaign's lifecycle state. Transitions:
//
//	queued → running → checkpointed → running → … → done|failed|cancelled
//
// A campaign is "checkpointed" whenever it is runnable between slices —
// its entire state is a durable checkpoint on disk. Terminal campaigns
// stay registered (and their stores remain on disk); failed and
// cancelled ones can be re-admitted with Resume.
type Status string

const (
	StatusQueued       Status = "queued"
	StatusRunning      Status = "running"
	StatusCheckpointed Status = "checkpointed"
	StatusDone         Status = "done"
	StatusFailed       Status = "failed"
	StatusCancelled    Status = "cancelled"
)

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Spec is a campaign submission: what to run, for whom, and how hard.
type Spec struct {
	// ID is assigned by the service; client-supplied values are ignored.
	ID string `json:"id,omitempty"`
	// Tenant attributes the campaign for quota accounting ("default"
	// when empty).
	Tenant string `json:"tenant,omitempty"`
	// Driver selects a registered target (readelf, gif2tiff, …).
	Driver string `json:"driver"`
	// SeedSize is the generated seed length in bytes (default 256).
	SeedSize int `json:"seed_size,omitempty"`
	// BuggySeed uses the target's bug-triggering seed generator.
	BuggySeed bool `json:"buggy_seed,omitempty"`
	// RNGSeed drives seed generation and in-phase state selection; the
	// campaign is deterministic in (Driver, SeedSize, BuggySeed,
	// RNGSeed, Budget, TimePeriod, Workers, Deterministic).
	RNGSeed int64 `json:"rng_seed,omitempty"`
	// Budget is the virtual-time budget in instructions (required).
	Budget int64 `json:"budget"`
	// TimePeriod overrides the per-phase first-turn slice (0 = Budget/50).
	TimePeriod int64 `json:"time_period,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities
	// round-robin slice-by-slice.
	Priority int `json:"priority,omitempty"`
	// Workers is the intra-campaign worker count (default 1, the
	// single-threaded scheduler — service-level parallelism comes from
	// running many campaigns, and only Workers 1 or Deterministic
	// campaigns promise bit-identical crash recovery).
	Workers int `json:"workers,omitempty"`
	// Deterministic selects the round-barrier island scheduler for
	// Workers > 1.
	Deterministic bool `json:"deterministic,omitempty"`
	// Inject is a faultinject spec applied to this campaign's executors
	// and store writes (chaos testing; empty = none).
	Inject string `json:"inject,omitempty"`
}

// Quota bounds one tenant. Zero fields are unlimited.
type Quota struct {
	// MaxRunning caps the tenant's campaigns holding pool workers
	// simultaneously.
	MaxRunning int `json:"max_running,omitempty"`
	// MaxLive caps the tenant's non-terminal campaigns (admission).
	MaxLive int `json:"max_live,omitempty"`
	// MaxBudget caps the aggregate virtual-time budget of the tenant's
	// live campaigns (admission).
	MaxBudget int64 `json:"max_budget,omitempty"`
	// MaxWallSeconds caps the tenant's aggregate worker wall-clock
	// seconds; once exceeded, the tenant's queued campaigns fail at
	// their next slice grant instead of running.
	MaxWallSeconds float64 `json:"max_wall_seconds,omitempty"`
}

// Config tunes a Service.
type Config struct {
	// Pool is the shared slice-worker count (default GOMAXPROCS).
	// Negative means zero local workers — a dispatch-only coordinator
	// that runs slices exclusively on joined remote workers.
	Pool int
	// RoundsPerSlice is how many scheduler rounds one granted slice
	// runs before checkpointing and requeueing (default 1 — finest
	// multiplexing; raise it to amortize resume cost on big campaigns).
	RoundsPerSlice int64
	// DefaultQuota applies to every tenant.
	DefaultQuota Quota
	// Supervise, when non-nil, runs every campaign slice under the
	// fault-isolation supervisor (inert without faults, DESIGN.md §11).
	Supervise *supervise.Options
	// Cluster, when non-nil, runs this daemon as one node of a fleet
	// sharing the store root: campaigns are owned through fenced lease
	// files, expired owners' campaigns are adopted, and remote slice
	// workers may join over HTTP (DESIGN.md §14). Nil = single-node,
	// behavior identical to pre-cluster daemons.
	Cluster *ClusterConfig
	// Retain keeps at most this many terminal campaign trees on disk;
	// older ones are swept by the retention GC (0 = keep all).
	Retain int
	// RetainAge sweeps terminal campaign trees older than this
	// (0 = no age bound).
	RetainAge time.Duration
	// GCEvery is the retention sweep cadence (default 1m; the sweep
	// also runs once at Open).
	GCEvery time.Duration
	// SharedCacheMaxBytes bounds the shared verdict-cache log on disk;
	// flushes past the budget evict the oldest records (0 = unbounded).
	SharedCacheMaxBytes int64
	// Logf sinks service logs (default log.Printf).
	Logf func(format string, args ...any)
}

// Sentinel errors, mapped to HTTP statuses by the server layer.
var (
	ErrNotFound = fmt.Errorf("service: campaign not found")
	ErrQuota    = fmt.Errorf("service: tenant quota exceeded")
	ErrDraining = fmt.Errorf("service: daemon is draining")
	ErrNotOwned = fmt.Errorf("service: campaign is owned by another node")
)

// Campaign is one submitted campaign's runtime record. All mutable
// fields are guarded by the owning Service's mutex; handle and st are
// touched only by the single worker running the campaign's current
// slice (slice executions of one campaign are serialized by the queue).
type Campaign struct {
	Spec

	seq         int64
	status      Status
	slices      int64
	rounds      int64
	clock       int64
	covered     int
	bugIDs      []string
	bugSeen     map[string]bool
	errMsg      string
	wallSeconds float64
	cancel      bool

	handle *pbse.Handle
	st     *store.Store

	// Cluster state. owned reports this daemon is responsible for the
	// campaign (always true single-node); lease is the fencing token
	// backing that ownership; counted reports the campaign is included
	// in its tenant's live/budget accounting on this daemon.
	owned   bool
	counted bool
	lease   *cluster.Lease

	done chan struct{} // closed on terminal; replaced on re-admission
}

// tenantState is one tenant's accounting.
type tenantState struct {
	name        string
	quota       Quota
	running     int
	live        int
	budget      int64
	wallSeconds float64
	total       int64
	// maxRunning is the high-water mark of simultaneously running
	// campaigns — the witness the quota stress tests assert on.
	maxRunning int
}

// Service is the campaign daemon core: registry, queue, tenant
// accounting, shared worker pool, and event hub. HTTP lives in Server.
type Service struct {
	cfg  Config
	root *store.Root
	hub  *Hub

	// Cluster plumbing (nil / zero when Config.Cluster is nil).
	leases   *cluster.LeaseManager
	registry *cluster.Registry
	idSuffix string // node suffix appended to assigned campaign IDs

	mu         sync.Mutex
	cond       *sync.Cond
	camps      map[string]*Campaign
	order      []string
	tenants    map[string]*tenantState
	queue      jobQueue
	seqCtr     int64
	nextID     int64
	draining   bool
	adoptions  int64
	leasesLost int64
	gcSwept    int64

	wg sync.WaitGroup // slice grantees: local pool + remote dispatchers

	stop     chan struct{} // closed after the pool drains; ends bg loops
	stopOnce sync.Once
	bg       sync.WaitGroup // heartbeat, adoption, and GC loops
}

// Open starts a service over the store root at dir: recovers every
// campaign already on disk (re-queueing the in-flight ones) and spins
// up the worker pool.
func Open(dir string, cfg Config) (*Service, error) {
	if cfg.Pool == 0 {
		cfg.Pool = runtime.GOMAXPROCS(0)
	} else if cfg.Pool < 0 {
		cfg.Pool = 0 // dispatch-only: remote workers run every slice
	}
	if cfg.RoundsPerSlice <= 0 {
		cfg.RoundsPerSlice = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Cluster != nil {
		cc := cfg.Cluster.withDefaults()
		cfg.Cluster = &cc
	}
	root, err := store.OpenRoot(dir)
	if err != nil {
		return nil, err
	}
	if cfg.SharedCacheMaxBytes > 0 {
		if err := root.SetSharedCacheMaxBytes(cfg.SharedCacheMaxBytes); err != nil {
			return nil, err
		}
	}
	s := &Service{
		cfg:     cfg,
		root:    root,
		hub:     NewHub(),
		camps:   make(map[string]*Campaign),
		tenants: make(map[string]*tenantState),
		nextID:  1,
		stop:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cc := cfg.Cluster; cc != nil {
		s.idSuffix = sanitizeNodeID(cc.NodeID)
		s.leases = cluster.NewLeaseManager(cc.NodeID, cc.LeaseTTL)
		s.registry = cluster.NewRegistry(cc.Dispatch, s.onWorkerJoin, cfg.Logf)
	}
	// Preload the shared verdict cache at boot: every campaign will wire
	// to it anyway, and loading it eagerly both surfaces corruption at
	// startup and makes prior generations' verdicts visible in /statz
	// before the first slice runs.
	if _, err := root.SharedCache(); err != nil {
		return nil, err
	}
	if err := s.recoverCampaigns(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Pool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.leases != nil {
		s.bg.Add(2)
		go s.heartbeatLoop()
		go s.adoptLoop()
	}
	if cfg.Retain > 0 || cfg.RetainAge > 0 {
		s.sweepTerminal()
		s.bg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// Hub returns the event hub (for the HTTP layer and tests).
func (s *Service) Hub() *Hub { return s.hub }

// Root returns the persistence root.
func (s *Service) Root() *store.Root { return s.root }

// tenant returns (creating if needed) a tenant's accounting record.
// Caller holds s.mu.
func (s *Service) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name, quota: s.cfg.DefaultQuota}
		s.tenants[name] = t
	}
	return t
}

func (s *Service) nextSeq() int64 {
	s.seqCtr++
	return s.seqCtr
}

// Submit validates, admits (against the tenant's quotas), persists, and
// enqueues a campaign, returning its assigned ID and initial info.
func (s *Service) Submit(spec Spec) (*CampaignInfo, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if !store.ValidID(spec.Tenant) {
		return nil, fmt.Errorf("service: invalid tenant %q", spec.Tenant)
	}
	if _, err := targets.ByDriver(spec.Driver); err != nil {
		return nil, err
	}
	if spec.Budget <= 0 {
		return nil, fmt.Errorf("service: campaign budget must be positive")
	}
	if spec.SeedSize <= 0 {
		spec.SeedSize = 256
	}
	if spec.Workers <= 0 {
		spec.Workers = 1
	}
	if spec.Inject != "" {
		if _, err := faultinject.ParseSpec(spec.Inject, spec.RNGSeed); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	t := s.tenant(spec.Tenant)
	if q := t.quota; (q.MaxLive > 0 && t.live >= q.MaxLive) ||
		(q.MaxBudget > 0 && t.budget+spec.Budget > q.MaxBudget) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %s (live %d, budget in flight %d)", ErrQuota, t.name, t.live, t.budget)
	}
	spec.ID = fmt.Sprintf("c%06d", s.nextID)
	if s.idSuffix != "" {
		// Node-suffixed IDs keep concurrent daemons over one root from
		// colliding: each daemon's counter only names its own campaigns.
		spec.ID += "-" + s.idSuffix
	}
	s.nextID++
	c := &Campaign{
		Spec:    spec,
		status:  StatusQueued,
		bugSeen: make(map[string]bool),
		owned:   true,
		counted: true,
		done:    make(chan struct{}),
	}
	s.camps[c.ID] = c
	s.order = append(s.order, c.ID)
	t.total++
	t.live++
	t.budget += spec.Budget
	rec := c.record()
	s.mu.Unlock()

	// Make the submission durable before it becomes runnable: the job
	// record is what a restarted daemon recovers from, so it must be on
	// disk before any slice can run (and before the client is acked).
	// In cluster mode the lease is taken first — owning the directory
	// before job.json exists means no peer can adopt a half-submitted
	// campaign (the adoption sweep skips directories it cannot lease).
	_, err := s.root.Campaign(c.ID)
	if err == nil {
		err = s.acquireCampaignLease(c)
	}
	if err == nil {
		err = s.writeJob(rec)
		if err == nil {
			s.mu.Lock()
			if c.status == StatusQueued && !s.draining { // not cancelled in the window
				c.seq = s.nextSeq()
				s.queue.push(c)
				s.publishStatusLocked(c, "status")
				s.cond.Broadcast()
			}
			info := s.infoLocked(c)
			s.mu.Unlock()
			return info, nil
		}
	}
	s.cfg.Logf("service: submit %s: %v", c.ID, err)
	// Persistence failed: the campaign must not run half-durable.
	s.mu.Lock()
	s.finalizeLocked(c, StatusFailed, "submit persistence failed")
	rec = c.record()
	s.mu.Unlock()
	s.persistJobBestEffort(c, rec)
	s.releaseCampaign(c)
	return nil, fmt.Errorf("service: submit %s: persisting job record failed", c.ID)
}

// Cancel requests cancellation. A queued/checkpointed campaign is
// cancelled immediately; a running one finishes its current slice
// (checkpointing as always) and then lands in cancelled. Terminal
// campaigns are left as they are. Returns the campaign's status after
// the call.
func (s *Service) Cancel(id string) (Status, error) {
	s.mu.Lock()
	c := s.camps[id]
	if c == nil {
		s.mu.Unlock()
		return "", ErrNotFound
	}
	switch {
	case c.status.Terminal():
		st := c.status
		s.mu.Unlock()
		return st, nil
	case s.leases != nil && !c.owned:
		// Another node runs this campaign; cancelling its lease-fenced
		// state from here would be a write we are not entitled to.
		s.mu.Unlock()
		return "", fmt.Errorf("%w: cancel %s on its owner", ErrNotOwned, id)
	case c.status == StatusRunning:
		c.cancel = true
		s.mu.Unlock()
		return StatusRunning, nil
	default:
		s.queue.remove(c)
		c.cancel = true
		s.finalizeLocked(c, StatusCancelled, "")
		rec := c.record()
		s.mu.Unlock()
		s.persistJobBestEffort(c, rec)
		s.releaseCampaign(c)
		return StatusCancelled, nil
	}
}

// Resume re-admits a cancelled or failed campaign: it re-enters the
// queue (as checkpointed when its store holds a checkpoint, else
// queued) and counts against the tenant's quotas again. A done
// campaign stays done.
func (s *Service) Resume(id string) (Status, error) {
	s.mu.Lock()
	c := s.camps[id]
	s.mu.Unlock()
	if c == nil {
		return "", ErrNotFound
	}
	st, err := s.root.Campaign(id) // outside the lock: may create/load
	if err != nil {
		return "", err
	}
	// In cluster mode a terminal campaign's lease was released; take it
	// back before re-admitting (refusing if another node beat us to a
	// resurrection). Harmless when the re-admission is rejected below —
	// the heartbeat loop just keeps a lease nobody contends for.
	if err := s.acquireCampaignLease(c); err != nil {
		return "", fmt.Errorf("%w (resume: %v)", ErrNotOwned, err)
	}
	hasCk := st.HasCheckpoint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", ErrDraining
	}
	if !c.status.Terminal() {
		return c.status, nil
	}
	if c.status == StatusDone {
		return StatusDone, nil
	}
	t := s.tenant(c.Tenant)
	if q := t.quota; (q.MaxLive > 0 && t.live >= q.MaxLive) ||
		(q.MaxBudget > 0 && t.budget+c.Budget > q.MaxBudget) {
		return "", fmt.Errorf("%w: tenant %s", ErrQuota, t.name)
	}
	t.live++
	t.budget += c.Budget
	c.counted = true
	c.cancel = false
	c.errMsg = ""
	c.done = make(chan struct{})
	s.hub.Reopen(id)
	if hasCk {
		c.status = StatusCheckpointed
	} else {
		c.status = StatusQueued
	}
	c.seq = s.nextSeq()
	s.queue.push(c)
	s.publishStatusLocked(c, "status")
	s.cond.Broadcast()
	rec := c.record()
	go s.persistJobBestEffort(c, rec)
	return c.status, nil
}

// Drain stops granting slices, waits for in-flight slices to finish
// (each leaves a durable checkpoint), stops the background loops, and —
// in cluster mode — releases every owned lease so surviving daemons
// adopt the drained campaigns immediately instead of waiting out the
// TTL. Idempotent. After a drain the service accepts no new work;
// restart the daemon to resume.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.stopOnce.Do(func() { close(s.stop) })
		s.bg.Wait()
		s.releaseOwnedLeases()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Close drains the pool and closes the event hub (ending every stream).
func (s *Service) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.hub.Close()
	return err
}

// WaitTerminal blocks until the campaign reaches a terminal state (as
// of the current admission — a Resume re-arms it) or ctx ends.
func (s *Service) WaitTerminal(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	c := s.camps[id]
	if c == nil {
		s.mu.Unlock()
		return "", ErrNotFound
	}
	ch := c.done
	s.mu.Unlock()
	select {
	case <-ch:
		s.mu.Lock()
		defer s.mu.Unlock()
		return c.status, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// worker is one shared-pool slice runner.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		c := s.next()
		if c == nil {
			return
		}
		s.runSlice(c)
	}
}

// next blocks until a slice can be granted (or the service drains).
// Campaigns of wall-clock-exhausted tenants are failed here — the grant
// point is the only place the budget can be enforced without preempting
// a running slice.
func (s *Service) next() *Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		for {
			c := s.queue.popBest(func(c *Campaign) bool {
				t := s.tenant(c.Tenant)
				return t.quota.MaxWallSeconds > 0 && t.wallSeconds >= t.quota.MaxWallSeconds
			})
			if c == nil {
				break
			}
			s.finalizeLocked(c, StatusFailed, "tenant worker-seconds quota exhausted")
			rec := c.record()
			go func(c *Campaign, rec jobRecord) {
				s.persistJobBestEffort(c, rec)
				s.releaseCampaign(c)
			}(c, rec)
		}
		if c := s.queue.popBest(func(c *Campaign) bool {
			t := s.tenant(c.Tenant)
			return t.quota.MaxRunning <= 0 || t.running < t.quota.MaxRunning
		}); c != nil {
			t := s.tenant(c.Tenant)
			t.running++
			if t.running > t.maxRunning {
				t.maxRunning = t.running
			}
			c.status = StatusRunning
			s.publishStatusLocked(c, "status")
			return c
		}
		s.cond.Wait()
	}
}

// sliceOutcome is one executed slice's report, the same shape whether
// the slice ran on a local pool worker (runLocalSlice) or on a remote
// worker (cluster.SliceResult): campaign-cumulative totals as of the
// checkpoint the slice left behind, never per-slice deltas.
type sliceOutcome struct {
	err      error
	noop     bool // stepped an already-finished handle
	finished bool
	rounds   int64
	clock    int64
	covered  int
	bugIDs   []string
}

// runSlice executes one granted slice of c on this process and
// reconciles the outcome.
func (s *Service) runSlice(c *Campaign) {
	start := time.Now()
	out := s.runLocalSlice(c)
	s.reconcile(c, out, time.Since(start).Seconds())
}

// runLocalSlice advances c one slice in-process and shapes the result.
func (s *Service) runLocalSlice(c *Campaign) sliceOutcome {
	res, err := s.stepCampaign(c)
	if err != nil {
		return sliceOutcome{err: err}
	}
	if res == nil { // already-finished handle (cannot happen in normal flow)
		return sliceOutcome{noop: true}
	}
	out := sliceOutcome{
		finished: !res.Interrupted,
		clock:    res.Executor.Clock(),
		covered:  res.Covered,
	}
	for _, b := range res.Bugs {
		out.bugIDs = append(out.bugIDs, b.ID())
	}
	// Rounds live in the campaign's manifest (written at its barrier);
	// read while the campaign is quiescent, before taking the lock.
	if c.st != nil {
		if m, merr := c.st.ReadManifest(); merr == nil && m != nil {
			out.rounds = m.Rounds
		}
	}
	return out
}

// reconcile folds one slice outcome into the campaign: progress and bug
// events, terminal transitions, or requeueing with a fresh seq (the
// round-robin step). Terminal campaigns get a final fenced job-record
// write and release their lease.
func (s *Service) reconcile(c *Campaign, out sliceOutcome, elapsed float64) {
	s.mu.Lock()
	t := s.tenant(c.Tenant)
	t.running--
	t.wallSeconds += elapsed
	c.wallSeconds += elapsed
	c.slices++
	switch {
	case out.err != nil:
		s.finalizeLocked(c, StatusFailed, out.err.Error())
	case out.noop:
		s.finalizeLocked(c, StatusDone, "")
	default:
		c.clock = out.clock
		c.covered = out.covered
		if out.rounds > c.rounds {
			c.rounds = out.rounds
		}
		for _, id := range out.bugIDs {
			if !c.bugSeen[id] {
				c.bugSeen[id] = true
				c.bugIDs = append(c.bugIDs, id)
				s.hub.Publish(Event{
					Type: "bug", Campaign: c.ID, Tenant: c.Tenant,
					Clock: c.clock, Covered: c.covered, BugID: id, Bugs: len(c.bugIDs),
				})
			}
		}
		s.hub.Publish(Event{
			Type: "progress", Campaign: c.ID, Tenant: c.Tenant,
			Rounds: c.rounds, Clock: c.clock, Covered: c.covered, Bugs: len(c.bugIDs),
		})
		switch {
		case s.leases != nil && !c.owned:
			// The lease was lost mid-slice (the fenced writes may have
			// been rejected already). The campaign is not failed — it
			// continues on whichever node stole the lease; the adoption
			// sweep will mirror its progress from disk.
			s.finalizeLocked(c, StatusFailed, "campaign lease lost; another node will adopt it")
		case out.finished:
			s.finalizeLocked(c, StatusDone, "")
		case c.cancel:
			s.finalizeLocked(c, StatusCancelled, "")
		default:
			c.status = StatusCheckpointed
			c.seq = s.nextSeq()
			s.queue.push(c)
			s.publishStatusLocked(c, "status")
		}
	}
	rec := c.record()
	terminal := c.status.Terminal()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.persistJobBestEffort(c, rec)
	if terminal {
		s.releaseCampaign(c)
	}
}

// stepCampaign builds the campaign's handle on first use and advances
// it one slice. A panic escaping the engine's own containment fails the
// campaign, never the pool worker.
func (s *Service) stepCampaign(c *Campaign) (res *pbse.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: campaign slice panicked: %v", r)
		}
	}()
	if c.handle == nil {
		if err := s.buildHandle(c); err != nil {
			return nil, err
		}
	}
	return c.handle.Step(s.cfg.RoundsPerSlice)
}

// buildHandle materializes the campaign: target program, deterministic
// seed, per-campaign store wired to the root's shared verdict cache,
// optional fault injection, optional supervision.
func (s *Service) buildHandle(c *Campaign) error {
	h, st, err := buildSpecHandle(s.root, c.Spec, s.cfg)
	if err != nil {
		return err
	}
	c.handle = h
	c.st = st
	return nil
}

// buildSpecHandle materializes a campaign spec into a resumable handle
// over its store in root. The coordinator's local pool and remote slice
// workers both build handles through this one function, so a slice
// produces bit-identical results no matter which node runs it.
func buildSpecHandle(root *store.Root, spec Spec, cfg Config) (*pbse.Handle, *store.Store, error) {
	tgt, err := targets.ByDriver(spec.Driver)
	if err != nil {
		return nil, nil, err
	}
	prog, err := tgt.Build()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(spec.RNGSeed))
	var seed []byte
	if spec.BuggySeed {
		if tgt.GenBuggySeed == nil {
			return nil, nil, fmt.Errorf("service: target %s has no buggy seed generator", spec.Driver)
		}
		seed = tgt.GenBuggySeed(rng)
	} else {
		seed = tgt.GenSeed(rng, spec.SeedSize)
	}
	st, err := root.Campaign(spec.ID)
	if err != nil {
		return nil, nil, err
	}
	exOpts := symex.Options{InputSize: len(seed)}
	if spec.Inject != "" {
		inj, err := faultinject.ParseSpec(spec.Inject, spec.RNGSeed)
		if err != nil {
			return nil, nil, err
		}
		exOpts.FaultInjector = inj
	}
	opts := pbse.Options{
		Budget:        spec.Budget,
		TimePeriod:    spec.TimePeriod,
		Seed:          spec.RNGSeed,
		Workers:       spec.Workers,
		Deterministic: spec.Deterministic,
		Store:         st,
		StoreLabel:    spec.Driver,
	}
	if cfg.Supervise != nil {
		so := *cfg.Supervise
		so.Enabled = true
		so.Seed = spec.RNGSeed
		opts.Supervise = &so
	}
	h, err := pbse.NewHandle(prog, seed, opts, exOpts)
	if err != nil {
		return nil, nil, err
	}
	return h, st, nil
}

// finalizeLocked moves c to a terminal state, releases its tenant
// accounting (when this daemon was counting it), publishes the final
// event, and wakes waiters. Caller holds s.mu.
func (s *Service) finalizeLocked(c *Campaign, status Status, errMsg string) {
	if c.status.Terminal() {
		return // already finalized (e.g. lease loss raced the slice)
	}
	if c.counted {
		t := s.tenant(c.Tenant)
		t.live--
		t.budget -= c.Budget
		c.counted = false
	}
	c.status = status
	c.errMsg = errMsg
	s.hub.Publish(Event{
		Type: "done", Campaign: c.ID, Tenant: c.Tenant, Status: status,
		Rounds: c.rounds, Clock: c.clock, Covered: c.covered, Bugs: len(c.bugIDs),
		Error: errMsg, Final: true,
	})
	close(c.done)
}

// publishStatusLocked emits a lifecycle transition event. Caller holds
// s.mu.
func (s *Service) publishStatusLocked(c *Campaign, typ string) {
	s.hub.Publish(Event{
		Type: typ, Campaign: c.ID, Tenant: c.Tenant, Status: c.status,
		Rounds: c.rounds, Clock: c.clock, Covered: c.covered, Bugs: len(c.bugIDs),
	})
}

// jobRecord is the durable per-campaign service state (job.json in the
// campaign's store directory): the spec plus the terminal-or-resumable
// snapshot a restarted daemon recovers from.
type jobRecord struct {
	Spec        Spec     `json:"spec"`
	Status      Status   `json:"status"`
	Slices      int64    `json:"slices"`
	Rounds      int64    `json:"rounds"`
	Clock       int64    `json:"clock"`
	Covered     int      `json:"covered"`
	BugIDs      []string `json:"bug_ids,omitempty"`
	Error       string   `json:"error,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
}

// record snapshots c for persistence. Caller holds s.mu.
func (c *Campaign) record() jobRecord {
	return jobRecord{
		Spec:        c.Spec,
		Status:      c.status,
		Slices:      c.slices,
		Rounds:      c.rounds,
		Clock:       c.clock,
		Covered:     c.covered,
		BugIDs:      append([]string(nil), c.bugIDs...),
		Error:       c.errMsg,
		WallSeconds: c.wallSeconds,
	}
}

func (s *Service) jobPath(id string) string {
	return filepath.Join(s.root.CampaignDir(id), "job.json")
}

func (s *Service) writeJob(rec jobRecord) error {
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return store.AtomicWriteFile(s.jobPath(rec.Spec.ID), append(data, '\n'))
}

func (s *Service) writeJobBestEffort(rec jobRecord) {
	if err := s.writeJob(rec); err != nil {
		s.cfg.Logf("service: persisting job %s: %v", rec.Spec.ID, err)
	}
}

// persistJob writes c's job record, fenced by c's lease in cluster
// mode: a daemon that lost the campaign refuses the write instead of
// clobbering the new owner's record. (The check-then-write window is
// the same one the store fence accepts — see DESIGN.md §14.)
func (s *Service) persistJob(c *Campaign, rec jobRecord) error {
	if s.leases != nil {
		s.mu.Lock()
		l, owned := c.lease, c.owned
		s.mu.Unlock()
		if !owned || l == nil {
			return fmt.Errorf("service: %s: job record write without lease ownership", rec.Spec.ID)
		}
		if err := s.leases.Fence(l)(); err != nil {
			return err
		}
	}
	return s.writeJob(rec)
}

func (s *Service) persistJobBestEffort(c *Campaign, rec jobRecord) {
	if err := s.persistJob(c, rec); err != nil {
		s.cfg.Logf("service: persisting job %s: %v", rec.Spec.ID, err)
	}
}

// recoverCampaigns walks the root's campaign directories and restores
// the registry: terminal campaigns are re-registered as records,
// in-flight ones re-enter the queue (status checkpointed when their
// store holds a checkpoint) and resume at their next granted slice. A
// directory without a readable job record is logged and skipped.
func (s *Service) recoverCampaigns() error {
	ids, err := s.root.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		data, err := os.ReadFile(s.jobPath(id))
		if err != nil {
			s.cfg.Logf("service: recovery: skipping %s: %v", id, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			s.cfg.Logf("service: recovery: skipping %s: %v", id, err)
			continue
		}
		rec.Spec.ID = id
		c := &Campaign{
			Spec:        rec.Spec,
			status:      rec.Status,
			slices:      rec.Slices,
			rounds:      rec.Rounds,
			clock:       rec.Clock,
			covered:     rec.Covered,
			bugIDs:      rec.BugIDs,
			bugSeen:     make(map[string]bool),
			errMsg:      rec.Error,
			wallSeconds: rec.WallSeconds,
			done:        make(chan struct{}),
		}
		for _, b := range rec.BugIDs {
			c.bugSeen[b] = true
		}
		var n int64
		if _, err := fmt.Sscanf(id, "c%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		t := s.tenant(c.Tenant)
		t.total++
		t.wallSeconds += rec.WallSeconds
		s.camps[id] = c
		s.order = append(s.order, id)
		if c.status.Terminal() {
			close(c.done)
			continue
		}
		// In-flight: re-admit. The slice that was running when the
		// daemon died never updated the record; its work since the last
		// checkpoint is simply re-executed (bit-identically).
		st, err := s.root.Campaign(id)
		if err != nil {
			s.cfg.Logf("service: recovery: %s: %v", id, err)
			s.finalizeLocked(c, StatusFailed, "recovery: "+err.Error())
			continue
		}
		if err := s.acquireCampaignLease(c); err != nil {
			// A live peer owns this campaign: register it as observed
			// (the adoption sweep mirrors its progress and will adopt
			// it if that owner ever lapses).
			s.cfg.Logf("service: recovery: %s owned elsewhere: %v", id, err)
			continue
		}
		c.counted = true
		t.live++
		t.budget += c.Budget
		if st.HasCheckpoint() {
			c.status = StatusCheckpointed
		} else {
			c.status = StatusQueued
		}
		c.seq = s.nextSeq()
		s.queue.push(c)
		s.publishStatusLocked(c, "recovered")
	}
	if n := s.queue.len(); n > 0 {
		s.cfg.Logf("service: recovered %d in-flight campaign(s)", n)
	}
	return nil
}

// CampaignInfo is a campaign's externally visible state.
type CampaignInfo struct {
	Spec
	Status      Status   `json:"status"`
	Slices      int64    `json:"slices"`
	Rounds      int64    `json:"rounds"`
	Clock       int64    `json:"clock"`
	Covered     int      `json:"covered"`
	BugIDs      []string `json:"bug_ids,omitempty"`
	Error       string   `json:"error,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
	// Owned reports this daemon holds the campaign's lease (always
	// true single-node; false for campaigns mirrored from peers).
	Owned bool `json:"owned"`
}

// infoLocked snapshots c. Caller holds s.mu.
func (s *Service) infoLocked(c *Campaign) *CampaignInfo {
	return &CampaignInfo{
		Spec:        c.Spec,
		Status:      c.status,
		Slices:      c.slices,
		Rounds:      c.rounds,
		Clock:       c.clock,
		Covered:     c.covered,
		BugIDs:      append([]string(nil), c.bugIDs...),
		Error:       c.errMsg,
		WallSeconds: c.wallSeconds,
		Owned:       c.owned,
	}
}

// Info returns one campaign's state.
func (s *Service) Info(id string) (*CampaignInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.camps[id]
	if c == nil {
		return nil, ErrNotFound
	}
	return s.infoLocked(c), nil
}

// List returns every campaign (optionally one tenant's) in submission
// order.
func (s *Service) List(tenant string) []*CampaignInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*CampaignInfo, 0, len(s.order))
	for _, id := range s.order {
		c := s.camps[id]
		if tenant != "" && c.Tenant != tenant {
			continue
		}
		out = append(out, s.infoLocked(c))
	}
	return out
}

// TenantInfo is a tenant's externally visible accounting.
type TenantInfo struct {
	Name        string  `json:"name"`
	Quota       Quota   `json:"quota"`
	Running     int     `json:"running"`
	Live        int     `json:"live"`
	Budget      int64   `json:"budget_in_flight"`
	WallSeconds float64 `json:"wall_seconds"`
	Total       int64   `json:"campaigns_total"`
	MaxRunning  int     `json:"max_running_observed"`
}

// Tenant returns one tenant's accounting (zero record for a tenant the
// service has not seen).
func (s *Service) Tenant(name string) *TenantInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		return &TenantInfo{Name: name, Quota: s.cfg.DefaultQuota}
	}
	return &TenantInfo{
		Name: t.name, Quota: t.quota, Running: t.running, Live: t.live,
		Budget: t.budget, WallSeconds: t.wallSeconds, Total: t.total,
		MaxRunning: t.maxRunning,
	}
}

// Tenants lists every tenant seen, sorted by name.
func (s *Service) Tenants() []*TenantInfo {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]*TenantInfo, 0, len(names))
	for _, n := range names {
		out = append(out, s.Tenant(n))
	}
	return out
}

// Stats is the daemon-level snapshot served by /statz.
type Stats struct {
	Pool      int         `json:"pool"`
	Queued    int         `json:"queued"`
	Running   int         `json:"running"`
	Live      int         `json:"live"`
	Campaigns int         `json:"campaigns"`
	Tenants   int         `json:"tenants"`
	Draining  bool        `json:"draining"`
	GCSwept   int64       `json:"gc_swept"`
	Shared    store.Stats `json:"shared_store"`
}

// Stats snapshots the daemon.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Pool:      s.cfg.Pool,
		Queued:    s.queue.len(),
		Campaigns: len(s.camps),
		Tenants:   len(s.tenants),
		Draining:  s.draining,
		GCSwept:   s.gcSwept,
		Shared:    s.root.SharedStats(),
	}
	for _, t := range s.tenants {
		st.Running += t.running
		st.Live += t.live
	}
	return st
}
