package service

// The event hub is the daemon's streaming surface: every campaign owns
// an append-only event log, and any number of subscribers replay it
// from an arbitrary sequence number and then follow live appends. A
// subscriber that joins late, or reconnects after a daemon restart,
// sees exactly the same prefix any earlier subscriber saw for the
// rounds this process executed — the log is the single source of the
// stream, never per-subscriber state.
//
// Subscribers buffer unboundedly (a pending slice, not a fixed channel)
// so a slow SSE client can never force the scheduler to drop a bug
// event; the logs themselves are capped per campaign by keeping every
// bug/terminal event and compacting the oldest progress events first.

import (
	"fmt"
	"sync"
)

// Event is one entry in a campaign's event stream.
type Event struct {
	// Seq is the 1-based position in the campaign's event log.
	Seq int64 `json:"seq"`
	// Type is one of "status", "progress", "bug", "done".
	Type     string `json:"type"`
	Campaign string `json:"campaign"`
	Tenant   string `json:"tenant"`
	// Status is the campaign status after this event (status/done).
	Status Status `json:"status,omitempty"`
	// Rounds/Clock/Covered/Bugs snapshot campaign progress (progress,
	// done). Covered only ever grows — streamed coverage is monotonic.
	Rounds  int64 `json:"rounds,omitempty"`
	Clock   int64 `json:"clock,omitempty"`
	Covered int   `json:"covered,omitempty"`
	Bugs    int   `json:"bugs,omitempty"`
	// BugID is the stable reproducer ID of a newly found bug (bug).
	BugID string `json:"bug_id,omitempty"`
	// Error carries the failure cause (done with status "failed").
	Error string `json:"error,omitempty"`
	// Final marks the campaign's last event; the stream ends after it.
	Final bool `json:"final,omitempty"`
}

// maxLogEvents caps one campaign's in-memory log. Compaction drops the
// oldest non-bug, non-final events; at the service's round granularity
// a campaign emits a handful of events per slice, so the cap is only
// ever reached by pathological submit loops.
const maxLogEvents = 4096

// Sub is one live subscription. Receive on C (a level-triggered signal),
// then Drain the pending events.
type Sub struct {
	hub      *Hub
	campaign string
	id       int

	C chan struct{}

	mu      sync.Mutex
	pending []Event
	closed  bool
}

// Hub is the per-daemon event fan-out.
type Hub struct {
	mu     sync.Mutex
	logs   map[string][]Event
	seqs   map[string]int64
	subs   map[string]map[int]*Sub
	nextID int
	closed bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		logs: make(map[string][]Event),
		seqs: make(map[string]int64),
		subs: make(map[string]map[int]*Sub),
	}
}

// Publish appends ev to its campaign's log (assigning ev.Seq) and wakes
// every subscriber of that campaign.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seqs[ev.Campaign]++
	ev.Seq = h.seqs[ev.Campaign]
	log := append(h.logs[ev.Campaign], ev)
	if len(log) > maxLogEvents {
		log = compactLog(log)
	}
	h.logs[ev.Campaign] = log
	for _, sub := range h.subs[ev.Campaign] {
		sub.push(ev)
	}
}

// compactLog halves a log by dropping its oldest droppable (non-bug,
// non-final) events.
func compactLog(log []Event) []Event {
	drop := len(log) / 2
	out := log[:0]
	for _, ev := range log {
		if drop > 0 && ev.Type != "bug" && !ev.Final {
			drop--
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Reopen clears the Final marker from a campaign's retained log when
// the campaign is re-admitted (Resume): the old terminal event stays as
// history, but no longer ends replayed streams — a subscriber replaying
// from 0 reads the whole story through to the new terminal event.
func (h *Hub) Reopen(campaign string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	log := h.logs[campaign]
	for i := range log {
		log[i].Final = false
	}
}

// Log returns a copy of a campaign's event log (its retained prefix).
func (h *Hub) Log(campaign string) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.logs[campaign]...)
}

// Subscribe registers a live subscriber for one campaign and returns it
// together with the retained log events with Seq > from (the replay
// prefix). The registration and the replay snapshot are atomic: no
// event can fall between them.
func (h *Hub) Subscribe(campaign string, from int64) (*Sub, []Event, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, fmt.Errorf("service: hub closed")
	}
	var replay []Event
	for _, ev := range h.logs[campaign] {
		if ev.Seq > from {
			replay = append(replay, ev)
		}
	}
	h.nextID++
	sub := &Sub{hub: h, campaign: campaign, id: h.nextID, C: make(chan struct{}, 1)}
	if h.subs[campaign] == nil {
		h.subs[campaign] = make(map[int]*Sub)
	}
	h.subs[campaign][sub.id] = sub
	return sub, replay, nil
}

// Close wakes and closes every subscriber; further Publishes are
// dropped. Called when the daemon drains.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for _, subs := range h.subs {
		for _, sub := range subs {
			sub.close()
		}
	}
	h.subs = make(map[string]map[int]*Sub)
}

func (s *Sub) push(ev Event) {
	s.mu.Lock()
	s.pending = append(s.pending, ev)
	s.mu.Unlock()
	select {
	case s.C <- struct{}{}:
	default:
	}
}

func (s *Sub) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.mu.Unlock()
		select {
		case s.C <- struct{}{}:
		default:
		}
		return
	}
	s.mu.Unlock()
}

// Drain returns and clears the pending events, plus whether the
// subscription has been closed by the hub.
func (s *Sub) Drain() (evs []Event, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs = s.pending
	s.pending = nil
	return evs, s.closed
}

// Close unregisters the subscription.
func (s *Sub) Close() {
	h := s.hub
	h.mu.Lock()
	if subs := h.subs[s.campaign]; subs != nil {
		delete(subs, s.id)
	}
	h.mu.Unlock()
	s.close()
}
