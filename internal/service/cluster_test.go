package service

// Cluster-mode tests: failover determinism (SIGKILL the owning daemon
// mid-campaign, a second daemon over the same root adopts and finishes
// bit-identically), remote slice-worker dispatch (coordinator with no
// local pool, all slices over HTTP, still bit-identical), write fencing
// against stale owners, and the retention GC's safety rails.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"pbse/internal/cluster"
	"pbse/internal/store"
)

// testClusterConfig is testConfig plus fleet membership with timings
// tight enough for failover tests: leases expire 1.5s after the owner
// goes silent and peers sweep for adoptable campaigns every 250ms.
func testClusterConfig(pool int, node string) Config {
	cfg := testConfig(pool)
	cfg.Cluster = &ClusterConfig{
		NodeID:         node,
		LeaseTTL:       1500 * time.Millisecond,
		HeartbeatEvery: 300 * time.Millisecond,
		AdoptEvery:     250 * time.Millisecond,
	}
	return cfg
}

// failoverSpecs are the campaigns in flight when the owning daemon is
// killed: one plain coverage run, one with seeded bugs.
func failoverSpecs() []Spec {
	return []Spec{
		{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: 60_000},
		{Tenant: "bob", Driver: "readelf", BuggySeed: true, RNGSeed: 3, Budget: 60_000},
	}
}

// TestDaemonKillFailoverDeterminism is the cluster acceptance test:
// daemon A (cluster node "victim") is SIGKILLed mid-campaign; daemon B
// ("survivor") over the same root steals the expired leases, adopts the
// campaigns, and must finish them bit-identically — coverage, virtual
// clock, rounds, and bug IDs all equal to an uninterrupted run.
func TestDaemonKillFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster failover matrix skipped in -short mode")
	}
	specs := failoverSpecs()

	// References: same cluster config (so campaign IDs carry the same
	// "-victim" suffix), run to completion undisturbed over its own root.
	refs := make([]*CampaignInfo, len(specs))
	refSvc, err := Open(t.TempDir(), testClusterConfig(2, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		info, err := refSvc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := refSvc.WaitTerminal(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
		if refs[i], err = refSvc.Info(info.ID); err != nil {
			t.Fatal(err)
		}
		if refs[i].Status != StatusDone {
			t.Fatalf("reference campaign %s ended %s", info.ID, refs[i].Status)
		}
	}
	if err := refSvc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Victim: re-exec this binary as cluster node "victim"; it submits
	// the same specs and SIGKILLs itself once both are checkpointed and
	// still running — leases left live on disk, expiring on the TTL.
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDaemonKillFailoverVictim$", "-test.v")
	cmd.Env = append(os.Environ(), "PBSE_CLUSTER_VICTIM=1", "PBSE_CLUSTER_ROOT="+dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.ExitCode() != -1 {
		t.Fatalf("victim did not die on a signal (err=%v):\n%s", err, out)
	}

	// Survivor: a different node over the carcass. Recovery either
	// mirrors the campaigns (lease still live) and adopts them when it
	// expires, or — if the TTL already lapsed — takes them at open.
	svc, err := Open(dir, testClusterConfig(2, "survivor"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	ids := []string{"c000001-victim", "c000002-victim"}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, id := range ids {
		if _, err := svc.WaitTerminal(ctx, id); err != nil {
			t.Fatalf("adopted campaign %s never finished: %v", id, err)
		}
		got, err := svc.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		ref := refs[i]
		if got.Status != StatusDone {
			t.Errorf("campaign %s ended %s (%s)", id, got.Status, got.Error)
		}
		if got.Covered != ref.Covered {
			t.Errorf("campaign %s coverage diverged: failover %d, reference %d", id, got.Covered, ref.Covered)
		}
		if got.Clock != ref.Clock {
			t.Errorf("campaign %s clock diverged: failover %d, reference %d", id, got.Clock, ref.Clock)
		}
		if got.Rounds != ref.Rounds {
			t.Errorf("campaign %s rounds diverged: failover %d, reference %d", id, got.Rounds, ref.Rounds)
		}
		if !reflect.DeepEqual(got.BugIDs, ref.BugIDs) {
			t.Errorf("campaign %s bug IDs diverged:\n failover  %v\n reference %v", id, got.BugIDs, ref.BugIDs)
		}
	}
}

// TestDaemonKillFailoverVictim is the subprocess body for
// TestDaemonKillFailoverDeterminism: it submits the failover specs as
// cluster node "victim" and SIGKILLs itself once every campaign has a
// durable checkpoint and none has finished.
func TestDaemonKillFailoverVictim(t *testing.T) {
	if os.Getenv("PBSE_CLUSTER_VICTIM") != "1" {
		t.Skip("subprocess body for TestDaemonKillFailoverDeterminism")
	}
	svc, err := Open(os.Getenv("PBSE_CLUSTER_ROOT"), testClusterConfig(2, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range failoverSpecs() {
		info, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, id := range ids {
			st, err := svc.Root().Campaign(id)
			if err != nil {
				t.Fatal(err)
			}
			info, err := svc.Info(id)
			if err != nil {
				t.Fatal(err)
			}
			if info.Status.Terminal() {
				t.Fatalf("campaign %s finished before the kill — budget too small", id)
			}
			if st.HasCheckpoint() {
				ready++
			}
		}
		if ready == len(ids) {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("campaigns never all checkpointed")
}

// TestRemoteWorkerDispatchDeterminism runs a campaign on a coordinator
// with NO local pool — every slice executes on a remote worker over
// HTTP against the same root — and requires the result bit-identical to
// a local-pool run of the same spec.
func TestRemoteWorkerDispatchDeterminism(t *testing.T) {
	spec := Spec{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: e2eBudget}

	// Reference: same node ID (same campaign ID), local pool.
	refSvc, err := Open(t.TempDir(), testClusterConfig(2, "coord"))
	if err != nil {
		t.Fatal(err)
	}
	refInfo, err := refSvc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.WaitTerminal(context.Background(), refInfo.ID); err != nil {
		t.Fatal(err)
	}
	ref, err := refSvc.Info(refInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := refSvc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ref.Status != StatusDone {
		t.Fatalf("reference ended %s (%s)", ref.Status, ref.Error)
	}

	// Coordinator: Pool -1 = dispatch-only. Long worker TTL so the
	// in-process worker never goes stale mid-test.
	dir := t.TempDir()
	cfg := testClusterConfig(-1, "coord")
	cfg.Cluster.Dispatch = cluster.DispatchOptions{WorkerTTL: 10 * time.Minute}
	svc, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	// Worker: its own Root handle over the same directory (as a separate
	// process would have), served over httptest.
	wroot, err := store.OpenRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	sx := NewSliceExec(wroot, Config{Logf: func(string, ...any) {}})
	w := &cluster.Worker{ID: "w1", Exec: sx.Exec, Concurrency: 2}
	ws := httptest.NewServer(w.Handler())
	defer ws.Close()
	if _, err := svc.Registry().Join("w1", ws.URL, 2); err != nil {
		t.Fatal(err)
	}

	info, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := svc.WaitTerminal(ctx, info.ID); err != nil {
		t.Fatalf("remote-dispatched campaign never finished: %v", err)
	}
	got, err := svc.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != ref.ID {
		t.Fatalf("campaign IDs diverged: %s vs %s", got.ID, ref.ID)
	}
	if got.Status != StatusDone {
		t.Errorf("remote campaign ended %s (%s)", got.Status, got.Error)
	}
	if got.Covered != ref.Covered || got.Clock != ref.Clock || got.Rounds != ref.Rounds {
		t.Errorf("remote run diverged: covered/clock/rounds %d/%d/%d, reference %d/%d/%d",
			got.Covered, got.Clock, got.Rounds, ref.Covered, ref.Clock, ref.Rounds)
	}
	if !reflect.DeepEqual(got.BugIDs, ref.BugIDs) {
		t.Errorf("remote bug IDs diverged:\n remote    %v\n reference %v", got.BugIDs, ref.BugIDs)
	}
	if n, _ := w.Executed(); n == 0 {
		t.Error("worker executed no slices — campaign ran somewhere else?")
	}
	if st := svc.Registry().Stats(); st.Completes == 0 {
		t.Errorf("registry recorded no completed dispatches: %+v", st)
	}
	cs := svc.ClusterStats()
	if !cs.Enabled || cs.NodeID != "coord" || len(cs.Workers) != 1 {
		t.Errorf("cluster stats off: %+v", cs)
	}
}

// TestClusterFencingStaleOwnerRejected: a daemon that silently loses
// its lease (here: never renewed, stolen by an intruder) must have its
// checkpoint-class writes rejected by the fence, and the campaign fails
// locally instead of clobbering the successor's state.
func TestClusterFencingStaleOwnerRejected(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cluster = &ClusterConfig{
		NodeID:         "stale",
		LeaseTTL:       300 * time.Millisecond,
		HeartbeatEvery: time.Hour, // never renews: the lease is left to expire
		AdoptEvery:     time.Hour,
	}
	svc, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	info, err := svc.Submit(Spec{Tenant: "alice", Driver: "readelf", SeedSize: 256, RNGSeed: 42, Budget: 500_000})
	if err != nil {
		t.Fatal(err)
	}

	// Intruder: steal the lease as soon as it expires.
	intruder := cluster.NewLeaseManager("intruder", 10*time.Second)
	leasePath := filepath.Join(svc.Root().CampaignDir(info.ID), cluster.LeaseFileName)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := intruder.Acquire(leasePath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("intruder never managed to steal the lease")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The stale owner's next checkpoint write must bounce off the fence
	// and fail the campaign locally.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitTerminal(ctx, info.ID); err != nil {
		t.Fatalf("stale owner's campaign never terminated: %v", err)
	}
	got, err := svc.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusFailed {
		t.Fatalf("stale owner's campaign ended %s, want failed (%s)", got.Status, got.Error)
	}
	st, err := svc.Root().Campaign(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().FenceRejections == 0 {
		t.Error("no write was fence-rejected — the stale owner kept writing")
	}
}

// TestRetentionSweep: -retain/-retain-age remove only terminal,
// unleased campaign trees, newest kept first.
func TestRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		info, err := svc.Submit(Spec{Tenant: "alice", Driver: "gif2tiff", RNGSeed: int64(i + 1), Budget: tinyBudget})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.WaitTerminal(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
		// Job-record mtimes order the retention window.
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Retain the newest 1 of the 3 terminal campaigns: the sweep at open
	// removes the two oldest.
	cfg := testConfig(1)
	cfg.Retain = 1
	svc2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := svc2.Root().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "c000003" {
		t.Fatalf("after retain=1 sweep: kept %v, want [c000003]", ids)
	}
	if got := svc2.Stats().GCSwept; got != 2 {
		t.Errorf("gc_swept = %d, want 2", got)
	}
	if infos := svc2.List(""); len(infos) != 1 {
		t.Errorf("registry kept %d campaigns, want 1: %+v", len(infos), infos)
	}

	// Safety rails: a non-terminal record and a terminal-but-leased one
	// survive an age sweep that removes everything else.
	if _, err := svc2.root.Campaign("cflight"); err != nil {
		t.Fatal(err)
	}
	if err := svc2.writeJob(jobRecord{Spec: Spec{ID: "cflight", Tenant: "t", Driver: "readelf", Budget: 1000}, Status: StatusCheckpointed}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.root.Campaign("cleased"); err != nil {
		t.Fatal(err)
	}
	if err := svc2.writeJob(jobRecord{Spec: Spec{ID: "cleased", Tenant: "t", Driver: "readelf", Budget: 1000}, Status: StatusDone}); err != nil {
		t.Fatal(err)
	}
	peer := cluster.NewLeaseManager("peer", time.Hour)
	if _, err := peer.Acquire(filepath.Join(svc2.Root().CampaignDir("cleased"), cluster.LeaseFileName)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	svc2.cfg.Retain = 0
	svc2.cfg.RetainAge = 5 * time.Millisecond
	svc2.sweepTerminal()
	ids, err = svc2.Root().List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cflight", "cleased"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("age sweep kept %v, want %v (non-terminal and leased trees must survive)", ids, want)
	}
	if err := svc2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClusterEndpointsDisabled: the cluster routes exist on every
// daemon but refuse politely without -cluster.
func TestClusterEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), testConfig(1))
	resp, err := http.Post(ts.URL+"/cluster/join", "application/json",
		strings.NewReader(`{"id":"w1","addr":"http://x","slots":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("join on non-cluster daemon: status %d, want 503", resp.StatusCode)
	}
	var cs ClusterStats
	getJSON(t, ts.URL+"/cluster/statz", 200, &cs)
	if cs.Enabled {
		t.Error("cluster stats claim enabled on a single-node daemon")
	}
}
