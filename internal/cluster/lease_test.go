package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Lease contention wall (ISSUE 10 satellite): races have exactly one
// winner, expired leases are stolen with a bumped epoch, fencing
// rejects a stale owner, heartbeats keep a slow slice alive, and
// epoch monotonicity survives release/steal churn.

func leasePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaigns", "c000001", LeaseFileName)
}

// TestLeaseAcquireRace races many managers (distinct owners, one
// path, fresh file) and requires exactly one winner, everyone else
// ErrHeld.
func TestLeaseAcquireRace(t *testing.T) {
	path := leasePath(t)
	const racers = 16
	var wg sync.WaitGroup
	wins := make([]bool, racers)
	errs := make([]error, racers)
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		i := i
		m := NewLeaseManager(stringsRepeat("node", i), time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := m.Acquire(path)
			if err == nil {
				wins[i] = true
			} else {
				errs[i] = err
			}
		}()
	}
	close(start)
	wg.Wait()
	winners := 0
	for i := range wins {
		if wins[i] {
			winners++
		} else if !errors.Is(errs[i], ErrHeld) {
			t.Errorf("racer %d lost with unexpected error: %v", i, errs[i])
		}
	}
	if winners != 1 {
		t.Fatalf("acquire race had %d winners, want exactly 1", winners)
	}
	li, err := ReadLease(path)
	if err != nil || li == nil {
		t.Fatalf("no lease on disk after the race: %v", err)
	}
	if li.Epoch != 1 {
		t.Errorf("fresh lease epoch %d, want 1", li.Epoch)
	}
}

func stringsRepeat(base string, i int) string {
	return base + string(rune('a'+i))
}

// TestLeaseStealRace: an expired lease is stolen by exactly one of
// many contenders, and the steal bumps the fencing epoch.
func TestLeaseStealRace(t *testing.T) {
	path := leasePath(t)
	old := NewLeaseManager("old-owner", 50*time.Millisecond)
	l, err := old.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 1 {
		t.Fatalf("first lease epoch %d", l.Epoch)
	}
	time.Sleep(80 * time.Millisecond) // let it expire

	const racers = 8
	var wg sync.WaitGroup
	winners := make([]*Lease, racers)
	errs := make([]error, racers)
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		i := i
		m := NewLeaseManager(stringsRepeat("stealer", i), time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			winners[i], errs[i] = m.Acquire(path)
		}()
	}
	close(start)
	wg.Wait()
	won := 0
	for i := range winners {
		if winners[i] != nil {
			won++
			if winners[i].Epoch != 2 {
				t.Errorf("stolen lease epoch %d, want 2", winners[i].Epoch)
			}
		} else if !errors.Is(errs[i], ErrHeld) {
			t.Errorf("stealer %d lost with unexpected error: %v", i, errs[i])
		}
	}
	if won != 1 {
		t.Fatalf("steal race had %d winners, want exactly 1", won)
	}
	// The old owner's renewal must now fail with ErrLost.
	if err := old.Renew(l); !errors.Is(err, ErrLost) {
		t.Errorf("stale owner renewed after steal: %v", err)
	}
}

// TestLeaseFencingRejectsStaleOwner: after a steal, the old owner's
// fence fails while the new owner's passes — the predicate the store
// runs before checkpoint/manifest/job writes.
func TestLeaseFencingRejectsStaleOwner(t *testing.T) {
	path := leasePath(t)
	old := NewLeaseManager("old-owner", 50*time.Millisecond)
	oldLease, err := old.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	oldFence := old.Fence(oldLease)
	if err := oldFence(); err != nil {
		t.Fatalf("live owner's fence failed: %v", err)
	}

	time.Sleep(80 * time.Millisecond)
	thief := NewLeaseManager("new-owner", time.Minute)
	newLease, err := thief.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := oldFence(); err == nil {
		t.Fatal("stale owner's fence passed after the lease was stolen")
	} else if !strings.Contains(err.Error(), "stale owner") {
		t.Errorf("stale fence error %q does not identify the stale owner", err)
	}
	if err := thief.Fence(newLease)(); err != nil {
		t.Errorf("successor's fence failed: %v", err)
	}
}

// TestLeaseHeartbeatKeepsAlive: a slice outliving the TTL stays owned
// as long as renewals keep coming, and a contender polling the whole
// time never gets in.
func TestLeaseHeartbeatKeepsAlive(t *testing.T) {
	path := leasePath(t)
	owner := NewLeaseManager("owner", 120*time.Millisecond)
	l, err := owner.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	contender := NewLeaseManager("contender", 120*time.Millisecond)
	stop := make(chan struct{})
	var contenderWon bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if _, err := contender.Acquire(path); err == nil {
				contenderWon = true
				return
			}
		}
	}()
	// "Slow slice": hold the lease 5× the TTL, renewing at TTL/4.
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := owner.Renew(l); err != nil {
			t.Fatalf("renewal failed while heartbeating: %v", err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if contenderWon {
		t.Fatal("contender stole a lease that was being heartbeated")
	}
	if err := owner.Fence(l)(); err != nil {
		t.Errorf("owner's fence failed after heartbeating: %v", err)
	}
}

// TestLeaseEpochMonotonicAcrossChurn: acquire→release→acquire→expire→
// steal never reuses an epoch, including when the lease file vanishes
// in between (tombstones carry the line forward).
func TestLeaseEpochMonotonicAcrossChurn(t *testing.T) {
	path := leasePath(t)
	var last uint64
	for i := 0; i < 3; i++ {
		m := NewLeaseManager(stringsRepeat("owner", i), time.Minute)
		l, err := m.Acquire(path)
		if err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		if l.Epoch <= last {
			t.Fatalf("churn %d: epoch %d did not advance past %d", i, l.Epoch, last)
		}
		last = l.Epoch
		if err := m.Release(l); err != nil {
			t.Fatalf("churn %d release: %v", i, err)
		}
		if li, _ := ReadLease(path); li != nil {
			t.Fatalf("churn %d: lease file survived release", i)
		}
	}
	// Crash-shaped churn: corrupt lease file (torn create) is stolen,
	// and the epoch still advances.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewLeaseManager("after-crash", time.Minute)
	l, err := m.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch <= last {
		t.Fatalf("post-corruption epoch %d did not advance past %d", l.Epoch, last)
	}
	// Released-then-reacquired by the same owner keeps working.
	if err := m.Renew(l); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseReacquireOwn: acquiring a lease we already hold renews it
// in place with the same epoch.
func TestLeaseReacquireOwn(t *testing.T) {
	path := leasePath(t)
	m := NewLeaseManager("self", time.Minute)
	l1, err := m.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := m.Acquire(path)
	if err != nil {
		t.Fatalf("re-acquiring our own live lease failed: %v", err)
	}
	if l2.Epoch != l1.Epoch {
		t.Errorf("re-acquire changed epoch %d → %d", l1.Epoch, l2.Epoch)
	}
	if got := len(m.Held()); got != 1 {
		t.Errorf("held %d leases, want 1", got)
	}
}
