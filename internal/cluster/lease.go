package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Lease-file protocol. One campaign's lease lives at
// campaigns/<id>/lease.json inside the shared root:
//
//	{"owner":"node-a","epoch":3,"expires_unix_nano":…,"renewed_unix_nano":…}
//
// Invariants the protocol maintains without any lock service:
//
//   - At most one live owner. A fresh lease is created with
//     O_CREATE|O_EXCL (the filesystem arbitrates races). An expired
//     lease is stolen by renaming it to a tombstone
//     (lease.json.stolen.<epoch>) — rename(2) of one source path
//     succeeds for exactly one contender — and then creating the new
//     lease exclusively.
//
//   - The fencing epoch is monotonic across owners, crashes included.
//     A steal writes epoch = old+1. Tombstones persist until a higher
//     epoch is safely on disk, so even a crash between the
//     tombstone-rename and the new-lease create cannot reset the
//     epoch: the next acquirer resumes from max(tombstone epochs)+1.
//
//   - A stale owner cannot clobber a successor. Owners fence their
//     checkpoint-class writes with FenceCheck (owner+epoch must still
//     match the lease file); renewal refuses to resurrect an expired
//     lease, and re-reads after writing to detect a concurrent steal.
//
// Expiry compares against the local wall clock, so cross-machine use
// assumes clock skew well under the TTL (the usual lease caveat;
// DESIGN.md §14 lists it in the failure matrix).

// LeaseFileName is the lease file inside a campaign directory.
const LeaseFileName = "lease.json"

// Sentinel lease errors.
var (
	// ErrHeld: another owner holds a live lease.
	ErrHeld = errors.New("cluster: lease held by another owner")
	// ErrLost: we no longer own the lease (stolen or released).
	ErrLost = errors.New("cluster: lease lost")
)

// LeaseInfo is the on-disk lease record.
type LeaseInfo struct {
	Owner           string `json:"owner"`
	Epoch           uint64 `json:"epoch"`
	ExpiresUnixNano int64  `json:"expires_unix_nano"`
	RenewedUnixNano int64  `json:"renewed_unix_nano"`
}

// Expired reports whether the lease is past its TTL at time now.
func (li *LeaseInfo) Expired(now time.Time) bool {
	return now.UnixNano() > li.ExpiresUnixNano
}

// Lease is one held lease. Its fields are immutable except Epoch-stable
// expiry bookkeeping inside the manager; users treat it as a token.
type Lease struct {
	Path  string
	Owner string
	Epoch uint64
}

// LeaseManager acquires, renews, and releases leases on behalf of one
// owner ID. It is safe for concurrent use.
type LeaseManager struct {
	owner string
	ttl   time.Duration

	mu   sync.Mutex
	held map[string]*Lease // by path
}

// NewLeaseManager returns a manager owning leases as owner with the
// given TTL (minimum 50ms).
func NewLeaseManager(owner string, ttl time.Duration) *LeaseManager {
	if ttl < 50*time.Millisecond {
		ttl = 50 * time.Millisecond
	}
	return &LeaseManager{owner: owner, ttl: ttl, held: make(map[string]*Lease)}
}

// Owner returns the manager's owner ID.
func (m *LeaseManager) Owner() string { return m.owner }

// TTL returns the lease TTL.
func (m *LeaseManager) TTL() time.Duration { return m.ttl }

// Held returns the leases currently held, sorted by path.
func (m *LeaseManager) Held() []*Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Lease, 0, len(m.held))
	for _, l := range m.held {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ReadLease reads and parses the lease file at path. Returns
// (nil, nil) when no lease file exists; a corrupt file returns an
// error (callers treat it as a crashed create, i.e. stealable).
func ReadLease(path string) (*LeaseInfo, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: lease read: %w", err)
	}
	li := &LeaseInfo{}
	if err := json.Unmarshal(data, li); err != nil {
		return nil, fmt.Errorf("cluster: lease parse: %w", err)
	}
	if li.Owner == "" || li.Epoch == 0 {
		return nil, fmt.Errorf("cluster: lease at %s has no owner/epoch", path)
	}
	return li, nil
}

// tombEpoch parses the epoch out of a tombstone file name
// (lease.json.stolen.<epoch>), returning 0 for foreign names.
func tombEpoch(name string) uint64 {
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// maxTombstoneEpoch scans the lease's directory for steal/release
// tombstones and returns the highest epoch recorded in one (0 when
// none). Tombstones are how epoch monotonicity survives a crash
// between "old lease removed" and "new lease created".
func maxTombstoneEpoch(path string) uint64 {
	des, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		return 0
	}
	prefix := filepath.Base(path) + ".stolen."
	var max uint64
	for _, de := range des {
		if strings.HasPrefix(de.Name(), prefix) {
			if e := tombEpoch(de.Name()); e > max {
				max = e
			}
		}
	}
	return max
}

// clearTombstones removes tombstones with epoch < have — safe once a
// lease file carrying `have` is durably in place.
func clearTombstones(path string, have uint64) {
	des, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		return
	}
	prefix := filepath.Base(path) + ".stolen."
	for _, de := range des {
		if strings.HasPrefix(de.Name(), prefix) && tombEpoch(de.Name()) < have {
			os.Remove(filepath.Join(filepath.Dir(path), de.Name()))
		}
	}
}

// createExclusive writes a brand-new lease file at path with
// O_CREATE|O_EXCL — the atomic arbiter for fresh acquisitions.
func (m *LeaseManager) createExclusive(path string, epoch uint64) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	now := time.Now()
	li := LeaseInfo{
		Owner:           m.owner,
		Epoch:           epoch,
		ExpiresUnixNano: now.Add(m.ttl).UnixNano(),
		RenewedUnixNano: now.UnixNano(),
	}
	data, merr := json.Marshal(&li)
	if merr == nil {
		_, merr = f.Write(data)
	}
	if merr == nil {
		merr = f.Sync()
	}
	if cerr := f.Close(); merr == nil {
		merr = cerr
	}
	if merr != nil {
		os.Remove(path)
		return fmt.Errorf("cluster: lease create: %w", merr)
	}
	return nil
}

// Acquire takes the lease at path (creating its directory if needed):
// a missing lease is created, our own live lease is renewed, an
// expired or corrupt one is stolen with epoch+1, and a live foreign
// one returns ErrHeld. Exactly one of N concurrent acquirers wins.
func (m *LeaseManager) Acquire(path string) (*Lease, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("cluster: lease dir: %w", err)
	}
	for attempt := 0; attempt < 16; attempt++ {
		li, err := ReadLease(path)
		switch {
		case err == nil && li == nil:
			// No lease: create fresh, resuming the epoch line from any
			// tombstone a crashed steal/release left behind.
			epoch := maxTombstoneEpoch(path) + 1
			if cerr := m.createExclusive(path, epoch); cerr != nil {
				if os.IsExist(cerr) {
					continue // lost the create race; re-read
				}
				return nil, cerr
			}
			clearTombstones(path, epoch)
			return m.adopt(path, epoch), nil

		case err == nil && li.Owner == m.owner && !li.Expired(time.Now()):
			// Already ours (e.g. re-acquire after a partial release):
			// renew in place, keeping the epoch.
			l := m.adopt(path, li.Epoch)
			if rerr := m.Renew(l); rerr != nil {
				m.forget(l)
				continue
			}
			return l, nil

		case err == nil && !li.Expired(time.Now()):
			return nil, fmt.Errorf("%w (owner %s, epoch %d)", ErrHeld, li.Owner, li.Epoch)

		default:
			// Expired, or unreadable (a crashed create that never
			// fenced anything): steal. The rename is the arbiter —
			// exactly one contender moves the old file aside.
			var oldEpoch uint64
			if li != nil {
				oldEpoch = li.Epoch
			}
			if t := maxTombstoneEpoch(path); t > oldEpoch {
				oldEpoch = t
			}
			tomb := fmt.Sprintf("%s.stolen.%d", path, oldEpoch)
			if rerr := os.Rename(path, tomb); rerr != nil {
				continue // lost the steal race; re-read
			}
			if cerr := m.createExclusive(path, oldEpoch+1); cerr != nil {
				if os.IsExist(cerr) {
					continue // a fresh acquirer slipped in after our rename
				}
				return nil, cerr
			}
			clearTombstones(path, oldEpoch+1)
			return m.adopt(path, oldEpoch+1), nil
		}
	}
	return nil, fmt.Errorf("%w (acquire retry budget exhausted)", ErrHeld)
}

// adopt registers a held lease.
func (m *LeaseManager) adopt(path string, epoch uint64) *Lease {
	l := &Lease{Path: path, Owner: m.owner, Epoch: epoch}
	m.mu.Lock()
	m.held[path] = l
	m.mu.Unlock()
	return l
}

// forget drops a lease from the held set.
func (m *LeaseManager) forget(l *Lease) {
	m.mu.Lock()
	if m.held[l.Path] == l {
		delete(m.held, l.Path)
	}
	m.mu.Unlock()
}

// Renew extends a held lease by the TTL. It refuses to resurrect an
// already-expired lease (a stealer may be mid-dance) and verifies the
// write landed, returning ErrLost when ownership is gone either way.
func (m *LeaseManager) Renew(l *Lease) error {
	li, err := ReadLease(l.Path)
	if err != nil || li == nil || li.Owner != m.owner || li.Epoch != l.Epoch {
		m.forget(l)
		return fmt.Errorf("%w (renew: lease file changed)", ErrLost)
	}
	now := time.Now()
	if li.Expired(now) {
		m.forget(l)
		return fmt.Errorf("%w (renew: lease expired before renewal)", ErrLost)
	}
	li.ExpiresUnixNano = now.Add(m.ttl).UnixNano()
	li.RenewedUnixNano = now.UnixNano()
	if err := writeLeaseAtomic(l.Path, li); err != nil {
		return err
	}
	// Verify: a stealer that renamed the file away in the window would
	// have been clobbered by our rename — re-read and make sure the
	// file is still (again) ours so at worst the steal repeats.
	back, err := ReadLease(l.Path)
	if err != nil || back == nil || back.Owner != m.owner || back.Epoch != l.Epoch {
		m.forget(l)
		return fmt.Errorf("%w (renew: lost verification re-read)", ErrLost)
	}
	return nil
}

// Release gives the lease up, leaving a tombstone so the next owner
// continues the epoch line. Releasing a lease we no longer hold is a
// no-op.
func (m *LeaseManager) Release(l *Lease) error {
	m.forget(l)
	li, err := ReadLease(l.Path)
	if err != nil || li == nil || li.Owner != m.owner || li.Epoch != l.Epoch {
		return nil // already stolen or gone: nothing to release
	}
	tomb := fmt.Sprintf("%s.stolen.%d", l.Path, l.Epoch)
	if err := os.Rename(l.Path, tomb); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cluster: lease release: %w", err)
	}
	return nil
}

// FenceCheck returns a fencing predicate for (path, owner, epoch):
// nil while the lease file still names that exact owner and epoch,
// an error otherwise. Wired into store.Store.SetFence it makes every
// checkpoint-class write of a stale owner fail instead of clobbering
// the successor (the check runs immediately before the write's
// rename, so the vulnerable window is the rename itself — and even
// then determinism makes a genuine-but-stale checkpoint a valid
// resume point, see DESIGN.md §14 failure matrix).
func FenceCheck(path, owner string, epoch uint64) func() error {
	return func() error {
		li, err := ReadLease(path)
		if err != nil {
			return fmt.Errorf("cluster: fence: %w", err)
		}
		if li == nil {
			return fmt.Errorf("cluster: fence: lease gone (owner %s epoch %d)", owner, epoch)
		}
		if li.Owner != owner || li.Epoch != epoch {
			return fmt.Errorf("cluster: fence: stale owner %s epoch %d (current %s epoch %d)",
				owner, epoch, li.Owner, li.Epoch)
		}
		return nil
	}
}

// Fence returns the fencing predicate for a held lease.
func (m *LeaseManager) Fence(l *Lease) func() error {
	return FenceCheck(l.Path, l.Owner, l.Epoch)
}

// writeLeaseAtomic replaces the lease file via tmp+rename (renewals
// only; creations go through createExclusive).
func writeLeaseAtomic(path string, li *LeaseInfo) error {
	data, err := json.Marshal(li)
	if err != nil {
		return fmt.Errorf("cluster: lease encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: lease write: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cluster: lease write: %w", werr)
	}
	return nil
}
