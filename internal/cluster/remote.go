package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Coordinator side of the remote slice-worker protocol: a Registry of
// joined workers and the fenced dispatch call. The service layer owns
// scheduling — it grants slices from its one queue to local pool
// goroutines and per-worker dispatcher goroutines interchangeably —
// so the Registry's job is just membership (join/heartbeat/death) and
// the HTTP round trip with timeout/retry/backoff.

// DispatchOptions tune the coordinator→worker round trip.
type DispatchOptions struct {
	// Timeout bounds one dispatch attempt end-to-end; it must exceed
	// the worst-case slice duration (default 2m).
	Timeout time.Duration
	// Retries is how many additional attempts a transport failure
	// gets before the worker is declared dead (default 2).
	Retries int
	// Backoff is the base delay between attempts, doubled each retry
	// (default 250ms).
	Backoff time.Duration
	// WorkerTTL is how stale a worker's heartbeat may be before the
	// registry stops dispatching to it (default 15s).
	WorkerTTL time.Duration
}

func (o DispatchOptions) withDefaults() DispatchOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 15 * time.Second
	}
	return o
}

// RemoteWorker is one joined worker's registry record.
type RemoteWorker struct {
	ID    string
	Addr  string // base URL, e.g. http://10.0.0.7:8091
	Slots int

	mu         sync.Mutex
	lastBeat   time.Time
	dead       bool
	generation int // bumped on each (re)join; retires stale dispatchers
	dispatched int64
	completed  int64
	failed     int64
}

// alive reports whether the worker is usable (not declared dead, and
// heartbeat fresher than ttl).
func (w *RemoteWorker) alive(ttl time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && time.Since(w.lastBeat) <= ttl
}

// WorkerInfo is a worker's externally visible state (for /cluster/statz).
type WorkerInfo struct {
	ID            string    `json:"id"`
	Addr          string    `json:"addr"`
	Slots         int       `json:"slots"`
	Alive         bool      `json:"alive"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	Dispatched    int64     `json:"dispatched"`
	Completed     int64     `json:"completed"`
	Failed        int64     `json:"failed"`
}

// Registry tracks joined workers for one coordinator.
type Registry struct {
	opts   DispatchOptions
	onJoin func(*RemoteWorker) // called (no locks held) for each fresh join
	logf   func(string, ...any)
	client *http.Client

	mu      sync.Mutex
	workers map[string]*RemoteWorker

	statMu    sync.Mutex
	dispatch  int64 // dispatch attempts
	retries   int64 // transport retries
	failures  int64 // dispatches abandoned after retries
	completes int64 // successful slice round trips
}

// NewRegistry builds a worker registry. onJoin runs once per fresh
// join (including a rejoin after death) — the service layer uses it to
// spawn that worker's dispatcher goroutines.
func NewRegistry(opts DispatchOptions, onJoin func(*RemoteWorker), logf func(string, ...any)) *Registry {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	o := opts.withDefaults()
	return &Registry{
		opts:    o,
		onJoin:  onJoin,
		logf:    logf,
		client:  &http.Client{Timeout: o.Timeout},
		workers: make(map[string]*RemoteWorker),
	}
}

// Join registers (or revives) a worker and returns its record. A
// worker re-joining with a new address or after being declared dead
// gets fresh dispatchers via onJoin.
func (r *Registry) Join(id, addr string, slots int) (*RemoteWorker, error) {
	if id == "" || addr == "" {
		return nil, fmt.Errorf("cluster: join needs id and addr")
	}
	if slots <= 0 {
		slots = 1
	}
	r.mu.Lock()
	w := r.workers[id]
	fresh := false
	if w == nil {
		w = &RemoteWorker{ID: id, Addr: addr, Slots: slots}
		r.workers[id] = w
		fresh = true
	}
	w.mu.Lock()
	if w.dead || w.Addr != addr || w.Slots != slots {
		fresh = true
	}
	w.Addr = addr
	w.Slots = slots
	w.dead = false
	w.lastBeat = time.Now()
	if fresh {
		w.generation++
	}
	gen := w.generation
	w.mu.Unlock()
	r.mu.Unlock()
	if fresh {
		r.logf("cluster: worker %s joined from %s (%d slot(s), generation %d)", id, addr, slots, gen)
		if r.onJoin != nil {
			r.onJoin(w)
		}
	}
	return w, nil
}

// Heartbeat refreshes a worker's liveness; unknown workers get an
// error so they re-join. A heartbeat arriving after a silence longer
// than the worker TTL revives the worker under a fresh generation
// (firing onJoin): its old dispatchers retired while it was stale, so
// somebody has to spawn new ones.
func (r *Registry) Heartbeat(id string) error {
	r.mu.Lock()
	w := r.workers[id]
	r.mu.Unlock()
	if w == nil {
		return fmt.Errorf("cluster: heartbeat from unknown worker %s", id)
	}
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return fmt.Errorf("cluster: worker %s was declared dead; re-join", id)
	}
	revived := time.Since(w.lastBeat) > r.opts.WorkerTTL
	w.lastBeat = time.Now()
	if revived {
		w.generation++
	}
	gen := w.generation
	w.mu.Unlock()
	if revived {
		r.logf("cluster: worker %s heartbeat resumed (generation %d)", id, gen)
		if r.onJoin != nil {
			r.onJoin(w)
		}
	}
	return nil
}

// WorkerSlots returns the worker's current slot count.
func (r *Registry) WorkerSlots(w *RemoteWorker) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Slots
}

// Usable reports whether the worker should still be dispatched to by
// a dispatcher of the given generation.
func (r *Registry) Usable(w *RemoteWorker, generation int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && w.generation == generation && time.Since(w.lastBeat) <= r.opts.WorkerTTL
}

// Generation returns the worker's current join generation.
func (r *Registry) Generation(w *RemoteWorker) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.generation
}

// markDead retires a worker until it re-joins.
func (r *Registry) markDead(w *RemoteWorker, why error) {
	w.mu.Lock()
	already := w.dead
	w.dead = true
	w.mu.Unlock()
	if !already {
		r.logf("cluster: worker %s (%s) declared dead: %v", w.ID, w.Addr, why)
	}
}

// Dispatch runs one slice on w: POST /cluster/exec with per-attempt
// timeout, retrying transport failures with exponential backoff. A
// worker that exhausts its retries is declared dead and the dispatch
// returns an error — the caller requeues the slice, which is safe to
// re-run anywhere because the worker either never wrote a checkpoint
// or atomically wrote the bit-deterministic one.
func (r *Registry) Dispatch(ctx context.Context, w *RemoteWorker, req SliceRequest) (*SliceResult, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("cluster: dispatch encode: %w", err)
	}
	w.mu.Lock()
	w.dispatched++
	w.mu.Unlock()
	var lastErr error
	backoff := r.opts.Backoff
attempts:
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			r.statMu.Lock()
			r.retries++
			r.statMu.Unlock()
			select {
			case <-ctx.Done():
				lastErr = fmt.Errorf("%v (giving up: %v)", lastErr, ctx.Err())
				break attempts
			case <-time.After(backoff):
				backoff *= 2
			}
		}
		r.statMu.Lock()
		r.dispatch++
		r.statMu.Unlock()
		res, derr := r.tryDispatch(ctx, w, body)
		if derr == nil {
			w.mu.Lock()
			w.completed++
			w.mu.Unlock()
			r.statMu.Lock()
			r.completes++
			r.statMu.Unlock()
			return res, nil
		}
		lastErr = derr
		r.logf("cluster: dispatch %s to %s attempt %d/%d failed: %v",
			req.Campaign, w.ID, attempt+1, r.opts.Retries+1, derr)
	}
	w.mu.Lock()
	w.failed++
	w.mu.Unlock()
	r.statMu.Lock()
	r.failures++
	r.statMu.Unlock()
	r.markDead(w, lastErr)
	return nil, fmt.Errorf("cluster: dispatch %s to worker %s: %w", req.Campaign, w.ID, lastErr)
}

// tryDispatch is one POST /cluster/exec attempt.
func (r *Registry) tryDispatch(ctx context.Context, w *RemoteWorker, body []byte) (*SliceResult, error) {
	actx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, w.Addr+"/cluster/exec", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	res := &SliceResult{}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("bad worker response: %w", err)
	}
	return res, nil
}

// Workers snapshots the registry for /cluster/statz, sorted by ID.
func (r *Registry) Workers() []WorkerInfo {
	r.mu.Lock()
	ws := make([]*RemoteWorker, 0, len(r.workers))
	for _, w := range r.workers {
		ws = append(ws, w)
	}
	r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		out = append(out, WorkerInfo{
			ID: w.ID, Addr: w.Addr, Slots: w.Slots,
			Alive:         !w.dead && time.Since(w.lastBeat) <= r.opts.WorkerTTL,
			LastHeartbeat: w.lastBeat,
			Dispatched:    w.dispatched, Completed: w.completed, Failed: w.failed,
		})
		w.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DispatchStats is the coordinator's aggregate dispatch accounting.
type DispatchStats struct {
	Dispatches int64 `json:"dispatches"`
	Retries    int64 `json:"retries"`
	Failures   int64 `json:"failures"`
	Completes  int64 `json:"completes"`
}

// Stats snapshots the dispatch counters.
func (r *Registry) Stats() DispatchStats {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return DispatchStats{Dispatches: r.dispatch, Retries: r.retries, Failures: r.failures, Completes: r.completes}
}

// HandleJoin is the coordinator's POST /cluster/join endpoint.
func (r *Registry) HandleJoin(w http.ResponseWriter, req *http.Request) {
	var jr joinRequest
	if err := json.NewDecoder(req.Body).Decode(&jr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := r.Join(jr.ID, jr.Addr, jr.Slots); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ok\":true,\"ttl_ms\":%d}\n", r.opts.WorkerTTL.Milliseconds())
}

// HandleHeartbeat is the coordinator's POST /cluster/heartbeat endpoint.
// An unknown or retired worker gets 410 so it re-joins.
func (r *Registry) HandleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var hr heartbeatRequest
	if err := json.NewDecoder(req.Body).Decode(&hr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := r.Heartbeat(hr.ID); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}
