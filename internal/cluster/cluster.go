// Package cluster turns several pbsed processes over one shared store
// root into a fleet (DESIGN.md §14). It supplies the two coordination
// primitives the daemon layer composes:
//
//   - A lease manager: per-campaign lease files under campaigns/<id>/
//     carrying an owner ID, a monotonic fencing epoch, and a TTL.
//     Acquisition is atomic (create-exclusive, steals via a rename
//     dance that exactly one contender can win), ownership is kept
//     alive by heartbeat renewal, and every checkpoint-class write of
//     the owner is fenced: a stale owner — one whose lease expired and
//     was stolen — fails its writes instead of clobbering the
//     successor's state.
//
//   - A remote slice-worker protocol: a coordinator daemon dispatches
//     slices (campaign ID + round window + fencing epoch + the spec)
//     over HTTP/JSON to workers started with `pbsed -join <addr>`.
//     Each worker executes the slice against the same shared root and
//     reports the campaign-cumulative result. Dispatch carries a
//     per-try timeout and retry/backoff; a worker dying mid-slice is
//     harmless because slice execution is bit-deterministic and
//     checkpoints are atomic, so the coordinator simply re-dispatches
//     (or runs locally) from the same checkpoint.
//
// The store remains the only shared substrate: no consensus service,
// no replicated log — just atomic renames on a shared filesystem plus
// fencing epochs, which is exactly enough because every slice is a
// pure function of the checkpoint it resumes from.
package cluster

import "encoding/json"

// SliceRequest is one dispatched unit of campaign work: resume the
// campaign from its checkpoint in the shared root, run Rounds scheduler
// rounds, checkpoint, and report. Owner/Epoch are the coordinator's
// lease identity; the worker fences its checkpoint writes on them so a
// dispatch outliving its coordinator's lease cannot corrupt a
// successor's campaign.
type SliceRequest struct {
	Campaign string `json:"campaign"`
	Rounds   int64  `json:"rounds"`
	Owner    string `json:"owner"`
	Epoch    uint64 `json:"epoch"`
	// Spec is the service-layer campaign spec, opaque to this package.
	Spec json.RawMessage `json:"spec"`
}

// SliceResult is the worker's campaign-cumulative report after one
// slice: totals as of the checkpoint the slice left behind, never
// per-slice deltas, so a lost or duplicated dispatch cannot skew the
// coordinator's accounting.
type SliceResult struct {
	// Finished reports the campaign drained its budget (the slice was
	// not interrupted at its round bound).
	Finished bool     `json:"finished"`
	Rounds   int64    `json:"rounds"`
	Clock    int64    `json:"clock"`
	Covered  int      `json:"covered"`
	BugIDs   []string `json:"bug_ids,omitempty"`
	// Error is a worker-side execution failure (the slice did not
	// complete); transport failures never produce a SliceResult.
	Error string `json:"error,omitempty"`
}

// joinRequest announces a worker to the coordinator.
type joinRequest struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Slots int    `json:"slots"`
}

// heartbeatRequest keeps a worker's membership alive.
type heartbeatRequest struct {
	ID string `json:"id"`
}
