package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Worker side of the remote slice protocol: an HTTP handler that
// executes dispatched slices through a service-supplied ExecFunc, and
// a client loop that joins a coordinator and keeps the membership
// alive with heartbeats (re-joining whenever the coordinator restarts
// or declares us dead).

// ExecFunc executes one dispatched slice against the shared store
// root and returns its campaign-cumulative result. Implementations
// must fence their checkpoint writes on (req.Owner, req.Epoch).
type ExecFunc func(req SliceRequest) SliceResult

// Worker serves /cluster/exec for one node.
type Worker struct {
	ID   string
	Exec ExecFunc

	// Concurrency limits in-flight slices; dispatch beyond it queues
	// in the HTTP server. 0 = no limit.
	Concurrency int

	sem     chan struct{}
	semOnce sync.Once

	executed atomic.Int64
	errored  atomic.Int64
}

// Executed returns how many slices this worker has run (and how many
// of those returned an execution error).
func (w *Worker) Executed() (ok, errored int64) {
	return w.executed.Load() - w.errored.Load(), w.errored.Load()
}

// Handler returns the worker's HTTP surface:
//
//	POST /cluster/exec  run one slice         → 200 SliceResult
//	GET  /healthz       liveness              → 200 "ok"
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/exec", w.handleExec)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Write([]byte("ok\n"))
	})
	return mux
}

func (w *Worker) handleExec(rw http.ResponseWriter, req *http.Request) {
	var sr SliceRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&sr); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Campaign == "" || sr.Owner == "" || sr.Epoch == 0 {
		http.Error(rw, "cluster: exec needs campaign, owner, and epoch", http.StatusBadRequest)
		return
	}
	if w.Concurrency > 0 {
		w.semOnce.Do(func() { w.sem = make(chan struct{}, w.Concurrency) })
		w.sem <- struct{}{}
		defer func() { <-w.sem }()
	}
	res := w.Exec(sr)
	w.executed.Add(1)
	if res.Error != "" {
		w.errored.Add(1)
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(&res)
}

// JoinConfig tunes a worker's membership loop.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID is this worker's node ID.
	ID string
	// Addr is this worker's advertised base URL for dispatches.
	Addr string
	// Slots is how many dispatcher goroutines the coordinator should
	// run against this worker (default 1).
	Slots int
	// HeartbeatEvery is the heartbeat cadence (default 3s; must be
	// well under the coordinator's WorkerTTL).
	HeartbeatEvery time.Duration
	// Logf sinks membership logs.
	Logf func(string, ...any)
}

// JoinLoop joins the coordinator and heartbeats until ctx ends. Any
// join or heartbeat failure falls back to re-joining with backoff, so
// a coordinator restart (which empties its registry) heals without
// operator action.
func JoinLoop(ctx context.Context, cfg JoinConfig) error {
	if cfg.Coordinator == "" || cfg.ID == "" || cfg.Addr == "" {
		return fmt.Errorf("cluster: join loop needs coordinator, id, and addr")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 10 * time.Second}
	joined := false
	backoff := cfg.HeartbeatEvery
	for {
		var err error
		if !joined {
			err = postJSON(ctx, client, cfg.Coordinator+"/cluster/join",
				joinRequest{ID: cfg.ID, Addr: cfg.Addr, Slots: cfg.Slots})
			if err == nil {
				cfg.Logf("cluster: joined coordinator %s as %s (%d slot(s))", cfg.Coordinator, cfg.ID, cfg.Slots)
				joined = true
				backoff = cfg.HeartbeatEvery
			}
		} else {
			err = postJSON(ctx, client, cfg.Coordinator+"/cluster/heartbeat", heartbeatRequest{ID: cfg.ID})
		}
		if err != nil {
			if joined {
				cfg.Logf("cluster: heartbeat to %s failed (%v); re-joining", cfg.Coordinator, err)
			} else {
				cfg.Logf("cluster: join to %s failed (%v); retrying", cfg.Coordinator, err)
			}
			joined = false
		}
		wait := cfg.HeartbeatEvery
		if !joined {
			wait = backoff
			if backoff < 30*time.Second {
				backoff *= 2
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// postJSON posts v and requires a 2xx.
func postJSON(ctx context.Context, client *http.Client, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}
