package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Remote slice protocol unit tests: the worker HTTP surface, the
// dispatch retry/backoff/death path, and the join/heartbeat loop.

// TestWorkerExecRoundTrip: a dispatch round trip carries the request
// through ExecFunc and back.
func TestWorkerExecRoundTrip(t *testing.T) {
	var got SliceRequest
	w := &Worker{ID: "w1", Exec: func(req SliceRequest) SliceResult {
		got = req
		return SliceResult{Finished: true, Rounds: 7, Clock: 123, Covered: 9, BugIDs: []string{"b1"}}
	}}
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	reg := NewRegistry(DispatchOptions{Timeout: 5 * time.Second}, nil, t.Logf)
	rw, err := reg.Join("w1", ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Dispatch(context.Background(), rw, SliceRequest{
		Campaign: "c000001-a", Rounds: 3, Owner: "coord", Epoch: 4,
		Spec: json.RawMessage(`{"driver":"readelf"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Campaign != "c000001-a" || got.Rounds != 3 || got.Owner != "coord" || got.Epoch != 4 {
		t.Errorf("worker saw %+v", got)
	}
	if !res.Finished || res.Rounds != 7 || res.Covered != 9 || len(res.BugIDs) != 1 {
		t.Errorf("coordinator got %+v", res)
	}
	if ok, bad := w.Executed(); ok != 1 || bad != 0 {
		t.Errorf("worker counters ok=%d err=%d", ok, bad)
	}
}

// TestWorkerExecValidation: a dispatch without a fencing epoch is
// rejected before reaching ExecFunc.
func TestWorkerExecValidation(t *testing.T) {
	w := &Worker{ID: "w1", Exec: func(SliceRequest) SliceResult {
		t.Fatal("exec ran for an unfenced request")
		return SliceResult{}
	}}
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/cluster/exec", "application/json",
		jsonBody(t, SliceRequest{Campaign: "c1", Owner: "coord"}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unfenced exec got %d, want 400", resp.StatusCode)
	}
}

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestDispatchRetryThenDeath: transport failures are retried with
// backoff; exhausting the retries declares the worker dead, and a
// re-join revives it with a new generation.
func TestDispatchRetryThenDeath(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// Kill the connection mid-response: a transport error.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&SliceResult{Finished: false, Rounds: 1})
	}))
	defer flaky.Close()

	joins := 0
	reg := NewRegistry(DispatchOptions{Timeout: 2 * time.Second, Retries: 2, Backoff: 5 * time.Millisecond},
		func(*RemoteWorker) { joins++ }, t.Logf)
	w, err := reg.Join("flaky", flaky.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Dispatch(context.Background(), w, SliceRequest{Campaign: "c1", Rounds: 1, Owner: "o", Epoch: 1})
	if err != nil {
		t.Fatalf("dispatch should have succeeded on the third attempt: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("got %+v", res)
	}
	if st := reg.Stats(); st.Retries != 2 || st.Completes != 1 {
		t.Errorf("stats %+v, want 2 retries and 1 complete", st)
	}

	// Now a permanently dead endpoint: the dispatch fails and the
	// worker is retired.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // immediately: connection refused
	w2, err := reg.Join("gone", dead.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	gen := reg.Generation(w2)
	if _, err := reg.Dispatch(context.Background(), w2, SliceRequest{Campaign: "c2", Rounds: 1, Owner: "o", Epoch: 1}); err == nil {
		t.Fatal("dispatch to a dead worker succeeded")
	}
	if reg.Usable(w2, gen) {
		t.Fatal("dead worker still usable")
	}
	if err := reg.Heartbeat("gone"); err == nil {
		t.Fatal("heartbeat from a retired worker accepted")
	}
	// Re-join revives it under a fresh generation.
	before := joins
	if _, err := reg.Join("gone", flaky.URL, 1); err != nil {
		t.Fatal(err)
	}
	if joins != before+1 {
		t.Errorf("re-join did not fire onJoin (%d → %d)", before, joins)
	}
	if reg.Usable(w2, gen) {
		t.Error("old-generation dispatcher still considered usable after re-join")
	}
}

// TestJoinLoopRejoins: the worker membership loop joins, survives a
// coordinator that forgets it (410 → re-join), and stops on ctx end.
func TestJoinLoopRejoins(t *testing.T) {
	var joins, beats atomic.Int64
	forget := make(chan struct{}, 1)
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/cluster/join":
			joins.Add(1)
			w.Write([]byte(`{"ok":true}`))
		case "/cluster/heartbeat":
			select {
			case <-forget:
				http.Error(w, "who are you", http.StatusGone)
			default:
				beats.Add(1)
				w.Write([]byte(`{"ok":true}`))
			}
		}
	}))
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- JoinLoop(ctx, JoinConfig{
			Coordinator: coord.URL, ID: "w1", Addr: "http://127.0.0.1:1",
			Slots: 1, HeartbeatEvery: 10 * time.Millisecond, Logf: t.Logf,
		})
	}()
	waitFor(t, func() bool { return beats.Load() >= 2 }, "first heartbeats")
	forget <- struct{}{} // coordinator "restarts"
	waitFor(t, func() bool { return joins.Load() >= 2 }, "re-join after 410")
	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("join loop returned %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
