// Package trace turns execution logs into the data series behind the
// paper's figures: basic-block distribution scatter plots (Fig 1, Fig 5),
// phase-division overlays (Fig 4), and coverage-over-time curves. It also
// renders quick ASCII views for the command-line tools and writes CSV for
// external plotting.
package trace

import (
	"fmt"
	"io"
	"strings"

	"pbse/internal/concolic"
)

// Point is one basic-block entry event, indexed per the paper's method:
// blocks are numbered by first appearance in the *concrete* run, and
// blocks first seen in other runs get fresh numbers above those.
type Point struct {
	Time  int64
	Index int
}

// Indexer assigns paper-style BB indices: rising order of first
// appearance in the run(s) it is fed, reusing numbers across runs.
type Indexer struct {
	byBlock map[int]int
}

// NewIndexer returns an empty indexer.
func NewIndexer() *Indexer {
	return &Indexer{byBlock: make(map[int]int)}
}

// Index returns the stable index for a block ID, assigning the next
// number on first sight.
func (ix *Indexer) Index(blockID int) int {
	if idx, ok := ix.byBlock[blockID]; ok {
		return idx
	}
	idx := len(ix.byBlock)
	ix.byBlock[blockID] = idx
	return idx
}

// Len returns the number of distinct blocks indexed so far.
func (ix *Indexer) Len() int { return len(ix.byBlock) }

// Series converts raw (time, blockID) events into indexed points.
func (ix *Indexer) Series(events []concolic.TracePoint) []Point {
	out := make([]Point, len(events))
	for i, e := range events {
		out[i] = Point{Time: e.Time, Index: ix.Index(e.BlockID)}
	}
	return out
}

// MissedBlocks returns the block IDs present in the reference set but not
// in the observed set — the "covered by concrete execution but not by
// symbolic execution" boxes of Fig 1.
func MissedBlocks(reference, observed []int) []int {
	seen := make(map[int]bool, len(observed))
	for _, b := range observed {
		seen[b] = true
	}
	var out []int
	for _, b := range reference {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// WriteCSV writes points as "time,bbindex" rows.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "time,bbindex"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%d\n", p.Time, p.Index); err != nil {
			return err
		}
	}
	return nil
}

// WritePhaseCSV writes "bbv,time,phase,trap" rows for a phase division.
func WritePhaseCSV(w io.Writer, bbvs []concolic.BBV, assign []int, trap func(int) bool) error {
	if _, err := fmt.Fprintln(w, "bbv,time,phase,trap"); err != nil {
		return err
	}
	for i, b := range bbvs {
		t := 0
		if trap(assign[i]) {
			t = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d\n", i, b.Time, assign[i], t); err != nil {
			return err
		}
	}
	return nil
}

// ScatterASCII renders points as a rows×cols terminal scatter plot
// (y axis: BB index, x axis: time), mirroring the Fig 1 layout.
func ScatterASCII(points []Point, rows, cols int) string {
	if len(points) == 0 || rows <= 0 || cols <= 0 {
		return "(no data)\n"
	}
	maxT, maxI := int64(1), 1
	for _, p := range points {
		if p.Time > maxT {
			maxT = p.Time
		}
		if p.Index > maxI {
			maxI = p.Index
		}
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range points {
		c := int(p.Time * int64(cols-1) / maxT)
		r := rows - 1 - p.Index*(rows-1)/maxI
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bb index (0..%d) vs time (0..%d)\n", maxI, maxT)
	for r := range grid {
		b.WriteByte('|')
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", cols))
	b.WriteByte('\n')
	return b.String()
}

// PhaseBandsASCII renders the per-BBV phase assignment as one character
// per BBV (phase id mod 10; trap phases upper-cased as 'T<d>' markers are
// too wide, so traps use letters A.. and non-traps digits), mirroring the
// Fig 4 coloured bands.
func PhaseBandsASCII(assign []int, trap func(int) bool) string {
	var b strings.Builder
	for _, p := range assign {
		if trap(p) {
			b.WriteByte(byte('A' + p%26))
		} else {
			b.WriteByte(byte('0' + p%10))
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// CoveragePoint is one (time, covered-block-count) sample.
type CoveragePoint struct {
	Time    int64
	Covered int
}

// WriteCoverageCSV writes "time,covered" rows.
func WriteCoverageCSV(w io.Writer, points []CoveragePoint) error {
	if _, err := fmt.Fprintln(w, "time,covered"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%d\n", p.Time, p.Covered); err != nil {
			return err
		}
	}
	return nil
}

// CoverageAt returns the covered count at the given time from a sampled
// series (the value of the latest sample at or before t; 0 when none).
func CoverageAt(points []CoveragePoint, t int64) int {
	best := 0
	for _, p := range points {
		if p.Time <= t {
			best = p.Covered
		} else {
			break
		}
	}
	return best
}
