package trace

import (
	"strings"
	"testing"

	"pbse/internal/concolic"
)

func TestIndexerAssignsRisingOrder(t *testing.T) {
	ix := NewIndexer()
	if ix.Index(50) != 0 || ix.Index(10) != 1 || ix.Index(50) != 0 || ix.Index(7) != 2 {
		t.Error("indexer order wrong")
	}
	if ix.Len() != 3 {
		t.Errorf("len = %d, want 3", ix.Len())
	}
}

func TestIndexerSharedAcrossRuns(t *testing.T) {
	// the paper reuses concrete-run indices in the symbolic plot
	ix := NewIndexer()
	concrete := ix.Series([]concolic.TracePoint{{Time: 1, BlockID: 9}, {Time: 2, BlockID: 4}})
	symbolic := ix.Series([]concolic.TracePoint{{Time: 1, BlockID: 4}, {Time: 2, BlockID: 77}})
	if concrete[0].Index != 0 || concrete[1].Index != 1 {
		t.Errorf("concrete indices: %v", concrete)
	}
	if symbolic[0].Index != 1 {
		t.Errorf("shared block should reuse index 1, got %d", symbolic[0].Index)
	}
	if symbolic[1].Index != 2 {
		t.Errorf("new block should get the next number, got %d", symbolic[1].Index)
	}
}

func TestMissedBlocks(t *testing.T) {
	got := MissedBlocks([]int{1, 2, 3, 4}, []int{2, 4})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("missed = %v, want [1 3]", got)
	}
	if MissedBlocks(nil, []int{1}) != nil {
		t.Error("empty reference should miss nothing")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []Point{{Time: 5, Index: 2}, {Time: 9, Index: 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := "time,bbindex\n5,2\n9,0\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

func TestWritePhaseCSV(t *testing.T) {
	var b strings.Builder
	bbvs := []concolic.BBV{{Time: 10}, {Time: 20}}
	err := WritePhaseCSV(&b, bbvs, []int{0, 1}, func(p int) bool { return p == 1 })
	if err != nil {
		t.Fatal(err)
	}
	want := "bbv,time,phase,trap\n0,10,0,0\n1,20,1,1\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

func TestScatterASCII(t *testing.T) {
	pts := []Point{{Time: 0, Index: 0}, {Time: 100, Index: 10}}
	out := ScatterASCII(pts, 5, 20)
	if !strings.Contains(out, "*") {
		t.Errorf("no points plotted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 5 rows + axis
		t.Errorf("rows = %d, want 7:\n%s", len(lines), out)
	}
	if ScatterASCII(nil, 5, 20) != "(no data)\n" {
		t.Error("empty input should say no data")
	}
}

func TestPhaseBandsASCII(t *testing.T) {
	out := PhaseBandsASCII([]int{0, 0, 1, 1, 2}, func(p int) bool { return p == 1 })
	if out != "00BB2\n" {
		t.Errorf("got %q", out)
	}
}

func TestCoverageAt(t *testing.T) {
	series := []CoveragePoint{{Time: 10, Covered: 5}, {Time: 20, Covered: 9}, {Time: 30, Covered: 12}}
	tests := []struct {
		give int64
		want int
	}{
		{5, 0}, {10, 5}, {15, 5}, {25, 9}, {100, 12},
	}
	for _, tt := range tests {
		if got := CoverageAt(series, tt.give); got != tt.want {
			t.Errorf("CoverageAt(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestWriteCoverageCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCoverageCSV(&b, []CoveragePoint{{Time: 1, Covered: 2}}); err != nil {
		t.Fatal(err)
	}
	if b.String() != "time,covered\n1,2\n" {
		t.Errorf("got %q", b.String())
	}
}
