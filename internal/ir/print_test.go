package ir

import (
	"strings"
	"testing"
)

// TestPrintCoversAllOpcodes builds a program exercising every opcode and
// checks each mnemonic appears in the listing.
func TestPrintCoversAllOpcodes(t *testing.T) {
	p := NewProgram("allops")
	hb := p.NewFunc("helper", 1)
	he := hb.NewBlock("entry")
	he.Ret(hb.Param(0))

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	then := fb.NewBlock("then")
	els := fb.NewBlock("els")
	sw1 := fb.NewBlock("sw1")
	swd := fb.NewBlock("swd")
	fin := fb.NewBlock("fin")

	c1 := b.Const(5, 32)
	c2 := b.Const(3, 32)
	sum := b.Bin(Add, c1, c2, 32)
	cmp := b.Cmp(Ult, sum, c1, 32)
	b.Not(sum, 32)
	b.Mov(sum, 32)
	b.Zext(sum, 64)
	b.Sext(sum, 64)
	b.Trunc(sum, 8)
	b.Select(cmp, c1, c2, 32)
	buf := b.Alloca(8)
	ld := b.Load(buf, 0, 8)
	b.Store(buf, 0, ld, 8)
	b.Input()
	b.InputLen(32)
	b.Call("helper", sum)
	b.Assert(cmp, "msg")
	b.Print("hello")
	b.Br(cmp, then.Blk(), els.Blk())

	then.Jmp(fin.Blk())
	v := els.Const(1, 32)
	els.Switch(v, []uint64{1}, []*Block{sw1.Blk()}, swd.Blk())
	sw1.Jmp(fin.Blk())
	swd.Jmp(fin.Blk())
	fin.Exit()

	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := p.Print()
	for _, want := range []string{
		"const", "add", "cmp.ult", "not", "mov", "zext", "sext", "trunc",
		"select", "alloca", "load", "store", "input", "inputlen", "call",
		"assert", "print", "br ", "jmp", "switch", "exit", "ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

// TestInstrStringsStable pins a few formatted instructions (golden).
func TestInstrStringsStable(t *testing.T) {
	tests := []struct {
		give Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 3, Imm: 42, Width: 32}, "r3 = const 42 w32"},
		{Instr{Op: OpBin, Bin: Mul, Dst: 1, A: 2, B: 3, Width: 16}, "r1 = mul r2, r3 w16"},
		{Instr{Op: OpCmp, Pred: Sge, Dst: 0, A: 1, B: 2, Width: 8}, "r0 = cmp.sge r1, r2 w8"},
		{Instr{Op: OpLoad, Dst: 4, A: 5, Imm: 12, Width: 16}, "r4 = load [r5+12] w16"},
		{Instr{Op: OpStore, A: 5, B: 6, Imm: 0, Width: 8}, "store [r5+0], r6 w8"},
		{Instr{Op: OpRet, A: NoReg}, "ret"},
		{Instr{Op: OpExit}, "exit"},
		{Instr{Op: OpAssert, A: 7, Msg: "x"}, `assert r7 "x"`},
	}
	for _, tt := range tests {
		if got := formatInstr(&tt.give); got != tt.want {
			t.Errorf("formatInstr = %q, want %q", got, tt.want)
		}
	}
}
