// Package ir defines the register-based intermediate representation that
// target programs are written in, playing the role LLVM bitcode plays for
// KLEE. A Program is a set of Funcs made of Blocks of Instrs. Values live
// in per-frame virtual registers holding up-to-64-bit integers; pointers
// are 64-bit values of the form objectID<<32|offset produced by Alloca
// (and by the executor for the symbolic input object).
package ir

import (
	"fmt"
)

// Reg names a virtual register within a function frame. Register 0..N-1
// receive the N call arguments.
type Reg int32

// NoReg marks an absent operand (e.g. a void return).
const NoReg Reg = -1

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	OpConst    Op = iota + 1 // Dst = Imm (Width bits)
	OpBin                    // Dst = A <Bin> B
	OpCmp                    // Dst = A <Pred> B (width 1)
	OpNot                    // Dst = ^A
	OpMov                    // Dst = A
	OpZext                   // Dst = zext(A) to Width
	OpSext                   // Dst = sext(A) to Width
	OpTrunc                  // Dst = trunc(A) to Width
	OpSelect                 // Dst = A(bool) ? B : C
	OpAlloca                 // Dst = pointer to a fresh object of Imm bytes
	OpLoad                   // Dst = mem[A + Imm], Width bits, little-endian
	OpStore                  // mem[A + Imm] = B, Width bits, little-endian
	OpInput                  // Dst = pointer to the symbolic input object
	OpInputLen               // Dst = input length in bytes (Width bits)
	OpCall                   // Dst = Callee(Args...)
	OpRet                    // return A (or nothing when A == NoReg)
	OpBr                     // if A goto Targets[0] else Targets[1]
	OpJmp                    // goto Targets[0]
	OpSwitch                 // on A: Vals[i] -> Targets[i], default Targets[len(Vals)]
	OpAssert                 // report a bug when A is false; Msg describes it
	OpExit                   // terminate the path successfully
	OpPrint                  // debugging no-op (Msg)
)

var opNames = map[Op]string{
	OpConst: "const", OpBin: "bin", OpCmp: "cmp", OpNot: "not", OpMov: "mov",
	OpZext: "zext", OpSext: "sext", OpTrunc: "trunc", OpSelect: "select",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store",
	OpInput: "input", OpInputLen: "inputlen",
	OpCall: "call", OpRet: "ret", OpBr: "br", OpJmp: "jmp", OpSwitch: "switch",
	OpAssert: "assert", OpExit: "exit", OpPrint: "print",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpRet, OpBr, OpJmp, OpSwitch, OpExit:
		return true
	}
	return false
}

// BinOp is the arithmetic/logical sub-opcode of OpBin.
type BinOp uint8

// Binary operations.
const (
	Add BinOp = iota + 1
	Sub
	Mul
	UDiv
	SDiv
	URem
	SRem
	And
	Or
	Xor
	Shl
	LShr
	AShr
)

var binNames = map[BinOp]string{
	Add: "add", Sub: "sub", Mul: "mul", UDiv: "udiv", SDiv: "sdiv",
	URem: "urem", SRem: "srem", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", LShr: "lshr", AShr: "ashr",
}

// String returns the mnemonic.
func (b BinOp) String() string {
	if s, ok := binNames[b]; ok {
		return s
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Pred is the comparison predicate of OpCmp.
type Pred uint8

// Comparison predicates.
const (
	Eq Pred = iota + 1
	Ne
	Ult
	Ule
	Ugt
	Uge
	Slt
	Sle
	Sgt
	Sge
)

var predNames = map[Pred]string{
	Eq: "eq", Ne: "ne", Ult: "ult", Ule: "ule", Ugt: "ugt", Uge: "uge",
	Slt: "slt", Sle: "sle", Sgt: "sgt", Sge: "sge",
}

// String returns the mnemonic.
func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Instr is one IR instruction. Which fields are meaningful depends on Op;
// see the opcode comments.
type Instr struct {
	Op      Op
	Bin     BinOp
	Pred    Pred
	Dst     Reg
	A, B, C Reg
	Imm     uint64
	Width   uint8 // operand/result width in bits (1..64)
	Callee  string
	Args    []Reg
	Targets []*Block
	Vals    []uint64
	Msg     string
}

// Block is a basic block: straight-line instructions ending in exactly one
// terminator.
type Block struct {
	Name   string
	Fn     *Func
	Instrs []Instr
	// ID is the global basic-block index within the Program, assigned by
	// Program.Finalize in deterministic order.
	ID int
	// Index is the position within the owning function.
	Index int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Successors returns the control-flow successor blocks (branch/switch
// targets; empty for ret/exit).
func (b *Block) Successors() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

func (b *Block) String() string { return b.Fn.Name + "." + b.Name }

// Func is a function: NumParams arguments arrive in registers 0..N-1.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int // frame size in registers
	Blocks    []*Block
	Prog      *Program
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Program is a complete IR module.
type Program struct {
	Name   string
	Funcs  []*Func
	byName map[string]*Func

	// Filled by Finalize:
	AllBlocks []*Block // global block list; AllBlocks[b.ID] == b
	NumInstrs int
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	return p.byName[name]
}

// Entry returns the program entry function ("main").
func (p *Program) Entry() *Func { return p.byName["main"] }

// Finalize assigns global block IDs (in function order, block order),
// resolves call targets, and validates the program. It must be called
// once, after all functions are built.
func (p *Program) Finalize() error {
	p.AllBlocks = p.AllBlocks[:0]
	p.NumInstrs = 0
	id := 0
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			b.ID = id
			b.Index = bi
			id++
			p.AllBlocks = append(p.AllBlocks, b)
			p.NumInstrs += len(b.Instrs)
		}
	}
	return p.validate()
}

func (p *Program) validate() error {
	if p.byName["main"] == nil {
		return fmt.Errorf("ir: program %q has no main function", p.Name)
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %q has no blocks", f.Name)
		}
		if f.NumParams > f.NumRegs {
			return fmt.Errorf("ir: function %q has %d params but only %d regs", f.Name, f.NumParams, f.NumRegs)
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				return fmt.Errorf("ir: block %s is empty", b)
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				isLast := i == len(b.Instrs)-1
				if in.Op.IsTerminator() != isLast {
					return fmt.Errorf("ir: block %s instr %d (%s): terminator placement", b, i, in.Op)
				}
				if err := p.validateInstr(f, b, in); err != nil {
					return err
				}
			}
		}
		// Every block must be reachable from the entry: unreachable blocks
		// inflate block-ID-based metrics (BBV dimensions, coverage counts)
		// and always indicate a builder bug.
		reach := make(map[*Block]bool, len(f.Blocks))
		reach[f.Entry()] = true
		work := []*Block{f.Entry()}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range b.Successors() {
				if !reach[s] {
					reach[s] = true
					work = append(work, s)
				}
			}
		}
		for _, b := range f.Blocks {
			if !reach[b] {
				return fmt.Errorf("ir: block %s is unreachable from entry", b)
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(f *Func, b *Block, in *Instr) error {
	badReg := func(r Reg) bool { return r < 0 || int(r) >= f.NumRegs }
	ctx := func() string { return fmt.Sprintf("ir: %s: %s", b, in.Op) }

	checkWidth := func() error {
		if in.Width == 0 || in.Width > 64 {
			return fmt.Errorf("%s: bad width %d", ctx(), in.Width)
		}
		return nil
	}

	switch in.Op {
	case OpConst, OpAlloca, OpInput, OpInputLen:
		if badReg(in.Dst) {
			return fmt.Errorf("%s: bad dst r%d", ctx(), in.Dst)
		}
		if in.Op == OpConst || in.Op == OpInputLen {
			return checkWidth()
		}
	case OpBin, OpCmp:
		if badReg(in.Dst) || badReg(in.A) || badReg(in.B) {
			return fmt.Errorf("%s: bad register", ctx())
		}
		return checkWidth()
	case OpNot, OpMov, OpZext, OpSext, OpTrunc:
		if badReg(in.Dst) || badReg(in.A) {
			return fmt.Errorf("%s: bad register", ctx())
		}
		return checkWidth()
	case OpSelect:
		if badReg(in.Dst) || badReg(in.A) || badReg(in.B) || badReg(in.C) {
			return fmt.Errorf("%s: bad register", ctx())
		}
		return checkWidth()
	case OpLoad:
		if badReg(in.Dst) || badReg(in.A) {
			return fmt.Errorf("%s: bad register", ctx())
		}
		return checkWidth()
	case OpStore:
		if badReg(in.A) || badReg(in.B) {
			return fmt.Errorf("%s: bad register", ctx())
		}
		return checkWidth()
	case OpCall:
		callee := p.byName[in.Callee]
		if callee == nil {
			return fmt.Errorf("%s: unknown callee %q", ctx(), in.Callee)
		}
		if len(in.Args) != callee.NumParams {
			return fmt.Errorf("%s: %q takes %d args, got %d", ctx(), in.Callee, callee.NumParams, len(in.Args))
		}
		for _, a := range in.Args {
			if badReg(a) {
				return fmt.Errorf("%s: bad arg register r%d", ctx(), a)
			}
		}
		if in.Dst != NoReg && badReg(in.Dst) {
			return fmt.Errorf("%s: bad dst r%d", ctx(), in.Dst)
		}
	case OpRet:
		if in.A != NoReg && badReg(in.A) {
			return fmt.Errorf("%s: bad register", ctx())
		}
	case OpBr:
		if badReg(in.A) || len(in.Targets) != 2 {
			return fmt.Errorf("%s: needs cond reg and 2 targets", ctx())
		}
	case OpJmp:
		if len(in.Targets) != 1 {
			return fmt.Errorf("%s: needs 1 target", ctx())
		}
	case OpSwitch:
		if badReg(in.A) || len(in.Targets) != len(in.Vals)+1 {
			return fmt.Errorf("%s: needs value reg and len(vals)+1 targets", ctx())
		}
	case OpAssert:
		if badReg(in.A) {
			return fmt.Errorf("%s: bad register", ctx())
		}
	case OpExit, OpPrint:
		// no operands
	default:
		return fmt.Errorf("%s: unknown opcode", ctx())
	}
	for _, t := range in.Targets {
		if t == nil {
			return fmt.Errorf("%s: nil branch target", ctx())
		}
		if t.Fn != f {
			return fmt.Errorf("%s: branch target %s in another function", ctx(), t)
		}
	}
	return nil
}

// MakeObjRef packs an object id and offset into a 64-bit pointer value.
func MakeObjRef(objID uint32, off uint32) uint64 {
	return uint64(objID)<<32 | uint64(off)
}

// ObjID extracts the object id of a pointer value.
func ObjID(ptr uint64) uint32 { return uint32(ptr >> 32) }

// ObjOff extracts the byte offset of a pointer value.
func ObjOff(ptr uint64) uint32 { return uint32(ptr) }
