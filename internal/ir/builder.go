package ir

import "fmt"

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, byName: make(map[string]*Func)}
}

// NewFunc adds a function with the given number of parameters and returns
// its builder. Parameters occupy registers 0..numParams-1.
func (p *Program) NewFunc(name string, numParams int) *FuncBuilder {
	if p.byName[name] != nil {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Func{Name: name, NumParams: numParams, NumRegs: numParams, Prog: p}
	p.Funcs = append(p.Funcs, f)
	p.byName[name] = f
	return &FuncBuilder{fn: f}
}

// FuncBuilder builds one function. The first block created is the entry.
type FuncBuilder struct {
	fn    *Func
	names map[string]int
}

// Fn returns the function under construction.
func (fb *FuncBuilder) Fn() *Func { return fb.fn }

// Param returns the register holding the i-th parameter.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.fn.NumParams {
		panic(fmt.Sprintf("ir: %s has no param %d", fb.fn.Name, i))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.fn.NumRegs)
	fb.fn.NumRegs++
	return r
}

// NewBlock appends a new (empty) basic block and returns its builder.
// Duplicate names within a function are uniquified with a numeric suffix
// so listings parse back unambiguously.
func (fb *FuncBuilder) NewBlock(name string) *BlockBuilder {
	if fb.names == nil {
		fb.names = make(map[string]int)
	}
	if n, dup := fb.names[name]; dup {
		fb.names[name] = n + 1
		name = fmt.Sprintf("%s.%d", name, n+1)
	} else {
		fb.names[name] = 0
	}
	b := &Block{Name: name, Fn: fb.fn, Index: len(fb.fn.Blocks)}
	fb.fn.Blocks = append(fb.fn.Blocks, b)
	return &BlockBuilder{fb: fb, blk: b}
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	fb  *FuncBuilder
	blk *Block
}

// Blk returns the block under construction (usable as a branch target).
func (bb *BlockBuilder) Blk() *Block { return bb.blk }

func (bb *BlockBuilder) emit(in Instr) {
	if t := bb.blk.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emit after terminator in %s", bb.blk))
	}
	bb.blk.Instrs = append(bb.blk.Instrs, in)
}

func (bb *BlockBuilder) emitDst(in Instr) Reg {
	in.Dst = bb.fb.NewReg()
	bb.emit(in)
	return in.Dst
}

// Const materialises an immediate of the given width.
func (bb *BlockBuilder) Const(v uint64, width uint) Reg {
	return bb.emitDst(Instr{Op: OpConst, Imm: v, Width: uint8(width)})
}

// Bin emits dst = a <op> b at the given width.
func (bb *BlockBuilder) Bin(op BinOp, a, b Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpBin, Bin: op, A: a, B: b, Width: uint8(width)})
}

// BinImm emits dst = a <op> imm.
func (bb *BlockBuilder) BinImm(op BinOp, a Reg, imm uint64, width uint) Reg {
	c := bb.Const(imm, width)
	return bb.Bin(op, a, c, width)
}

// Add emits dst = a + b.
func (bb *BlockBuilder) Add(a, b Reg, width uint) Reg { return bb.Bin(Add, a, b, width) }

// AddImm emits dst = a + imm.
func (bb *BlockBuilder) AddImm(a Reg, imm uint64, width uint) Reg {
	return bb.BinImm(Add, a, imm, width)
}

// Sub emits dst = a - b.
func (bb *BlockBuilder) Sub(a, b Reg, width uint) Reg { return bb.Bin(Sub, a, b, width) }

// Mul emits dst = a * b.
func (bb *BlockBuilder) Mul(a, b Reg, width uint) Reg { return bb.Bin(Mul, a, b, width) }

// Cmp emits dst = a <pred> b (width-1 result); width is the operand width.
func (bb *BlockBuilder) Cmp(pred Pred, a, b Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpCmp, Pred: pred, A: a, B: b, Width: uint8(width)})
}

// CmpImm emits dst = a <pred> imm.
func (bb *BlockBuilder) CmpImm(pred Pred, a Reg, imm uint64, width uint) Reg {
	c := bb.Const(imm, width)
	return bb.Cmp(pred, a, c, width)
}

// Not emits dst = ^a.
func (bb *BlockBuilder) Not(a Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpNot, A: a, Width: uint8(width)})
}

// Mov emits dst = a.
func (bb *BlockBuilder) Mov(a Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpMov, A: a, Width: uint8(width)})
}

// MovTo copies a into an existing register (for loop-carried variables).
func (bb *BlockBuilder) MovTo(dst, a Reg, width uint) {
	bb.emit(Instr{Op: OpMov, Dst: dst, A: a, Width: uint8(width)})
}

// ConstTo writes an immediate into an existing register.
func (bb *BlockBuilder) ConstTo(dst Reg, v uint64, width uint) {
	bb.emit(Instr{Op: OpConst, Dst: dst, Imm: v, Width: uint8(width)})
}

// BinTo emits dst = a <op> b into an existing register.
func (bb *BlockBuilder) BinTo(dst Reg, op BinOp, a, b Reg, width uint) {
	bb.emit(Instr{Op: OpBin, Bin: op, Dst: dst, A: a, B: b, Width: uint8(width)})
}

// Zext widens a to width bits (zero-extended).
func (bb *BlockBuilder) Zext(a Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpZext, A: a, Width: uint8(width)})
}

// Sext widens a to width bits (sign-extended). The source width is taken
// from the producing instruction at execution time, so the executor tracks
// register widths dynamically.
func (bb *BlockBuilder) Sext(a Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpSext, A: a, Width: uint8(width)})
}

// Trunc narrows a to width bits.
func (bb *BlockBuilder) Trunc(a Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpTrunc, A: a, Width: uint8(width)})
}

// Select emits dst = cond ? b : c.
func (bb *BlockBuilder) Select(cond, b, c Reg, width uint) Reg {
	return bb.emitDst(Instr{Op: OpSelect, A: cond, B: b, C: c, Width: uint8(width)})
}

// Alloca allocates size bytes and yields the object pointer.
func (bb *BlockBuilder) Alloca(size uint32) Reg {
	return bb.emitDst(Instr{Op: OpAlloca, Imm: uint64(size)})
}

// Input yields the pointer to the symbolic input object.
func (bb *BlockBuilder) Input() Reg {
	return bb.emitDst(Instr{Op: OpInput})
}

// InputLen yields the input length as a value of the given width.
func (bb *BlockBuilder) InputLen(width uint) Reg {
	return bb.emitDst(Instr{Op: OpInputLen, Width: uint8(width)})
}

// Load reads width bits little-endian from *(ptr+off).
func (bb *BlockBuilder) Load(ptr Reg, off uint64, width uint) Reg {
	return bb.emitDst(Instr{Op: OpLoad, A: ptr, Imm: off, Width: uint8(width)})
}

// Store writes width bits of val little-endian to *(ptr+off).
func (bb *BlockBuilder) Store(ptr Reg, off uint64, val Reg, width uint) {
	bb.emit(Instr{Op: OpStore, A: ptr, B: val, Imm: off, Width: uint8(width)})
}

// Call invokes callee with args; the result register is returned (valid
// even for void callees, where it reads as 0).
func (bb *BlockBuilder) Call(callee string, args ...Reg) Reg {
	cp := make([]Reg, len(args))
	copy(cp, args)
	return bb.emitDst(Instr{Op: OpCall, Callee: callee, Args: cp})
}

// Ret returns a value.
func (bb *BlockBuilder) Ret(a Reg) {
	bb.emit(Instr{Op: OpRet, A: a})
}

// RetVoid returns without a value.
func (bb *BlockBuilder) RetVoid() {
	bb.emit(Instr{Op: OpRet, A: NoReg})
}

// Br branches on cond to then/else blocks.
func (bb *BlockBuilder) Br(cond Reg, then, els *Block) {
	bb.emit(Instr{Op: OpBr, A: cond, Targets: []*Block{then, els}})
}

// Jmp jumps unconditionally.
func (bb *BlockBuilder) Jmp(to *Block) {
	bb.emit(Instr{Op: OpJmp, Targets: []*Block{to}})
}

// Switch dispatches on v: vals[i] -> targets[i], otherwise def.
func (bb *BlockBuilder) Switch(v Reg, vals []uint64, targets []*Block, def *Block) {
	if len(vals) != len(targets) {
		panic("ir: switch vals/targets length mismatch")
	}
	ts := make([]*Block, 0, len(targets)+1)
	ts = append(ts, targets...)
	ts = append(ts, def)
	vs := make([]uint64, len(vals))
	copy(vs, vals)
	bb.emit(Instr{Op: OpSwitch, A: v, Vals: vs, Targets: ts})
}

// Assert reports a bug with msg when cond is false.
func (bb *BlockBuilder) Assert(cond Reg, msg string) {
	bb.emit(Instr{Op: OpAssert, A: cond, Msg: msg})
}

// Exit ends the path successfully.
func (bb *BlockBuilder) Exit() {
	bb.emit(Instr{Op: OpExit})
}

// Print emits a debugging marker.
func (bb *BlockBuilder) Print(msg string) {
	bb.emit(Instr{Op: OpPrint, Msg: msg})
}
