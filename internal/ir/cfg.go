package ir

// SuccsWithCalls returns, per global block ID, the adjacency list used for
// distance-to-uncovered heuristics: branch/switch targets plus the entry
// block of every function called in the block (an approximation of KLEE's
// inter-procedural distance metric — return edges are not modelled).
// Each successor appears once, even when a block calls the same function
// twice or a switch repeats a target, so BFS frontier sizes reflect
// distinct edges.
func SuccsWithCalls(p *Program) [][]int {
	adj := make([][]int, len(p.AllBlocks))
	seen := make(map[int]bool)
	for _, b := range p.AllBlocks {
		var out []int
		for id := range seen {
			delete(seen, id)
		}
		add := func(id int) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpCall {
				if callee := p.Func(in.Callee); callee != nil {
					add(callee.Entry().ID)
				}
			}
		}
		for _, s := range b.Successors() {
			add(s.ID)
		}
		adj[b.ID] = out
	}
	return adj
}

// BFSDistance returns the minimum number of edges from block `from` to any
// block for which target returns true, following adj; -1 when unreachable.
func BFSDistance(adj [][]int, from int, target func(int) bool) int {
	if target(from) {
		return 0
	}
	seen := make([]bool, len(adj))
	seen[from] = true
	frontier := []int{from}
	dist := 0
	for len(frontier) > 0 {
		dist++
		var next []int
		for _, b := range frontier {
			for _, s := range adj[b] {
				if seen[s] {
					continue
				}
				if target(s) {
					return dist
				}
				seen[s] = true
				next = append(next, s)
			}
		}
		frontier = next
	}
	return -1
}
