package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds a tiny valid program:
//
//	main: x = 5; while (x != 0) x--; exit
func buildCountdown(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("countdown")
	fb := p.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	done := fb.NewBlock("done")

	x := fb.NewReg()
	entry.ConstTo(x, 5, 32)
	entry.Jmp(head.Blk())

	c := head.CmpImm(Ne, x, 0, 32)
	head.Br(c, body.Blk(), done.Blk())

	nx := body.BinImm(Sub, x, 1, 32)
	body.MovTo(x, nx, 32)
	body.Jmp(head.Blk())

	done.Exit()

	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func TestBuildAndFinalize(t *testing.T) {
	p := buildCountdown(t)
	if got := len(p.AllBlocks); got != 4 {
		t.Errorf("blocks = %d, want 4", got)
	}
	for i, b := range p.AllBlocks {
		if b.ID != i {
			t.Errorf("block %s ID = %d, want %d", b, b.ID, i)
		}
	}
	if p.Entry() == nil || p.Entry().Name != "main" {
		t.Error("missing main")
	}
	if p.NumInstrs == 0 {
		t.Error("NumInstrs not counted")
	}
}

func TestSuccessors(t *testing.T) {
	p := buildCountdown(t)
	head := p.AllBlocks[1]
	succ := head.Successors()
	if len(succ) != 2 || succ[0].Name != "body" || succ[1].Name != "done" {
		t.Errorf("head successors = %v", succ)
	}
	done := p.AllBlocks[3]
	if len(done.Successors()) != 0 {
		t.Errorf("exit block should have no successors")
	}
}

func TestValidateRejectsMissingMain(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("helper", 0)
	b := fb.NewBlock("entry")
	b.Exit()
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("expected missing-main error, got %v", err)
	}
}

func TestValidateRejectsEmptyBlock(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	fb.NewBlock("entry")
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("expected empty-block error, got %v", err)
	}
}

func TestValidateRejectsMissingTerminator(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Const(1, 32)
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("expected terminator error, got %v", err)
	}
}

func TestValidateRejectsUnknownCallee(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Call("nope")
	b.Exit()
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "unknown callee") {
		t.Errorf("expected callee error, got %v", err)
	}
}

func TestValidateRejectsArgCountMismatch(t *testing.T) {
	p := NewProgram("x")
	hb := p.NewFunc("h", 2)
	e := hb.NewBlock("entry")
	e.RetVoid()
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	r := b.Const(1, 32)
	b.Call("h", r) // needs 2 args
	b.Exit()
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "takes 2 args") {
		t.Errorf("expected arg-count error, got %v", err)
	}
}

func TestValidateRejectsCrossFunctionBranch(t *testing.T) {
	p := NewProgram("x")
	hb := p.NewFunc("h", 0)
	he := hb.NewBlock("entry")
	he.RetVoid()
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Jmp(he.Blk())
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "another function") {
		t.Errorf("expected cross-function error, got %v", err)
	}
}

func TestValidateRejectsUnreachableBlock(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Exit()
	orphan := fb.NewBlock("orphan") // no edge from entry
	orphan.Exit()
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("expected unreachable-block error, got %v", err)
	}
}

func TestValidateAcceptsLoopReachableBlocks(t *testing.T) {
	// Reachability must follow the whole CFG, not just forward layout
	// order: "done" is only reachable through the loop's exit edge.
	p := buildCountdown(t)
	if err := p.Finalize(); err != nil {
		t.Fatalf("re-finalize valid loop program: %v", err)
	}
}

func TestEmitAfterTerminatorPanics(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Exit()
	defer func() {
		if recover() == nil {
			t.Error("expected panic emitting after terminator")
		}
	}()
	b.Const(1, 32)
}

func TestObjRefPacking(t *testing.T) {
	ptr := MakeObjRef(7, 0x1234)
	if ObjID(ptr) != 7 || ObjOff(ptr) != 0x1234 {
		t.Errorf("packing broken: id=%d off=%#x", ObjID(ptr), ObjOff(ptr))
	}
}

func TestPrintListing(t *testing.T) {
	p := buildCountdown(t)
	out := p.Print()
	for _, want := range []string{"program countdown", "func main", "cmp.ne", "br r", "exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestSuccsWithCalls(t *testing.T) {
	p := NewProgram("x")
	hb := p.NewFunc("h", 0)
	he := hb.NewBlock("entry")
	he.RetVoid()
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Call("h")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	adj := SuccsWithCalls(p)
	mainEntry := p.Func("main").Entry().ID
	hEntry := p.Func("h").Entry().ID
	found := false
	for _, s := range adj[mainEntry] {
		if s == hEntry {
			found = true
		}
	}
	if !found {
		t.Errorf("call edge main->h missing: %v", adj)
	}
}

func TestSuccsWithCallsDedup(t *testing.T) {
	p := NewProgram("x")
	hb := p.NewFunc("h", 0)
	he := hb.NewBlock("entry")
	he.RetVoid()
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	tgt := fb.NewBlock("tgt")
	b.Call("h")
	b.Call("h") // second call to the same callee
	v := b.Const(0, 32)
	b.Switch(v, []uint64{1, 2}, []*Block{tgt.Blk(), tgt.Blk()}, tgt.Blk())
	tgt.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	adj := SuccsWithCalls(p)
	entry := p.Func("main").Entry().ID
	seen := make(map[int]int)
	for _, s := range adj[entry] {
		seen[s]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("successor %d listed %d times: %v", id, n, adj[entry])
		}
	}
	if len(seen) != 2 { // h's entry + tgt
		t.Errorf("want 2 distinct successors, got %v", adj[entry])
	}
}

func TestBFSDistance(t *testing.T) {
	//  0 -> 1 -> 2 -> 3 ;  0 -> 3 is not direct
	adj := [][]int{{1}, {2}, {3}, {}}
	if d := BFSDistance(adj, 0, func(b int) bool { return b == 3 }); d != 3 {
		t.Errorf("distance = %d, want 3", d)
	}
	if d := BFSDistance(adj, 0, func(b int) bool { return b == 0 }); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	if d := BFSDistance(adj, 3, func(b int) bool { return b == 0 }); d != -1 {
		t.Errorf("unreachable distance = %d, want -1", d)
	}
}

func TestSwitchBuilder(t *testing.T) {
	p := NewProgram("x")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	c1 := fb.NewBlock("c1")
	c2 := fb.NewBlock("c2")
	def := fb.NewBlock("def")
	v := b.Const(2, 32)
	b.Switch(v, []uint64{1, 2}, []*Block{c1.Blk(), c2.Blk()}, def.Blk())
	c1.Exit()
	c2.Exit()
	def.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	term := p.Func("main").Entry().Terminator()
	if term.Op != OpSwitch || len(term.Targets) != 3 {
		t.Errorf("switch terminator malformed: %+v", term)
	}
}
