package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Program.Print back into a
// Program, enabling textual round trips and hand-written test programs:
//
//	program demo
//
//	func main(params=0 regs=4) {
//	entry:
//	  r0 = const 5 w32
//	  r1 = const 3 w32
//	  r2 = add r0, r1 w32
//	  exit
//	}
//
// Block-name labels end with ':' (trailing "; bbN" comments are ignored).
// The parser finalises the program before returning it.
func Parse(src string) (*Program, error) {
	p := &parser{}
	prog, err := p.run(src)
	if err != nil {
		return nil, err
	}
	if err := prog.Finalize(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	prog *Program
	fn   *Func
	blk  *Block
	// branch targets are resolved after each function body completes
	fixups []fixup
	blocks map[string]*Block
	line   int
}

type fixup struct {
	instr *Instr
	names []string
	line  int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: parse line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) (*Program, error) {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "program "):
			if p.prog != nil {
				return nil, p.errf("duplicate program header")
			}
			p.prog = NewProgram(strings.TrimSpace(strings.TrimPrefix(line, "program ")))
		case strings.HasPrefix(line, "func "):
			if err := p.startFunc(line); err != nil {
				return nil, err
			}
		case line == "}":
			if err := p.endFunc(); err != nil {
				return nil, err
			}
		case strings.HasSuffix(line, ":"):
			if err := p.startBlock(strings.TrimSuffix(line, ":")); err != nil {
				return nil, err
			}
		default:
			if err := p.instr(line); err != nil {
				return nil, err
			}
		}
	}
	if p.prog == nil {
		return nil, fmt.Errorf("ir: parse: no program header")
	}
	if p.fn != nil {
		return nil, fmt.Errorf("ir: parse: unterminated function %q", p.fn.Name)
	}
	return p.prog, nil
}

// startFunc parses `func name(params=N regs=M) {`.
func (p *parser) startFunc(line string) error {
	if p.prog == nil {
		return p.errf("func before program header")
	}
	if p.fn != nil {
		return p.errf("nested func")
	}
	rest := strings.TrimPrefix(line, "func ")
	open := strings.Index(rest, "(")
	closeP := strings.Index(rest, ")")
	if open < 0 || closeP < open || !strings.HasSuffix(strings.TrimSpace(rest), "{") {
		return p.errf("malformed func header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	params, regs := -1, -1
	for _, kv := range strings.Fields(rest[open+1 : closeP]) {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return p.errf("malformed func attribute %q", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return p.errf("bad number in %q", kv)
		}
		switch parts[0] {
		case "params":
			params = n
		case "regs":
			regs = n
		default:
			return p.errf("unknown func attribute %q", parts[0])
		}
	}
	if params < 0 || regs < 0 {
		return p.errf("func header needs params= and regs=")
	}
	fb := p.prog.NewFunc(name, params)
	p.fn = fb.Fn()
	p.fn.NumRegs = regs
	p.blocks = make(map[string]*Block)
	p.fixups = nil
	return nil
}

func (p *parser) endFunc() error {
	if p.fn == nil {
		return p.errf("unexpected }")
	}
	for _, f := range p.fixups {
		for _, name := range f.names {
			b, ok := p.blocks[name]
			if !ok {
				return fmt.Errorf("ir: parse line %d: unknown block %q", f.line, name)
			}
			f.instr.Targets = append(f.instr.Targets, b)
		}
	}
	p.fn, p.blk, p.blocks, p.fixups = nil, nil, nil, nil
	return nil
}

func (p *parser) startBlock(name string) error {
	if p.fn == nil {
		return p.errf("block %q outside function", name)
	}
	if _, dup := p.blocks[name]; dup {
		return p.errf("duplicate block %q", name)
	}
	b := &Block{Name: name, Fn: p.fn}
	p.fn.Blocks = append(p.fn.Blocks, b)
	p.blocks[name] = b
	p.blk = b
	return nil
}

// reg parses "r12" (or "r12," with trailing comma stripped by caller).
func (p *parser) reg(tok string) (Reg, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, p.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, p.errf("bad register %q", tok)
	}
	return Reg(n), nil
}

// width parses "w32".
func (p *parser) width(tok string) (uint8, error) {
	if !strings.HasPrefix(tok, "w") {
		return 0, p.errf("expected width, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 1 || n > 64 {
		return 0, p.errf("bad width %q", tok)
	}
	return uint8(n), nil
}

func (p *parser) imm(tok string) (uint64, error) {
	v, err := strconv.ParseUint(tok, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", tok)
	}
	return v, nil
}

var binByName = func() map[string]BinOp {
	m := make(map[string]BinOp, len(binNames))
	for op, name := range binNames {
		m[name] = op
	}
	return m
}()

var predByName = func() map[string]Pred {
	m := make(map[string]Pred, len(predNames))
	for pr, name := range predNames {
		m[name] = pr
	}
	return m
}()

// instr parses one instruction line.
func (p *parser) instr(line string) error {
	if p.blk == nil {
		return p.errf("instruction outside block: %q", line)
	}
	// split `rD = rhs` from no-dst forms
	var dst Reg = NoReg
	rhs := line
	if eq := strings.Index(line, " = "); eq >= 0 {
		d, err := p.reg(strings.TrimSpace(line[:eq]))
		if err != nil {
			return err
		}
		dst = d
		rhs = strings.TrimSpace(line[eq+3:])
	}
	toks := strings.Fields(strings.ReplaceAll(rhs, ",", " "))
	if len(toks) == 0 {
		return p.errf("empty instruction")
	}
	op := toks[0]
	emit := func(in Instr) {
		in.Dst = dst
		p.blk.Instrs = append(p.blk.Instrs, in)
	}
	switch {
	case op == "const":
		v, err := p.imm(toks[1])
		if err != nil {
			return err
		}
		w, err := p.width(toks[2])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpConst, Imm: v, Width: w})
	case binByName[op] != 0:
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		b, err := p.reg(toks[2])
		if err != nil {
			return err
		}
		w, err := p.width(toks[3])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpBin, Bin: binByName[op], A: a, B: b, Width: w})
	case strings.HasPrefix(op, "cmp."):
		pr, ok := predByName[strings.TrimPrefix(op, "cmp.")]
		if !ok {
			return p.errf("unknown predicate %q", op)
		}
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		b, err := p.reg(toks[2])
		if err != nil {
			return err
		}
		w, err := p.width(toks[3])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpCmp, Pred: pr, A: a, B: b, Width: w})
	case op == "not" || op == "mov" || op == "zext" || op == "sext" || op == "trunc":
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		w, err := p.width(toks[2])
		if err != nil {
			return err
		}
		kinds := map[string]Op{"not": OpNot, "mov": OpMov, "zext": OpZext, "sext": OpSext, "trunc": OpTrunc}
		emit(Instr{Op: kinds[op], A: a, Width: w})
	case op == "select":
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		b, err := p.reg(toks[2])
		if err != nil {
			return err
		}
		c, err := p.reg(toks[3])
		if err != nil {
			return err
		}
		w, err := p.width(toks[4])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpSelect, A: a, B: b, C: c, Width: w})
	case op == "alloca":
		v, err := p.imm(toks[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpAlloca, Imm: v})
	case op == "input":
		emit(Instr{Op: OpInput})
	case op == "inputlen":
		w, err := p.width(toks[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpInputLen, Width: w})
	case op == "load":
		a, off, err := p.memOperand(toks[1])
		if err != nil {
			return err
		}
		w, err := p.width(toks[2])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpLoad, A: a, Imm: off, Width: w})
	case op == "store":
		a, off, err := p.memOperand(toks[1])
		if err != nil {
			return err
		}
		b, err := p.reg(toks[2])
		if err != nil {
			return err
		}
		w, err := p.width(toks[3])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpStore, A: a, B: b, Imm: off, Width: w})
	case op == "call":
		// call name(r1 r2 ...) — commas already stripped
		rest := strings.TrimSpace(strings.TrimPrefix(rhs, "call"))
		open := strings.Index(rest, "(")
		closeP := strings.LastIndex(rest, ")")
		if open < 0 || closeP < open {
			return p.errf("malformed call %q", rhs)
		}
		name := strings.TrimSpace(rest[:open])
		var args []Reg
		for _, tok := range strings.Fields(strings.ReplaceAll(rest[open+1:closeP], ",", " ")) {
			a, err := p.reg(tok)
			if err != nil {
				return err
			}
			args = append(args, a)
		}
		emit(Instr{Op: OpCall, Callee: name, Args: args})
	case op == "ret":
		in := Instr{Op: OpRet, A: NoReg}
		if len(toks) > 1 {
			a, err := p.reg(toks[1])
			if err != nil {
				return err
			}
			in.A = a
		}
		emit(in)
	case op == "br":
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		if len(toks) != 4 {
			return p.errf("br needs cond and two targets")
		}
		p.blk.Instrs = append(p.blk.Instrs, Instr{Op: OpBr, A: a})
		p.fixups = append(p.fixups, fixup{
			instr: &p.blk.Instrs[len(p.blk.Instrs)-1],
			names: []string{toks[2], toks[3]},
			line:  p.line,
		})
	case op == "jmp":
		p.blk.Instrs = append(p.blk.Instrs, Instr{Op: OpJmp})
		p.fixups = append(p.fixups, fixup{
			instr: &p.blk.Instrs[len(p.blk.Instrs)-1],
			names: []string{toks[1]},
			line:  p.line,
		})
	case op == "switch":
		// switch rN [v:target v:target] default target
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		open := strings.Index(rhs, "[")
		closeB := strings.Index(rhs, "]")
		if open < 0 || closeB < open {
			return p.errf("switch needs a [cases] list")
		}
		var vals []uint64
		var names []string
		for _, pair := range strings.Fields(rhs[open+1 : closeB]) {
			parts := strings.SplitN(pair, ":", 2)
			if len(parts) != 2 {
				return p.errf("malformed switch case %q", pair)
			}
			v, err := p.imm(parts[0])
			if err != nil {
				return err
			}
			vals = append(vals, v)
			names = append(names, parts[1])
		}
		tail := strings.Fields(strings.TrimSpace(rhs[closeB+1:]))
		if len(tail) != 2 || tail[0] != "default" {
			return p.errf("switch needs a default target")
		}
		names = append(names, tail[1])
		p.blk.Instrs = append(p.blk.Instrs, Instr{Op: OpSwitch, A: a, Vals: vals})
		p.fixups = append(p.fixups, fixup{
			instr: &p.blk.Instrs[len(p.blk.Instrs)-1],
			names: names,
			line:  p.line,
		})
	case op == "assert":
		a, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		msg, err := quoted(rhs)
		if err != nil {
			return p.errf("%v", err)
		}
		emit(Instr{Op: OpAssert, A: a, Msg: msg})
	case op == "exit":
		emit(Instr{Op: OpExit})
	case op == "print":
		msg, err := quoted(rhs)
		if err != nil {
			return p.errf("%v", err)
		}
		emit(Instr{Op: OpPrint, Msg: msg})
	default:
		return p.errf("unknown instruction %q", op)
	}
	return nil
}

// memOperand parses "[r5+12]".
func (p *parser) memOperand(tok string) (Reg, uint64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, p.errf("expected [rN+off], got %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	parts := strings.SplitN(inner, "+", 2)
	r, err := p.reg(parts[0])
	if err != nil {
		return 0, 0, err
	}
	var off uint64
	if len(parts) == 2 {
		off, err = p.imm(parts[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return r, off, nil
}

// stripComment removes a trailing "; ..." comment, ignoring semicolons
// inside double-quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++ // skip the escaped character
			}
		case ';':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// quoted extracts the double-quoted string from a line.
func quoted(line string) (string, error) {
	i := strings.Index(line, `"`)
	j := strings.LastIndex(line, `"`)
	if i < 0 || j <= i {
		return "", fmt.Errorf("missing quoted string in %q", line)
	}
	return strconv.Unquote(line[i : j+1])
}
