package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `
program demo

func helper(params=1 regs=3) {
entry:
  r1 = const 2 w32
  r2 = mul r0, r1 w32
  ret r2
}

func main(params=0 regs=8) {
entry:
  r0 = const 5 w32
  r1 = call helper(r0)
  r2 = cmp.eq r1, r0 w32
  br r2, bad, good
good:
  r3 = input
  r4 = load [r3+0] w8
  r5 = alloca 16
  store [r5+2], r4 w8
  r6 = inputlen w32
  switch r6 [0:empty 1:one] default many
bad:
  assert r2 "unreachable"
  exit
empty:
  print "no input"
  exit
one:
  jmp many
many:
  exit
}
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Func("helper") == nil || p.Entry() == nil {
		t.Fatal("functions missing")
	}
	if got := len(p.Func("main").Blocks); got != 6 {
		t.Errorf("main blocks = %d, want 6", got)
	}
	term := p.Entry().Entry().Terminator()
	if term.Op != OpBr || term.Targets[0].Name != "bad" || term.Targets[1].Name != "good" {
		t.Errorf("br targets wrong: %+v", term)
	}
}

// TestPrintParseRoundTrip: Print output parses back into a program whose
// listing matches the original (fixed point).
func TestPrintParseRoundTrip(t *testing.T) {
	p1, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text1 := p1.Print()
	p2, err := Parse(text1)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text1)
	}
	text2 := p2.Print()
	if text1 != text2 {
		t.Errorf("round trip not a fixed point:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{"no header", "func main(params=0 regs=1) {\nentry:\n  exit\n}", "before program header"},
		{"unterminated func", "program x\nfunc main(params=0 regs=1) {\nentry:\n  exit", "unterminated"},
		{"bad instr", "program x\nfunc main(params=0 regs=1) {\nentry:\n  frobnicate\n}", "unknown instruction"},
		{"unknown target", "program x\nfunc main(params=0 regs=1) {\nentry:\n  jmp nowhere\n}", "unknown block"},
		{"instr outside block", "program x\nfunc main(params=0 regs=1) {\n  exit\n}", "outside block"},
		{"dup block", "program x\nfunc main(params=0 regs=1) {\nentry:\n  exit\nentry:\n  exit\n}", "duplicate block"},
		{"bad width", "program x\nfunc main(params=0 regs=2) {\nentry:\n  r0 = const 1 w99\n  exit\n}", "bad width"},
		{"missing main", "program x\nfunc helper(params=0 regs=1) {\nentry:\n  exit\n}", "no main"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.give)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

// TestParsedProgramRunsLikeBuilt: a parsed program and its builder-built
// twin produce the same listing.
func TestParsedProgramMatchesBuilder(t *testing.T) {
	pb := NewProgram("twin")
	fb := pb.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	x := b.Const(7, 32)
	y := b.BinImm(Add, x, 3, 32)
	c := b.CmpImm(Ult, y, 100, 32)
	b.Assert(c, "bound")
	b.Exit()
	if err := pb.Finalize(); err != nil {
		t.Fatal(err)
	}

	parsed, err := Parse(pb.Print())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Print() != pb.Print() {
		t.Errorf("parsed listing differs:\n%s\nvs\n%s", parsed.Print(), pb.Print())
	}
}
