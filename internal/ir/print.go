package ir

import (
	"fmt"
	"strings"
)

// Print renders the program as a human-readable listing (used by the
// disassembler command and golden tests).
func (p *Program) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "\nfunc %s(params=%d regs=%d) {\n", f.Name, f.NumParams, f.NumRegs)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:  ; bb%d\n", blk.Name, blk.ID)
			for i := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", formatInstr(&blk.Instrs[i]))
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatInstr(in *Instr) string {
	w := func() string { return fmt.Sprintf("w%d", in.Width) }
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d %s", in.Dst, in.Imm, w())
	case OpBin:
		return fmt.Sprintf("r%d = %s r%d, r%d %s", in.Dst, in.Bin, in.A, in.B, w())
	case OpCmp:
		return fmt.Sprintf("r%d = cmp.%s r%d, r%d %s", in.Dst, in.Pred, in.A, in.B, w())
	case OpNot:
		return fmt.Sprintf("r%d = not r%d %s", in.Dst, in.A, w())
	case OpMov:
		return fmt.Sprintf("r%d = mov r%d %s", in.Dst, in.A, w())
	case OpZext:
		return fmt.Sprintf("r%d = zext r%d %s", in.Dst, in.A, w())
	case OpSext:
		return fmt.Sprintf("r%d = sext r%d %s", in.Dst, in.A, w())
	case OpTrunc:
		return fmt.Sprintf("r%d = trunc r%d %s", in.Dst, in.A, w())
	case OpSelect:
		return fmt.Sprintf("r%d = select r%d, r%d, r%d %s", in.Dst, in.A, in.B, in.C, w())
	case OpAlloca:
		return fmt.Sprintf("r%d = alloca %d", in.Dst, in.Imm)
	case OpLoad:
		return fmt.Sprintf("r%d = load [r%d+%d] %s", in.Dst, in.A, in.Imm, w())
	case OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d %s", in.A, in.Imm, in.B, w())
	case OpInput:
		return fmt.Sprintf("r%d = input", in.Dst)
	case OpInputLen:
		return fmt.Sprintf("r%d = inputlen %s", in.Dst, w())
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Callee, strings.Join(args, ", "))
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case OpBr:
		return fmt.Sprintf("br r%d, %s, %s", in.A, in.Targets[0].Name, in.Targets[1].Name)
	case OpJmp:
		return fmt.Sprintf("jmp %s", in.Targets[0].Name)
	case OpSwitch:
		var cases []string
		for i, v := range in.Vals {
			cases = append(cases, fmt.Sprintf("%d:%s", v, in.Targets[i].Name))
		}
		return fmt.Sprintf("switch r%d [%s] default %s", in.A, strings.Join(cases, " "), in.Targets[len(in.Vals)].Name)
	case OpAssert:
		return fmt.Sprintf("assert r%d %q", in.A, in.Msg)
	case OpExit:
		return "exit"
	case OpPrint:
		return fmt.Sprintf("print %q", in.Msg)
	default:
		return in.Op.String()
	}
}
