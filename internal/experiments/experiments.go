// Package experiments regenerates the paper's tables and figures on the
// synthetic targets. Each experiment returns structured rows that
// cmd/experiments renders into EXPERIMENTS.md and bench_test.go wraps as
// benchmarks.
//
// Wall-clock budgets from the paper (1 h / 10 h) map to virtual-time
// budgets B and 10B; the shapes of interest (who wins, plateau vs growth,
// crossovers) are budget-ratio phenomena, not absolute-time ones.
package experiments

import (
	"fmt"
	"math/rand"

	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/pbse"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/symex"
	"pbse/internal/targets"
	"pbse/internal/trace"
)

// Config scales every experiment.
type Config struct {
	// BudgetB is the "1 hour" virtual-time budget; the "10 hour" column
	// uses 10x this value.
	BudgetB int64
	// SymSizes are the symbolic-file sizes of Tables I/II.
	SymSizes []int
	// Seed drives all randomness.
	Seed int64
	// Progress, when set, receives one line per measurement cell.
	Progress func(string)
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// DefaultConfig returns budgets sized for a full run on a laptop
// (tens of minutes).
func DefaultConfig() Config {
	return Config{BudgetB: 50_000, SymSizes: []int{10, 100, 1000, 10000}, Seed: 42}
}

// BaselineCell is one searcher × size measurement with both budget
// snapshots.
type BaselineCell struct {
	Searcher symex.SearcherKind
	SymSize  int
	CovB     int // blocks covered at budget B  ("1h")
	Cov10B   int // blocks covered at 10B       ("10h")
}

// PBSECell is a pbSE measurement for one seed.
type PBSECell struct {
	SeedSize int
	CTime    int64
	PTimeMS  float64
	CovB     int
	Cov10B   int
	Phases   int
	Traps    int
	Bugs     int
}

// runBaseline measures one searcher at B and 10B in a single run.
func runBaseline(prog *ir.Program, kind symex.SearcherKind, symSize int, budgetB, seed int64) (BaselineCell, error) {
	ex := symex.NewExecutor(prog, symex.Options{InputSize: symSize})
	s, err := symex.NewSearcher(kind, ex, rand.New(rand.NewSource(seed)))
	if err != nil {
		return BaselineCell{}, err
	}
	s.Add(ex.NewEntryState())
	r := &symex.Runner{Ex: ex, Search: s}
	r.Run(budgetB)
	covB := ex.NumCovered()
	r.Run(10 * budgetB)
	return BaselineCell{Searcher: kind, SymSize: symSize, CovB: covB, Cov10B: ex.NumCovered()}, nil
}

// runPBSE measures pbSE at B and 10B (two runs; the schedule adapts to
// the budget).
func runPBSE(tgt *targets.Target, seedSize int, budgetB, seed int64) (PBSECell, error) {
	// (progress for these cells is reported by the callers)
	gen := func(budget int64) (*pbse.Result, error) {
		prog, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		in := tgt.GenSeed(rand.New(rand.NewSource(seed)), seedSize)
		return pbse.Run(prog, in, pbse.Options{Budget: budget, Seed: seed},
			symex.Options{InputSize: len(in)})
	}
	rB, err := gen(budgetB)
	if err != nil {
		return PBSECell{}, err
	}
	r10, err := gen(10 * budgetB)
	if err != nil {
		return PBSECell{}, err
	}
	return PBSECell{
		SeedSize: seedSize,
		CTime:    r10.CTime,
		PTimeMS:  float64(r10.PTime.Microseconds()) / 1000,
		CovB:     rB.Covered,
		Cov10B:   r10.Covered,
		Phases:   len(r10.Division.Phases),
		Traps:    r10.Division.NumTrap,
		Bugs:     len(r10.Bugs),
	}, nil
}

// TableIResult holds the readelf searcher comparison (Table I).
type TableIResult struct {
	Baselines []BaselineCell // 7 searchers × sizes
	PBSE      []PBSECell     // two seed sizes (paper: 576 and 7981)
	Blocks    int
}

// TableI reproduces Table I on the readelf analogue.
func TableI(cfg Config) (*TableIResult, error) {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		return nil, err
	}
	res := &TableIResult{}
	for _, kind := range symex.AllSearcherKinds {
		for _, size := range cfg.SymSizes {
			cfg.progress("table1 %s sym-%d", kind, size)
			prog, err := tgt.Build()
			if err != nil {
				return nil, err
			}
			res.Blocks = len(prog.AllBlocks)
			cell, err := runBaseline(prog, kind, size, cfg.BudgetB, cfg.Seed)
			if err != nil {
				return nil, err
			}
			res.Baselines = append(res.Baselines, cell)
		}
	}
	// the paper's two seeds (576 and 7981 bytes) scale to 576 and 998
	for _, seedSize := range []int{576, 998} {
		cfg.progress("table1 pbSE seed-%d", seedSize)
		cell, err := runPBSE(tgt, seedSize, cfg.BudgetB, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.PBSE = append(res.PBSE, cell)
	}
	return res, nil
}

// TableIIRow is one program's comparison (Table II).
type TableIIRow struct {
	Driver      string
	Blocks      int
	RandomPath  []BaselineCell // per size
	CovNew      []BaselineCell
	PBSE        PBSECell
	IncreasePct float64 // pbSE 10B over best baseline 10B
}

// TableII reproduces Table II on gif2tiff, pngtest and dwarfdump.
func TableII(cfg Config) ([]TableIIRow, error) {
	var out []TableIIRow
	for _, driver := range []string{"gif2tiff", "pngtest", "dwarfdump"} {
		tgt, err := targets.ByDriver(driver)
		if err != nil {
			return nil, err
		}
		row := TableIIRow{Driver: driver}
		best := 0
		for _, kind := range []symex.SearcherKind{symex.SearchRandomPath, symex.SearchCovNew} {
			for _, size := range cfg.SymSizes {
				cfg.progress("table2 %s %s sym-%d", driver, kind, size)
				prog, err := tgt.Build()
				if err != nil {
					return nil, err
				}
				row.Blocks = len(prog.AllBlocks)
				cell, err := runBaseline(prog, kind, size, cfg.BudgetB, cfg.Seed)
				if err != nil {
					return nil, err
				}
				if kind == symex.SearchRandomPath {
					row.RandomPath = append(row.RandomPath, cell)
				} else {
					row.CovNew = append(row.CovNew, cell)
				}
				if cell.Cov10B > best {
					best = cell.Cov10B
				}
			}
		}
		cfg.progress("table2 %s pbSE", driver)
		cell, err := runPBSE(tgt, 576, cfg.BudgetB, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row.PBSE = cell
		if best > 0 {
			row.IncreasePct = 100 * float64(cell.Cov10B-best) / float64(best)
		}
		out = append(out, row)
	}
	return out, nil
}

// TableIIIRow is one (driver, seed) bug-hunt result.
type TableIIIRow struct {
	Driver    string
	SeedSize  int
	Traps     int
	Bugs      []*bugs.Report
	Reproduce int // witnesses that crash the concrete interpreter
}

// TableIII reproduces the bug table: pbSE runs per driver with the
// paper's seed sizes, reporting bug class and the phase it was found in.
func TableIII(cfg Config) ([]TableIIIRow, error) {
	// Seed sizes follow the paper's Table III rows scaled to the targets
	// (the paper's sizes are real-file sizes; ours are divided by ~8 to
	// match the scaled-down formats).
	cases := []struct {
		driver   string
		seedSize int
	}{
		{"pngtest", 576},
		{"gif2tiff", 407},
		{"tiff2rgba", 243},
		{"dwarfdump", 1042},
		{"readelf", 995},
	}
	var out []TableIIIRow
	for _, c := range cases {
		cfg.progress("table3 %s", c.driver)
		tgt, err := targets.ByDriver(c.driver)
		if err != nil {
			return nil, err
		}
		prog, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		in := tgt.GenSeed(rand.New(rand.NewSource(cfg.Seed)), c.seedSize)
		res, err := pbse.Run(prog, in, pbse.Options{Budget: 10 * cfg.BudgetB, Seed: cfg.Seed},
			symex.Options{InputSize: len(in)})
		if err != nil {
			return nil, err
		}
		row := TableIIIRow{Driver: c.driver, SeedSize: c.seedSize, Traps: res.Division.NumTrap, Bugs: res.Bugs}
		for _, b := range res.Bugs {
			if b.Input == nil {
				continue
			}
			r := interp.New(prog, b.Input, interp.Options{MaxSteps: 20_000_000}).Run()
			if r.Reason == interp.StopFault {
				row.Reproduce++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig1Result compares concrete and symbolic block distributions.
type Fig1Result struct {
	Driver         string
	ConcreteBlocks int // distinct blocks on the seed path
	SymbolicBlocks int // distinct blocks covered by KLEE default in B
	Missed         int // concrete-covered blocks KLEE missed (the boxes)
	ConcretePts    []trace.Point
	SymbolicPts    []trace.Point
}

// Fig1 reproduces the Fig 1 panels for readelf, gif2tiff and pngtest.
func Fig1(cfg Config) ([]Fig1Result, error) {
	var out []Fig1Result
	for _, driver := range []string{"readelf", "gif2tiff", "pngtest"} {
		tgt, err := targets.ByDriver(driver)
		if err != nil {
			return nil, err
		}
		progA, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		seed := tgt.GenSeed(rand.New(rand.NewSource(cfg.Seed)), 576)
		exA := symex.NewExecutor(progA, symex.Options{InputSize: len(seed)})
		con, err := concolic.Run(exA, seed, concolic.Options{RecordTrace: true})
		if err != nil {
			return nil, err
		}

		progB, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		exB := symex.NewExecutor(progB, symex.Options{InputSize: len(seed)})
		var symEvents []concolic.TracePoint
		exB.BlockHook = func(_ *symex.State, b *ir.Block, clock int64) {
			symEvents = append(symEvents, concolic.TracePoint{Time: clock, BlockID: b.ID})
		}
		s, _ := symex.NewSearcher(symex.SearchDefault, exB, rand.New(rand.NewSource(cfg.Seed)))
		s.Add(exB.NewEntryState())
		(&symex.Runner{Ex: exB, Search: s}).Run(cfg.BudgetB)

		concCov := map[int]bool{}
		var concIDs []int
		for _, p := range con.Trace {
			if !concCov[p.BlockID] {
				concCov[p.BlockID] = true
				concIDs = append(concIDs, p.BlockID)
			}
		}
		ix := trace.NewIndexer()
		r := Fig1Result{
			Driver:         driver,
			ConcreteBlocks: len(concIDs),
			SymbolicBlocks: exB.NumCovered(),
			Missed:         len(trace.MissedBlocks(concIDs, exB.CoveredBlocks())),
			ConcretePts:    ix.Series(con.Trace),
			SymbolicPts:    ix.Series(symEvents),
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig4Result compares phase division with and without the coverage
// element.
type Fig4Result struct {
	TrapsBBVOnly     int
	TrapsBBVCoverage int
	K1, K2           int
}

// Fig4 reproduces the Fig 4 comparison on gif2tiff.
func Fig4(cfg Config) (*Fig4Result, error) {
	tgt, err := targets.ByDriver("gif2tiff")
	if err != nil {
		return nil, err
	}
	prog, err := tgt.Build()
	if err != nil {
		return nil, err
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(cfg.Seed)), 800)
	dry := interp.New(prog, seed, interp.Options{}).Run()
	interval := dry.Steps / 64
	if interval < 32 {
		interval = 32
	}
	ex := symex.NewExecutor(prog, symex.Options{InputSize: len(seed)})
	con, err := concolic.Run(ex, seed, concolic.Options{Interval: interval})
	if err != nil {
		return nil, err
	}
	wo := phase.DefaultOptions()
	wo.IncludeCoverage = false
	without := phase.Divide(con.BBVs, wo)
	with := phase.Divide(con.BBVs, phase.DefaultOptions())
	return &Fig4Result{
		TrapsBBVOnly:     without.NumTrap,
		TrapsBBVCoverage: with.NumTrap,
		K1:               without.K,
		K2:               with.K,
	}, nil
}

// Fig5Result is the tiff2rgba case study: the CIELab bug is in a trap
// phase reached by pbSE but (ideally) not by the baseline at 10B.
type Fig5Result struct {
	NormalSeedPts []trace.Point
	BuggySeedPts  []trace.Point
	PBSEBugs      []*bugs.Report
	PBSEFoundOOB  bool
	BugPhase      int
	Traps         int
	KLEEFoundOOB  bool // KLEE default at 10B
}

// Fig5 reproduces the Fig 5/Fig 6 case study.
func Fig5(cfg Config) (*Fig5Result, error) {
	tgt, err := targets.ByDriver("tiff2rgba")
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{BugPhase: -1}

	// (a) concrete distribution with the normal seed
	progA, _ := tgt.Build()
	seed := tgt.GenSeed(rand.New(rand.NewSource(cfg.Seed)), 243)
	exA := symex.NewExecutor(progA, symex.Options{InputSize: len(seed)})
	conA, err := concolic.Run(exA, seed, concolic.Options{RecordTrace: true})
	if err != nil {
		return nil, err
	}
	ix := trace.NewIndexer()
	out.NormalSeedPts = ix.Series(conA.Trace)

	// (b) concrete distribution with the buggy seed
	progB, _ := tgt.Build()
	bseed := tgt.GenBuggySeed(rand.New(rand.NewSource(cfg.Seed)))
	exB := symex.NewExecutor(progB, symex.Options{InputSize: len(bseed)})
	conB, err := concolic.Run(exB, bseed, concolic.Options{RecordTrace: true})
	if err != nil {
		return nil, err
	}
	out.BuggySeedPts = ix.Series(conB.Trace)

	// pbSE with the normal seed: must find the CIELab OOB read
	progC, _ := tgt.Build()
	res, err := pbse.Run(progC, seed, pbse.Options{Budget: cfg.BudgetB, Seed: cfg.Seed},
		symex.Options{InputSize: len(seed)})
	if err != nil {
		return nil, err
	}
	out.PBSEBugs = res.Bugs
	out.Traps = res.Division.NumTrap
	for _, b := range res.Bugs {
		if b.Kind == bugs.OOBRead && b.Func == "put_cielab" {
			out.PBSEFoundOOB = true
			out.BugPhase = b.Phase
		}
	}

	// KLEE default at 10B, CIELab bug specifically
	progD, _ := tgt.Build()
	exD := symex.NewExecutor(progD, symex.Options{InputSize: len(seed)})
	s, _ := symex.NewSearcher(symex.SearchDefault, exD, rand.New(rand.NewSource(cfg.Seed)))
	s.Add(exD.NewEntryState())
	(&symex.Runner{Ex: exD, Search: s}).Run(10 * cfg.BudgetB)
	for _, b := range exD.Bugs.Reports() {
		if b.Kind == bugs.OOBRead && b.Func == "put_cielab" {
			out.KLEEFoundOOB = true
		}
	}
	return out, nil
}

// AblationResult compares a design choice on/off at equal budget.
type AblationResult struct {
	Name        string
	CoverageOn  int
	CoverageOff int
	BugsOn      int
	BugsOff     int
	Detail      string
}

// Ablations measures the design choices DESIGN.md calls out, on readelf.
func Ablations(cfg Config) ([]AblationResult, error) {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		return nil, err
	}
	budget := 4 * cfg.BudgetB
	run := func(opts pbse.Options) (*pbse.Result, error) {
		prog, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		in := tgt.GenSeed(rand.New(rand.NewSource(cfg.Seed)), 576)
		opts.Budget = budget
		opts.Seed = cfg.Seed
		return pbse.Run(prog, in, opts, symex.Options{InputSize: len(in)})
	}
	var out []AblationResult

	base, err := run(pbse.Options{})
	if err != nil {
		return nil, err
	}

	// coverage-augmented BBVs (Fig 4 mechanism applied end to end)
	po := phase.DefaultOptions()
	po.IncludeCoverage = false
	noCov, err := run(pbse.Options{PhaseOpts: po})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name:       "coverage-augmented BBVs",
		CoverageOn: base.Covered, CoverageOff: noCov.Covered,
		BugsOn: len(base.Bugs), BugsOff: len(noCov.Bugs),
		Detail: fmt.Sprintf("traps %d vs %d", base.Division.NumTrap, noCov.Division.NumTrap),
	})

	// seedState dedup by fork point (§III-B3)
	noDedup, err := run(pbse.Options{DisableDedup: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name:       "seedState dedup",
		CoverageOn: base.Covered, CoverageOff: noDedup.Covered,
		BugsOn: len(base.Bugs), BugsOff: len(noDedup.Bugs),
	})

	// round-robin vs sequential scheduling (Algorithm 3)
	seq, err := run(pbse.Options{Sequential: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name:       "round-robin scheduling",
		CoverageOn: base.Covered, CoverageOff: seq.Covered,
		BugsOn: len(base.Bugs), BugsOff: len(seq.Bugs),
	})

	// adaptive k selection vs fixed k=4
	pf := phase.DefaultOptions()
	pf.KMin, pf.KMax = 4, 4
	fixedK, err := run(pbse.Options{PhaseOpts: pf})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name:       "adaptive k selection",
		CoverageOn: base.Covered, CoverageOff: fixedK.Covered,
		BugsOn: len(base.Bugs), BugsOff: len(fixedK.Bugs),
		Detail: fmt.Sprintf("k %d vs fixed 4", base.Division.K),
	})
	return out, nil
}

// SolverAblation measures the solver fast paths on a fixed baseline
// workload (KLEE default on readelf at budget B).
type SolverAblation struct {
	Name    string
	Covered int
	Stats   solver.Stats
}

// SolverAblations runs the same workload with each fast path disabled.
func SolverAblations(cfg Config) ([]SolverAblation, error) {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts solver.Options
	}{
		{"all fast paths", solver.Options{}},
		{"no candidates", solver.Options{DisableCandidates: true}},
		{"no cache", solver.Options{DisableCache: true}},
		{"no intervals", solver.Options{DisableIntervals: true}},
		{"no slicing", solver.Options{DisableSlicing: true}},
	}
	var out []SolverAblation
	for _, v := range variants {
		prog, err := tgt.Build()
		if err != nil {
			return nil, err
		}
		ex := symex.NewExecutor(prog, symex.Options{InputSize: 100, SolverOpts: v.opts})
		s, _ := symex.NewSearcher(symex.SearchDefault, ex, rand.New(rand.NewSource(cfg.Seed)))
		s.Add(ex.NewEntryState())
		(&symex.Runner{Ex: ex, Search: s}).Run(cfg.BudgetB)
		out = append(out, SolverAblation{Name: v.name, Covered: ex.NumCovered(), Stats: ex.Solver.Stats()})
	}
	return out, nil
}
